// Package sched implements the QPU pool scheduler of the C-RAN data center:
// the component that turns one simulated annealer behind the fronthaul into a
// shared pool of pluggable solver backends (paper §1, §7; ROADMAP "sharding,
// batching, async, multi-backend").
//
// The scheduler owns N backend workers fed from one FIFO queue of decode
// problems. Three mechanisms shape dispatch:
//
//   - Batching. When a worker's backend can co-schedule problems
//     (backend.BatchBackend — the annealer, via disjoint Chimera embedding
//     slots), the worker drains additional batch-compatible problems from the
//     queue and solves them in one device run, amortizing Na·(Ta+Tp) across
//     requests (§4 parallelization, applied across the pool).
//
//   - Deadline-aware hybrid dispatch. Each problem carries a deadline (e.g.
//     the frame-processing budget of the air interface). At admission the
//     scheduler projects queue wait + service time from the backends' latency
//     estimates; when the pool cannot meet the deadline, the problem routes
//     immediately to the classical fallback backend instead of joining the
//     queue — the hybrid classical–quantum structure of Kim et al.
//     (arXiv:2010.00682).
//
//   - QoS planning. When a Planner is configured, each problem carrying a
//     target BER gets its anneal budget sized at admission from the fitted
//     TTS model (internal/qos): the planner picks the read count, anneal
//     schedule and forward/reverse mode that meet the target within the
//     deadline, or denies quantum dispatch outright when the model says the
//     classical fallback is the better bet. The planned budget replaces the
//     static run configuration, so easy requests stop over-provisioning
//     reads (Kasi et al., arXiv:2109.01465) and queue waits shrink with
//     problem difficulty.
//
//   - Cost-aware dispatch. With Config.CostAware set, each admission also
//     consults the backends' capability descriptors (backend.Capabilities):
//     when the classical fallback solves a decode strictly cheaper than the
//     cheapest pool backend, meets the deadline on its own, and the decode
//     is classically safe (no BER target, or a planner-sized easy budget),
//     it diverts there — spend minimization subject to the QoS constraints,
//     the deployment economics of Kasi et al. (arXiv:2109.01465). Spend and
//     energy are accounted per backend through the same descriptors.
//
//   - Graceful drain. Close stops admission, lets queued and in-flight work
//     finish, and then stops the workers, so a serving process can shut down
//     without dropping accepted requests.
//
// Pool observability (queue depth, per-backend utilization, deadline-miss
// rate, batched-slot occupancy) is exported as metrics.PoolStats.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"quamax/internal/backend"
	"quamax/internal/health"
	"quamax/internal/metrics"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/telemetry"
)

// micros converts a duration to the telemetry plane's unit.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// ErrClosed is returned by Dispatch after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// DefaultCostEasyReads is the planned-read budget below which a decode
// counts as an easy SNR class for cost-aware dispatch: at these budgets the
// fitted TTS tables put the classical fallback at or past the annealer's
// success probability, so routing for price cannot cost the BER target.
const DefaultCostEasyReads = 16

// Config assembles a Scheduler.
type Config struct {
	// Pool lists the worker backends; one worker goroutine per entry. The
	// same Backend instance may appear more than once (it must then be safe
	// for concurrent Solve calls).
	Pool []backend.Backend
	// Fallback, when set, receives problems whose deadline the pool cannot
	// meet. It runs on the submitting goroutine, outside the queue.
	Fallback backend.Backend
	// DefaultDeadline applies to problems submitted without a deadline
	// (0 = no deadline: never fall back, never count misses).
	DefaultDeadline time.Duration
	// Planner, when set, sizes each target-BER-carrying problem's anneal
	// budget at admission and may deny quantum dispatch, routing to Fallback
	// when configured; without a Fallback, deadline-driven denials run the
	// planner's clamped best-effort budget and other denials run the static
	// configuration. Problems without a target BER pass through untouched.
	Planner *qos.Planner
	// DefaultTargetBER applies to problems submitted without a target BER
	// (0 = none: the planner is only consulted for explicit QoS requests).
	DefaultTargetBER float64
	// DisableBatch turns off cross-request batching on BatchBackends.
	DisableBatch bool
	// CostAware enables spend-minimizing dispatch: a problem the Fallback
	// can solve strictly cheaper (per its Capabilities cost model) diverts
	// there at admission — but only when the fallback's own latency estimate
	// meets the deadline and the decode is classically safe: either it
	// carries no BER target, or the QoS planner sized an easy budget
	// (planned reads ≤ CostEasyReads). Hard SNR classes keep their QPU
	// dispatch regardless of price — the TTS table says those reads pay.
	CostAware bool
	// CostEasyReads bounds the planned anneal-read budget a target-carrying
	// decode may have and still divert for cost (0 = DefaultCostEasyReads).
	CostEasyReads int
	// Telemetry, when set, receives one trace per terminal request (spans
	// for admit/plan/queue/gather/solve/respond/e2e plus deadline slack),
	// finished at the same point the Completed/Failed counters move so the
	// span count reconciles exactly with Stats. Nil disables tracing with
	// no overhead on the dispatch path.
	Telemetry *telemetry.Recorder
	// Health, when set, gates dispatch on the solver-health plane: every
	// completed solve's quality sample and outcome feed the tracker with
	// backend attribution, workers stop pulling regular work for backends
	// the tracker quarantines (unless the whole pool is quarantined — a
	// degraded answer beats none), and quarantined backends receive
	// periodic canary probes (fixed known-ground-state instances) to earn
	// re-admission. Deadline projection and pool estimates skip
	// quarantined members. Nil disables health gating entirely.
	Health *health.Tracker
	// CanarySeed fixes the canary instance's generator stream (0 derives
	// one from Seed). All workers probe with the same instance.
	CanarySeed int64
	// Burn, when set, receives one (deadline-miss, BER-risk) observation
	// per terminal request under this scheduler's ShardID — the per-shard
	// SLO burn-rate feed the router folds into its shed decision. A
	// BER-risk event is a soft decode whose LLRs saturated or a
	// target-carrying request the planner denied to classical.
	Burn *health.BurnTracker
	// ShardID stamps every trace this scheduler emits when one Recorder is
	// shared across a sharded router, attributing queue/gather spans to the
	// pool that served them. Zero for a single-pool deployment.
	ShardID int
	// Seed drives all solver randomness (per-worker independent streams).
	Seed int64
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Scheduler is a deadline-aware FIFO pool scheduler. It is safe for
// concurrent Dispatch calls.
type Scheduler struct {
	cfg       Config
	now       func() time.Time
	start     time.Time
	fallback  backend.Backend
	canary    *health.Canary // set iff cfg.Health is
	poolNames []string       // descriptor names, pool order

	mu             sync.Mutex
	cond           *sync.Cond
	queue          []*job
	queuedMicros   float64 // Σ estimate of queued jobs
	inflightMicros float64 // Σ estimate of jobs being solved right now
	closed         bool
	srcMu          sync.Mutex
	src            *rng.Source

	wg   sync.WaitGroup // pool workers
	fbWg sync.WaitGroup // in-flight fallback solves

	// counters (guarded by mu)
	submitted, completed, failed uint64
	fallbackDispatches, misses   uint64
	plannerClassical             uint64
	batchRuns, batchedProblems   uint64
	softSolved, llrSaturations   uint64
	occupancySum                 float64
	perBackend                   []*backendCounters
	fallbackCounters             *backendCounters
}

type backendCounters struct {
	caps          *backend.Capabilities
	name          string
	solved        uint64
	errors        uint64
	busyMicros    float64
	spendMicroUSD float64
	energyMilliJ  float64
}

// charge accounts one device run's economics against the backend: occupancy
// priced and powered through its capability descriptor. The descriptor's
// accessors guard non-finite occupancy, so the counters never absorb NaN.
func (c *backendCounters) charge(busyMicros float64) {
	c.spendMicroUSD += c.caps.SpendMicroUSD(busyMicros)
	c.energyMilliJ += c.caps.EnergyMilliJ(busyMicros)
}

type jobResult struct {
	res *backend.Result
	err error
}

type job struct {
	ctx      context.Context
	p        *backend.Problem
	est      float64   // pool service-time estimate (µs)
	deadline time.Time // zero = none
	done     chan jobResult

	// Telemetry fields, set only when Config.Telemetry is configured.
	tr         *telemetry.Trace
	t0         time.Time // Dispatch entry
	enqueuedAt time.Time
}

// New starts the pool workers and returns the scheduler.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sched: empty backend pool")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Scheduler{
		cfg:      cfg,
		now:      now,
		start:    now(),
		fallback: cfg.Fallback,
		src:      rng.New(cfg.Seed),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, be := range cfg.Pool {
		caps := describe(be)
		s.perBackend = append(s.perBackend, &backendCounters{caps: caps, name: caps.Name})
		s.poolNames = append(s.poolNames, caps.Name)
	}
	if cfg.Health != nil {
		seed := cfg.CanarySeed
		if seed == 0 {
			seed = cfg.Seed ^ 0x6ca17a5e
		}
		canary, err := health.NewCanary(seed)
		if err != nil {
			return nil, fmt.Errorf("sched: building canary instance: %w", err)
		}
		s.canary = canary
	}
	if cfg.Fallback != nil {
		// A fallback that also serves in the pool shares its counters, so
		// stats report it once.
		for i, be := range cfg.Pool {
			if be == cfg.Fallback {
				s.fallbackCounters = s.perBackend[i]
				break
			}
		}
		if s.fallbackCounters == nil {
			caps := describe(cfg.Fallback)
			s.fallbackCounters = &backendCounters{caps: caps, name: caps.Name}
		}
	}
	for i, be := range cfg.Pool {
		s.wg.Add(1)
		go s.worker(i, be)
	}
	return s, nil
}

// splitSource hands out an independent random stream.
func (s *Scheduler) splitSource() *rng.Source {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	return s.src.Split()
}

// describe returns be's capability descriptor, substituting an empty one for
// an implementation that declares none, so dispatch never dereferences nil.
func describe(be backend.Backend) *backend.Capabilities {
	if caps := be.Describe(); caps != nil {
		return caps
	}
	return &backend.Capabilities{}
}

// gated reports whether the pool backend at index i is pulled from regular
// dispatch by the health tracker. A quarantined member is only gated while
// some other pool member still serves: when the whole pool is quarantined
// the scheduler keeps serving on it (a degraded answer beats none), which
// also keeps the queue from deadlocking.
func (s *Scheduler) gated(i int) bool {
	h := s.cfg.Health
	if h == nil {
		return false
	}
	return h.State(s.poolNames[i]) == metrics.HealthQuarantined && h.AnyServing(s.poolNames)
}

// servingWorkers counts the pool workers currently accepting regular work
// (all of them when health gating is off or the whole pool is quarantined).
func (s *Scheduler) servingWorkers() int {
	if s.cfg.Health == nil {
		return len(s.cfg.Pool)
	}
	n := 0
	for i := range s.cfg.Pool {
		if !s.gated(i) {
			n++
		}
	}
	if n == 0 {
		return len(s.cfg.Pool)
	}
	return n
}

// poolEstimate is the best-case pool service time for p: the minimum
// predicted latency over the pool backends' capability descriptors,
// skipping health-quarantined members (they take no regular work, so their
// estimate is unearnable).
func (s *Scheduler) poolEstimate(p *backend.Problem) float64 {
	est := math.Inf(1)
	for i, be := range s.cfg.Pool {
		if s.gated(i) {
			continue
		}
		if e := describe(be).PredictMicros(p); e < est {
			est = e
		}
	}
	if math.IsInf(est, 1) {
		est = describe(s.cfg.Pool[0]).PredictMicros(p)
	}
	return est
}

// poolSpend is the cheapest projected spend for one solve of p on the pool:
// the minimum over backends of their descriptor-priced predicted latency.
func (s *Scheduler) poolSpend(p *backend.Problem) float64 {
	var min float64
	for i, be := range s.cfg.Pool {
		caps := describe(be)
		spend := caps.SpendMicroUSD(caps.PredictMicros(p))
		if i == 0 || spend < min {
			min = spend
		}
	}
	return min
}

// applyPlan consults the QoS planner for a problem carrying a target BER
// (its own or the configured default). It returns the problem to dispatch —
// a copy carrying the planned anneal budget, since callers may reuse their
// Problem across Dispatch calls — and whether the planner denied quantum
// dispatch.
func (s *Scheduler) applyPlan(p *backend.Problem, deadline time.Duration) (*backend.Problem, bool) {
	if s.cfg.Planner == nil {
		return p, false
	}
	target := p.TargetBER
	if target == 0 {
		target = s.cfg.DefaultTargetBER
	}
	if target <= 0 {
		return p, false
	}
	// A failed SNR estimate (singular channel) plans at the top of the
	// fitted range; the planner's own guards still apply.
	snr := math.Inf(1)
	if est, ok := qos.EstimateSNRdB(p.Mod, p.H, p.Y); ok {
		snr = est
	}
	plan := s.cfg.Planner.Plan(qos.Request{
		Mod: p.Mod, Nt: p.Users(), SNRdB: snr, TargetBER: target,
		DeadlineMicros: float64(deadline) / float64(time.Microsecond),
		Soft:           p.Soft,
	})
	if !plan.Quantum {
		// With no classical solver to deny to, a deadline-driven denial
		// still carries the clamped best-effort budget — strictly better
		// than running the static configuration.
		if s.fallback != nil || plan.Params.NumAnneals < 1 {
			if plan.PT == nil {
				return p, true
			}
			// A PT-aware planner sized a replica-exchange budget for the
			// fallback solve; carry it on a copy (callers reuse Problems).
			q := *p
			q.TargetBER = target
			q.PT = plan.PT
			return &q, true
		}
	}
	q := *p
	q.TargetBER = target
	params := plan.Params
	q.Anneal = &params
	q.ChainJF = plan.JF
	q.Reverse = plan.Reverse
	q.PT = plan.PT
	return &q, false
}

// divertForCost decides cost-aware dispatch for p after planning: divert to
// the fallback when it is strictly cheaper than the cheapest pool backend
// (per the capability descriptors' cost models) AND the fallback's own
// latency estimate meets the deadline AND the decode is classically safe —
// no BER target, or a planner-sized easy budget (reads ≤ CostEasyReads).
// Hard SNR classes never divert: their large read budgets are exactly where
// the TTS table says QPU time pays for itself.
func (s *Scheduler) divertForCost(p *backend.Problem, deadline time.Duration) bool {
	if !s.cfg.CostAware || s.fallback == nil {
		return false
	}
	fbCaps := describe(s.fallback)
	fbEst := fbCaps.PredictMicros(p)
	if deadline > 0 && fbEst > float64(deadline)/float64(time.Microsecond) {
		return false
	}
	if p.TargetBER > 0 {
		easy := s.cfg.CostEasyReads
		if easy <= 0 {
			easy = DefaultCostEasyReads
		}
		if p.Anneal == nil || p.Anneal.NumAnneals > easy {
			return false
		}
	}
	return fbCaps.SpendMicroUSD(fbEst) < s.poolSpend(p)
}

// Dispatch submits one problem and blocks until it is solved, the context is
// canceled, or the scheduler is closed. deadline ≤ 0 selects the configured
// default. It implements fronthaul.Dispatcher.
func (s *Scheduler) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	rec := s.cfg.Telemetry
	var tr *telemetry.Trace
	var t0 time.Time
	if rec != nil {
		t0 = s.now()
	}
	p, planDenied := s.applyPlan(p, deadline)
	if rec != nil {
		// Two clock reads bracket the plan; the trace record itself is built
		// after the second read so its cost lands in admit, not plan. (The
		// planner feeds the StagePlan histogram itself from inside Plan; this
		// is the scheduler-side measurement carried on the trace.)
		planEnd := s.now()
		tr = &telemetry.Trace{
			Class:       telemetry.Class(p.Mod.String(), p.Users()),
			Soft:        p.Soft,
			Shard:       s.cfg.ShardID,
			StartMicros: rec.SinceStartMicros(t0),
		}
		if deadline > 0 {
			tr.DeadlineMicros = micros(deadline)
		}
		tr.Stages[telemetry.StagePlan] = micros(planEnd.Sub(t0))
	}
	// A planner denial that will route to the fallback never consults the
	// pool, so don't charge the backends' estimators for it; every admission
	// path below still records exactly one of plannerClassical/
	// fallbackDispatches/queue so the Stats totals reconcile (Submitted ==
	// Completed + Failed once drained — asserted in sched_test).
	var est float64
	var costDivert bool
	if !planDenied || s.fallback == nil {
		est = s.poolEstimate(p)
		costDivert = !planDenied && s.divertForCost(p, deadline)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.submitted++

	// Planner denial: the TTS model says the annealer cannot meet this
	// request's target within its deadline — the classical fallback is the
	// better bet regardless of queue state.
	if planDenied && s.fallback != nil {
		s.plannerClassical++
		s.fallbackDispatches++
		s.fbWg.Add(1)
		s.mu.Unlock()
		defer s.fbWg.Done()
		if tr != nil {
			tr.Fallback, tr.PlannerDenied = true, true
			tr.Stages[telemetry.StageAdmit] = admitSpan(s.now().Sub(t0), tr)
		}
		return s.runFallback(ctx, p, deadline, tr, t0, true)
	}

	// Cost-aware dispatch: the fallback solves this decode strictly cheaper
	// without risking its deadline or a planned BER target (divertForCost),
	// so spend-minimization routes it off the expensive pool.
	if costDivert {
		s.fallbackDispatches++
		s.fbWg.Add(1)
		s.mu.Unlock()
		defer s.fbWg.Done()
		if tr != nil {
			tr.Fallback = true
			tr.Stages[telemetry.StageAdmit] = admitSpan(s.now().Sub(t0), tr)
		}
		return s.runFallback(ctx, p, deadline, tr, t0, false)
	}

	// Hybrid dispatch: if the projected pool completion time blows the
	// deadline, route to the classical fallback now instead of queueing.
	// The projection charges every queued job a full solver run — it
	// deliberately ignores batch consolidation (which depends on slot
	// capacities unknown until embedding time), so it is an upper bound:
	// under same-N bursts the pool finishes earlier than projected and some
	// requests fall back that could have been served. Deadline safety is
	// preferred over pool utilization here; a batch-aware estimator can
	// tighten this later.
	if deadline > 0 && s.fallback != nil {
		deadlineMicros := float64(deadline) / float64(time.Microsecond)
		waitMicros := (s.queuedMicros + s.inflightMicros) / float64(s.servingWorkers())
		if waitMicros+est > deadlineMicros {
			s.fallbackDispatches++
			// Registered under mu, before the closed flag can flip: Close
			// waits for this solve too.
			s.fbWg.Add(1)
			s.mu.Unlock()
			defer s.fbWg.Done()
			if tr != nil {
				tr.Fallback = true
				tr.Stages[telemetry.StageAdmit] = admitSpan(s.now().Sub(t0), tr)
			}
			return s.runFallback(ctx, p, deadline, tr, t0, false)
		}
	}

	j := &job{ctx: ctx, p: p, est: est, done: make(chan jobResult, 1)}
	if deadline > 0 {
		j.deadline = s.now().Add(deadline)
	}
	if tr != nil {
		j.tr, j.t0 = tr, t0
		j.enqueuedAt = s.now()
		tr.Stages[telemetry.StageAdmit] = admitSpan(j.enqueuedAt.Sub(t0), tr)
	}
	s.queue = append(s.queue, j)
	s.queuedMicros += est
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case r := <-j.done:
		return r.res, r.err
	case <-ctx.Done():
		// The job stays queued; the worker discards it when it surfaces.
		return nil, ctx.Err()
	}
}

// admitSpan is the admission span: entry-to-decision wall time minus the
// planner's share (already carried as StagePlan), clamped nonnegative.
func admitSpan(sinceEntry time.Duration, tr *telemetry.Trace) float64 {
	a := micros(sinceEntry) - tr.Stages[telemetry.StagePlan]
	if a < 0 {
		return 0
	}
	return a
}

// observeSolve replays one terminal solve into the solver-health plane with
// backend attribution: the outcome always, and the anneal-quality sample on
// success (the decoder-level quality stream has no backend identity, so the
// scheduler is the attribution point). No-op without Config.Health.
func (s *Scheduler) observeSolve(name string, p *backend.Problem, res *backend.Result, failed bool) {
	h := s.cfg.Health
	if h == nil {
		return
	}
	h.ObserveOutcome(name, failed)
	if failed || res == nil {
		return
	}
	h.ObserveQuality(name, telemetry.Class(p.Mod.String(), p.Users()), telemetry.QualityObservation{
		BestEnergy:   res.Energy,
		Reads:        res.Reads,
		ChainBreaks:  res.BrokenChains,
		LLRBits:      len(res.LLRs),
		LLRSaturated: res.LLRSaturated,
	})
}

// observeBurn feeds one terminal request's SLO bits to the shard burn
// tracker under this scheduler's ShardID. No-op without Config.Burn.
func (s *Scheduler) observeBurn(missed, berMiss bool) {
	if b := s.cfg.Burn; b != nil {
		b.Observe(s.cfg.ShardID, missed, berMiss)
	}
}

// runFallback solves p on the fallback backend, on the caller's goroutine.
// tr/t0 carry the request's telemetry trace when tracing is enabled. denied
// marks a planner denial: the request carried a BER target the annealer
// could not meet, so its classical answer counts as a BER-risk event in the
// shard's SLO burn feed.
func (s *Scheduler) runFallback(ctx context.Context, p *backend.Problem, deadline time.Duration, tr *telemetry.Trace, t0 time.Time, denied bool) (*backend.Result, error) {
	started := s.now()
	res, err := s.fallback.Solve(ctx, p, s.splitSource())
	solveEnd := s.now()
	elapsed := micros(solveEnd.Sub(started))

	s.mu.Lock()
	defer s.mu.Unlock()
	s.fallbackCounters.busyMicros += elapsed
	s.fallbackCounters.charge(elapsed)
	if tr != nil {
		defer func() {
			end := s.now()
			tr.Backend = s.fallbackCounters.name
			tr.Failed = err != nil
			if res != nil {
				tr.CacheHit = res.CacheHit
				tr.Stages[telemetry.StageCompile] = res.CompileMicros
			}
			tr.Stages[telemetry.StageSolve] = elapsed
			tr.Stages[telemetry.StageRespond] = micros(end.Sub(solveEnd))
			tr.Stages[telemetry.StageE2E] = micros(end.Sub(t0))
			if deadline > 0 {
				tr.SlackMicros = micros(started.Add(deadline).Sub(end))
			}
			s.cfg.Telemetry.FinishTrace(*tr)
		}()
	}
	if err != nil {
		s.fallbackCounters.errors++
		s.failed++
		s.observeSolve(s.fallbackCounters.name, p, nil, true)
		// A failed request blew its SLO whatever the clock says.
		s.observeBurn(true, denied)
		return nil, err
	}
	s.fallbackCounters.solved++
	s.completed++
	if p.Soft {
		s.softSolved++
		s.llrSaturations += uint64(res.LLRSaturated)
	}
	missed := deadline > 0 && s.now().After(started.Add(deadline))
	if missed {
		s.misses++
	}
	s.observeSolve(s.fallbackCounters.name, p, res, false)
	s.observeBurn(missed, denied || (p.Soft && res.LLRSaturated > 0))
	return res, nil
}

// gateWorker holds a quarantined worker out of regular dispatch, probing
// its backend with the canary instance on the tracker's schedule. It spins
// in ~1ms quanta so re-admission (or the rest of the pool going down, which
// un-gates everyone) is picked up promptly. Returns false when the
// scheduler closed with an empty queue — the worker should exit — and true
// when the worker may pull regular work again.
func (s *Scheduler) gateWorker(idx int, be backend.Backend, ctr *backendCounters, src *rng.Source) bool {
	h := s.cfg.Health
	for s.gated(idx) {
		s.mu.Lock()
		done := s.closed && len(s.queue) == 0
		s.mu.Unlock()
		if done {
			return false
		}
		if h.CanaryDue(ctr.name) {
			// Probe on a background context: the canary is the scheduler's
			// own request and must not inherit any client deadline. Device
			// time still bills the backend — a quarantined chip is busy
			// proving itself, and hiding that would flatter its utilization.
			started := s.now()
			res, err := be.Solve(context.Background(), s.canary.Problem, src)
			elapsed := micros(s.now().Sub(started))
			s.mu.Lock()
			ctr.busyMicros += elapsed
			ctr.charge(elapsed)
			s.mu.Unlock()
			h.RecordCanary(ctr.name, s.canary.Check(res, err))
			continue
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// worker runs one pool backend: pop the queue head, optionally gather a
// batch, solve, deliver.
func (s *Scheduler) worker(idx int, be backend.Backend) {
	defer s.wg.Done()
	src := s.splitSource()
	ctr := s.perBackend[idx]
	for {
		if s.cfg.Health != nil && !s.gateWorker(idx, be, ctr, src) {
			return
		}
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		if s.cfg.Health != nil && s.gated(idx) {
			// The verdict may have flipped while this worker was parked in
			// Wait — re-gate before touching the queue so a freshly
			// quarantined backend never pulls one more job.
			s.mu.Unlock()
			continue
		}
		// Pop the head under the lock, but resolve the backend's batch
		// capacity outside it: the first BatchSlots call for a new problem
		// size runs a clique-embedding search, which must not stall
		// admission and the other workers.
		head := s.queue[0]
		s.queue = s.queue[1:]
		s.queuedMicros -= head.est
		s.inflightMicros += head.est
		s.mu.Unlock()

		var popAt time.Time
		if head.tr != nil {
			popAt = s.now()
		}
		batch := []*job{head}
		slots := 1
		if bb, ok := be.(backend.BatchBackend); ok && !s.cfg.DisableBatch {
			if slots = bb.BatchSlots(head.p); slots > 1 {
				s.mu.Lock()
				if head.p.ChannelKey != 0 {
					batch = s.gatherCoherentLocked(head, slots)
				} else {
					batch = s.gatherBatchLocked(head, slots)
				}
				s.mu.Unlock()
			}
		}
		if head.tr != nil {
			// The head waited until it was popped and is charged the run
			// assembly (slot resolution + gathering); batch riders stayed
			// effectively queued until gathering finished. Spans stay
			// disjoint so they partition each request's e2e.
			gatherEnd := s.now()
			head.tr.Stages[telemetry.StageQueue] = micros(popAt.Sub(head.enqueuedAt))
			head.tr.Stages[telemetry.StageGather] = micros(gatherEnd.Sub(popAt))
			for _, j := range batch[1:] {
				j.tr.Stages[telemetry.StageQueue] = micros(gatherEnd.Sub(j.enqueuedAt))
			}
		}

		// Drop jobs whose submitter already gave up.
		live := batch[:0]
		for _, j := range batch {
			if err := j.ctx.Err(); err != nil {
				j.done <- jobResult{err: err}
				s.mu.Lock()
				s.failed++
				s.inflightMicros -= j.est
				if j.tr != nil {
					end := s.now()
					j.tr.Failed = true
					j.tr.Stages[telemetry.StageE2E] = micros(end.Sub(j.t0))
					if !j.deadline.IsZero() {
						j.tr.SlackMicros = micros(j.deadline.Sub(end))
					}
					s.cfg.Telemetry.FinishTrace(*j.tr)
				}
				s.mu.Unlock()
				continue
			}
			live = append(live, j)
		}
		if len(live) == 0 {
			continue
		}

		started := s.now()
		results, err := s.solve(be, live, slots, src)
		solveEnd := s.now()
		elapsed := micros(solveEnd.Sub(started))

		s.mu.Lock()
		ctr.busyMicros += elapsed
		ctr.charge(elapsed)
		for i, j := range live {
			s.inflightMicros -= j.est
			if err != nil {
				ctr.errors++
				s.failed++
				s.observeSolve(ctr.name, j.p, nil, true)
				// A failed request blew its SLO whatever the clock says.
				s.observeBurn(true, false)
				s.finishPoolTrace(j, nil, err, ctr.name, elapsed, solveEnd, len(live))
				j.done <- jobResult{err: err}
				continue
			}
			ctr.solved++
			s.completed++
			if j.p.Soft {
				s.softSolved++
				s.llrSaturations += uint64(results[i].LLRSaturated)
			}
			missed := !j.deadline.IsZero() && s.now().After(j.deadline)
			if missed {
				s.misses++
			}
			s.observeSolve(ctr.name, j.p, results[i], false)
			s.observeBurn(missed, j.p.Soft && results[i].LLRSaturated > 0)
			s.finishPoolTrace(j, results[i], nil, ctr.name, elapsed, solveEnd, len(live))
			j.done <- jobResult{res: results[i]}
		}
		s.mu.Unlock()
	}
}

// finishPoolTrace fills and finishes a pool-solved (or pool-failed) job's
// trace. Called under s.mu at the same point the Completed/Failed counters
// move, so traces reconcile exactly with Stats. No-op when tracing is off.
func (s *Scheduler) finishPoolTrace(j *job, res *backend.Result, err error, beName string, solveMicros float64, solveEnd time.Time, batched int) {
	if j.tr == nil {
		return
	}
	end := s.now()
	j.tr.Backend = beName
	j.tr.Batched = batched
	j.tr.Failed = err != nil
	if res != nil {
		if res.Backend != "" {
			j.tr.Backend = res.Backend
		}
		j.tr.CacheHit = res.CacheHit
		j.tr.Stages[telemetry.StageCompile] = res.CompileMicros
	}
	j.tr.Stages[telemetry.StageSolve] = solveMicros
	j.tr.Stages[telemetry.StageRespond] = micros(end.Sub(solveEnd))
	j.tr.Stages[telemetry.StageE2E] = micros(end.Sub(j.t0))
	if !j.deadline.IsZero() {
		j.tr.SlackMicros = micros(j.deadline.Sub(end))
	}
	s.cfg.Telemetry.FinishTrace(*j.tr)
}

// gatherBatchLocked extends an already-popped head job with batch-compatible
// queued jobs (backend.Batchable: same logical spin count and agreeing
// anneal schedule, FIFO order) up to the backend's slot capacity. Estimates
// move from queued to in-flight.
func (s *Scheduler) gatherBatchLocked(head *job, slots int) []*job {
	batch := []*job{head}
	kept := s.queue[:0]
	for _, j := range s.queue {
		if len(batch) < slots && backend.Batchable(head.p, j.p) {
			s.queuedMicros -= j.est
			s.inflightMicros += j.est
			batch = append(batch, j)
			continue
		}
		kept = append(kept, j)
	}
	// Zero the tail so dropped slots don't pin jobs.
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	return batch
}

// gatherCoherentLocked is the coherence-aware variant of gatherBatchLocked
// for a head job carrying a ChannelKey: queued symbols from the SAME
// coherence window (equal key — the channel is already programmed on the
// backend's compiled-channel cache) claim the run's slots first, and only
// leftover slots go to other batch-compatible jobs. Within each class FIFO
// order is preserved, and the batch itself stays in queue order so FIFO
// fairness inside one run is untouched.
func (s *Scheduler) gatherCoherentLocked(head *job, slots int) []*job {
	take := make([]bool, len(s.queue))
	count := 1
	// First pass: same coherence window.
	for i, j := range s.queue {
		if count >= slots {
			break
		}
		if j.p.ChannelKey == head.p.ChannelKey && backend.Batchable(head.p, j.p) {
			take[i] = true
			count++
		}
	}
	// Second pass: any remaining batch-compatible job fills leftover slots.
	for i, j := range s.queue {
		if count >= slots {
			break
		}
		if !take[i] && backend.Batchable(head.p, j.p) {
			take[i] = true
			count++
		}
	}
	batch := []*job{head}
	kept := s.queue[:0]
	for i, j := range s.queue {
		if take[i] {
			s.queuedMicros -= j.est
			s.inflightMicros += j.est
			batch = append(batch, j)
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	return batch
}

// solve runs one batch (possibly of size 1) on be and updates batching
// counters. slots is the capacity the worker already resolved for this run.
func (s *Scheduler) solve(be backend.Backend, batch []*job, slots int, src *rng.Source) ([]*backend.Result, error) {
	if len(batch) == 1 {
		res, err := be.Solve(batch[0].ctx, batch[0].p, src)
		if err != nil {
			return nil, err
		}
		return []*backend.Result{res}, nil
	}
	bb := be.(backend.BatchBackend)
	ps := make([]*backend.Problem, len(batch))
	for i, j := range batch {
		ps[i] = j.p
	}
	results, err := bb.SolveBatch(batch[0].ctx, ps, src)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.batchRuns++
	s.batchedProblems += uint64(len(batch))
	if slots > 0 {
		s.occupancySum += float64(len(batch)) / float64(slots)
	}
	s.mu.Unlock()
	return results, nil
}

// Close stops admission, drains queued and in-flight work (pool and
// fallback), and stops the workers. Safe to call more than once.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.fbWg.Wait()
	return nil
}

// Stats snapshots the pool counters.
func (s *Scheduler) Stats() metrics.PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	wallMicros := float64(s.now().Sub(s.start)) / float64(time.Microsecond)
	st := metrics.PoolStats{
		QueueDepth:         len(s.queue),
		Submitted:          s.submitted,
		Completed:          s.completed,
		Failed:             s.failed,
		FallbackDispatches: s.fallbackDispatches,
		PlannerClassical:   s.plannerClassical,
		DeadlineMisses:     s.misses,
		BatchRuns:          s.batchRuns,
		BatchedProblems:    s.batchedProblems,
		SoftSolved:         s.softSolved,
		LLRSaturations:     s.llrSaturations,
	}
	if s.batchRuns > 0 {
		st.SlotOccupancy = s.occupancySum / float64(s.batchRuns)
	}
	// Channel-cache counters live in the backends' decoders; aggregate over
	// distinct instances so a pool listing one backend behind several workers
	// counts its cache once.
	type channelCacheStatser interface {
		ChannelCacheStats() metrics.ChannelCacheStats
	}
	seen := make(map[backend.Backend]bool, len(s.cfg.Pool)+1)
	backends := s.cfg.Pool
	if s.fallback != nil {
		backends = append(append([]backend.Backend(nil), backends...), s.fallback)
	}
	for _, be := range backends {
		if seen[be] {
			continue
		}
		seen[be] = true
		if cs, ok := be.(channelCacheStatser); ok {
			st.ChannelCache = st.ChannelCache.Add(cs.ChannelCacheStats())
		}
	}
	all := s.perBackend
	if s.fallbackCounters != nil {
		shared := false
		for _, c := range s.perBackend {
			if c == s.fallbackCounters {
				shared = true
				break
			}
		}
		if !shared {
			all = append(append([]*backendCounters(nil), s.perBackend...), s.fallbackCounters)
		}
	}
	for _, c := range all {
		bs := metrics.BackendStats{
			Name:          c.name,
			Solved:        c.solved,
			Errors:        c.errors,
			BusyMicros:    c.busyMicros,
			SpendMicroUSD: c.spendMicroUSD,
			EnergyMilliJ:  c.energyMilliJ,
		}
		if wallMicros > 0 {
			bs.Utilization = c.busyMicros / wallMicros
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}

// String describes the pool configuration.
func (s *Scheduler) String() string {
	names := make([]string, len(s.cfg.Pool))
	for i, be := range s.cfg.Pool {
		names[i] = describe(be).Name
	}
	fb := "none"
	if s.fallback != nil {
		fb = describe(s.fallback).Name
	}
	return fmt.Sprintf("sched: pool=%v fallback=%s default-deadline=%s batch=%t planner=%t cost-aware=%t",
		names, fb, s.cfg.DefaultDeadline, !s.cfg.DisableBatch, s.cfg.Planner != nil, s.cfg.CostAware)
}
