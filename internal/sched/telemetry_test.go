package sched

import (
	"context"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/modulation"
	"quamax/internal/qos"
	"quamax/internal/telemetry"
)

// The telemetry plane's core contract: every terminal request — pool-solved,
// fallback-solved, planner-denied, or discarded after context cancellation —
// finishes exactly one trace, so the span count reconciles exactly with the
// PoolStats counters (Submitted == Completed + Failed == traces).
func TestTelemetryTracesReconcileAcrossPaths(t *testing.T) {
	rec := telemetry.New(telemetry.Config{})
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	pl.Telemetry = rec
	pool := &fakeBackend{name: "qpu", est: 100, gate: make(chan struct{})}
	fb := &fakeBackend{name: "fb", est: 10}
	s, err := New(Config{Pool: []backend.Backend{pool}, Fallback: fb, Planner: pl, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}

	// Job A occupies the worker (gated); job B is canceled while queued and
	// must be discarded — with a trace — when the worker surfaces it.
	pa, _ := testProblem(t, 970, modulation.QPSK, 4)
	aDone := make(chan error, 1)
	go func() {
		_, err := s.Dispatch(context.Background(), pa, 0)
		aDone <- err
	}()
	for {
		s.mu.Lock()
		inflight := s.inflightMicros > 0
		s.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	pb, _ := testProblem(t, 971, modulation.QPSK, 4)
	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() {
		_, err := s.Dispatch(ctx, pb, 0)
		bDone <- err
	}()
	for {
		s.mu.Lock()
		depth := len(s.queue)
		s.mu.Unlock()
		if depth == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-bDone; err != context.Canceled {
		t.Fatalf("canceled dispatch returned %v", err)
	}
	pool.gate <- struct{}{} // release job A's solve
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}

	// Queue-pressure fallback (unmeetable deadline) and planner denial
	// (8 users exceeds every fitted size), both deadline-bearing.
	pc, _ := testProblem(t, 972, modulation.QPSK, 4)
	if _, err := s.Dispatch(context.Background(), pc, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	pd, _ := testProblem(t, 973, modulation.QPSK, 8)
	pd.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), pd, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	sn := rec.Snapshot()
	if st.Submitted != 4 {
		t.Fatalf("submitted = %d, want 4", st.Submitted)
	}
	if sn.Traces != st.Submitted || sn.Traces != st.Completed+st.Failed {
		t.Fatalf("traces=%d submitted=%d completed+failed=%d: not reconciled",
			sn.Traces, st.Submitted, st.Completed+st.Failed)
	}
	if sn.Failed != st.Failed || sn.Failed != 1 {
		t.Fatalf("failed traces = %d, pool failed = %d, want 1", sn.Failed, st.Failed)
	}
	if got := sn.Stages[telemetry.StageE2E].Count; got != sn.Traces {
		t.Fatalf("e2e histogram count = %d, want %d", got, sn.Traces)
	}
	// The planner ran for the one target-BER request (it owns StagePlan).
	if sn.Stages[telemetry.StagePlan].Count != 1 {
		t.Fatalf("plan histogram count = %d, want 1", sn.Stages[telemetry.StagePlan].Count)
	}
	// Two requests carried deadlines; each landed in exactly one slack side.
	if got := sn.SlackMet.Count + sn.SlackMissed.Count; got != 2 {
		t.Fatalf("slack observations = %d, want 2", got)
	}

	traces := rec.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(traces))
	}
	var denied, fallbacks, failed int
	for _, tr := range traces {
		if tr.Class != "QPSK/4" && tr.Class != "QPSK/8" {
			t.Fatalf("unexpected class %q", tr.Class)
		}
		if tr.PlannerDenied {
			denied++
			if !tr.Fallback || tr.Backend != "fb" {
				t.Fatalf("planner-denied trace not marked fallback: %+v", tr)
			}
		}
		if tr.Fallback {
			fallbacks++
		}
		if tr.Failed {
			failed++
			if tr.Stages[telemetry.StageE2E] <= 0 {
				t.Fatalf("failed trace missing e2e span: %+v", tr)
			}
		}
	}
	if denied != 1 || fallbacks != 2 || failed != 1 {
		t.Fatalf("denied/fallbacks/failed = %d/%d/%d, want 1/2/1", denied, fallbacks, failed)
	}
}

// With no Recorder configured, dispatch must not record anything anywhere —
// the nil path is the zero-overhead default.
func TestNoTelemetryByDefault(t *testing.T) {
	pool := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{pool}})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := testProblem(t, 980, modulation.QPSK, 4)
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertReconciled(t, s)
}
