package sched

// A PT-aware planner's replica-exchange budget must travel with the problem
// through the scheduler to the classical side, and never leak onto the
// quantum path or into the caller's Problem.

import (
	"context"
	"testing"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/modulation"
	"quamax/internal/qos"
)

func ptAwarePlanner(t *testing.T) *qos.Planner {
	t.Helper()
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	pl.PT = &qos.PTCost{MicrosPerSpinSweep: backend.DefaultPTMicrosPerSpinSweep}
	return pl
}

func TestPlannerDenialCarriesPTBudgetToFallback(t *testing.T) {
	pool := &fakeBackend{name: "qpu", est: 100}
	fb := &fakeBackend{name: "pt", est: 10}
	s, err := New(Config{Pool: []backend.Backend{pool}, Fallback: fb, Planner: ptAwarePlanner(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 8 users exceeds every fitted size: denied to the fallback, but with a
	// deadline-sized replica-exchange budget attached.
	p, _ := testProblem(t, 911, modulation.QPSK, 8)
	p.TargetBER = 1e-3
	res, err := s.Dispatch(context.Background(), p, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "pt" {
		t.Fatalf("dispatched to %q, want planner-denied fallback", res.Backend)
	}
	if p.PT != nil {
		t.Fatal("Dispatch mutated the caller's Problem")
	}
	fb.mu.Lock()
	served := fb.order[0]
	fb.mu.Unlock()
	want := anneal.PTParams{Rungs: 16, Ladders: 4, Sweeps: 100}
	if served.PT == nil || served.PT.Rungs != want.Rungs || served.PT.Ladders != want.Ladders || served.PT.Sweeps != want.Sweeps {
		t.Fatalf("fallback saw PT=%+v, want the generous-deadline budget %+v", served.PT, want)
	}
}

func TestQuantumPlanCarriesNoPTBudget(t *testing.T) {
	f := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{f}, Planner: ptAwarePlanner(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 912, modulation.QPSK, 4)
	p.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	served := f.order[0]
	f.mu.Unlock()
	if served.Anneal == nil || served.PT != nil {
		t.Fatalf("backend saw Anneal=%+v PT=%+v, want an anneal budget and no PT budget", served.Anneal, served.PT)
	}
}
