package sched

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qos"
	"quamax/internal/rng"
)

// fakeBackend is a deterministic Backend for scheduler-mechanics tests.
type fakeBackend struct {
	name  string
	est   float64
	cost  backend.CostModel
	delay time.Duration
	gate  chan struct{} // when non-nil, each Solve first receives from it

	mu    sync.Mutex
	order []*backend.Problem
}

func (f *fakeBackend) Describe() *backend.Capabilities {
	return &backend.Capabilities{
		Name:    f.name,
		Latency: func(p *backend.Problem) float64 { return f.est },
		Cost:    f.cost,
	}
}
func (f *fakeBackend) record(p *backend.Problem) {
	f.mu.Lock()
	f.order = append(f.order, p)
	f.mu.Unlock()
}
func (f *fakeBackend) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.record(p)
	return &backend.Result{Bits: []byte{0}, Backend: f.name, Batched: 1}, nil
}

// fakeBatchBackend adds deterministic batch capability.
type fakeBatchBackend struct {
	fakeBackend
	slots   int
	batches []int // sizes of SolveBatch calls
}

func (f *fakeBatchBackend) BatchSlots(p *backend.Problem) int { return f.slots }
func (f *fakeBatchBackend) SolveBatch(ctx context.Context, ps []*backend.Problem, src *rng.Source) ([]*backend.Result, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batches = append(f.batches, len(ps))
	f.mu.Unlock()
	out := make([]*backend.Result, len(ps))
	for i, p := range ps {
		f.record(p)
		out[i] = &backend.Result{Bits: []byte{0}, Backend: f.name, Batched: len(ps)}
	}
	return out, nil
}

func testProblem(t *testing.T, seed int64, mod modulation.Modulation, nt int) (*backend.Problem, *mimo.Instance) {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &backend.Problem{Mod: in.Mod, H: in.H, Y: in.Y}, in
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A saturated single-worker pool must serve queued problems in FIFO order.
func TestFIFOFairnessUnderSaturation(t *testing.T) {
	f := &fakeBackend{name: "slow", est: 100, gate: make(chan struct{})}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 6
	probs := make([]*backend.Problem, n)
	for i := range probs {
		probs[i], _ = testProblem(t, int64(100+i), modulation.BPSK, 2)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(context.Background(), probs[i], 0); err != nil {
				t.Errorf("dispatch %d: %v", i, err)
			}
		}()
		// Admission order defines FIFO order: wait until this submission is
		// queued (or, for the first, picked up by the gated worker) before
		// launching the next.
		waitFor(t, "admission", func() bool {
			st := s.Stats()
			return st.Submitted == uint64(i+1) && (i == 0 || st.QueueDepth == i)
		})
	}
	close(f.gate) // release the worker
	wg.Wait()

	if len(f.order) != n {
		t.Fatalf("served %d problems, want %d", len(f.order), n)
	}
	for i, p := range f.order {
		if p != probs[i] {
			t.Fatalf("service order violates FIFO at position %d", i)
		}
	}
	if st := s.Stats(); st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// A deadline the pool cannot meet must route to the classical fallback
// without touching the queue.
func TestDeadlineRoutesToFallback(t *testing.T) {
	pool := &fakeBackend{name: "qpu", est: 1e6} // 1 s per solve
	fb := &fakeBackend{name: "fb", est: 10}
	s, err := New(Config{Pool: []backend.Backend{pool}, Fallback: fb})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 200, modulation.BPSK, 2)
	res, err := s.Dispatch(context.Background(), p, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "fb" {
		t.Fatalf("dispatched to %q, want fallback", res.Backend)
	}
	st := s.Stats()
	if st.FallbackDispatches != 1 || len(pool.order) != 0 {
		t.Fatalf("fallback accounting: %+v (pool served %d)", st, len(pool.order))
	}

	// A relaxed deadline keeps the problem on the pool.
	res, err = s.Dispatch(context.Background(), p, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "qpu" {
		t.Fatalf("relaxed deadline dispatched to %q, want pool", res.Backend)
	}
}

// Acceptance: with the real annealer, a deadline shorter than the annealer's
// queue+anneal time provably routes to the classical SA fallback, and the
// fallback still decodes correctly.
func TestDeadlineFallbackWithRealAnnealer(t *testing.T) {
	qpu, err := backend.NewAnnealer("qpu0", core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	sa := backend.NewClassicalSA("sa", 128, 60)
	s, err := New(Config{Pool: []backend.Backend{qpu}, Fallback: sa, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, in := testProblem(t, 300, modulation.QPSK, 4)
	// Annealer service time is Na·(Ta+Tp) = 200 µs even with an empty queue;
	// a 50 µs deadline is unmeetable on the QPU.
	if est := qpu.Describe().PredictMicros(p); est < 200 {
		t.Fatalf("annealer estimate %g µs, expected 200", est)
	}
	res, err := s.Dispatch(context.Background(), p, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sa" {
		t.Fatalf("deadline-constrained decode ran on %q, want classical fallback", res.Backend)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("fallback decode: %d bit errors", errs)
	}
	if st := s.Stats(); st.FallbackDispatches != 1 {
		t.Fatalf("FallbackDispatches = %d, want 1", st.FallbackDispatches)
	}

	// The same problem with a generous deadline runs on the QPU.
	res, err = s.Dispatch(context.Background(), p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "qpu0" {
		t.Fatalf("relaxed decode ran on %q, want qpu0", res.Backend)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("pool decode: %d bit errors", errs)
	}
}

// Close must drain queued and in-flight work, then reject new submissions.
func TestGracefulDrain(t *testing.T) {
	f := &fakeBackend{name: "slow", est: 100, delay: 5 * time.Millisecond}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		p, _ := testProblem(t, int64(400+i), modulation.BPSK, 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, results[i] = s.Dispatch(context.Background(), p, 0)
		}()
	}
	waitFor(t, "all submissions admitted", func() bool { return s.Stats().Submitted == n })

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("dispatch %d dropped during drain: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Completed != n || st.QueueDepth != 0 {
		t.Fatalf("drain left stats %+v", st)
	}
	p, _ := testProblem(t, 499, modulation.BPSK, 2)
	if _, err := s.Dispatch(context.Background(), p, 0); err != ErrClosed {
		t.Fatalf("post-close dispatch: %v, want ErrClosed", err)
	}
}

// A backlog of batch-compatible problems must ride one batched run, and the
// occupancy stats must reflect it.
func TestBatchingDrainsCompatibleQueue(t *testing.T) {
	f := &fakeBatchBackend{
		fakeBackend: fakeBackend{name: "qpu", est: 100, gate: make(chan struct{})},
		slots:       8,
	}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	dispatch := func(seed int64, nt int) {
		p, _ := testProblem(t, seed, modulation.BPSK, nt)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
				t.Errorf("dispatch: %v", err)
			}
		}()
	}

	// First problem occupies the gated worker solo.
	dispatch(500, 2)
	waitFor(t, "worker busy", func() bool { return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0 })
	// Queue: three batch-compatible (N=2) and one incompatible (N=4) problem.
	for i := 0; i < 3; i++ {
		dispatch(int64(501+i), 2)
	}
	dispatch(504, 4)
	waitFor(t, "backlog queued", func() bool { return s.Stats().QueueDepth == 4 })

	f.gate <- struct{}{} // solo head-of-line solve
	f.gate <- struct{}{} // batched run of the three compatible problems
	f.gate <- struct{}{} // solo run of the incompatible problem
	wg.Wait()

	f.mu.Lock()
	batches := append([]int(nil), f.batches...)
	f.mu.Unlock()
	if len(batches) != 1 || batches[0] != 3 {
		t.Fatalf("batched runs %v, want one run of 3", batches)
	}
	st := s.Stats()
	if st.BatchRuns != 1 || st.BatchedProblems != 3 {
		t.Fatalf("batch stats: %+v", st)
	}
	if want := 3.0 / 8.0; math.Abs(st.SlotOccupancy-want) > 1e-9 {
		t.Fatalf("SlotOccupancy = %g, want %g", st.SlotOccupancy, want)
	}
}

// gatedAnnealer delays the first annealer run so a cross-request batch can
// form behind it.
type gatedAnnealer struct {
	*backend.Annealer
	once sync.Once
	gate chan struct{}
}

func (g *gatedAnnealer) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	g.once.Do(func() { <-g.gate })
	return g.Annealer.Solve(ctx, p, src)
}

// End-to-end: concurrent requests through a real annealer pool get batched
// into shared embedding slots and still decode correctly.
func TestRealAnnealerBatchThroughScheduler(t *testing.T) {
	qpu, err := backend.NewAnnealer("qpu0", core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedAnnealer{Annealer: qpu, gate: make(chan struct{})}
	s, err := New(Config{Pool: []backend.Backend{gated}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 5
	type outcome struct {
		res *backend.Result
		err error
	}
	ins := make([]*mimo.Instance, n)
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	dispatch := func(i int) {
		p, in := testProblem(t, int64(600+i), modulation.QPSK, 2)
		ins[i] = in
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Dispatch(context.Background(), p, 0)
			outs[i] = outcome{res, err}
		}()
	}
	// Admit the head job alone and wait until the gated worker holds it, so
	// the remaining requests provably queue behind one blocked run.
	dispatch(0)
	waitFor(t, "worker busy on head job", func() bool {
		st := s.Stats()
		return st.Submitted == 1 && st.QueueDepth == 0
	})
	for i := 1; i < n; i++ {
		dispatch(i)
	}
	waitFor(t, "backlog behind gated run", func() bool {
		return s.Stats().QueueDepth == n-1
	})
	close(gated.gate)
	wg.Wait()

	batchedMax := 0
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("dispatch %d: %v", i, o.err)
		}
		if errs := ins[i].BitErrors(o.res.Bits); errs != 0 {
			t.Errorf("request %d: %d bit errors", i, errs)
		}
		if o.res.Batched > batchedMax {
			batchedMax = o.res.Batched
		}
	}
	if batchedMax < n-1 {
		t.Fatalf("largest batch %d, want the %d queued requests to share one run", batchedMax, n-1)
	}
	st := s.Stats()
	if st.BatchRuns < 1 || st.SlotOccupancy <= 0 {
		t.Fatalf("batch stats: %+v", st)
	}
}

// plannerTable is a minimal QPSK fit for scheduler planning tests: 4-user
// QPSK at 20–30 dB with p0=0.5, zero floor, 0.1 spread.
func plannerTable() *qos.Table {
	return &qos.Table{
		Ops: []qos.ClassOp{{Mod: "QPSK", JF: 4, Ta: 1, Tp: 1, Sp: 0.35}},
		Points: []qos.Point{
			{Mod: "QPSK", Nt: 4, SNRdB: 20, Mode: qos.ModeForward, P0: 0.5, FloorBER: 0, SpreadBER: 0.1},
			{Mod: "QPSK", Nt: 4, SNRdB: 30, Mode: qos.ModeForward, P0: 0.5, FloorBER: 0, SpreadBER: 0.1},
		},
	}
}

// A target-BER request must reach the backend with a planner-sized anneal
// budget, leaving the caller's Problem untouched.
func TestPlannerSizesAnnealBudget(t *testing.T) {
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{f}, Planner: pl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Noise-free 4-user QPSK: the SNR estimate is far above the fitted range
	// and clamps to the 30 dB point. (0.5)^Na·0.1 ≤ 1e-3 → Na = 7.
	p, _ := testProblem(t, 900, modulation.QPSK, 4)
	p.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	if p.Anneal != nil {
		t.Fatal("Dispatch mutated the caller's Problem")
	}
	f.mu.Lock()
	served := f.order[0]
	f.mu.Unlock()
	if served.Anneal == nil || served.Anneal.NumAnneals != 7 {
		t.Fatalf("backend saw Anneal=%+v, want a 7-read budget", served.Anneal)
	}
	if served.Anneal.AnnealTimeMicros != 1 || served.Anneal.PauseTimeMicros != 1 {
		t.Fatalf("backend saw schedule %+v, want the class operating point", served.Anneal)
	}
}

// A planner denial must route to the classical fallback and be counted.
func TestPlannerDenialRoutesToFallback(t *testing.T) {
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	pool := &fakeBackend{name: "qpu", est: 100}
	fb := &fakeBackend{name: "fb", est: 10}
	s, err := New(Config{Pool: []backend.Backend{pool}, Fallback: fb, Planner: pl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 8 users exceeds every fitted size: the planner denies quantum dispatch
	// even though the pool queue is empty and the deadline generous.
	p, _ := testProblem(t, 901, modulation.QPSK, 8)
	p.TargetBER = 1e-3
	res, err := s.Dispatch(context.Background(), p, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "fb" {
		t.Fatalf("dispatched to %q, want planner-denied fallback", res.Backend)
	}
	st := s.Stats()
	if st.PlannerClassical != 1 || st.FallbackDispatches != 1 || len(pool.order) != 0 {
		t.Fatalf("planner accounting: %+v (pool served %d)", st, len(pool.order))
	}

	// The planner's own stats recorded the denial reason.
	if pst := pl.Stats(); pst.Classical != 1 || pst.ByReason[qos.ReasonOversizeNt] != 1 {
		t.Fatalf("planner stats: %+v", pst)
	}
}

// DefaultTargetBER must apply to requests that carry no target of their own.
func TestPlannerDefaultTargetBER(t *testing.T) {
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{f}, Planner: pl, DefaultTargetBER: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 902, modulation.QPSK, 4)
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	served := f.order[0]
	f.mu.Unlock()
	if served.Anneal == nil || served.Anneal.NumAnneals != 7 {
		t.Fatalf("backend saw Anneal=%+v, want the default-target 7-read budget", served.Anneal)
	}
}

// Jobs whose anneal schedules disagree must not share a batched run.
func TestBatchRequiresCompatibleAnnealParams(t *testing.T) {
	f := &fakeBatchBackend{
		fakeBackend: fakeBackend{name: "qpu", est: 100, gate: make(chan struct{})},
		slots:       8,
	}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	dispatch := func(seed int64, params *anneal.Params) {
		p, _ := testProblem(t, seed, modulation.BPSK, 2)
		p.Anneal = params
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
				t.Errorf("dispatch: %v", err)
			}
		}()
	}

	sized := func(na int, ta float64) *anneal.Params {
		return &anneal.Params{AnnealTimeMicros: ta, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: na}
	}
	// Head occupies the gated worker; then two jobs sharing one schedule
	// (different read budgets — compatible) and one with a longer anneal
	// time (incompatible).
	dispatch(910, sized(10, 1))
	waitFor(t, "worker busy", func() bool { return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0 })
	dispatch(911, sized(10, 1))
	dispatch(912, sized(40, 1))
	dispatch(913, sized(10, 2))
	waitFor(t, "backlog queued", func() bool { return s.Stats().QueueDepth == 3 })

	f.gate <- struct{}{} // head solo
	f.gate <- struct{}{} // batch of the two compatible jobs
	f.gate <- struct{}{} // incompatible job solo
	wg.Wait()

	f.mu.Lock()
	batches := append([]int(nil), f.batches...)
	f.mu.Unlock()
	if len(batches) != 1 || batches[0] != 2 {
		t.Fatalf("batched runs %v, want one run of 2", batches)
	}
}

// Without a fallback, a deadline-driven planner denial must run the clamped
// best-effort budget instead of the static configuration.
func TestPlannerBestEffortWithoutFallback(t *testing.T) {
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{f}, Planner: pl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The table's QPSK nt=4 fit (p0=0.5, spread=0.1) needs 7 reads (14 µs)
	// for 1e-3; a 10 µs deadline fits 5.
	p, _ := testProblem(t, 930, modulation.QPSK, 4)
	p.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), p, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	served := f.order[0]
	f.mu.Unlock()
	if served.Anneal == nil || served.Anneal.NumAnneals != 5 {
		t.Fatalf("backend saw Anneal=%+v, want the clamped 5-read best effort", served.Anneal)
	}
	if st := s.Stats(); st.PlannerClassical != 0 || st.FallbackDispatches != 0 {
		t.Fatalf("best-effort dispatch miscounted: %+v", st)
	}
}

// The planner's fitted chain strength must reach the backend.
func TestPlannerAppliesChainStrength(t *testing.T) {
	pl, err := qos.NewPlanner(nil) // builtin: 16-QAM fitted at |J_F| = 12
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBackend{name: "qpu", est: 100}
	s, err := New(Config{Pool: []backend.Backend{f}, Planner: pl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 931, modulation.QAM16, 2)
	p.TargetBER = 0.05
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	served := f.order[0]
	f.mu.Unlock()
	if served.ChainJF != 12 {
		t.Fatalf("backend saw ChainJF=%g, want the fitted 12", served.ChainJF)
	}
}

// assertReconciled checks the PoolStats accounting invariant after a drain:
// every submitted problem is exactly one of completed or failed, completions
// match the per-backend solved counters, and planner denials are a subset of
// fallback dispatches.
func assertReconciled(t *testing.T, s *Scheduler) {
	t.Helper()
	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("Submitted %d != Completed %d + Failed %d", st.Submitted, st.Completed, st.Failed)
	}
	var solved, errors uint64
	for _, be := range st.Backends {
		solved += be.Solved
		errors += be.Errors
	}
	if solved != st.Completed {
		t.Fatalf("Σ backend Solved %d != Completed %d (%+v)", solved, st.Completed, st)
	}
	if errors > st.Failed {
		t.Fatalf("Σ backend Errors %d > Failed %d", errors, st.Failed)
	}
	if st.PlannerClassical > st.FallbackDispatches {
		t.Fatalf("PlannerClassical %d > FallbackDispatches %d", st.PlannerClassical, st.FallbackDispatches)
	}
}

// The stats ledger must reconcile across every admission path at once:
// pool-queued, queue-pressure fallback, and planner-denied fallback.
func TestStatsReconcileAcrossPaths(t *testing.T) {
	pl, err := qos.NewPlanner(plannerTable())
	if err != nil {
		t.Fatal(err)
	}
	pool := &fakeBackend{name: "qpu", est: 100}
	fb := &fakeBackend{name: "fb", est: 10}
	s, err := New(Config{Pool: []backend.Backend{pool}, Fallback: fb, Planner: pl})
	if err != nil {
		t.Fatal(err)
	}

	// Pool path: plain problems with no deadline pressure.
	for i := 0; i < 3; i++ {
		p, _ := testProblem(t, int64(950+i), modulation.QPSK, 4)
		if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Queue-pressure fallback: an unmeetable deadline.
	p, _ := testProblem(t, 960, modulation.QPSK, 4)
	if _, err := s.Dispatch(context.Background(), p, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Planner denial: 8 users exceeds every fitted size.
	p, _ = testProblem(t, 961, modulation.QPSK, 8)
	p.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertReconciled(t, s)
	st := s.Stats()
	if st.Submitted != 5 || st.FallbackDispatches != 2 || st.PlannerClassical != 1 {
		t.Fatalf("path accounting: %+v", st)
	}
}

// The coherence-aware gather must fill a keyed head's batch with same-window
// symbols first, even when other compatible jobs sit ahead of them in the
// queue. An unrelated blocker job holds the worker so the keyed head gathers
// from a populated queue.
func TestCoherentGatherPrefersSameChannel(t *testing.T) {
	f := &fakeBatchBackend{
		fakeBackend: fakeBackend{name: "qpu", est: 100, gate: make(chan struct{})},
		slots:       3,
	}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const window core.ChannelKey = 7
	var wg sync.WaitGroup
	dispatch := func(seed int64, key core.ChannelKey) *backend.Problem {
		p, _ := testProblem(t, seed, modulation.BPSK, 2)
		p.ChannelKey = key
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
				t.Errorf("dispatch: %v", err)
			}
		}()
		return p
	}

	// A blocker occupies the gated worker so everything below queues; each
	// admission is sequenced so the queue order is deterministic.
	blocker := dispatch(969, 0)
	waitFor(t, "worker busy", func() bool { return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0 })
	// Queue order: keyed head, then two other-window jobs AHEAD of the two
	// same-window symbols.
	enqueue := func(i int, seed int64, key core.ChannelKey) *backend.Problem {
		p := dispatch(seed, key)
		waitFor(t, "admission", func() bool { return s.Stats().QueueDepth == i })
		return p
	}
	head := enqueue(1, 970, window)
	other1 := enqueue(2, 971, 0)
	other2 := enqueue(3, 972, 99)
	same1 := enqueue(4, 973, window)
	same2 := enqueue(5, 974, window)

	f.gate <- struct{}{} // blocker solves solo
	f.gate <- struct{}{} // coherent batch around the keyed head
	f.gate <- struct{}{} // leftover batch of the other-window jobs
	wg.Wait()

	f.mu.Lock()
	order := append([]*backend.Problem(nil), f.order...)
	batches := append([]int(nil), f.batches...)
	f.mu.Unlock()

	// The keyed head's 3-slot batch must be {head, same1, same2}, skipping
	// the two other-window jobs queued ahead; those ride the next run.
	if len(batches) != 2 || batches[0] != 3 || batches[1] != 2 {
		t.Fatalf("batch sizes %v, want [3 2]", batches)
	}
	want := []*backend.Problem{blocker, head, same1, same2, other1, other2}
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("service order[%d] unexpected: coherent gather did not prefer same-window symbols", i)
		}
	}
	assertReconciled(t, s)
}

// With spare slots, a coherent gather must fill leftovers with other
// batch-compatible jobs rather than leaving slots idle, while still
// excluding batch-incompatible ones.
func TestCoherentGatherFillsLeftoverSlots(t *testing.T) {
	f := &fakeBatchBackend{
		fakeBackend: fakeBackend{name: "qpu", est: 100, gate: make(chan struct{})},
		slots:       4,
	}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	dispatch := func(seed int64, key core.ChannelKey, nt int) {
		p, _ := testProblem(t, seed, modulation.BPSK, nt)
		p.ChannelKey = key
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
				t.Errorf("dispatch: %v", err)
			}
		}()
	}
	dispatch(979, 0, 2) // blocker
	waitFor(t, "worker busy", func() bool { return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0 })
	enqueue := func(i int, seed int64, key core.ChannelKey, nt int) {
		dispatch(seed, key, nt)
		waitFor(t, "admission", func() bool { return s.Stats().QueueDepth == i })
	}
	enqueue(1, 980, 5, 2) // keyed head
	enqueue(2, 981, 0, 2) // other window, compatible
	enqueue(3, 982, 5, 2) // same window
	enqueue(4, 983, 0, 4) // incompatible N

	f.gate <- struct{}{} // blocker solo
	f.gate <- struct{}{} // head batch: same-window symbols + leftover compatible
	f.gate <- struct{}{} // the incompatible job, solo
	wg.Wait()

	f.mu.Lock()
	batches := append([]int(nil), f.batches...)
	f.mu.Unlock()
	if len(batches) != 1 || batches[0] != 3 {
		t.Fatalf("batched runs %v, want one run of 3", batches)
	}
	assertReconciled(t, s)
}

// Cost-aware dispatch must minimize spend through the capability
// descriptors' cost models without ever trading away a deadline or a BER
// target: easy (or best-effort) decodes divert to a strictly cheaper
// fallback, hard SNR classes keep their QPU reads, and a fallback that is
// pricier or too slow never wins.
func TestCostAwareDispatch(t *testing.T) {
	pricey := backend.CostModel{MicroUSDPerDeviceSecond: 3e6, PowerWatts: 500}
	cases := []struct {
		name      string
		costAware bool
		fbCost    backend.CostModel
		fbEst     float64
		deadline  time.Duration
		targetBER float64
		want      string
	}{
		{"cost-aware off stays on pool", false, backend.DefaultClassicalCostModel, 50, 0, 0, "qpu"},
		{"best-effort diverts to cheaper fallback", true, backend.DefaultClassicalCostModel, 50, 0, 0, "fb"},
		{"pricier fallback stays on pool", true, pricey, 50, 0, 0, "qpu"},
		{"fallback too slow for deadline stays on pool", true, backend.DefaultClassicalCostModel, 5000, time.Millisecond, 0, "qpu"},
		{"easy BER class diverts (planned reads ≤ easy bound)", true, backend.DefaultClassicalCostModel, 50, 0, 1e-3, "fb"},
		{"hard BER class keeps its QPU reads", true, backend.DefaultClassicalCostModel, 50, 0, 1e-9, "qpu"},
	}
	for i, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			pl, err := qos.NewPlanner(plannerTable())
			if err != nil {
				t.Fatal(err)
			}
			pool := &fakeBackend{name: "qpu", est: 100, cost: backend.DefaultQPUCostModel}
			fb := &fakeBackend{name: "fb", est: c.fbEst, cost: c.fbCost}
			s, err := New(Config{
				Pool: []backend.Backend{pool}, Fallback: fb,
				Planner: pl, CostAware: c.costAware,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Noise-free 4-user QPSK clamps to the table's 30 dB point:
			// (0.5)^Na·0.1 ≤ target prices 1e-3 at 7 reads (easy, under
			// DefaultCostEasyReads) and 1e-9 at 27 (hard, over it).
			p, _ := testProblem(t, int64(950+i), modulation.QPSK, 4)
			p.TargetBER = c.targetBER
			res, err := s.Dispatch(context.Background(), p, c.deadline)
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != c.want {
				t.Fatalf("decode served by %q, want %q", res.Backend, c.want)
			}
			st := s.Stats()
			if c.want == "fb" {
				if st.FallbackDispatches != 1 || st.PlannerClassical != 0 {
					t.Fatalf("cost divert accounting: fallback=%d planner=%d",
						st.FallbackDispatches, st.PlannerClassical)
				}
			} else if st.FallbackDispatches != 0 {
				t.Fatalf("unexpected fallback dispatch (%d)", st.FallbackDispatches)
			}
			assertReconciled(t, s)
		})
	}
}

// Completed work must charge spend and energy against the serving backend
// through its descriptor's cost model.
func TestStatsAccountSpendAndEnergy(t *testing.T) {
	f := &fakeBackend{name: "qpu", est: 100, cost: backend.DefaultQPUCostModel, delay: time.Millisecond}
	s, err := New(Config{Pool: []backend.Backend{f}})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := testProblem(t, 970, modulation.BPSK, 2)
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	be := s.Stats().Backends[0]
	// ≥ 1 ms at 555,555 µUSD/s and 25 kW: at least ~555 µUSD and 25 J.
	if be.SpendMicroUSD < 500 {
		t.Fatalf("SpendMicroUSD = %g, want ≥ 500 for a ≥1 ms QPU solve", be.SpendMicroUSD)
	}
	if be.EnergyMilliJ < 20_000 {
		t.Fatalf("EnergyMilliJ = %g, want ≥ 20000 for a ≥1 ms 25 kW solve", be.EnergyMilliJ)
	}
}
