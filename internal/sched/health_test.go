package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/health"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// healthFake is a deterministic backend for health-plane tests: traffic
// solves report a stable quality signature (deep energies, 2% chain breaks),
// and canary probes (recognizable as the plane's fixed BPSK instance — test
// traffic is QPSK) are answered at the ground anchor, so an unarmed backend
// always passes them. Wrapped in a backend.Degrader, the armed fault profile
// corrupts both.
type healthFake struct {
	name    string
	traffic atomic.Uint64
}

func (f *healthFake) Describe() *backend.Capabilities {
	return &backend.Capabilities{
		Name:    f.name,
		Latency: func(*backend.Problem) float64 { return 50 },
	}
}

func (f *healthFake) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	if p.Mod == modulation.BPSK {
		return &backend.Result{Bits: []byte{0}, Backend: f.name, Batched: 1, Energy: 0, Reads: 100}, nil
	}
	f.traffic.Add(1)
	return &backend.Result{
		Bits: []byte{0}, Backend: f.name, Batched: 1,
		Energy: -50, Reads: 100, BrokenChains: 2,
	}, nil
}

// The health plane end to end: an armed fault injector drifts one pool
// member's anneal quality, the tracker walks it Degraded → Quarantined
// within a bounded number of solves, the scheduler reroutes all traffic to
// the healthy member with zero client-visible failures, and after the fault
// clears, canary probes re-admit the backend into the rotation.
func TestHealthFaultInjectionEndToEnd(t *testing.T) {
	sickInner := &healthFake{name: "sick"}
	sick := backend.NewDegrader(sickInner, backend.DegraderFaults{
		ChainBreakRate: 0.5, // 2% → 52% broken chains per read
		EnergyDrift:    0.5, // −50 → −25 best energy; canary 0 → +0.5 (out of tolerance)
	})
	okInner := &healthFake{name: "ok"}
	tracker := health.NewTracker(health.Config{
		WindowSize: 8, MinWindow: 4,
		CanaryInterval: time.Millisecond,
	})
	burn := health.NewBurnTracker(1, health.SLOConfig{})
	s, err := New(Config{
		Pool:       []backend.Backend{sick, okInner},
		Health:     tracker,
		Burn:       burn,
		CanarySeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 1, modulation.QPSK, 4)
	// dispatch serves n requests two at a time: sequential dispatch would
	// let a single hot worker drain everything, and the point here is that
	// both pool members carry traffic.
	dispatch := func(n int) {
		t.Helper()
		for i := 0; i < n; i += 2 {
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for k := 0; k < 2; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					_, errs[k] = s.Dispatch(context.Background(), p, 0)
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatalf("dispatch failed: %v", err)
				}
			}
		}
	}

	// Phase 1 — baseline: both members serve and build reference windows.
	dispatch(40)
	if got := tracker.State("sick"); got != metrics.HealthHealthy {
		t.Fatalf("baseline state %v, want Healthy", got)
	}
	if sickInner.traffic.Load() == 0 || okInner.traffic.Load() == 0 {
		t.Fatalf("baseline traffic did not reach both members (sick=%d ok=%d)",
			sickInner.traffic.Load(), okInner.traffic.Load())
	}

	// Phase 2 — detection: arm the faults and keep serving. Detection is
	// bounded: each drifted solve scores well past PHDelta (the Degraded →
	// Quarantined rungs are asserted per-observation in internal/health), so
	// quarantine lands within a few sick-served solves — 60 dispatches
	// shared across two workers is generous margin.
	sick.SetDegraded(true)
	quarantined := false
	for i := 0; i < 30 && !quarantined; i++ {
		dispatch(2)
		quarantined = tracker.State("sick") == metrics.HealthQuarantined
	}
	if !quarantined {
		t.Fatalf("sick backend not quarantined within 60 dispatches (state %v, score %.2f)",
			tracker.State("sick"), tracker.Score("sick"))
	}

	// Phase 3 — reroute: with sick quarantined, traffic flows only to the
	// healthy member and nothing fails — the clients see the pool minus its
	// lost capacity, not the fault.
	sickBefore := sickInner.traffic.Load()
	dispatch(30)
	if got := sickInner.traffic.Load(); got != sickBefore {
		t.Fatalf("quarantined backend served %d requests", got-sickBefore)
	}
	st := s.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d client-visible failures during quarantine", st.Failed)
	}
	if burn.Snapshot()[0].Samples == 0 {
		t.Fatal("burn tracker saw no requests")
	}
	if burn.Alerting(0) {
		t.Fatal("no-deadline traffic burned the SLO budget")
	}

	// While armed, canary probes fail (the injected energy lift pushes the
	// probe result out of tolerance), so the backend stays out.
	time.Sleep(20 * time.Millisecond)
	if got := tracker.State("sick"); got != metrics.HealthQuarantined {
		t.Fatalf("armed backend re-admitted (state %v)", got)
	}

	// Phase 4 — recovery: clear the fault; the gate worker's canary probes
	// re-admit the backend and it rejoins the rotation.
	sick.SetDegraded(false)
	waitFor(t, "canary re-admission", func() bool {
		return tracker.State("sick") == metrics.HealthHealthy
	})
	var sn metrics.BackendHealth
	for _, b := range tracker.Snapshot() {
		if b.Name == "sick" {
			sn = b
		}
	}
	if sn.CanaryPass < uint64(health.DefaultCanaryPasses) {
		t.Fatalf("re-admitted with %d canary passes, want ≥ %d", sn.CanaryPass, health.DefaultCanaryPasses)
	}
	if sn.CanaryFail == 0 {
		t.Error("armed canary probes never failed")
	}
	rejoined := sickInner.traffic.Load()
	waitFor(t, "re-admitted backend serving", func() bool {
		dispatch(2)
		return sickInner.traffic.Load() > rejoined
	})
	assertReconciled(t, s)
}

// A fully-quarantined pool keeps serving: the AnyServing guard un-gates
// every member rather than starving the queue.
func TestHealthAllQuarantinedStillServes(t *testing.T) {
	inner := &healthFake{name: "only"}
	deg := backend.NewDegrader(inner, backend.DegraderFaults{FailEvery: 1})
	tracker := health.NewTracker(health.Config{WindowSize: 8, MinWindow: 4})
	s, err := New(Config{Pool: []backend.Backend{deg}, Health: tracker})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 2, modulation.QPSK, 4)
	// Two injected failures quarantine the only member.
	deg.SetDegraded(true)
	for i := 0; i < 2; i++ {
		if _, err := s.Dispatch(context.Background(), p, 0); err == nil {
			t.Fatal("injected fault did not surface")
		}
	}
	waitFor(t, "quarantine on failures", func() bool {
		return tracker.State("only") == metrics.HealthQuarantined
	})
	// Heal the device (its verdict is still Quarantined — no canaries can
	// run, there is no healthy member to cover while probing): the pool
	// must serve anyway.
	deg.SetDegraded(false)
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatalf("all-quarantined pool refused to serve: %v", err)
	}
	assertReconciled(t, s)
}
