package sched

import (
	"context"
	"testing"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/modulation"
	"quamax/internal/qos"
)

// softSchedOptions builds the small-chip decoder options the soft scheduler
// tests run with.
func softSchedOptions() core.Options {
	return core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 30},
	}
}

// TestSoftDecodesCountedInStats dispatches soft and hard problems through a
// real annealer pool and checks SoftSolved/LLRSaturations and the LLRs on
// the results.
func TestSoftDecodesCountedInStats(t *testing.T) {
	qpu, err := backend.NewAnnealer("qpu0", softSchedOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: []backend.Backend{qpu}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	softP, _ := testProblem(t, 301, modulation.QPSK, 4)
	softP.Soft = true
	softP.NoiseVar = 0.01
	hardP, _ := testProblem(t, 302, modulation.QPSK, 4)

	res, err := s.Dispatch(ctx, softP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LLRs) != len(res.Bits) {
		t.Fatalf("soft dispatch: %d LLRs for %d bits", len(res.LLRs), len(res.Bits))
	}
	if _, err := s.Dispatch(ctx, hardP, 0); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.SoftSolved != 1 {
		t.Fatalf("SoftSolved = %d, want 1", st.SoftSolved)
	}
	// A noise-free QPSK decode at Na=30 is unanimous: every bit saturates.
	if st.LLRSaturations != uint64(res.LLRSaturated) || res.LLRSaturated == 0 {
		t.Fatalf("LLRSaturations = %d, result saturated %d", st.LLRSaturations, res.LLRSaturated)
	}
}

// TestSoftFallbackCounted routes a soft problem to the classical fallback
// (impossible deadline) and checks the counters and the saturated LLRs.
func TestSoftFallbackCounted(t *testing.T) {
	qpu, err := backend.NewAnnealer("qpu0", softSchedOptions())
	if err != nil {
		t.Fatal(err)
	}
	sa := backend.NewClassicalSA("sa", 64, 40)
	s, err := New(Config{Pool: []backend.Backend{qpu}, Fallback: sa, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 311, modulation.QPSK, 4)
	p.Soft = true
	p.LLRClamp = 6
	// One nanosecond cannot fit the annealer's estimate: instant fallback.
	res, err := s.Dispatch(context.Background(), p, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sa" {
		t.Fatalf("expected the fallback to solve, got %q", res.Backend)
	}
	if res.LLRSaturated != len(res.Bits) {
		t.Fatalf("classical fallback: saturated %d of %d bits", res.LLRSaturated, len(res.Bits))
	}
	st := s.Stats()
	if st.SoftSolved != 1 || st.LLRSaturations != uint64(len(res.Bits)) {
		t.Fatalf("fallback soft counters: %+v", st)
	}
}

// TestPlannerSeesSoftFlag checks the dispatch path forwards Soft to the
// planner (via the planner's own Soft counter) and that the planned soft
// budget is smaller than the hard one at the same target.
func TestPlannerSeesSoftFlag(t *testing.T) {
	qpu, err := backend.NewAnnealer("qpu0", softSchedOptions())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := qos.NewPlanner(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: []backend.Backend{qpu}, Planner: pl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p, _ := testProblem(t, 321, modulation.QPSK, 4)
	p.Soft = true
	p.TargetBER = 1e-3
	if _, err := s.Dispatch(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Soft != 1 {
		t.Fatalf("planner Soft counter = %d, want 1", st.Soft)
	}
}
