package modulation

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"quamax/internal/rng"
)

func TestBasicProperties(t *testing.T) {
	cases := []struct {
		m           Modulation
		bits        int
		size        int
		levels      int
		energy      float64
		hasQuad     bool
		name        string
		bitsPerDim  int
		numLevelSet []float64
	}{
		{BPSK, 1, 2, 2, 1, false, "BPSK", 1, []float64{-1, 1}},
		{QPSK, 2, 4, 2, 2, true, "QPSK", 1, []float64{-1, 1}},
		{QAM16, 4, 16, 4, 10, true, "16-QAM", 2, []float64{-3, -1, 1, 3}},
		{QAM64, 6, 64, 8, 42, true, "64-QAM", 3, []float64{-7, -5, -3, -1, 1, 3, 5, 7}},
	}
	for _, c := range cases {
		if got := c.m.BitsPerSymbol(); got != c.bits {
			t.Errorf("%v BitsPerSymbol = %d, want %d", c.m, got, c.bits)
		}
		if got := c.m.ConstellationSize(); got != c.size {
			t.Errorf("%v ConstellationSize = %d, want %d", c.m, got, c.size)
		}
		if got := c.m.LevelsPerDim(); got != c.levels {
			t.Errorf("%v LevelsPerDim = %d, want %d", c.m, got, c.levels)
		}
		if got := c.m.AvgSymbolEnergy(); math.Abs(got-c.energy) > 1e-12 {
			t.Errorf("%v AvgSymbolEnergy = %g, want %g", c.m, got, c.energy)
		}
		if got := c.m.HasQuadrature(); got != c.hasQuad {
			t.Errorf("%v HasQuadrature = %v", c.m, got)
		}
		if got := c.m.String(); got != c.name {
			t.Errorf("String = %q, want %q", got, c.name)
		}
		if got := c.m.BitsPerDim(); got != c.bitsPerDim {
			t.Errorf("%v BitsPerDim = %d, want %d", c.m, got, c.bitsPerDim)
		}
		lv := c.m.Levels()
		for i, want := range c.numLevelSet {
			if lv[i] != want {
				t.Errorf("%v Levels[%d] = %g, want %g", c.m, i, lv[i], want)
			}
		}
	}
}

func TestParse(t *testing.T) {
	for _, m := range All() {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := Parse("8psk"); err == nil {
		t.Error("Parse accepted unknown modulation")
	}
}

func TestQuAMaxTransformKnownValues(t *testing.T) {
	// BPSK: T = 2q−1.
	if got := BPSK.QuAMaxTransform([]byte{0}); got != -1 {
		t.Errorf("BPSK T(0) = %v", got)
	}
	if got := BPSK.QuAMaxTransform([]byte{1}); got != 1 {
		t.Errorf("BPSK T(1) = %v", got)
	}
	// QPSK: T = (2q₁−1) + j(2q₂−1).
	if got := QPSK.QuAMaxTransform([]byte{0, 1}); got != complex(-1, 1) {
		t.Errorf("QPSK T(01) = %v", got)
	}
	// 16-QAM: T = (4q₁+2q₂−3) + j(4q₃+2q₄−3). Fig. 2(a): 1100 → (+1, −3).
	if got := QAM16.QuAMaxTransform([]byte{1, 1, 0, 0}); got != complex(3, -3) {
		t.Errorf("16-QAM T(1100) = %v, want (3,-3)", got)
	}
	if got := QAM16.QuAMaxTransform([]byte{0, 1, 1, 0}); got != complex(-1, 1) {
		t.Errorf("16-QAM T(0110) = %v, want (-1,1)", got)
	}
}

func TestMapGrayAdjacency(t *testing.T) {
	// Gray property: adjacent PAM levels differ in exactly one bit.
	for _, m := range All() {
		bd := m.BitsPerDim()
		l := m.LevelsPerDim()
		prev := -1
		for k := 0; k < l; k++ {
			g := k ^ (k >> 1)
			if prev >= 0 {
				diff := g ^ prev
				if bitsSet(diff) != 1 {
					t.Errorf("%v: levels %d,%d gray codes differ in %d bits", m, k-1, k, bitsSet(diff))
				}
			}
			prev = g
			_ = bd
		}
	}
}

func bitsSet(x int) int {
	n := 0
	for ; x > 0; x &= x - 1 {
		n++
	}
	return n
}

func TestMapDemapRoundTrip(t *testing.T) {
	src := rng.New(21)
	for _, m := range All() {
		q := m.BitsPerSymbol()
		for trial := 0; trial < 64; trial++ {
			bits := src.Bits(q)
			sym := m.MapGray(bits)
			got := m.DemapGray(sym, nil)
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("%v: demap(map(%v)) = %v", m, bits, got)
				}
			}
		}
	}
}

func TestDemapGrayWithNoise(t *testing.T) {
	// Small perturbations must not change the hard decision.
	src := rng.New(22)
	for _, m := range All() {
		q := m.BitsPerSymbol()
		for trial := 0; trial < 32; trial++ {
			bits := src.Bits(q)
			sym := m.MapGray(bits)
			noisy := sym + complex(0.4*(src.Float64()-0.5), 0.4*(src.Float64()-0.5))
			got := m.DemapGray(noisy, nil)
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("%v: noisy demap changed bits", m)
				}
			}
		}
	}
}

func TestSliceClampsOutliers(t *testing.T) {
	if got := QAM16.Slice(complex(100, -100)); got != complex(3, -3) {
		t.Errorf("Slice(100,-100) = %v, want (3,-3)", got)
	}
	if got := BPSK.Slice(complex(-0.01, 5)); got != complex(-1, 0) {
		t.Errorf("BPSK Slice = %v, want -1 (Q suppressed)", got)
	}
}

func TestPostTranslateRoundTrip(t *testing.T) {
	src := rng.New(23)
	for _, m := range All() {
		q := m.BitsPerSymbol()
		for trial := 0; trial < 64; trial++ {
			gray := src.Bits(3 * q) // three symbols
			qb := m.GrayToQuAMaxBits(gray)
			back := m.PostTranslate(qb)
			for i := range gray {
				if back[i] != gray[i] {
					t.Fatalf("%v: PostTranslate(GrayToQuAMaxBits(x)) != x", m)
				}
			}
		}
	}
}

// The decisive correctness property: mapping Gray bits to a symbol and
// mapping the equivalent QuAMax-transform bits must produce the SAME symbol.
// This is what makes the receiver's post-translation recover the sender's
// bits (paper's decoding example, §3.2.1).
func TestGrayAndQuAMaxBitsAgreeOnSymbol(t *testing.T) {
	for _, m := range All() {
		q := m.BitsPerSymbol()
		n := m.ConstellationSize()
		for idx := 0; idx < n; idx++ {
			gray := make([]byte, 0, q)
			gray = indexToBits(idx, q, gray)
			symTx := m.MapGray(gray)
			qb := m.GrayToQuAMaxBits(gray)
			symRx := m.QuAMaxTransform(qb)
			if symTx != symRx {
				t.Fatalf("%v bits %v: MapGray=%v, QuAMaxTransform(GrayToQuAMaxBits)=%v",
					m, gray, symTx, symRx)
			}
		}
	}
}

// PostTranslate must equal the paper's two-step procedure for all 16
// four-bit patterns (and longer strings).
func TestPaperTwoStepEquivalence(t *testing.T) {
	for idx := 0; idx < 16; idx++ {
		qb := indexToBits(idx, 4, nil)
		want := PaperPostTranslate16QAM(qb)
		got := QAM16.PostTranslate(qb)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("pattern %04b: paper=%v ours=%v", idx, want, got)
			}
		}
	}
	// Paper's worked examples: 1100 → 1111 (intermediate) → 1000 (Gray).
	got := QAM16.PostTranslate([]byte{1, 1, 0, 0})
	want := []byte{1, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("1100 → %v, want %v", got, want)
		}
	}
}

func TestPostTranslateIsBijection(t *testing.T) {
	for _, m := range All() {
		q := m.BitsPerSymbol()
		seen := make(map[int]bool)
		for idx := 0; idx < m.ConstellationSize(); idx++ {
			qb := indexToBits(idx, q, nil)
			out := bitsToIndex(m.PostTranslate(qb))
			if seen[out] {
				t.Fatalf("%v: PostTranslate not injective at %d", m, idx)
			}
			seen[out] = true
		}
	}
}

func TestConstellationCoversAllPoints(t *testing.T) {
	for _, m := range All() {
		pts := m.Constellation()
		if len(pts) != m.ConstellationSize() {
			t.Fatalf("%v: %d points", m, len(pts))
		}
		seen := make(map[complex128]bool)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%v: duplicate point %v", m, p)
			}
			seen[p] = true
		}
		// Average energy of the enumerated constellation matches the formula.
		var e float64
		for _, p := range pts {
			e += real(p)*real(p) + imag(p)*imag(p)
		}
		e /= float64(len(pts))
		if math.Abs(e-m.AvgSymbolEnergy()) > 1e-9 {
			t.Fatalf("%v: enumerated energy %g != %g", m, e, m.AvgSymbolEnergy())
		}
	}
}

func TestMapGrayVector(t *testing.T) {
	bits := []byte{0, 0, 1, 1} // two QPSK symbols
	syms := QPSK.MapGrayVector(bits)
	if len(syms) != 2 {
		t.Fatalf("got %d symbols", len(syms))
	}
	if syms[0] != complex(-1, -1) || syms[1] != complex(1, 1) {
		t.Fatalf("syms = %v", syms)
	}
	back := QPSK.DemapGrayVector(syms)
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("vector round trip failed: %v", back)
		}
	}
}

// Property test: slicing any noisy symbol yields a point no farther from the
// observation than the true transmitted point (nearest-neighbour property of
// per-dimension slicing on square constellations).
func TestSliceIsNearestNeighbour(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		for _, m := range All() {
			v := complex(src.Gauss(0, 4), src.Gauss(0, 4))
			sliced := m.Slice(v)
			if d := cmplx.Abs(v - sliced); math.Abs(d-m.NearestSymbolDistance(v)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
