// Package modulation implements the constellations QuAMax supports (BPSK,
// QPSK, 16-QAM and the paper's future-work 64-QAM), the Gray bit-to-symbol
// mapping used by transmitters, the linear QuAMax variable-to-symbol
// transform T (paper §3.2.1), and the bitwise post-translation of Fig. 2 that
// converts QuAMax-transform output bits back to Gray-coded bits.
//
// Conventions. Square QAM symbols are products of one-dimensional PAM levels
// {−(L−1), …, −1, +1, …, +(L−1)} with L levels per dimension. Bits are
// handled as []byte of 0/1 values, most significant bit first within each
// per-dimension group, I-dimension group before Q-dimension group within each
// symbol — exactly the layout of paper Fig. 2 (bits q_{4i−3} q_{4i−2} index
// the I level, q_{4i−1} q_{4i} the Q level for 16-QAM).
package modulation

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Modulation identifies a constellation.
type Modulation int

// Supported modulations.
const (
	BPSK  Modulation = iota // 1 bit/symbol, real axis only
	QPSK                    // 2 bits/symbol
	QAM16                   // 4 bits/symbol
	QAM64                   // 6 bits/symbol (paper §8 future work)
)

// String returns the conventional name.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// All lists every supported modulation in increasing order.
func All() []Modulation { return []Modulation{BPSK, QPSK, QAM16, QAM64} }

// Parse converts a name like "bpsk" or "16-QAM" to a Modulation.
func Parse(s string) (Modulation, error) {
	switch s {
	case "bpsk", "BPSK":
		return BPSK, nil
	case "qpsk", "QPSK":
		return QPSK, nil
	case "16qam", "16-QAM", "qam16", "QAM16":
		return QAM16, nil
	case "64qam", "64-QAM", "qam64", "QAM64":
		return QAM64, nil
	}
	return 0, fmt.Errorf("modulation: unknown name %q", s)
}

// BitsPerDim returns the bits per I (or Q) dimension: log2 of levels.
func (m Modulation) BitsPerDim() int {
	switch m {
	case BPSK, QPSK:
		return 1
	case QAM16:
		return 2
	case QAM64:
		return 3
	}
	panic("modulation: unknown modulation")
}

// HasQuadrature reports whether the constellation uses the Q dimension.
// Only BPSK is real-valued.
func (m Modulation) HasQuadrature() bool { return m != BPSK }

// Dims returns the number of active signal dimensions (1 or 2).
func (m Modulation) Dims() int {
	if m.HasQuadrature() {
		return 2
	}
	return 1
}

// BitsPerSymbol returns Q = log2 |O|.
func (m Modulation) BitsPerSymbol() int { return m.BitsPerDim() * m.Dims() }

// ConstellationSize returns |O| = 2^Q.
func (m Modulation) ConstellationSize() int { return 1 << m.BitsPerSymbol() }

// LevelsPerDim returns the number of PAM levels per dimension.
func (m Modulation) LevelsPerDim() int { return 1 << m.BitsPerDim() }

// Levels returns the PAM levels per dimension in increasing order:
// −(L−1), −(L−3), …, +(L−1).
func (m Modulation) Levels() []float64 {
	l := m.LevelsPerDim()
	out := make([]float64, l)
	for k := 0; k < l; k++ {
		out[k] = float64(2*k - (l - 1))
	}
	return out
}

// AvgSymbolEnergy returns E|v|² over the (unnormalized) constellation:
// 1 for BPSK, 2 for QPSK, 10 for 16-QAM, 42 for 64-QAM.
func (m Modulation) AvgSymbolEnergy() float64 {
	var perDim float64
	l := m.LevelsPerDim()
	for k := 0; k < l; k++ {
		lvl := float64(2*k - (l - 1))
		perDim += lvl * lvl
	}
	perDim /= float64(l)
	return perDim * float64(m.Dims())
}

// Constellation returns all |O| symbols, indexed by the natural-binary
// QuAMax-transform bit pattern (I bits high, Q bits low).
func (m Modulation) Constellation() []complex128 {
	n := m.ConstellationSize()
	out := make([]complex128, n)
	bits := make([]byte, m.BitsPerSymbol())
	for idx := 0; idx < n; idx++ {
		for b := range bits {
			bits[b] = byte(idx >> (len(bits) - 1 - b) & 1)
		}
		out[idx] = m.QuAMaxTransform(bits)
	}
	return out
}

// grayEncode converts a natural-binary index to its Gray code.
func grayEncode(k int) int { return k ^ (k >> 1) }

// grayDecode converts a Gray code to its natural-binary index.
func grayDecode(g int) int {
	k := 0
	for ; g > 0; g >>= 1 {
		k ^= g
	}
	return k
}

// bitsToIndex packs MSB-first 0/1 bytes into an integer.
func bitsToIndex(bits []byte) int {
	k := 0
	for _, b := range bits {
		k = k<<1 | int(b&1)
	}
	return k
}

// indexToBits unpacks an integer into n MSB-first 0/1 bytes, appending to dst.
func indexToBits(k, n int, dst []byte) []byte {
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(k>>i&1))
	}
	return dst
}

// QuAMaxTransform implements the paper's linear transform T: the natural
// binary value of the per-dimension bit group selects the PAM level
// 2·bin(bits)−(L−1). For 16-QAM this is T = 4q₁+2q₂−3 per dimension
// (paper Fig. 2a); for BPSK it is T = 2q−1.
//
// bits must hold exactly BitsPerSymbol entries.
func (m Modulation) QuAMaxTransform(bits []byte) complex128 {
	bd := m.BitsPerDim()
	if len(bits) != m.BitsPerSymbol() {
		panic(fmt.Sprintf("modulation: QuAMaxTransform needs %d bits, got %d", m.BitsPerSymbol(), len(bits)))
	}
	l := m.LevelsPerDim()
	iLvl := float64(2*bitsToIndex(bits[:bd]) - (l - 1))
	if !m.HasQuadrature() {
		return complex(iLvl, 0)
	}
	qLvl := float64(2*bitsToIndex(bits[bd:]) - (l - 1))
	return complex(iLvl, qLvl)
}

// MapGray maps Gray-coded data bits to one symbol, the transmitter side of
// Fig. 2(d). bits must hold exactly BitsPerSymbol entries.
func (m Modulation) MapGray(bits []byte) complex128 {
	bd := m.BitsPerDim()
	if len(bits) != m.BitsPerSymbol() {
		panic(fmt.Sprintf("modulation: MapGray needs %d bits, got %d", m.BitsPerSymbol(), len(bits)))
	}
	l := m.LevelsPerDim()
	iLvl := float64(2*grayDecode(bitsToIndex(bits[:bd])) - (l - 1))
	if !m.HasQuadrature() {
		return complex(iLvl, 0)
	}
	qLvl := float64(2*grayDecode(bitsToIndex(bits[bd:])) - (l - 1))
	return complex(iLvl, qLvl)
}

// MapGrayVector maps Nt·BitsPerSymbol Gray bits to Nt symbols.
func (m Modulation) MapGrayVector(bits []byte) []complex128 {
	q := m.BitsPerSymbol()
	if len(bits)%q != 0 {
		panic("modulation: bit count not a multiple of bits/symbol")
	}
	out := make([]complex128, len(bits)/q)
	for i := range out {
		out[i] = m.MapGray(bits[i*q : (i+1)*q])
	}
	return out
}

// sliceLevel returns the index of the nearest PAM level to x.
func (m Modulation) sliceLevel(x float64) int {
	l := m.LevelsPerDim()
	// Levels are 2k−(L−1): invert and clamp.
	k := int(math.Round((x + float64(l-1)) / 2))
	if k < 0 {
		k = 0
	}
	if k >= l {
		k = l - 1
	}
	return k
}

// Slice returns the nearest constellation point to v (per-dimension
// quantization, valid for square QAM and exact for ML slicing of a single
// symbol).
func (m Modulation) Slice(v complex128) complex128 {
	l := m.LevelsPerDim()
	iLvl := float64(2*m.sliceLevel(real(v)) - (l - 1))
	if !m.HasQuadrature() {
		return complex(iLvl, 0)
	}
	qLvl := float64(2*m.sliceLevel(imag(v)) - (l - 1))
	return complex(iLvl, qLvl)
}

// DemapGray hard-slices v and returns the Gray-coded bits of the nearest
// constellation point, appending to dst. This is the receive-side demapper
// used by the linear detectors.
func (m Modulation) DemapGray(v complex128, dst []byte) []byte {
	bd := m.BitsPerDim()
	dst = indexToBits(grayEncode(m.sliceLevel(real(v))), bd, dst)
	if m.HasQuadrature() {
		dst = indexToBits(grayEncode(m.sliceLevel(imag(v))), bd, dst)
	}
	return dst
}

// DemapGrayVector hard-slices each symbol and concatenates the Gray bits.
func (m Modulation) DemapGrayVector(v []complex128) []byte {
	out := make([]byte, 0, len(v)*m.BitsPerSymbol())
	for _, s := range v {
		out = m.DemapGray(s, out)
	}
	return out
}

// PostTranslate converts QuAMax-transform solution bits (natural binary per
// dimension, Fig. 2a) to the Gray-coded bits the transmitter sent (Fig. 2d).
// It is the per-dimension binary→Gray conversion; TestPaperTwoStep proves it
// equals the paper's column-flip + differential-encoding procedure.
// qbits must be a whole number of symbols; the result has the same length.
func (m Modulation) PostTranslate(qbits []byte) []byte {
	q := m.BitsPerSymbol()
	if len(qbits)%q != 0 {
		panic("modulation: PostTranslate bit count not a multiple of bits/symbol")
	}
	bd := m.BitsPerDim()
	out := make([]byte, 0, len(qbits))
	for off := 0; off < len(qbits); off += bd {
		out = indexToBits(grayEncode(bitsToIndex(qbits[off:off+bd])), bd, out)
	}
	return out
}

// GrayToQuAMaxBits is the inverse of PostTranslate: Gray data bits to the
// QuAMax-transform bit pattern of the same symbol (used to compute ground
// truth QUBO solutions in tests and metrics).
func (m Modulation) GrayToQuAMaxBits(gbits []byte) []byte {
	q := m.BitsPerSymbol()
	if len(gbits)%q != 0 {
		panic("modulation: GrayToQuAMaxBits bit count not a multiple of bits/symbol")
	}
	bd := m.BitsPerDim()
	out := make([]byte, 0, len(gbits))
	for off := 0; off < len(gbits); off += bd {
		out = indexToBits(grayDecode(bitsToIndex(gbits[off:off+bd])), bd, out)
	}
	return out
}

// PaperPostTranslate16QAM implements the two-step translation exactly as
// described in §3.2.1 for 16-QAM: (1) within each 4-bit group, if the second
// bit is 1, flip the third and fourth bits (intermediate code, Fig. 2b);
// (2) apply whole-group differential bit encoding g₁=b₁, g_k=b_{k−1}⊕b_k
// (Fig. 2c). Exported so tests can prove it equals PostTranslate.
func PaperPostTranslate16QAM(qbits []byte) []byte {
	if len(qbits)%4 != 0 {
		panic("modulation: PaperPostTranslate16QAM needs 4-bit groups")
	}
	out := make([]byte, len(qbits))
	for off := 0; off < len(qbits); off += 4 {
		b := [4]byte{qbits[off], qbits[off+1], qbits[off+2], qbits[off+3]}
		if b[1] == 1 { // intermediate code: flip bits 3 and 4
			b[2] ^= 1
			b[3] ^= 1
		}
		out[off] = b[0]
		out[off+1] = b[0] ^ b[1]
		out[off+2] = b[1] ^ b[2]
		out[off+3] = b[2] ^ b[3]
	}
	return out
}

// NearestSymbolDistance returns min |v−c| over constellation points c,
// a diagnostic used when validating slicers.
func (m Modulation) NearestSymbolDistance(v complex128) float64 {
	best := math.Inf(1)
	for _, c := range m.Constellation() {
		if d := cmplx.Abs(v - c); d < best {
			best = d
		}
	}
	return best
}
