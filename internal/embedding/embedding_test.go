package embedding

import (
	"math"
	"testing"

	"quamax/internal/chimera"
	"quamax/internal/qubo"
	"quamax/internal/rng"
)

func randLogical(src *rng.Source, n int) *qubo.Ising {
	p := qubo.NewIsing(n)
	for i := range p.H {
		p.H[i] = src.Gauss(0, 0.5)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.SetJ(i, j, src.Gauss(0, 0.5))
		}
	}
	return p
}

func TestChainLengthAndFootprint(t *testing.T) {
	// Paper Table 2 physical-qubit entries (rounded in print, exact here).
	cases := []struct{ n, chain, phys int }{
		{10, 4, 40},    // 10×10 BPSK → 10(⌈10/4⌉+1) = 40
		{20, 6, 120},   // 20 logical → 120
		{40, 11, 440},  // 40 logical → 440
		{60, 16, 960},  // 60 logical → ~1K in the paper
		{80, 21, 1680}, // 80 logical → ~2K
		{120, 31, 3720},
		{160, 41, 6560}, // ~7K
		{240, 61, 14640},
		{360, 91, 32760}, // ~33K
	}
	for _, c := range cases {
		if got := ChainLength(c.n); got != c.chain {
			t.Errorf("ChainLength(%d) = %d, want %d", c.n, got, c.chain)
		}
		if got := PhysicalQubits(c.n); got != c.phys {
			t.Errorf("PhysicalQubits(%d) = %d, want %d", c.n, got, c.phys)
		}
	}
}

func TestEmbedStructure(t *testing.T) {
	g := chimera.New(8)
	for _, n := range []int{1, 3, 4, 5, 12, 17, 32} {
		e, err := Embed(g, n)
		if err != nil {
			t.Fatalf("Embed(%d): %v", n, err)
		}
		if len(e.Chains) != n {
			t.Fatalf("n=%d: %d chains", n, len(e.Chains))
		}
		want := ChainLength(n)
		used := make(map[int]bool)
		for i, chain := range e.Chains {
			if len(chain) != want {
				t.Fatalf("n=%d chain %d: length %d, want %d", n, i, len(chain), want)
			}
			for k, q := range chain {
				if used[q] {
					t.Fatalf("n=%d: qubit %d reused", n, q)
				}
				used[q] = true
				if k > 0 && !g.HasEdge(chain[k-1], chain[k]) {
					t.Fatalf("n=%d chain %d: gap at position %d", n, i, k)
				}
			}
		}
		if e.NumPhysical() != PhysicalQubits(n) {
			t.Fatalf("n=%d: NumPhysical %d, want %d", n, e.NumPhysical(), PhysicalQubits(n))
		}
		// Every logical pair has a coupler; same-cell pairs have two.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges := e.couplerEdges(i, j)
				if len(edges) == 0 {
					t.Fatalf("n=%d: pair (%d,%d) has no coupler", n, i, j)
				}
				if i/4 == j/4 && len(edges) != 2 {
					t.Fatalf("n=%d: same-cell pair (%d,%d) has %d edges, want 2", n, i, j, len(edges))
				}
				if i/4 != j/4 && len(edges) != 1 {
					t.Fatalf("n=%d: cross-cell pair (%d,%d) has %d edges, want 1", n, i, j, len(edges))
				}
			}
		}
	}
}

func TestEmbedTooLarge(t *testing.T) {
	g := chimera.New(2)
	if _, err := Embed(g, 12); err == nil { // needs M=3 > 2
		t.Fatal("expected failure for oversized problem")
	}
}

func TestEmbedAvoidsDefects(t *testing.T) {
	full := chimera.New(4)
	// Kill every qubit of cell (0,0) so the origin placement fails.
	var dead []int
	for _, s := range []chimera.Side{chimera.Vertical, chimera.Horizontal} {
		for k := 0; k < 4; k++ {
			dead = append(dead, full.QubitID(0, 0, s, k))
		}
	}
	g := chimera.NewWithDefects(4, dead, nil)
	e, err := Embed(g, 8) // M=2 triangle
	if err != nil {
		t.Fatalf("Embed should relocate around defects: %v", err)
	}
	for _, chain := range e.Chains {
		for _, q := range chain {
			if !g.HasQubit(q) {
				t.Fatal("embedding used a dead qubit")
			}
		}
	}
	if e.RowOff == 0 && e.ColOff == 0 && !e.Flipped {
		t.Fatal("placement should have moved off the defective origin")
	}
}

// Ground-state preservation: the exact ground state of the embedded physical
// problem must unembed (with zero broken chains) to the exact logical ground
// state, and the energies must satisfy
// E_phys = E_logical/|J_F| − ChainEdges·|chainCoupler|.
func TestEmbeddedGroundStatePreserved(t *testing.T) {
	src := rng.New(61)
	g := chimera.New(4)
	for _, n := range []int{2, 4, 6} {
		for _, improved := range []bool{false, true} {
			p := randLogical(src, n)
			e, err := Embed(g, n)
			if err != nil {
				t.Fatal(err)
			}
			jf := 3.0 + float64(n) // strong chains: exact preservation
			ep, err := e.EmbedIsing(p, jf, improved)
			if err != nil {
				t.Fatal(err)
			}
			physGS, physE := qubo.BruteForceIsing(ep.Phys.ToDense())
			logical, broken := e.Unembed(physGS, src)
			if broken != 0 {
				t.Fatalf("n=%d improved=%v: ground state has %d broken chains", n, improved, broken)
			}
			wantGS, wantE := qubo.BruteForceIsing(p)
			if got := p.Energy(logical); math.Abs(got-wantE) > 1e-9 {
				t.Fatalf("n=%d: unembedded energy %g, want %g", n, got, wantE)
			}
			chainMag := 1.0
			if improved {
				chainMag = 2.0
			}
			wantPhysE := wantE/jf - float64(ep.ChainEdges)*chainMag
			if math.Abs(physE-wantPhysE) > 1e-9 {
				t.Fatalf("n=%d improved=%v: physical energy %g, want %g", n, improved, physE, wantPhysE)
			}
			// Spins must match up to a possible global flip only if the
			// problem has fields (it does), so they must match exactly.
			for i := range wantGS {
				if logical[i] != wantGS[i] {
					t.Fatalf("n=%d: unembedded ground state differs at %d", n, i)
				}
			}
		}
	}
}

func TestUnembedMajorityAndTies(t *testing.T) {
	g := chimera.New(4)
	e, err := Embed(g, 5) // chain length 3: clean majority possible
	if err != nil {
		t.Fatal(err)
	}
	phys := make([]int8, e.NumPhysical())
	for i := range phys {
		phys[i] = 1
	}
	// Corrupt one qubit of chain 0: majority still +1, one broken chain.
	phys[0] = -1
	logical, broken := e.Unembed(phys, rng.New(1))
	if broken != 1 {
		t.Fatalf("broken = %d, want 1", broken)
	}
	for i, s := range logical {
		if s != 1 {
			t.Fatalf("logical %d = %d, want +1 by majority", i, s)
		}
	}

	// Tie handling: even-length chains split 50/50 must randomize.
	e4, err := Embed(g, 4) // chain length 2
	if err != nil {
		t.Fatal(err)
	}
	tie := make([]int8, e4.NumPhysical())
	for i := range tie {
		if i%2 == 0 {
			tie[i] = 1
		} else {
			tie[i] = -1
		}
	}
	src := rng.New(2)
	sawPlus, sawMinus := false, false
	for trial := 0; trial < 64; trial++ {
		lg, _ := e4.Unembed(tie, src)
		for _, s := range lg {
			if s == 1 {
				sawPlus = true
			} else {
				sawMinus = true
			}
		}
	}
	if !sawPlus || !sawMinus {
		t.Fatal("tie votes should randomize between +1 and −1")
	}
}

func TestEmbedIsingValidation(t *testing.T) {
	g := chimera.New(4)
	e, _ := Embed(g, 4)
	if _, err := e.EmbedIsing(qubo.NewIsing(5), 1, false); err == nil {
		t.Fatal("size mismatch should error")
	}
	if _, err := e.EmbedIsing(qubo.NewIsing(4), 0, false); err == nil {
		t.Fatal("non-positive |J_F| should error")
	}
}

func TestFieldsSpreadAcrossChains(t *testing.T) {
	g := chimera.New(4)
	e, _ := Embed(g, 4)
	p := qubo.NewIsing(4)
	p.H[2] = 6.0
	ep, err := e.EmbedIsing(p, 2.0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Chain length 2, |J_F| = 2 → each qubit of chain 2 gets 6/(2·2) = 1.5;
	// all other fields zero.
	var sum float64
	for i, h := range ep.Phys.H {
		sum += h
		q := e.PhysicalID(i)
		inChain2 := false
		for _, c := range e.Chains[2] {
			if c == q {
				inChain2 = true
			}
		}
		if inChain2 && math.Abs(h-1.5) > 1e-12 {
			t.Fatalf("chain-2 qubit field %g, want 1.5", h)
		}
		if !inChain2 && h != 0 {
			t.Fatalf("unexpected field %g on qubit %d", h, i)
		}
	}
	if math.Abs(sum-3.0) > 1e-12 { // f_i/|J_F| total
		t.Fatalf("total field %g, want 3", sum)
	}
}

func TestParallelFactorAndPacking(t *testing.T) {
	g := chimera.DW2Q()
	// Paper §4: a 16-logical-qubit problem (80 physical qubits) runs "more
	// than 20 times in parallel" on the DW2Q.
	if pf := ParallelFactorFormula(g, 16); pf < 20 {
		t.Fatalf("formula Pf = %g, want > 20", pf)
	}
	slots := PackSlots(g, 16)
	if len(slots) < 20 {
		t.Fatalf("packed %d slots, want ≥ 20", len(slots))
	}
	// Slots must be pairwise disjoint.
	used := make(map[int]int)
	for si, e := range slots {
		for _, chain := range e.Chains {
			for _, q := range chain {
				if prev, ok := used[q]; ok {
					t.Fatalf("qubit %d used by slots %d and %d", q, prev, si)
				}
				used[q] = si
			}
		}
	}
	// Large problems still pack at least one slot.
	if len(PackSlots(g, 60)) < 1 {
		t.Fatal("60-spin problem should fit at least once")
	}
}

func TestPackSlotsOnDefectFreeC16(t *testing.T) {
	g := chimera.New(16)
	// M=4 triangles: 4 row-blocks × 3 column-blocks × 2 + one extra column
	// block of 4 cells per row block (16 = 3·5+1 leaves 1 cell: no extra).
	slots := PackSlots(g, 16)
	if len(slots) != 24 {
		t.Fatalf("packed %d slots on defect-free C16, want 24", len(slots))
	}
}

func TestEmbedOnDW2QRealSizes(t *testing.T) {
	g := chimera.DW2Q()
	// The paper's headline sizes must embed on the defective chip:
	// 48-user BPSK (N=48), 18-user QPSK (N=36), 60-user BPSK (N=60).
	for _, n := range []int{36, 48, 60} {
		if _, err := Embed(g, n); err != nil {
			t.Fatalf("Embed(%d) on DW2Q: %v", n, err)
		}
	}
}

func TestPhysicalInit(t *testing.T) {
	g := chimera.New(4)
	e, err := Embed(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	logical := []int8{1, -1, 1, -1, 1, -1}
	phys := e.PhysicalInit(logical)
	if len(phys) != e.NumPhysical() {
		t.Fatalf("physical init length %d", len(phys))
	}
	// Unembedding the init must reproduce the logical state with no breaks.
	back, broken := e.Unembed(phys, rng.New(1))
	if broken != 0 {
		t.Fatalf("%d broken chains in a replicated init", broken)
	}
	for i := range logical {
		if back[i] != logical[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestPegasusProjection(t *testing.T) {
	// Paper §8: chains shrink to N/12+1.
	if got := PegasusChainLength(60); got != 6 {
		t.Fatalf("PegasusChainLength(60) = %d, want 6", got)
	}
	if got := PegasusPhysicalQubits(60); got != 360 {
		t.Fatalf("PegasusPhysicalQubits(60) = %d, want 360", got)
	}
	// Pegasus chains are never longer than Chimera chains.
	for _, n := range []int{1, 12, 48, 120, 350} {
		if PegasusChainLength(n) > ChainLength(n) {
			t.Fatalf("Pegasus chain longer than Chimera at n=%d", n)
		}
	}
}
