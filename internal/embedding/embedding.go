// Package embedding compiles fully-connected Ising problems onto the Chimera
// hardware graph (paper §3.3 and Appendix B).
//
// The construction is the triangle clique embedding of Venturelli et al.
// [69]: each of the N logical spins becomes a ferromagnetically coupled
// chain of ⌈N/4⌉+1 physical qubits laid out as an L of horizontal qubits
// (row g, columns 0…g) and vertical qubits (column g, rows g…M−1), with four
// logical spins per diagonal unit cell. Every pair of logical spins then
// meets at exactly one unit cell (two K_{4,4} edges for same-cell pairs, one
// otherwise), which is where the problem coupling g_ij is programmed.
//
// EmbedIsing produces the Appendix-B objective: chain couplers at the
// maximum negative value (−1, or −2 with the improved dynamic range of §4),
// problem couplings g_ij/|J_F| split equally over the available physical
// edges, and fields f_i/(|J_F|·chainLen) spread along each chain. Unembed
// recovers logical spins by majority vote with randomized ties (§3.3).
package embedding

import (
	"errors"
	"fmt"

	"quamax/internal/chimera"
	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// ChainLength returns ⌈N/4⌉+1, the physical qubits per logical spin (§3.3).
func ChainLength(n int) int {
	if n <= 0 {
		panic("embedding: need at least one logical spin")
	}
	return (n+3)/4 + 1
}

// PhysicalQubits returns N·(⌈N/4⌉+1), the total footprint (Table 2).
func PhysicalQubits(n int) int { return n * ChainLength(n) }

// Embedding is a placed triangle clique embedding.
type Embedding struct {
	Graph  *chimera.Graph
	N      int     // logical spins
	M      int     // diagonal cells = ⌈N/4⌉
	Chains [][]int // Chains[i] lists physical qubit graph-IDs of logical i, in path order

	// RowOff, ColOff, Flipped record the placement that was used.
	RowOff, ColOff int
	Flipped        bool

	physIndex map[int]int // graph qubit ID → dense physical index
	physID    []int       // dense physical index → graph qubit ID
}

// NumPhysical returns the number of physical qubits used.
func (e *Embedding) NumPhysical() int { return len(e.physID) }

// PhysicalID maps a dense physical index back to the Chimera qubit ID.
func (e *Embedding) PhysicalID(i int) int { return e.physID[i] }

// ErrNoPlacement is returned when no defect-free placement exists.
var ErrNoPlacement = errors.New("embedding: no defect-free placement found")

// Embed places an N-spin clique on g, scanning placements (all offsets, both
// triangle orientations) until one avoids every defect.
func Embed(g *chimera.Graph, n int) (*Embedding, error) {
	m := (n + 3) / 4
	if m > g.M {
		return nil, fmt.Errorf("embedding: %d logical spins need a C_%d grid, have C_%d", n, m, g.M)
	}
	for _, flipped := range []bool{false, true} {
		for rowOff := 0; rowOff+m <= g.M; rowOff++ {
			for colOff := 0; colOff+m <= g.M; colOff++ {
				e, err := embedTriangle(g, n, rowOff, colOff, flipped)
				if err == nil {
					return e, nil
				}
			}
		}
	}
	return nil, ErrNoPlacement
}

// embedTriangle attempts one concrete placement. flipped selects the
// upper-triangle mirror (vertical qubits above the diagonal) used to pack
// two instances per M×(M+1) block.
func embedTriangle(g *chimera.Graph, n, rowOff, colOff int, flipped bool) (*Embedding, error) {
	m := (n + 3) / 4
	e := &Embedding{
		Graph: g, N: n, M: m,
		RowOff: rowOff, ColOff: colOff, Flipped: flipped,
		Chains:    make([][]int, n),
		physIndex: make(map[int]int),
	}
	for i := 0; i < n; i++ {
		grp, off := i/4, i%4
		chain := make([]int, 0, m+1)
		if !flipped {
			// Horizontal run: row grp, columns 0..grp; then vertical run:
			// column grp, rows grp..m−1.
			for c := 0; c <= grp; c++ {
				chain = append(chain, g.QubitID(rowOff+grp, colOff+c, chimera.Horizontal, off))
			}
			for r := grp; r < m; r++ {
				chain = append(chain, g.QubitID(rowOff+r, colOff+grp, chimera.Vertical, off))
			}
		} else {
			// Mirror: vertical run rows 0..grp in column grp; horizontal run
			// row grp, columns grp..m−1.
			for r := 0; r <= grp; r++ {
				chain = append(chain, g.QubitID(rowOff+r, colOff+grp, chimera.Vertical, off))
			}
			for c := grp; c < m; c++ {
				chain = append(chain, g.QubitID(rowOff+grp, colOff+c, chimera.Horizontal, off))
			}
		}
		// Validate qubits and chain edges against defects.
		for k, q := range chain {
			if !g.HasQubit(q) {
				return nil, fmt.Errorf("embedding: chain %d hits dead qubit %d", i, q)
			}
			if k > 0 && !g.HasEdge(chain[k-1], chain[k]) {
				return nil, fmt.Errorf("embedding: chain %d missing edge %d-%d", i, chain[k-1], chain[k])
			}
		}
		e.Chains[i] = chain
	}
	// Validate that every logical pair has at least one physical coupler.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(e.couplerEdges(i, j)) == 0 {
				return nil, fmt.Errorf("embedding: no working coupler between logical %d and %d", i, j)
			}
		}
	}
	// Dense physical indexing in chain order.
	for _, chain := range e.Chains {
		for _, q := range chain {
			if _, ok := e.physIndex[q]; ok {
				return nil, fmt.Errorf("embedding: qubit %d assigned to two chains", q)
			}
			e.physIndex[q] = len(e.physID)
			e.physID = append(e.physID, q)
		}
	}
	return e, nil
}

// DenseChainIndices returns, for every logical spin, the dense physical
// indices (0..NumPhysical−1) of its chain qubits in path order — the
// positions a compiled channel rewrites when reprogramming only the fields
// of an already-programmed coupler template (Eq. 11 spreads f_i along the
// chain; the couplers of Eqs. 10 and 12 are field-independent).
func (e *Embedding) DenseChainIndices() [][]int32 {
	out := make([][]int32, e.N)
	for i, chain := range e.Chains {
		idx := make([]int32, len(chain))
		for k, q := range chain {
			idx[k] = int32(e.physIndex[q])
		}
		out[i] = idx
	}
	return out
}

// couplerEdges returns the working physical edges joining chains i and j
// (δ_ij of Eq. 12).
func (e *Embedding) couplerEdges(i, j int) [][2]int {
	var out [][2]int
	// Chains meet inside one unit cell; scan pairs cheaply since chains are
	// short (≤ M+1).
	for _, a := range e.Chains[i] {
		for _, b := range e.Chains[j] {
			if e.Graph.HasEdge(a, b) {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// EmbeddedProblem is a compiled physical Ising program plus the metadata
// needed to interpret annealer samples.
type EmbeddedProblem struct {
	Emb           *Embedding
	Logical       *qubo.Ising
	JF            float64
	ImprovedRange bool
	Phys          *qubo.Sparse // over dense physical indices 0..NumPhysical−1
	ChainEdges    int          // number of intra-chain couplers
}

// EmbedIsing compiles the logical problem onto the placement per Appendix B:
//
//	chain couplers: −1 (standard range) or −2 (improved range)   (Eq. 10)
//	fields:         f_i/(|J_F|·chainLen) on every chain qubit     (Eq. 11)
//	couplings:      g_ij/(|J_F|·|δ_ij|) on each physical edge     (Eq. 12)
//
// Splitting g_ij over |δ_ij| edges preserves the logical objective exactly
// (Eq. 12 as printed places the full coefficient on every edge of δ_ij,
// which would double same-cell couplings; the split is the standard fix).
// jf must be positive. The physical offset is chosen so that a sample with
// all chains intact has energy E_logical/|J_F| − ChainEdges·|chainCoupler|
// + offset bookkeeping; see UnembeddedEnergy.
func (e *Embedding) EmbedIsing(p *qubo.Ising, jf float64, improvedRange bool) (*EmbeddedProblem, error) {
	if p.N != e.N {
		return nil, fmt.Errorf("embedding: problem has %d spins, embedding has %d", p.N, e.N)
	}
	if jf <= 0 {
		return nil, errors.New("embedding: |J_F| must be positive")
	}
	phys := qubo.NewSparse(e.NumPhysical())
	chainCoupler := -1.0
	if improvedRange {
		chainCoupler = -2.0
	}
	ep := &EmbeddedProblem{Emb: e, Logical: p, JF: jf, ImprovedRange: improvedRange, Phys: phys}

	chainLen := ChainLength(e.N)
	for i, chain := range e.Chains {
		f := p.H[i] / (jf * float64(chainLen))
		for k, q := range chain {
			phys.H[e.physIndex[q]] += f
			if k > 0 {
				phys.AddEdge(e.physIndex[chain[k-1]], e.physIndex[q], chainCoupler)
				ep.ChainEdges++
			}
		}
	}
	for i := 0; i < e.N; i++ {
		for j := i + 1; j < e.N; j++ {
			gij := p.GetJ(i, j)
			if gij == 0 {
				continue
			}
			edges := e.couplerEdges(i, j)
			w := gij / (jf * float64(len(edges)))
			for _, ed := range edges {
				phys.AddEdge(e.physIndex[ed[0]], e.physIndex[ed[1]], w)
			}
		}
	}
	return ep, nil
}

// Unembed majority-votes each chain of a physical sample into a logical spin
// (±1). Vote ties are randomized via src (paper §3.3). It returns the
// logical spins and the number of broken chains (chains whose qubits
// disagreed).
func (e *Embedding) Unembed(phys []int8, src *rng.Source) (logical []int8, broken int) {
	if len(phys) != e.NumPhysical() {
		panic("embedding: physical sample length mismatch")
	}
	logical = make([]int8, e.N)
	for i, chain := range e.Chains {
		sum := 0
		for _, q := range chain {
			sum += int(phys[e.physIndex[q]])
		}
		switch {
		case sum > 0:
			logical[i] = 1
		case sum < 0:
			logical[i] = -1
		default:
			if src != nil && src.Bool() {
				logical[i] = 1
			} else {
				logical[i] = -1
			}
		}
		if sum != len(chain) && sum != -len(chain) {
			broken++
		}
	}
	return logical, broken
}

// UnembeddedEnergy evaluates the ORIGINAL logical Ising objective for a
// physical sample: unembed, then substitute into Eq. 2 — exactly the
// post-processing the paper describes ("each configuration yields the
// corresponding energy of the Ising objective function by substituting it
// into the original Ising spin glass equation").
func (ep *EmbeddedProblem) UnembeddedEnergy(phys []int8, src *rng.Source) (float64, []int8, int) {
	logical, broken := ep.Emb.Unembed(phys, src)
	return ep.Logical.Energy(logical), logical, broken
}

// ParallelFactorFormula is the paper §4 parallelization factor
// Pf ≃ Ntot/(N(⌈N/4⌉+1)) — the asymptotic count of problem copies that fit.
func ParallelFactorFormula(g *chimera.Graph, n int) float64 {
	return float64(g.NumWorkingQubits()) / float64(PhysicalQubits(n))
}

// PackSlots places as many disjoint copies of an N-spin clique embedding as
// the chip geometry allows: the grid is tiled with M×(M+1)-cell blocks, each
// holding a lower triangle and a column-shifted mirrored triangle. Slots
// whose region contains defects are dropped. The result length is the
// geometric parallelization factor used to amortize TTB (§4 footnote: "in
// finite-size chips, chip geometry comes into play").
func PackSlots(g *chimera.Graph, n int) []*Embedding {
	m := (n + 3) / 4
	var out []*Embedding
	for rowOff := 0; rowOff+m <= g.M; rowOff += m {
		for colOff := 0; colOff+m+1 <= g.M; colOff += m + 1 {
			if e, err := embedTriangle(g, n, rowOff, colOff, false); err == nil {
				out = append(out, e)
			}
			if e, err := embedTriangle(g, n, rowOff, colOff+1, true); err == nil {
				out = append(out, e)
			}
		}
		// A final column block of exactly M cells fits one unflipped triangle.
		rem := g.M % (m + 1)
		if rem >= m {
			colOff := g.M - rem
			if e, err := embedTriangle(g, n, rowOff, colOff, false); err == nil {
				out = append(out, e)
			}
		}
	}
	return out
}

// PhysicalInit expands a logical spin assignment into the physical initial
// state used by reverse annealing: every qubit of chain i takes logical spin
// i's value.
func (e *Embedding) PhysicalInit(logical []int8) []int8 {
	if len(logical) != e.N {
		panic("embedding: logical state length mismatch")
	}
	out := make([]int8, e.NumPhysical())
	for i, chain := range e.Chains {
		for _, q := range chain {
			out[e.physIndex[q]] = logical[i]
		}
	}
	return out
}

// PegasusChainLength is the paper §8 projection for the next-generation
// annealer topology (Pegasus, double the Chimera degree with longer-range
// couplers): clique chains shrink to N/12 + 1 qubits.
func PegasusChainLength(n int) int {
	if n <= 0 {
		panic("embedding: need at least one logical spin")
	}
	return n/12 + 1
}

// PegasusPhysicalQubits is the projected clique footprint on a Pegasus-era
// chip.
func PegasusPhysicalQubits(n int) int { return n * PegasusChainLength(n) }
