package metrics

import "sort"

// HealthState classifies one backend on the solver-health plane
// (internal/health): Healthy serves normally, Degraded serves under watch
// (its drift score crossed the detection threshold), Quarantined is pulled
// from regular dispatch and earns re-admission through canary probes.
type HealthState uint8

// Backend health states, ordered by severity. The numeric values ride the
// protocol-v9 stats frame and the Prometheus gauge, so they are wire format:
// never renumber.
const (
	HealthHealthy HealthState = iota
	HealthDegraded
	HealthQuarantined
)

// String renders the state for `quamax -top` and log output.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// BackendHealth is one backend's point-in-time view on the health plane:
// its drift-detector verdict plus the rolling baselines the verdict was
// scored against.
type BackendHealth struct {
	// Name is the backend's descriptor name (Capabilities.Name).
	Name string
	// State is the drift detector's verdict.
	State HealthState
	// Score is the current Page–Hinkley cumulative-deviation statistic:
	// ~0 while the backend tracks its own baselines, growing with sustained
	// quality drift. Compare against the tracker's configured thresholds.
	Score float64
	// Observations counts the quality samples scored so far.
	Observations uint64
	// ChainBreakEWMA is the rolling per-read chain-break rate baseline.
	ChainBreakEWMA float64
	// EnergyEWMA is the rolling |best energy| baseline (class-normalized).
	EnergyEWMA float64
	// FailureEWMA is the rolling solve-failure rate.
	FailureEWMA float64
	// ReadsPerSolve is the rolling read budget per solve — the TTS proxy:
	// a planner compensating a sick device shows up here before BER does.
	ReadsPerSolve float64
	// CanaryPass and CanaryFail count canary-probe outcomes while the
	// backend was quarantined (cumulative over its lifetime).
	CanaryPass, CanaryFail uint64
}

// ShardBurn is one shard's SLO burn-rate view: deadline-miss and BER-proxy
// budget consumption over a fast and a slow window (Google-SRE-style
// multi-window burn alerting), plus the router-side shed counters that act
// on it.
type ShardBurn struct {
	// FastMissRate and SlowMissRate are the deadline-miss rates over the
	// fast and slow EWMA windows.
	FastMissRate, SlowMissRate float64
	// FastBERRate and SlowBERRate are the BER-risk event rates (soft
	// saturation or planner denial of a target-carrying request) over the
	// same two windows.
	FastBERRate, SlowBERRate float64
	// Samples counts the requests observed.
	Samples uint64
	// Alerting reports the multi-window verdict: both windows burning
	// faster than budget.
	Alerting bool
	// Sheds counts requests the router refused for this shard.
	Sheds uint64
	// MissEWMA is the router's shed-decision deadline-miss EWMA.
	MissEWMA float64
}

// HealthStats is the health plane's exportable snapshot: per-backend drift
// verdicts plus per-shard SLO burn rates. It rides the protocol-v9 stats
// frame and feeds the Prometheus exporter and `quamax -top`.
type HealthStats struct {
	// Backends is sorted by name (the canonical wire order).
	Backends []BackendHealth
	// Shards is indexed by shard number.
	Shards []ShardBurn
}

// Empty reports whether the snapshot carries no data — the protocol-v9
// health flag rides the stats frame iff this is false.
func (h *HealthStats) Empty() bool {
	return h == nil || (len(h.Backends) == 0 && len(h.Shards) == 0)
}

// SortBackends puts the backend entries into canonical (name-sorted) order.
func (h *HealthStats) SortBackends() {
	sort.Slice(h.Backends, func(i, j int) bool { return h.Backends[i].Name < h.Backends[j].Name })
}
