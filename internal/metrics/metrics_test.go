package metrics

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"quamax/internal/rng"
)

func dist(n int, sols ...RankedSolution) *Distribution {
	d := &Distribution{N: n, Solutions: sols}
	for _, s := range sols {
		d.Total += s.Count
	}
	return d
}

func TestAccumulatorRanksAndCounts(t *testing.T) {
	a := NewAccumulator(4)
	a.Add("1100", 5.0, 2)
	a.Add("0000", 1.0, 0)
	a.Add("1100", 5.0, 2)
	a.Add("1111", 5.0, 1) // tie energy, distinct solution → separate rank
	d := a.Distribution()
	if d.Total != 4 || len(d.Solutions) != 3 {
		t.Fatalf("total %d, ranks %d", d.Total, len(d.Solutions))
	}
	if d.Solutions[0].Energy != 1.0 || d.Solutions[0].BitErrors != 0 {
		t.Fatalf("rank 1 wrong: %+v", d.Solutions[0])
	}
	if d.Solutions[1].Energy != 5.0 || d.Solutions[2].Energy != 5.0 {
		t.Fatal("tied solutions must occupy separate ranks")
	}
	if d.Solutions[1].Count+d.Solutions[2].Count != 3 {
		t.Fatal("counts wrong")
	}
}

func TestGroundProbability(t *testing.T) {
	d := dist(4,
		RankedSolution{Energy: -10, Count: 30, BitErrors: 0},
		RankedSolution{Energy: -9, Count: 70, BitErrors: 1},
	)
	if got := d.GroundProbability(-10, 1e-9); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("P0 = %g, want 0.3", got)
	}
	if got := d.GroundProbability(-12, 1e-9); got != 0 {
		t.Fatalf("P0 below true ground = %g, want 0", got)
	}
}

// Eq. 9 closed form checked against direct Monte-Carlo simulation of
// "best of Na draws".
func TestExpectedBERMatchesMonteCarlo(t *testing.T) {
	d := dist(10,
		RankedSolution{Energy: 0, Count: 20, BitErrors: 0},
		RankedSolution{Energy: 1, Count: 30, BitErrors: 2},
		RankedSolution{Energy: 2, Count: 50, BitErrors: 5},
	)
	src := rng.New(81)
	for _, na := range []int{1, 2, 5} {
		want := d.ExpectedBER(na)
		var mc float64
		const trials = 200000
		for trial := 0; trial < trials; trial++ {
			bestRank := len(d.Solutions)
			for a := 0; a < na; a++ {
				u := src.Float64() * float64(d.Total)
				acc := 0.0
				for r, s := range d.Solutions {
					acc += float64(s.Count)
					if u < acc {
						if r < bestRank {
							bestRank = r
						}
						break
					}
				}
			}
			mc += float64(d.Solutions[bestRank].BitErrors) / float64(d.N)
		}
		mc /= trials
		if math.Abs(mc-want) > 0.004 {
			t.Fatalf("Na=%d: Eq.9 gives %g, Monte-Carlo gives %g", na, want, mc)
		}
	}
}

func TestExpectedBERSpecialCases(t *testing.T) {
	// Single perfect solution → BER 0 for all Na.
	d := dist(8, RankedSolution{Energy: 0, Count: 5, BitErrors: 0})
	if got := d.ExpectedBER(1); got != 0 {
		t.Fatalf("single-solution BER = %g", got)
	}
	// Na=1 must equal the plain average.
	d2 := dist(4,
		RankedSolution{Energy: 0, Count: 1, BitErrors: 0},
		RankedSolution{Energy: 1, Count: 1, BitErrors: 4},
	)
	if got := d2.ExpectedBER(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Na=1 BER = %g, want 0.5", got)
	}
	// Large Na converges to the best solution's BER.
	if got := d2.ExpectedBER(1 << 30); math.Abs(got-d2.BestBER()) > 1e-9 {
		t.Fatalf("Na→∞ BER = %g, want %g", got, d2.BestBER())
	}
	if !math.IsNaN((&Distribution{N: 4}).ExpectedBER(1)) {
		t.Fatal("empty distribution should give NaN")
	}
}

// Property: Eq. 9 is non-increasing in Na when bit errors are aligned with
// energy rank (the regime TTB search relies on).
func TestExpectedBERMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		l := 1 + src.Intn(6)
		sols := make([]RankedSolution, l)
		errs := 0
		for r := range sols {
			errs += src.Intn(3)
			sols[r] = RankedSolution{Energy: float64(r), Count: 1 + src.Intn(50), BitErrors: errs}
		}
		d := dist(20, sols...)
		prev := math.Inf(1)
		for _, na := range []int{1, 2, 3, 5, 8, 16, 64} {
			e := d.ExpectedBER(na)
			if e > prev+1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFER(t *testing.T) {
	if got := FER(0, 1000); got != 0 {
		t.Fatalf("FER(0) = %g", got)
	}
	if got := FER(1, 1000); got != 1 {
		t.Fatalf("FER(1) = %g", got)
	}
	// 1 − (1−1e−3)^100 ≈ 0.0952.
	if got := FER(1e-3, 100); math.Abs(got-0.09520785) > 1e-6 {
		t.Fatalf("FER = %g", got)
	}
	// Precision at tiny BER: FER ≈ frameBits·BER.
	if got := FER(1e-12, 12000); math.Abs(got-1.2e-8) > 1e-12 {
		t.Fatalf("small-BER FER = %g", got)
	}
}

func TestRequiredAnnealsAndTTB(t *testing.T) {
	d := dist(10,
		RankedSolution{Energy: 0, Count: 10, BitErrors: 0},
		RankedSolution{Energy: 1, Count: 90, BitErrors: 5},
	)
	// E[BER(Na)] = (1 − 0.1 weight...) target 1e-3: need (0.9)^Na·0.5 ≤ 1e-3
	// → Na ≥ log(0.002)/log(0.9) ≈ 59.
	na, ok := d.RequiredAnneals(1e-3)
	if !ok {
		t.Fatal("target should be reachable")
	}
	if na < 55 || na > 65 {
		t.Fatalf("Na = %d, want ≈59", na)
	}
	if d.ExpectedBER(na) > 1e-3 || d.ExpectedBER(na-1) <= 1e-3 {
		t.Fatal("Na is not minimal")
	}
	// TTB = Na·wall/Pf.
	ttb := d.TTB(1e-3, 2.0, 4.0)
	if math.Abs(ttb-float64(na)*2/4) > 1e-9 {
		t.Fatalf("TTB = %g", ttb)
	}
	// Unreachable target: best solution still has errors.
	bad := dist(10, RankedSolution{Energy: 0, Count: 1, BitErrors: 3})
	if _, ok := bad.RequiredAnneals(1e-6); ok {
		t.Fatal("unreachable target reported reachable")
	}
	if !math.IsInf(bad.TTB(1e-6, 1, 1), 1) {
		t.Fatal("TTB should be +Inf when unreachable")
	}
}

func TestTTFMatchesManualSearch(t *testing.T) {
	d := dist(10,
		RankedSolution{Energy: 0, Count: 30, BitErrors: 0},
		RankedSolution{Energy: 1, Count: 70, BitErrors: 2},
	)
	const frameBits = 400
	na, ok := d.RequiredAnnealsFER(1e-2, frameBits)
	if !ok {
		t.Fatal("reachable")
	}
	if FER(d.ExpectedBER(na), frameBits) > 1e-2 {
		t.Fatal("returned Na misses the target")
	}
	if na > 1 && FER(d.ExpectedBER(na-1), frameBits) <= 1e-2 {
		t.Fatal("Na not minimal")
	}
	ttf := d.TTF(1e-2, frameBits, 2, 1)
	if math.Abs(ttf-2*float64(na)) > 1e-9 {
		t.Fatalf("TTF = %g", ttf)
	}
}

func TestTTS(t *testing.T) {
	// P0 = 0.5, P = 0.99 → log(0.01)/log(0.5) ≈ 6.64 anneals.
	got := TTS(0.5, 1, 0.99)
	if math.Abs(got-6.6438) > 1e-3 {
		t.Fatalf("TTS = %g", got)
	}
	if !math.IsInf(TTS(0, 1, 0.99), 1) {
		t.Fatal("TTS with P0=0 should be Inf")
	}
	if TTS(1, 7, 0.99) != 7 {
		t.Fatal("TTS with P0=1 should be one anneal")
	}
}

func TestPercentileAndBox(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Median(xs); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("median = %g", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(xs, 25); math.Abs(got-3.25) > 1e-12 {
		t.Fatalf("P25 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}

	withInf := append(append([]float64(nil), xs...), math.Inf(1))
	b := Box(withInf)
	if b.Finite != 10 || b.Total != 11 {
		t.Fatalf("box counts: %+v", b)
	}
	if !math.IsInf(b.Mean, 1) {
		t.Fatal("mean should inherit +Inf (mean dominates median)")
	}
	if math.Abs(b.Median-5.5) > 1e-12 {
		t.Fatalf("box median = %g", b.Median)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func ExampleDistribution_ExpectedBER() {
	d := &Distribution{
		N:     10,
		Total: 100,
		Solutions: []RankedSolution{
			{Energy: -5, Count: 10, BitErrors: 0},
			{Energy: -4, Count: 90, BitErrors: 3},
		},
	}
	fmt.Printf("Na=1: %.3f\n", d.ExpectedBER(1))
	fmt.Printf("Na=20: %.5f\n", d.ExpectedBER(20))
	// Output:
	// Na=1: 0.270
	// Na=20: 0.03647
}
