package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input). +Inf values
// propagate, matching how mean TTB dominates median TTB in the paper when
// long-running outliers exist.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// BoxStats is the five-number summary plus mean used by the Fig. 10
// box-and-whisker plots (5th/95th whiskers, quartile box, median mark).
type BoxStats struct {
	P5, Q1, Median, Q3, P95, Mean float64
	// Finite counts how many inputs were finite (instances that reached the
	// target within the deadline; the paper plots outliers separately).
	Finite, Total int
}

// Box summarizes xs. Infinite values are excluded from the percentiles but
// counted in Total−Finite; Mean is over all values (so it inherits +Inf,
// like the paper's mean-dominates-median observation).
func Box(xs []float64) BoxStats {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	return BoxStats{
		P5:     Percentile(finite, 5),
		Q1:     Percentile(finite, 25),
		Median: Percentile(finite, 50),
		Q3:     Percentile(finite, 75),
		P95:    Percentile(finite, 95),
		Mean:   Mean(xs),
		Finite: len(finite),
		Total:  len(xs),
	}
}
