package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input). NaN values are
// skipped — a NaN is a missing measurement, not a number to average — while
// ±Inf values propagate, matching how mean TTB dominates median TTB in the
// paper when long-running outliers exist. All-NaN input yields NaN.
func Mean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics. NaN values are skipped (sorting
// NaNs would scramble the order statistics); ±Inf values participate as the
// extreme ranks. NaN for empty or all-NaN input.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	// Interpolating across an infinite endpoint would produce ±Inf·0 = NaN
	// (e.g. between -Inf and +Inf); snap to the nearer order statistic.
	if math.IsInf(sorted[lo], 0) || math.IsInf(sorted[hi], 0) {
		if frac < 0.5 {
			return sorted[lo]
		}
		return sorted[hi]
	}
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// BoxStats is the five-number summary plus mean used by the Fig. 10
// box-and-whisker plots (5th/95th whiskers, quartile box, median mark).
type BoxStats struct {
	P5, Q1, Median, Q3, P95, Mean float64
	// Finite counts how many inputs were finite (instances that reached the
	// target within the deadline; the paper plots outliers separately).
	Finite, Total int
}

// Box summarizes xs. Infinite and NaN values are excluded from the
// percentiles but counted in Total−Finite; Mean is over all non-NaN values
// (so it inherits +Inf, like the paper's mean-dominates-median observation,
// without letting a NaN poison the whole summary).
func Box(xs []float64) BoxStats {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	return BoxStats{
		P5:     Percentile(finite, 5),
		Q1:     Percentile(finite, 25),
		Median: Percentile(finite, 50),
		Q3:     Percentile(finite, 75),
		P95:    Percentile(finite, 95),
		Mean:   Mean(xs),
		Finite: len(finite),
		Total:  len(xs),
	}
}
