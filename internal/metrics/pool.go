package metrics

import (
	"fmt"
	"math"
	"strings"
)

// PoolStats is a point-in-time snapshot of a QPU pool scheduler
// (internal/sched): the observability surface the C-RAN data center exports
// for pool sizing and deadline-compliance monitoring (the feasibility
// questions of Kasi et al., arXiv:2109.01465).
type PoolStats struct {
	// QueueDepth is the number of problems waiting for a pool worker.
	QueueDepth int
	// Submitted counts all accepted problems; Completed those solved
	// (by pool or fallback); Failed those that returned an error.
	Submitted, Completed, Failed uint64
	// FallbackDispatches counts problems routed to the classical fallback,
	// whether because the projected pool wait would have blown their
	// deadline or because the QoS planner denied quantum dispatch — the
	// hybrid dispatch decisions.
	FallbackDispatches uint64
	// PlannerClassical counts the subset of FallbackDispatches that the QoS
	// planner denied outright (target unreachable on the annealer within the
	// deadline), as opposed to queue-pressure fallbacks.
	PlannerClassical uint64
	// DeadlineMisses counts problems whose result was delivered after their
	// absolute deadline.
	DeadlineMisses uint64
	// BatchRuns counts annealer runs that carried more than one problem;
	// BatchedProblems the problems carried by those runs.
	BatchRuns, BatchedProblems uint64
	// SoftSolved counts completed soft-output decodes (problems that
	// requested per-bit LLRs), whether solved by the pool or the fallback.
	SoftSolved uint64
	// LLRSaturations totals the LLR entries that hit the clamp across all
	// soft decodes — the soft-quality health metric: a rising saturation
	// share means the ensembles are collapsing to single candidates (or the
	// clamp is too tight) and the "soft" outputs are degenerating into hard
	// decisions.
	LLRSaturations uint64
	// SlotOccupancy is the mean fraction of available embedding slots
	// actually filled per batched annealer run (0 when no batch ran).
	SlotOccupancy float64
	// ChannelCache aggregates the compiled-channel cache counters over the
	// pool's annealer backends: how often a decode reused an already-compiled
	// channel (couplings, embedding, prepared physical program) instead of
	// recompiling it.
	ChannelCache ChannelCacheStats
	// Backends holds per-worker-backend accounting, pool order first, the
	// fallback (if any) last.
	Backends []BackendStats
}

// ChannelCacheStats counts compiled-channel cache traffic (internal/core's
// LRU of CompiledChannel artifacts, keyed by the channel fingerprint).
type ChannelCacheStats struct {
	// Hits counts lookups served from the cache; Misses lookups that had to
	// compile; Evictions entries displaced by the LRU capacity bound.
	Hits, Misses, Evictions uint64
}

// Add returns the entrywise sum of two cache snapshots.
func (c ChannelCacheStats) Add(o ChannelCacheStats) ChannelCacheStats {
	return ChannelCacheStats{
		Hits:      c.Hits + o.Hits,
		Misses:    c.Misses + o.Misses,
		Evictions: c.Evictions + o.Evictions,
	}
}

// HitRate returns Hits over total lookups (0 when the cache was never used).
func (c ChannelCacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// BackendStats is per-backend accounting within a pool.
type BackendStats struct {
	Name string
	// Solved counts problems this backend completed; Errors those it failed.
	Solved, Errors uint64
	// BusyMicros is cumulative wall time spent inside Solve.
	BusyMicros float64
	// Utilization is BusyMicros over the scheduler's lifetime (0..~1 per
	// worker bound to the backend; can exceed 1 when several workers share
	// one backend instance).
	Utilization float64
	// SpendMicroUSD is the cumulative spend charged against this backend's
	// device occupancy through its capability descriptor's cost model
	// (backend.Capabilities), in micro-dollars.
	SpendMicroUSD float64
	// EnergyMilliJ is the cumulative energy drawn at the descriptor's device
	// power over the same occupancy, in millijoules.
	EnergyMilliJ float64
}

// MissRate returns the fraction of completed problems that missed their
// deadline (0 when nothing completed).
func (s PoolStats) MissRate() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Completed)
}

// Merge returns the aggregate of two snapshots — the view a multi-pool
// deployment (one scheduler per shard or per site) reports upward. Counters
// and queue depth add; SlotOccupancy re-weights by batched runs; backend
// entries merge by name, summing Solved/Errors/BusyMicros and adding
// utilizations (each addend is busy time over its own scheduler's lifetime,
// so the sum keeps the per-worker 0..~1 reading when shards report over
// equal windows).
func (s PoolStats) Merge(o PoolStats) PoolStats {
	out := s
	out.QueueDepth += o.QueueDepth
	out.Submitted += o.Submitted
	out.Completed += o.Completed
	out.Failed += o.Failed
	out.FallbackDispatches += o.FallbackDispatches
	out.PlannerClassical += o.PlannerClassical
	out.DeadlineMisses += o.DeadlineMisses
	out.BatchRuns += o.BatchRuns
	out.BatchedProblems += o.BatchedProblems
	out.SoftSolved += o.SoftSolved
	out.LLRSaturations += o.LLRSaturations
	if total := out.BatchRuns; total > 0 {
		out.SlotOccupancy = (s.SlotOccupancy*float64(s.BatchRuns) +
			o.SlotOccupancy*float64(o.BatchRuns)) / float64(total)
	} else {
		out.SlotOccupancy = 0
	}
	out.ChannelCache = s.ChannelCache.Add(o.ChannelCache)
	out.Backends = nil
	index := make(map[string]int)
	for _, lists := range [][]BackendStats{s.Backends, o.Backends} {
		for _, be := range lists {
			be.SpendMicroUSD = finiteOrZero(be.SpendMicroUSD)
			be.EnergyMilliJ = finiteOrZero(be.EnergyMilliJ)
			i, ok := index[be.Name]
			if !ok {
				index[be.Name] = len(out.Backends)
				out.Backends = append(out.Backends, be)
				continue
			}
			out.Backends[i].Solved += be.Solved
			out.Backends[i].Errors += be.Errors
			out.Backends[i].BusyMicros += be.BusyMicros
			out.Backends[i].Utilization += be.Utilization
			out.Backends[i].SpendMicroUSD += be.SpendMicroUSD
			out.Backends[i].EnergyMilliJ += be.EnergyMilliJ
		}
	}
	return out
}

// String renders a compact multi-line report suitable for logs.
func (s PoolStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pool: queue=%d submitted=%d completed=%d failed=%d fallback=%d (planner=%d) miss=%d (%.1f%%)",
		s.QueueDepth, s.Submitted, s.Completed, s.Failed,
		s.FallbackDispatches, s.PlannerClassical, s.DeadlineMisses, 100*s.MissRate())
	if s.BatchRuns > 0 {
		fmt.Fprintf(&b, "\npool: batched runs=%d problems=%d slot-occupancy=%.0f%%",
			s.BatchRuns, s.BatchedProblems, 100*s.SlotOccupancy)
	}
	if s.SoftSolved > 0 || s.LLRSaturations > 0 {
		fmt.Fprintf(&b, "\npool: soft decodes=%d llr-saturations=%d", s.SoftSolved, s.LLRSaturations)
		if s.SoftSolved > 0 {
			fmt.Fprintf(&b, " (%.1f/decode)", float64(s.LLRSaturations)/float64(s.SoftSolved))
		}
	}
	if c := s.ChannelCache; c.Hits+c.Misses+c.Evictions > 0 {
		fmt.Fprintf(&b, "\npool: channel cache hits=%d misses=%d evictions=%d (%.0f%% hit)",
			c.Hits, c.Misses, c.Evictions, 100*c.HitRate())
	}
	for _, be := range s.Backends {
		fmt.Fprintf(&b, "\npool: backend %-10s solved=%d errors=%d busy=%.0fµs util=%.1f%%",
			be.Name, be.Solved, be.Errors, be.BusyMicros, 100*be.Utilization)
		if spend, energy := finiteOrZero(be.SpendMicroUSD), finiteOrZero(be.EnergyMilliJ); spend > 0 || energy > 0 {
			fmt.Fprintf(&b, " spend=%.1fµUSD energy=%.1fmJ", spend, energy)
		}
	}
	return b.String()
}

// finiteOrZero treats a non-finite accounting value (a failed measurement)
// as a missing one, so spend/energy aggregates never absorb NaN or ±Inf.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
