// Package metrics implements the paper's evaluation metrics (§5.2): the QA
// literature's Time-to-Solution TTS(P), and the communications-specific
// metrics QuAMax introduces — expected BER after Na anneals (Eq. 9),
// Time-to-BER TTB(p), frame error rate, and Time-to-FER — plus the order
// statistics and percentile helpers the figures report.
package metrics

import (
	"math"
	"sort"
)

// RankedSolution is one distinct annealer outcome for a fixed problem
// instance: its logical Ising energy, its occurrence count over a run, and
// its bit errors against the transmitted ground truth (F_I(k) in Eq. 9).
type RankedSolution struct {
	Energy    float64
	Count     int
	BitErrors int
}

// Distribution is the rank-ordered empirical solution distribution of one
// instance (the red bars + green curve of Fig. 4). Distinct solutions with
// tied energies occupy separate ranks, as the paper prescribes.
type Distribution struct {
	Solutions []RankedSolution // ascending energy
	Total     int              // total anneals observed
	N         int              // variable count (BER denominator in Eq. 9)
}

// Accumulator builds a Distribution from individual anneal outcomes.
type Accumulator struct {
	n    int
	byID map[string]*RankedSolution
}

// NewAccumulator returns an accumulator for n-variable solutions.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{n: n, byID: make(map[string]*RankedSolution)}
}

// Add records one anneal outcome. key must uniquely identify the solution
// configuration (e.g. the decoded bit string); energy and bitErrors describe
// it.
func (a *Accumulator) Add(key string, energy float64, bitErrors int) {
	if s, ok := a.byID[key]; ok {
		s.Count++
		return
	}
	a.byID[key] = &RankedSolution{Energy: energy, Count: 1, BitErrors: bitErrors}
}

// Distribution finalizes the accumulated outcomes into rank order.
func (a *Accumulator) Distribution() *Distribution {
	d := &Distribution{N: a.n}
	keys := make([]string, 0, len(a.byID))
	for k := range a.byID {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie order
	for _, k := range keys {
		d.Solutions = append(d.Solutions, *a.byID[k])
	}
	sort.SliceStable(d.Solutions, func(i, j int) bool {
		return d.Solutions[i].Energy < d.Solutions[j].Energy
	})
	for _, s := range d.Solutions {
		d.Total += s.Count
	}
	return d
}

// GroundProbability returns P0, the per-anneal probability of observing an
// energy within tol of groundEnergy (TTS's success definition, §5.2.1).
func (d *Distribution) GroundProbability(groundEnergy, tol float64) float64 {
	if d.Total == 0 {
		return 0
	}
	hits := 0
	for _, s := range d.Solutions {
		if s.Energy <= groundEnergy+tol {
			hits += s.Count
		}
	}
	return float64(hits) / float64(d.Total)
}

// BestBER returns F(1)/N, the bit error rate of the lowest-energy observed
// solution — the Na→∞ limit of Eq. 9.
func (d *Distribution) BestBER() float64 {
	if len(d.Solutions) == 0 {
		return math.NaN()
	}
	return float64(d.Solutions[0].BitErrors) / float64(d.N)
}

// ExpectedBER evaluates Eq. 9: the expected BER of the minimum-energy
// solution among na anneals,
//
//	E[BER(Na)] = Σ_k [ (Σ_{r≥k} p_r)^Na − (Σ_{r≥k+1} p_r)^Na ] · F(k)/N.
func (d *Distribution) ExpectedBER(na int) float64 {
	if d.Total == 0 || len(d.Solutions) == 0 || na < 1 {
		return math.NaN()
	}
	// Tail probabilities T_k = Σ_{r≥k} p_r, with T_{L+1} = 0.
	l := len(d.Solutions)
	tail := make([]float64, l+1)
	for k := l - 1; k >= 0; k-- {
		tail[k] = tail[k+1] + float64(d.Solutions[k].Count)/float64(d.Total)
	}
	e := 0.0
	for k := 0; k < l; k++ {
		w := math.Pow(tail[k], float64(na)) - math.Pow(tail[k+1], float64(na))
		if w <= 0 {
			continue
		}
		e += w * float64(d.Solutions[k].BitErrors) / float64(d.N)
	}
	return e
}

// FER converts a bit error rate into a frame error rate for frameBits-bit
// frames: FER = 1 − (1−BER)^frameBits (paper footnote 5).
func FER(ber float64, frameBits int) float64 {
	if math.IsNaN(ber) {
		return math.NaN()
	}
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// Use expm1/log1p for precision at small BER.
	return -math.Expm1(float64(frameBits) * math.Log1p(-ber))
}

// ttbSearchCap bounds the anneal-count search; beyond this TTB is reported
// as +Inf (the instance cannot reach the target).
const ttbSearchCap = 1 << 40

// RequiredAnneals returns the smallest Na whose expected BER (Eq. 9) is at
// most target, or 0 and false if no Na up to the search cap achieves it.
// It exponentially brackets then bisects; Eq. 9 is monotone non-increasing
// in Na whenever lower-energy ranks have no more bit errors than higher
// ones, which holds at the optimum and is verified empirically by tests.
func (d *Distribution) RequiredAnneals(target float64) (int, bool) {
	if len(d.Solutions) == 0 {
		return 0, false
	}
	if d.ExpectedBER(1) <= target {
		return 1, true
	}
	if d.BestBER() > target {
		return 0, false // even infinite anneals converge above target
	}
	lo, hi := 1, 2
	for d.ExpectedBER(hi) > target {
		lo = hi
		hi *= 2
		if hi > ttbSearchCap {
			return 0, false
		}
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if d.ExpectedBER(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// TTB returns the Time-to-BER in microseconds: Na·(Ta+Tp)/Pf where Na is
// the anneal count required to reach the target BER, annealWallMicros is
// the per-anneal wall time and pf the parallelization factor (§5.2.2).
// Returns +Inf when the target is unreachable.
func (d *Distribution) TTB(target, annealWallMicros, pf float64) float64 {
	na, ok := d.RequiredAnneals(target)
	if !ok {
		return math.Inf(1)
	}
	if pf < 1 {
		pf = 1
	}
	return float64(na) * annealWallMicros / pf
}

// RequiredAnnealsFER is RequiredAnneals against a frame-error-rate target
// for frameBits-bit frames.
func (d *Distribution) RequiredAnnealsFER(targetFER float64, frameBits int) (int, bool) {
	if len(d.Solutions) == 0 {
		return 0, false
	}
	ok := func(na int) bool { return FER(d.ExpectedBER(na), frameBits) <= targetFER }
	if ok(1) {
		return 1, true
	}
	if FER(d.BestBER(), frameBits) > targetFER {
		return 0, false
	}
	lo, hi := 1, 2
	for !ok(hi) {
		lo = hi
		hi *= 2
		if hi > ttbSearchCap {
			return 0, false
		}
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// TTF returns the Time-to-FER in microseconds (Fig. 11), +Inf if
// unreachable.
func (d *Distribution) TTF(targetFER float64, frameBits int, annealWallMicros, pf float64) float64 {
	na, ok := d.RequiredAnnealsFER(targetFER, frameBits)
	if !ok {
		return math.Inf(1)
	}
	if pf < 1 {
		pf = 1
	}
	return float64(na) * annealWallMicros / pf
}

// TTS returns the expected time to observe the ground state with confidence
// targetP (§5.2.1): wallMicros · log(1−P)/log(1−P0). By QA convention
// targetP = 0.99. Returns +Inf for p0 = 0 and wallMicros for p0 ≥ 1.
func TTS(p0, wallMicros, targetP float64) float64 {
	if p0 <= 0 {
		return math.Inf(1)
	}
	if p0 >= 1 {
		return wallMicros
	}
	return wallMicros * math.Log(1-targetP) / math.Log(1-p0)
}
