package metrics

import (
	"math"
	"strings"
	"testing"
)

func samplePool() PoolStats {
	return PoolStats{
		QueueDepth:         2,
		Submitted:          10,
		Completed:          7,
		Failed:             1,
		FallbackDispatches: 3,
		PlannerClassical:   2,
		DeadlineMisses:     1,
		BatchRuns:          2,
		BatchedProblems:    6,
		SoftSolved:         3,
		LLRSaturations:     12,
		SlotOccupancy:      0.5,
		Backends: []BackendStats{
			{Name: "qpu0", Solved: 5, Errors: 1, BusyMicros: 1000, Utilization: 0.5},
			{Name: "sa", Solved: 2, Errors: 0, BusyMicros: 100, Utilization: 0.05},
		},
	}
}

func TestPoolStatsMissRate(t *testing.T) {
	s := samplePool()
	if got, want := s.MissRate(), 1.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MissRate = %g, want %g", got, want)
	}
	if (PoolStats{}).MissRate() != 0 {
		t.Fatal("empty snapshot must report zero miss rate")
	}
}

func TestPoolStatsMergeCounters(t *testing.T) {
	a := samplePool()
	b := PoolStats{
		QueueDepth:         1,
		Submitted:          4,
		Completed:          4,
		FallbackDispatches: 1,
		DeadlineMisses:     2,
		BatchRuns:          6,
		BatchedProblems:    12,
		SoftSolved:         2,
		LLRSaturations:     5,
		SlotOccupancy:      0.25,
		Backends: []BackendStats{
			{Name: "qpu0", Solved: 3, BusyMicros: 500, Utilization: 0.25},
			{Name: "sphere", Solved: 1, BusyMicros: 40, Utilization: 0.02},
		},
	}
	m := a.Merge(b)
	if m.QueueDepth != 3 || m.Submitted != 14 || m.Completed != 11 || m.Failed != 1 {
		t.Fatalf("merged counters: %+v", m)
	}
	if m.FallbackDispatches != 4 || m.PlannerClassical != 2 || m.DeadlineMisses != 3 {
		t.Fatalf("merged dispatch counters: %+v", m)
	}
	if m.BatchRuns != 8 || m.BatchedProblems != 18 {
		t.Fatalf("merged batch counters: %+v", m)
	}
	if m.SoftSolved != 5 || m.LLRSaturations != 17 {
		t.Fatalf("merged soft counters: %+v", m)
	}
	// Occupancy re-weights by batch runs: (0.5·2 + 0.25·6)/8.
	if want := (0.5*2 + 0.25*6) / 8; math.Abs(m.SlotOccupancy-want) > 1e-12 {
		t.Fatalf("merged occupancy = %g, want %g", m.SlotOccupancy, want)
	}
	// The originals must be untouched (Merge is a value operation).
	if a.Submitted != 10 || len(a.Backends) != 2 {
		t.Fatalf("Merge mutated its receiver: %+v", a)
	}
}

func TestPoolStatsMergeBackendsByName(t *testing.T) {
	a := samplePool()
	b := samplePool()
	b.Backends = []BackendStats{
		{Name: "sa", Solved: 8, Errors: 2, BusyMicros: 900, Utilization: 0.45},
		{Name: "sphere", Solved: 1, BusyMicros: 10, Utilization: 0.01},
	}
	m := a.Merge(b)
	if len(m.Backends) != 3 {
		t.Fatalf("merged backends: %+v", m.Backends)
	}
	byName := map[string]BackendStats{}
	for _, be := range m.Backends {
		byName[be.Name] = be
	}
	if sa := byName["sa"]; sa.Solved != 10 || sa.Errors != 2 || sa.BusyMicros != 1000 {
		t.Fatalf("merged sa entry: %+v", sa)
	}
	if math.Abs(byName["sa"].Utilization-0.5) > 1e-12 {
		t.Fatalf("merged sa utilization: %+v", byName["sa"])
	}
	if qpu := byName["qpu0"]; qpu.Solved != 5 || qpu.BusyMicros != 1000 {
		t.Fatalf("merged qpu0 entry: %+v", qpu)
	}
	if _, ok := byName["sphere"]; !ok {
		t.Fatal("merge dropped a backend present on one side only")
	}
}

// TestPoolStatsMergeAssociative folds three per-shard snapshots both ways —
// (a·b)·c and a·(b·c) — and checks every counter, the re-weighted occupancy
// and the by-name backend merge agree: the invariant that lets a sharded
// router's Stats() fold per-shard breakdowns in any order.
func TestPoolStatsMergeAssociative(t *testing.T) {
	a := samplePool()
	b := PoolStats{
		QueueDepth: 1, Submitted: 4, Completed: 4, FallbackDispatches: 1,
		BatchRuns: 6, BatchedProblems: 12, SlotOccupancy: 0.25,
		ChannelCache: ChannelCacheStats{Hits: 3, Misses: 1},
		Backends: []BackendStats{
			{Name: "qpu0", Solved: 3, BusyMicros: 500, Utilization: 0.25},
			{Name: "sphere", Solved: 1, BusyMicros: 40, Utilization: 0.02},
		},
	}
	c := PoolStats{
		Submitted: 9, Completed: 8, Failed: 1, DeadlineMisses: 4,
		BatchRuns: 2, BatchedProblems: 2, SoftSolved: 1, SlotOccupancy: 1,
		ChannelCache: ChannelCacheStats{Hits: 5, Misses: 5, Evictions: 1},
		Backends:     []BackendStats{{Name: "sa", Solved: 8, BusyMicros: 300, Utilization: 0.3}},
	}
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Submitted != right.Submitted || left.Completed != right.Completed ||
		left.Failed != right.Failed || left.QueueDepth != right.QueueDepth ||
		left.FallbackDispatches != right.FallbackDispatches ||
		left.DeadlineMisses != right.DeadlineMisses ||
		left.BatchRuns != right.BatchRuns || left.BatchedProblems != right.BatchedProblems ||
		left.SoftSolved != right.SoftSolved || left.ChannelCache != right.ChannelCache {
		t.Fatalf("counter fold is order-dependent:\nleft  %+v\nright %+v", left, right)
	}
	if math.Abs(left.SlotOccupancy-right.SlotOccupancy) > 1e-12 {
		t.Fatalf("occupancy fold is order-dependent: %g vs %g", left.SlotOccupancy, right.SlotOccupancy)
	}
	fold := func(m PoolStats) map[string]BackendStats {
		byName := map[string]BackendStats{}
		for _, be := range m.Backends {
			byName[be.Name] = be
		}
		return byName
	}
	lb, rb := fold(left), fold(right)
	if len(lb) != len(rb) {
		t.Fatalf("backend sets differ: %v vs %v", lb, rb)
	}
	for name, l := range lb {
		r, ok := rb[name]
		if !ok || l.Solved != r.Solved || l.Errors != r.Errors ||
			math.Abs(l.BusyMicros-r.BusyMicros) > 1e-9 || math.Abs(l.Utilization-r.Utilization) > 1e-12 {
			t.Fatalf("backend %q folds order-dependently: %+v vs %+v", name, l, r)
		}
	}
}

func TestPoolStatsMergeZeroValue(t *testing.T) {
	a := samplePool()
	m := a.Merge(PoolStats{})
	if m.Submitted != a.Submitted || m.SlotOccupancy != a.SlotOccupancy {
		t.Fatalf("merge with zero snapshot drifted: %+v", m)
	}
	m = (PoolStats{}).Merge(a)
	if m.Submitted != a.Submitted || m.SlotOccupancy != a.SlotOccupancy {
		t.Fatalf("zero-receiver merge drifted: %+v", m)
	}
	z := (PoolStats{}).Merge(PoolStats{})
	if z.SlotOccupancy != 0 || z.Backends != nil {
		t.Fatalf("zero merge: %+v", z)
	}
}

func TestPoolStatsString(t *testing.T) {
	s := samplePool().String()
	for _, want := range []string{"fallback=3", "planner=2", "batched runs=2", "soft decodes=3", "llr-saturations=12", "qpu0", "sa"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering misses %q:\n%s", want, s)
		}
	}
	if strings.Contains(PoolStats{}.String(), "soft decodes") {
		t.Fatal("String printed a soft line with no soft decodes")
	}
}

// Channel-cache counters must add under Merge, and the hit rate must report
// hits over lookups.
func TestChannelCacheStats(t *testing.T) {
	a := PoolStats{ChannelCache: ChannelCacheStats{Hits: 6, Misses: 2, Evictions: 1}}
	b := PoolStats{ChannelCache: ChannelCacheStats{Hits: 4, Misses: 8, Evictions: 3}}
	got := a.Merge(b).ChannelCache
	if got != (ChannelCacheStats{Hits: 10, Misses: 10, Evictions: 4}) {
		t.Fatalf("merged cache stats %+v", got)
	}
	if got.HitRate() != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", got.HitRate())
	}
	if (ChannelCacheStats{}).HitRate() != 0 {
		t.Fatal("empty cache hit rate not 0")
	}
	s := a.String()
	if !strings.Contains(s, "channel cache hits=6 misses=2 evictions=1") {
		t.Fatalf("String omitted cache line:\n%s", s)
	}
	if strings.Contains(PoolStats{}.String(), "channel cache") {
		t.Fatal("String printed a cache line with no cache traffic")
	}
}
