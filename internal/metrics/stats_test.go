package metrics

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// The summary statistics must treat NaN as a missing measurement (skipped)
// and ±Inf as a real extreme (propagated) — a single NaN from a failed
// measurement must never poison a whole BENCH column.
func TestMeanNaNAndInf(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, nan},
		{"all-NaN", []float64{nan, nan}, nan},
		{"NaN skipped", []float64{1, nan, 3}, 2},
		{"+Inf propagates", []float64{1, inf}, inf},
		{"-Inf propagates", []float64{-inf, 1}, -inf},
		{"opposing Infs", []float64{inf, -inf}, nan},
		{"plain", []float64{2, 4}, 3},
	}
	for _, c := range cases {
		got := Mean(c.xs)
		if math.IsNaN(c.want) != math.IsNaN(got) || (!math.IsNaN(c.want) && got != c.want) {
			t.Errorf("%s: Mean = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestPercentileNaNAndInf(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, nan},
		{"all-NaN", []float64{nan, nan, nan}, 50, nan},
		{"NaN skipped", []float64{3, nan, 1}, 50, 2},
		{"NaN skipped p0", []float64{nan, 5, nan, 2}, 0, 2},
		{"NaN skipped p100", []float64{nan, 5, nan, 2}, 100, 5},
		{"Inf is the top rank", []float64{1, 2, inf}, 100, inf},
		{"interpolation toward Inf snaps", []float64{1, inf}, 50, inf},
		{"interpolation near finite snaps", []float64{1, 2, 3, inf}, 40, 2.2},
		{"opposing Infs stay ordered", []float64{-inf, inf}, 50, inf},
		{"plain interpolation", []float64{1, 2, 3, 4}, 50, 2.5},
	}
	for _, c := range cases {
		got := Percentile(c.xs, c.p)
		bad := math.IsNaN(c.want) != math.IsNaN(got)
		if !bad && !math.IsNaN(c.want) && math.Abs(got-c.want) > 1e-12 && got != c.want {
			bad = true
		}
		if bad {
			t.Errorf("%s: P%g = %g, want %g", c.name, c.p, got, c.want)
		}
	}
}

func TestBoxNaNAndInf(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	b := Box([]float64{1, 2, 3, 4, nan, inf})
	if b.Finite != 4 || b.Total != 6 {
		t.Fatalf("finite/total = %d/%d, want 4/6", b.Finite, b.Total)
	}
	if b.Median != 2.5 {
		t.Fatalf("median = %g, want 2.5 (NaN and Inf excluded)", b.Median)
	}
	if !math.IsInf(b.Mean, 1) {
		t.Fatalf("mean = %g, want +Inf (Inf propagates, NaN does not poison)", b.Mean)
	}
	empty := Box([]float64{nan, nan})
	if empty.Finite != 0 || empty.Total != 2 {
		t.Fatalf("all-NaN finite/total = %d/%d", empty.Finite, empty.Total)
	}
	if !math.IsNaN(empty.Median) || !math.IsNaN(empty.Mean) {
		t.Fatalf("all-NaN box should be NaN: %+v", empty)
	}
}

// Every PoolStats field must surface in String() when nonzero — the audit
// that keeps the log line honest as counters are added. The walk below fills
// each field with a distinct sentinel via reflection, so a newly added field
// fails this test until both String and (for floats) the rendering table
// below know about it.
func TestPoolStatsStringCoversEveryField(t *testing.T) {
	// Float fields print through format verbs, so their rendered form is
	// field-specific. New float fields must be added here.
	floatValue := map[string]float64{
		"SlotOccupancy": 0.56,   // %.0f%% of 100·v
		"BusyMicros":    9876,   // %.0fµs
		"Utilization":   0.0783, // %.1f%% of 100·v
		"SpendMicroUSD": 1234.5, // %.1fµUSD
		"EnergyMilliJ":  42.5,   // %.1fmJ
	}
	floatRender := map[string]string{
		"SlotOccupancy": "56%",
		"BusyMicros":    "9876µs",
		"Utilization":   "7.8%",
		"SpendMicroUSD": "1234.5µUSD",
		"EnergyMilliJ":  "42.5mJ",
	}

	var s PoolStats
	next := uint64(1001)
	want := map[string]string{} // field path → substring String() must contain
	var fill func(v reflect.Value, name, path string)
	fill = func(v reflect.Value, name, path string) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				f := v.Type().Field(i)
				fill(v.Field(i), f.Name, path+f.Name+".")
			}
		case reflect.Slice:
			elem := reflect.New(v.Type().Elem()).Elem()
			fill(elem, name, path+"[0].")
			v.Set(reflect.Append(v, elem))
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(int64(next))
			want[path] = strconv.FormatUint(next, 10)
			next++
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(next)
			want[path] = strconv.FormatUint(next, 10)
			next++
		case reflect.Float64:
			fv, ok := floatValue[name]
			if !ok {
				t.Fatalf("float field %s has no sentinel — extend PoolStats.String and this test's rendering table", path)
			}
			v.SetFloat(fv)
			want[path] = floatRender[name]
		case reflect.String:
			v.SetString("be0")
			want[path] = "be0"
		default:
			t.Fatalf("field %s has unsupported kind %s — extend this test", path, v.Kind())
		}
	}
	fill(reflect.ValueOf(&s).Elem(), "PoolStats", "")

	out := s.String()
	for path, sub := range want {
		if !strings.Contains(out, sub) {
			t.Errorf("String() omits field %s (expected substring %q):\n%s", path, sub, out)
		}
	}
}

// Spend/energy accounting must treat non-finite addends as missing
// measurements: one NaN (or ±Inf) sample must never poison the merged
// aggregate a multi-pool deployment reports upward.
func TestPoolStatsMergeGuardsNonFiniteEconomics(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	a := PoolStats{Backends: []BackendStats{{Name: "qpu", SpendMicroUSD: 10, EnergyMilliJ: nan}}}
	b := PoolStats{Backends: []BackendStats{{Name: "qpu", SpendMicroUSD: inf, EnergyMilliJ: 5}}}
	m := a.Merge(b)
	if got := m.Backends[0].SpendMicroUSD; got != 10 {
		t.Errorf("merged spend = %g, want 10 (Inf addend dropped)", got)
	}
	if got := m.Backends[0].EnergyMilliJ; got != 5 {
		t.Errorf("merged energy = %g, want 5 (NaN addend dropped)", got)
	}
	if out := (PoolStats{Backends: []BackendStats{{Name: "be0", SpendMicroUSD: nan, EnergyMilliJ: inf}}}).String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("String renders non-finite economics:\n%s", out)
	}
}

// Counter groups must print whenever any member is nonzero, not only when
// the group's headline counter is.
func TestPoolStatsStringPartialGroups(t *testing.T) {
	out := PoolStats{LLRSaturations: 7}.String()
	if !strings.Contains(out, "llr-saturations=7") {
		t.Fatalf("saturations without soft decodes omitted:\n%s", out)
	}
	out = PoolStats{ChannelCache: ChannelCacheStats{Evictions: 3}}.String()
	if !strings.Contains(out, "evictions=3") {
		t.Fatalf("evictions without lookups omitted:\n%s", out)
	}
}
