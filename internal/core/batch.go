package core

import (
	"errors"
	"fmt"

	"quamax/internal/anneal"
	"quamax/internal/embedding"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// BatchItem is one decode request of a shared annealer run. Items in a batch
// may use different modulations and channels but must reduce to the same
// logical spin count N, since all slots of a packing hold N-spin cliques.
type BatchItem struct {
	Mod modulation.Modulation
	H   *linalg.Mat
	Y   []complex128
	// Truth, when non-nil, fills the evaluation fields of the Outcome
	// (Distribution, TxEnergy) exactly like DecodeInstance.
	Truth *mimo.Instance
	// Soft, when non-nil, requests per-bit LLRs for this item (the
	// shared-run soft variant of DecodeSoft): each slot retains its own read
	// ensemble, so soft and hard items mix freely in one run.
	Soft *softout.Spec
}

// BatchSlots returns how many independent N-spin problems fit one annealer
// run — the geometric parallel slot count of §4, applied across requests
// instead of replicating a single problem. It is the capacity limit of
// DecodeSharedRun.
func (d *Decoder) BatchSlots(n int) (int, error) {
	packs, err := d.packsFor(n)
	if err != nil {
		return 0, err
	}
	return len(packs), nil // packsFor guarantees ≥ 1
}

// DecodeSharedRun decodes up to BatchSlots(N) channel uses in ONE annealer run by
// programming each problem into its own disjoint clique-embedding slot of the
// Chimera chip. This extends the paper's §4 parallelization (amortizing a run
// over identical slots of one problem) across independent requests: the run's
// wall-clock Na·(Ta+Tp) is shared by the whole batch, so each Outcome reports
// Pf = len(items) when AmortizeParallel is on.
//
// The combined physical program shares the device's analog range, so the
// auto-scaling divisor is the max over all batched problems — exactly the
// squeeze a real shared chip would apply.
func (d *Decoder) DecodeSharedRun(items []BatchItem, src *rng.Source) ([]*Outcome, error) {
	return d.DecodeSharedRunWithParams(items, d.opts.Params, 0, src)
}

// DecodeSharedRunWithParams is DecodeSharedRun with per-run knobs overriding
// the decoder's configuration (jf ≤ 0 = configured |J_F|). A batch shares
// one physical run, so one Params and one chain strength apply to every
// item; the scheduler resolves a common budget (max read count over the
// batch) before calling.
func (d *Decoder) DecodeSharedRunWithParams(items []BatchItem, params anneal.Params, jf float64, src *rng.Source) ([]*Outcome, error) {
	if len(items) == 0 {
		return nil, errors.New("core: empty batch")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("core: nil random source")
	}

	logicals := make([]*qubo.Ising, len(items))
	for i, it := range items {
		logicals[i] = reduction.ReduceToIsing(it.Mod, it.H, it.Y)
		if logicals[i].N != logicals[0].N {
			return nil, fmt.Errorf("core: batch mixes logical sizes %d and %d",
				logicals[0].N, logicals[i].N)
		}
		if it.Soft != nil {
			if err := it.Soft.Validate(); err != nil {
				return nil, err
			}
		}
	}
	n := logicals[0].N
	packs, err := d.packsFor(n)
	if err != nil {
		return nil, err
	}
	if len(items) > len(packs) {
		return nil, fmt.Errorf("core: batch of %d exceeds the %d parallel slots for N=%d",
			len(items), len(packs), n)
	}

	// Compile each problem into its slot and concatenate the physical
	// programs. Slots are qubit-disjoint, so a plain index offset per slot
	// yields the exact combined Ising program.
	eps := make([]*embedding.EmbeddedProblem, len(items))
	offsets := make([]int, len(items))
	total := 0
	for i := range items {
		ep, err := packs[i].EmbedIsing(logicals[i], d.chainJF(jf), d.opts.ImprovedRange)
		if err != nil {
			return nil, err
		}
		eps[i] = ep
		offsets[i] = total
		total += packs[i].NumPhysical()
	}
	combined := qubo.NewSparse(total)
	for i, ep := range eps {
		off := offsets[i]
		copy(combined.H[off:off+len(ep.Phys.H)], ep.Phys.H)
		for _, e := range ep.Phys.Edges {
			combined.Edges = append(combined.Edges, qubo.SparseEdge{I: e.I + off, J: e.J + off, W: e.W})
		}
	}

	samples, err := d.opts.Machine.Run(combined, params, d.opts.ImprovedRange, src)
	if err != nil {
		return nil, err
	}

	outs := make([]*Outcome, len(items))
	for i, it := range items {
		out := &Outcome{
			Pf:                  1,
			WallMicrosPerAnneal: params.AnnealWallMicros(),
		}
		if d.opts.AmortizeParallel {
			out.Pf = float64(len(items))
		}
		var acc *metrics.Accumulator
		if it.Truth != nil {
			acc = metrics.NewAccumulator(n)
			out.TxEnergy = logicals[i].Energy(qubo.SpinsFromBits(it.Truth.TxQUBOBits()))
		}
		sc := newSoftCollector(it.Soft, it.Mod, n)
		off, np := offsets[i], packs[i].NumPhysical()
		bestE := 0.0
		var bestBits []byte
		for _, s := range samples {
			energy, spins, broken := eps[i].UnembeddedEnergy(s.Spins[off:off+np], src)
			out.BrokenChains += broken
			qbits := qubo.BitsFromSpins(spins)
			if bestBits == nil || energy < bestE {
				bestE = energy
				bestBits = qbits
			}
			if acc != nil {
				rx := it.Mod.PostTranslate(qbits)
				acc.Add(string(qbits), energy, it.Truth.BitErrors(rx))
			}
			sc.add(qbits, energy)
		}
		out.Energy = bestE
		out.Bits = it.Mod.PostTranslate(bestBits)
		out.Symbols = reduction.BitsToSymbols(it.Mod, bestBits)
		if acc != nil {
			out.Distribution = acc.Distribution()
		}
		sc.finish(out)
		d.recordQuality(it.Mod, n, len(samples), out)
		outs[i] = out
	}
	return outs, nil
}
