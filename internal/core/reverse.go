package core

import (
	"errors"
	"fmt"
	"sync"

	"quamax/internal/anneal"
	"quamax/internal/detector"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// DecodeInstanceReverse runs the paper's §8 future-work refinement: seed the
// annealer with a linear detector's decision and REVERSE-anneal around it
// (Venturelli & Kondratyev [68]). The zero-forcing solution provides the
// initial classical state; if the channel is singular, MMSE with the
// instance's noise variance is used; if both fail, the call errors.
//
// The returned Outcome is shaped exactly like DecodeInstance's, so the Fix /
// Opt / TTB machinery applies unchanged.
func (d *Decoder) DecodeInstanceReverse(in *mimo.Instance, src *rng.Source) (*Outcome, error) {
	seed, err := linearSeed(in)
	if err != nil {
		return nil, err
	}
	return d.decodeReverse(in.Mod, in.H, in.Y, in, seed, d.opts.Params, 0, src)
}

// ErrNoSeed reports that reverse annealing could not compute its linear
// starting state (the channel is too ill-conditioned for zero-forcing).
// Callers distinguish it from device errors: a missing seed means "run a
// forward anneal instead"; anything else is a real failure.
var ErrNoSeed = errors.New("core: no linear seed for reverse annealing")

// DecodeReverse runs reverse annealing on a raw channel use: the
// zero-forcing decision seeds the anneal, exactly like DecodeInstanceReverse
// but without ground truth (so Distribution ranks carry no bit-error
// information beyond the seed). It returns an error wrapping ErrNoSeed when
// the channel is too ill-conditioned for zero-forcing.
func (d *Decoder) DecodeReverse(mod modulation.Modulation, h *linalg.Mat, y []complex128, src *rng.Source) (*Outcome, error) {
	return d.DecodeReverseWithParams(mod, h, y, d.opts.Params, 0, src)
}

// DecodeReverseWithParams is DecodeReverse with per-call run knobs (jf ≤ 0 =
// configured |J_F|) — the reverse-mode counterpart of DecodeWithParams, used
// when the QoS planner prefers a reverse budget.
func (d *Decoder) DecodeReverseWithParams(mod modulation.Modulation, h *linalg.Mat, y []complex128, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	res, err := detector.ZeroForcing(mod, h, y)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSeed, err)
	}
	seed := qubo.SpinsFromBits(mod.GrayToQuAMaxBits(res.Bits))
	return d.decodeReverse(mod, h, y, nil, seed, params, jf, src)
}

// decodeReverse is the shared reverse-annealing pipeline; truth, when
// non-nil, fills the evaluation fields like DecodeInstance.
func (d *Decoder) decodeReverse(mod modulation.Modulation, h *linalg.Mat, y []complex128, truth *mimo.Instance, seed []int8, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	logical := reduction.ReduceToIsing(mod, h, y)
	emb, slots, err := d.embeddingFor(logical.N)
	if err != nil {
		return nil, err
	}
	ep, err := emb.EmbedIsing(logical, d.chainJF(jf), d.opts.ImprovedRange)
	if err != nil {
		return nil, err
	}
	init := emb.PhysicalInit(seed)
	samples, err := d.opts.Machine.RunReverse(ep.Phys, params, d.opts.ImprovedRange, init, src)
	if err != nil {
		return nil, err
	}

	out := &Outcome{Pf: 1, WallMicrosPerAnneal: params.AnnealWallMicros()}
	if d.opts.AmortizeParallel {
		out.Pf = float64(slots)
	}
	acc := metrics.NewAccumulator(logical.N)
	if truth != nil {
		out.TxEnergy = logical.Energy(qubo.SpinsFromBits(truth.TxQUBOBits()))
	}
	bitErrs := func(qbits []byte) int {
		if truth == nil {
			return 0
		}
		return truth.BitErrors(mod.PostTranslate(qbits))
	}

	// Include the seed itself as a candidate: reverse annealing never does
	// worse than its linear starting point.
	seedBits := qubo.BitsFromSpins(seed)
	bestE := logical.Energy(seed)
	bestBits := seedBits
	acc.Add(string(seedBits), bestE, bitErrs(seedBits))

	for _, s := range samples {
		energy, spins, broken := ep.UnembeddedEnergy(s.Spins, src)
		out.BrokenChains += broken
		qbits := qubo.BitsFromSpins(spins)
		if energy < bestE {
			bestE = energy
			bestBits = qbits
		}
		acc.Add(string(qbits), energy, bitErrs(qbits))
	}
	out.Energy = bestE
	out.Bits = mod.PostTranslate(bestBits)
	out.Symbols = reduction.BitsToSymbols(mod, bestBits)
	out.Distribution = acc.Distribution()
	return out, nil
}

// linearSeed produces the reverse-annealing start state from a linear
// detector: detected symbols → QuAMax-transform bits → spins.
func linearSeed(in *mimo.Instance) ([]int8, error) {
	res, err := detector.ZeroForcing(in.Mod, in.H, in.Y)
	if err != nil {
		res, err = detector.MMSE(in.Mod, in.H, in.Y, in.NoiseVariance())
		if err != nil {
			return nil, err
		}
	}
	qbits := in.Mod.GrayToQuAMaxBits(res.Bits)
	return qubo.SpinsFromBits(qbits), nil
}

// BatchResult pairs a subcarrier index with its decode result.
type BatchResult struct {
	Index   int
	Outcome *Outcome
	Err     error
}

// DecodeBatch decodes many channel uses (e.g. all subcarriers of an OFDM
// symbol, §3.2: "this ML-to-QA reduction is required at each subcarrier")
// concurrently, mirroring the §5.5 opportunity to parallelize different
// subcarriers' problems. Each element of hs/ys is one subcarrier; results
// arrive indexed. src seeds one independent stream per subcarrier.
func (d *Decoder) DecodeBatch(mod modulation.Modulation, hs []*linalg.Mat, ys [][]complex128, src *rng.Source) []BatchResult {
	if len(hs) != len(ys) {
		panic("core: DecodeBatch length mismatch")
	}
	results := make([]BatchResult, len(hs))
	sources := src.SplitN(len(hs))
	var wg sync.WaitGroup
	for i := range hs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := d.Decode(mod, hs[i], ys[i], sources[i])
			results[i] = BatchResult{Index: i, Outcome: out, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}
