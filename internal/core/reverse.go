package core

import (
	"errors"
	"sync"

	"quamax/internal/detector"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// DecodeInstanceReverse runs the paper's §8 future-work refinement: seed the
// annealer with a linear detector's decision and REVERSE-anneal around it
// (Venturelli & Kondratyev [68]). The zero-forcing solution provides the
// initial classical state; if the channel is singular, MMSE with the
// instance's noise variance is used; if both fail, the call errors.
//
// The returned Outcome is shaped exactly like DecodeInstance's, so the Fix /
// Opt / TTB machinery applies unchanged.
func (d *Decoder) DecodeInstanceReverse(in *mimo.Instance, src *rng.Source) (*Outcome, error) {
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	seed, err := linearSeed(in)
	if err != nil {
		return nil, err
	}
	logical := reduction.ReduceToIsing(in.Mod, in.H, in.Y)
	emb, slots, err := d.embeddingFor(logical.N)
	if err != nil {
		return nil, err
	}
	ep, err := emb.EmbedIsing(logical, d.opts.JF, d.opts.ImprovedRange)
	if err != nil {
		return nil, err
	}
	init := emb.PhysicalInit(seed)
	samples, err := d.opts.Machine.RunReverse(ep.Phys, d.opts.Params, d.opts.ImprovedRange, init, src)
	if err != nil {
		return nil, err
	}

	out := &Outcome{Pf: 1, WallMicrosPerAnneal: d.opts.Params.AnnealWallMicros()}
	if d.opts.AmortizeParallel {
		out.Pf = float64(slots)
	}
	out.TxEnergy = logical.Energy(qubo.SpinsFromBits(in.TxQUBOBits()))
	acc := metrics.NewAccumulator(logical.N)

	// Include the seed itself as a candidate: reverse annealing never does
	// worse than its linear starting point.
	seedBits := qubo.BitsFromSpins(seed)
	bestE := logical.Energy(seed)
	bestBits := seedBits
	acc.Add(string(seedBits), bestE, in.BitErrors(in.Mod.PostTranslate(seedBits)))

	for _, s := range samples {
		energy, spins, broken := ep.UnembeddedEnergy(s.Spins, src)
		out.BrokenChains += broken
		qbits := qubo.BitsFromSpins(spins)
		if energy < bestE {
			bestE = energy
			bestBits = qbits
		}
		rx := in.Mod.PostTranslate(qbits)
		acc.Add(string(qbits), energy, in.BitErrors(rx))
	}
	out.Energy = bestE
	out.Bits = in.Mod.PostTranslate(bestBits)
	out.Symbols = reduction.BitsToSymbols(in.Mod, bestBits)
	out.Distribution = acc.Distribution()
	return out, nil
}

// linearSeed produces the reverse-annealing start state from a linear
// detector: detected symbols → QuAMax-transform bits → spins.
func linearSeed(in *mimo.Instance) ([]int8, error) {
	res, err := detector.ZeroForcing(in.Mod, in.H, in.Y)
	if err != nil {
		res, err = detector.MMSE(in.Mod, in.H, in.Y, in.NoiseVariance())
		if err != nil {
			return nil, err
		}
	}
	qbits := in.Mod.GrayToQuAMaxBits(res.Bits)
	return qubo.SpinsFromBits(qbits), nil
}

// BatchResult pairs a subcarrier index with its decode result.
type BatchResult struct {
	Index   int
	Outcome *Outcome
	Err     error
}

// DecodeBatch decodes many channel uses (e.g. all subcarriers of an OFDM
// symbol, §3.2: "this ML-to-QA reduction is required at each subcarrier")
// concurrently, mirroring the §5.5 opportunity to parallelize different
// subcarriers' problems. Each element of hs/ys is one subcarrier; results
// arrive indexed. src seeds one independent stream per subcarrier.
func (d *Decoder) DecodeBatch(mod modulation.Modulation, hs []*linalg.Mat, ys [][]complex128, src *rng.Source) []BatchResult {
	if len(hs) != len(ys) {
		panic("core: DecodeBatch length mismatch")
	}
	results := make([]BatchResult, len(hs))
	sources := src.SplitN(len(hs))
	var wg sync.WaitGroup
	for i := range hs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := d.Decode(mod, hs[i], ys[i], sources[i])
			results[i] = BatchResult{Index: i, Outcome: out, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}
