// Soft-output decode paths: the decoder-level half of internal/softout.
// Every decode already scores each of the Na reads against the logical Ising
// program (collect's minimum-energy selection); the soft paths retain those
// (bits, energy) pairs as a candidate ensemble instead of discarding all but
// the winner, and convert the ensemble into per-bit max-log-MAP LLRs scaled
// by the noise variance. No extra objective evaluations are performed — the
// energies are the ones the hard decision already computed — and the hard
// fields of the Outcome (Bits, Energy, Symbols) are byte-identical to the
// corresponding hard decode on the same random stream, a property the tests
// assert for every path (solo, compiled, shared-run, compiled shared-run).
package core

import (
	"quamax/internal/anneal"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// softCollector accumulates one decode's read ensemble when soft output is
// requested. A nil collector (hard decode) makes every method a no-op, so
// the sample loops stay branch-free at the call sites.
type softCollector struct {
	spec softout.Spec
	mod  modulation.Modulation
	ens  *softout.Ensemble
}

// newSoftCollector builds a collector for an N-bit problem, or nil when no
// soft spec was requested.
func newSoftCollector(spec *softout.Spec, mod modulation.Modulation, nbits int) *softCollector {
	if spec == nil {
		return nil
	}
	s := spec.WithDefaults()
	return &softCollector{spec: s, mod: mod, ens: softout.NewEnsemble(nbits, s.MaxCandidates)}
}

// add records one read: QUBO solution bits plus the logical energy the hard
// path already computed. Candidates are stored as Gray data bits so the LLRs
// line up with the transmitted bit stream the FEC layer consumes.
func (sc *softCollector) add(qbits []byte, energy float64) {
	if sc == nil {
		return
	}
	sc.ens.Add(sc.mod.PostTranslate(qbits), energy)
}

// finish converts the ensemble into LLRs and fills the Outcome's soft fields.
func (sc *softCollector) finish(out *Outcome) {
	if sc == nil {
		return
	}
	llrs, sat := sc.ens.LLRs(sc.spec)
	out.LLRs = llrs
	out.LLRSaturated = sat
	out.SoftCandidates = sc.ens.Len()
}

// DecodeSoft is Decode with soft output: the Outcome additionally carries
// per-bit LLRs computed from the read ensemble under spec (see
// internal/softout for the max-log-MAP formula and sign convention). The
// hard fields are bit-identical to Decode on the same random stream.
func (d *Decoder) DecodeSoft(mod modulation.Modulation, h *linalg.Mat, y []complex128, spec softout.Spec, src *rng.Source) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return d.decodeJF(mod, h, y, nil, d.opts.Params, 0, &spec, src)
}

// DecodeSoftWithParams is DecodeSoft with per-call run knobs (jf ≤ 0 =
// configured |J_F|) — the soft counterpart of DecodeWithParams for
// planner-sized budgets.
func (d *Decoder) DecodeSoftWithParams(mod modulation.Modulation, h *linalg.Mat, y []complex128, spec softout.Spec, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return d.decodeJF(mod, h, y, nil, params, jf, &spec, src)
}

// DecodeInstanceSoft decodes a generated instance with soft output, filling
// the evaluation fields like DecodeInstance. A spec with NoiseVar ≤ 0 takes
// the instance's own noise variance — the common case, since the instance
// knows the σ² it was generated at.
func (d *Decoder) DecodeInstanceSoft(in *mimo.Instance, spec softout.Spec, src *rng.Source) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.NoiseVar <= 0 {
		spec.NoiseVar = in.NoiseVariance()
	}
	return d.decode(in.Mod, in.H, in.Y, in, d.opts.Params, &spec, src)
}

// DecodeCompiledSoft is DecodeCompiled with soft output: the execute phase
// on an already-compiled channel, additionally retaining the read ensemble
// for LLR extraction. Hard fields are bit-identical to DecodeCompiled (and
// hence to Decode) on the same random stream.
func (d *Decoder) DecodeCompiledSoft(cc *CompiledChannel, y []complex128, spec softout.Spec, src *rng.Source) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return d.decodeCompiled(cc, y, nil, d.opts.Params, 0, &spec, src)
}

// DecodeCompiledSoftWithParams is DecodeCompiledSoft with per-call run knobs
// (jf ≤ 0 = configured |J_F|).
func (d *Decoder) DecodeCompiledSoftWithParams(cc *CompiledChannel, y []complex128, spec softout.Spec, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return d.decodeCompiled(cc, y, nil, params, jf, &spec, src)
}
