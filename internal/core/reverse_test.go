package core

import (
	"math"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func TestReverseDecodeRecoversNoiseFree(t *testing.T) {
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 60,
	})
	src := rng.New(301)
	in := genInstance(t, src, modulation.QPSK, 6, math.Inf(1))
	out, err := d.DecodeInstanceReverse(in, src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(out.Bits); errs != 0 {
		t.Fatalf("reverse decode: %d bit errors noise-free", errs)
	}
	if out.Energy > 1e-9 {
		t.Fatalf("reverse decode energy %g, want 0", out.Energy)
	}
}

// Reverse annealing can never be worse than its linear seed: the seed is in
// the candidate set.
func TestReverseNeverWorseThanZF(t *testing.T) {
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 30,
	})
	src := rng.New(302)
	for trial := 0; trial < 5; trial++ {
		in := genInstance(t, src, modulation.BPSK, 10, 12)
		out, err := d.DecodeInstanceReverse(in, src)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := linearSeed(in)
		if err != nil {
			t.Fatal(err)
		}
		logicalSeedE := func() float64 {
			// Recompute via ML metric of the seed symbols.
			qb := make([]byte, len(seed))
			for i, s := range seed {
				if s > 0 {
					qb[i] = 1
				}
			}
			v := make([]complex128, in.Nt)
			q := in.Mod.BitsPerSymbol()
			for u := 0; u < in.Nt; u++ {
				v[u] = in.Mod.QuAMaxTransform(qb[u*q : (u+1)*q])
			}
			return linalg.Norm2(linalg.VecSub(in.Y, linalg.MulVec(in.H, v)))
		}()
		if out.Energy > logicalSeedE+1e-9 {
			t.Fatalf("trial %d: reverse energy %g worse than ZF seed %g", trial, out.Energy, logicalSeedE)
		}
	}
}

// Reverse annealing from the ZF seed refines poor-SNR decisions: over a set
// of square-channel instances it must strictly improve on zero-forcing's
// total bit errors.
func TestReverseImprovesOnZFAtLowSNR(t *testing.T) {
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 60,
	})
	src := rng.New(303)
	var zfErrs, revErrs int
	for trial := 0; trial < 8; trial++ {
		in, err := mimo.Generate(src, mimo.Config{
			Mod: modulation.BPSK, Nt: 10, Nr: 10, Channel: channel.Rayleigh{}, SNRdB: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		seed, err := linearSeed(in)
		if err != nil {
			continue
		}
		qb := make([]byte, len(seed))
		for i, s := range seed {
			if s > 0 {
				qb[i] = 1
			}
		}
		zfErrs += in.BitErrors(in.Mod.PostTranslate(qb))
		out, err := d.DecodeInstanceReverse(in, src)
		if err != nil {
			t.Fatal(err)
		}
		revErrs += in.BitErrors(out.Bits)
	}
	if revErrs >= zfErrs {
		t.Fatalf("reverse annealing (%d errors) should improve on its ZF seed (%d errors)", revErrs, zfErrs)
	}
}

func TestReverseValidation(t *testing.T) {
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 5})
	in := genInstance(t, rng.New(304), modulation.BPSK, 4, 20)
	if _, err := d.DecodeInstanceReverse(in, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	// No pause position → reverse annealing has no turning point.
	if _, err := d.DecodeInstanceReverse(in, rng.New(1)); err == nil {
		t.Fatal("missing turning point accepted")
	}
}

func TestDecodeBatch(t *testing.T) {
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40,
	})
	src := rng.New(305)
	const sc = 6
	hs := make([]*linalg.Mat, sc)
	ys := make([][]complex128, sc)
	truths := make([]*mimo.Instance, sc)
	for i := 0; i < sc; i++ {
		in := genInstance(t, src, modulation.BPSK, 8, math.Inf(1))
		hs[i], ys[i], truths[i] = in.H, in.Y, in
	}
	results := d.DecodeBatch(modulation.BPSK, hs, ys, src)
	if len(results) != sc {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("subcarrier %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if errs := truths[i].BitErrors(r.Outcome.Bits); errs != 0 {
			t.Fatalf("subcarrier %d: %d bit errors", i, errs)
		}
	}
}

func TestReverseOnDW2QSize(t *testing.T) {
	// Sanity at a paper-scale size on the real chip model.
	d, err := New(Options{
		Graph: chimera.DW2Q(),
		Params: anneal.Params{
			AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 30,
		},
		JF: 4, ImprovedRange: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(306)
	in := genInstance(t, src, modulation.BPSK, 36, 20)
	out, err := d.DecodeInstanceReverse(in, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bits) != 36 {
		t.Fatalf("decoded %d bits", len(out.Bits))
	}
}
