// Compiled-channel decode path: the decoder-level half of the
// compile/execute split. The paper's C-RAN model (and its channel-coherence
// footnote) has the data center decode MANY received vectors y through ONE
// estimated channel H — every OFDM symbol of a coherence window, across
// subcarrier groups. Decode recompiles everything per call; the compiled
// path splits the pipeline at the H/y boundary instead:
//
//	compile (once per channel):  H ──CompileChannel──▶ couplings g_ij(H)
//	    ──EmbedIsing──▶ physical coupler program ──PrepareProgram──▶
//	    adjacency + coupler range scan
//	execute (per symbol):  y ──Biases──▶ fields f_i(H,y) ──chain spread──▶
//	    physical fields ──RunPrepared──▶ samples ──Unembed──▶ bits
//
// Compiled artifacts live in a per-decoder LRU keyed by the channel
// fingerprint (hash of modulation, Nt/Nr shape, and H's exact float bits),
// so a serving pool recognizes returning coherence windows without any
// caller bookkeeping. The execute phase is bit-identical to Decode on the
// same (H, y, random stream); property tests assert it.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/embedding"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// ChannelKey fingerprints a (modulation, H) pair for the compiled-channel
// cache and for coherence-window grouping in the pool scheduler. Zero is
// reserved as "no key". Equal keys are expected to mean identical channels;
// the decoder's cache hashes the full matrix contents, so a caller-supplied
// key of lesser quality can only degrade scheduling locality, never
// correctness.
type ChannelKey uint64

// FingerprintChannel hashes (mod, H) — shape and exact float64 bit patterns
// — into a ChannelKey (FNV-1a, never zero).
func FingerprintChannel(mod modulation.Modulation, h *linalg.Mat) ChannelKey {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			hash ^= v & 0xff
			hash *= prime64
			v >>= 8
		}
	}
	mix(uint64(mod))
	mix(uint64(h.Rows))
	mix(uint64(h.Cols))
	for _, c := range h.Data {
		mix(math.Float64bits(real(c)))
		mix(math.Float64bits(imag(c)))
	}
	if hash == 0 {
		hash = 1 // 0 is the "no key" sentinel
	}
	return ChannelKey(hash)
}

// CompiledChannel pins together everything H-dependent about a decode: the
// compiled Ising couplings (reduction.ChannelProgram), the clique embedding,
// the slot packing metadata, and — lazily, per chain strength — the embedded
// physical coupler program with its prepared adjacency and pre-scanned
// coupler range. It is produced by Decoder.Compile, owned by that decoder,
// and safe for concurrent use.
type CompiledChannel struct {
	key   ChannelKey
	prog  *reduction.ChannelProgram
	emb   *embedding.Embedding
	slots int
	dec   *Decoder

	templates templateCache
}

// templateCache lazily materializes a channel's physical coupler programs:
// one solo template (the primary clique placement, fully prepared for
// RunPrepared) and one per parallel slot (couplers only, concatenated into
// combined shared-run programs). Templates are keyed by chain strength so
// planner-supplied |J_F| overrides each get their own program, exactly as a
// real chip would be reprogrammed when the operating point changes.
type templateCache struct {
	mu    sync.Mutex
	solo  map[float64]*physTemplate
	slots map[slotJF]*physTemplate
}

// slotJF keys a per-slot template: the (decoder-stable) slot index within
// the packing for N, plus the chain strength the couplers were scaled at.
type slotJF struct {
	slot int
	jf   float64
}

// physTemplate is one embedded coupler program: edges final, fields all
// zero, plus the dense chain indices the execute phase rewrites.
type physTemplate struct {
	phys     *qubo.Sparse            // coupler program (H all zero)
	pp       *anneal.PreparedProgram // prepared adjacency (solo templates only)
	chainIdx [][]int32
}

// soloFor returns (building on first use) the fully prepared primary-slot
// template for chain strength jf.
func (tc *templateCache) soloFor(cc *CompiledChannel, jf float64) (*physTemplate, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if t, ok := tc.solo[jf]; ok {
		return t, nil
	}
	ep, err := cc.emb.EmbedIsing(cc.prog.CouplingTemplate(), jf, cc.dec.opts.ImprovedRange)
	if err != nil {
		return nil, err
	}
	t := &physTemplate{
		phys:     ep.Phys,
		pp:       cc.dec.opts.Machine.PrepareProgram(ep.Phys, cc.dec.opts.ImprovedRange),
		chainIdx: cc.emb.DenseChainIndices(),
	}
	if tc.solo == nil {
		tc.solo = make(map[float64]*physTemplate)
	}
	tc.solo[jf] = t
	return t, nil
}

// slotFor returns (building on first use) the coupler template for one
// parallel embedding slot at chain strength jf.
func (tc *templateCache) slotFor(cc *CompiledChannel, slot int, pack *embedding.Embedding, jf float64) (*physTemplate, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	key := slotJF{slot: slot, jf: jf}
	if t, ok := tc.slots[key]; ok {
		return t, nil
	}
	ep, err := pack.EmbedIsing(cc.prog.CouplingTemplate(), jf, cc.dec.opts.ImprovedRange)
	if err != nil {
		return nil, err
	}
	t := &physTemplate{phys: ep.Phys, chainIdx: pack.DenseChainIndices()}
	if tc.slots == nil {
		tc.slots = make(map[slotJF]*physTemplate)
	}
	tc.slots[key] = t
	return t, nil
}

// Key returns the channel fingerprint the artifact is cached under.
func (cc *CompiledChannel) Key() ChannelKey { return cc.key }

// Mod returns the modulation the channel was compiled for.
func (cc *CompiledChannel) Mod() modulation.Modulation { return cc.prog.Mod }

// Channel returns the channel matrix (shared, not copied; do not mutate).
func (cc *CompiledChannel) Channel() *linalg.Mat { return cc.prog.Channel() }

// LogicalSpins returns N, the Ising problem size of every decode through
// this channel.
func (cc *CompiledChannel) LogicalSpins() int { return cc.prog.N }

// Compile returns the compiled artifact for (mod, h), reusing the decoder's
// LRU cache when the channel fingerprint is warm. A miss compiles the
// couplings and resolves the (itself cached) clique embedding; an insert past
// the configured capacity evicts the least-recently-used channel.
func (d *Decoder) Compile(mod modulation.Modulation, h *linalg.Mat) (*CompiledChannel, error) {
	cc, _, err := d.CompileTracked(mod, h)
	return cc, err
}

// CompileTracked is Compile, additionally reporting whether the artifact was
// served from the compiled-channel cache — the signal backends surface as
// Result.CacheHit and the telemetry plane's compile-stage feeder.
func (d *Decoder) CompileTracked(mod modulation.Modulation, h *linalg.Mat) (*CompiledChannel, bool, error) {
	rec := d.telem.Load()
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	cc, hit, err := d.compile(mod, h)
	if rec != nil && err == nil {
		rec.ObserveCompile(float64(time.Since(start))/float64(time.Microsecond), hit)
	}
	return cc, hit, err
}

func (d *Decoder) compile(mod modulation.Modulation, h *linalg.Mat) (*CompiledChannel, bool, error) {
	key := FingerprintChannel(mod, h)
	d.cacheMu.Lock()
	if el, ok := d.cache[key]; ok {
		d.lru.MoveToFront(el)
		d.hits++
		cc := el.Value.(*CompiledChannel)
		d.cacheMu.Unlock()
		return cc, true, nil
	}
	d.misses++
	d.cacheMu.Unlock()

	// Compile outside the cache lock: the first embedding for a new problem
	// size runs a placement search that must not stall concurrent lookups.
	prog := reduction.CompileChannel(mod, h)
	emb, slots, err := d.embeddingFor(prog.N)
	if err != nil {
		return nil, false, err
	}
	cc := &CompiledChannel{key: key, prog: prog, emb: emb, slots: slots, dec: d}

	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if el, ok := d.cache[key]; ok {
		// A concurrent Compile won the race; keep the incumbent so every
		// caller shares one artifact (and one set of physical templates).
		d.lru.MoveToFront(el)
		return el.Value.(*CompiledChannel), false, nil
	}
	d.cache[key] = d.lru.PushFront(cc)
	for d.lru.Len() > d.opts.ChannelCache {
		back := d.lru.Back()
		d.lru.Remove(back)
		delete(d.cache, back.Value.(*CompiledChannel).key)
		d.evictions++
	}
	return cc, false, nil
}

// ChannelCacheStats snapshots the compiled-channel cache counters.
func (d *Decoder) ChannelCacheStats() metrics.ChannelCacheStats {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	return metrics.ChannelCacheStats{Hits: d.hits, Misses: d.misses, Evictions: d.evictions}
}

// DecodeCompiled runs the execute phase on one received vector: fill the
// y-dependent biases into the already-programmed channel and anneal. The
// result is bit-identical to Decode(cc.Mod(), cc.Channel(), y, src) with the
// same random stream.
func (d *Decoder) DecodeCompiled(cc *CompiledChannel, y []complex128, src *rng.Source) (*Outcome, error) {
	return d.decodeCompiled(cc, y, nil, d.opts.Params, 0, nil, src)
}

// DecodeCompiledWithParams is DecodeCompiled with per-call run knobs
// (jf ≤ 0 selects the decoder's configured |J_F|) — the compiled-path
// counterpart of DecodeWithParams for planner-sized budgets.
func (d *Decoder) DecodeCompiledWithParams(cc *CompiledChannel, y []complex128, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return d.decodeCompiled(cc, y, nil, params, jf, nil, src)
}

// DecodeInstanceCompiled decodes a generated instance through its compiled
// channel, filling the evaluation fields like DecodeInstance.
func (d *Decoder) DecodeInstanceCompiled(cc *CompiledChannel, in *mimo.Instance, src *rng.Source) (*Outcome, error) {
	return d.decodeCompiled(cc, in.Y, in, d.opts.Params, 0, nil, src)
}

func (d *Decoder) decodeCompiled(cc *CompiledChannel, y []complex128, truth *mimo.Instance, params anneal.Params, jf float64, soft *softout.Spec, src *rng.Source) (*Outcome, error) {
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	if cc.dec != d {
		return nil, errors.New("core: compiled channel belongs to a different decoder")
	}
	jfEff := d.chainJF(jf)
	tmpl, err := cc.templates.soloFor(cc, jfEff)
	if err != nil {
		return nil, err
	}
	logical := cc.prog.Biases(y)
	hphys := make([]float64, tmpl.pp.N())
	fillChainFields(hphys, logical.H, tmpl.chainIdx, jfEff, cc.prog.N)
	samples, err := d.opts.Machine.RunPrepared(tmpl.pp, hphys, params, src)
	if err != nil {
		return nil, err
	}
	return d.collect(cc.prog.Mod, logical, cc.emb, samples, truth, params, cc.slots, soft, src), nil
}

// fillChainFields spreads the logical fields along each chain per Eq. 11:
// every chain qubit of logical spin i carries f_i/(|J_F|·chainLen) — the
// same arithmetic EmbedIsing performs, applied to a zeroed field vector.
func fillChainFields(hphys, logicalH []float64, chainIdx [][]int32, jf float64, n int) {
	chainLen := float64(embedding.ChainLength(n))
	for i, f := range logicalH {
		v := f / (jf * chainLen)
		for _, q := range chainIdx[i] {
			hphys[q] = v
		}
	}
}

// CompiledBatchItem is one decode of a compiled shared run: a compiled
// channel plus the received vector observed through it. Truth, when non-nil,
// fills the evaluation fields like DecodeInstance. Soft, when non-nil,
// requests per-bit LLRs for this item (the shared-run soft variant): each
// slot retains its own read ensemble, so soft and hard items mix freely in
// one run without affecting each other's results.
type CompiledBatchItem struct {
	CC    *CompiledChannel
	Y     []complex128
	Truth *mimo.Instance
	Soft  *softout.Spec
}

// DecodeCompiledSharedRun is DecodeSharedRun for compiled channels: up to
// BatchSlots(N) symbols — typically one coherence window's worth, possibly
// from different channels — share ONE annealer run, with each problem's
// couplers taken from its channel's cached per-slot template and only the
// biases rewritten. Results are bit-identical to DecodeSharedRun on the same
// items and random stream.
func (d *Decoder) DecodeCompiledSharedRun(items []CompiledBatchItem, src *rng.Source) ([]*Outcome, error) {
	return d.DecodeCompiledSharedRunWithParams(items, d.opts.Params, 0, src)
}

// DecodeCompiledSharedRunWithParams is DecodeCompiledSharedRun with per-run
// knobs (jf ≤ 0 = configured |J_F|), mirroring DecodeSharedRunWithParams.
func (d *Decoder) DecodeCompiledSharedRunWithParams(items []CompiledBatchItem, params anneal.Params, jf float64, src *rng.Source) ([]*Outcome, error) {
	if len(items) == 0 {
		return nil, errors.New("core: empty batch")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	n := items[0].CC.prog.N
	for _, it := range items {
		if it.CC.dec != d {
			return nil, errors.New("core: compiled channel belongs to a different decoder")
		}
		if it.CC.prog.N != n {
			return nil, fmt.Errorf("core: batch mixes logical sizes %d and %d", n, it.CC.prog.N)
		}
		if it.Soft != nil {
			if err := it.Soft.Validate(); err != nil {
				return nil, err
			}
		}
	}
	packs, err := d.packsFor(n)
	if err != nil {
		return nil, err
	}
	if len(items) > len(packs) {
		return nil, fmt.Errorf("core: batch of %d exceeds the %d parallel slots for N=%d",
			len(items), len(packs), n)
	}

	// Assemble the combined physical program from each channel's cached slot
	// template: couplers are copied, fields are computed fresh per symbol.
	jfEff := d.chainJF(jf)
	logicals := make([]*qubo.Ising, len(items))
	offsets := make([]int, len(items))
	total := 0
	for i := range items {
		offsets[i] = total
		total += packs[i].NumPhysical()
	}
	combined := qubo.NewSparse(total)
	for i, it := range items {
		tmpl, err := it.CC.templates.slotFor(it.CC, i, packs[i], jfEff)
		if err != nil {
			return nil, err
		}
		logicals[i] = it.CC.prog.Biases(it.Y)
		off := offsets[i]
		fillChainFields(combined.H[off:off+packs[i].NumPhysical()], logicals[i].H, tmpl.chainIdx, jfEff, n)
		for _, e := range tmpl.phys.Edges {
			combined.Edges = append(combined.Edges, qubo.SparseEdge{I: e.I + off, J: e.J + off, W: e.W})
		}
	}

	samples, err := d.opts.Machine.Run(combined, params, d.opts.ImprovedRange, src)
	if err != nil {
		return nil, err
	}

	outs := make([]*Outcome, len(items))
	for i, it := range items {
		out := &Outcome{
			Pf:                  1,
			WallMicrosPerAnneal: params.AnnealWallMicros(),
		}
		if d.opts.AmortizeParallel {
			out.Pf = float64(len(items))
		}
		var acc *metrics.Accumulator
		if it.Truth != nil {
			acc = metrics.NewAccumulator(n)
			out.TxEnergy = logicals[i].Energy(qubo.SpinsFromBits(it.Truth.TxQUBOBits()))
		}
		sc := newSoftCollector(it.Soft, it.CC.prog.Mod, n)
		off, np := offsets[i], packs[i].NumPhysical()
		bestE := 0.0
		var bestBits []byte
		for _, s := range samples {
			spins, broken := packs[i].Unembed(s.Spins[off:off+np], src)
			energy := logicals[i].Energy(spins)
			out.BrokenChains += broken
			qbits := qubo.BitsFromSpins(spins)
			if bestBits == nil || energy < bestE {
				bestE = energy
				bestBits = qbits
			}
			if acc != nil {
				rx := it.CC.prog.Mod.PostTranslate(qbits)
				acc.Add(string(qbits), energy, it.Truth.BitErrors(rx))
			}
			sc.add(qbits, energy)
		}
		out.Energy = bestE
		out.Bits = it.CC.prog.Mod.PostTranslate(bestBits)
		out.Symbols = reduction.BitsToSymbols(it.CC.prog.Mod, bestBits)
		if acc != nil {
			out.Distribution = acc.Distribution()
		}
		sc.finish(out)
		d.recordQuality(it.CC.prog.Mod, n, len(samples), out)
		outs[i] = out
	}
	return outs, nil
}
