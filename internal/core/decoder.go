// Package core is QuAMax itself: the quantum-annealing ML MIMO decoder that
// ties the reduction, embedding, annealer and post-translation together
// (paper §3–§4). One Decode call performs the paper's full receive pipeline:
//
//	H, y ──ReduceToIsing──▶ logical Ising ──EmbedIsing──▶ physical program
//	      ──Machine.Run (Na anneals)──▶ samples ──Unembed + majority vote──▶
//	      logical solutions ──min energy──▶ QUBO bits ──PostTranslate──▶ b̂
//
// The decoder caches clique embeddings and parallel-slot packings per
// problem size, mirroring a deployment where the C-RAN data center programs
// the same embedding template for every subcarrier of a given user count.
package core

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"quamax/internal/anneal"
	"quamax/internal/chimera"
	"quamax/internal/embedding"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
	"quamax/internal/softout"
	"quamax/internal/telemetry"
)

// Options configure a Decoder. The zero value is completed by New with the
// paper's defaults.
type Options struct {
	// Graph is the QPU topology (default: the DW2Q chip model).
	Graph *chimera.Graph
	// Machine simulates the QPU (default: anneal.NewMachine()).
	Machine *anneal.Machine
	// JF is the ferromagnetic chain strength |J_F| (default 4, a robust
	// improved-range setting per Fig. 5).
	JF float64
	// ImprovedRange enables the doubled negative coupler range (§4); the
	// paper selects it as the default operating point (§5.3.1).
	ImprovedRange bool
	// Params are the per-run annealer knobs (default anneal.DefaultParams()).
	Params anneal.Params
	// AmortizeParallel enables the §4 parallelization accounting: TTB/TTF
	// are divided by the geometric slot count Pf.
	AmortizeParallel bool
	// ChannelCache bounds the compiled-channel LRU cache in entries — one
	// entry pins a channel's Ising couplings, clique embedding and prepared
	// physical program for the coherence window (see CompiledChannel).
	// 0 selects DefaultChannelCache; negative values are rejected.
	ChannelCache int
}

// DefaultChannelCache is the compiled-channel LRU capacity when Options
// leaves ChannelCache zero: comfortably more channels than the DW2Q holds
// embedding slots, small enough that stale coherence windows age out.
const DefaultChannelCache = 64

// Decoder is a reusable QuAMax decoder. It is safe for concurrent use.
type Decoder struct {
	opts Options

	mu    sync.Mutex
	embs  map[int]*embedding.Embedding   // by logical size N
	packs map[int][]*embedding.Embedding // parallel slot packings by N
	slots map[int]int                    // geometric Pf by N

	// Compiled-channel LRU (see compiled.go).
	cacheMu      sync.Mutex
	cache        map[ChannelKey]*list.Element
	lru          *list.List
	hits, misses uint64
	evictions    uint64

	// telem, when set, receives per-solve anneal-quality samples and
	// channel-compile timings (SetTelemetry).
	telem atomic.Pointer[telemetry.Recorder]
}

// New returns a Decoder, filling unset options with the paper's defaults.
func New(opts Options) (*Decoder, error) {
	if opts.Graph == nil {
		opts.Graph = chimera.DW2Q()
	}
	if opts.Machine == nil {
		opts.Machine = anneal.NewMachine()
	}
	if opts.JF == 0 {
		opts.JF = 4
		opts.ImprovedRange = true
	}
	if opts.JF < 0 {
		return nil, errors.New("core: |J_F| must be positive")
	}
	if opts.Params == (anneal.Params{}) {
		opts.Params = anneal.DefaultParams()
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.ChannelCache == 0 {
		opts.ChannelCache = DefaultChannelCache
	}
	if opts.ChannelCache < 0 {
		return nil, errors.New("core: channel cache size must be positive")
	}
	return &Decoder{
		opts:  opts,
		embs:  make(map[int]*embedding.Embedding),
		packs: make(map[int][]*embedding.Embedding),
		slots: make(map[int]int),
		cache: make(map[ChannelKey]*list.Element),
		lru:   list.New(),
	}, nil
}

// Options returns the decoder's effective configuration.
func (d *Decoder) Options() Options { return d.opts }

// SetTelemetry attaches (or, with nil, detaches) a telemetry recorder: every
// subsequent decode reports its anneal quality (best energy, chain breaks,
// LLR saturation) per problem class, and every Compile reports its duration
// and cache outcome. Safe to call concurrently with decodes.
func (d *Decoder) SetTelemetry(rec *telemetry.Recorder) { d.telem.Store(rec) }

// recordQuality reports one solve's anneal-quality sample to the attached
// recorder, if any. n is the logical spin count; reads the sample count of
// the run the outcome was distilled from.
func (d *Decoder) recordQuality(mod modulation.Modulation, n, reads int, out *Outcome) {
	rec := d.telem.Load()
	if rec == nil {
		return
	}
	rec.ObserveQuality(telemetry.Class(mod.String(), n/mod.BitsPerSymbol()), telemetry.QualityObservation{
		BestEnergy:   out.Energy,
		Reads:        reads,
		ChainBreaks:  out.BrokenChains,
		LLRBits:      len(out.LLRs),
		LLRSaturated: out.LLRSaturated,
	})
}

// embeddingFor returns (and caches) the clique embedding for N logical spins.
func (d *Decoder) embeddingFor(n int) (*embedding.Embedding, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.embs[n]; ok {
		return e, d.slots[n], nil
	}
	e, err := embedding.Embed(d.opts.Graph, n)
	if err != nil {
		return nil, 0, fmt.Errorf("core: %d logical spins: %w", n, err)
	}
	packs := embedding.PackSlots(d.opts.Graph, n)
	if len(packs) == 0 {
		// No disjoint pack fits (possible with defects at large N even
		// though a single placement exists): the lone embedding is the one
		// slot, keeping BatchSlots ≥ 1 honest for DecodeSharedRun.
		packs = []*embedding.Embedding{e}
	}
	slots := len(packs)
	d.embs[n] = e
	d.packs[n] = packs
	d.slots[n] = slots
	return e, slots, nil
}

// packsFor returns (and caches) the disjoint parallel slot packing for N
// logical spins — the embeddings DecodeBatch programs side by side.
func (d *Decoder) packsFor(n int) ([]*embedding.Embedding, error) {
	if _, _, err := d.embeddingFor(n); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.packs[n], nil
}

// Outcome is the result of one decode (one channel use).
type Outcome struct {
	// Bits are the decoded, post-translated (Gray) data bits.
	Bits []byte
	// Symbols are the decoded constellation points.
	Symbols []complex128
	// Energy is the logical Ising energy of the best sample; by
	// construction it equals the ML metric ‖y − H·Symbols‖².
	Energy float64
	// BrokenChains totals broken logical chains across all anneals
	// (annealer health diagnostic).
	BrokenChains int
	// Pf is the parallelization factor used for time amortization
	// (1 when AmortizeParallel is off).
	Pf float64
	// WallMicrosPerAnneal is Ta+Tp.
	WallMicrosPerAnneal float64
	// Distribution is the rank-ordered solution distribution with bit
	// errors against ground truth. Populated only by DecodeInstance (bit
	// errors need the transmitted bits — footnote 7); Decode leaves it nil.
	Distribution *metrics.Distribution
	// TxEnergy is the logical energy of the transmitted configuration
	// (DecodeInstance only); on a noise-free channel this is the ground
	// energy 0.
	TxEnergy float64
	// LLRs are the per-data-bit max-log-MAP log-likelihood ratios computed
	// over the read ensemble (positive favors bit 1, see internal/softout).
	// Populated only by the soft decode paths (DecodeSoft and friends, or a
	// batch item carrying a Soft spec); hard decodes leave it nil. Bits is
	// always the hard decision of the best read, so soft outputs never
	// change the hard result.
	LLRs []float64
	// LLRSaturated counts the LLR entries that hit the clamp (including
	// ensemble-unanimous bits). Soft decodes only.
	LLRSaturated int
	// SoftCandidates is the number of distinct candidates the ensemble
	// retained for LLR extraction. Soft decodes only.
	SoftCandidates int
}

// Decode runs the QuAMax pipeline on a raw channel use. src drives the
// annealer and tie-breaking; reuse one source across calls for independent
// randomness.
func (d *Decoder) Decode(mod modulation.Modulation, h *linalg.Mat, y []complex128, src *rng.Source) (*Outcome, error) {
	return d.decode(mod, h, y, nil, d.opts.Params, nil, src)
}

// DecodeWithParams is Decode with per-call run knobs overriding the
// decoder's configuration — the entry point the QoS planner uses to
// right-size the read budget (and match the fitted chain strength) per
// request while reusing this decoder's embedding caches. jf ≤ 0 selects the
// decoder's configured |J_F|.
func (d *Decoder) DecodeWithParams(mod modulation.Modulation, h *linalg.Mat, y []complex128, params anneal.Params, jf float64, src *rng.Source) (*Outcome, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return d.decodeJF(mod, h, y, nil, params, jf, nil, src)
}

// DecodeInstance decodes a generated instance and additionally fills the
// evaluation fields (Distribution, TxEnergy) using the instance's ground
// truth.
func (d *Decoder) DecodeInstance(in *mimo.Instance, src *rng.Source) (*Outcome, error) {
	return d.decode(in.Mod, in.H, in.Y, in, d.opts.Params, nil, src)
}

func (d *Decoder) decode(mod modulation.Modulation, h *linalg.Mat, y []complex128, truth *mimo.Instance, params anneal.Params, soft *softout.Spec, src *rng.Source) (*Outcome, error) {
	return d.decodeJF(mod, h, y, truth, params, 0, soft, src)
}

// chainJF resolves a per-call chain-strength override (≤ 0 = configured).
func (d *Decoder) chainJF(jf float64) float64 {
	if jf > 0 {
		return jf
	}
	return d.opts.JF
}

func (d *Decoder) decodeJF(mod modulation.Modulation, h *linalg.Mat, y []complex128, truth *mimo.Instance, params anneal.Params, jf float64, soft *softout.Spec, src *rng.Source) (*Outcome, error) {
	if src == nil {
		return nil, errors.New("core: nil random source")
	}
	logical := reduction.ReduceToIsing(mod, h, y)
	emb, slots, err := d.embeddingFor(logical.N)
	if err != nil {
		return nil, err
	}
	ep, err := emb.EmbedIsing(logical, d.chainJF(jf), d.opts.ImprovedRange)
	if err != nil {
		return nil, err
	}
	samples, err := d.opts.Machine.Run(ep.Phys, params, d.opts.ImprovedRange, src)
	if err != nil {
		return nil, err
	}
	return d.collect(mod, logical, emb, samples, truth, params, slots, soft, src), nil
}

// collect post-processes one run's samples into an Outcome: majority-vote
// unembedding, logical-energy scoring against the (possibly per-symbol)
// logical program, minimum-energy selection, and post-translation. It is
// shared by the recompiling and compiled-channel decode paths, which is what
// makes the two bit-identical given the same random stream. soft, when
// non-nil, additionally retains the read ensemble and fills the Outcome's
// LLR fields (the hard fields are computed exactly as before — soft output
// is purely additive).
func (d *Decoder) collect(mod modulation.Modulation, logical *qubo.Ising, emb *embedding.Embedding, samples []anneal.Sample, truth *mimo.Instance, params anneal.Params, slots int, soft *softout.Spec, src *rng.Source) *Outcome {
	out := &Outcome{
		Pf:                  1,
		WallMicrosPerAnneal: params.AnnealWallMicros(),
	}
	if d.opts.AmortizeParallel {
		out.Pf = float64(slots)
	}

	var acc *metrics.Accumulator
	if truth != nil {
		acc = metrics.NewAccumulator(logical.N)
		out.TxEnergy = logical.Energy(qubo.SpinsFromBits(truth.TxQUBOBits()))
	}
	sc := newSoftCollector(soft, mod, logical.N)

	bestE := 0.0
	var bestBits []byte
	for _, s := range samples {
		spins, broken := emb.Unembed(s.Spins, src)
		energy := logical.Energy(spins)
		out.BrokenChains += broken
		qbits := qubo.BitsFromSpins(spins)
		if bestBits == nil || energy < bestE {
			bestE = energy
			bestBits = qbits
		}
		if acc != nil {
			rx := mod.PostTranslate(qbits)
			acc.Add(string(qbits), energy, truth.BitErrors(rx))
		}
		sc.add(qbits, energy)
	}
	out.Energy = bestE
	out.Bits = mod.PostTranslate(bestBits)
	out.Symbols = reduction.BitsToSymbols(mod, bestBits)
	if acc != nil {
		out.Distribution = acc.Distribution()
	}
	sc.finish(out)
	d.recordQuality(mod, logical.N, len(samples), out)
	return out
}
