package core

import (
	"reflect"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func compiledTestDecoder(t *testing.T, cache int) *Decoder {
	t.Helper()
	d, err := New(Options{
		Graph:        chimera.New(6),
		Params:       anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 25},
		ChannelCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compiledInstance(t *testing.T, seed int64, mod modulation.Modulation, nt int, snr float64) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// outcomesIdentical requires two decode outcomes to agree exactly — bits,
// symbols, energies, chain diagnostics — the acceptance bar for the
// compiled path ("bit-identical to Decode on the same (H, y, seed)").
func outcomesIdentical(t *testing.T, label string, got, want *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(got.Bits, want.Bits) {
		t.Fatalf("%s: bits %v, want %v", label, got.Bits, want.Bits)
	}
	if !reflect.DeepEqual(got.Symbols, want.Symbols) {
		t.Fatalf("%s: symbols %v, want %v", label, got.Symbols, want.Symbols)
	}
	if got.Energy != want.Energy {
		t.Fatalf("%s: energy %v, want %v (not bit-identical)", label, got.Energy, want.Energy)
	}
	if got.BrokenChains != want.BrokenChains {
		t.Fatalf("%s: broken chains %d, want %d", label, got.BrokenChains, want.BrokenChains)
	}
	if got.Pf != want.Pf {
		t.Fatalf("%s: Pf %v, want %v", label, got.Pf, want.Pf)
	}
}

// Acceptance: DecodeCompiled must be bit-identical to Decode on the same
// (H, y, seed) — same random stream, same samples, same decision — for every
// modulation, across several symbols of one coherence window.
func TestDecodeCompiledBitIdentical(t *testing.T) {
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 4},
		{modulation.QPSK, 3},
		{modulation.QAM16, 2},
	}
	for _, c := range cases {
		d := compiledTestDecoder(t, 0)
		in := compiledInstance(t, 910, c.mod, c.nt, 22)
		cc, err := d.Compile(c.mod, in.H)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh y per symbol through the SAME channel; identically-seeded
		// sources guarantee both paths consume identical random streams.
		ysrc := rng.New(6)
		for sym := 0; sym < 3; sym++ {
			bits := ysrc.Bits(c.nt * c.mod.BitsPerSymbol())
			y := channel.AddAWGN(ysrc, linalg.MulVec(in.H, c.mod.MapGrayVector(bits)), 0.1)
			want, err := d.Decode(c.mod, in.H, y, rng.New(int64(100+sym)))
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.DecodeCompiled(cc, y, rng.New(int64(100+sym)))
			if err != nil {
				t.Fatal(err)
			}
			outcomesIdentical(t, c.mod.String(), got, want)
		}
	}
}

// DecodeCompiledWithParams must honor per-call budgets and chain strengths
// exactly like DecodeWithParams.
func TestDecodeCompiledWithParamsBitIdentical(t *testing.T) {
	d := compiledTestDecoder(t, 0)
	in := compiledInstance(t, 911, modulation.QPSK, 4, 25)
	cc, err := d.Compile(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	params := anneal.Params{AnnealTimeMicros: 2, PauseTimeMicros: 1, PausePosition: 0.4, NumAnneals: 9}
	want, err := d.DecodeWithParams(in.Mod, in.H, in.Y, params, 7, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.DecodeCompiledWithParams(cc, in.Y, params, 7, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	outcomesIdentical(t, "with-params", got, want)
}

// DecodeCompiledSharedRun must match DecodeSharedRun exactly on the same
// batch and random stream, mixing symbols from different channels.
func TestDecodeCompiledSharedRunBitIdentical(t *testing.T) {
	d := compiledTestDecoder(t, 0)
	ins := []*mimo.Instance{
		compiledInstance(t, 920, modulation.QPSK, 2, 20),
		compiledInstance(t, 921, modulation.QPSK, 2, 20),
		compiledInstance(t, 922, modulation.BPSK, 4, 20), // same N=4, different mod
	}
	slots, err := d.BatchSlots(4)
	if err != nil {
		t.Fatal(err)
	}
	if slots < len(ins) {
		t.Skipf("only %d slots on this graph", slots)
	}
	legacy := make([]BatchItem, len(ins))
	compiled := make([]CompiledBatchItem, len(ins))
	for i, in := range ins {
		legacy[i] = BatchItem{Mod: in.Mod, H: in.H, Y: in.Y}
		cc, err := d.Compile(in.Mod, in.H)
		if err != nil {
			t.Fatal(err)
		}
		compiled[i] = CompiledBatchItem{CC: cc, Y: in.Y}
	}
	want, err := d.DecodeSharedRun(legacy, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.DecodeCompiledSharedRun(compiled, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		outcomesIdentical(t, ins[i].Mod.String(), got[i], want[i])
		if errs := ins[i].BitErrors(got[i].Bits); errs != 0 {
			t.Errorf("item %d: %d bit errors at 20 dB", i, errs)
		}
	}
}

// The compiled-channel LRU must hit on the fingerprint, miss on new
// channels, and evict least-recently-used entries at capacity — with the
// counters reporting exactly that.
func TestChannelCacheLRU(t *testing.T) {
	d := compiledTestDecoder(t, 2)
	ins := []*mimo.Instance{
		compiledInstance(t, 930, modulation.QPSK, 2, 20),
		compiledInstance(t, 931, modulation.QPSK, 2, 20),
		compiledInstance(t, 932, modulation.QPSK, 2, 20),
	}
	cc0, err := d.Compile(ins[0].Mod, ins[0].H)
	if err != nil {
		t.Fatal(err)
	}
	again, err := d.Compile(ins[0].Mod, ins[0].H)
	if err != nil {
		t.Fatal(err)
	}
	if again != cc0 {
		t.Fatal("recompiling an identical channel returned a new artifact")
	}
	if _, err := d.Compile(ins[1].Mod, ins[1].H); err != nil {
		t.Fatal(err)
	}
	// Capacity 2: compiling a third channel evicts the LRU entry, which is
	// ins[0]... unless its recent hit kept it warm. Touch ins[0], then add
	// ins[2] to evict ins[1].
	if _, err := d.Compile(ins[0].Mod, ins[0].H); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compile(ins[2].Mod, ins[2].H); err != nil {
		t.Fatal(err)
	}
	st := d.ChannelCacheStats()
	if st.Misses != 3 || st.Hits != 2 || st.Evictions != 1 {
		t.Fatalf("cache stats %+v, want 3 misses / 2 hits / 1 eviction", st)
	}
	// ins[1] was evicted: compiling it again must miss and displace the
	// current LRU entry ins[0], whose next lookup then misses too.
	if _, err := d.Compile(ins[1].Mod, ins[1].H); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compile(ins[0].Mod, ins[0].H); err != nil {
		t.Fatal(err)
	}
	st = d.ChannelCacheStats()
	if st.Misses != 5 || st.Hits != 2 || st.Evictions != 3 {
		t.Fatalf("cache stats after churn %+v, want 5 misses / 2 hits / 3 evictions", st)
	}
}

// A compiled channel from one decoder must be rejected by another.
func TestCompiledChannelDecoderOwnership(t *testing.T) {
	d1 := compiledTestDecoder(t, 0)
	d2 := compiledTestDecoder(t, 0)
	in := compiledInstance(t, 940, modulation.BPSK, 2, 20)
	cc, err := d1.Compile(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.DecodeCompiled(cc, in.Y, rng.New(1)); err == nil {
		t.Fatal("foreign compiled channel accepted")
	}
}

// Distinct channels must fingerprint differently, and the fingerprint must
// separate modulations sharing one matrix.
func TestFingerprintChannel(t *testing.T) {
	src := rng.New(50)
	h1 := channel.Rayleigh{}.Generate(src, 3, 2)
	h2 := channel.Rayleigh{}.Generate(src, 3, 2)
	if FingerprintChannel(modulation.QPSK, h1) == FingerprintChannel(modulation.QPSK, h2) {
		t.Fatal("distinct channels collided")
	}
	if FingerprintChannel(modulation.QPSK, h1) == FingerprintChannel(modulation.QAM16, h1) {
		t.Fatal("distinct modulations collided")
	}
	if FingerprintChannel(modulation.QPSK, h1) != FingerprintChannel(modulation.QPSK, h1.Clone()) {
		t.Fatal("identical channels fingerprinted differently")
	}
	if FingerprintChannel(modulation.QPSK, h1) == 0 {
		t.Fatal("fingerprint used the reserved zero key")
	}
}
