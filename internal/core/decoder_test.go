package core

import (
	"math"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func smallDecoder(t *testing.T, params anneal.Params) *Decoder {
	t.Helper()
	d, err := New(Options{
		Graph:  chimera.New(8),
		Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func genInstance(t *testing.T, src *rng.Source, mod modulation.Modulation, nt int, snr float64) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(src, mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewDefaults(t *testing.T) {
	d, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := d.Options()
	if o.Graph == nil || o.Machine == nil {
		t.Fatal("defaults not filled")
	}
	if o.JF != 4 || !o.ImprovedRange {
		t.Fatalf("default JF/range: %+v", o)
	}
	if o.Params.NumAnneals < 1 {
		t.Fatal("default params missing")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{JF: -1}); err == nil {
		t.Fatal("negative JF accepted")
	}
	if _, err := New(Options{Params: anneal.Params{AnnealTimeMicros: 0.1, NumAnneals: 1}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

// Noise-free decode of paper-relevant sizes must recover the transmitted
// bits exactly (the §5.3 scenario where the annealer's own noise is the only
// impairment).
func TestDecodeNoiseFreeRecoversBits(t *testing.T) {
	src := rng.New(101)
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 60,
	})
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 12},
		{modulation.QPSK, 6},
		{modulation.QAM16, 3},
	}
	for _, c := range cases {
		in := genInstance(t, src, c.mod, c.nt, math.Inf(1))
		out, err := d.DecodeInstance(in, src)
		if err != nil {
			t.Fatalf("%v: %v", c.mod, err)
		}
		if errs := in.BitErrors(out.Bits); errs != 0 {
			t.Fatalf("%v %d users: %d bit errors on noise-free channel (energy %g)",
				c.mod, c.nt, errs, out.Energy)
		}
		if out.TxEnergy > 1e-9 {
			t.Fatalf("%v: TxEnergy = %g, want 0 on noise-free channel", c.mod, out.TxEnergy)
		}
		if math.Abs(out.Energy-out.TxEnergy) > 1e-9 {
			t.Fatalf("%v: best energy %g should reach ground 0", c.mod, out.Energy)
		}
		if out.Distribution == nil || out.Distribution.Total != 60 {
			t.Fatalf("%v: distribution missing or wrong total", c.mod)
		}
		if out.Distribution.Solutions[0].BitErrors != 0 {
			t.Fatalf("%v: rank-1 solution has bit errors on noise-free channel", c.mod)
		}
	}
}

// Energy of the decoded solution must equal its ML metric ‖y − H·v̂‖².
func TestOutcomeEnergyIsMLMetric(t *testing.T) {
	src := rng.New(102)
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 30})
	in := genInstance(t, src, modulation.QPSK, 4, 18)
	out, err := d.DecodeInstance(in, src)
	if err != nil {
		t.Fatal(err)
	}
	var metric float64
	yHat := make([]complex128, in.Nr)
	for r := 0; r < in.Nr; r++ {
		var s complex128
		for c := 0; c < in.Nt; c++ {
			s += in.H.At(r, c) * out.Symbols[c]
		}
		yHat[r] = s
		dd := in.Y[r] - s
		metric += real(dd)*real(dd) + imag(dd)*imag(dd)
	}
	if math.Abs(metric-out.Energy) > 1e-6*(1+metric) {
		t.Fatalf("energy %g != metric %g", out.Energy, metric)
	}
}

// Decode (without ground truth) must agree with DecodeInstance given the
// same randomness, and must not populate evaluation-only fields.
func TestDecodeWithoutTruth(t *testing.T) {
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 20})
	in := genInstance(t, rng.New(103), modulation.BPSK, 8, math.Inf(1))
	a, err := d.Decode(in.Mod, in.H, in.Y, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Distribution != nil {
		t.Fatal("Decode should not build a distribution")
	}
	b, err := d.DecodeInstance(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			t.Fatal("Decode and DecodeInstance disagree under identical randomness")
		}
	}
}

func TestDecoderRejectsNilSource(t *testing.T) {
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 1})
	in := genInstance(t, rng.New(104), modulation.BPSK, 4, 20)
	if _, err := d.DecodeInstance(in, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestDecoderRejectsOversizedProblem(t *testing.T) {
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 1})
	// C8 fits at most 32 logical spins; 40-user BPSK needs M=10.
	in := genInstance(t, rng.New(105), modulation.BPSK, 40, 20)
	if _, err := d.DecodeInstance(in, rng.New(1)); err == nil {
		t.Fatal("oversized problem accepted")
	}
}

func TestEmbeddingCacheReuse(t *testing.T) {
	d := smallDecoder(t, anneal.Params{AnnealTimeMicros: 1, NumAnneals: 5})
	src := rng.New(106)
	for i := 0; i < 3; i++ {
		in := genInstance(t, src, modulation.BPSK, 8, 20)
		if _, err := d.DecodeInstance(in, src); err != nil {
			t.Fatal(err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.embs) != 1 {
		t.Fatalf("expected one cached embedding, have %d", len(d.embs))
	}
}

func TestAmortizeParallel(t *testing.T) {
	d, err := New(Options{
		Graph:            chimera.New(16),
		Params:           anneal.Params{AnnealTimeMicros: 1, NumAnneals: 5},
		AmortizeParallel: true,
		JF:               4, ImprovedRange: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := genInstance(t, rng.New(107), modulation.BPSK, 16, 20)
	out, err := d.DecodeInstance(in, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Pf < 20 {
		t.Fatalf("Pf = %g, expected ≥ 20 for 16-spin problems on C16 (paper §4)", out.Pf)
	}
	if out.WallMicrosPerAnneal != 1 {
		t.Fatalf("wall = %g", out.WallMicrosPerAnneal)
	}
}

// At 20 dB SNR a moderate run must reach BER 0 on most instances for small
// systems — the sanity anchor for the TTB experiments.
func TestDecodeAtModerateSNR(t *testing.T) {
	src := rng.New(108)
	d := smallDecoder(t, anneal.Params{
		AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 50,
	})
	perfect := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		in := genInstance(t, src, modulation.QPSK, 6, 20)
		out, err := d.DecodeInstance(in, src)
		if err != nil {
			t.Fatal(err)
		}
		if in.BitErrors(out.Bits) == 0 {
			perfect++
		}
	}
	if perfect < trials-2 {
		t.Fatalf("only %d/%d instances decoded perfectly at 20 dB", perfect, trials)
	}
}
