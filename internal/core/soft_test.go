package core

import (
	"math"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// softTestDecoder builds a small-chip decoder for quick soft-path tests.
func softTestDecoder(t *testing.T, cache int) *Decoder {
	t.Helper()
	opts := Options{
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	}
	if cache > 0 {
		opts.ChannelCache = cache
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func softTestInstance(t *testing.T, seed int64, mod modulation.Modulation, nt int, snr float64) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestDecodeSoftHardFieldsIdentical proves soft output is purely additive:
// on the same random stream, DecodeSoft's hard fields equal Decode's.
func TestDecodeSoftHardFieldsIdentical(t *testing.T) {
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QAM16} {
		in := softTestInstance(t, 11, mod, 3, 12)
		dec := softTestDecoder(t, 0)
		hard, err := dec.Decode(mod, in.H, in.Y, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		soft, err := dec.DecodeSoft(mod, in.H, in.Y, softout.Spec{NoiseVar: in.NoiseVariance()}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if string(hard.Bits) != string(soft.Bits) || hard.Energy != soft.Energy {
			t.Fatalf("%v: soft decode changed the hard result: bits %v vs %v, energy %g vs %g",
				mod, hard.Bits, soft.Bits, hard.Energy, soft.Energy)
		}
		if len(soft.LLRs) != len(soft.Bits) {
			t.Fatalf("%v: %d LLRs for %d bits", mod, len(soft.LLRs), len(soft.Bits))
		}
		if hard.LLRs != nil {
			t.Fatalf("%v: hard decode grew LLRs", mod)
		}
		if soft.SoftCandidates < 1 {
			t.Fatalf("%v: no candidates retained", mod)
		}
	}
}

// TestDecodeSoftLLRSignsMatchHardDecision asserts the ISSUE's sign property:
// wherever an LLR is strictly signed, it agrees with the best read's bit.
func TestDecodeSoftLLRSignsMatchHardDecision(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := softTestInstance(t, 100+seed, modulation.QPSK, 4, 10)
		dec := softTestDecoder(t, 0)
		out, err := dec.DecodeSoft(in.Mod, in.H, in.Y, softout.Spec{NoiseVar: in.NoiseVariance()}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for k, llr := range out.LLRs {
			if llr > 0 && out.Bits[k] != 1 {
				t.Fatalf("seed %d bit %d: LLR %g > 0 but hard bit 0", seed, k, llr)
			}
			if llr < 0 && out.Bits[k] != 0 {
				t.Fatalf("seed %d bit %d: LLR %g < 0 but hard bit 1", seed, k, llr)
			}
		}
	}
}

// TestDecodeCompiledSoftMatchesDecodeSoft proves the compiled soft execute
// phase is bit-identical — including the LLRs — to the recompiling soft path
// on the same random stream.
func TestDecodeCompiledSoftMatchesDecodeSoft(t *testing.T) {
	in := softTestInstance(t, 21, modulation.QAM16, 3, 14)
	spec := softout.Spec{NoiseVar: in.NoiseVariance()}

	dec := softTestDecoder(t, 4)
	want, err := dec.DecodeSoft(in.Mod, in.H, in.Y, spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	dec2 := softTestDecoder(t, 4)
	cc, err := dec2.Compile(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec2.DecodeCompiledSoft(cc, in.Y, spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	if string(want.Bits) != string(got.Bits) || want.Energy != got.Energy {
		t.Fatalf("compiled soft hard fields diverge: %v/%g vs %v/%g",
			want.Bits, want.Energy, got.Bits, got.Energy)
	}
	if len(want.LLRs) != len(got.LLRs) {
		t.Fatalf("LLR lengths diverge: %d vs %d", len(want.LLRs), len(got.LLRs))
	}
	for k := range want.LLRs {
		if math.Abs(want.LLRs[k]-got.LLRs[k]) > 1e-9 {
			t.Fatalf("LLR[%d] diverges: %g vs %g", k, want.LLRs[k], got.LLRs[k])
		}
	}
	if want.LLRSaturated != got.LLRSaturated || want.SoftCandidates != got.SoftCandidates {
		t.Fatalf("soft stats diverge: sat %d/%d cands %d/%d",
			want.LLRSaturated, got.LLRSaturated, want.SoftCandidates, got.SoftCandidates)
	}
}

// TestSharedRunSoftMatchesSolo proves a shared-run item carrying a Soft spec
// produces the same LLRs as a solo soft decode would under the same
// slot-sample stream, and that soft and hard items mix freely in one run.
func TestSharedRunSoftMatchesSolo(t *testing.T) {
	mod := modulation.BPSK
	inA := softTestInstance(t, 31, mod, 4, 8)
	inB := softTestInstance(t, 32, mod, 4, 8)
	spec := softout.Spec{NoiseVar: inA.NoiseVariance()}

	dec := softTestDecoder(t, 0)
	items := []BatchItem{
		{Mod: mod, H: inA.H, Y: inA.Y, Soft: &spec},
		{Mod: mod, H: inB.H, Y: inB.Y}, // hard item sharing the run
	}
	outs, err := dec.DecodeSharedRun(items, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].LLRs == nil || len(outs[0].LLRs) != len(outs[0].Bits) {
		t.Fatalf("soft item has no LLRs: %v", outs[0].LLRs)
	}
	if outs[1].LLRs != nil {
		t.Fatal("hard item grew LLRs from a mixed batch")
	}

	// The same batch without the Soft spec must be hard-bit-identical.
	dec2 := softTestDecoder(t, 0)
	hardItems := []BatchItem{
		{Mod: mod, H: inA.H, Y: inA.Y},
		{Mod: mod, H: inB.H, Y: inB.Y},
	}
	hardOuts, err := dec2.DecodeSharedRun(hardItems, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if string(outs[i].Bits) != string(hardOuts[i].Bits) || outs[i].Energy != hardOuts[i].Energy {
			t.Fatalf("item %d: soft spec changed shared-run hard results", i)
		}
	}
}

// TestCompiledSharedRunSoftMatchesRecompiling proves the compiled shared-run
// soft path agrees with the recompiling shared-run soft path, LLRs included.
func TestCompiledSharedRunSoftMatchesRecompiling(t *testing.T) {
	mod := modulation.QPSK
	inA := softTestInstance(t, 41, mod, 2, 12)
	inB := softTestInstance(t, 42, mod, 2, 12)
	spec := softout.Spec{NoiseVar: inA.NoiseVariance()}

	dec := softTestDecoder(t, 4)
	want, err := dec.DecodeSharedRun([]BatchItem{
		{Mod: mod, H: inA.H, Y: inA.Y, Soft: &spec},
		{Mod: mod, H: inB.H, Y: inB.Y, Soft: &spec},
	}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}

	dec2 := softTestDecoder(t, 4)
	ccA, err := dec2.Compile(mod, inA.H)
	if err != nil {
		t.Fatal(err)
	}
	ccB, err := dec2.Compile(mod, inB.H)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec2.DecodeCompiledSharedRun([]CompiledBatchItem{
		{CC: ccA, Y: inA.Y, Soft: &spec},
		{CC: ccB, Y: inB.Y, Soft: &spec},
	}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if string(want[i].Bits) != string(got[i].Bits) || want[i].Energy != got[i].Energy {
			t.Fatalf("item %d: hard fields diverge between shared-run paths", i)
		}
		for k := range want[i].LLRs {
			if math.Abs(want[i].LLRs[k]-got[i].LLRs[k]) > 1e-9 {
				t.Fatalf("item %d LLR[%d]: %g vs %g", i, k, want[i].LLRs[k], got[i].LLRs[k])
			}
		}
	}
}

// TestDecodeSoftRejectsBadSpec checks spec validation at every soft entry.
func TestDecodeSoftRejectsBadSpec(t *testing.T) {
	in := softTestInstance(t, 51, modulation.BPSK, 2, 10)
	dec := softTestDecoder(t, 0)
	bad := softout.Spec{Clamp: -1}
	if _, err := dec.DecodeSoft(in.Mod, in.H, in.Y, bad, rng.New(1)); err == nil {
		t.Fatal("DecodeSoft accepted a bad spec")
	}
	cc, err := dec.Compile(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeCompiledSoft(cc, in.Y, bad, rng.New(1)); err == nil {
		t.Fatal("DecodeCompiledSoft accepted a bad spec")
	}
	if _, err := dec.DecodeSharedRun([]BatchItem{{Mod: in.Mod, H: in.H, Y: in.Y, Soft: &bad}}, rng.New(1)); err == nil {
		t.Fatal("DecodeSharedRun accepted a bad item spec")
	}
}

// TestDecodeInstanceSoftDefaultsNoiseVar checks the instance path fills σ²
// from the instance when the spec leaves it unset.
func TestDecodeInstanceSoftDefaultsNoiseVar(t *testing.T) {
	in := softTestInstance(t, 61, modulation.QPSK, 2, 6)
	dec := softTestDecoder(t, 0)
	out, err := dec.DecodeInstanceSoft(in, softout.Spec{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if out.Distribution == nil {
		t.Fatal("instance decode lost its evaluation fields")
	}
	want, err := softTestDecoder(t, 0).DecodeSoft(in.Mod, in.H, in.Y,
		softout.Spec{NoiseVar: in.NoiseVariance()}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.LLRs {
		if math.Abs(want.LLRs[k]-out.LLRs[k]) > 1e-9 {
			t.Fatalf("LLR[%d]: instance %g vs explicit σ² %g", k, out.LLRs[k], want.LLRs[k])
		}
	}
}
