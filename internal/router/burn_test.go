package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/health"
)

// Burn-driven shedding: a shard whose SLO burn tracker alerts is shed with
// the tagged error even when the EWMA threshold is disabled, un-keyed
// traffic steers around it, and the shed clears on its own once the burn
// recovers — no operator reset.
func TestBurnRateShedding(t *testing.T) {
	burn := health.NewBurnTracker(2, health.SLOConfig{
		MissBudget: 0.05, FastAlpha: 0.5, SlowAlpha: 0.2, MinSamples: 1,
	})
	s0, s1 := newFakeShard(0), newFakeShard(0)
	r := newTestRouter(t, []Shard{s0, s1}, Config{Burn: burn})

	var key0, key1 core.ChannelKey
	for k := uint64(1); key0 == 0 || key1 == 0; k++ {
		switch r.ShardFor(core.ChannelKey(k)) {
		case 0:
			if key0 == 0 {
				key0 = core.ChannelKey(k)
			}
		case 1:
			if key1 == 0 {
				key1 = core.ChannelKey(k)
			}
		}
	}
	if _, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: key0}, time.Second); err != nil {
		t.Fatalf("calm shard refused: %v", err)
	}

	// Burn shard 0's miss budget. In production the shard's own scheduler
	// feeds these observations; the router only reads the verdict.
	for i := 0; i < 40 && !burn.Alerting(0); i++ {
		burn.Observe(0, true, false)
	}
	if !burn.Alerting(0) {
		t.Fatal("setup: shard 0 never alerted")
	}
	_, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: key0}, time.Second)
	if err == nil {
		t.Fatal("burning shard accepted keyed traffic")
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("burn shed error %v, want *ShedError for shard 0", err)
	}
	if r.ShedCount(0) == 0 {
		t.Fatal("burn shed not counted")
	}
	if _, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: key1}, time.Second); err != nil {
		t.Fatalf("calm shard refused during peer burn: %v", err)
	}
	before := s1.dispatched.Load()
	for i := 0; i < 20; i++ {
		if _, err := r.Dispatch(context.Background(), &backend.Problem{}, time.Second); err != nil {
			t.Fatalf("un-keyed dispatch refused with one calm shard: %v", err)
		}
	}
	if got := s1.dispatched.Load() - before; got != 20 {
		t.Fatalf("calm shard served %d/20 un-keyed dispatches during burn", got)
	}

	// Recovery: clean requests decay the fast window below threshold and the
	// shard rejoins, keyed traffic and all.
	for i := 0; i < 200 && burn.Alerting(0); i++ {
		burn.Observe(0, false, false)
	}
	if burn.Alerting(0) {
		t.Fatal("setup: shard 0 never recovered")
	}
	if _, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: key0}, time.Second); err != nil {
		t.Fatalf("recovered shard still shed: %v", err)
	}
}
