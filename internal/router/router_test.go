package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

// fakeShard counts dispatches and optionally simulates slow service.
type fakeShard struct {
	delay time.Duration

	dispatched atomic.Uint64

	mu   sync.Mutex
	keys map[core.ChannelKey]int // fingerprint → dispatch count
}

func newFakeShard(delay time.Duration) *fakeShard {
	return &fakeShard{delay: delay, keys: make(map[core.ChannelKey]int)}
}

func (f *fakeShard) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	f.dispatched.Add(1)
	if p.ChannelKey != 0 {
		f.mu.Lock()
		f.keys[p.ChannelKey]++
		f.mu.Unlock()
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return &backend.Result{Backend: "fake"}, nil
}

func (f *fakeShard) Stats() metrics.PoolStats {
	n := f.dispatched.Load()
	return metrics.PoolStats{Submitted: n, Completed: n}
}

func newTestRouter(t *testing.T, shards []Shard, cfg Config) *Router {
	t.Helper()
	cfg.Shards = shards
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty shard list")
	}
}

// TestAffinityStable is the acceptance-row affinity check: the same channel
// fingerprint routes to the same shard across 10k dispatches, and the
// placement agrees with ShardFor.
func TestAffinityStable(t *testing.T) {
	shards := []Shard{newFakeShard(0), newFakeShard(0), newFakeShard(0), newFakeShard(0)}
	r := newTestRouter(t, shards, Config{})
	src := rng.New(7)

	keys := make([]core.ChannelKey, 100)
	for i := range keys {
		keys[i] = core.ChannelKey(src.Uint64() | 1) // nonzero
	}
	for i := 0; i < 10000; i++ {
		key := keys[i%len(keys)]
		want := r.ShardFor(key)
		p := &backend.Problem{ChannelKey: key}
		if _, err := r.Dispatch(context.Background(), p, 0); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
		if got := r.ShardFor(key); got != want {
			t.Fatalf("key %#x moved from shard %d to %d", key, want, got)
		}
	}
	// Every fingerprint's dispatches all landed on its one ring shard.
	for _, key := range keys {
		owner := r.ShardFor(key)
		for i, sh := range shards {
			f := sh.(*fakeShard)
			f.mu.Lock()
			n := f.keys[key]
			f.mu.Unlock()
			if i == owner && n != 100 {
				t.Fatalf("shard %d owns key %#x but saw %d/100 dispatches", i, key, n)
			}
			if i != owner && n != 0 {
				t.Fatalf("shard %d does not own key %#x but saw %d dispatches", i, key, n)
			}
		}
	}
}

// TestRingSpread checks the virtual-node ring spreads fingerprints across
// every shard without gross imbalance.
func TestRingSpread(t *testing.T) {
	shards := []Shard{newFakeShard(0), newFakeShard(0), newFakeShard(0), newFakeShard(0)}
	r := newTestRouter(t, shards, Config{})
	src := rng.New(3)
	counts := make([]int, len(shards))
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.ShardFor(core.ChannelKey(src.Uint64()|1))]++
	}
	for i, c := range counts {
		share := float64(c) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %d owns %.1f%% of the key space (counts %v)", i, 100*share, counts)
		}
	}
}

// TestPowerOfTwoChoicesBalance checks un-keyed traffic spreads over all
// shards.
func TestPowerOfTwoChoicesBalance(t *testing.T) {
	shards := []Shard{newFakeShard(0), newFakeShard(0), newFakeShard(0), newFakeShard(0)}
	r := newTestRouter(t, shards, Config{Seed: 11})
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := r.Dispatch(context.Background(), &backend.Problem{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, sh := range shards {
		got := sh.(*fakeShard).dispatched.Load()
		share := float64(got) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %d served %.1f%% of un-keyed traffic", i, 100*share)
		}
	}
}

// TestSheddingTypedError drives one shard's deadline-miss EWMA over the
// threshold and checks keyed traffic bound to it is refused with the tagged
// *ShedError while other shards keep serving.
func TestSheddingTypedError(t *testing.T) {
	slow := newFakeShard(2 * time.Millisecond)
	fast := newFakeShard(0)
	r := newTestRouter(t, []Shard{slow, fast}, Config{
		ShedThreshold:  0.5,
		ShedAlpha:      0.5,
		ShedMinSamples: 4,
	})
	// Find fingerprints owned by each shard.
	var slowKey, fastKey core.ChannelKey
	for k := uint64(1); slowKey == 0 || fastKey == 0; k++ {
		switch r.ShardFor(core.ChannelKey(k)) {
		case 0:
			if slowKey == 0 {
				slowKey = core.ChannelKey(k)
			}
		case 1:
			if fastKey == 0 {
				fastKey = core.ChannelKey(k)
			}
		}
	}
	// Every dispatch misses its 1µs deadline on the slow shard, pumping the
	// EWMA toward 1 until the threshold trips.
	var shedErr error
	for i := 0; i < 100; i++ {
		_, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: slowKey}, time.Microsecond)
		if err != nil {
			shedErr = err
			break
		}
	}
	if shedErr == nil {
		t.Fatal("slow shard never shed")
	}
	if !errors.Is(shedErr, ErrShed) {
		t.Fatalf("shed error %v does not match ErrShed", shedErr)
	}
	var se *ShedError
	if !errors.As(shedErr, &se) {
		t.Fatalf("shed error %v is not a *ShedError", shedErr)
	}
	if se.Shard != 0 {
		t.Fatalf("shed error names shard %d, want 0", se.Shard)
	}
	if se.MissEWMA <= 0.5 {
		t.Fatalf("shed error carries ewma %.2f, want > threshold 0.5", se.MissEWMA)
	}
	if r.ShedCount(0) == 0 {
		t.Fatal("ShedCount(0) is zero after a shed")
	}
	// The healthy shard's keyed traffic is unaffected.
	if _, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: fastKey}, time.Second); err != nil {
		t.Fatalf("healthy shard refused: %v", err)
	}
	// Un-keyed traffic steers around the shed shard.
	before := fast.dispatched.Load()
	for i := 0; i < 50; i++ {
		if _, err := r.Dispatch(context.Background(), &backend.Problem{}, time.Second); err != nil {
			t.Fatalf("un-keyed dispatch %d refused with one healthy shard: %v", i, err)
		}
	}
	if got := fast.dispatched.Load() - before; got != 50 {
		t.Fatalf("healthy shard served %d/50 un-keyed dispatches during shed", got)
	}
}

// TestSheddingDisabledByDefault checks the zero threshold never sheds, even
// under persistent misses.
func TestSheddingDisabledByDefault(t *testing.T) {
	slow := newFakeShard(time.Millisecond)
	r := newTestRouter(t, []Shard{slow}, Config{})
	for i := 0; i < 50; i++ {
		if _, err := r.Dispatch(context.Background(), &backend.Problem{ChannelKey: 1}, time.Microsecond); err != nil {
			t.Fatalf("dispatch %d refused with shedding disabled: %v", i, err)
		}
	}
}

// instantBackend is a minimal real backend for scheduler-backed shards.
type instantBackend struct{ name string }

func (b *instantBackend) Describe() *backend.Capabilities {
	return &backend.Capabilities{
		Name:    b.name,
		Latency: func(p *backend.Problem) float64 { return 1 },
	}
}
func (b *instantBackend) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	return &backend.Result{Bits: []byte{0}, Backend: b.name}, nil
}

// TestReconciliationAcrossShards runs real sched.Scheduler shards behind the
// router under concurrent load and checks the reconciliation invariant
// (Submitted == Completed + Failed) holds per shard and in the merged
// aggregate, with the aggregate equal to the dispatch count.
func TestReconciliationAcrossShards(t *testing.T) {
	const nShards = 3
	var schedulers []*sched.Scheduler
	var shards []Shard
	for i := 0; i < nShards; i++ {
		s, err := sched.New(sched.Config{
			Pool: []backend.Backend{&instantBackend{name: fmt.Sprintf("s%d/be", i)}},
			Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		schedulers = append(schedulers, s)
		shards = append(shards, s)
	}
	r := newTestRouter(t, shards, Config{Seed: 5})

	h := linalg.NewMat(2, 2)
	h.Set(0, 0, 1)
	h.Set(1, 1, 1)
	const total = 600
	var wg sync.WaitGroup
	src := rng.New(9)
	keys := make([]core.ChannelKey, total)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = core.ChannelKey(src.Uint64() | 1) // keyed half
		}
	}
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(key core.ChannelKey) {
			defer wg.Done()
			p := &backend.Problem{Mod: modulation.BPSK, H: h, Y: []complex128{1, 1}, ChannelKey: key}
			if _, err := r.Dispatch(context.Background(), p, 0); err != nil {
				t.Errorf("dispatch: %v", err)
			}
		}(keys[i])
	}
	wg.Wait()
	for _, s := range schedulers {
		s.Close()
	}

	var sum uint64
	for i, st := range r.ShardStats() {
		if st.Submitted != st.Completed+st.Failed {
			t.Fatalf("shard %d does not reconcile: submitted=%d completed=%d failed=%d",
				i, st.Submitted, st.Completed, st.Failed)
		}
		sum += st.Submitted
	}
	if sum != total {
		t.Fatalf("per-shard submissions sum to %d, want %d", sum, total)
	}
	agg := r.Stats()
	if agg.Submitted != agg.Completed+agg.Failed {
		t.Fatalf("aggregate does not reconcile: submitted=%d completed=%d failed=%d",
			agg.Submitted, agg.Completed, agg.Failed)
	}
	if agg.Submitted != total {
		t.Fatalf("aggregate submitted=%d, want %d", agg.Submitted, total)
	}
}

// TestStatsMergeMatchesManualFold checks Stats() equals folding ShardStats()
// with PoolStats.Merge — the per-shard breakdown and the roll-up must never
// drift apart.
func TestStatsMergeMatchesManualFold(t *testing.T) {
	shards := []Shard{newFakeShard(0), newFakeShard(0), newFakeShard(0)}
	r := newTestRouter(t, shards, Config{Seed: 2})
	for i := 0; i < 90; i++ {
		if _, err := r.Dispatch(context.Background(), &backend.Problem{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	per := r.ShardStats()
	manual := per[0]
	for _, st := range per[1:] {
		manual = manual.Merge(st)
	}
	agg := r.Stats()
	if agg.Submitted != manual.Submitted || agg.Completed != manual.Completed {
		t.Fatalf("Stats() %+v differs from folded ShardStats() %+v", agg, manual)
	}
	if agg.Submitted != 90 {
		t.Fatalf("aggregate submitted=%d, want 90", agg.Submitted)
	}
}
