// Package router implements the front tier of the C-RAN data center: the
// layer above the QPU pool scheduler that shards decode traffic across N
// independent sched pools (paper §2's centralization argument only pays off
// when the serving tier scales past one pool — Kasi et al.,
// arXiv:2109.01465, make the same point from the economics side).
//
// Three routing mechanisms:
//
//   - Channel-affinity routing. Requests carrying a channel fingerprint
//     (backend.Problem.ChannelKey — every decode against a registered
//     coherence window) are placed by consistent hashing on the fingerprint:
//     a hash ring with Replicas virtual nodes per shard. Every symbol of a
//     coherence window therefore lands on the shard that compiled its
//     channel, so compiled-channel cache hit rates are preserved at N shards
//     with no cross-shard duplication, and adding or removing a shard only
//     remaps the ~1/N of windows whose ring arcs move.
//
//   - Power-of-two-choices fallback. Un-keyed requests (self-contained
//     decodes and precodes with no coherence window) have no affinity to
//     preserve; they sample two distinct shards and join the one with fewer
//     outstanding dispatches, which bounds load imbalance exponentially
//     better than uniform random placement.
//
//   - Tagged backpressure shedding. The router tracks a per-shard EWMA of
//     deadline misses over completed dispatches. When a shard's EWMA climbs
//     past ShedThreshold, keyed traffic bound to it is refused with a typed
//     *ShedError (errors.Is(err, ErrShed)) carrying the shard index and the
//     observed miss rate, so access points can distinguish "the data center
//     is overloaded, back off" from a decode failure. Un-keyed traffic
//     simply avoids shed shards while any remain healthy. With Config.Burn
//     set, a shard also sheds while its SLO burn tracker (internal/health)
//     is multi-window alerting — budget burn fires earlier than the raw
//     miss EWMA when degradation is sharp.
//
// The router implements fronthaul.Dispatcher, so it drops in wherever a
// single scheduler served before; Stats() reports the PoolStats.Merge
// aggregate and ShardStats() the per-shard breakdown.
package router

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/health"
	"quamax/internal/metrics"
	"quamax/internal/rng"
)

// Shard is one serving pool behind the router. *sched.Scheduler satisfies
// it; tests may substitute fakes.
type Shard interface {
	Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error)
	Stats() metrics.PoolStats
}

// DefaultReplicas is the number of virtual ring nodes per shard. 64 keeps
// the ring's load spread within a few percent of uniform for small N while
// the whole ring still fits in cache.
const DefaultReplicas = 64

// DefaultShedAlpha is the EWMA weight of each new deadline-miss observation.
const DefaultShedAlpha = 0.05

// DefaultShedMinSamples is the number of deadline-carrying completions a
// shard must report before its EWMA is trusted enough to shed on.
const DefaultShedMinSamples = 32

// ErrShed tags backpressure refusals: errors.Is(err, ErrShed) is true for
// every *ShedError the router returns.
var ErrShed = errors.New("router: shard shedding load")

// ShedError is the tagged backpressure signal: the shard a request was bound
// to is missing deadlines above the configured threshold, so the router
// refused the dispatch instead of queueing more work behind a blown budget.
type ShedError struct {
	// Shard is the index of the overloaded shard.
	Shard int
	// MissEWMA is the shard's deadline-miss EWMA at refusal time.
	MissEWMA float64
}

// Error renders the shard index and observed miss EWMA.
func (e *ShedError) Error() string {
	return fmt.Sprintf("router: shard %d shedding load (deadline-miss ewma %.2f)", e.Shard, e.MissEWMA)
}

// Is makes errors.Is(err, ErrShed) match every ShedError.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// Config assembles a Router.
type Config struct {
	// Shards lists the serving pools, index order fixed for the router's
	// lifetime. The router does not own their lifecycles: the caller closes
	// the schedulers after the router stops receiving traffic.
	Shards []Shard
	// Replicas is the number of virtual ring nodes per shard
	// (0 = DefaultReplicas).
	Replicas int
	// ShedThreshold is the deadline-miss EWMA above which a shard sheds
	// (0 disables shedding entirely; 1 can never trigger).
	ShedThreshold float64
	// ShedAlpha is the EWMA weight of each new observation
	// (0 = DefaultShedAlpha).
	ShedAlpha float64
	// ShedMinSamples gates the EWMA until a shard has completed this many
	// deadline-carrying dispatches (0 = DefaultShedMinSamples).
	ShedMinSamples int
	// Burn, when set, folds per-shard SLO burn rates into the shed decision:
	// a shard whose burn tracker is multi-window alerting (fast AND slow
	// windows burning error budget past threshold) sheds exactly like one
	// over the deadline-miss EWMA, independent of ShedThreshold. The tracker
	// is fed by the shard schedulers (sched.Config.Burn); the router only
	// reads it.
	Burn *health.BurnTracker
	// Seed drives the power-of-two-choices sampling.
	Seed int64
}

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	pos   uint64
	shard int
}

// shardState is the router's per-shard load bookkeeping.
type shardState struct {
	// outstanding counts dispatches in flight on this shard (the
	// power-of-two-choices signal).
	outstanding atomic.Int64

	mu       sync.Mutex
	missEWMA float64
	samples  uint64
	sheds    uint64
}

// Router shards dispatches across N pools. It is safe for concurrent
// Dispatch calls and implements fronthaul.Dispatcher.
type Router struct {
	shards []Shard
	state  []*shardState
	ring   []ringPoint

	threshold  float64
	alpha      float64
	minSamples int
	burn       *health.BurnTracker

	srcMu sync.Mutex
	src   *rng.Source
}

// New builds the hash ring and returns the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards")
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	alpha := cfg.ShedAlpha
	if alpha <= 0 {
		alpha = DefaultShedAlpha
	}
	minSamples := cfg.ShedMinSamples
	if minSamples <= 0 {
		minSamples = DefaultShedMinSamples
	}
	r := &Router{
		shards:     cfg.Shards,
		threshold:  cfg.ShedThreshold,
		alpha:      alpha,
		minSamples: minSamples,
		burn:       cfg.Burn,
		src:        rng.New(cfg.Seed),
	}
	for range cfg.Shards {
		r.state = append(r.state, &shardState{})
	}
	r.ring = make([]ringPoint, 0, len(cfg.Shards)*replicas)
	var buf [16]byte
	for s := range cfg.Shards {
		for v := 0; v < replicas; v++ {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(s))
			binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
			h := fnv.New64a()
			h.Write(buf[:])
			r.ring = append(r.ring, ringPoint{pos: h.Sum64(), shard: s})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].pos != r.ring[j].pos {
			return r.ring[i].pos < r.ring[j].pos
		}
		// Equal positions (vanishingly rare) tie-break by shard index so the
		// ring order — and therefore placement — is deterministic.
		return r.ring[i].shard < r.ring[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// mix is the splitmix64 finalizer: ChannelKey is itself an FNV hash, but
// finalizing again decorrelates ring placement from whatever structure the
// fingerprint function has.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the ring placement of one channel fingerprint: the shard
// owning the first virtual node at or clockwise of the key's position.
func (r *Router) ShardFor(key core.ChannelKey) int {
	pos := mix(uint64(key))
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].pos >= pos })
	if i == len(r.ring) {
		i = 0 // wrap: the ring is circular
	}
	return r.ring[i].shard
}

// pickTwo samples two distinct shard indexes (equal when N == 1).
func (r *Router) pickTwo() (int, int) {
	n := len(r.shards)
	if n == 1 {
		return 0, 0
	}
	r.srcMu.Lock()
	a := int(r.src.Uint64() % uint64(n))
	b := int(r.src.Uint64() % uint64(n-1))
	r.srcMu.Unlock()
	if b >= a {
		b++
	}
	return a, b
}

// shedding reports whether a shard should refuse new work: its deadline-miss
// EWMA is over the threshold (false while shedding is disabled or the shard
// has not completed enough deadline-carrying work to trust the estimate), or
// its SLO burn tracker is multi-window alerting — the shard is burning error
// budget fast enough that both the fast and slow windows agree, which fires
// well before the raw miss EWMA crosses a fixed line.
func (r *Router) shedding(shard int) (float64, bool) {
	var ewma float64
	if r.threshold > 0 {
		st := r.state[shard]
		st.mu.Lock()
		ewma = st.missEWMA
		over := st.samples >= uint64(r.minSamples) && ewma > r.threshold
		st.mu.Unlock()
		if over {
			return ewma, true
		}
	}
	if r.burn.Alerting(shard) {
		return ewma, true
	}
	return ewma, false
}

// observe folds one completed dispatch's deadline outcome into the shard's
// EWMA. Requests without a deadline carry no miss signal and are skipped.
func (r *Router) observe(shard int, missed bool) {
	if r.threshold <= 0 {
		return
	}
	sample := 0.0
	if missed {
		sample = 1.0
	}
	st := r.state[shard]
	st.mu.Lock()
	st.missEWMA += r.alpha * (sample - st.missEWMA)
	st.samples++
	st.mu.Unlock()
}

// route picks the shard for one problem: ring placement for keyed requests,
// power-of-two-choices over outstanding counts for un-keyed ones. The
// returned error is a *ShedError when backpressure refuses the dispatch.
func (r *Router) route(p *backend.Problem) (int, error) {
	if p.ChannelKey != 0 {
		// Affinity is strict: a shed shard's keyed traffic is refused, not
		// diverted — moving it would recompile the window elsewhere and make
		// the overload worse.
		shard := r.ShardFor(p.ChannelKey)
		if ewma, shed := r.shedding(shard); shed {
			st := r.state[shard]
			st.mu.Lock()
			st.sheds++
			st.mu.Unlock()
			return 0, &ShedError{Shard: shard, MissEWMA: ewma}
		}
		return shard, nil
	}
	a, b := r.pickTwo()
	_, shedA := r.shedding(a)
	_, shedB := r.shedding(b)
	switch {
	case shedA && shedB:
		// Both samples overloaded: refuse with the less-loaded one's tag.
		shard := a
		if r.state[b].outstanding.Load() < r.state[a].outstanding.Load() {
			shard = b
		}
		ewma, _ := r.shedding(shard)
		st := r.state[shard]
		st.mu.Lock()
		st.sheds++
		st.mu.Unlock()
		return 0, &ShedError{Shard: shard, MissEWMA: ewma}
	case shedA:
		return b, nil
	case shedB:
		return a, nil
	}
	if r.state[b].outstanding.Load() < r.state[a].outstanding.Load() {
		return b, nil
	}
	return a, nil
}

// Dispatch routes one problem to its shard and runs it there, folding the
// deadline outcome back into the shard's shed EWMA. It implements
// fronthaul.Dispatcher.
func (r *Router) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	shard, err := r.route(p)
	if err != nil {
		return nil, err
	}
	st := r.state[shard]
	st.outstanding.Add(1)
	start := time.Now()
	res, err := r.shards[shard].Dispatch(ctx, p, deadline)
	st.outstanding.Add(-1)
	if deadline > 0 {
		r.observe(shard, time.Since(start) > deadline)
	}
	return res, err
}

// Stats reports the PoolStats.Merge aggregate over all shards — the single
// roll-up view a multi-pool deployment exports upward.
func (r *Router) Stats() metrics.PoolStats {
	var out metrics.PoolStats
	for i, sh := range r.shards {
		if i == 0 {
			out = sh.Stats()
			continue
		}
		out = out.Merge(sh.Stats())
	}
	return out
}

// ShardStats reports the per-shard breakdown, index order.
func (r *Router) ShardStats() []metrics.PoolStats {
	out := make([]metrics.PoolStats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.Stats()
	}
	return out
}

// ShedCount reports how many dispatches shard i has refused under
// backpressure.
func (r *Router) ShedCount(i int) uint64 {
	st := r.state[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sheds
}

// MissEWMA reports shard i's current deadline-miss EWMA.
func (r *Router) MissEWMA(i int) float64 {
	st := r.state[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.missEWMA
}

// String describes the router configuration.
func (r *Router) String() string {
	return fmt.Sprintf("router: shards=%d ring=%d shed-threshold=%g", len(r.shards), len(r.ring), r.threshold)
}
