// Package reduction implements the paper's core contribution (§3.2): the
// reduction of Maximum-Likelihood MIMO detection
//
//	vˆ = argmin_{v∈O^Nt} ‖y − Hv‖²                    (Eq. 1)
//
// to the QUBO and Ising forms a quantum annealer accepts.
//
// Two independent constructions are provided:
//
//   - ReduceToQUBO expands the norm ‖y − H·T(q)‖² symbolically for the linear
//     QuAMax transform T (Eq. 5). This is the definitional form and the test
//     oracle.
//   - ReduceToIsing evaluates the paper's generalized closed-form Ising
//     coefficients f_i(H,y) and g_ij(H) (Eqs. 6–8 for BPSK/QPSK, Eqs. 13–14
//     for 16-QAM, and our generalization to any square 2^{2n}-QAM including
//     the paper's future-work 64-QAM). It needs only Hermitian inner products
//     of channel columns — the "computationally insignificant" fast path the
//     paper deploys at the receiver.
//
// Both forms carry exact constant offsets, so the Ising/QUBO energy of an
// assignment equals the ML Euclidean metric ‖y − Hv‖² of the corresponding
// symbol vector (paper footnote 6). Property tests in this package prove the
// two constructions identical on random instances for every modulation.
//
// Spin/variable layout. User m (0-based) owns the Q=log2|O| consecutive
// variables m·Q … m·Q+Q−1: first the I-dimension bits (MSB first), then the
// Q-dimension bits, matching paper Fig. 2 (q_{4i−3} q_{4i−2} | q_{4i−1} q_{4i}
// for 16-QAM).
package reduction

import (
	"fmt"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
)

// NumVariables returns N = Nt·log2|O|, the QUBO/Ising problem size (paper §3.2.1).
func NumVariables(mod modulation.Modulation, nt int) int {
	return nt * mod.BitsPerSymbol()
}

// spinWeights returns the per-dimension spin amplitude weights u_t: the
// QuAMax transform per dimension is  Σ_t 2^{n−1−t}·s_t  in spin variables
// (the constant cancels), e.g. {1} for BPSK/QPSK, {2,1} for 16-QAM,
// {4,2,1} for 64-QAM.
func spinWeights(mod modulation.Modulation) []float64 {
	n := mod.BitsPerDim()
	w := make([]float64, n)
	for t := 0; t < n; t++ {
		w[t] = float64(int(1) << (n - 1 - t))
	}
	return w
}

// transformMatrix returns (A, b) with e = A·q + b: the complex linear map
// from the N QUBO variables to the Nt candidate symbols under the QuAMax
// transform T. Column ordering follows the package layout.
func transformMatrix(mod modulation.Modulation, nt int) (*linalg.Mat, []complex128) {
	q := mod.BitsPerSymbol()
	n := mod.BitsPerDim()
	a := linalg.NewMat(nt, nt*q)
	b := make([]complex128, nt)
	l := float64(mod.LevelsPerDim() - 1)
	for m := 0; m < nt; m++ {
		base := m * q
		for t := 0; t < n; t++ {
			w := float64(int(2) << (n - 1 - t)) // 2^{n−t}: QUBO bit weight
			a.Set(m, base+t, complex(w, 0))
			if mod.HasQuadrature() {
				a.Set(m, base+n+t, complex(0, w))
			}
		}
		if mod.HasQuadrature() {
			b[m] = complex(-l, -l)
		} else {
			b[m] = complex(-l, 0)
		}
	}
	return a, b
}

// ReduceToQUBO builds the ML QUBO by expanding ‖y − H(Aq+b)‖² (Eq. 5):
// with ỹ = y − Hb and B = HA,
//
//	Q_ii = −2Re(ỹᴴB)_i + Re(BᴴB)_ii,  Q_ij = 2Re(BᴴB)_ij (i<j),
//	Offset = ‖ỹ‖²,
//
// using q_i² = q_i. The QUBO energy of an assignment equals ‖y − Hv‖² of the
// corresponding symbol vector exactly.
func ReduceToQUBO(mod modulation.Modulation, h *linalg.Mat, y []complex128) *qubo.QUBO {
	nt := h.Cols
	if len(y) != h.Rows {
		panic(fmt.Sprintf("reduction: y has %d entries, H has %d rows", len(y), h.Rows))
	}
	a, b := transformMatrix(mod, nt)
	bm := linalg.Mul(h, a)                        // B = HA, Nr×N
	ytil := linalg.VecSub(y, linalg.MulVec(h, b)) // ỹ = y − Hb
	lin := linalg.ConjMulVec(bm, ytil)            // Bᴴỹ
	gram := linalg.Gram(bm)                       // BᴴB (Hermitian)
	n := NumVariables(mod, nt)
	out := qubo.NewQUBO(n)
	out.Offset = linalg.Norm2(ytil)
	for i := 0; i < n; i++ {
		out.Set(i, i, -2*real(lin[i])+real(gram.At(i, i)))
		for j := i + 1; j < n; j++ {
			if v := 2 * real(gram.At(i, j)); v != 0 {
				out.Set(i, j, v)
			}
		}
	}
	return out
}

// ReduceToIsing evaluates the generalized closed-form Ising coefficients.
// Writing each candidate symbol in spin variables as
//
//	v_m = Σ_t u_t·s_{m,R,t} + j·Σ_t u_t·s_{m,Q,t},   u_t = 2^{n−1−t},
//
// the expansion of ‖y − Hv‖² yields, with G = HᴴH and M = yᴴH:
//
//	f(s_{m,R,t}) = −2 u_t Re(M_m)            (Eqs. 6, 7-odd, 13 cases 1–2)
//	f(s_{m,Q,t}) = +2 u_t Im(M_m)            (Eqs. 7-even, 13 cases 3–4)
//	g(R_m,t ; R_k,t′) = 2 u_t u_t′ Re(G_mk)  (same-dimension pairs)
//	g(Q_m,t ; Q_k,t′) = 2 u_t u_t′ Re(G_mk)
//	g(R_m,t ; Q_k,t′) = −2 u_t u_t′ Im(G_mk) (cross I/Q pairs, m≠k)
//	g(Q_m,t ; R_k,t′) = +2 u_t u_t′ Im(G_mk)
//	g within user m, same dimension: 2 u_t u_t′ G_mm; across I/Q: 0
//	Offset = ‖y‖² + Σ_m G_mm·(Σ_t u_t²)·dims
//
// For BPSK and QPSK this is exactly Eqs. 6–8; for 16-QAM it is Eqs. 13–14
// with one erratum corrected (see PaperIsing16QAM).
//
// ReduceToIsing is the one-shot form of the compile/execute split: it is
// literally CompileChannel(mod, h).Biases(y), recompiling the H-dependent
// couplings for every call. Receivers decoding many symbols through one
// channel should compile once and call Biases per symbol (see compile.go).
func ReduceToIsing(mod modulation.Modulation, h *linalg.Mat, y []complex128) *qubo.Ising {
	if len(y) != h.Rows {
		panic(fmt.Sprintf("reduction: y has %d entries, H has %d rows", len(y), h.Rows))
	}
	return CompileChannel(mod, h).Biases(y)
}

// BitsToSymbols decodes N QUBO solution bits to the Nt candidate symbols via
// the QuAMax transform T (the e vector of Eq. 5).
func BitsToSymbols(mod modulation.Modulation, bits []byte) []complex128 {
	q := mod.BitsPerSymbol()
	if len(bits)%q != 0 {
		panic("reduction: bit count not a multiple of bits/symbol")
	}
	out := make([]complex128, len(bits)/q)
	for i := range out {
		out[i] = mod.QuAMaxTransform(bits[i*q : (i+1)*q])
	}
	return out
}

// SpinsToSymbols decodes Ising spins (±1) to candidate symbols.
func SpinsToSymbols(mod modulation.Modulation, s []int8) []complex128 {
	return BitsToSymbols(mod, qubo.BitsFromSpins(s))
}

// MLMetric evaluates ‖y − Hv‖² for a candidate symbol vector — the quantity
// the QUBO/Ising energy must reproduce.
func MLMetric(h *linalg.Mat, y, v []complex128) float64 {
	return linalg.Norm2(linalg.VecSub(y, linalg.MulVec(h, v)))
}
