package reduction

import (
	"math"
	"testing"
	"testing/quick"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// randInstance draws a random channel use: H (Rayleigh), transmitted Gray
// bits, and y = Hv + noise.
func randInstance(src *rng.Source, mod modulation.Modulation, nt, nr int, noise float64) (*linalg.Mat, []complex128, []byte) {
	h := channel.Rayleigh{}.Generate(src, nr, nt)
	bits := src.Bits(nt * mod.BitsPerSymbol())
	v := mod.MapGrayVector(bits)
	y := linalg.MulVec(h, v)
	if noise > 0 {
		y = channel.AddAWGN(src, y, noise)
	}
	return h, y, bits
}

func forAllBits(n int, fn func(bits []byte)) {
	bits := make([]byte, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range bits {
			bits[i] = byte(mask >> i & 1)
		}
		fn(bits)
	}
}

// The definitional property: the QUBO energy of ANY assignment equals the ML
// Euclidean metric of the corresponding symbol vector (Eq. 5 expansion).
func TestQUBOEnergyEqualsMLMetric(t *testing.T) {
	src := rng.New(51)
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 4}, {modulation.BPSK, 1},
		{modulation.QPSK, 3}, {modulation.QPSK, 1},
		{modulation.QAM16, 2}, {modulation.QAM16, 1},
		{modulation.QAM64, 2}, {modulation.QAM64, 1},
	}
	for _, c := range cases {
		for trial := 0; trial < 3; trial++ {
			h, y, _ := randInstance(src, c.mod, c.nt, c.nt+1, 0.3)
			q := ReduceToQUBO(c.mod, h, y)
			n := NumVariables(c.mod, c.nt)
			forAllBits(n, func(bits []byte) {
				v := BitsToSymbols(c.mod, bits)
				want := MLMetric(h, y, v)
				got := q.Energy(bits)
				if math.Abs(got-want) > 1e-7*(1+want) {
					t.Fatalf("%v nt=%d bits=%v: QUBO %g vs metric %g", c.mod, c.nt, bits, got, want)
				}
			})
		}
	}
}

// The closed-form Ising must equal the norm-expansion QUBO on every
// assignment, offset included, for every modulation.
func TestClosedFormIsingEqualsQUBO(t *testing.T) {
	src := rng.New(52)
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 5}, {modulation.QPSK, 3},
		{modulation.QAM16, 2}, {modulation.QAM64, 1},
	}
	for _, c := range cases {
		for trial := 0; trial < 3; trial++ {
			h, y, _ := randInstance(src, c.mod, c.nt, c.nt, 0.5)
			q := ReduceToQUBO(c.mod, h, y)
			p := ReduceToIsing(c.mod, h, y)
			n := NumVariables(c.mod, c.nt)
			forAllBits(n, func(bits []byte) {
				eq := q.Energy(bits)
				ei := p.Energy(qubo.SpinsFromBits(bits))
				if math.Abs(eq-ei) > 1e-7*(1+math.Abs(eq)) {
					t.Fatalf("%v: QUBO %g vs Ising %g at %v", c.mod, eq, ei, bits)
				}
			})
		}
	}
}

// compareIsingLinearAndCouplings checks H and J terms (not offsets, which
// the paper's literal forms do not define).
func compareIsingLinearAndCouplings(t *testing.T, label string, want, got *qubo.Ising, tol float64) {
	t.Helper()
	if want.N != got.N {
		t.Fatalf("%s: size %d vs %d", label, want.N, got.N)
	}
	for i := 0; i < want.N; i++ {
		if math.Abs(want.H[i]-got.H[i]) > tol {
			t.Fatalf("%s: f[%d] = %g, want %g", label, i, got.H[i], want.H[i])
		}
		for j := i + 1; j < want.N; j++ {
			if math.Abs(want.GetJ(i, j)-got.GetJ(i, j)) > tol {
				t.Fatalf("%s: g[%d,%d] = %g, want %g", label, i, j, got.GetJ(i, j), want.GetJ(i, j))
			}
		}
	}
}

func TestPaperBPSKFormMatchesGeneric(t *testing.T) {
	src := rng.New(53)
	for trial := 0; trial < 5; trial++ {
		h, y, _ := randInstance(src, modulation.BPSK, 6, 6, 0.4)
		compareIsingLinearAndCouplings(t, "Eq6",
			ReduceToIsing(modulation.BPSK, h, y), PaperIsingBPSK(h, y), 1e-9)
	}
}

func TestPaperQPSKFormMatchesGeneric(t *testing.T) {
	src := rng.New(54)
	for trial := 0; trial < 5; trial++ {
		h, y, _ := randInstance(src, modulation.QPSK, 4, 4, 0.4)
		compareIsingLinearAndCouplings(t, "Eqs7-8",
			ReduceToIsing(modulation.QPSK, h, y), PaperIsingQPSK(h, y), 1e-9)
	}
}

func TestPaper16QAMCorrectedMatchesGeneric(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 5; trial++ {
		h, y, _ := randInstance(src, modulation.QAM16, 3, 3, 0.4)
		compareIsingLinearAndCouplings(t, "Eqs13-14(corrected)",
			ReduceToIsing(modulation.QAM16, h, y), PaperIsing16QAM(h, y, false), 1e-9)
	}
}

// Document the Eq. 14 erratum: the literal printed form differs from the
// norm expansion exactly and only in the (i=4n, j=4n′−2) couplings.
func TestPaper16QAMErratumLocalized(t *testing.T) {
	src := rng.New(56)
	h, y, _ := randInstance(src, modulation.QAM16, 3, 3, 0.4)
	generic := ReduceToIsing(modulation.QAM16, h, y)
	literal := PaperIsing16QAM(h, y, true)
	diffs := 0
	for i := 0; i < generic.N; i++ {
		if math.Abs(generic.H[i]-literal.H[i]) > 1e-9 {
			t.Fatalf("erratum must not affect linear terms (f[%d])", i)
		}
		for j := i + 1; j < generic.N; j++ {
			d := math.Abs(generic.GetJ(i, j) - literal.GetJ(i, j))
			i1, j1 := i+1, j+1
			isErratumCase := i1%4 == 0 && j1%4 == 2 && (i1+3)/4 != (j1+3)/4
			if isErratumCase {
				if d > 1e-9 {
					diffs++
				}
			} else if d > 1e-9 {
				t.Fatalf("unexpected difference outside erratum case at (%d,%d): %g", i1, j1, d)
			}
		}
	}
	if diffs == 0 {
		t.Fatal("expected the literal Eq. 14 form to differ in the erratum case")
	}
}

// End-to-end ML equivalence: the QUBO ground state must BE the ML solution
// (exhaustive symbol search), and on a noise-free channel it decodes the
// transmitted bits after post-translation.
func TestGroundStateIsMLSolution(t *testing.T) {
	src := rng.New(57)
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 6}, {modulation.QPSK, 4}, {modulation.QAM16, 2},
	}
	for _, c := range cases {
		for trial := 0; trial < 4; trial++ {
			h, y, txBits := randInstance(src, c.mod, c.nt, c.nt, 0.2)
			q := ReduceToQUBO(c.mod, h, y)
			gsBits, gsE := qubo.BruteForceQUBO(q)

			// Exhaustive ML over symbol vectors.
			bestMetric := math.Inf(1)
			n := NumVariables(c.mod, c.nt)
			forAllBits(n, func(bits []byte) {
				v := BitsToSymbols(c.mod, bits)
				if m := MLMetric(h, y, v); m < bestMetric {
					bestMetric = m
				}
			})
			if math.Abs(gsE-bestMetric) > 1e-7*(1+bestMetric) {
				t.Fatalf("%v: ground energy %g != ML metric %g", c.mod, gsE, bestMetric)
			}
			// Moderate noise: ML solution should still be the transmitted
			// vector for these sizes at this SNR; then post-translation
			// recovers the Gray bits (paper §3.2.1 decoding example).
			rx := c.mod.PostTranslate(gsBits)
			errs := 0
			for i := range txBits {
				if rx[i] != txBits[i] {
					errs++
				}
			}
			if errs != 0 {
				// Allowed only if noise genuinely moved the ML point; verify.
				vTx := c.mod.MapGrayVector(txBits)
				if MLMetric(h, y, vTx) < bestMetric-1e-9 {
					t.Fatalf("%v: ML search missed a better candidate", c.mod)
				}
			}
		}
	}
}

// Noise-free decode must be exact for every modulation.
func TestNoiseFreeDecodeExact(t *testing.T) {
	src := rng.New(58)
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 8}, {modulation.QPSK, 5},
		{modulation.QAM16, 3}, {modulation.QAM64, 2},
	}
	for _, c := range cases {
		h, y, txBits := randInstance(src, c.mod, c.nt, c.nt, 0)
		q := ReduceToQUBO(c.mod, h, y)
		gsBits, gsE := qubo.BruteForceQUBO(q)
		if gsE > 1e-7 {
			t.Fatalf("%v: noise-free ground energy %g, want ≈0", c.mod, gsE)
		}
		rx := c.mod.PostTranslate(gsBits)
		for i := range txBits {
			if rx[i] != txBits[i] {
				t.Fatalf("%v: decoded bits differ at %d", c.mod, i)
			}
		}
	}
}

// Property test across random seeds: closed form == norm expansion.
func TestReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		mods := modulation.All()
		mod := mods[src.Intn(len(mods))]
		nt := 1 + src.Intn(2)
		h, y, _ := randInstance(src, mod, nt, nt+src.Intn(2), 0.5)
		q := ReduceToQUBO(mod, h, y).ToIsing()
		p := ReduceToIsing(mod, h, y)
		// Compare on 16 random assignments.
		s := make([]int8, p.N)
		for k := 0; k < 16; k++ {
			for i := range s {
				if src.Bool() {
					s[i] = 1
				} else {
					s[i] = -1
				}
			}
			if math.Abs(q.Energy(s)-p.Energy(s)) > 1e-6*(1+math.Abs(p.Energy(s))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Intra-symbol I/Q independence (paper: "the coupler strength between
// s_{2n−1} and s_{2n} is 0" for QPSK, similarly for 16-QAM).
func TestIntraSymbolIQCouplingIsZero(t *testing.T) {
	src := rng.New(59)
	h, y, _ := randInstance(src, modulation.QPSK, 4, 4, 0.3)
	p := ReduceToIsing(modulation.QPSK, h, y)
	for u := 0; u < 4; u++ {
		if g := p.GetJ(2*u, 2*u+1); g != 0 {
			t.Fatalf("QPSK user %d: I/Q coupling %g, want 0", u, g)
		}
	}
	h, y, _ = randInstance(src, modulation.QAM16, 3, 3, 0.3)
	p = ReduceToIsing(modulation.QAM16, h, y)
	for u := 0; u < 3; u++ {
		for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
			if g := p.GetJ(4*u+pair[0], 4*u+pair[1]); g != 0 {
				t.Fatalf("16-QAM user %d: cross I/Q coupling (%d,%d) = %g, want 0", u, pair[0], pair[1], g)
			}
		}
	}
}

func TestNumVariables(t *testing.T) {
	if NumVariables(modulation.BPSK, 48) != 48 {
		t.Fatal("BPSK 48 users should need 48 variables")
	}
	if NumVariables(modulation.QPSK, 18) != 36 {
		t.Fatal("QPSK 18 users should need 36 variables")
	}
	if NumVariables(modulation.QAM16, 9) != 36 {
		t.Fatal("16-QAM 9 users should need 36 variables")
	}
	if NumVariables(modulation.QAM64, 60) != 360 {
		t.Fatal("64-QAM 60 users should need 360 variables (Table 2)")
	}
}

func TestSpinsToSymbols(t *testing.T) {
	// QPSK spins (+1,−1) → symbol (1,−1j)… wait layout: (I spin, Q spin).
	got := SpinsToSymbols(modulation.QPSK, []int8{1, -1})
	if len(got) != 1 || got[0] != complex(1, -1) {
		t.Fatalf("SpinsToSymbols = %v", got)
	}
}
