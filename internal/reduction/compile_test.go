package reduction

import (
	"testing"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// isingEqualExact compares two Ising programs bit for bit: every field,
// every coupling, and the offset must be float64-identical, not merely
// close. This is the contract the compiled decode path relies on to be
// indistinguishable from the recompiling one.
func isingEqualExact(t *testing.T, label string, got, want *qubo.Ising) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: size %d, want %d", label, got.N, want.N)
	}
	for i := 0; i < want.N; i++ {
		if got.H[i] != want.H[i] {
			t.Fatalf("%s: H[%d] = %v, want %v (not bit-identical)", label, i, got.H[i], want.H[i])
		}
	}
	for i := 0; i < want.N; i++ {
		for j := i + 1; j < want.N; j++ {
			if got.GetJ(i, j) != want.GetJ(i, j) {
				t.Fatalf("%s: J[%d,%d] = %v, want %v (not bit-identical)",
					label, i, j, got.GetJ(i, j), want.GetJ(i, j))
			}
		}
	}
	if got.Offset != want.Offset {
		t.Fatalf("%s: offset %v, want %v (not bit-identical)", label, got.Offset, want.Offset)
	}
}

// The compile/execute split must reproduce the one-shot reduction EXACTLY:
// compiling a channel once and filling biases per symbol yields, for every
// modulation, user count and received vector, the same Ising program —
// bit-identical fields, couplings and offset — as recompiling from scratch.
func TestCompiledBiasesMatchReduceToIsing(t *testing.T) {
	src := rng.New(77)
	for _, mod := range modulation.All() {
		for _, nt := range []int{2, 4, 8} {
			h, _, _ := randInstance(src, mod, nt, nt, 0.3)
			cp := CompileChannel(mod, h)
			n := NumVariables(mod, nt)
			if cp.N != n {
				t.Fatalf("%v nt=%d: compiled N=%d, want %d", mod, nt, cp.N, n)
			}
			// Many symbols through one compiled channel: fresh y per symbol,
			// including noise-free and noisy draws.
			for sym := 0; sym < 5; sym++ {
				bits := src.Bits(nt * mod.BitsPerSymbol())
				y := linalg.MulVec(h, mod.MapGrayVector(bits))
				if sym%2 == 1 {
					y = channel.AddAWGN(src, y, 0.5)
				}
				got := cp.Biases(y)
				want := ReduceToIsing(mod, h, y)
				isingEqualExact(t, mod.String(), got, want)
			}
		}
	}
}

// A compiled program's couplings must be shared, not copied, across the
// Ising programs it produces (that sharing is the amortization), while the
// fields of different symbols stay independent.
func TestCompiledBiasesShareCouplings(t *testing.T) {
	src := rng.New(78)
	h, y1, _ := randInstance(src, modulation.QPSK, 3, 3, 0.2)
	_, y2, _ := randInstance(src, modulation.QPSK, 3, 3, 0.2)
	cp := CompileChannel(modulation.QPSK, h)
	p1 := cp.Biases(y1)
	p2 := cp.Biases(y2)
	if &p1.J[0] != &p2.J[0] {
		t.Fatal("Biases copied the coupling storage; expected sharing")
	}
	if &p1.H[0] == &p2.H[0] {
		t.Fatal("Biases shared the field storage; expected fresh fields per symbol")
	}
	diff := false
	for i := range p1.H {
		if p1.H[i] != p2.H[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("distinct received vectors produced identical fields")
	}
}
