// Compile/execute split of the ML→Ising reduction. The paper's C-RAN
// deployment (footnote 2: the channel "is practically estimated and tracked
// via preambles and/or pilot tones") assumes H is constant over a coherence
// window spanning many OFDM symbols, while y changes every symbol. Of the
// generalized Ising coefficients, only the linear biases f_i and the ‖y‖²
// offset term depend on y; every coupling g_ij, the Gram matrix G = HᴴH it
// derives from, and the Gram part of the offset depend on H alone.
// CompileChannel evaluates the H-dependent half once; ChannelProgram.Biases
// then produces a complete per-symbol Ising program with O(Nr·Nt) work — the
// amortization that Kim et al. (arXiv:2010.00682) and Kasi et al.
// (arXiv:2109.01465) argue makes data-center annealing throughput viable.
package reduction

import (
	"fmt"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
)

// ChannelProgram is the compiled, H-dependent half of the ML→Ising
// reduction: every coupling g_ij(H) and the Gram offset, ready to be
// completed into a full Ising program for any received vector y observed
// through the same channel. Compile once per coherence window with
// CompileChannel; execute per symbol with Biases.
type ChannelProgram struct {
	// Mod is the modulation the program was compiled for.
	Mod modulation.Modulation
	// Nt is the transmitter count (H's column count).
	Nt int
	// N is the logical Ising size, Nt·log2|O|.
	N int

	h        *linalg.Mat // the channel, referenced (callers must not mutate)
	u        []float64   // spin weights u_t
	template *qubo.Ising // couplings + Gram offset; fields all zero
}

// CompileChannel evaluates the H-dependent Ising coefficients (the g_ij of
// Eqs. 8/14 and the Gram offset) once for a channel. The returned program
// references h; callers must treat the matrix as immutable for the program's
// lifetime (the C-RAN contract: a compiled channel IS an estimated H).
func CompileChannel(mod modulation.Modulation, h *linalg.Mat) *ChannelProgram {
	nt := h.Cols
	u := spinWeights(mod)
	nb := mod.BitsPerDim()
	dims := mod.Dims()
	q := mod.BitsPerSymbol()
	n := NumVariables(mod, nt)

	gram := linalg.Gram(h) // G = HᴴH
	p := qubo.NewIsing(n)

	var u2 float64
	for _, w := range u {
		u2 += w * w
	}

	// spinIndex returns the flat index of user's dimension-d (0=I,1=Q) bit t.
	spinIndex := func(user, d, t int) int { return user*q + d*nb + t }

	for us := 0; us < nt; us++ {
		// Intra-user same-dimension couplings.
		gmm := real(gram.At(us, us))
		for d := 0; d < dims; d++ {
			for t := 0; t < nb; t++ {
				for t2 := t + 1; t2 < nb; t2++ {
					p.SetJ(spinIndex(us, d, t), spinIndex(us, d, t2), 2*u[t]*u[t2]*gmm)
				}
			}
		}
		p.Offset += gmm * u2 * float64(dims)
	}
	// Inter-user couplings.
	for us := 0; us < nt; us++ {
		for k := us + 1; k < nt; k++ {
			reG := real(gram.At(us, k))
			imG := imag(gram.At(us, k))
			for t := 0; t < nb; t++ {
				for t2 := 0; t2 < nb; t2++ {
					w := 2 * u[t] * u[t2]
					// R–R.
					p.SetJ(spinIndex(us, 0, t), spinIndex(k, 0, t2), w*reG)
					if dims == 2 {
						// Q–Q.
						p.SetJ(spinIndex(us, 1, t), spinIndex(k, 1, t2), w*reG)
						// R(us)–Q(k).
						p.SetJ(spinIndex(us, 0, t), spinIndex(k, 1, t2), -w*imG)
						// Q(us)–R(k).
						p.SetJ(spinIndex(us, 1, t), spinIndex(k, 0, t2), w*imG)
					}
				}
			}
		}
	}
	return &ChannelProgram{Mod: mod, Nt: nt, N: n, h: h, u: u, template: p}
}

// Channel returns the matrix the program was compiled from.
func (cp *ChannelProgram) Channel() *linalg.Mat { return cp.h }

// CouplingTemplate exposes the compiled couplings-and-Gram-offset Ising
// program (fields all zero) so embedding compilers can program the couplers
// once per coherence window. Callers must not mutate it — every Ising this
// program ever produced shares its coupling storage.
func (cp *ChannelProgram) CouplingTemplate() *qubo.Ising { return cp.template }

// Biases completes the compiled program for one received vector: it fills
// the y-dependent linear fields f_i(H,y) and the ‖y‖² offset term around the
// precompiled couplings. The result is numerically identical — bit for bit —
// to ReduceToIsing(cp.Mod, H, y); the property is proven by tests.
//
// The returned Ising SHARES coupling storage with the program (that sharing
// is the amortization): callers must not mutate its J entries, and the
// program must outlive every Ising it produced.
func (cp *ChannelProgram) Biases(y []complex128) *qubo.Ising {
	if len(y) != cp.h.Rows {
		panic(fmt.Sprintf("reduction: y has %d entries, H has %d rows", len(y), cp.h.Rows))
	}
	nb := cp.Mod.BitsPerDim()
	dims := cp.Mod.Dims()
	q := cp.Mod.BitsPerSymbol()

	m := linalg.ConjMulVec(cp.h, y) // Hᴴy, so M_m = conj((yᴴH)_m)
	p := cp.template.SharedCouplings()
	for us := 0; us < cp.Nt; us++ {
		reM := real(m[us])  // Re((yᴴH)_us)
		imM := -imag(m[us]) // Im((yᴴH)_us) = −Im((Hᴴy)_us)
		base := us * q
		for t := 0; t < nb; t++ {
			p.H[base+t] = -2 * cp.u[t] * reM
			if dims == 2 {
				p.H[base+nb+t] = 2 * cp.u[t] * imM
			}
		}
	}
	p.Offset = cp.template.Offset + linalg.Norm2(y)
	return p
}
