package reduction

import (
	"quamax/internal/linalg"
	"quamax/internal/qubo"
)

// This file transcribes the paper's printed Ising coefficient formulas
// *literally* (Eq. 6 for BPSK, Eqs. 7–8 for QPSK, Eqs. 13–14 for 16-QAM,
// 1-based spin indices exactly as typeset). They exist to cross-validate
// ReduceToIsing: tests prove the literal forms equal the generic reduction
// everywhere except the single printed erratum in Eq. 14 (see
// PaperIsing16QAM). The literal forms set no constant offset because the
// paper's equations do not define one.

// colDotII returns H^I_{(:,a)}·H^I_{(:,b)} + H^Q_{(:,a)}·H^Q_{(:,b)} = Re(G_ab).
func colDotII(h *linalg.Mat, a, b int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += real(h.At(r, a))*real(h.At(r, b)) + imag(h.At(r, a))*imag(h.At(r, b))
	}
	return s
}

// colDotIQ returns H^I_{(:,a)}·H^Q_{(:,b)}.
func colDotIQ(h *linalg.Mat, a, b int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += real(h.At(r, a)) * imag(h.At(r, b))
	}
	return s
}

// colDotYI returns H^I_{(:,a)}·y^I.
func colDotYI(h *linalg.Mat, y []complex128, a int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += real(h.At(r, a)) * real(y[r])
	}
	return s
}

// colDotYQ returns H^Q_{(:,a)}·y^Q.
func colDotYQ(h *linalg.Mat, y []complex128, a int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += imag(h.At(r, a)) * imag(y[r])
	}
	return s
}

// colDotIYQ returns H^I_{(:,a)}·y^Q.
func colDotIYQ(h *linalg.Mat, y []complex128, a int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += real(h.At(r, a)) * imag(y[r])
	}
	return s
}

// colDotQYI returns H^Q_{(:,a)}·y^I.
func colDotQYI(h *linalg.Mat, y []complex128, a int) float64 {
	var s float64
	for r := 0; r < h.Rows; r++ {
		s += imag(h.At(r, a)) * real(y[r])
	}
	return s
}

// PaperIsingBPSK transcribes Eq. 6:
//
//	f_i = −2(H^I_{:,i}·y^I) − 2(H^Q_{:,i}·y^Q)
//	g_ij = 2(H^I_{:,i}·H^I_{:,j}) + 2(H^Q_{:,i}·H^Q_{:,j})
func PaperIsingBPSK(h *linalg.Mat, y []complex128) *qubo.Ising {
	nt := h.Cols
	p := qubo.NewIsing(nt)
	for i := 0; i < nt; i++ {
		p.H[i] = -2*colDotYI(h, y, i) - 2*colDotYQ(h, y, i)
		for j := i + 1; j < nt; j++ {
			p.SetJ(i, j, 2*colDotII(h, i, j))
		}
	}
	return p
}

// PaperIsingQPSK transcribes Eqs. 7–8 (1-based index i in the paper; spin
// 2n−1 is the I part and 2n the Q part of user n).
func PaperIsingQPSK(h *linalg.Mat, y []complex128) *qubo.Ising {
	nt := h.Cols
	n := 2 * nt
	p := qubo.NewIsing(n)
	for i1 := 1; i1 <= n; i1++ { // 1-based
		user := (i1 + 1) / 2 // ⌈i/2⌉
		if i1%2 == 0 {       // i = 2n
			p.H[i1-1] = -2*colDotIYQ(h, y, user-1) + 2*colDotQYI(h, y, user-1)
		} else {
			p.H[i1-1] = -2*colDotYI(h, y, user-1) - 2*colDotYQ(h, y, user-1)
		}
	}
	for i1 := 1; i1 <= n; i1++ {
		for j1 := i1 + 1; j1 <= n; j1++ {
			ui, uj := (i1+1)/2-1, (j1+1)/2-1
			var g float64
			if (i1+j1)%2 == 0 { // i+j = 2n: same dimension
				if ui == uj {
					continue // cannot happen for i≠j same user same parity
				}
				g = 2 * colDotII(h, ui, uj)
			} else {
				// ±2(H^I_{⌈i/2⌉}·H^Q_{⌈j/2⌉}) ∓ 2(H^I_{⌈j/2⌉}·H^Q_{⌈i/2⌉});
				// when i = 2n the signs are + and −.
				a := colDotIQ(h, ui, uj)
				b := colDotIQ(h, uj, ui)
				if i1%2 == 0 {
					g = 2*a - 2*b
				} else {
					g = -2*a + 2*b
				}
			}
			if g != 0 {
				p.SetJ(i1-1, j1-1, g)
			}
		}
	}
	return p
}

// PaperIsing16QAM transcribes Eqs. 13–14 (1-based; spins 4n−3,4n−2 carry the
// I part with weights 2,1 and spins 4n−1,4n the Q part).
//
// literalErratum selects how to treat the printed coefficient of case
// (i = 4n, j = 4n′−2), which appears in the paper as
//
//	−2(H^I·H^Q) − 4(H^I·H^Q)     [as printed]
//
// but must be +2(…) − 2(…) for consistency with the norm expansion (every
// neighbouring case follows the 2·u_t·u_t′·Im(G) pattern; this one breaks
// it). With literalErratum=false the corrected value is used and the result
// equals ReduceToIsing exactly; with true, the printed form is reproduced so
// tests can document the erratum.
func PaperIsing16QAM(h *linalg.Mat, y []complex128, literalErratum bool) *qubo.Ising {
	nt := h.Cols
	n := 4 * nt
	p := qubo.NewIsing(n)
	// Eq. 13 linear terms.
	for i1 := 1; i1 <= n; i1++ {
		u := (i1 + 3) / 4 // ⌈i/4⌉, 1-based user
		c := u - 1
		switch i1 % 4 {
		case 1: // i = 4n−3
			p.H[i1-1] = -4*colDotYI(h, y, c) - 4*colDotYQ(h, y, c)
		case 2: // i = 4n−2
			p.H[i1-1] = -2*colDotYI(h, y, c) - 2*colDotYQ(h, y, c)
		case 3: // i = 4n−1
			p.H[i1-1] = -4*colDotIYQ(h, y, c) + 4*colDotQYI(h, y, c)
		case 0: // i = 4n
			p.H[i1-1] = -2*colDotIYQ(h, y, c) + 2*colDotQYI(h, y, c)
		}
	}
	// Eq. 14 couplings. Helper closures for the recurring dot products.
	ii := func(a, b int) float64 { return colDotII(h, a, b) }
	iq := func(a, b int) float64 { return colDotIQ(h, a, b) }
	for i1 := 1; i1 <= n; i1++ {
		for j1 := i1 + 1; j1 <= n; j1++ {
			ci, cj := (i1+3)/4-1, (j1+3)/4-1
			// "the coupler strength between s4n−3,s4n−2 and s4n−1,s4n is 0"
			// for the same user: cross I/Q within one symbol vanishes.
			mi, mj := mod4(i1), mod4(j1)
			if ci == cj {
				iIsReal := mi == 1 || mi == 2
				jIsReal := mj == 1 || mj == 2
				if iIsReal != jIsReal {
					continue
				}
			}
			var g float64
			switch mi {
			case 1: // i = 4n−3
				switch mj {
				case 1:
					g = 8 * ii(ci, cj)
				case 2:
					g = 4 * ii(ci, cj)
				case 3:
					g = -8*iq(ci, cj) + 8*iq(cj, ci)
				case 0:
					g = -4*iq(ci, cj) + 4*iq(cj, ci)
				}
			case 2: // i = 4n−2
				switch mj {
				case 1:
					g = 4 * ii(ci, cj)
				case 2:
					g = 2 * ii(ci, cj)
				case 3:
					g = -4*iq(ci, cj) + 4*iq(cj, ci)
				case 0:
					g = -2*iq(ci, cj) + 2*iq(cj, ci)
				}
			case 3: // i = 4n−1
				switch mj {
				case 1:
					g = 8*iq(ci, cj) - 8*iq(cj, ci)
				case 2:
					g = 4*iq(ci, cj) - 4*iq(cj, ci)
				case 3:
					g = 8 * ii(ci, cj)
				case 0:
					g = 4 * ii(ci, cj)
				}
			case 0: // i = 4n
				switch mj {
				case 1:
					g = 4*iq(ci, cj) - 4*iq(cj, ci)
				case 2:
					if literalErratum {
						// As printed in Eq. 14: −2(H^I_i·H^Q_j) − 4(H^I_j·H^Q_i).
						g = -2*iq(ci, cj) - 4*iq(cj, ci)
					} else {
						// Corrected: +2(H^I_i·H^Q_j) − 2(H^I_j·H^Q_i).
						g = 2*iq(ci, cj) - 2*iq(cj, ci)
					}
				case 3:
					g = 4 * ii(ci, cj)
				case 0:
					g = 2 * ii(ci, cj)
				}
			}
			if g != 0 {
				p.SetJ(i1-1, j1-1, g)
			}
		}
	}
	return p
}

func mod4(x int) int { return ((x-1)%4 + 1) % 4 } // 1,2,3,0 pattern for 1-based x
