package softout

import (
	"math"
	"testing"

	"quamax/internal/rng"
)

func TestLLRFormula(t *testing.T) {
	e := NewEnsemble(2, 0)
	e.Add([]byte{0, 0}, 3.0)
	e.Add([]byte{1, 0}, 1.0)
	e.Add([]byte{1, 1}, 5.0)

	llrs, sat := e.LLRs(Spec{NoiseVar: 0.5})
	// Bit 0: min E(bit=0) = 3, min E(bit=1) = 1 → (3−1)/0.5 = 4.
	if got := llrs[0]; math.Abs(got-4) > 1e-12 {
		t.Errorf("bit 0 LLR = %g, want 4", got)
	}
	// Bit 1: min E(bit=0) = 1, min E(bit=1) = 5 → (1−5)/0.5 = −8.
	if got := llrs[1]; math.Abs(got+8) > 1e-12 {
		t.Errorf("bit 1 LLR = %g, want -8", got)
	}
	if sat != 0 {
		t.Errorf("saturated = %d, want 0", sat)
	}
}

func TestLLRNoNoiseVarLeavesEnergiesUnscaled(t *testing.T) {
	e := NewEnsemble(1, 0)
	e.Add([]byte{0}, 2.0)
	e.Add([]byte{1}, 5.5)
	llrs, _ := e.LLRs(Spec{})
	if got := llrs[0]; math.Abs(got+3.5) > 1e-12 {
		t.Errorf("unscaled LLR = %g, want -3.5", got)
	}
}

func TestLLRSaturation(t *testing.T) {
	e := NewEnsemble(2, 0)
	// Bit 0 is unanimous 1; bit 1 has a huge energy gap that must clamp.
	e.Add([]byte{1, 0}, 0)
	e.Add([]byte{1, 1}, 1000)
	llrs, sat := e.LLRs(Spec{NoiseVar: 1, Clamp: 10})
	if llrs[0] != 10 {
		t.Errorf("unanimous bit LLR = %g, want +10", llrs[0])
	}
	if llrs[1] != -10 {
		t.Errorf("clamped bit LLR = %g, want -10", llrs[1])
	}
	if sat != 2 {
		t.Errorf("saturated = %d, want 2", sat)
	}
}

func TestLLRSignsAgreeWithBestCandidate(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		nbits := 1 + src.Intn(12)
		e := NewEnsemble(nbits, 0)
		for c := 0; c < 1+src.Intn(20); c++ {
			e.Add(src.Bits(nbits), src.Float64()*10)
		}
		best, ok := e.Best()
		if !ok {
			t.Fatal("empty ensemble")
		}
		llrs, _ := e.LLRs(Spec{NoiseVar: 1})
		for k, llr := range llrs {
			if llr > 0 && best.Bits[k] != 1 {
				t.Fatalf("trial %d bit %d: LLR %g > 0 but best bit is 0", trial, k, llr)
			}
			if llr < 0 && best.Bits[k] != 0 {
				t.Fatalf("trial %d bit %d: LLR %g < 0 but best bit is 1", trial, k, llr)
			}
		}
	}
}

func TestEnsembleDedupAndCounts(t *testing.T) {
	e := NewEnsemble(3, 0)
	bits := []byte{1, 0, 1}
	e.Add(bits, 2)
	bits[0] = 0 // caller reuses the buffer; the ensemble must have copied
	e.Add([]byte{1, 0, 1}, 2)
	e.Add([]byte{0, 0, 1}, 4)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	best, _ := e.Best()
	if best.Count != 2 || best.Bits[0] != 1 {
		t.Fatalf("best = %+v, want count 2 of [1 0 1]", best)
	}
}

func TestEnsembleCapEvictsWorst(t *testing.T) {
	e := NewEnsemble(1, 2)
	e.Add([]byte{0}, 5)
	e.Add([]byte{1}, 3)
	if e.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the cap", e.Dropped())
	}
	// Re-adding retained patterns is a dedup hit, never a drop.
	e.Add([]byte{0}, 5)
	e.Add([]byte{1}, 3)
	if e.Dropped() != 0 {
		t.Fatalf("dedup hits counted as drops: %d", e.Dropped())
	}
	e2 := NewEnsemble(2, 2)
	e2.Add([]byte{0, 0}, 5)
	e2.Add([]byte{1, 1}, 3)
	e2.Add([]byte{1, 0}, 9) // worse than the worst retained → refused
	if e2.Len() != 2 || e2.Dropped() != 1 {
		t.Fatalf("after refused add: len=%d dropped=%d, want 2/1", e2.Len(), e2.Dropped())
	}
	e2.Add([]byte{0, 1}, 1) // better → evicts the energy-5 candidate
	if e2.Len() != 2 || e2.Dropped() != 2 {
		t.Fatalf("after evicting add: len=%d dropped=%d, want 2/2", e2.Len(), e2.Dropped())
	}
	for _, c := range e2.Candidates() {
		if c.Energy == 5 {
			t.Fatalf("worst candidate survived eviction: %+v", c)
		}
	}
	// The evicted pattern can re-enter (fresh index slot).
	e2.Add([]byte{0, 0}, 0.5)
	if e2.Len() != 2 {
		t.Fatalf("re-adding evicted pattern broke the index: len=%d", e2.Len())
	}
	best, _ := e2.Best()
	if best.Energy != 0.5 {
		t.Fatalf("best after re-add = %+v", best)
	}
}

func TestEmptyEnsembleLLRs(t *testing.T) {
	e := NewEnsemble(4, 0)
	llrs, sat := e.LLRs(Spec{NoiseVar: 1})
	if len(llrs) != 4 || sat != 0 {
		t.Fatalf("empty ensemble: llrs=%v sat=%d", llrs, sat)
	}
	for _, v := range llrs {
		if v != 0 {
			t.Fatalf("empty ensemble produced nonzero LLR %g", v)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	const clamp = 16.0
	llrs := []float64{0, clamp, -clamp, 3.7, -11.2, clamp * 2, -clamp * 3}
	q := Quantize(llrs, clamp)
	if q[1] != QuantScale || q[2] != -QuantScale {
		t.Fatalf("full-scale quantization: %v", q)
	}
	if q[5] != QuantScale || q[6] != -QuantScale {
		t.Fatalf("out-of-range values must saturate: %v", q)
	}
	back := Dequantize(q, clamp)
	step := clamp / QuantScale
	for i, v := range llrs {
		want := math.Max(-clamp, math.Min(clamp, v))
		if math.Abs(back[i]-want) > step/2+1e-12 {
			t.Errorf("round trip [%d]: %g → %d → %g (step %g)", i, v, q[i], back[i], step)
		}
	}
}

func TestQuantizeDefaultsClamp(t *testing.T) {
	q := Quantize([]float64{DefaultClamp}, 0)
	if q[0] != QuantScale {
		t.Fatalf("default clamp quantization: %d", q[0])
	}
	if got := Dequantize([]int8{QuantScale}, 0)[0]; math.Abs(got-DefaultClamp) > 1e-12 {
		t.Fatalf("default clamp dequantization: %g", got)
	}
}

func TestSaturatedAndHardDecisions(t *testing.T) {
	bits := []byte{1, 0, 0, 1, 1}
	llrs := Saturated(bits, 8)
	for i, b := range bits {
		want := -8.0
		if b == 1 {
			want = 8
		}
		if llrs[i] != want {
			t.Fatalf("Saturated[%d] = %g, want %g", i, llrs[i], want)
		}
	}
	got := HardDecisions(llrs)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("HardDecisions(Saturated(bits)) != bits at %d", i)
		}
	}
	if HardDecisions([]float64{0})[0] != 0 {
		t.Fatal("zero LLR must slice to 0")
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{{}, {NoiseVar: 0.5, Clamp: 10, MaxCandidates: 4}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	bad := []Spec{
		{Clamp: -1},
		{Clamp: math.Inf(1)},
		{Clamp: math.NaN()},
		{MaxCandidates: -1},
		{NoiseVar: math.NaN()},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad spec", s)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.Clamp != DefaultClamp || s.MaxCandidates != DefaultMaxCandidates {
		t.Fatalf("WithDefaults: %+v", s)
	}
	s = Spec{NoiseVar: 2, Clamp: 5, MaxCandidates: 3}.WithDefaults()
	if s.Clamp != 5 || s.MaxCandidates != 3 || s.NoiseVar != 2 {
		t.Fatalf("WithDefaults overwrote explicit fields: %+v", s)
	}
}
