// Package softout converts a quantum annealer's read ensemble into per-bit
// soft information. The paper evaluates QuAMax with hard decisions and leans
// on forward error correction above detection (§5.2.2, §5.3.3), but a run of
// Na anneals produces far more than one answer: every read is a candidate
// solution whose Ising energy equals the ML metric ‖y − H·v‖² exactly
// (footnote 6). Kim et al.'s hybrid follow-up (arXiv:2010.00682) shows that
// turning that candidate list into per-bit log-likelihood ratios is what
// unlocks practical coded performance, and Kasi et al. (arXiv:2109.01465)
// rank soft-output support among the requirements for annealers in real
// cellular basebands.
//
// The conversion is max-log-MAP over the sampled candidate list: for data
// bit k,
//
//	LLR_k = (min E among candidates with bit k = 0 −
//	         min E among candidates with bit k = 1) / σ²,
//
// clamped to ±Clamp, where σ² is the per-antenna complex noise variance
// (under AWGN, P(v|y) ∝ exp(−‖y−Hv‖²/σ²), so the energy difference IS the
// log-likelihood ratio up to the terms max-log discards). Positive LLRs
// favor bit 1, so sign(LLR_k) always agrees with the best read's hard
// decision wherever the sign is strict. A bit all retained candidates agree
// on has an empty min on one side and saturates to ±Clamp — the soft
// decoder's "certain" value, which also makes the classical single-solution
// backends representable (their one candidate saturates every bit).
//
// Energies are reused from the decode's own sample scoring, so LLR
// extraction adds no objective evaluations — only the candidate bookkeeping
// and one Gray translation per read.
package softout

import (
	"fmt"
	"math"
)

// DefaultClamp is the LLR magnitude cap applied when a Spec leaves Clamp
// zero. ±24 is comfortably past the "certain bit" threshold of practical
// soft-decision decoders while keeping the int8 quantization step
// (Clamp/127 ≈ 0.19) below any decision-relevant LLR difference.
const DefaultClamp = 24.0

// DefaultMaxCandidates bounds the retained candidate list when a Spec leaves
// MaxCandidates zero. The paper's Na = 100 operating point rarely yields
// more than a few dozen distinct solutions, so 64 keeps the full ensemble in
// the common case while bounding memory under pathological read budgets.
const DefaultMaxCandidates = 64

// Spec configures one soft-output extraction.
type Spec struct {
	// NoiseVar is σ², the per-antenna complex noise variance scaling the
	// energy differences into true log-likelihood ratios. ≤ 0 leaves the
	// energies unscaled (LLRs in energy units — still sign-correct, and the
	// clamp bounds them).
	NoiseVar float64
	// Clamp bounds |LLR|; 0 selects DefaultClamp. Clamped and one-sided
	// (ensemble-unanimous) bits count as saturated.
	Clamp float64
	// MaxCandidates caps the retained distinct-candidate list; 0 selects
	// DefaultMaxCandidates. When the cap is hit, the highest-energy
	// candidate is dropped — the one least able to move any min-energy term.
	MaxCandidates int
}

// WithDefaults returns the spec with zero fields replaced by the package
// defaults (NoiseVar stays as given; only Clamp and MaxCandidates default).
func (s Spec) WithDefaults() Spec {
	if s.Clamp == 0 {
		s.Clamp = DefaultClamp
	}
	if s.MaxCandidates == 0 {
		s.MaxCandidates = DefaultMaxCandidates
	}
	return s
}

// Validate rejects specs no extraction can honor.
func (s Spec) Validate() error {
	if s.Clamp < 0 || math.IsNaN(s.Clamp) || math.IsInf(s.Clamp, 0) {
		return fmt.Errorf("softout: clamp %g outside [0, ∞)", s.Clamp)
	}
	if s.MaxCandidates < 0 {
		return fmt.Errorf("softout: negative candidate cap %d", s.MaxCandidates)
	}
	if math.IsNaN(s.NoiseVar) {
		return fmt.Errorf("softout: NaN noise variance")
	}
	return nil
}

// Candidate is one distinct solution of the read ensemble: its data bits
// (0/1 bytes, Gray-coded — the decoder's PostTranslate output), the Ising
// energy (= ML metric) of the underlying spin configuration, and how many
// reads produced it.
type Candidate struct {
	Bits   []byte
	Energy float64
	Count  int
}

// Ensemble accumulates the distinct candidates of one decode's read
// ensemble, deduplicating by bit pattern and evicting the highest-energy
// candidate once the cap is reached. It is not safe for concurrent use; one
// decode owns one ensemble.
type Ensemble struct {
	nbits   int
	cap     int
	index   map[string]int
	cands   []Candidate
	dropped int
}

// NewEnsemble returns an empty ensemble for nbits-bit candidates retaining
// at most cap distinct patterns (cap ≤ 0 selects DefaultMaxCandidates).
func NewEnsemble(nbits, cap int) *Ensemble {
	if cap <= 0 {
		cap = DefaultMaxCandidates
	}
	return &Ensemble{nbits: nbits, cap: cap, index: make(map[string]int)}
}

// Add records one read's candidate. bits is copied when the pattern is new,
// so callers may reuse their buffer across reads.
func (e *Ensemble) Add(bits []byte, energy float64) {
	if len(bits) != e.nbits {
		panic(fmt.Sprintf("softout: candidate has %d bits, ensemble holds %d-bit patterns", len(bits), e.nbits))
	}
	key := string(bits)
	if i, ok := e.index[key]; ok {
		e.cands[i].Count++
		if energy < e.cands[i].Energy {
			// Identical bits imply identical spins and hence identical
			// energy on one logical program; keeping the min makes the
			// ensemble robust to callers mixing programs.
			e.cands[i].Energy = energy
		}
		return
	}
	if len(e.cands) >= e.cap {
		// Evict the weakest retained candidate (or refuse the newcomer when
		// it is weaker still): the max-energy pattern is the one least able
		// to lower any per-bit minimum.
		worst := 0
		for i := range e.cands {
			if e.cands[i].Energy > e.cands[worst].Energy {
				worst = i
			}
		}
		if energy >= e.cands[worst].Energy {
			e.dropped++
			return
		}
		delete(e.index, string(e.cands[worst].Bits))
		e.cands[worst] = Candidate{Bits: append([]byte(nil), bits...), Energy: energy, Count: 1}
		e.index[key] = worst
		e.dropped++
		return
	}
	e.index[key] = len(e.cands)
	e.cands = append(e.cands, Candidate{Bits: append([]byte(nil), bits...), Energy: energy, Count: 1})
}

// Len returns the number of distinct candidates retained.
func (e *Ensemble) Len() int { return len(e.cands) }

// Dropped returns how many reads fell to the candidate cap (evictions plus
// refused newcomers) — a fidelity diagnostic: nonzero means the LLRs were
// computed over a truncated ensemble.
func (e *Ensemble) Dropped() int { return e.dropped }

// Candidates returns the retained candidates in insertion order (shared
// storage; callers must not mutate).
func (e *Ensemble) Candidates() []Candidate { return e.cands }

// Best returns the minimum-energy retained candidate — the hard decision —
// and false when the ensemble is empty.
func (e *Ensemble) Best() (Candidate, bool) {
	if len(e.cands) == 0 {
		return Candidate{}, false
	}
	best := 0
	for i := range e.cands {
		if e.cands[i].Energy < e.cands[best].Energy {
			best = i
		}
	}
	return e.cands[best], true
}

// LLRs computes the max-log-MAP log-likelihood ratios of every bit over the
// retained candidate list under spec (see the package comment for the
// formula and sign convention). saturated counts the bits that hit the
// clamp, including one-sided bits. An empty ensemble yields all-zero LLRs.
func (e *Ensemble) LLRs(spec Spec) (llrs []float64, saturated int) {
	spec = spec.WithDefaults()
	scale := 1.0
	if spec.NoiseVar > 0 {
		scale = 1 / spec.NoiseVar
	}
	llrs = make([]float64, e.nbits)
	if len(e.cands) == 0 {
		return llrs, 0
	}
	for k := 0; k < e.nbits; k++ {
		e0, e1 := math.Inf(1), math.Inf(1)
		for i := range e.cands {
			c := &e.cands[i]
			if c.Bits[k] == 0 {
				if c.Energy < e0 {
					e0 = c.Energy
				}
			} else if c.Energy < e1 {
				e1 = c.Energy
			}
		}
		var llr float64
		switch {
		case math.IsInf(e1, 1): // every candidate says 0
			llr = -spec.Clamp
		case math.IsInf(e0, 1): // every candidate says 1
			llr = spec.Clamp
		default:
			llr = (e0 - e1) * scale
			if llr > spec.Clamp {
				llr = spec.Clamp
			} else if llr < -spec.Clamp {
				llr = -spec.Clamp
			}
		}
		if llr == spec.Clamp || llr == -spec.Clamp {
			saturated++
		}
		llrs[k] = llr
	}
	return llrs, saturated
}

// QuantScale is the int8 full-scale value LLR quantization maps the clamp
// onto: ±Clamp ↔ ±127.
const QuantScale = 127

// Quantize maps LLRs onto int8 wire values: q = round(QuantScale·llr/clamp),
// saturating at ±QuantScale (clamp ≤ 0 selects DefaultClamp). This is the
// fronthaul payload format of protocol v6 — 1 byte per bit instead of a
// float64, an 8× payload shrink at a quantization step of clamp/127.
func Quantize(llrs []float64, clamp float64) []int8 {
	if clamp <= 0 {
		clamp = DefaultClamp
	}
	q := make([]int8, len(llrs))
	for i, v := range llrs {
		s := math.Round(v * QuantScale / clamp)
		if s > QuantScale {
			s = QuantScale
		} else if s < -QuantScale {
			s = -QuantScale
		}
		q[i] = int8(s)
	}
	return q
}

// Dequantize inverts Quantize up to the quantization step: llr = q·clamp/127
// (clamp ≤ 0 selects DefaultClamp).
func Dequantize(q []int8, clamp float64) []float64 {
	if clamp <= 0 {
		clamp = DefaultClamp
	}
	llrs := make([]float64, len(q))
	for i, v := range q {
		llrs[i] = float64(v) * clamp / QuantScale
	}
	return llrs
}

// Saturated returns saturated LLRs for a single hard decision: bit 1 → +clamp,
// bit 0 → −clamp (clamp ≤ 0 selects DefaultClamp). This is how classical
// single-solution backends (sphere decoder, simulated annealing) represent
// their answer on the soft interface — every bit certain — and feeding the
// result to a soft decoder provably reproduces hard-decision decoding.
func Saturated(bits []byte, clamp float64) []float64 {
	if clamp <= 0 {
		clamp = DefaultClamp
	}
	llrs := make([]float64, len(bits))
	for i, b := range bits {
		if b != 0 {
			llrs[i] = clamp
		} else {
			llrs[i] = -clamp
		}
	}
	return llrs
}

// HardDecisions slices LLRs to hard bits: positive → 1, otherwise → 0
// (matching the sign convention that positive favors bit 1; an exact zero —
// both bit values achieving the same minimum energy — slices to 0).
func HardDecisions(llrs []float64) []byte {
	bits := make([]byte, len(llrs))
	for i, v := range llrs {
		if v > 0 {
			bits[i] = 1
		}
	}
	return bits
}
