// Package ofdm assembles full physical-layer frames around the QuAMax
// detector: OFDM subcarriers carrying multi-user symbols (§3.2: the ML
// reduction runs per subcarrier), pilot-based least-squares channel
// estimation (paper footnote 2: the channel "is practically estimated and
// tracked via preambles and/or pilot tones"), and the forward-error-
// correction layer the paper assumes above detection (§5.3.3) — so coded
// frame error rates can be *simulated*, not just computed from the
// analytic FER formula.
package ofdm

import (
	"errors"
	"fmt"
	"math"

	"quamax/internal/channel"
	"quamax/internal/coding"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Detector turns one subcarrier observation into hard Gray bits. Wrap
// QuAMax, zero-forcing, the sphere decoder, or any other detector.
type Detector func(h *linalg.Mat, y []complex128) ([]byte, error)

// FrameConfig describes one uplink frame.
type FrameConfig struct {
	Mod             modulation.Modulation
	Nt, Nr          int
	Subcarriers     int
	SymbolsPerFrame int     // OFDM data symbols per frame
	SNRdB           float64 // receive SNR per the unit-gain convention
	// PilotBoostDB boosts pilot power over data power (0 = equal).
	PilotBoostDB float64
	// Delay selects the frequency selectivity across subcarriers.
	Delay channel.TappedDelayLine
	// Code enables convolutional coding + interleaving when non-nil.
	Code *coding.Convolutional
	// PerfectCSI skips channel estimation and hands the detector the true
	// channel (ablation switch).
	PerfectCSI bool
}

// Validate checks the frame configuration.
func (c FrameConfig) Validate() error {
	if c.Nt < 1 || c.Nr < c.Nt {
		return fmt.Errorf("ofdm: bad antenna config %dx%d", c.Nt, c.Nr)
	}
	if c.Subcarriers < 1 || c.SymbolsPerFrame < 1 {
		return errors.New("ofdm: need at least one subcarrier and symbol")
	}
	return nil
}

// capacityBits returns the raw bit capacity of the frame.
func (c FrameConfig) capacityBits() int {
	return c.Subcarriers * c.SymbolsPerFrame * c.Nt * c.Mod.BitsPerSymbol()
}

// DataBits returns the information bits one frame carries (after coding
// overhead and trellis termination).
func (c FrameConfig) DataBits() int {
	cap := c.capacityBits()
	if c.Code == nil {
		return cap
	}
	n := len(c.Code.Generators)
	return cap/n - (c.Code.K - 1)
}

// FrameResult reports one simulated frame.
type FrameResult struct {
	DataBits    []byte
	Decoded     []byte
	BitErrors   int // post-FEC information-bit errors
	RawErrors   int // pre-FEC detected-bit errors
	RawBits     int
	FrameOK     bool
	EstErrorRMS float64 // RMS channel-estimation error (0 under PerfectCSI)
}

// EstimateChannel performs least-squares channel estimation from Nt
// orthogonal (time-multiplexed) pilot transmissions: user u alone transmits
// a known unit-symbol pilot scaled by pilotAmp, the AP observes
// y = H[:,u]·p + n and estimates Ĥ[:,u] = y/p, so each entry carries
// CN(0, σ²/p²) estimation noise.
func EstimateChannel(src *rng.Source, h *linalg.Mat, sigma, pilotAmp float64) *linalg.Mat {
	est := linalg.NewMat(h.Rows, h.Cols)
	for u := 0; u < h.Cols; u++ {
		for r := 0; r < h.Rows; r++ {
			noise := complex(sigma/pilotAmp, 0) * src.ComplexNorm()
			est.Set(r, u, h.At(r, u)+noise)
		}
	}
	return est
}

// SimulateFrame runs one frame end to end: encode → interleave → map →
// per-subcarrier uplink channel → detect (with estimated CSI) → deinterleave
// → Viterbi → frame check.
func SimulateFrame(src *rng.Source, cfg FrameConfig, detect Detector) (*FrameResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capBits := cfg.capacityBits()
	dataLen := cfg.DataBits()
	if dataLen < 1 {
		return nil, errors.New("ofdm: frame too small for the code tail")
	}
	data := src.Bits(dataLen)

	// FEC + interleaving.
	tx := data
	var il coding.BlockInterleaver
	if cfg.Code != nil {
		coded := cfg.Code.Encode(data)
		// Pad to capacity.
		padded := make([]byte, capBits)
		copy(padded, coded)
		il = coding.BlockInterleaver{Rows: cfg.Nt * cfg.Mod.BitsPerSymbol(), Cols: capBits / (cfg.Nt * cfg.Mod.BitsPerSymbol())}
		var err error
		tx, err = il.Interleave(padded)
		if err != nil {
			return nil, err
		}
	}

	// Channels: one draw per subcarrier, constant over the frame (within
	// coherence time, footnote 2).
	channels := cfg.Delay.GenerateOFDM(src, cfg.Nr, cfg.Nt, cfg.Subcarriers)
	sigma := channel.NoiseSigma(cfg.Mod, cfg.Nt, cfg.SNRdB)
	pilotAmp := math.Sqrt(cfg.Mod.AvgSymbolEnergy()) * math.Pow(10, cfg.PilotBoostDB/20)

	est := make([]*linalg.Mat, cfg.Subcarriers)
	var estErr2 float64
	for sc := range channels {
		if cfg.PerfectCSI || sigma == 0 {
			est[sc] = channels[sc]
			continue
		}
		est[sc] = EstimateChannel(src, channels[sc], sigma, pilotAmp)
		d := linalg.Sub(est[sc], channels[sc])
		estErr2 += linalg.Norm2(d.Data) / float64(len(d.Data))
	}

	// Transmit symbol by symbol.
	bitsPerUse := cfg.Nt * cfg.Mod.BitsPerSymbol()
	rx := make([]byte, 0, capBits)
	rawErrors := 0
	off := 0
	for sym := 0; sym < cfg.SymbolsPerFrame; sym++ {
		for sc := 0; sc < cfg.Subcarriers; sc++ {
			chunk := tx[off : off+bitsPerUse]
			off += bitsPerUse
			v := cfg.Mod.MapGrayVector(chunk)
			y := linalg.MulVec(channels[sc], v)
			if sigma > 0 {
				y = channel.AddAWGN(src, y, sigma)
			}
			got, err := detect(est[sc], y)
			if err != nil {
				return nil, fmt.Errorf("ofdm: subcarrier %d symbol %d: %w", sc, sym, err)
			}
			for i := range chunk {
				if got[i] != chunk[i] {
					rawErrors++
				}
			}
			rx = append(rx, got...)
		}
	}

	res := &FrameResult{
		DataBits:  data,
		RawErrors: rawErrors,
		RawBits:   capBits,
	}
	if cfg.Subcarriers > 0 && !cfg.PerfectCSI && sigma > 0 {
		res.EstErrorRMS = math.Sqrt(estErr2 / float64(cfg.Subcarriers))
	}

	// Receive chain.
	if cfg.Code == nil {
		res.Decoded = rx
		for i := range data {
			if rx[i] != data[i] {
				res.BitErrors++
			}
		}
	} else {
		deil, err := il.Deinterleave(rx)
		if err != nil {
			return nil, err
		}
		codedLen := (dataLen + cfg.Code.K - 1) * len(cfg.Code.Generators)
		decoded, err := cfg.Code.Decode(deil[:codedLen])
		if err != nil {
			return nil, err
		}
		res.Decoded = decoded
		for i := range data {
			if decoded[i] != data[i] {
				res.BitErrors++
			}
		}
	}
	res.FrameOK = res.BitErrors == 0
	return res, nil
}

// MeasureFER simulates frames until it has run `frames` of them, returning
// the coded frame error rate, the pre-FEC raw BER, and the post-FEC BER.
func MeasureFER(src *rng.Source, cfg FrameConfig, detect Detector, frames int) (fer, rawBER, codedBER float64, err error) {
	if frames < 1 {
		return 0, 0, 0, errors.New("ofdm: need at least one frame")
	}
	var frameErrs, rawErrs, rawBits, bitErrs, bits int
	for f := 0; f < frames; f++ {
		res, err := SimulateFrame(src, cfg, detect)
		if err != nil {
			return 0, 0, 0, err
		}
		if !res.FrameOK {
			frameErrs++
		}
		rawErrs += res.RawErrors
		rawBits += res.RawBits
		bitErrs += res.BitErrors
		bits += len(res.DataBits)
	}
	return float64(frameErrs) / float64(frames),
		float64(rawErrs) / float64(rawBits),
		float64(bitErrs) / float64(bits), nil
}
