package ofdm

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/coding"
	"quamax/internal/detector"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// zfDetector wraps zero-forcing as a Detector.
func zfDetector(mod modulation.Modulation) Detector {
	return func(h *linalg.Mat, y []complex128) ([]byte, error) {
		res, err := detector.ZeroForcing(mod, h, y)
		if err != nil {
			return nil, err
		}
		return res.Bits, nil
	}
}

// sphereDetector wraps the ML sphere decoder as a Detector.
func sphereDetector(mod modulation.Modulation) Detector {
	return func(h *linalg.Mat, y []complex128) ([]byte, error) {
		res, err := detector.SphereDecode(mod, h, y, detector.SphereOptions{})
		if err != nil {
			return nil, err
		}
		return res.Bits, nil
	}
}

func baseCfg() FrameConfig {
	return FrameConfig{
		Mod: modulation.QPSK, Nt: 4, Nr: 4,
		Subcarriers: 8, SymbolsPerFrame: 4,
		SNRdB: math.Inf(1),
		Delay: channel.TappedDelayLine{NumTaps: 3, Decay: 0.7},
	}
}

func TestValidation(t *testing.T) {
	bad := baseCfg()
	bad.Nr = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("Nr<Nt accepted")
	}
	bad = baseCfg()
	bad.Subcarriers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("no subcarriers accepted")
	}
}

func TestDataBitsAccounting(t *testing.T) {
	cfg := baseCfg() // capacity = 8·4·4·2 = 256
	if got := cfg.DataBits(); got != 256 {
		t.Fatalf("uncoded DataBits = %d", got)
	}
	cfg.Code = coding.NewWiFiCode()
	if got := cfg.DataBits(); got != 128-6 {
		t.Fatalf("coded DataBits = %d, want 122", got)
	}
}

func TestNoiseFreeUncodedFrame(t *testing.T) {
	src := rng.New(141)
	cfg := baseCfg()
	res, err := SimulateFrame(src, cfg, sphereDetector(cfg.Mod))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK || res.BitErrors != 0 || res.RawErrors != 0 {
		t.Fatalf("noise-free frame had errors: %+v", res)
	}
	if res.EstErrorRMS != 0 {
		t.Fatal("noise-free estimation should be exact")
	}
}

func TestNoiseFreeCodedFrame(t *testing.T) {
	src := rng.New(142)
	cfg := baseCfg()
	cfg.Code = coding.NewWiFiCode()
	res, err := SimulateFrame(src, cfg, sphereDetector(cfg.Mod))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK {
		t.Fatalf("coded noise-free frame failed: %d bit errors", res.BitErrors)
	}
	if len(res.DataBits) != cfg.DataBits() {
		t.Fatal("data length mismatch")
	}
}

// Coding must turn residual detector errors into clean frames at moderate
// SNR where uncoded frames fail.
func TestCodingRepairsResidualErrors(t *testing.T) {
	cfgU := baseCfg()
	cfgU.SNRdB = 14
	cfgC := cfgU
	cfgC.Code = coding.NewWiFiCode()

	srcU := rng.New(143)
	srcC := rng.New(143)
	const frames = 30
	ferU, rawU, _, err := MeasureFER(srcU, cfgU, sphereDetector(cfgU.Mod), frames)
	if err != nil {
		t.Fatal(err)
	}
	ferC, rawC, codedBER, err := MeasureFER(srcC, cfgC, sphereDetector(cfgC.Mod), frames)
	if err != nil {
		t.Fatal(err)
	}
	if rawU == 0 && rawC == 0 {
		t.Skip("SNR too benign to exercise coding on this seed")
	}
	if ferC >= ferU && ferU > 0 {
		t.Fatalf("coding did not reduce FER: coded %.3f vs uncoded %.3f (raw BER %.4f)", ferC, ferU, rawC)
	}
	if codedBER > rawC {
		t.Fatalf("post-FEC BER %.5f exceeds pre-FEC %.5f", codedBER, rawC)
	}
}

// Channel-estimation noise must degrade detection relative to perfect CSI,
// and pilot boosting must recover most of the loss.
func TestEstimationErrorAblation(t *testing.T) {
	run := func(perfect bool, boost float64, seed int64) float64 {
		cfg := baseCfg()
		cfg.SNRdB = 12
		cfg.PerfectCSI = perfect
		cfg.PilotBoostDB = boost
		src := rng.New(seed)
		var raw float64
		const frames = 25
		_, rawBER, _, err := MeasureFER(src, cfg, zfDetector(cfg.Mod), frames)
		if err != nil {
			t.Fatal(err)
		}
		raw = rawBER
		return raw
	}
	perfect := run(true, 0, 144)
	estimated := run(false, 0, 144)
	boosted := run(false, 10, 144)
	if estimated <= perfect {
		t.Fatalf("estimation noise should hurt: est %.4f vs perfect %.4f", estimated, perfect)
	}
	if boosted >= estimated {
		t.Fatalf("pilot boost should help: boosted %.4f vs plain %.4f", boosted, estimated)
	}
}

func TestEstimateChannelStatistics(t *testing.T) {
	src := rng.New(145)
	h := channel.RandomPhase{}.Generate(src, 8, 8)
	const sigma, amp = 0.5, 2.0
	var err2 float64
	n := 0
	for trial := 0; trial < 200; trial++ {
		est := EstimateChannel(src, h, sigma, amp)
		d := linalg.Sub(est, h)
		err2 += linalg.Norm2(d.Data)
		n += len(d.Data)
	}
	got := err2 / float64(n)
	want := (sigma / amp) * (sigma / amp)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("estimation error power %.4f, want %.4f", got, want)
	}
}

func TestMeasureFERValidation(t *testing.T) {
	if _, _, _, err := MeasureFER(rng.New(1), baseCfg(), zfDetector(modulation.QPSK), 0); err == nil {
		t.Fatal("zero frames accepted")
	}
}
