package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestNearbySeedsDecorrelated(t *testing.T) {
	// SplitMix finalizer: consecutive seeds must not produce correlated
	// first draws.
	seen := make(map[uint64]bool)
	for seed := int64(0); seed < 64; seed++ {
		v := New(seed).Uint64()
		if seen[v] {
			t.Fatal("collision across nearby seeds")
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	kids := parent.SplitN(4)
	if len(kids) != 4 {
		t.Fatalf("SplitN returned %d sources", len(kids))
	}
	streams := make(map[uint64]bool)
	for _, k := range kids {
		v := k.Uint64()
		if streams[v] {
			t.Fatal("child streams collide")
		}
		streams[v] = true
	}
}

func TestGaussMoments(t *testing.T) {
	src := New(2)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := src.Gauss(3, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean %g, want 3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("variance %g, want 4", variance)
	}
}

func TestComplexNormUnitPower(t *testing.T) {
	src := New(3)
	const n = 100000
	var p, re float64
	for i := 0; i < n; i++ {
		z := src.ComplexNorm()
		p += real(z)*real(z) + imag(z)*imag(z)
		re += real(z)
	}
	if math.Abs(p/n-1) > 0.02 {
		t.Fatalf("E|z|² = %g, want 1", p/n)
	}
	if math.Abs(re/n) > 0.02 {
		t.Fatalf("E[Re z] = %g, want 0", re/n)
	}
}

func TestUnitPhaseOnCircle(t *testing.T) {
	src := New(4)
	var sum complex128
	for i := 0; i < 10000; i++ {
		z := src.UnitPhase()
		m := real(z)*real(z) + imag(z)*imag(z)
		if math.Abs(m-1) > 1e-12 {
			t.Fatalf("|z|² = %g", m)
		}
		sum += z
	}
	// Uniform phase: the mean must be near the origin.
	if math.Hypot(real(sum), imag(sum)) > 300 {
		t.Fatal("phases not uniform")
	}
}

func TestBits(t *testing.T) {
	src := New(5)
	bits := src.Bits(10000)
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatal("non-binary bit")
		}
		ones += int(b)
	}
	if ones < 4700 || ones > 5300 {
		t.Fatalf("ones = %d/10000, want ≈5000", ones)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(6)
	p := src.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(7)
	for i := 0; i < 1000; i++ {
		if v := src.Intn(3); v < 0 || v > 2 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	src := New(8)
	trues := 0
	for i := 0; i < 10000; i++ {
		if src.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Fatalf("trues = %d/10000", trues)
	}
}
