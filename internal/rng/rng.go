// Package rng provides deterministic, splittable random number generation for
// the QuAMax simulator.
//
// Every stochastic component in the repository (channel draws, AWGN, ICE
// noise, annealer dynamics, tie-breaking) derives its randomness from an
// *rng.Source seeded explicitly, so that every experiment is reproducible
// from a single top-level seed. Sources can be split into independent child
// streams (Split), which is how per-anneal goroutines obtain non-overlapping
// randomness without locking.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source with Gaussian and complex-valued
// helpers. It is NOT safe for concurrent use; use Split to derive
// independent sources for concurrent goroutines.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(mix(seed)))}
}

// mix applies a SplitMix64-style finalizer so that nearby seeds (0,1,2,...)
// produce uncorrelated streams.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// Split returns a new Source whose stream is independent of the receiver
// (and of other Split results) with overwhelming probability. The receiver
// advances by one draw.
func (s *Source) Split() *Source {
	return New(int64(s.r.Uint64() & math.MaxInt64))
}

// SplitN returns n independent child sources.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.r.Intn(2) == 0 }

// Norm returns a standard normal draw (mean 0, variance 1).
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// Gauss returns a normal draw with the given mean and standard deviation.
func (s *Source) Gauss(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// ComplexNorm returns a circularly-symmetric complex Gaussian CN(0,1):
// real and imaginary parts are each N(0, 1/2) so E|z|^2 = 1.
func (s *Source) ComplexNorm() complex128 {
	const invSqrt2 = 0.7071067811865476
	return complex(s.r.NormFloat64()*invSqrt2, s.r.NormFloat64()*invSqrt2)
}

// UnitPhase returns e^{jθ} with θ uniform in [0, 2π): a unit-magnitude
// random-phase coefficient, the channel entry model of paper §5.3.
func (s *Source) UnitPhase() complex128 {
	theta := 2 * math.Pi * s.r.Float64()
	return complex(math.Cos(theta), math.Sin(theta))
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Bits returns n uniformly random bits as a byte slice of 0s and 1s.
func (s *Source) Bits(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		if s.Bool() {
			b[i] = 1
		}
	}
	return b
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
