package coding

import (
	"testing"

	"quamax/internal/rng"
)

// TestSoftViterbiSaturatedEqualsHard is the ISSUE's property test: with
// every LLR saturated to a common ±clamp magnitude, DecodeSoft must decode
// bit-identically to the hard Decode on the sign-sliced bits — including
// frames with random bit errors, where tie-breaking inside the trellis
// matters.
func TestSoftViterbiSaturatedEqualsHard(t *testing.T) {
	c := NewWiFiCode()
	src := rng.New(11)
	for _, clamp := range []float64{1, 8, 24} {
		for trial := 0; trial < 40; trial++ {
			data := src.Bits(20 + src.Intn(80))
			coded := c.Encode(data)
			// Flip a random subset of coded bits (up to ~20%).
			rx := append([]byte(nil), coded...)
			for i := range rx {
				if src.Float64() < 0.2 {
					rx[i] ^= 1
				}
			}
			llrs := make([]float64, len(rx))
			for i, b := range rx {
				if b == 1 {
					llrs[i] = clamp
				} else {
					llrs[i] = -clamp
				}
			}
			hard, err := c.Decode(rx)
			if err != nil {
				t.Fatal(err)
			}
			soft, err := c.DecodeSoft(llrs)
			if err != nil {
				t.Fatal(err)
			}
			if string(hard) != string(soft) {
				t.Fatalf("clamp %g trial %d: saturated soft decode diverged from hard decode", clamp, trial)
			}
		}
	}
}

// TestSoftViterbiCleanCodeword decodes an error-free codeword with graded
// reliabilities and must recover the data exactly.
func TestSoftViterbiCleanCodeword(t *testing.T) {
	c := NewWiFiCode()
	src := rng.New(3)
	data := src.Bits(64)
	coded := c.Encode(data)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		mag := 0.5 + 7*src.Float64()
		if b == 1 {
			llrs[i] = mag
		} else {
			llrs[i] = -mag
		}
	}
	got, err := c.DecodeSoft(llrs)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("soft decode of a clean codeword failed")
	}
}

// TestSoftViterbiOutperformsHardOnErasures builds the canonical case soft
// decoding exists for: the corrupted bits are flagged by near-zero LLRs, so
// the soft path decodes cleanly while the hard path (which sees only the
// wrong signs) fails.
func TestSoftViterbiOutperformsHardOnErasures(t *testing.T) {
	c := NewWiFiCode()
	src := rng.New(5)
	wins := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		data := src.Bits(48)
		coded := c.Encode(data)
		llrs := make([]float64, len(coded))
		for i, b := range coded {
			if b == 1 {
				llrs[i] = 8
			} else {
				llrs[i] = -8
			}
		}
		// Corrupt a burst of bits but leave them marked unreliable.
		start := src.Intn(len(coded) - 12)
		for i := start; i < start+12; i++ {
			sign := 1.0
			if coded[i] == 1 {
				sign = -1 // wrong way
			}
			llrs[i] = sign * 0.05
		}
		fc, err := CompareFrame(c, llrs, data)
		if err != nil {
			t.Fatal(err)
		}
		if fc.SoftBitErrors > fc.HardBitErrors {
			t.Fatalf("trial %d: soft (%d errors) worse than hard (%d errors)",
				trial, fc.SoftBitErrors, fc.HardBitErrors)
		}
		if fc.SoftBitErrors != 0 {
			t.Fatalf("trial %d: soft decode failed on an erasure-marked burst (%d errors)",
				trial, fc.SoftBitErrors)
		}
		if fc.HardFrameError && !fc.SoftFrameError {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("hard decoding never failed — the comparison exercised nothing")
	}
}

// TestHardDecisions checks the sign-slicing convention.
func TestHardDecisions(t *testing.T) {
	got := HardDecisions([]float64{3, -2, 0, 0.001, -0.001})
	want := []byte{1, 0, 0, 1, 0}
	if string(got) != string(want) {
		t.Fatalf("HardDecisions = %v, want %v", got, want)
	}
}

// TestCompareFrameLengthCheck rejects mismatched LLR counts.
func TestCompareFrameLengthCheck(t *testing.T) {
	c := NewWiFiCode()
	if _, err := CompareFrame(c, make([]float64, 10), make([]byte, 10)); err == nil {
		t.Fatal("CompareFrame accepted a short LLR vector")
	}
}

// TestDecodeSoftArgumentChecks mirrors the hard decoder's frame validation.
func TestDecodeSoftArgumentChecks(t *testing.T) {
	c := NewWiFiCode()
	if _, err := c.DecodeSoft(make([]float64, 3)); err == nil {
		t.Fatal("accepted LLR count not a multiple of n")
	}
	if _, err := c.DecodeSoft(make([]float64, 4)); err == nil {
		t.Fatal("accepted frame shorter than the termination tail")
	}
}

// TestDeinterleaveLLRsMatchesBitPath: the soft deinterleaver must apply the
// exact permutation of the hard Deinterleave.
func TestDeinterleaveLLRsMatchesBitPath(t *testing.T) {
	il := BlockInterleaver{Rows: 4, Cols: 6}
	src := rng.New(2)
	bits := src.Bits(il.Size())
	inter, err := il.Interleave(bits)
	if err != nil {
		t.Fatal(err)
	}
	llrs := make([]float64, len(inter))
	for i, b := range inter {
		llrs[i] = float64(i+1) * (2*float64(b) - 1) // sign encodes the bit
	}
	deBits, err := il.Deinterleave(inter)
	if err != nil {
		t.Fatal(err)
	}
	deLLRs, err := il.DeinterleaveLLRs(llrs)
	if err != nil {
		t.Fatal(err)
	}
	if string(deBits) != string(bits) {
		t.Fatal("bit deinterleave is not the inverse — test premise broken")
	}
	for i := range deLLRs {
		want := byte(0)
		if deLLRs[i] > 0 {
			want = 1
		}
		if want != deBits[i] {
			t.Fatalf("index %d: LLR permutation diverged from the bit permutation", i)
		}
	}
	if _, err := il.DeinterleaveLLRs(llrs[:3]); err == nil {
		t.Fatal("short LLR block accepted")
	}
}
