// Package coding implements the error-control layer the paper assumes above
// MIMO detection (§5.2.2: "error control coding operates above MIMO
// detection", and §5.3.3: QuAMax "discards bits, relying on forward error
// correction to drive BER down").
//
// It provides the classic rate-1/2, constraint-length-7 convolutional code
// with generators (133, 171)₈ — the 802.11/LTE workhorse — with a
// hard-decision Viterbi decoder, a block interleaver to break up the bursty
// errors a wrong annealer solution produces, and a frame abstraction that
// measures *coded* frame error rates, complementing the paper's analytic
// FER = 1−(1−BER)^bits.
package coding

import (
	"errors"
	"fmt"
	"math"
)

// Convolutional is a rate-1/n feed-forward convolutional code.
type Convolutional struct {
	// K is the constraint length (memory = K−1).
	K int
	// Generators are the octal-style generator polynomials given as binary
	// masks over the K most recent input bits (LSB = oldest).
	Generators []uint32
}

// NewWiFiCode returns the (133,171)₈ K=7 rate-1/2 code.
func NewWiFiCode() *Convolutional {
	return &Convolutional{K: 7, Generators: []uint32{0o133, 0o171}}
}

// Rate returns the code rate 1/len(Generators).
func (c *Convolutional) Rate() float64 { return 1 / float64(len(c.Generators)) }

// numStates returns 2^(K−1).
func (c *Convolutional) numStates() int { return 1 << (c.K - 1) }

// Encode convolutionally encodes data bits (0/1 bytes) and terminates the
// trellis with K−1 zero tail bits. Output length = (len(data)+K−1)·n.
func (c *Convolutional) Encode(data []byte) []byte {
	n := len(c.Generators)
	out := make([]byte, 0, (len(data)+c.K-1)*n)
	var shift uint32 // bit i holds input from i steps ago; bit 0 = newest
	emit := func(b byte) {
		shift = (shift << 1) | uint32(b&1)
		for _, g := range c.Generators {
			out = append(out, byte(parity32(shift&g)))
		}
	}
	for _, b := range data {
		emit(b)
	}
	for i := 0; i < c.K-1; i++ { // trellis termination
		emit(0)
	}
	return out
}

func parity32(x uint32) int {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return int(x & 1)
}

// Decode runs hard-decision Viterbi over the received coded bits, assuming
// the trellis was terminated (as Encode does). It returns the decoded data
// bits. The coded length must be a multiple of n and at least (K−1)·n.
func (c *Convolutional) Decode(coded []byte) ([]byte, error) {
	n := len(c.Generators)
	if len(coded)%n != 0 {
		return nil, fmt.Errorf("coding: coded length %d not a multiple of %d", len(coded), n)
	}
	steps := len(coded) / n
	if steps < c.K-1 {
		return nil, errors.New("coding: frame shorter than the termination tail")
	}
	states := c.numStates()
	const inf = math.MaxInt32 / 2

	// Precompute per-state, per-input expected outputs.
	// state encodes the previous K−1 input bits (bit 0 = newest).
	expected := make([][2]uint32, states*2)
	for s := 0; s < states; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(s) << 1) | uint32(in) // shift register after input
			var bits uint32
			for gi, g := range c.Generators {
				bits |= uint32(parity32(reg&g)) << gi
			}
			next := reg & uint32(states-1)
			expected[s*2+in] = [2]uint32{bits, next}
		}
	}

	metric := make([]int32, states)
	next := make([]int32, states)
	for s := 1; s < states; s++ {
		metric[s] = inf // encoder starts in the zero state
	}
	// Backpointers: step × state → previous state and input bit.
	back := make([]uint32, steps*states)

	for t := 0; t < steps; t++ {
		var rx uint32
		for gi := 0; gi < n; gi++ {
			rx |= uint32(coded[t*n+gi]&1) << gi
		}
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < states; s++ {
			if metric[s] >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				e := expected[s*2+in]
				d := metric[s] + int32(popcount(e[0]^rx))
				ns := int(e[1])
				if d < next[ns] {
					next[ns] = d
					back[t*states+ns] = uint32(s)<<1 | uint32(in)
				}
			}
		}
		metric, next = next, metric
	}

	// Terminated trellis: trace back from state 0.
	data := make([]byte, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		bp := back[t*states+state]
		data[t] = byte(bp & 1)
		state = int(bp >> 1)
	}
	// Strip the K−1 tail bits.
	return data[:steps-(c.K-1)], nil
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// BlockInterleaver permutes bits by writing row-wise into a rows×cols block
// and reading column-wise, dispersing the bursty errors a single wrong
// MIMO solution causes across the codeword.
type BlockInterleaver struct {
	Rows, Cols int
}

// Size returns the block size.
func (b BlockInterleaver) Size() int { return b.Rows * b.Cols }

// Interleave permutes a block (length must equal Size).
func (b BlockInterleaver) Interleave(bits []byte) ([]byte, error) {
	if len(bits) != b.Size() {
		return nil, fmt.Errorf("coding: interleaver got %d bits, want %d", len(bits), b.Size())
	}
	out := make([]byte, len(bits))
	k := 0
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < b.Rows; r++ {
			out[k] = bits[r*b.Cols+c]
			k++
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (b BlockInterleaver) Deinterleave(bits []byte) ([]byte, error) {
	if len(bits) != b.Size() {
		return nil, fmt.Errorf("coding: deinterleaver got %d bits, want %d", len(bits), b.Size())
	}
	out := make([]byte, len(bits))
	k := 0
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < b.Rows; r++ {
			out[r*b.Cols+c] = bits[k]
			k++
		}
	}
	return out, nil
}
