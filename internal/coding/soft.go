// Soft-decision Viterbi decoding over per-bit log-likelihood ratios — the
// FEC half of the soft-output detection chain (internal/softout produces the
// LLRs; this file consumes them). Branch metrics are reliability-weighted:
// disagreeing with an LLR costs its magnitude, so confident detector bits
// dominate the path metric while near-zero LLRs (bits the anneal ensemble
// was unsure about) cost almost nothing to overrule. With every LLR
// saturated to a common magnitude the metric degenerates to that magnitude
// times the Hamming distance, which makes soft decoding provably
// bit-identical to the hard decoder — the compatibility property
// TestSoftViterbiSaturatedEqualsHard asserts.
package coding

import (
	"errors"
	"fmt"
	"math"

	"quamax/internal/softout"
)

// DecodeSoft runs soft-decision Viterbi over per-coded-bit LLRs (positive
// favors bit 1, the internal/softout convention), assuming a terminated
// trellis exactly like Decode. The branch metric for expecting bit e against
// LLR λ is |λ| when the LLR's sign disagrees with e and 0 otherwise, so the
// decoder minimizes the total reliability it has to contradict. The LLR
// count must be a multiple of n and at least (K−1)·n.
//
// When every LLR carries the same magnitude (e.g. the ±clamp saturation of a
// hard-decision front end), DecodeSoft returns exactly Decode's output on
// the sign-sliced bits: the metrics become a common positive multiple of the
// Hamming metrics, and the trellis sweep below mirrors Decode's iteration
// and tie-breaking order.
func (c *Convolutional) DecodeSoft(llrs []float64) ([]byte, error) {
	n := len(c.Generators)
	if len(llrs)%n != 0 {
		return nil, fmt.Errorf("coding: %d LLRs not a multiple of %d", len(llrs), n)
	}
	steps := len(llrs) / n
	if steps < c.K-1 {
		return nil, errors.New("coding: frame shorter than the termination tail")
	}
	states := c.numStates()
	inf := math.Inf(1)

	// Precompute per-state, per-input expected outputs (same table as the
	// hard decoder; see Decode).
	expected := make([][2]uint32, states*2)
	for s := 0; s < states; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(s) << 1) | uint32(in)
			var bits uint32
			for gi, g := range c.Generators {
				bits |= uint32(parity32(reg&g)) << gi
			}
			next := reg & uint32(states-1)
			expected[s*2+in] = [2]uint32{bits, next}
		}
	}

	metric := make([]float64, states)
	next := make([]float64, states)
	for s := 1; s < states; s++ {
		metric[s] = inf // encoder starts in the zero state
	}
	back := make([]uint32, steps*states)

	// cost[gi][e] is the branch cost of expecting bit e at generator gi of
	// the current step: |λ| when sign(λ) contradicts e, else 0.
	cost := make([][2]float64, n)
	for t := 0; t < steps; t++ {
		for gi := 0; gi < n; gi++ {
			l := llrs[t*n+gi]
			cost[gi] = [2]float64{0, 0}
			if l > 0 { // favors 1: expecting 0 contradicts it
				cost[gi][0] = l
			} else if l < 0 { // favors 0: expecting 1 contradicts it
				cost[gi][1] = -l
			}
		}
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < states; s++ {
			if math.IsInf(metric[s], 1) {
				continue
			}
			for in := 0; in < 2; in++ {
				e := expected[s*2+in]
				d := metric[s]
				for gi := 0; gi < n; gi++ {
					d += cost[gi][e[0]>>gi&1]
				}
				ns := int(e[1])
				if d < next[ns] {
					next[ns] = d
					back[t*states+ns] = uint32(s)<<1 | uint32(in)
				}
			}
		}
		metric, next = next, metric
	}

	// Terminated trellis: trace back from state 0.
	data := make([]byte, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		bp := back[t*states+state]
		data[t] = byte(bp & 1)
		state = int(bp >> 1)
	}
	return data[:steps-(c.K-1)], nil
}

// DeinterleaveLLRs inverts BlockInterleaver.Interleave for a soft stream:
// the same index permutation applied to per-bit LLRs instead of bits, so a
// receiver can deinterleave its soft information in lockstep with the hard
// path (length must equal Size).
func (b BlockInterleaver) DeinterleaveLLRs(llrs []float64) ([]float64, error) {
	if len(llrs) != b.Size() {
		return nil, fmt.Errorf("coding: deinterleaver got %d LLRs, want %d", len(llrs), b.Size())
	}
	out := make([]float64, len(llrs))
	k := 0
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < b.Rows; r++ {
			out[r*b.Cols+c] = llrs[k]
			k++
		}
	}
	return out, nil
}

// HardDecisions slices coded-bit LLRs to hard bits under the positive-means-1
// convention (an exact zero slices to 0) — the front end of hard-decision
// decoding when only soft information is on hand. It is softout's slicer,
// re-exported here so the FEC layer's callers need not know where their
// LLRs came from; the convention is defined in one place.
func HardDecisions(llrs []float64) []byte { return softout.HardDecisions(llrs) }

// FrameComparison is one codeword decoded both ways from the same received
// LLRs: the soft path feeds them to DecodeSoft, the hard path slices them to
// bits first and runs the classic Decode — exactly the comparison the
// soft-output subsystem exists to win.
type FrameComparison struct {
	// HardBits and SoftBits are the decoded data bits of each path.
	HardBits, SoftBits []byte
	// HardBitErrors and SoftBitErrors count post-FEC mismatches against the
	// transmitted data.
	HardBitErrors, SoftBitErrors int
	// HardFrameError and SoftFrameError report whether each decoded frame
	// differs from the transmitted data anywhere.
	HardFrameError, SoftFrameError bool
}

// CompareFrame is the coded-frame comparison harness: decode one received
// codeword's LLRs with both the hard and the soft Viterbi paths and score
// each against the transmitted data bits. llrs must cover exactly the
// codeword Encode(data) produces.
func CompareFrame(c *Convolutional, llrs []float64, data []byte) (*FrameComparison, error) {
	want := (len(data) + c.K - 1) * len(c.Generators)
	if len(llrs) != want {
		return nil, fmt.Errorf("coding: %d LLRs for a %d-bit codeword", len(llrs), want)
	}
	hard, err := c.Decode(HardDecisions(llrs))
	if err != nil {
		return nil, err
	}
	soft, err := c.DecodeSoft(llrs)
	if err != nil {
		return nil, err
	}
	fc := &FrameComparison{HardBits: hard, SoftBits: soft}
	for i := range data {
		if hard[i] != data[i] {
			fc.HardBitErrors++
		}
		if soft[i] != data[i] {
			fc.SoftBitErrors++
		}
	}
	fc.HardFrameError = fc.HardBitErrors > 0
	fc.SoftFrameError = fc.SoftBitErrors > 0
	return fc, nil
}
