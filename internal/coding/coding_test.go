package coding

import (
	"testing"
	"testing/quick"

	"quamax/internal/rng"
)

func TestEncodeLengthAndRate(t *testing.T) {
	c := NewWiFiCode()
	if c.Rate() != 0.5 {
		t.Fatalf("rate = %g", c.Rate())
	}
	data := make([]byte, 100)
	coded := c.Encode(data)
	if len(coded) != (100+6)*2 {
		t.Fatalf("coded length %d, want %d", len(coded), (100+6)*2)
	}
	// All-zero input through a feed-forward code yields all-zero output.
	for i, b := range coded {
		if b != 0 {
			t.Fatalf("all-zero input produced 1 at %d", i)
		}
	}
}

func TestEncodeKnownImpulse(t *testing.T) {
	// A single 1 followed by zeros reads out the generator taps in order.
	c := NewWiFiCode()
	coded := c.Encode([]byte{1, 0, 0, 0, 0, 0, 0})
	// g0 = 133₈ = 1011011₂, g1 = 171₈ = 1111001₂ (bit i = tap on input i
	// steps ago). The impulse response over 7 steps reads the taps LSB→MSB.
	g0 := []byte{1, 1, 0, 1, 1, 0, 1}
	g1 := []byte{1, 0, 0, 1, 1, 1, 1}
	for i := 0; i < 7; i++ {
		if coded[2*i] != g0[i] || coded[2*i+1] != g1[i] {
			t.Fatalf("impulse response wrong at step %d: got (%d,%d), want (%d,%d)",
				i, coded[2*i], coded[2*i+1], g0[i], g1[i])
		}
	}
}

func TestDecodeCleanRoundTrip(t *testing.T) {
	c := NewWiFiCode()
	src := rng.New(131)
	for trial := 0; trial < 20; trial++ {
		data := src.Bits(1 + src.Intn(200))
		decoded, err := c.Decode(c.Encode(data))
		if err != nil {
			t.Fatal(err)
		}
		if len(decoded) != len(data) {
			t.Fatalf("decoded %d bits, want %d", len(decoded), len(data))
		}
		for i := range data {
			if decoded[i] != data[i] {
				t.Fatalf("trial %d: bit %d wrong", trial, i)
			}
		}
	}
}

// K=7 rate-1/2 has free distance 10: any ≤4 scattered coded-bit errors must
// be corrected.
func TestDecodeCorrectsScatteredErrors(t *testing.T) {
	c := NewWiFiCode()
	src := rng.New(132)
	for trial := 0; trial < 30; trial++ {
		data := src.Bits(120)
		coded := c.Encode(data)
		// Flip 4 well-separated bits.
		for k := 0; k < 4; k++ {
			coded[10+k*50] ^= 1
		}
		decoded, err := c.Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if decoded[i] != data[i] {
				t.Fatalf("trial %d: 4 scattered errors not corrected", trial)
			}
		}
	}
}

func TestDecodeReducesRandomErrors(t *testing.T) {
	// At 3% coded BER the Viterbi output must be much cleaner than the input.
	c := NewWiFiCode()
	src := rng.New(133)
	var inErr, outErr, total int
	for trial := 0; trial < 20; trial++ {
		data := src.Bits(300)
		coded := c.Encode(data)
		for i := range coded {
			if src.Float64() < 0.03 {
				coded[i] ^= 1
				inErr++
			}
		}
		decoded, err := c.Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if decoded[i] != data[i] {
				outErr++
			}
			total++
		}
	}
	if outErr*20 > inErr {
		t.Fatalf("Viterbi barely helped: %d output errors vs %d channel errors over %d bits", outErr, inErr, total)
	}
}

func TestDecodeValidation(t *testing.T) {
	c := NewWiFiCode()
	if _, err := c.Decode(make([]byte, 3)); err == nil {
		t.Fatal("odd coded length accepted")
	}
	if _, err := c.Decode(make([]byte, 4)); err == nil {
		t.Fatal("frame shorter than tail accepted")
	}
}

func TestInterleaverRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		b := BlockInterleaver{Rows: 1 + src.Intn(8), Cols: 1 + src.Intn(8)}
		bits := src.Bits(b.Size())
		il, err := b.Interleave(bits)
		if err != nil {
			return false
		}
		back, err := b.Deinterleave(il)
		if err != nil {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverDispersesBursts(t *testing.T) {
	b := BlockInterleaver{Rows: 8, Cols: 16}
	bits := make([]byte, b.Size())
	il, _ := b.Interleave(bits)
	_ = il
	// A burst of 8 consecutive positions post-interleave maps back to
	// positions spread across ≥ 4 distinct rows of the original block.
	marked := make([]byte, b.Size())
	for i := 40; i < 48; i++ {
		marked[i] = 1
	}
	orig, _ := b.Deinterleave(marked)
	rows := map[int]bool{}
	for i, v := range orig {
		if v == 1 {
			rows[i/b.Cols] = true
		}
	}
	if len(rows) < 4 {
		t.Fatalf("burst only covers %d rows after deinterleave", len(rows))
	}
}

func TestInterleaverValidation(t *testing.T) {
	b := BlockInterleaver{Rows: 2, Cols: 3}
	if _, err := b.Interleave(make([]byte, 5)); err == nil {
		t.Fatal("wrong size accepted")
	}
	if _, err := b.Deinterleave(make([]byte, 7)); err == nil {
		t.Fatal("wrong size accepted")
	}
}
