// Package precoding implements downlink vector-perturbation (VP) precoding
// as a quantum-annealing workload — the downlink counterpart of the uplink
// ML detection the rest of this repository serves, after Kasi, Singh,
// Venturelli & Jamieson, "Quantum Annealing for Large MIMO Downlink Vector
// Perturbation Precoding" (arXiv:2102.12540).
//
// In the C-RAN downlink the data center owns the channel estimate H (Nu
// users × Nt antennas, Nu ≤ Nt) and must choose the transmit vector for a
// user-data symbol vector s. Channel inversion sends x = P·s with
// P = Hᴴ(HHᴴ)⁻¹, so each user k receives its own symbol s_k interference-
// free — but ‖P·s‖² can be huge on ill-conditioned channels, and the power
// normalization that follows crushes the effective SNR. Vector perturbation
// fixes this by offsetting s with a lattice point the receivers can remove
// blindly:
//
//	v̂ = argmin_v ‖P·(s + τ·v)‖²                (the NP-hard VP search)
//	x  = P·(s + τ·v̂)
//
// where v ranges over a bounded set of complex integers and τ is a spacing
// constant known to both ends; each user recovers s_k from its received
// scalar by reducing modulo τ per dimension (ModTau). The search over v is
// the same NP-hard lattice problem as uplink ML detection, which is exactly
// why this package can reuse the uplink Ising stack wholesale.
//
// # Reduction to the uplink form
//
// Encode each perturbation entry per dimension in b two's-complement bits,
// i.e. v ∈ {−2^{b−1}, …, 2^{b−1}−1} per I/Q dimension. Those levels are an
// affine image of an ordinary square QAM constellation: with O the
// 2^{2b}-point QAM alphabet (per-dimension odd levels −(2^b−1)…2^b−1),
//
//	v = (v_pam − (1+j)·𝟙)/2,   v_pam ∈ O^Nu,
//
// and substituting into the VP objective,
//
//	‖P(s + τv)‖² = ‖y′ − H′·v_pam‖²,
//	H′ = −(τ/2)·P,   y′ = P·(s − (τ/2)(1+j)·𝟙).
//
// That is literally the uplink ML form of internal/reduction with channel H′
// and "received vector" y′ — so the generalized Ising coefficients, the
// compile/execute split (H′ depends only on the channel; y′ only adds one
// matrix–vector product per symbol vector), the decoder's compiled-channel
// LRU, the coherence-aware scheduler gather, and every solver backend apply
// verbatim. The Ising energy of a solution equals the transmit power
// ‖P(s+τv)‖² exactly, the quantity VP minimizes.
//
// Compile once per coherence window with Compile; derive per-symbol-vector
// problems with Program.Ising (decoder-direct) or Program.Problem
// (scheduler dispatch, ChannelKey-tagged). The Precoder type packages the
// decoder-direct path with the same compile/execute economics as uplink
// decoding.
package precoding

import (
	"errors"
	"fmt"
	"math"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
)

// DefaultPerturbBits is the perturbation alphabet depth used when a caller
// leaves the bit count zero: one bit per dimension, i.e. v ∈ {−1, 0} per I/Q
// dimension — the compact alphabet that already captures most of the VP
// power reduction while keeping the Ising problem at 2 spins per user.
const DefaultPerturbBits = 1

// MaxPerturbBits bounds the alphabet depth at the largest square QAM the
// modulation package defines (3 bits per dimension, v ∈ {−4, …, 3}).
const MaxPerturbBits = 3

// PerturbModulation returns the constellation whose QuAMax transform
// enumerates the b-bit perturbation alphabet: QPSK for b = 1, 16-QAM for
// b = 2, 64-QAM for b = 3. Perturbations are always complex (both I and Q
// perturbed), regardless of the data modulation.
func PerturbModulation(bits int) (modulation.Modulation, error) {
	switch bits {
	case 1:
		return modulation.QPSK, nil
	case 2:
		return modulation.QAM16, nil
	case 3:
		return modulation.QAM64, nil
	}
	return 0, fmt.Errorf("precoding: perturbation bits %d outside [1,%d]", bits, MaxPerturbBits)
}

// Tau returns the VP spacing constant for a data constellation: τ = 2·L with
// L the per-dimension PAM level count, the smallest spacing whose modulo
// interval [−τ/2, τ/2) contains every (unnormalized) data level −(L−1)…L−1
// with a half-minimum-distance guard on each side.
func Tau(dataMod modulation.Modulation) float64 {
	return 2 * float64(dataMod.LevelsPerDim())
}

// Program is the compiled, channel-dependent half of the VP search for one
// coherence window: the right pseudo-inverse P, the equivalent uplink
// channel H′ = −(τ/2)P with its precompiled Ising couplings, and the channel
// fingerprint that tags every derived problem for coherence-aware
// scheduling. Compile once per estimated channel; derive per-symbol-vector
// programs with Ising or Problem. A Program is immutable after Compile and
// safe for concurrent use (the Isings it produces share coupling storage,
// with the same contract as reduction.ChannelProgram).
type Program struct {
	dataMod    modulation.Modulation
	perturbMod modulation.Modulation
	bits       int
	tau        float64

	h    *linalg.Mat // downlink channel, Nu×Nt (referenced, not copied)
	pinv *linalg.Mat // P = Hᴴ(HHᴴ)⁻¹, Nt×Nu
	hvp  *linalg.Mat // H′ = −(τ/2)·P, the equivalent uplink channel
	base complex128  // (τ/2)(1+j), the per-user affine shift of the alphabet

	prog *reduction.ChannelProgram // couplings of ‖y′ − H′·v_pam‖²
	key  core.ChannelKey           // FingerprintChannel(perturbMod, hvp)
}

// Compile builds the VP program for one downlink channel estimate: the
// right pseudo-inverse, the equivalent uplink channel H′, its compiled Ising
// couplings, and the coherence fingerprint. h is Nu×Nt with Nu ≤ Nt (full
// row rank); bits is the perturbation depth (0 selects DefaultPerturbBits).
// The returned program references h; callers must treat the matrix as
// immutable for the program's lifetime.
func Compile(dataMod modulation.Modulation, h *linalg.Mat, bits int) (*Program, error) {
	if bits == 0 {
		bits = DefaultPerturbBits
	}
	perturbMod, err := PerturbModulation(bits)
	if err != nil {
		return nil, err
	}
	if h == nil || h.Rows < 1 {
		return nil, errors.New("precoding: empty channel matrix")
	}
	if h.Rows > h.Cols {
		return nil, fmt.Errorf("precoding: downlink needs at least as many antennas as users, got %d users × %d antennas",
			h.Rows, h.Cols)
	}
	if _, err := modulation.Parse(dataMod.String()); err != nil {
		return nil, fmt.Errorf("precoding: unknown data modulation %v", dataMod)
	}
	pinv, err := linalg.RightPseudoInverse(h)
	if err != nil {
		return nil, fmt.Errorf("precoding: channel inversion: %w", err)
	}
	tau := Tau(dataMod)
	hvp := linalg.NewMat(pinv.Rows, pinv.Cols)
	scale := complex(-tau/2, 0)
	for i, v := range pinv.Data {
		hvp.Data[i] = scale * v
	}
	return &Program{
		dataMod:    dataMod,
		perturbMod: perturbMod,
		bits:       bits,
		tau:        tau,
		h:          h,
		pinv:       pinv,
		hvp:        hvp,
		base:       complex(tau/2, tau/2),
		prog:       reduction.CompileChannel(perturbMod, hvp),
		key:        core.FingerprintChannel(perturbMod, hvp),
	}, nil
}

// Reduce is the one-shot form of the VP→Ising reduction: it compiles the
// channel-dependent half fresh and completes it for one symbol vector,
// exactly Compile(dataMod, h, bits).Ising(s). Precoding many symbol vectors
// through one channel should compile once and call Ising per vector.
func Reduce(dataMod modulation.Modulation, h *linalg.Mat, bits int, s []complex128) (*qubo.Ising, error) {
	prog, err := Compile(dataMod, h, bits)
	if err != nil {
		return nil, err
	}
	return prog.Ising(s), nil
}

// DataMod returns the data constellation the program precodes for.
func (p *Program) DataMod() modulation.Modulation { return p.dataMod }

// PerturbMod returns the constellation enumerating the perturbation alphabet.
func (p *Program) PerturbMod() modulation.Modulation { return p.perturbMod }

// PerturbBits returns the alphabet depth b (bits per perturbation dimension).
func (p *Program) PerturbBits() int { return p.bits }

// Tau returns the VP spacing constant.
func (p *Program) Tau() float64 { return p.tau }

// Users returns Nu, the number of served users (h's row count).
func (p *Program) Users() int { return p.h.Rows }

// Antennas returns Nt, the transmit antenna count (h's column count).
func (p *Program) Antennas() int { return p.h.Cols }

// Channel returns the downlink channel the program was compiled from.
func (p *Program) Channel() *linalg.Mat { return p.h }

// Inverse returns the right pseudo-inverse P (shared, do not mutate).
func (p *Program) Inverse() *linalg.Mat { return p.pinv }

// VPChannel returns the equivalent uplink channel H′ = −(τ/2)P the VP search
// anneals over (shared, do not mutate).
func (p *Program) VPChannel() *linalg.Mat { return p.hvp }

// Key returns the coherence fingerprint of the VP problem family — the
// ChannelKey every Problem derived from this program carries, and the key
// the decoder's compiled-channel LRU recognizes the window by.
func (p *Program) Key() core.ChannelKey { return p.key }

// LogicalSpins returns N = Nu · 2b, the Ising size of every VP search
// through this channel.
func (p *Program) LogicalSpins() int { return p.prog.N }

// Target computes y′ = P·(s − (τ/2)(1+j)·𝟙), the equivalent uplink received
// vector for one user-data symbol vector — the only per-symbol-vector
// arithmetic of the execute phase (one O(Nt·Nu) matrix–vector product).
func (p *Program) Target(s []complex128) []complex128 {
	if len(s) != p.h.Rows {
		panic(fmt.Sprintf("precoding: s has %d entries, channel serves %d users", len(s), p.h.Rows))
	}
	shifted := make([]complex128, len(s))
	for i, v := range s {
		shifted[i] = v - p.base
	}
	return linalg.MulVec(p.pinv, shifted)
}

// Ising completes the compiled program for one user-data symbol vector. The
// Ising energy of an assignment equals the transmit power ‖P(s+τv)‖² of the
// corresponding perturbation exactly. The result shares coupling storage
// with the program (the amortization), with the same ownership contract as
// reduction.ChannelProgram.Biases.
func (p *Program) Ising(s []complex128) *qubo.Ising {
	return p.prog.Biases(p.Target(s))
}

// Problem packages one VP search as a scheduler-dispatchable problem: the
// equivalent uplink channel and target, tagged with the program's
// ChannelKey so the pool's coherence-aware gather batches same-window
// searches and annealer backends solve them through their compiled-channel
// cache. The caller may set TargetBER and Anneal overrides before dispatch.
func (p *Program) Problem(s []complex128) *backend.Problem {
	return &backend.Problem{
		Mod:        p.perturbMod,
		H:          p.hvp,
		Y:          p.Target(s),
		ChannelKey: p.key,
	}
}

// Perturbation decodes an annealer outcome's constellation points (the
// v_pam solution of the equivalent uplink problem) into the VP perturbation
// vector v = (v_pam − (1+j)·𝟙)/2.
func Perturbation(pamSymbols []complex128) []complex128 {
	v := make([]complex128, len(pamSymbols))
	for i, c := range pamSymbols {
		v[i] = (c - complex(1, 1)) / 2
	}
	return v
}

// PerturbationFromGrayBits decodes the Gray (post-translated) solution bits
// a solver backend returns into the perturbation vector. perturbMod is the
// alphabet constellation (PerturbModulation of the bit depth); the bit slice
// length must be a multiple of its bits-per-symbol.
func PerturbationFromGrayBits(perturbMod modulation.Modulation, gray []byte) []complex128 {
	return Perturbation(reduction.BitsToSymbols(perturbMod, perturbMod.GrayToQuAMaxBits(gray)))
}

// Transmit forms the precoded transmit vector x = P·(s + τ·v) for a chosen
// perturbation (v = zeros gives the plain channel-inversion baseline).
func (p *Program) Transmit(s, v []complex128) []complex128 {
	if len(v) != len(s) {
		panic("precoding: perturbation/symbol length mismatch")
	}
	t := make([]complex128, len(s))
	tau := complex(p.tau, 0)
	for i := range s {
		t[i] = s[i] + tau*v[i]
	}
	return linalg.MulVec(p.pinv, t)
}

// Gamma evaluates the VP objective ‖P(s+τv)‖² — the transmit power the
// search minimizes, and the value the Ising energy of the corresponding
// assignment reproduces.
func (p *Program) Gamma(s, v []complex128) float64 {
	return linalg.Norm2(p.Transmit(s, v))
}

// ZFGamma is the no-perturbation baseline ‖P·s‖² (plain channel inversion).
func (p *Program) ZFGamma(s []complex128) float64 {
	return p.Gamma(s, make([]complex128, len(s)))
}

// ModTau reduces one received scalar modulo τ per dimension into
// [−τ/2, τ/2), the blind per-user operation that strips the perturbation
// offset τ·v_k from s_k + τ·v_k.
func ModTau(tau float64, r complex128) complex128 {
	wrap := func(x float64) float64 {
		x -= tau * math.Round(x/tau)
		if x >= tau/2 { // Round half-away-from-zero can leave +τ/2 exactly
			x -= tau
		}
		return x
	}
	return complex(wrap(real(r)), wrap(imag(r)))
}

// Receive recovers hard data symbols at the users: each scaled received
// scalar is reduced modulo τ and sliced to the nearest data constellation
// point. r must already be normalized back to constellation scale (the
// receiver knows the power-normalization factor √γ from control signaling).
func Receive(dataMod modulation.Modulation, tau float64, r []complex128) []complex128 {
	out := make([]complex128, len(r))
	for i, v := range r {
		out[i] = dataMod.Slice(ModTau(tau, v))
	}
	return out
}
