package precoding

import (
	"errors"

	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Precoder runs the VP search on a QuAMax decoder with the same
// compile/execute economics as uplink decoding: the VP program (channel
// inversion + couplings) compiles once per coherence window through a
// fingerprint-keyed LRU, the decoder pins the embedded physical program in
// its compiled-channel cache, and each symbol vector only pays one
// matrix–vector product plus the bias rewrite and anneal. Safe for
// concurrent use.
type Precoder struct {
	dec   *core.Decoder
	bits  int
	cache *Cache
}

// NewPrecoder wraps a decoder as a VP precoder. bits is the perturbation
// depth (0 = DefaultPerturbBits); cacheSize bounds the compiled-VP-program
// LRU (0 = DefaultCache).
func NewPrecoder(dec *core.Decoder, bits, cacheSize int) (*Precoder, error) {
	if dec == nil {
		return nil, errors.New("precoding: nil decoder")
	}
	if bits == 0 {
		bits = DefaultPerturbBits
	}
	if _, err := PerturbModulation(bits); err != nil {
		return nil, err
	}
	return &Precoder{dec: dec, bits: bits, cache: NewCache(cacheSize)}, nil
}

// Decoder exposes the wrapped decoder (shared with any uplink use).
func (p *Precoder) Decoder() *core.Decoder { return p.dec }

// PerturbBits returns the configured perturbation depth.
func (p *Precoder) PerturbBits() int { return p.bits }

// CacheStats snapshots the compiled-VP-program LRU counters.
func (p *Precoder) CacheStats() metrics.ChannelCacheStats { return p.cache.Stats() }

// Compile returns the VP program for one downlink channel estimate through
// the precoder's LRU — call once per coherence window (repeat calls with
// the same H are cache hits).
func (p *Precoder) Compile(dataMod modulation.Modulation, h *linalg.Mat) (*Program, error) {
	return p.cache.Get(dataMod, h, p.bits)
}

// Result is one solved VP search.
type Result struct {
	// V is the chosen perturbation vector (complex integers of the b-bit
	// alphabet, one per user).
	V []complex128
	// X is the precoded transmit vector P·(s + τ·V), ready for power
	// normalization at the radio head.
	X []complex128
	// Gamma is the transmit power ‖X‖² — the minimized VP objective. It
	// equals the annealer's Ising energy by construction.
	Gamma float64
	// ZFGamma is the no-perturbation baseline ‖P·s‖², so callers can report
	// the power reduction (effective SNR gain) without recomputing it.
	ZFGamma float64
	// Outcome is the underlying decode outcome (energy, broken chains,
	// timing model).
	Outcome *core.Outcome
}

// Precode runs the execute phase for one user-data symbol vector through a
// compiled program: target + bias rewrite, then an annealer run over the
// decoder's compiled-channel artifact. The perturbation search is
// bit-identical to PrecodeRecompile on the same (program inputs, random
// stream) — the property tests assert it.
func (p *Precoder) Precode(prog *Program, s []complex128, src *rng.Source) (*Result, error) {
	cc, err := p.dec.Compile(prog.PerturbMod(), prog.VPChannel())
	if err != nil {
		return nil, err
	}
	out, err := p.dec.DecodeCompiled(cc, prog.Target(s), src)
	if err != nil {
		return nil, err
	}
	return p.result(prog, s, out), nil
}

// PrecodeRecompile is the one-shot path: it recompiles the VP program and
// runs the recompiling decode pipeline, paying the channel inversion,
// coupling compile and embedding for every symbol vector. It exists as the
// baseline the compile/execute split is measured against
// (BenchmarkPrecodeWindow) and as the independent oracle in property tests.
func (p *Precoder) PrecodeRecompile(dataMod modulation.Modulation, h *linalg.Mat, s []complex128, src *rng.Source) (*Result, error) {
	prog, err := Compile(dataMod, h, p.bits)
	if err != nil {
		return nil, err
	}
	out, err := p.dec.Decode(prog.PerturbMod(), prog.VPChannel(), prog.Target(s), src)
	if err != nil {
		return nil, err
	}
	return p.result(prog, s, out), nil
}

// result converts a decode outcome into a VP result: the outcome's
// constellation points are the v_pam solution, mapped affinely back to the
// perturbation alphabet.
func (p *Precoder) result(prog *Program, s []complex128, out *core.Outcome) *Result {
	v := Perturbation(out.Symbols)
	return &Result{
		V:       v,
		X:       prog.Transmit(s, v),
		Gamma:   out.Energy,
		ZFGamma: prog.ZFGamma(s),
		Outcome: out,
	}
}
