package precoding

import (
	"container/list"
	"sync"

	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
)

// DefaultCache is the compiled-VP-program LRU capacity when a Cache is built
// with size zero — matching the decoder's compiled-channel default, so one
// serving process recognizes the same number of concurrent coherence windows
// on the downlink as on the uplink.
const DefaultCache = core.DefaultChannelCache

// cacheKey identifies one VP program family: the downlink channel
// fingerprint (over the data modulation and H's exact bits) plus the
// perturbation depth, which changes the alphabet and therefore the program.
type cacheKey struct {
	ck   core.ChannelKey
	bits int
}

// Cache is a fingerprint-keyed LRU of compiled VP programs. It amortizes the
// channel inversion and coupling compile across the symbol vectors of a
// coherence window for callers that receive self-contained (mod, H, s)
// requests — the fronthaul server and the Precoder. Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	cap       int
	m         map[cacheKey]*list.Element
	lru       *list.List // of *cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  cacheKey
	prog *Program
}

// NewCache returns an LRU holding up to capacity compiled programs
// (0 selects DefaultCache).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCache
	}
	return &Cache{
		cap: capacity,
		m:   make(map[cacheKey]*list.Element),
		lru: list.New(),
	}
}

// Get returns the compiled program for (dataMod, h, bits), compiling and
// inserting on a miss. bits = 0 selects DefaultPerturbBits. Equal
// fingerprints must mean identical channels (the same contract as the
// decoder's compiled-channel cache); the canonical case is a caller
// re-presenting the same estimated H for every symbol vector of a window.
func (c *Cache) Get(dataMod modulation.Modulation, h *linalg.Mat, bits int) (*Program, error) {
	if bits == 0 {
		bits = DefaultPerturbBits
	}
	key := cacheKey{ck: core.FingerprintChannel(dataMod, h), bits: bits}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		prog := el.Value.(*cacheEntry).prog
		c.mu.Unlock()
		return prog, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: the channel inversion is O(Nu³) and must not
	// stall concurrent lookups.
	prog, err := Compile(dataMod, h, bits)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// A concurrent Get won the race; keep the incumbent so every caller
		// shares one program (and its coupling storage).
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).prog, nil
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, prog: prog})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	return prog, nil
}

// Stats snapshots the cache counters in the same shape as the decoder's
// compiled-channel cache, so pool observability can aggregate both.
func (c *Cache) Stats() metrics.ChannelCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return metrics.ChannelCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
