package precoding

import (
	"context"
	"math"
	"reflect"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

func testDecoder(t *testing.T, anneals, cache int) *core.Decoder {
	t.Helper()
	d, err := core.New(core.Options{
		Graph:        chimera.New(6),
		Params:       anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: anneals},
		ChannelCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPrecodeCompiledMatchesRecompile is the precoder-level acceptance
// property: the compiled execute phase chooses bit-identically the same
// perturbation as the recompiling one-shot path on the same (channel, s,
// random stream), across several symbol vectors of one window.
func TestPrecodeCompiledMatchesRecompile(t *testing.T) {
	for _, tc := range []struct {
		mod  modulation.Modulation
		nu   int
		bits int
	}{
		{modulation.QPSK, 4, 1},
		{modulation.QAM16, 3, 1},
		{modulation.BPSK, 4, 2},
	} {
		dec := testDecoder(t, 25, 0)
		prec, err := NewPrecoder(dec, tc.bits, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(601)
		h := channel.Rayleigh{}.Generate(src, tc.nu, tc.nu+1)
		prog, err := prec.Compile(tc.mod, h)
		if err != nil {
			t.Fatal(err)
		}
		for sym := 0; sym < 3; sym++ {
			s := randomSymbols(src, tc.mod, tc.nu)
			want, err := prec.PrecodeRecompile(tc.mod, h, s, rng.New(int64(700+sym)))
			if err != nil {
				t.Fatal(err)
			}
			got, err := prec.Precode(prog, s, rng.New(int64(700+sym)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.V, want.V) {
				t.Fatalf("%v: perturbation %v, want %v", tc.mod, got.V, want.V)
			}
			if got.Gamma != want.Gamma {
				t.Fatalf("%v: gamma %v, want %v (not bit-identical)", tc.mod, got.Gamma, want.Gamma)
			}
			if !reflect.DeepEqual(got.X, want.X) {
				t.Fatalf("%v: transmit vector differs", tc.mod)
			}
			// The reported objective is the Ising energy; it must agree with
			// a direct evaluation of ‖P(s+τV)‖².
			if direct := prog.Gamma(s, got.V); !relClose(got.Gamma, direct, 1e-9) {
				t.Fatalf("%v: gamma %g != direct evaluation %g", tc.mod, got.Gamma, direct)
			}
			if got.ZFGamma != prog.ZFGamma(s) {
				t.Fatalf("%v: ZF baseline mismatch", tc.mod)
			}
		}
	}
}

// TestAnnealedMatchesExhaustive: at a generous read budget on small
// instances, the annealed VP search finds the exhaustive optimum.
func TestAnnealedMatchesExhaustive(t *testing.T) {
	// 3000 reads: enough that even the ill-conditioned Rayleigh draws in
	// this fixed-seed set reach their exhaustive optimum through the
	// simulator's ICE noise and analog range clipping.
	dec := testDecoder(t, 3000, 0)
	prec, err := NewPrecoder(dec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(602)
	for trial := 0; trial < 3; trial++ {
		for _, tc := range []struct {
			mod modulation.Modulation
			nu  int
		}{
			{modulation.QPSK, 3},
			{modulation.QAM16, 2},
			{modulation.QPSK, 4},
		} {
			h := channel.Rayleigh{}.Generate(src, tc.nu, tc.nu)
			prog, err := prec.Compile(tc.mod, h)
			if err != nil {
				t.Fatal(err)
			}
			s := randomSymbols(src, tc.mod, tc.nu)
			_, ground := qubo.BruteForceIsing(prog.Ising(s))
			res, err := prec.Precode(prog, s, src)
			if err != nil {
				t.Fatal(err)
			}
			if !relClose(res.Gamma, ground, 1e-9) {
				t.Fatalf("%v nu=%d: annealed gamma %g != exhaustive optimum %g",
					tc.mod, tc.nu, res.Gamma, ground)
			}
			if res.Gamma > res.ZFGamma*(1+1e-12) {
				t.Fatalf("%v nu=%d: VP gamma %g worse than channel inversion %g",
					tc.mod, tc.nu, res.Gamma, res.ZFGamma)
			}
		}
	}
}

// TestProblemThroughScheduler proves the VP workload rides the existing pool
// stack unchanged: ChannelKey-tagged problems from one program dispatch
// through a multi-QPU scheduler, solve on the compiled-channel path, and
// decode back to in-alphabet perturbations whose transmit power matches the
// reported energy.
func TestProblemThroughScheduler(t *testing.T) {
	const (
		nu      = 4
		symbols = 8
	)
	mod := modulation.QPSK
	var pool []backend.Backend
	var decs []*core.Decoder
	for i := 0; i < 2; i++ {
		dec := testDecoder(t, 30, 0)
		decs = append(decs, dec)
		pool = append(pool, backend.AnnealerFromDecoder("qpu", dec))
	}
	s, err := sched.New(sched.Config{Pool: pool, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src := rng.New(603)
	h := channel.Rayleigh{}.Generate(src, nu, nu+2)
	prog, err := Compile(mod, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for sym := 0; sym < symbols; sym++ {
		data := randomSymbols(src, mod, nu)
		p := prog.Problem(data)
		if p.ChannelKey != prog.Key() || p.ChannelKey == 0 {
			t.Fatal("problem not tagged with the program's channel key")
		}
		res, err := s.Dispatch(ctx, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := PerturbationFromGrayBits(prog.PerturbMod(), res.Bits)
		if len(v) != nu {
			t.Fatalf("perturbation has %d entries", len(v))
		}
		bound := float64(int(1) << (prog.PerturbBits() - 1))
		for _, c := range v {
			if math.Abs(real(c)) > bound || math.Abs(imag(c)) > bound {
				t.Fatalf("perturbation %v outside alphabet", c)
			}
		}
		if direct := prog.Gamma(data, v); !relClose(res.Energy, direct, 1e-9) {
			t.Fatalf("reported energy %g != transmit power %g", res.Energy, direct)
		}
	}
	// The compiled-channel caches saw exactly one distinct channel per
	// decoder that served a keyed problem.
	var misses uint64
	for _, d := range decs {
		st := d.ChannelCacheStats()
		if st.Misses > 1 {
			t.Fatalf("decoder compiled the same window %d times", st.Misses)
		}
		misses += st.Misses
	}
	if misses == 0 {
		t.Fatal("no decoder compiled the window (keyed problems bypassed the compiled path?)")
	}
}
