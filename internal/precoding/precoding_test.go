package precoding

import (
	"math"
	"sync"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// randomSymbols draws one user-data symbol vector from the constellation.
func randomSymbols(src *rng.Source, mod modulation.Modulation, nu int) []complex128 {
	return mod.MapGrayVector(src.Bits(nu * mod.BitsPerSymbol()))
}

// perturbationFromSpins maps an Ising spin assignment of a VP problem back
// to the perturbation vector it encodes.
func perturbationFromSpins(perturbMod modulation.Modulation, spins []int8) []complex128 {
	return Perturbation(reduction.BitsToSymbols(perturbMod, qubo.BitsFromSpins(spins)))
}

func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestPerturbModulation(t *testing.T) {
	cases := map[int]modulation.Modulation{1: modulation.QPSK, 2: modulation.QAM16, 3: modulation.QAM64}
	for bits, want := range cases {
		got, err := PerturbModulation(bits)
		if err != nil || got != want {
			t.Fatalf("PerturbModulation(%d) = %v, %v", bits, got, err)
		}
	}
	for _, bits := range []int{-1, 4, 7} {
		if _, err := PerturbModulation(bits); err == nil {
			t.Fatalf("PerturbModulation(%d) accepted", bits)
		}
	}
}

// TestPerturbationAlphabet proves the affine PAM map enumerates exactly the
// b-bit two's-complement alphabet {−2^{b−1}, …, 2^{b−1}−1} per dimension,
// zero included.
func TestPerturbationAlphabet(t *testing.T) {
	for bits := 1; bits <= MaxPerturbBits; bits++ {
		pam, err := PerturbModulation(bits)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := -(1 << (bits - 1)), 1<<(bits-1)-1
		seen := make(map[complex128]bool)
		for _, c := range pam.Constellation() {
			v := Perturbation([]complex128{c})[0]
			re, im := real(v), imag(v)
			if re != math.Trunc(re) || im != math.Trunc(im) {
				t.Fatalf("bits=%d: non-integer perturbation %v", bits, v)
			}
			if int(re) < lo || int(re) > hi || int(im) < lo || int(im) > hi {
				t.Fatalf("bits=%d: perturbation %v outside [%d,%d]", bits, v, lo, hi)
			}
			seen[v] = true
		}
		if len(seen) != pam.ConstellationSize() {
			t.Fatalf("bits=%d: alphabet has %d distinct values, want %d", bits, len(seen), pam.ConstellationSize())
		}
		if !seen[0] {
			t.Fatalf("bits=%d: alphabet misses zero", bits)
		}
	}
}

// TestIsingEnergyIsTransmitPower is the definitional property: the Ising
// energy of any assignment equals the VP objective ‖P(s+τv)‖² of the
// perturbation that assignment encodes.
func TestIsingEnergyIsTransmitPower(t *testing.T) {
	src := rng.New(501)
	for _, tc := range []struct {
		mod    modulation.Modulation
		nu, nt int
		bits   int
	}{
		{modulation.BPSK, 3, 4, 1},
		{modulation.QPSK, 4, 4, 1},
		{modulation.QPSK, 3, 5, 2},
		{modulation.QAM16, 2, 3, 1},
		{modulation.QAM16, 2, 2, 3},
	} {
		h := channel.Rayleigh{}.Generate(src, tc.nu, tc.nt)
		prog, err := Compile(tc.mod, h, tc.bits)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			s := randomSymbols(src, tc.mod, tc.nu)
			ising := prog.Ising(s)
			for draw := 0; draw < 16; draw++ {
				spins := make([]int8, ising.N)
				for i := range spins {
					spins[i] = int8(2*src.Intn(2) - 1)
				}
				v := perturbationFromSpins(prog.PerturbMod(), spins)
				want := prog.Gamma(s, v)
				got := ising.Energy(spins)
				if !relClose(got, want, 1e-9) {
					t.Fatalf("%v nu=%d bits=%d: energy %g != transmit power %g",
						tc.mod, tc.nu, tc.bits, got, want)
				}
			}
		}
	}
}

// TestCompiledBitIdenticalToOneShot proves the compile+bias path produces
// bit-for-bit the same Ising program as a fresh one-shot reduction for every
// symbol vector — i.e. the shared-coupling execute phase leaves no residue
// across calls and the compile is deterministic.
func TestCompiledBitIdenticalToOneShot(t *testing.T) {
	src := rng.New(502)
	for _, tc := range []struct {
		mod    modulation.Modulation
		nu, nt int
		bits   int
	}{
		{modulation.BPSK, 4, 6, 1},
		{modulation.QPSK, 5, 5, 1},
		{modulation.QAM16, 3, 4, 2},
		{modulation.QPSK, 2, 2, 3},
	} {
		h := channel.RandomPhase{}.Generate(src, tc.nu, tc.nt)
		prog, err := Compile(tc.mod, h, tc.bits)
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately interleave several symbol vectors through the SAME
		// compiled program before comparing, so coupling-storage reuse across
		// Biases calls is exercised.
		syms := make([][]complex128, 6)
		for i := range syms {
			syms[i] = randomSymbols(src, tc.mod, tc.nu)
		}
		for _, s := range syms {
			prog.Ising(s)
		}
		for _, s := range syms {
			got := prog.Ising(s)
			want, err := Reduce(tc.mod, h, tc.bits, s)
			if err != nil {
				t.Fatal(err)
			}
			if got.N != want.N {
				t.Fatalf("size mismatch: %d vs %d", got.N, want.N)
			}
			if math.Float64bits(got.Offset) != math.Float64bits(want.Offset) {
				t.Fatalf("offset differs: %x vs %x", got.Offset, want.Offset)
			}
			for i := 0; i < got.N; i++ {
				if math.Float64bits(got.H[i]) != math.Float64bits(want.H[i]) {
					t.Fatalf("field %d differs: %g vs %g", i, got.H[i], want.H[i])
				}
				for j := i + 1; j < got.N; j++ {
					if math.Float64bits(got.GetJ(i, j)) != math.Float64bits(want.GetJ(i, j)) {
						t.Fatalf("coupling (%d,%d) differs: %g vs %g", i, j, got.GetJ(i, j), want.GetJ(i, j))
					}
				}
			}
		}
	}
}

// TestBruteForceMatchesExhaustiveSearch proves the reduction's ground state
// is the exhaustive VP optimum: minimizing the Ising objective over all spin
// assignments equals minimizing ‖P(s+τv)‖² over the whole perturbation
// alphabet.
func TestBruteForceMatchesExhaustiveSearch(t *testing.T) {
	src := rng.New(503)
	for _, tc := range []struct {
		mod  modulation.Modulation
		nu   int
		bits int
	}{
		{modulation.QPSK, 3, 1},
		{modulation.QAM16, 2, 1},
		{modulation.BPSK, 4, 1},
		{modulation.QPSK, 2, 2},
	} {
		h := channel.Rayleigh{}.Generate(src, tc.nu, tc.nu+1)
		prog, err := Compile(tc.mod, h, tc.bits)
		if err != nil {
			t.Fatal(err)
		}
		s := randomSymbols(src, tc.mod, tc.nu)

		// Exhaustive search over the alphabet.
		pam := prog.PerturbMod()
		points := pam.Constellation()
		best := math.Inf(1)
		v := make([]complex128, tc.nu)
		var walk func(k int)
		walk = func(k int) {
			if k == tc.nu {
				perturb := Perturbation(v)
				if g := prog.Gamma(s, perturb); g < best {
					best = g
				}
				return
			}
			for _, c := range points {
				v[k] = c
				walk(k + 1)
			}
		}
		walk(0)

		_, ground := qubo.BruteForceIsing(prog.Ising(s))
		if !relClose(ground, best, 1e-9) {
			t.Fatalf("%v nu=%d bits=%d: Ising ground %g != exhaustive VP optimum %g",
				tc.mod, tc.nu, tc.bits, ground, best)
		}
		if zf := prog.ZFGamma(s); best > zf*(1+1e-12) {
			t.Fatalf("VP optimum %g worse than no-perturbation baseline %g", best, zf)
		}
	}
}

// TestModTauRecovery proves the receiver-side modulo-τ operation strips any
// alphabet perturbation exactly on a noise-free link.
func TestModTauRecovery(t *testing.T) {
	src := rng.New(504)
	for _, mod := range modulation.All() {
		tau := Tau(mod)
		for bits := 1; bits <= MaxPerturbBits; bits++ {
			pam, err := PerturbModulation(bits)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 64; trial++ {
				s := randomSymbols(src, mod, 1)[0]
				vpam := pam.Constellation()[src.Intn(pam.ConstellationSize())]
				v := Perturbation([]complex128{vpam})[0]
				got := Receive(mod, tau, []complex128{s + complex(tau, 0)*v})[0]
				if got != s {
					t.Fatalf("%v bits=%d: recovered %v, sent %v (v=%v)", mod, bits, got, s, v)
				}
			}
		}
	}
}

func TestCompileValidation(t *testing.T) {
	src := rng.New(505)
	wide := channel.Rayleigh{}.Generate(src, 4, 2) // more users than antennas
	if _, err := Compile(modulation.QPSK, wide, 1); err == nil {
		t.Fatal("accepted more users than antennas")
	}
	ok := channel.Rayleigh{}.Generate(src, 2, 4)
	if _, err := Compile(modulation.QPSK, ok, 9); err == nil {
		t.Fatal("accepted out-of-range perturbation bits")
	}
	singular := linalg.NewMat(2, 2) // rank-deficient
	if _, err := Compile(modulation.QPSK, singular, 1); err == nil {
		t.Fatal("accepted singular channel")
	}
	if _, err := Compile(modulation.Modulation(99), ok, 1); err == nil {
		t.Fatal("accepted unknown modulation")
	}
	prog, err := Compile(modulation.QPSK, ok, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prog.PerturbBits() != DefaultPerturbBits {
		t.Fatalf("default bits = %d", prog.PerturbBits())
	}
	if prog.LogicalSpins() != 2*2*DefaultPerturbBits {
		t.Fatalf("logical spins = %d", prog.LogicalSpins())
	}
	if prog.Key() == 0 {
		t.Fatal("zero channel key")
	}
}

// TestRightInverseProperty pins the precoder math: H·P = I and the
// VP channel is its −τ/2 scaling.
func TestRightInverseProperty(t *testing.T) {
	src := rng.New(506)
	h := channel.Rayleigh{}.Generate(src, 3, 5)
	prog, err := Compile(modulation.QAM16, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	prod := linalg.Mul(h, prog.Inverse())
	if d := linalg.MaxAbsDiff(prod, linalg.Identity(3)); d > 1e-9 {
		t.Fatalf("H·P deviates from identity by %g", d)
	}
	if prog.Tau() != 8 { // 16-QAM: L = 4 levels per dimension
		t.Fatalf("tau = %g", prog.Tau())
	}
	hvp := prog.VPChannel()
	for i := range hvp.Data {
		if hvp.Data[i] != complex(-prog.Tau()/2, 0)*prog.Inverse().Data[i] {
			t.Fatal("VP channel is not −τ/2 · P")
		}
	}
}

// TestCacheSharing proves concurrent lookups converge on one shared program
// per (channel, bits) and that eviction respects capacity.
func TestCacheSharing(t *testing.T) {
	src := rng.New(507)
	cache := NewCache(2)
	h := channel.Rayleigh{}.Generate(src, 3, 4)

	const workers = 8
	progs := make([]*Program, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := cache.Get(modulation.QPSK, h, 1)
			if err != nil {
				t.Error(err)
				return
			}
			progs[w] = p
		}(w)
	}
	wg.Wait()
	for _, p := range progs[1:] {
		if p != progs[0] {
			t.Fatal("concurrent Get returned distinct programs")
		}
	}
	// Get deliberately compiles outside the lock, so several concurrent
	// misses are legal (the race loser's program is discarded); every call
	// still counts exactly one hit or miss.
	st := cache.Stats()
	if st.Hits+st.Misses != workers || st.Misses < 1 {
		t.Fatalf("stats after warm loop: %+v", st)
	}

	// Different bit depth is a different program.
	p2, err := cache.Get(modulation.QPSK, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == progs[0] {
		t.Fatal("bit depths share a cache entry")
	}
	// Two more channels overflow the 2-entry capacity.
	for i := 0; i < 2; i++ {
		hh := channel.Rayleigh{}.Generate(src, 3, 4)
		if _, err := cache.Get(modulation.QPSK, hh, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions at capacity 2: %+v", st)
	}
}
