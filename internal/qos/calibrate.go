package qos

import (
	"fmt"
	"math"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/detector"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// ClassSpec names one problem class of the calibration grid.
type ClassSpec struct {
	// Mod is the modulation; Nts the transmitter counts to fit; SNRsDB the
	// SNR grid per size.
	Mod    modulation.Modulation
	Nts    []int
	SNRsDB []float64
}

// CalibrationConfig controls a Calibrate run. The zero value is completed
// with the defaults noted per field.
type CalibrationConfig struct {
	// Classes is the fit grid (default: DefaultCalibrationClasses()).
	Classes []ClassSpec
	// Instances is the sample size per grid point (default 8). Statistics
	// are medians across instances, following the paper's Fix methodology
	// (§5.3.2).
	Instances int
	// MeasureReads is Na for each measurement run (default 200; larger
	// values resolve smaller p0).
	MeasureReads int
	// Reverse additionally fits the reverse-annealing operating mode.
	Reverse bool
	// Graph is the chip model (default chimera.DW2Q()); Machine the
	// simulator (default anneal.NewMachine()).
	Graph   *chimera.Graph
	Machine *anneal.Machine
	// Seed drives instance generation and the annealer (default 1).
	Seed int64
	// Logf receives per-point progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

// DefaultCalibrationClasses returns the serving-relevant fit grid: the
// paper's uplink classes (BPSK/QPSK up to large Nt, 16-QAM to the sizes the
// chip embeds) over the 5–30 dB SNR band of §5.4.
func DefaultCalibrationClasses() []ClassSpec {
	snrs := []float64{5, 10, 15, 20, 25, 30}
	return []ClassSpec{
		{Mod: modulation.BPSK, Nts: []int{4, 8, 16, 32, 48}, SNRsDB: snrs},
		{Mod: modulation.QPSK, Nts: []int{2, 4, 8, 16, 24}, SNRsDB: snrs},
		{Mod: modulation.QAM16, Nts: []int{2, 4, 8, 12}, SNRsDB: snrs},
	}
}

// classJF mirrors the Fix strategy's per-class chain strength (see
// experiments.ClassFix): higher-order modulations need stronger chains
// before the hardware rescale stops squeezing them.
func classJF(mod modulation.Modulation) float64 {
	switch mod {
	case modulation.QAM16:
		return 12
	case modulation.QAM64:
		return 16
	default:
		return 4
	}
}

// Calibrate fits a TTS table by measuring solution distributions on the
// simulated annealer — the same microbenchmark methodology as the Fig. 5–7
// TTS experiments (internal/experiments/tts.go), applied at finite SNR so
// the fit covers the serving regime. The run is deterministic given the
// config.
func Calibrate(cfg CalibrationConfig) (*Table, error) {
	if cfg.Classes == nil {
		cfg.Classes = DefaultCalibrationClasses()
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 8
	}
	if cfg.MeasureReads <= 0 {
		cfg.MeasureReads = 200
	}
	if cfg.Graph == nil {
		cfg.Graph = chimera.DW2Q()
	}
	if cfg.Machine == nil {
		cfg.Machine = anneal.NewMachine()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	t := &Table{
		Note: fmt.Sprintf("calibrated: %d instances/point, %d reads/run, seed %d",
			cfg.Instances, cfg.MeasureReads, cfg.Seed),
	}
	src := rng.New(cfg.Seed)
	for _, class := range cfg.Classes {
		op := ClassOp{
			Mod: class.Mod.String(), JF: classJF(class.Mod),
			Ta: 1, Tp: 1, Sp: 0.35,
		}
		t.Ops = append(t.Ops, op)
		dec, err := core.New(core.Options{
			Graph:   cfg.Graph,
			Machine: cfg.Machine,
			JF:      op.JF, ImprovedRange: true,
			Params: anneal.Params{
				AnnealTimeMicros: op.Ta, PauseTimeMicros: op.Tp,
				PausePosition: op.Sp, NumAnneals: cfg.MeasureReads,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("qos: calibrate %v: %w", class.Mod, err)
		}
		for _, nt := range class.Nts {
			for _, snr := range class.SNRsDB {
				pts, err := measurePoint(dec, class.Mod, nt, snr, cfg, src)
				if err != nil {
					return nil, fmt.Errorf("qos: calibrate %v nt=%d snr=%g: %w",
						class.Mod, nt, snr, err)
				}
				t.Points = append(t.Points, pts...)
				for _, p := range pts {
					logf("qos: fitted %s nt=%d snr=%gdB mode=%s p0=%.3f floor=%.2e spread=%.2e",
						p.Mod, p.Nt, p.SNRdB, p.Mode, p.P0, p.FloorBER, p.SpreadBER)
				}
			}
		}
	}
	return t, t.Validate()
}

// measurePoint measures one grid point: median-of-instances distribution
// statistics in forward (and optionally reverse) mode.
func measurePoint(dec *core.Decoder, mod modulation.Modulation, nt int, snrDB float64, cfg CalibrationConfig, src *rng.Source) ([]Point, error) {
	type acc struct{ p0s, floors, spreads []float64 }
	var fwd, rev acc
	for i := 0; i < cfg.Instances; i++ {
		in, err := mimo.Generate(src, mimo.Config{
			Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snrDB,
		})
		if err != nil {
			return nil, err
		}
		out, err := dec.DecodeInstance(in, src)
		if err != nil {
			return nil, err
		}
		p0, floor, spread := distStats(out.Distribution)
		fwd.p0s = append(fwd.p0s, p0)
		fwd.floors = append(fwd.floors, floor)
		fwd.spreads = append(fwd.spreads, spread)

		if cfg.Reverse {
			rout, err := dec.DecodeInstanceReverse(in, src)
			if err != nil {
				// Reverse needs a linear seed; a singular channel draw simply
				// contributes no reverse sample.
				continue
			}
			p0, floor, spread = distStats(rout.Distribution)
			rev.p0s = append(rev.p0s, p0)
			rev.floors = append(rev.floors, floor)
			rev.spreads = append(rev.spreads, spread)
		}
	}
	pts := []Point{{
		Mod: mod.String(), Nt: nt, SNRdB: snrDB, Mode: ModeForward,
		P0:       metrics.Median(fwd.p0s),
		FloorBER: metrics.Median(fwd.floors), SpreadBER: metrics.Median(fwd.spreads),
	}}
	if cfg.Reverse && len(rev.p0s) > 0 {
		pts = append(pts, Point{
			Mod: mod.String(), Nt: nt, SNRdB: snrDB, Mode: ModeReverse,
			P0:       metrics.Median(rev.p0s),
			FloorBER: metrics.Median(rev.floors), SpreadBER: metrics.Median(rev.spreads),
		})
	}
	return pts, nil
}

// distStats extracts the planner model's ingredients from one measured
// solution distribution: the best-rank probability p0, the best-rank BER
// floor, and the occurrence-weighted mean BER of the remaining ranks.
func distStats(d *metrics.Distribution) (p0, floor, spread float64) {
	if d == nil || d.Total == 0 || len(d.Solutions) == 0 {
		return 0, 1, 0
	}
	best := d.Solutions[0]
	p0 = float64(best.Count) / float64(d.Total)
	floor = float64(best.BitErrors) / float64(d.N)
	rest := d.Total - best.Count
	if rest == 0 {
		return p0, floor, 0
	}
	var werr float64
	for _, s := range d.Solutions[1:] {
		werr += float64(s.Count) * float64(s.BitErrors) / float64(d.N)
	}
	spread = werr / float64(rest)
	return p0, floor, spread
}

// EstimateSNRdB estimates the receive SNR of one channel use from its own
// data: detect with zero-forcing, rebuild the noiseless signal from the
// hard decisions, and compare signal to residual power. At serving SNRs the
// ZF decisions are mostly correct, so the residual is dominated by noise;
// the estimate biases high at very low SNR, where the planner's
// below-fit-range guard takes over. ok is false when the channel is too
// ill-conditioned to invert.
func EstimateSNRdB(mod modulation.Modulation, h *linalg.Mat, y []complex128) (float64, bool) {
	res, err := detector.ZeroForcing(mod, h, y)
	if err != nil {
		return 0, false
	}
	signal := linalg.MulVec(h, res.Symbols)
	sig := linalg.Norm2(signal)
	noise := linalg.Norm2(linalg.VecSub(y, signal))
	if sig == 0 {
		return 0, false
	}
	if noise == 0 {
		return math.Inf(1), true
	}
	return channel.SNRLinearToDB(sig / noise), true
}
