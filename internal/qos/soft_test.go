package qos

import (
	"testing"

	"quamax/internal/modulation"
)

// TestPlanSoftTargetRelief checks the LLR-aware effective-BER adjustment: a
// soft request plans fewer reads than the same hard request, because the
// soft FEC chain absorbs SoftTargetRelief× the raw error rate.
func TestPlanSoftTargetRelief(t *testing.T) {
	pl := testPlanner(t)
	hard := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 20, TargetBER: 1e-6})
	soft := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 20, TargetBER: 1e-6, Soft: true})
	if !hard.Quantum || !soft.Quantum {
		t.Fatalf("plans: hard %+v soft %+v, want both quantum", hard, soft)
	}
	if soft.Params.NumAnneals >= hard.Params.NumAnneals {
		t.Fatalf("soft plan %d reads not below hard plan %d reads",
			soft.Params.NumAnneals, hard.Params.NumAnneals)
	}
	// (1−0.6)^Na·0.1 ≤ 4e-6 → Na = ceil(log(4e-5)/log(0.4)) — the relieved
	// inversion, checked exactly.
	if want := 12; soft.Params.NumAnneals != want {
		t.Fatalf("soft reads = %d, want %d", soft.Params.NumAnneals, want)
	}
}

// TestPlanSoftNeverReverse checks soft requests plan forward even when the
// reverse operating point is cheaper for the class.
func TestPlanSoftNeverReverse(t *testing.T) {
	pl := testPlanner(t)
	// At 10 dB the reverse mode (P0 = 0.7) beats forward (P0 = 0.2) for hard
	// requests (TestPlanPrefersReverseWhenCheaper); soft must stay forward.
	hard := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 0.05})
	if !hard.Reverse {
		t.Fatalf("hard plan %+v did not pick reverse — test premise broken", hard)
	}
	soft := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 0.05, Soft: true})
	if !soft.Quantum || soft.Reverse {
		t.Fatalf("soft plan %+v, want forward quantum", soft)
	}
}

// TestPlanSoftFloorGuardStillApplies: relief does not resurrect classes
// whose floor exceeds even the relieved target.
func TestPlanSoftFloorGuardStillApplies(t *testing.T) {
	pl := testPlanner(t)
	// Floor at Nt=4, 10 dB is 0.01 (both modes); a 1e-3 target stays
	// unreachable even ×4.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 1e-3, Soft: true})
	if plan.Quantum || plan.Reason != ReasonFloorAboveTarget {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonFloorAboveTarget)
	}
}

// TestPlannerStatsCountSoft checks the Soft counter and its String rendering.
func TestPlannerStatsCountSoft(t *testing.T) {
	pl := testPlanner(t)
	pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4, Soft: true})
	pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4})
	st := pl.Stats()
	if st.Plans != 2 || st.Soft != 1 {
		t.Fatalf("stats = %+v, want 2 plans, 1 soft", st)
	}
}
