package qos

import (
	"math"
	"path/filepath"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// testTable is a small hand-built fit: QPSK at Nt ∈ {4, 8}, 10–30 dB, with
// a reverse mode at Nt=4 that needs fewer reads at low SNR.
func testTable() *Table {
	return &Table{
		Ops: []ClassOp{{Mod: "QPSK", JF: 4, Ta: 1, Tp: 1, Sp: 0.35}},
		Points: []Point{
			{Mod: "QPSK", Nt: 4, SNRdB: 10, Mode: ModeForward, P0: 0.2, FloorBER: 0.01, SpreadBER: 0.2},
			{Mod: "QPSK", Nt: 4, SNRdB: 20, Mode: ModeForward, P0: 0.6, FloorBER: 0, SpreadBER: 0.1},
			{Mod: "QPSK", Nt: 4, SNRdB: 30, Mode: ModeForward, P0: 0.9, FloorBER: 0, SpreadBER: 0.05},
			{Mod: "QPSK", Nt: 4, SNRdB: 10, Mode: ModeReverse, P0: 0.7, FloorBER: 0.01, SpreadBER: 0.2},
			{Mod: "QPSK", Nt: 8, SNRdB: 10, Mode: ModeForward, P0: 0.1, FloorBER: 0.02, SpreadBER: 0.25},
			{Mod: "QPSK", Nt: 8, SNRdB: 30, Mode: ModeForward, P0: 0.7, FloorBER: 0, SpreadBER: 0.08},
		},
	}
}

func testPlanner(t *testing.T) *Planner {
	t.Helper()
	pl, err := NewPlanner(testTable())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPlanSizesReadsToTarget(t *testing.T) {
	pl := testPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4})
	if !plan.Quantum || plan.Reason != ReasonFit {
		t.Fatalf("plan = %+v, want quantum fit", plan)
	}
	// (1−0.9)^Na · 0.05 ≤ 1e-4 → Na = ceil(log(2e-3)/log(0.1)) = 3.
	if plan.Params.NumAnneals != 3 {
		t.Fatalf("reads = %d, want 3", plan.Params.NumAnneals)
	}
	if plan.PredictedBER > 1e-4 {
		t.Fatalf("predicted BER %g above target", plan.PredictedBER)
	}
	if want := 3 * 2.0; plan.PredictedMicros != want {
		t.Fatalf("predicted device time %g µs, want %g", plan.PredictedMicros, want)
	}

	// A tighter target at lower SNR needs more reads.
	harder := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 20, TargetBER: 1e-6})
	if !harder.Quantum || harder.Params.NumAnneals <= plan.Params.NumAnneals {
		t.Fatalf("harder plan %+v not larger than easy plan %+v", harder, plan)
	}
}

func TestPlanDeadlineShorterThanOneAnneal(t *testing.T) {
	pl := testPlanner(t)
	// The class operating point is Ta+Tp = 2 µs; a 1 µs deadline cannot fit
	// a single anneal.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-3, DeadlineMicros: 1})
	if plan.Quantum || plan.Reason != ReasonDeadlineBelowAnneal {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonDeadlineBelowAnneal)
	}
}

func TestPlanDeadlineCapsReads(t *testing.T) {
	pl := testPlanner(t)
	// Needs 3 reads (6 µs) at 30 dB; a 4 µs deadline fits only 2.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4, DeadlineMicros: 4})
	if plan.Quantum || plan.Reason != ReasonDeadlineExceeded {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonDeadlineExceeded)
	}
	// A deadline that fits the budget passes through.
	plan = pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4, DeadlineMicros: 6})
	if !plan.Quantum || plan.Params.NumAnneals != 3 {
		t.Fatalf("plan = %+v, want 3-read quantum plan", plan)
	}
}

func TestPlanSNRBelowFittedRange(t *testing.T) {
	pl := testPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 3, TargetBER: 1e-3})
	if plan.Quantum || plan.Reason != ReasonSNRBelowFit {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonSNRBelowFit)
	}
	// Above the fitted range clamps to the top point instead.
	plan = pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 60, TargetBER: 1e-3})
	if !plan.Quantum {
		t.Fatalf("plan above fit range = %+v, want quantum", plan)
	}
}

func TestPlanOversizedNt(t *testing.T) {
	pl := testPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 64, SNRdB: 30, TargetBER: 1e-3})
	if plan.Quantum || plan.Reason != ReasonOversizeNt {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonOversizeNt)
	}
	// Between fitted sizes, the planner rounds Nt up (conservative): Nt=6
	// plans from the Nt=8 curve, whose 30 dB point has p0=0.7, spread=0.08:
	// (0.3)^Na·0.08 ≤ 1e-3 → Na = ceil(log(0.0125)/log(0.3)) = 4.
	plan = pl.Plan(Request{Mod: modulation.QPSK, Nt: 6, SNRdB: 30, TargetBER: 1e-3})
	if !plan.Quantum || plan.Params.NumAnneals != 4 {
		t.Fatalf("plan = %+v, want 4 reads from the Nt=8 curve", plan)
	}
}

func TestPlanUnfittedModulation(t *testing.T) {
	pl := testPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QAM64, Nt: 2, SNRdB: 30, TargetBER: 1e-3})
	if plan.Quantum || plan.Reason != ReasonUnfittedClass {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonUnfittedClass)
	}
}

func TestPlanFloorAboveTarget(t *testing.T) {
	pl := testPlanner(t)
	// The 10 dB floor is 0.01; a 1e-3 target can never converge there.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 1e-3})
	if plan.Quantum || plan.Reason != ReasonFloorAboveTarget {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonFloorAboveTarget)
	}
}

func TestPlanPrefersReverseWhenCheaper(t *testing.T) {
	pl := testPlanner(t)
	// At 10 dB / Nt=4 the reverse fit (p0=0.7) dominates the forward one
	// (p0=0.2) for a target above the shared 0.01 floor.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 0.05})
	if !plan.Quantum || !plan.Reverse {
		t.Fatalf("plan = %+v, want reverse quantum plan", plan)
	}
}

func TestPlanNoTargetUsesDefaultBudget(t *testing.T) {
	pl := testPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 20})
	if !plan.Quantum || plan.Reason != ReasonNoTarget || plan.Params.NumAnneals != 100 {
		t.Fatalf("plan = %+v, want 100-read default budget", plan)
	}
}

func TestPlanReadsCap(t *testing.T) {
	pl := testPlanner(t)
	pl.MaxReads = 5
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 8, SNRdB: 10, TargetBER: 0.021})
	if plan.Quantum || plan.Reason != ReasonReadsCap {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonReadsCap)
	}
}

func TestPlannerStats(t *testing.T) {
	pl := testPlanner(t)
	pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4})
	pl.Plan(Request{Mod: modulation.QPSK, Nt: 64, SNRdB: 30, TargetBER: 1e-3})
	st := pl.Stats()
	if st.Plans != 2 || st.Quantum != 1 || st.Classical != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReadsPlanned != 3 || st.ByReason[ReasonFit] != 1 || st.ByReason[ReasonOversizeNt] != 1 {
		t.Fatalf("stats detail = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats rendering")
	}
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tts.json")
	want := testTable()
	want.Note = "round trip"
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != want.Note || len(got.Points) != len(want.Points) || len(got.Ops) != len(want.Ops) {
		t.Fatalf("loaded %+v", got)
	}
	if got.Points[0] != want.Points[0] {
		t.Fatalf("point drift: %+v vs %+v", got.Points[0], want.Points[0])
	}
}

func TestBuiltinTableValidates(t *testing.T) {
	tab := BuiltinTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// The builtin fit must cover the serving classes the examples and
	// benchmarks rely on.
	for _, c := range []struct {
		mod modulation.Modulation
		nt  int
	}{{modulation.BPSK, 8}, {modulation.QPSK, 8}, {modulation.QAM16, 4}} {
		if _, ok, reason := tab.classCurve(c.mod, c.nt, ModeForward); !ok {
			t.Fatalf("builtin table misses %v nt=%d: %s", c.mod, c.nt, reason)
		}
	}
}

// Calibrate on a small chip and grid must produce a usable, monotone-ish fit
// the planner can serve from.
func TestCalibrateSmokeAndPlanFromFit(t *testing.T) {
	tab, err := Calibrate(CalibrationConfig{
		Classes: []ClassSpec{{
			Mod: modulation.QPSK, Nts: []int{2}, SNRsDB: []float64{15, 30},
		}},
		Instances:    3,
		MeasureReads: 60,
		Reverse:      true,
		Graph:        chimera.New(4),
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Points) < 2 {
		t.Fatalf("calibration produced %d points", len(tab.Points))
	}
	for _, p := range tab.Points {
		if p.P0 <= 0 {
			t.Fatalf("point %+v: non-positive p0 (4-user QPSK at ≥15 dB should sample its best rank)", p)
		}
	}
	pl, err := NewPlanner(tab)
	if err != nil {
		t.Fatal(err)
	}
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 2, SNRdB: 30, TargetBER: 1e-3})
	if !plan.Quantum || plan.Params.NumAnneals < 1 {
		t.Fatalf("plan from fresh fit = %+v", plan)
	}
}

func TestEstimateSNRdB(t *testing.T) {
	src := rng.New(11)
	for _, snr := range []float64{15, 25} {
		var got []float64
		for i := 0; i < 12; i++ {
			in, err := mimo.Generate(src, mimo.Config{
				Mod: modulation.QPSK, Nt: 4, Nr: 4,
				Channel: channel.RandomPhase{}, SNRdB: snr,
			})
			if err != nil {
				t.Fatal(err)
			}
			est, ok := EstimateSNRdB(in.Mod, in.H, in.Y)
			if !ok {
				t.Fatal("estimator failed on a well-conditioned channel")
			}
			got = append(got, est)
		}
		var mean float64
		for _, g := range got {
			mean += g
		}
		mean /= float64(len(got))
		if math.Abs(mean-snr) > 6 {
			t.Fatalf("mean SNR estimate %.1f dB for true %g dB", mean, snr)
		}
	}
}

func TestEstimateSNRdBNoiseFree(t *testing.T) {
	in, err := mimo.Generate(rng.New(3), mimo.Config{
		Mod: modulation.QPSK, Nt: 2, Nr: 2,
		Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	est, ok := EstimateSNRdB(in.Mod, in.H, in.Y)
	if !ok || est < 60 {
		t.Fatalf("noise-free estimate = %g, ok=%t", est, ok)
	}
}

func TestEstimateSNRdBSingularChannel(t *testing.T) {
	h := linalg.NewMat(2, 2) // all-zero channel: ZF must fail
	if _, ok := EstimateSNRdB(modulation.QPSK, h, []complex128{0, 0}); ok {
		t.Fatal("estimator claimed success on a singular channel")
	}
}

func TestPlanCarriesClassChainStrength(t *testing.T) {
	pl, err := NewPlanner(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The builtin 16-QAM fit was measured at |J_F| = 12; the plan must say
	// so or the model's statistics do not apply to the run.
	plan := pl.Plan(Request{Mod: modulation.QAM16, Nt: 2, SNRdB: 30, TargetBER: 0.05})
	if !plan.Quantum || plan.JF != 12 {
		t.Fatalf("plan = %+v, want quantum with JF=12", plan)
	}
	plan = pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 0.05})
	if !plan.Quantum || plan.JF != 4 {
		t.Fatalf("plan = %+v, want quantum with JF=4", plan)
	}
}

func TestPlanDenialCarriesBestEffortBudget(t *testing.T) {
	pl := testPlanner(t)
	// Needs 3 reads (6 µs) at 30 dB; a 4 µs deadline fits only 2 — denied,
	// but the clamped 2-read budget rides along for fallback-less pools.
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4, DeadlineMicros: 4})
	if plan.Quantum || plan.Reason != ReasonDeadlineExceeded {
		t.Fatalf("plan = %+v, want denial", plan)
	}
	if plan.Params.NumAnneals != 2 || plan.JF != 4 {
		t.Fatalf("denial best-effort budget = %+v, want 2 reads at JF=4", plan.Params)
	}
	if plan.PredictedBER <= 1e-4 {
		t.Fatalf("clamped predicted BER %g should sit above the target", plan.PredictedBER)
	}
	// Non-deadline denials carry no budget.
	plan = pl.Plan(Request{Mod: modulation.QPSK, Nt: 64, SNRdB: 30, TargetBER: 1e-3})
	if plan.Params.NumAnneals != 0 {
		t.Fatalf("oversize denial carried a budget: %+v", plan)
	}
}
