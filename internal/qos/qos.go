// Package qos plans the anneal budget of each decode request — the
// data-center-side QoS brain the paper's serving argument requires (§5.3,
// Figs. 5–13): time-to-solution varies sharply with problem size, modulation
// and SNR, so a C-RAN deployment only meets frame deadlines if it sizes the
// number of reads (anneals), the anneal time, and the solver choice per
// request instead of running a fixed configuration.
//
// The planner is driven by a fitted TTS table: for each problem class
// (modulation, Nt) and a grid of SNR points it stores the measured per-anneal
// success probability p0 (the TTS ingredient of §5.2.1), the BER floor of the
// best-rank solution, and the BER spread of the non-best samples, measured
// with the same microbenchmark methodology as internal/experiments/tts.go.
// From these, the expected BER after Na anneals follows the Eq. 9 shape
//
//	E[BER](Na) ≈ floor + (1−p0)^Na · spread,
//
// which inverts to the read budget required for a target BER. The planner
// then checks the budget against the request deadline and the device read
// cap, decides between forward annealing, reverse annealing (when the fitted
// reverse operating point needs fewer reads — §8 [68]), and the classical
// fallback, and emits concrete anneal.Params for the backend.
//
// Tables come from three sources, in order of preference: a calibration run
// (Calibrate, persisted as JSON via Table.Save/Load — the quamax-serve
// -calibrate path), or the built-in coefficients of BuiltinTable measured on
// the repository's calibrated simulator. The hybrid-dispatch framing follows
// Kim et al. (arXiv:2010.00682); the do-not-over-provision-reads argument is
// the cost/power case of Kasi et al. (arXiv:2109.01465).
package qos

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/modulation"
	"quamax/internal/telemetry"
)

// Mode selects the annealing style a table point was fitted under.
type Mode string

// The two fitted annealing modes.
const (
	// ModeForward is the paper's standard forward anneal from the uniform
	// superposition.
	ModeForward Mode = "forward"
	// ModeReverse is reverse annealing seeded from a linear detector's
	// decision (§8 future work, Venturelli & Kondratyev [68]).
	ModeReverse Mode = "reverse"
)

// Point is one fitted TTS grid point: the measured solution-quality
// statistics of one (modulation, Nt, SNR, mode) problem class under the
// class's fixed operating point.
type Point struct {
	// Mod is the modulation name (modulation.Parse format).
	Mod string `json:"mod"`
	// Nt is the transmitter (user) count of the class.
	Nt int `json:"nt"`
	// SNRdB is the receive SNR the class was measured at.
	SNRdB float64 `json:"snr_db"`
	// Mode is the annealing style the statistics were measured under.
	Mode Mode `json:"mode"`
	// P0 is the measured per-anneal probability of sampling the best-rank
	// (lowest-energy observed) solution — the success probability TTS(P)
	// divides by (§5.2.1).
	P0 float64 `json:"p0"`
	// FloorBER is the bit error rate of the best-rank solution itself — the
	// Na→∞ limit of Eq. 9. A target below the floor is unreachable on the
	// annealer no matter the read budget.
	FloorBER float64 `json:"floor_ber"`
	// SpreadBER is the mean bit error rate of the non-best samples — the
	// excess error paid when a run never draws the best rank.
	SpreadBER float64 `json:"spread_ber"`
}

// ClassOp is the fitted fixed operating point of one modulation class — the
// paper's Fix strategy (§5.3.2): the annealer parameters that optimize
// medians across instances of the class.
type ClassOp struct {
	// Mod is the modulation name.
	Mod string `json:"mod"`
	// JF is the ferromagnetic chain strength |J_F|.
	JF float64 `json:"jf"`
	// Ta is the anneal time in µs.
	Ta float64 `json:"ta"`
	// Tp is the mid-anneal pause in µs.
	Tp float64 `json:"tp"`
	// Sp is the pause position in (0,1).
	Sp float64 `json:"sp"`
}

// Table is a fitted TTS model: per-class operating points plus the measured
// grid the planner interpolates over.
type Table struct {
	// Note describes the fit provenance (calibration scale, seed).
	Note string `json:"note,omitempty"`
	// Ops lists one fixed operating point per modulation class.
	Ops []ClassOp `json:"ops"`
	// Points is the measured grid, any order.
	Points []Point `json:"points"`
}

// Save writes the table as indented JSON.
func (t *Table) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a table written by Save.
func Load(path string) (*Table, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := new(Table)
	if err := json.Unmarshal(b, t); err != nil {
		return nil, fmt.Errorf("qos: parse %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("qos: %s: %w", path, err)
	}
	return t, nil
}

// Validate checks the table for usable, in-range entries.
func (t *Table) Validate() error {
	if len(t.Points) == 0 {
		return errors.New("table has no points")
	}
	for _, p := range t.Points {
		if _, err := modulation.Parse(p.Mod); err != nil {
			return fmt.Errorf("point %+v: %w", p, err)
		}
		if p.Nt < 1 {
			return fmt.Errorf("point %+v: non-positive Nt", p)
		}
		if p.P0 < 0 || p.P0 > 1 {
			return fmt.Errorf("point %+v: p0 outside [0,1]", p)
		}
		if p.Mode != ModeForward && p.Mode != ModeReverse {
			return fmt.Errorf("point %+v: unknown mode", p)
		}
	}
	for _, op := range t.Ops {
		if _, err := modulation.Parse(op.Mod); err != nil {
			return fmt.Errorf("op %+v: %w", op, err)
		}
		if op.Ta <= 0 {
			return fmt.Errorf("op %+v: non-positive Ta", op)
		}
	}
	return nil
}

// op returns the operating point for mod, defaulting to the paper's Fix
// settings when the table carries none.
func (t *Table) op(mod modulation.Modulation) ClassOp {
	name := mod.String()
	for _, op := range t.Ops {
		if op.Mod == name {
			return op
		}
	}
	return ClassOp{Mod: name, JF: 4, Ta: 1, Tp: 1, Sp: 0.35}
}

// Request is one planning question: the problem class and QoS constraints of
// a decode about to be admitted.
type Request struct {
	// Mod and Nt identify the problem class.
	Mod modulation.Modulation
	Nt  int
	// SNRdB is the estimated receive SNR (EstimateSNRdB, or the AP's own
	// estimate).
	SNRdB float64
	// TargetBER is the QoS target; ≤ 0 means no target (the planner returns
	// the class default budget).
	TargetBER float64
	// DeadlineMicros is the remaining processing budget in µs; 0 means
	// unbounded.
	DeadlineMicros float64
	// Soft marks a soft-output request (per-bit LLRs feeding a soft-decision
	// FEC chain). The planner relaxes the raw-BER target by
	// SoftTargetRelief — soft-decision decoding recovers residual detector
	// errors a hard chain would pass through — and plans forward-only, since
	// a reverse ensemble clusters around its linear seed and yields biased
	// LLRs.
	Soft bool
}

// Plan is the planner's verdict for one request.
type Plan struct {
	// Quantum reports whether the annealer is the right solver; false means
	// the classical fallback is the better (or only) bet. A Classical
	// verdict is a recommendation: a pool with no classical solver may still
	// run the best-effort Params below when they are set.
	Quantum bool
	// Reverse selects reverse annealing.
	Reverse bool
	// Params are the concrete annealer knobs: NumAnneals is the planned read
	// budget, Ta/Tp/Sp the class operating point. On a deadline- or
	// cap-driven denial (ReasonDeadlineExceeded, ReasonReadsCap) Params
	// still carries the clamped best-effort budget — the most reads that fit
	// — for pools without a classical fallback; on other denials NumAnneals
	// is 0.
	Params anneal.Params
	// JF is the chain strength |J_F| the class was fitted at; backends must
	// run it for the model's statistics to apply (backend.Problem.ChainJF).
	JF float64
	// PredictedMicros is the planned device time NumAnneals·(Ta+Tp).
	PredictedMicros float64
	// PredictedBER is the model's expected BER at the planned budget.
	PredictedBER float64
	// PT, set only on classical verdicts of a PT-aware planner (Planner.PT),
	// is the deadline-sized replica-exchange budget for the fallback solve:
	// the most parallel-tempering effort (sweeps, then ladders) that fits the
	// request's remaining time under the configured cost model. Nil when the
	// planner has no PT cost model or nothing fits.
	PT *anneal.PTParams
	// Reason tags the decision for stats and debugging (see the Reason*
	// constants).
	Reason string
}

// PTCost configures the planner's parallel-tempering fallback sizing: the
// full-effort run knobs a deadline scales down from, and the per-spin-sweep
// wall cost of the packed engine (backend.DefaultPTMicrosPerSpinSweep is the
// measured value; the planner cannot import backend, so the caller wires it).
type PTCost struct {
	// MicrosPerSpinSweep is the wall cost of one packed Metropolis update of
	// one spin on one rung — the same constant behind the PT backend's
	// capability-descriptor latency model, so planned budgets and admission
	// agree.
	MicrosPerSpinSweep float64
	// Params is the full-effort configuration (zero fields take the engine
	// defaults: 16 rungs, 4 ladders, 100 sweeps).
	Params anneal.PTParams
}

// minPTSweeps is the smallest per-ladder sweep count worth dispatching: below
// this the ladder cannot mix through even one exchange cycle per rung pair.
const minPTSweeps = 8

// sizePT attaches a deadline-sized PT budget to a classical verdict: sweeps
// shrink first (quality degrades gracefully with sweeps), then ladders; when
// even one ladder at minPTSweeps does not fit, the plan carries no PT budget.
func (pl *Planner) sizePT(req Request, p *Plan) {
	if pl.PT == nil {
		return
	}
	pt := pl.PT.Params
	if pt.Rungs == 0 {
		pt.Rungs = 16
	}
	if pt.Ladders == 0 {
		pt.Ladders = 4
	}
	if pt.Sweeps == 0 {
		pt.Sweeps = 100
	}
	maxSweeps := pt.Sweeps
	if req.DeadlineMicros > 0 {
		n := float64(req.Nt * req.Mod.BitsPerSymbol())
		unit := float64(pt.Rungs) * n * pl.PT.MicrosPerSpinSweep * (1 + n/64)
		for {
			pt.Sweeps = int(req.DeadlineMicros / (unit * float64(pt.Ladders)))
			if pt.Sweeps >= minPTSweeps || pt.Ladders == 1 {
				break
			}
			pt.Ladders--
		}
		if pt.Sweeps < minPTSweeps {
			return
		}
		if pt.Sweeps > maxSweeps {
			pt.Sweeps = maxSweeps
		}
	}
	p.PT = &pt
}

// Decision reasons reported in Plan.Reason and aggregated in Stats.
const (
	// ReasonFit: the budget was fitted normally from the table.
	ReasonFit = "fit"
	// ReasonNoTarget: no target BER — the class default budget applies.
	ReasonNoTarget = "no-target"
	// ReasonUnfittedClass: the table has no points for this modulation.
	ReasonUnfittedClass = "unfitted-class"
	// ReasonOversizeNt: Nt exceeds every fitted size for the modulation.
	ReasonOversizeNt = "nt-oversize"
	// ReasonSNRBelowFit: the SNR estimate is below every fitted point, where
	// the model cannot be trusted to extrapolate.
	ReasonSNRBelowFit = "snr-below-fit"
	// ReasonFloorAboveTarget: even infinite reads converge above the target.
	ReasonFloorAboveTarget = "floor-above-target"
	// ReasonDeadlineBelowAnneal: the deadline is shorter than one anneal.
	ReasonDeadlineBelowAnneal = "deadline-below-anneal"
	// ReasonDeadlineExceeded: the required reads do not fit the deadline.
	ReasonDeadlineExceeded = "deadline-exceeded"
	// ReasonReadsCap: the required reads exceed the device cap.
	ReasonReadsCap = "reads-cap"
)

// DefaultMaxReads is the per-run read cap used when Planner.MaxReads is 0 —
// generous against the paper's Na = 100 operating point but finite, so an
// unreachable target degrades to the classical fallback instead of an
// unbounded run.
const DefaultMaxReads = 1000

// SoftTargetRelief is the LLR-aware effective-BER adjustment for soft
// requests: the raw (pre-FEC) BER target the read-budget inversion uses is
// the request's target × this factor. The justification is the classic
// ~2 dB soft-decision coding gain: at the waterfall slopes of the fitted
// curves, the soft chain tolerates roughly 4× the raw detector BER of the
// hard chain for equal post-FEC quality, so spending hard-chain read budgets
// on soft requests would over-provision exactly the way Kasi et al. warn
// against. The floor guard still applies to the relieved target, so an
// unreachable class stays a classical denial.
const SoftTargetRelief = 4

// Planner answers anneal-budget questions from a fitted table. It is safe
// for concurrent use.
type Planner struct {
	// MaxReads caps NumAnneals per run (0 = DefaultMaxReads).
	MaxReads int
	// DefaultReads is the budget used when a request carries no target BER
	// (0 = the paper's Na = 100).
	DefaultReads int
	// Telemetry, when set, receives the duration of every Plan call on the
	// telemetry plane's StagePlan histogram (the planner owns that stage's
	// histogram feed; see quamax/internal/telemetry). Set before serving.
	Telemetry *telemetry.Recorder
	// PT, when set, makes classical verdicts carry a deadline-sized
	// replica-exchange budget (Plan.PT) for pools with a parallel-tempering
	// backend. Set before serving.
	PT *PTCost

	table *Table

	mu    sync.Mutex
	stats Stats
}

// NewPlanner builds a planner over a validated table; a nil table selects
// the built-in coefficients.
func NewPlanner(t *Table) (*Planner, error) {
	if t == nil {
		t = BuiltinTable()
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("qos: %w", err)
	}
	return &Planner{table: t}, nil
}

// Table exposes the planner's fitted table.
func (pl *Planner) Table() *Table { return pl.table }

// curve is the SNR-ordered fit of one (mod, Nt, mode) class.
type curve []Point

// classCurve collects the points of (mod, nt, mode), sorted by SNR, choosing
// the smallest fitted Nt ≥ nt (a larger problem is never easier, so rounding
// Nt up is the conservative direction). ok is false when the modulation is
// unfitted or nt exceeds every fitted size.
func (t *Table) classCurve(mod modulation.Modulation, nt int, mode Mode) (curve, bool, string) {
	name := mod.String()
	bestNt := -1
	anyMod := false
	for _, p := range t.Points {
		if p.Mod != name || p.Mode != mode {
			continue
		}
		anyMod = true
		if p.Nt >= nt && (bestNt == -1 || p.Nt < bestNt) {
			bestNt = p.Nt
		}
	}
	if !anyMod {
		return nil, false, ReasonUnfittedClass
	}
	if bestNt == -1 {
		return nil, false, ReasonOversizeNt
	}
	var c curve
	for _, p := range t.Points {
		if p.Mod == name && p.Mode == mode && p.Nt == bestNt {
			c = append(c, p)
		}
	}
	sort.Slice(c, func(i, j int) bool { return c[i].SNRdB < c[j].SNRdB })
	return c, true, ""
}

// logit maps a probability into log-odds, clamped away from the poles so
// interpolation stays finite.
func logit(p float64) float64 {
	const eps = 1e-9
	p = math.Min(1-eps, math.Max(eps, p))
	return math.Log(p / (1 - p))
}

func invLogit(l float64) float64 { return 1 / (1 + math.Exp(-l)) }

// at interpolates the curve at snrDB: p0 in logit space (success probability
// curves are sigmoidal in SNR), floor and spread linearly. SNR above the
// fitted range clamps to the top point; below the range is the caller's
// error case.
func (c curve) at(snrDB float64) Point {
	if snrDB <= c[0].SNRdB {
		return c[0]
	}
	last := c[len(c)-1]
	if snrDB >= last.SNRdB {
		return last
	}
	for i := 1; i < len(c); i++ {
		if snrDB > c[i].SNRdB {
			continue
		}
		lo, hi := c[i-1], c[i]
		f := (snrDB - lo.SNRdB) / (hi.SNRdB - lo.SNRdB)
		return Point{
			Mod: lo.Mod, Nt: lo.Nt, SNRdB: snrDB, Mode: lo.Mode,
			P0:        invLogit(logit(lo.P0) + f*(logit(hi.P0)-logit(lo.P0))),
			FloorBER:  lo.FloorBER + f*(hi.FloorBER-lo.FloorBER),
			SpreadBER: lo.SpreadBER + f*(hi.SpreadBER-lo.SpreadBER),
		}
	}
	return last // unreachable
}

// readsFor inverts the E[BER](Na) ≈ floor + (1−p0)^Na·spread model: the
// smallest read budget whose predicted BER meets target. ok is false when
// the floor already exceeds the target.
func readsFor(pt Point, target float64) (int, bool) {
	if pt.FloorBER > target {
		return 0, false
	}
	if pt.P0 >= 1 || pt.SpreadBER <= 0 || pt.FloorBER+pt.SpreadBER <= target {
		return 1, true
	}
	// (1−p0)^Na ≤ (target − floor)/spread
	ratio := (target - pt.FloorBER) / pt.SpreadBER
	if ratio <= 0 {
		return 0, false
	}
	if pt.P0 <= 0 {
		return 0, false // never samples the best rank
	}
	na := math.Ceil(math.Log(ratio) / math.Log(1-pt.P0))
	if na < 1 {
		na = 1
	}
	if na > math.MaxInt32 {
		return 0, false
	}
	return int(na), true
}

// predictBER evaluates the model at a read budget.
func predictBER(pt Point, reads int) float64 {
	return pt.FloorBER + math.Pow(1-pt.P0, float64(reads))*pt.SpreadBER
}

// Plan sizes the anneal budget for one request. It never returns an error:
// any condition the model cannot serve degrades to the classical fallback
// with a tagged Reason.
func (pl *Planner) Plan(req Request) Plan {
	var start time.Time
	if pl.Telemetry != nil {
		start = time.Now()
	}
	p := pl.plan(req)
	if !p.Quantum {
		pl.sizePT(req, &p)
	}
	pl.mu.Lock()
	pl.stats.record(req, p)
	pl.mu.Unlock()
	if pl.Telemetry != nil {
		pl.Telemetry.ObserveStage(telemetry.StagePlan,
			float64(time.Since(start))/float64(time.Microsecond))
	}
	return p
}

func (pl *Planner) plan(req Request) Plan {
	op := pl.table.op(req.Mod)
	params := anneal.Params{
		AnnealTimeMicros: op.Ta, PauseTimeMicros: op.Tp, PausePosition: op.Sp,
	}
	wall := params.AnnealWallMicros()

	maxReads := pl.MaxReads
	if maxReads <= 0 {
		maxReads = DefaultMaxReads
	}
	deadlineReads := maxReads
	if req.DeadlineMicros > 0 {
		deadlineReads = int(req.DeadlineMicros / wall)
		if deadlineReads < 1 {
			return Plan{Reason: ReasonDeadlineBelowAnneal}
		}
		if deadlineReads > maxReads {
			deadlineReads = maxReads
		}
	}

	if req.TargetBER <= 0 {
		reads := pl.DefaultReads
		if reads <= 0 {
			reads = 100
		}
		if reads > deadlineReads {
			reads = deadlineReads
		}
		params.NumAnneals = reads
		return Plan{
			Quantum: true, Params: params, JF: op.JF,
			PredictedMicros: float64(reads) * wall,
			PredictedBER:    math.NaN(),
			Reason:          ReasonNoTarget,
		}
	}

	// The LLR-aware effective target: a soft request's FEC chain absorbs
	// residual raw errors, so the inversion targets SoftTargetRelief× the
	// requested BER (never past the 0.5 coin-flip bound).
	target := req.TargetBER
	if req.Soft {
		target = math.Min(0.5, target*SoftTargetRelief)
	}

	type candidate struct {
		mode  Mode
		reads int
		pt    Point
	}
	modes := []Mode{ModeForward, ModeReverse}
	if req.Soft {
		modes = modes[:1] // reverse ensembles yield seed-biased LLRs
	}
	var best *candidate
	var failReason string
	for _, mode := range modes {
		c, ok, reason := pl.table.classCurve(req.Mod, req.Nt, mode)
		if !ok {
			if mode == ModeForward {
				failReason = reason
			}
			continue
		}
		if req.SNRdB < c[0].SNRdB {
			if mode == ModeForward {
				failReason = ReasonSNRBelowFit
			}
			continue
		}
		pt := c.at(req.SNRdB)
		reads, ok := readsFor(pt, target)
		if !ok {
			if mode == ModeForward {
				failReason = ReasonFloorAboveTarget
			}
			continue
		}
		if best == nil || reads < best.reads {
			best = &candidate{mode: mode, reads: reads, pt: pt}
		}
	}
	if best == nil {
		if failReason == "" {
			failReason = ReasonUnfittedClass
		}
		return Plan{Reason: failReason}
	}
	if best.reads > deadlineReads {
		// Denied, but a fallback-less pool can still run the most reads that
		// fit — strictly better than the static configuration.
		reason := ReasonDeadlineExceeded
		if best.reads > maxReads && deadlineReads == maxReads {
			reason = ReasonReadsCap
		}
		params.NumAnneals = deadlineReads
		return Plan{
			Reverse: best.mode == ModeReverse,
			Params:  params, JF: op.JF,
			PredictedMicros: float64(deadlineReads) * wall,
			PredictedBER:    predictBER(best.pt, deadlineReads),
			Reason:          reason,
		}
	}
	params.NumAnneals = best.reads
	return Plan{
		Quantum: true, Reverse: best.mode == ModeReverse,
		Params: params, JF: op.JF,
		PredictedMicros: float64(best.reads) * wall,
		PredictedBER:    predictBER(best.pt, best.reads),
		Reason:          ReasonFit,
	}
}

// Stats aggregates planner decisions for the serving process's stats dump.
type Stats struct {
	// Plans counts Plan calls; Quantum/Classical split the verdicts; Reverse
	// counts quantum plans that chose reverse annealing.
	Plans, Quantum, Classical, Reverse uint64
	// Soft counts planning questions for soft-output requests (those whose
	// targets were relieved by SoftTargetRelief).
	Soft uint64
	// PT counts classical verdicts that carried a deadline-sized
	// parallel-tempering budget (Plan.PT).
	PT uint64
	// ReadsPlanned totals NumAnneals over quantum plans (ReadsPlanned/Quantum
	// is the mean planned budget — the over-provisioning metric of Kasi et
	// al.).
	ReadsPlanned uint64
	// ByReason counts decisions per Reason tag.
	ByReason map[string]uint64
}

func (s *Stats) record(req Request, p Plan) {
	s.Plans++
	if s.ByReason == nil {
		s.ByReason = make(map[string]uint64)
	}
	s.ByReason[p.Reason]++
	if req.Soft {
		s.Soft++
	}
	if p.Quantum {
		s.Quantum++
		s.ReadsPlanned += uint64(p.Params.NumAnneals)
		if p.Reverse {
			s.Reverse++
		}
	} else {
		s.Classical++
		if p.PT != nil {
			s.PT++
		}
	}
}

// Stats snapshots the planner counters.
func (pl *Planner) Stats() Stats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := pl.stats
	out.ByReason = make(map[string]uint64, len(pl.stats.ByReason))
	for k, v := range pl.stats.ByReason {
		out.ByReason[k] = v
	}
	return out
}

// String renders a compact multi-line report suitable for logs.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "planner: plans=%d quantum=%d (reverse=%d) classical=%d (pt=%d) soft=%d",
		s.Plans, s.Quantum, s.Reverse, s.Classical, s.PT, s.Soft)
	if s.Quantum > 0 {
		fmt.Fprintf(&b, " mean-reads=%.1f", float64(s.ReadsPlanned)/float64(s.Quantum))
	}
	reasons := make([]string, 0, len(s.ByReason))
	for r := range s.ByReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "\nplanner: reason %-22s %d", r, s.ByReason[r])
	}
	return b.String()
}
