package qos

// Tests for the planner's parallel-tempering fallback sizing: classical
// verdicts carry a PT budget shaped to the request deadline (sweeps shrink
// first, then ladders), and requests whose deadline cannot fit even one
// ladder at the minimum useful sweep count carry no budget at all.

import (
	"strings"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/modulation"
)

// ptPlanner is a planner with a PT cost model of 1 µs per spin-sweep — round
// numbers so the sizing arithmetic below is exact. For a QPSK Nt=4 request
// (n = 8 spins) one sweep of one 16-rung ladder costs
// 16·8·1·(1+8/64) = 144 µs.
func ptPlanner(t *testing.T) *Planner {
	t.Helper()
	pl := testPlanner(t)
	pl.PT = &PTCost{MicrosPerSpinSweep: 1}
	return pl
}

// classicalReq denies the quantum path via an unreachable floor: the fitted
// QPSK Nt=4 class floors at BER 0.01 at 10 dB, above the 1e-3 target.
func classicalReq(deadlineMicros float64) Request {
	return Request{
		Mod: modulation.QPSK, Nt: 4, SNRdB: 10, TargetBER: 1e-3,
		DeadlineMicros: deadlineMicros,
	}
}

func TestPlanPTDefaultsWithoutDeadline(t *testing.T) {
	pl := ptPlanner(t)
	plan := pl.Plan(classicalReq(0))
	if plan.Quantum || plan.Reason != ReasonFloorAboveTarget {
		t.Fatalf("plan = %+v, want classical %s", plan, ReasonFloorAboveTarget)
	}
	want := anneal.PTParams{Rungs: 16, Ladders: 4, Sweeps: 100}
	if plan.PT == nil || plan.PT.Rungs != want.Rungs || plan.PT.Ladders != want.Ladders || plan.PT.Sweeps != want.Sweeps {
		t.Fatalf("PT budget = %+v, want %+v", plan.PT, want)
	}
}

func TestPlanPTSizesSweepsToDeadline(t *testing.T) {
	pl := ptPlanner(t)
	// 28800 µs buys 28800/(144·4) = 50 sweeps across 4 ladders.
	plan := pl.Plan(classicalReq(28800))
	if plan.PT == nil || plan.PT.Ladders != 4 || plan.PT.Sweeps != 50 {
		t.Fatalf("PT budget = %+v, want 4 ladders × 50 sweeps", plan.PT)
	}
	// A huge deadline must not inflate past the configured sweep budget.
	plan = pl.Plan(classicalReq(1e9))
	if plan.PT == nil || plan.PT.Ladders != 4 || plan.PT.Sweeps != 100 {
		t.Fatalf("PT budget = %+v, want the 4×100 default cap", plan.PT)
	}
}

func TestPlanPTShedsLaddersBeforeSweeps(t *testing.T) {
	pl := ptPlanner(t)
	// 1440 µs: 4 ladders buy only 2 sweeps, 3 buy 3, 2 buy 5 — all under the
	// minimum useful count — so the planner sheds down to 1 ladder × 10.
	plan := pl.Plan(classicalReq(1440))
	if plan.PT == nil || plan.PT.Ladders != 1 || plan.PT.Sweeps != 10 {
		t.Fatalf("PT budget = %+v, want 1 ladder × 10 sweeps", plan.PT)
	}
}

func TestPlanPTTooShortDeadlineDropsBudget(t *testing.T) {
	pl := ptPlanner(t)
	// 1008 µs buys 7 sweeps even on a single ladder — below minPTSweeps.
	plan := pl.Plan(classicalReq(1008))
	if plan.Quantum || plan.PT != nil {
		t.Fatalf("plan = %+v, want classical with no PT budget", plan)
	}
}

func TestPlanPTQuantumPlansCarryNone(t *testing.T) {
	pl := ptPlanner(t)
	plan := pl.Plan(Request{Mod: modulation.QPSK, Nt: 4, SNRdB: 30, TargetBER: 1e-4})
	if !plan.Quantum || plan.PT != nil {
		t.Fatalf("plan = %+v, want quantum with no PT budget", plan)
	}
}

func TestPlanPTAbsentCostModel(t *testing.T) {
	pl := testPlanner(t) // no PT cost model installed
	plan := pl.Plan(classicalReq(28800))
	if plan.Quantum || plan.PT != nil {
		t.Fatalf("plan = %+v, want classical with no PT budget", plan)
	}
}

func TestPlannerStatsCountPT(t *testing.T) {
	pl := ptPlanner(t)
	pl.Plan(classicalReq(0))    // classical + PT budget
	pl.Plan(classicalReq(1008)) // classical, deadline too short for PT
	st := pl.Stats()
	if st.Classical != 2 || st.PT != 1 {
		t.Fatalf("stats = %+v, want 2 classical with 1 PT budget", st)
	}
	if !strings.Contains(st.String(), "pt=1") {
		t.Fatalf("stats rendering %q missing pt counter", st.String())
	}
}
