package chimera

import "testing"

func TestQubitIDRoundTrip(t *testing.T) {
	g := New(4)
	seen := make(map[int]bool)
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			for _, side := range []Side{Vertical, Horizontal} {
				for k := 0; k < CellSize; k++ {
					id := g.QubitID(row, col, side, k)
					if seen[id] {
						t.Fatalf("duplicate id %d", id)
					}
					seen[id] = true
					r, c, s, kk := g.Coordinates(id)
					if r != row || c != col || s != side || kk != k {
						t.Fatalf("round trip failed for id %d", id)
					}
				}
			}
		}
	}
	if len(seen) != g.NumQubits() {
		t.Fatalf("enumerated %d ids, want %d", len(seen), g.NumQubits())
	}
}

func TestIntraCellK44(t *testing.T) {
	g := New(2)
	for kv := 0; kv < 4; kv++ {
		for kh := 0; kh < 4; kh++ {
			a := g.QubitID(1, 1, Vertical, kv)
			b := g.QubitID(1, 1, Horizontal, kh)
			if !g.HasEdge(a, b) {
				t.Fatalf("missing K44 edge v%d-h%d", kv, kh)
			}
		}
	}
	// Same-side qubits within a cell are NOT coupled.
	if g.HasEdge(g.QubitID(0, 0, Vertical, 0), g.QubitID(0, 0, Vertical, 1)) {
		t.Fatal("vertical qubits in one cell must not couple")
	}
}

func TestInterCellCouplers(t *testing.T) {
	g := New(3)
	// Vertical qubits couple to the same index in the cell below.
	if !g.HasEdge(g.QubitID(0, 1, Vertical, 2), g.QubitID(1, 1, Vertical, 2)) {
		t.Fatal("missing vertical inter-cell edge")
	}
	if g.HasEdge(g.QubitID(0, 1, Vertical, 2), g.QubitID(1, 1, Vertical, 3)) {
		t.Fatal("vertical inter-cell edge must preserve index")
	}
	if g.HasEdge(g.QubitID(0, 1, Vertical, 2), g.QubitID(2, 1, Vertical, 2)) {
		t.Fatal("vertical inter-cell edges only join adjacent rows")
	}
	// Horizontal qubits couple to the same index in the cell to the right.
	if !g.HasEdge(g.QubitID(1, 0, Horizontal, 0), g.QubitID(1, 1, Horizontal, 0)) {
		t.Fatal("missing horizontal inter-cell edge")
	}
	if g.HasEdge(g.QubitID(1, 0, Horizontal, 0), g.QubitID(0, 1, Horizontal, 0)) {
		t.Fatal("horizontal edges must stay within a row")
	}
	// Vertical–horizontal across cells never couple.
	if g.HasEdge(g.QubitID(0, 0, Vertical, 0), g.QubitID(1, 0, Horizontal, 0)) {
		t.Fatal("cross-side inter-cell edge must not exist")
	}
}

func TestNeighborsDegree(t *testing.T) {
	g := New(3)
	// Interior vertical qubit: 4 intra-cell + 2 inter-cell = 6.
	if got := len(g.Neighbors(g.QubitID(1, 1, Vertical, 0))); got != 6 {
		t.Fatalf("interior degree = %d, want 6", got)
	}
	// Corner-row vertical qubit: 4 + 1 = 5.
	if got := len(g.Neighbors(g.QubitID(0, 0, Vertical, 0))); got != 5 {
		t.Fatalf("edge degree = %d, want 5", got)
	}
}

func TestTotalCouplers(t *testing.T) {
	for _, m := range []int{1, 2, 3, 16} {
		g := New(m)
		if got := g.NumWorkingCouplers(); got != TotalCouplers(m) {
			t.Fatalf("C_%d: %d couplers, want %d", m, got, TotalCouplers(m))
		}
	}
	// C16 manufactured inventory: 4096 intra + 1920 inter = 6016.
	if TotalCouplers(16) != 6016 {
		t.Fatalf("C16 should have 6016 couplers, got %d", TotalCouplers(16))
	}
}

func TestDefectsRemoveQubitsAndEdges(t *testing.T) {
	deadQ := 8*1 + 0 // cell (0,1), vertical 0
	g := NewWithDefects(2, []int{deadQ}, nil)
	if g.HasQubit(deadQ) {
		t.Fatal("dead qubit reported working")
	}
	if g.NumWorkingQubits() != g.NumQubits()-1 {
		t.Fatal("working qubit count wrong")
	}
	if len(g.Neighbors(deadQ)) != 0 {
		t.Fatal("dead qubit should have no neighbours")
	}
	for _, nb := range New(2).Neighbors(deadQ) {
		if g.HasEdge(deadQ, nb) {
			t.Fatal("edge incident to dead qubit survived")
		}
		found := false
		for _, x := range g.Neighbors(nb) {
			if x == deadQ {
				found = true
			}
		}
		if found {
			t.Fatal("dead qubit still appears in neighbour list")
		}
	}
}

func TestCouplerDefect(t *testing.T) {
	a, b := 0, 4                                  // cell (0,0) vertical 0 – horizontal 0
	g := NewWithDefects(2, nil, [][2]int{{b, a}}) // reversed order accepted
	if g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatal("dead coupler reported working")
	}
	if g.NumWorkingCouplers() != TotalCouplers(2)-1 {
		t.Fatal("working coupler count wrong")
	}
	if g.HasQubit(a) != true || g.HasQubit(b) != true {
		t.Fatal("coupler defect must not kill qubits")
	}
}

func TestDW2QInventory(t *testing.T) {
	g := DW2Q()
	if g.M != DW2QGridSize {
		t.Fatalf("grid %d, want 16", g.M)
	}
	if g.NumQubits() != 2048 {
		t.Fatalf("manufactured qubits %d, want 2048", g.NumQubits())
	}
	if got := g.NumWorkingQubits(); got != DW2QWorkingQubits {
		t.Fatalf("working qubits %d, want %d", got, DW2QWorkingQubits)
	}
	// Coupler inventory: at most the manufactured count, and at least the
	// figure-caption count (we do not force 5,019 exactly; see DW2Q docs).
	if got := g.NumWorkingCouplers(); got > TotalCouplers(16) || got < 5019 {
		t.Fatalf("working couplers %d outside plausible range", got)
	}
	// Every defect lies in the reserved upper-right corner so that the
	// paper's largest lower-triangle clique embedding stays feasible.
	for id := 0; id < g.NumQubits(); id++ {
		if g.HasQubit(id) {
			continue
		}
		row, col, _, _ := g.Coordinates(id)
		if row >= 4 || col < 12 {
			t.Fatalf("defect %d at cell (%d,%d) outside reserved corner", id, row, col)
		}
	}
}

func TestDW2QDeterministic(t *testing.T) {
	a, b := DW2Q(), DW2Q()
	for id := 0; id < a.NumQubits(); id++ {
		if a.HasQubit(id) != b.HasQubit(id) {
			t.Fatal("DW2Q defect pattern is not deterministic")
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	g := DW2Q()
	for id := 0; id < g.NumQubits(); id += 37 { // sample
		for _, nb := range g.Neighbors(id) {
			back := false
			for _, x := range g.Neighbors(nb) {
				if x == id {
					back = true
				}
			}
			if !back {
				t.Fatalf("edge %d-%d not symmetric", id, nb)
			}
		}
	}
}
