// Package chimera models the D-Wave 2000Q qubit-connectivity graph (paper
// §3.3, Fig. 3a): an m×m grid of unit cells, each containing a K_{4,4}
// bipartite coupling between four "vertical" (left-side) and four
// "horizontal" (right-side) qubits, plus inter-cell couplers that connect
// like-indexed vertical qubits of vertically adjacent cells and like-indexed
// horizontal qubits of horizontally adjacent cells.
//
// The package also models fabrication defects: the DW2Q "Whistler" chip the
// paper used was manufactured with 2,048 qubits of which 2,031 worked
// (Fig. 1 caption, abstract). DW2Q() reproduces the working-qubit count with
// a deterministic defect pattern chosen so the paper's own largest clique
// embeddings remain feasible — see the DW2Q function documentation.
package chimera

import (
	"fmt"

	"quamax/internal/rng"
)

// CellSize is the number of qubits per unit-cell side (K_{4,4}).
const CellSize = 4

// Side distinguishes the two qubit orientations within a unit cell.
type Side int

// Qubit orientations.
const (
	Vertical   Side = 0 // left half: couples to the cell below/above
	Horizontal Side = 1 // right half: couples to the cell left/right
)

// Graph is a Chimera graph C_M with optional qubit and coupler defects.
// The zero value is unusable; construct with New or NewWithDefects.
type Graph struct {
	M             int // grid is M×M unit cells
	deadQubits    map[int]bool
	deadCouplers  map[[2]int]bool // canonical order a<b
	numWorkingQ   int
	numWorkingCpl int
}

// New returns a defect-free C_m graph.
func New(m int) *Graph { return NewWithDefects(m, nil, nil) }

// NewWithDefects returns a C_m graph with the given dead qubits and dead
// couplers (couplers as [2]int pairs in any order). Couplers incident to a
// dead qubit are implicitly dead.
func NewWithDefects(m int, deadQubits []int, deadCouplers [][2]int) *Graph {
	if m <= 0 {
		panic("chimera: grid size must be positive")
	}
	g := &Graph{
		M:            m,
		deadQubits:   make(map[int]bool, len(deadQubits)),
		deadCouplers: make(map[[2]int]bool, len(deadCouplers)),
	}
	for _, q := range deadQubits {
		if q < 0 || q >= g.NumQubits() {
			panic(fmt.Sprintf("chimera: defect qubit %d out of range", q))
		}
		g.deadQubits[q] = true
	}
	for _, c := range deadCouplers {
		a, b := c[0], c[1]
		if a > b {
			a, b = b, a
		}
		if !g.edgeExistsIgnoringDefects(a, b) {
			panic(fmt.Sprintf("chimera: defect coupler (%d,%d) is not a Chimera edge", a, b))
		}
		g.deadCouplers[[2]int{a, b}] = true
	}
	g.numWorkingQ = g.NumQubits() - len(g.deadQubits)
	g.numWorkingCpl = g.countWorkingCouplers()
	return g
}

// NumQubits returns the manufactured qubit count 8·M².
func (g *Graph) NumQubits() int { return 8 * g.M * g.M }

// NumWorkingQubits returns the count of non-defective qubits.
func (g *Graph) NumWorkingQubits() int { return g.numWorkingQ }

// NumWorkingCouplers returns the count of usable couplers.
func (g *Graph) NumWorkingCouplers() int { return g.numWorkingCpl }

// QubitID maps (row, col, side, k) to the linear qubit index.
func (g *Graph) QubitID(row, col int, side Side, k int) int {
	if row < 0 || row >= g.M || col < 0 || col >= g.M || k < 0 || k >= CellSize || (side != Vertical && side != Horizontal) {
		panic(fmt.Sprintf("chimera: bad coordinates (%d,%d,%d,%d)", row, col, side, k))
	}
	return ((row*g.M + col) * 2 * CellSize) + int(side)*CellSize + k
}

// Coordinates inverts QubitID.
func (g *Graph) Coordinates(id int) (row, col int, side Side, k int) {
	if id < 0 || id >= g.NumQubits() {
		panic(fmt.Sprintf("chimera: qubit %d out of range", id))
	}
	k = id % CellSize
	side = Side(id / CellSize % 2)
	cell := id / (2 * CellSize)
	return cell / g.M, cell % g.M, side, k
}

// HasQubit reports whether qubit id exists and is working.
func (g *Graph) HasQubit(id int) bool {
	return id >= 0 && id < g.NumQubits() && !g.deadQubits[id]
}

// edgeExistsIgnoringDefects applies the Chimera adjacency rule.
func (g *Graph) edgeExistsIgnoringDefects(a, b int) bool {
	if a == b || a < 0 || b < 0 || a >= g.NumQubits() || b >= g.NumQubits() {
		return false
	}
	ra, ca, sa, ka := g.Coordinates(a)
	rb, cb, sb, kb := g.Coordinates(b)
	switch {
	case ra == rb && ca == cb:
		return sa != sb // intra-cell K_{4,4}
	case sa == Vertical && sb == Vertical && ka == kb && ca == cb:
		return ra-rb == 1 || rb-ra == 1
	case sa == Horizontal && sb == Horizontal && ka == kb && ra == rb:
		return ca-cb == 1 || cb-ca == 1
	}
	return false
}

// HasEdge reports whether a working coupler joins a and b.
func (g *Graph) HasEdge(a, b int) bool {
	if !g.HasQubit(a) || !g.HasQubit(b) {
		return false
	}
	if !g.edgeExistsIgnoringDefects(a, b) {
		return false
	}
	if a > b {
		a, b = b, a
	}
	return !g.deadCouplers[[2]int{a, b}]
}

// Neighbors returns the working neighbours of qubit id (empty for dead
// qubits). Degree is at most 6 in Chimera.
func (g *Graph) Neighbors(id int) []int {
	if !g.HasQubit(id) {
		return nil
	}
	row, col, side, k := g.Coordinates(id)
	out := make([]int, 0, 6)
	add := func(other int) {
		if g.HasEdge(id, other) {
			out = append(out, other)
		}
	}
	other := Horizontal
	if side == Horizontal {
		other = Vertical
	}
	for kk := 0; kk < CellSize; kk++ {
		add(g.QubitID(row, col, other, kk))
	}
	if side == Vertical {
		if row > 0 {
			add(g.QubitID(row-1, col, Vertical, k))
		}
		if row < g.M-1 {
			add(g.QubitID(row+1, col, Vertical, k))
		}
	} else {
		if col > 0 {
			add(g.QubitID(row, col-1, Horizontal, k))
		}
		if col < g.M-1 {
			add(g.QubitID(row, col+1, Horizontal, k))
		}
	}
	return out
}

// countWorkingCouplers enumerates all edges once.
func (g *Graph) countWorkingCouplers() int {
	n := 0
	for id := 0; id < g.NumQubits(); id++ {
		for _, nb := range g.Neighbors(id) {
			if nb > id {
				n++
			}
		}
	}
	return n
}

// TotalCouplers returns the manufactured coupler count of a defect-free C_M:
// 16·M² intra-cell + 2·4·M·(M−1) inter-cell.
func TotalCouplers(m int) int { return 16*m*m + 8*m*(m-1) }

// DW2QGridSize is the unit-cell grid dimension of the D-Wave 2000Q.
const DW2QGridSize = 16

// DW2QWorkingQubits is the paper's working-qubit count (abstract: "the 2,031
// qubit D-Wave 2000Q").
const DW2QWorkingQubits = 2031

// DW2Q returns a C_16 graph modelling the paper's chip: 2,031 working qubits
// out of 2,048 manufactured (17 fabrication defects).
//
// Defect geometry. The real Whistler chip's defect locations are not public,
// but the paper's evaluation embedded fully-connected problems up to 60
// logical spins — a 15×15-cell lower-triangle clique footprint — so the real
// defects cannot have intersected that region (clique embedders route around
// hard faults [39][7], and the paper reports these embeds succeeded). We
// therefore cluster the 17 dead qubits in the strictly-upper-triangular
// corner cells (rows 0–3, columns 12–15), which the canonical lower-triangle
// placement never touches. Fig. 1's caption also reports "5,019
// qubit-coupling parameters"; we deliberately do NOT force that coupler
// count — removing ~900 extra couplers uniformly would make the paper's own
// problem sizes unembeddable, contradicting its reported experiments — and
// model coupler loss only through dead qubits.
func DW2Q() *Graph {
	src := rng.New(0xD20000)
	full := New(DW2QGridSize)
	dead := make([]int, 0, full.NumQubits()-DW2QWorkingQubits)
	seen := make(map[int]bool)
	for len(dead) < full.NumQubits()-DW2QWorkingQubits {
		row := src.Intn(4)      // rows 0–3
		col := 12 + src.Intn(4) // columns 12–15
		side := Side(src.Intn(2))
		k := src.Intn(CellSize)
		q := full.QubitID(row, col, side, k)
		if !seen[q] {
			seen[q] = true
			dead = append(dead, q)
		}
	}
	return NewWithDefects(DW2QGridSize, dead, nil)
}
