package fronthaul

import (
	"net"
	"reflect"
	"testing"

	"quamax/internal/backend"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/sched"
	"quamax/internal/telemetry"
)

func TestStatsCodecRoundTrip(t *testing.T) {
	want := fuzzStatsResponse()
	payload, err := encodeStatsResponse(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeStatsResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stats round trip:\nwant %+v\ngot  %+v", want, got)
	}

	// A telemetry-less response (server without a recorder) round-trips too.
	bare := &StatsResponse{ID: 3, Err: "pool draining"}
	payload, err = encodeStatsResponse(bare)
	if err != nil {
		t.Fatal(err)
	}
	got, err = decodeStatsResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, got) {
		t.Fatalf("bare stats round trip: %+v", got)
	}

	req := &StatsRequest{ID: 99}
	back, err := decodeStatsRequest(encodeStatsRequest(req))
	if err != nil || back.ID != 99 {
		t.Fatalf("stats request round trip: %+v, %v", back, err)
	}
}

func TestStatsCodecRejectsCorruption(t *testing.T) {
	payload, err := encodeStatsResponse(fuzzStatsResponse())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeStatsResponse(payload[:len(payload)-5]); err == nil {
		t.Fatal("truncated stats response accepted")
	}
	if _, err := decodeStatsResponse(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodeStatsRequest([]byte{1, 2}); err == nil {
		t.Fatal("truncated stats request accepted")
	}
	if _, err := decodeStatsRequest(append(encodeStatsRequest(&StatsRequest{ID: 1}), 0)); err == nil {
		t.Fatal("stats request trailing bytes accepted")
	}

	// The trailing economics block is flag-gated and canonical: a truncated
	// block and a flag-with-all-zero-counters payload are both rejected.
	if _, err := decodeStatsResponse(payload[:len(payload)-9]); err == nil {
		t.Fatal("stats response truncated inside the economics block accepted")
	}
	bare, err := encodeStatsResponse(&StatsResponse{ID: 2, Pool: metrics.PoolStats{
		Submitted: 1, Completed: 1,
		Backends: []metrics.BackendStats{{Name: "qpu0", Solved: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	zeroEcon := append([]byte(nil), bare...)
	zeroEcon[len(zeroEcon)-1] |= statsRespEconomics
	zeroEcon = append(zeroEcon, make([]byte, 16)...)
	if _, err := decodeStatsResponse(zeroEcon); err == nil {
		t.Fatal("economics flag with all-zero counters accepted")
	}

	// The v9 health block is flag-gated and canonical the same way: the flag
	// over an empty block (a re-encode would drop it) is rejected, as are
	// blocks that violate the health grammar itself.
	zeroHealth := append([]byte(nil), bare...)
	zeroHealth[len(zeroHealth)-1] |= statsRespHealth
	zeroHealth = append(zeroHealth, 0, 0, 0, 0)
	if _, err := decodeStatsResponse(zeroHealth); err == nil {
		t.Fatal("health flag with empty block accepted")
	}
	healthEntry := func(name string, state byte) []byte {
		b := appendU16(nil, uint16(len(name)))
		b = append(b, name...)
		b = append(b, state)
		b = appendF64(b, 1.5)    // score
		b = appendU64(b, 10)     // observations
		for i := 0; i < 4; i++ { // chain-break / energy / failure / reads EWMAs
			b = appendF64(b, 0.25)
		}
		b = appendU64(b, 2) // canary pass
		b = appendU64(b, 1) // canary fail
		return b
	}
	mustRejectHealth := func(name string, raw []byte) {
		t.Helper()
		r := &reader{b: raw}
		if _, err := readHealth(r, raw); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	noShards := appendU16(nil, 0)
	two := func(a, b []byte) []byte {
		out := appendU16(nil, 2)
		out = append(out, a...)
		out = append(out, b...)
		return append(out, noShards...)
	}
	one := func(e []byte) []byte {
		return append(append(appendU16(nil, 1), e...), noShards...)
	}
	mustRejectHealth("out-of-order backend names", two(healthEntry("b", 0), healthEntry("a", 0)))
	mustRejectHealth("duplicate backend name", two(healthEntry("a", 1), healthEntry("a", 1)))
	mustRejectHealth("unknown health state", one(healthEntry("a", 3)))
	mustRejectHealth("backend count past payload", append(appendU16(nil, 9), healthEntry("a", 0)...))
	mustRejectHealth("truncated backend entry", append(appendU16(nil, 1), healthEntry("a", 0)[:20]...))
	badAlert := append(appendU16(nil, 0), appendU16(nil, 1)...)
	for i := 0; i < 4; i++ {
		badAlert = appendF64(badAlert, 0.1) // fast/slow miss + BER rates
	}
	badAlert = appendU64(badAlert, 5) // samples
	badAlert = append(badAlert, 2)    // non-boolean alert byte
	badAlert = appendU64(badAlert, 0) // sheds
	badAlert = appendF64(badAlert, 0) // miss EWMA
	mustRejectHealth("non-boolean alert byte", badAlert)

	// The histogram grammar is canonical: out-of-order or repeated bucket
	// indexes, zero counts and oversized entry counts are all rejected.
	mustRejectHist := func(name string, raw []byte) {
		t.Helper()
		r := &reader{b: raw}
		if _, err := readHist(r); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	u64 := func(v uint64) []byte { return appendU64(nil, v) }
	f64x3 := appendF64(appendF64(appendF64(nil, 1), 2), 3)
	mustRejectHist("zero-count bucket", append(append([]byte{1, 5}, u64(0)...), f64x3...))
	mustRejectHist("repeated bucket index", append(append(append(append([]byte{2, 5}, u64(1)...), 5), u64(1)...), f64x3...))
	mustRejectHist("bucket index past NumBuckets", append(append([]byte{1, telemetry.NumBuckets}, u64(1)...), f64x3...))
	mustRejectHist("entry count past NumBuckets", append([]byte{telemetry.NumBuckets + 1}, f64x3...))
	mustRejectHist("truncated bucket list", []byte{3, 0})
}

// Stats over the wire: an AP decodes through a telemetry-instrumented pool,
// then polls the serving statistics and sees the decode it just made — the
// pool counters, the finished trace, and the server-side wire histogram —
// reconciled with each other.
func TestPoolStatsOverWire(t *testing.T) {
	rec := telemetry.New(telemetry.Config{})
	dec := testDecoder(t)
	dec.SetTelemetry(rec)
	pool, err := sched.New(sched.Config{
		Pool:      []backend.Backend{backend.AnnealerFromDecoder("qpu0", dec)},
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	server := NewPoolServer(pool)
	server.Telemetry = rec
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	const decodes = 3
	for i := 0; i < decodes; i++ {
		in := testInstance(t, int64(300+i), modulation.QPSK, 4)
		if _, err := client.Decode(in.Mod, in.H, in.Y); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := client.PoolStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pool.Submitted != decodes || stats.Pool.Completed != decodes {
		t.Fatalf("pool counters %d/%d, want %d submitted and completed",
			stats.Pool.Submitted, stats.Pool.Completed, decodes)
	}
	sn := stats.Telemetry
	if sn == nil {
		t.Fatal("stats response carries no telemetry snapshot")
	}
	if sn.Traces != decodes || sn.Finished != decodes {
		t.Fatalf("telemetry traces %d finished %d, want %d", sn.Traces, sn.Finished, decodes)
	}
	if got := sn.Stages[telemetry.StageE2E].Count; got != decodes {
		t.Fatalf("e2e histogram holds %d observations, want %d", got, decodes)
	}
	if sn.Wire.Count != decodes {
		t.Fatalf("wire histogram holds %d observations, want %d", sn.Wire.Count, decodes)
	}
	if sn.Wire.Sum <= 0 || sn.Wire.Max < sn.Wire.Min {
		t.Fatalf("wire histogram not populated: %+v", sn.Wire)
	}
	// The anneal-quality plane rode along: one class, with reads accounted.
	q, ok := sn.Quality["QPSK/4"]
	if !ok || q.Solves == 0 || q.Reads == 0 {
		t.Fatalf("quality class missing or empty: %+v", sn.Quality)
	}
	if stats.UptimeMicros <= 0 {
		t.Fatal("uptime not reported")
	}
}
