package fronthaul

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
)

// Client is the AP side of the fronthaul. It is safe for concurrent use:
// requests are pipelined on one connection and matched to responses by ID,
// so every OFDM subcarrier can be decoded in flight simultaneously.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *DecodeResponse
	closed  error
}

// NewClient wraps an established connection and starts the response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan *DecodeResponse)}
	go c.readLoop()
	return c
}

// Dial connects to a fronthaul server over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fronthaul: dial: %w", err)
	}
	return NewClient(conn), nil
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop dispatches responses to waiting callers.
func (c *Client) readLoop() {
	for {
		msgType, payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("fronthaul: connection lost: %w", err))
			return
		}
		if msgType != msgDecodeResponse {
			// An unknown frame type means the peer speaks a different
			// protocol generation; silently discarding it would strand the
			// request it answered. Surface a version error and tear down.
			c.fail(fmt.Errorf("fronthaul: protocol error: unknown frame type %d (this client speaks version %d)",
				msgType, ProtocolVersion))
			return
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail aborts all pending calls.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Decode ships one channel use to the data center and waits for the decoded
// bits. It blocks until the response arrives or the connection fails.
func (c *Client) Decode(mod modulation.Modulation, h *linalg.Mat, y []complex128) (*DecodeResponse, error) {
	return c.DecodeWithDeadline(mod, h, y, 0)
}

// DecodeWithDeadline is Decode with a per-request processing budget: the
// data-center scheduler routes the problem to a classical solver when the
// QPU pool cannot meet the deadline. deadline ≤ 0 means no deadline (the
// server default applies).
func (c *Client) DecodeWithDeadline(mod modulation.Modulation, h *linalg.Mat, y []complex128, deadline time.Duration) (*DecodeResponse, error) {
	return c.DecodeQoS(mod, h, y, deadline, 0)
}

// DecodeQoS is Decode with the full QoS contract: a processing deadline and
// a target BER. The data center's planner sizes the anneal budget (reads ×
// anneal time, forward or reverse) to just reach the target within the
// deadline, or solves classically when the annealer cannot. deadline ≤ 0
// and targetBER ≤ 0 each select the server default; targetBER ≥ 1 is a
// local argument error (the wire protocol rejects it server-side too).
func (c *Client) DecodeQoS(mod modulation.Modulation, h *linalg.Mat, y []complex128, deadline time.Duration, targetBER float64) (*DecodeResponse, error) {
	if targetBER >= 1 || math.IsNaN(targetBER) {
		return nil, fmt.Errorf("fronthaul: target BER %g outside [0,1)", targetBER)
	}
	c.mu.Lock()
	if c.closed != nil {
		c.mu.Unlock()
		return nil, c.closed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *DecodeResponse, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	var deadlineMicros float64
	if deadline > 0 {
		deadlineMicros = float64(deadline) / float64(time.Microsecond)
		if deadlineMicros > MaxDeadlineMicros {
			deadlineMicros = MaxDeadlineMicros
		}
	}
	if targetBER < 0 {
		targetBER = 0
	}
	payload, err := encodeRequest(&DecodeRequest{
		ID: id, Mod: mod, H: h, Y: y,
		DeadlineMicros: deadlineMicros, TargetBER: targetBER,
	})
	if err != nil {
		c.abandon(id)
		return nil, err
	}
	c.writeMu.Lock()
	err = writeFrame(c.conn, msgDecodeRequest, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.abandon(id)
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.closed
		c.mu.Unlock()
		if err == nil {
			err = errors.New("fronthaul: connection closed")
		}
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote decode failed: %s", resp.Err)
	}
	return resp, nil
}

// abandon drops a pending slot after a local failure.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}
