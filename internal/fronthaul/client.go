package fronthaul

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
	"quamax/internal/softout"
)

// ErrClientClosed tags deliberate connection teardown: Close drains every
// in-flight request with it (wrapped or verbatim), so callers blocked in
// Await or a blocking call distinguish "the AP closed the connection" from a
// transport failure via errors.Is(err, ErrClientClosed).
var ErrClientClosed = errors.New("fronthaul: client closed")

// ResponseIDError reports a response frame whose ID matched no in-flight
// request — a duplicate delivery or a peer answering a request this client
// never issued. Either way the ID space is corrupt and the demux can no
// longer trust any match, so the connection is torn down with this error
// (recover it from any pending call's failure via errors.As).
type ResponseIDError struct {
	// MsgType is the wire frame type that carried the unmatched ID.
	MsgType uint8
	// ID is the unmatched response ID.
	ID uint64
}

func (e *ResponseIDError) Error() string {
	return fmt.Sprintf("fronthaul: response frame type %d carries unknown request ID %d", e.MsgType, e.ID)
}

// Client is the AP side of the fronthaul. It is safe for concurrent use:
// requests are pipelined on one connection and matched to responses by ID,
// so every OFDM subcarrier can be decoded in flight simultaneously. The
// Submit*/Await API exposes the pipelining directly — many in-flight
// requests per connection with out-of-order responses — and the blocking
// calls are thin submit-then-await wrappers.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu           sync.Mutex
	nextID       uint64
	pending      map[uint64]chan *DecodeResponse
	regPending   map[uint64]chan *RegisterChannelResponse
	softPending  map[uint64]chan *SoftDecodeResponse
	statsPending map[uint64]chan *StatsResponse
	closed       error
}

// NewClient wraps an established connection and starts the response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:         conn,
		pending:      make(map[uint64]chan *DecodeResponse),
		regPending:   make(map[uint64]chan *RegisterChannelResponse),
		softPending:  make(map[uint64]chan *SoftDecodeResponse),
		statsPending: make(map[uint64]chan *StatsResponse),
	}
	go c.readLoop()
	return c
}

// Dial connects to a fronthaul server over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fronthaul: dial: %w", err)
	}
	return NewClient(conn), nil
}

// Close tears down the connection. Every in-flight request is drained
// immediately with ErrClientClosed — callers blocked in Await or a blocking
// call return with the tagged error instead of hanging until the read loop
// notices the dead socket.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.conn.Close()
}

// deliver hands one decoded response to the caller waiting on its ID. An
// unmatched ID is a protocol-integrity failure: the connection is torn down
// with a typed *ResponseIDError (satisfying every pending call) and deliver
// reports false so the read loop exits.
func deliver[R any](c *Client, msgType uint8, pending map[uint64]chan R, id uint64, resp R) bool {
	c.mu.Lock()
	ch, ok := pending[id]
	delete(pending, id)
	c.mu.Unlock()
	if !ok {
		c.fail(&ResponseIDError{MsgType: msgType, ID: id})
		return false
	}
	ch <- resp
	return true
}

// readLoop is the per-connection demux: it dispatches out-of-order responses
// to the callers waiting on their IDs.
func (c *Client) readLoop() {
	// The demux only exits with the terminal error set, at which point the
	// connection is unusable; closing it here unblocks a peer mid-write and
	// any concurrent submit instead of leaving them wedged on a dead socket.
	defer c.conn.Close()
	for {
		msgType, payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("fronthaul: connection lost: %w", err))
			return
		}
		switch msgType {
		case msgDecodeResponse:
			resp, err := decodeResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if !deliver(c, msgType, c.pending, resp.ID, resp) {
				return
			}
		case msgRegisterResponse:
			resp, err := decodeRegisterResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if !deliver(c, msgType, c.regPending, resp.ID, resp) {
				return
			}
		case msgSoftDecodeResponse:
			resp, err := decodeSoftResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if !deliver(c, msgType, c.softPending, resp.ID, resp) {
				return
			}
		case msgStatsResponse:
			resp, err := decodeStatsResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if !deliver(c, msgType, c.statsPending, resp.ID, resp) {
				return
			}
		default:
			// An unknown frame type means the peer speaks a different
			// protocol generation; silently discarding it would strand the
			// request it answered. Surface a version error and tear down.
			c.fail(fmt.Errorf("fronthaul: protocol error: unknown frame type %d (this client speaks version %d)",
				msgType, ProtocolVersion))
			return
		}
	}
}

// fail aborts all pending calls. The first terminal error wins: a Close
// racing the read loop's socket error keeps its ErrClientClosed tag.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed == nil {
		c.closed = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	for id, ch := range c.regPending {
		delete(c.regPending, id)
		close(ch)
	}
	for id, ch := range c.softPending {
		delete(c.softPending, id)
		close(ch)
	}
	for id, ch := range c.statsPending {
		delete(c.statsPending, id)
		close(ch)
	}
}

// Decode ships one channel use to the data center and waits for the decoded
// bits. It blocks until the response arrives or the connection fails.
func (c *Client) Decode(mod modulation.Modulation, h *linalg.Mat, y []complex128) (*DecodeResponse, error) {
	return c.DecodeWithDeadline(mod, h, y, 0)
}

// DecodeWithDeadline is Decode with a per-request processing budget: the
// data-center scheduler routes the problem to a classical solver when the
// QPU pool cannot meet the deadline. deadline ≤ 0 means no deadline (the
// server default applies).
func (c *Client) DecodeWithDeadline(mod modulation.Modulation, h *linalg.Mat, y []complex128, deadline time.Duration) (*DecodeResponse, error) {
	return c.DecodeQoS(mod, h, y, deadline, 0)
}

// DecodeQoS is Decode with the full QoS contract: a processing deadline and
// a target BER. The data center's planner sizes the anneal budget (reads ×
// anneal time, forward or reverse) to just reach the target within the
// deadline, or solves classically when the annealer cannot. deadline ≤ 0
// and targetBER ≤ 0 each select the server default; targetBER ≥ 1 is a
// local argument error (the wire protocol rejects it server-side too).
func (c *Client) DecodeQoS(mod modulation.Modulation, h *linalg.Mat, y []complex128, deadline time.Duration, targetBER float64) (*DecodeResponse, error) {
	dc, err := c.SubmitDecodeQoS(mod, h, y, deadline, targetBER)
	if err != nil {
		return nil, err
	}
	return dc.Await()
}

// qosWire validates and clamps the per-request QoS contract shared by every
// decode-class request: the deadline in wire microseconds (bounded by
// MaxDeadlineMicros) and the target BER (negative reads as "no target";
// ≥ 1 or NaN is an argument error).
func qosWire(deadline time.Duration, targetBER float64) (deadlineMicros, target float64, err error) {
	if targetBER >= 1 || math.IsNaN(targetBER) {
		return 0, 0, fmt.Errorf("fronthaul: target BER %g outside [0,1)", targetBER)
	}
	if deadline > 0 {
		deadlineMicros = float64(deadline) / float64(time.Microsecond)
		if deadlineMicros > MaxDeadlineMicros {
			deadlineMicros = MaxDeadlineMicros
		}
	}
	if targetBER < 0 {
		targetBER = 0
	}
	return deadlineMicros, targetBER, nil
}

// call is one in-flight pipelined request: the slot submit registered plus
// the channel its response (or teardown) arrives on.
type call[R any] struct {
	c  *Client
	ch chan R
}

// submit runs the send half of one request's lifecycle over a pending table:
// allocate an ID, register the slot, encode (the callback receives the ID),
// frame and send. Every request class — decode, register-channel,
// soft-decode, stats — goes through this one function, so the lifecycle
// (including the abandon-on-local-failure ordering) cannot drift between
// them. The pending map must be one of the Client's own tables (guarded by
// c.mu, drained by fail).
func submit[R any](c *Client, pending map[uint64]chan R, msgType uint8, encode func(id uint64) ([]byte, error)) (*call[R], error) {
	c.mu.Lock()
	if c.closed != nil {
		c.mu.Unlock()
		return nil, c.closed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan R, 1)
	pending[id] = ch
	c.mu.Unlock()

	abandon := func() {
		c.mu.Lock()
		delete(pending, id)
		c.mu.Unlock()
	}
	payload, err := encode(id)
	if err != nil {
		abandon()
		return nil, err
	}
	c.writeMu.Lock()
	err = writeFrame(c.conn, msgType, payload)
	c.writeMu.Unlock()
	if err != nil {
		abandon()
		return nil, err
	}
	return &call[R]{c: c, ch: ch}, nil
}

// await blocks for the matched response; a closed channel means the
// connection died (or Close drained the call) and the terminal error is
// surfaced. Callers check their response's Err field afterward.
func (k *call[R]) await() (R, error) {
	resp, ok := <-k.ch
	if !ok {
		var zero R
		return zero, k.c.closedErr()
	}
	return resp, nil
}

// roundTrip is submit + await: the blocking request lifecycle every
// non-pipelined call is a thin wrapper over.
func roundTrip[R any](c *Client, pending map[uint64]chan R, msgType uint8, encode func(id uint64) ([]byte, error)) (R, error) {
	k, err := submit(c, pending, msgType, encode)
	if err != nil {
		var zero R
		return zero, err
	}
	return k.await()
}

// decodeRoundTrip is roundTrip over the decode-response table, converting a
// remote error string into a Go error.
func (c *Client) decodeRoundTrip(msgType uint8, encode func(id uint64) ([]byte, error)) (*DecodeResponse, error) {
	resp, err := roundTrip(c, c.pending, msgType, encode)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote decode failed: %s", resp.Err)
	}
	return resp, nil
}

// DecodeCall is one in-flight pipelined decode request, returned by the
// Submit* decode methods. Await blocks until the matched response arrives —
// responses return out of order, so many calls may be awaited in any order —
// and converts a remote error string into a Go error exactly like the
// blocking calls. Await must be called exactly once per call.
type DecodeCall struct {
	k *call[*DecodeResponse]
}

// Await blocks for the decode response.
func (dc *DecodeCall) Await() (*DecodeResponse, error) {
	resp, err := dc.k.await()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote decode failed: %s", resp.Err)
	}
	return resp, nil
}

// submitDecode is the pipelined half of decodeRoundTrip.
func (c *Client) submitDecode(msgType uint8, encode func(id uint64) ([]byte, error)) (*DecodeCall, error) {
	k, err := submit(c, c.pending, msgType, encode)
	if err != nil {
		return nil, err
	}
	return &DecodeCall{k: k}, nil
}

// SubmitDecodeQoS is the pipelined form of DecodeQoS: it ships the request
// and returns immediately with the in-flight handle. The frame is on the
// wire when SubmitDecodeQoS returns, so an AP can keep a window of many
// decodes in flight on one connection and Await them as responses arrive.
func (c *Client) SubmitDecodeQoS(mod modulation.Modulation, h *linalg.Mat, y []complex128, deadline time.Duration, targetBER float64) (*DecodeCall, error) {
	deadlineMicros, target, err := qosWire(deadline, targetBER)
	if err != nil {
		return nil, err
	}
	return c.submitDecode(msgDecodeRequest, func(id uint64) ([]byte, error) {
		return encodeRequest(&DecodeRequest{
			ID: id, Mod: mod, H: h, Y: y,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
}

// RemoteChannel is a channel registered with the data center for a coherence
// window: decode received vectors against it with DecodeWithChannel. Handles
// are connection-scoped and die with the client.
type RemoteChannel struct {
	c      *Client
	handle uint64
	mod    modulation.Modulation
	rows   int
}

// Mod returns the modulation the channel was registered with.
func (rc *RemoteChannel) Mod() modulation.Modulation { return rc.mod }

// RegisterChannel ships one estimated channel to the data center (protocol
// v4) and returns the handle to decode a coherence window's symbols against.
// The server compiles the channel once — couplings, embedding, prepared
// physical program — and every DecodeWithChannel call only rewrites the
// y-dependent biases.
func (c *Client) RegisterChannel(mod modulation.Modulation, h *linalg.Mat) (*RemoteChannel, error) {
	resp, err := roundTrip(c, c.regPending, msgRegisterChannel, func(id uint64) ([]byte, error) {
		return encodeRegisterChannel(&RegisterChannelRequest{ID: id, Mod: mod, H: h})
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: channel registration failed: %s", resp.Err)
	}
	return &RemoteChannel{c: c, handle: resp.Handle, mod: mod, rows: h.Rows}, nil
}

// DecodeWithChannel decodes one received vector against a registered
// channel, carrying the same per-request QoS contract as DecodeQoS
// (deadline ≤ 0 and targetBER ≤ 0 select the server defaults). Symbols
// decoded this way are tagged with the channel's fingerprint, so the data
// center batches same-window symbols onto an already-programmed annealer.
func (c *Client) DecodeWithChannel(rc *RemoteChannel, y []complex128, deadline time.Duration, targetBER float64) (*DecodeResponse, error) {
	dc, err := c.SubmitDecodeWithChannel(rc, y, deadline, targetBER)
	if err != nil {
		return nil, err
	}
	return dc.Await()
}

// SubmitDecodeWithChannel is the pipelined form of DecodeWithChannel: the
// per-symbol decode of a coherence window ships immediately and the caller
// holds the in-flight handle, so a whole window of symbols can ride the wire
// concurrently and the data center's coherence-aware batching sees them all
// at once instead of one per round trip.
func (c *Client) SubmitDecodeWithChannel(rc *RemoteChannel, y []complex128, deadline time.Duration, targetBER float64) (*DecodeCall, error) {
	if rc == nil || rc.c != c {
		return nil, errors.New("fronthaul: channel not registered on this client")
	}
	if len(y) != rc.rows {
		return nil, fmt.Errorf("fronthaul: received vector has %d entries, channel has %d rows", len(y), rc.rows)
	}
	deadlineMicros, target, err := qosWire(deadline, targetBER)
	if err != nil {
		return nil, err
	}
	return c.submitDecode(msgDecodeByChannel, func(id uint64) ([]byte, error) {
		return encodeDecodeByChannel(&DecodeByChannelRequest{
			ID: id, Handle: rc.handle, Y: y,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
}

// PrecodeResponse is one solved downlink vector-perturbation search.
type PrecodeResponse struct {
	// V is the chosen perturbation vector, one complex integer per user.
	V []complex128
	// PerturbMod is the constellation the solution bits were drawn from
	// (identifies the alphabet depth the server actually used).
	PerturbMod modulation.Modulation
	// Energy is the minimized transmit power γ = ‖P(s+τv)‖².
	Energy float64
	// ComputeMicros, Backend and Batched carry the same solver metadata as
	// DecodeResponse.
	ComputeMicros float64
	Backend       string
	Batched       int
}

// precodeResponse converts a wire decode-response into a PrecodeResponse,
// inferring the perturbation alphabet the server used from the solution bit
// count (users · 2 · bits).
func precodeResponse(users int, resp *DecodeResponse) (*PrecodeResponse, error) {
	if users < 1 || len(resp.Bits)%(2*users) != 0 {
		return nil, fmt.Errorf("fronthaul: precode response has %d solution bits for %d users", len(resp.Bits), users)
	}
	pam, err := precoding.PerturbModulation(len(resp.Bits) / (2 * users))
	if err != nil {
		return nil, fmt.Errorf("fronthaul: precode response alphabet: %w", err)
	}
	return &PrecodeResponse{
		V:             precoding.PerturbationFromGrayBits(pam, resp.Bits),
		PerturbMod:    pam,
		Energy:        resp.Energy,
		ComputeMicros: resp.ComputeMicros,
		Backend:       resp.Backend,
		Batched:       resp.Batched,
	}, nil
}

// Precode ships one downlink vector-perturbation search to the data center
// (protocol v5): find the perturbation v minimizing the transmit power of
// user-data symbol vector s through downlink channel h (one row per user).
// perturbBits selects the alphabet depth (0 = server default); deadline and
// targetBER carry the usual QoS contract. The caller forms the transmit
// vector from the returned perturbation (precoding.Program.Transmit).
func (c *Client) Precode(mod modulation.Modulation, h *linalg.Mat, s []complex128, perturbBits int, deadline time.Duration, targetBER float64) (*PrecodeResponse, error) {
	deadlineMicros, target, err := qosWire(deadline, targetBER)
	if err != nil {
		return nil, err
	}
	resp, err := c.decodeRoundTrip(msgPrecodeRequest, func(id uint64) ([]byte, error) {
		return encodePrecode(&PrecodeRequest{
			ID: id, Mod: mod, PerturbBits: perturbBits, H: h, S: s,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
	if err != nil {
		return nil, err
	}
	return precodeResponse(len(s), resp)
}

// PrecodeWithChannel is Precode against a registered channel (the downlink
// mirror of DecodeWithChannel): the coherence window's H ships once and each
// symbol vector is an O(Nu) frame the data center precodes through its
// compiled VP program.
func (c *Client) PrecodeWithChannel(rc *RemoteChannel, s []complex128, perturbBits int, deadline time.Duration, targetBER float64) (*PrecodeResponse, error) {
	if rc == nil || rc.c != c {
		return nil, errors.New("fronthaul: channel not registered on this client")
	}
	if len(s) != rc.rows {
		return nil, fmt.Errorf("fronthaul: symbol vector has %d entries, channel serves %d users", len(s), rc.rows)
	}
	deadlineMicros, target, err := qosWire(deadline, targetBER)
	if err != nil {
		return nil, err
	}
	resp, err := c.decodeRoundTrip(msgPrecodeByChannel, func(id uint64) ([]byte, error) {
		return encodePrecodeByChannel(&PrecodeByChannelRequest{
			ID: id, Handle: rc.handle, PerturbBits: perturbBits, S: s,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
	if err != nil {
		return nil, err
	}
	return precodeResponse(len(s), resp)
}

// SoftQoS is the per-request contract of a soft decode: the LLR scaling and
// clamp plus the usual deadline/target-BER pair. The zero value is valid
// (unscaled LLRs, server-default clamp, server-default deadline and target).
type SoftQoS struct {
	// NoiseVar is the AP's per-antenna complex noise variance estimate σ²
	// (0 = unscaled energy differences).
	NoiseVar float64
	// LLRClamp bounds |LLR| and sets the quantization full scale
	// (0 = server default).
	LLRClamp float64
	// Deadline and TargetBER as in DecodeQoS (≤ 0 = server default).
	Deadline  time.Duration
	TargetBER float64
}

// LLRs dequantizes the response's int8 LLR payload back to float64 at the
// response clamp (softout.Dequantize).
func (r *SoftDecodeResponse) LLRs() []float64 {
	return softout.Dequantize(r.LLR8, r.Clamp)
}

// DecodeSoft ships one channel use to the data center requesting soft
// output (protocol v6) and waits for the hard decision plus per-bit LLRs.
// The LLRs ride the fronthaul as int8 at the response's clamp scale; use
// SoftDecodeResponse.LLRs to recover float values for the FEC layer.
func (c *Client) DecodeSoft(mod modulation.Modulation, h *linalg.Mat, y []complex128, q SoftQoS) (*SoftDecodeResponse, error) {
	deadlineMicros, target, err := qosWire(q.Deadline, q.TargetBER)
	if err != nil {
		return nil, err
	}
	return c.softRoundTrip(msgSoftDecodeRequest, func(id uint64) ([]byte, error) {
		return encodeSoftRequest(&SoftDecodeRequest{
			ID: id, Mod: mod, H: h, Y: y,
			NoiseVar: q.NoiseVar, LLRClamp: q.LLRClamp,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
}

// DecodeSoftWithChannel is DecodeSoft against a registered channel: the
// coherence window's H shipped once (RegisterChannel), every soft-decoded
// symbol an O(Nr) frame tagged with the channel's fingerprint for
// coherence-aware batching — exactly like DecodeWithChannel, soft.
func (c *Client) DecodeSoftWithChannel(rc *RemoteChannel, y []complex128, q SoftQoS) (*SoftDecodeResponse, error) {
	sc, err := c.SubmitDecodeSoftWithChannel(rc, y, q)
	if err != nil {
		return nil, err
	}
	return sc.Await()
}

// SoftDecodeCall is one in-flight pipelined soft decode, returned by
// SubmitDecodeSoftWithChannel. Await blocks for the matched response and
// converts a remote error string into a Go error; call it exactly once.
type SoftDecodeCall struct {
	k *call[*SoftDecodeResponse]
}

// Await blocks for the soft-decode response.
func (sc *SoftDecodeCall) Await() (*SoftDecodeResponse, error) {
	resp, err := sc.k.await()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote soft decode failed: %s", resp.Err)
	}
	return resp, nil
}

// SubmitDecodeSoftWithChannel is the pipelined form of
// DecodeSoftWithChannel: the soft per-symbol decode ships immediately and
// the caller holds the in-flight handle.
func (c *Client) SubmitDecodeSoftWithChannel(rc *RemoteChannel, y []complex128, q SoftQoS) (*SoftDecodeCall, error) {
	if rc == nil || rc.c != c {
		return nil, errors.New("fronthaul: channel not registered on this client")
	}
	if len(y) != rc.rows {
		return nil, fmt.Errorf("fronthaul: received vector has %d entries, channel has %d rows", len(y), rc.rows)
	}
	deadlineMicros, target, err := qosWire(q.Deadline, q.TargetBER)
	if err != nil {
		return nil, err
	}
	k, err := submit(c, c.softPending, msgSoftDecodeByChan, func(id uint64) ([]byte, error) {
		return encodeSoftByChannel(&SoftDecodeByChannelRequest{
			ID: id, Handle: rc.handle, Y: y,
			NoiseVar: q.NoiseVar, LLRClamp: q.LLRClamp,
			DeadlineMicros: deadlineMicros, TargetBER: target,
		})
	})
	if err != nil {
		return nil, err
	}
	return &SoftDecodeCall{k: k}, nil
}

// softRoundTrip is roundTrip over the soft-decode-response table, converting
// a remote error string into a Go error.
func (c *Client) softRoundTrip(msgType uint8, encode func(id uint64) ([]byte, error)) (*SoftDecodeResponse, error) {
	resp, err := roundTrip(c, c.softPending, msgType, encode)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote soft decode failed: %s", resp.Err)
	}
	return resp, nil
}

// PoolStats polls the data center's live serving statistics (protocol v7):
// the pool counter snapshot plus, when the server runs a telemetry recorder,
// the full recorder snapshot with per-stage latency histograms, deadline
// slack and anneal-quality aggregates. This is the frame behind
// `quamax -top` and `-watch`.
func (c *Client) PoolStats() (*StatsResponse, error) {
	resp, err := roundTrip(c, c.statsPending, msgStatsRequest, func(id uint64) ([]byte, error) {
		return encodeStatsRequest(&StatsRequest{ID: id}), nil
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("fronthaul: remote stats failed: %s", resp.Err)
	}
	return resp, nil
}

// closedErr returns the connection's terminal error (or a generic one).
func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed != nil {
		return c.closed
	}
	return errors.New("fronthaul: connection closed")
}
