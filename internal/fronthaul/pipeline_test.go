package fronthaul

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/modulation"
)

// sleepDispatcher serves each problem after sleeping its deadline argument
// and records the completion order, so a test can make response order the
// reverse of request order deterministically.
type sleepDispatcher struct {
	mu        sync.Mutex
	completed []time.Duration

	inService atomic.Int64
	maxSeen   atomic.Int64
}

func (d *sleepDispatcher) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	n := d.inService.Add(1)
	for {
		max := d.maxSeen.Load()
		if n <= max || d.maxSeen.CompareAndSwap(max, n) {
			break
		}
	}
	defer d.inService.Add(-1)
	if deadline > 0 {
		time.Sleep(deadline)
	}
	d.mu.Lock()
	d.completed = append(d.completed, deadline)
	d.mu.Unlock()
	return &backend.Result{Bits: []byte{1}, Backend: "sleep"}, nil
}

// TestPipelinedOutOfOrderResponses keeps several decodes in flight on one
// connection with service times arranged so responses come back in reverse
// submission order, and checks every Await still receives its own response:
// the whole point of the ID-matched demux.
func TestPipelinedOutOfOrderResponses(t *testing.T) {
	disp := &sleepDispatcher{}
	server := NewPoolServer(disp)
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 801, modulation.BPSK, 2)
	// First submitted sleeps longest: completion order is the reverse of
	// submission order.
	deadlines := []time.Duration{80 * time.Millisecond, 40 * time.Millisecond, 5 * time.Millisecond}
	var calls []*DecodeCall
	for _, d := range deadlines {
		dc, err := client.SubmitDecodeQoS(in.Mod, in.H, in.Y, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, dc)
	}
	for i, dc := range calls {
		resp, err := dc.Await()
		if err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		if resp.Backend != "sleep" || len(resp.Bits) == 0 {
			t.Fatalf("await %d delivered a foreign response: %+v", i, resp)
		}
	}
	if got := disp.maxSeen.Load(); got < 2 {
		t.Fatalf("peak in-service concurrency %d, want ≥ 2 (requests did not overlap)", got)
	}
	disp.mu.Lock()
	defer disp.mu.Unlock()
	if len(disp.completed) != 3 || disp.completed[0] != deadlines[2] || disp.completed[2] != deadlines[0] {
		t.Fatalf("completion order %v is not the reverse of submission %v", disp.completed, deadlines)
	}
}

// gateDispatcher blocks every dispatch until released, signalling each entry,
// so a test can count how many requests the server lets into service.
type gateDispatcher struct {
	entered chan struct{}
	release chan struct{}
}

func (d *gateDispatcher) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	d.entered <- struct{}{}
	select {
	case <-d.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &backend.Result{Bits: []byte{1}, Backend: "gate"}, nil
}

// TestPipelineWindowBackpressure pins the server's in-flight window at 2 and
// checks a third request is not admitted into service until a slot frees —
// the bounded-window semantics that turn a fast client into socket
// backpressure instead of unbounded server goroutines.
func TestPipelineWindowBackpressure(t *testing.T) {
	disp := &gateDispatcher{entered: make(chan struct{}, 16), release: make(chan struct{})}
	server := NewPoolServer(disp)
	server.PipelineDepth = 2
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 802, modulation.BPSK, 2)
	const total = 5
	var calls []*DecodeCall
	var callsMu sync.Mutex
	// Submits run in goroutines: once the window fills, the server stops
	// reading and the synchronous pipe blocks further writes.
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dc, err := client.SubmitDecodeQoS(in.Mod, in.H, in.Y, 0, 0)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			callsMu.Lock()
			calls = append(calls, dc)
			callsMu.Unlock()
		}()
	}
	// Exactly the window's worth of requests enters service.
	for i := 0; i < 2; i++ {
		select {
		case <-disp.entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never entered service", i)
		}
	}
	select {
	case <-disp.entered:
		t.Fatal("third request entered service with a full window of 2")
	case <-time.After(100 * time.Millisecond):
	}
	// Releasing the gate drains the window; everything completes.
	close(disp.release)
	wg.Wait()
	callsMu.Lock()
	pending := calls
	callsMu.Unlock()
	if len(pending) != total {
		t.Fatalf("only %d/%d submits completed", len(pending), total)
	}
	for i, dc := range pending {
		if _, err := dc.Await(); err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
	}
}

// TestCloseDrainsInFlightTagged checks Close fails every in-flight call
// immediately with the ErrClientClosed tag instead of leaving Await hanging
// on a response that will never come.
func TestCloseDrainsInFlightTagged(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	// Swallow request frames so submits complete; never answer.
	go func() {
		for {
			if _, _, err := readFrame(srvConn); err != nil {
				return
			}
		}
	}()
	in := testInstance(t, 803, modulation.BPSK, 2)
	var calls []*DecodeCall
	for i := 0; i < 3; i++ {
		dc, err := client.SubmitDecodeQoS(in.Mod, in.H, in.Y, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, dc)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	for i, dc := range calls {
		_, err := dc.Await()
		if err == nil {
			t.Fatalf("call %d succeeded after Close", i)
		}
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("call %d drained with untagged error %v", i, err)
		}
	}
	// New work is refused with the same tag.
	if _, err := client.SubmitDecodeQoS(in.Mod, in.H, in.Y, 0, 0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("closed client accepted a submit (err %v)", err)
	}
}

// TestResponseIDMismatchTypedError makes the peer answer an ID the client
// never issued and checks the in-flight call fails with the typed
// *ResponseIDError naming the frame type and bogus ID.
func TestResponseIDMismatchTypedError(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	defer client.Close()
	in := testInstance(t, 804, modulation.BPSK, 2)
	ready := make(chan struct{})
	go func() {
		if _, _, err := readFrame(srvConn); err != nil {
			return
		}
		close(ready)
	}()
	dc, err := client.SubmitDecodeQoS(in.Mod, in.H, in.Y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	// Answer an ID that was never issued (the client allocates from 1).
	if err := writeFrame(srvConn, msgDecodeResponse, encodeResponse(&DecodeResponse{ID: 999, Bits: []byte{1}})); err != nil {
		t.Fatal(err)
	}
	_, err = dc.Await()
	if err == nil {
		t.Fatal("in-flight call survived an unmatched response ID")
	}
	var ide *ResponseIDError
	if !errors.As(err, &ide) {
		t.Fatalf("teardown error %v is not a *ResponseIDError", err)
	}
	if ide.ID != 999 || ide.MsgType != msgDecodeResponse {
		t.Fatalf("ID error names (type %d, id %d), want (type %d, id 999)", ide.MsgType, ide.ID, msgDecodeResponse)
	}
}

// TestBlockingCallsStillLockstep checks the v2–v7 blocking API is untouched
// by pipelining: a client that only uses Decode observes strict
// request/response lockstep against a protocol-v7 style peer that reads one
// frame and answers it inline.
func TestBlockingCallsStillLockstep(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	defer client.Close()
	go func() {
		for {
			msgType, payload, err := readFrame(srvConn)
			if err != nil {
				return
			}
			if msgType != msgDecodeRequest {
				continue
			}
			req, err := decodeRequest(payload)
			if err != nil {
				return
			}
			// Answer inline before reading the next frame — the old
			// one-request-per-turn server behaviour.
			if err := writeFrame(srvConn, msgDecodeResponse, encodeResponse(&DecodeResponse{
				ID: req.ID, Bits: []byte{1, 0}, Backend: "lockstep"})); err != nil {
				return
			}
		}
	}()
	in := testInstance(t, 805, modulation.BPSK, 2)
	for i := 0; i < 5; i++ {
		resp, err := client.Decode(in.Mod, in.H, in.Y)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if resp.Backend != "lockstep" {
			t.Fatalf("decode %d answered by %q", i, resp.Backend)
		}
	}
}
