// Package fronthaul implements the C-RAN link the paper's architecture
// assumes (§1, §7): access points forward per-subcarrier decode work —
// the estimated channel H and received vector y — over a low-latency
// fronthaul to a centralized data center, where a QPU pool runs QuAMax and
// returns the decoded bits.
//
// The wire protocol is a minimal length-prefixed binary framing over any
// net.Conn (TCP in deployment; net.Pipe in tests): every frame is
//
//	uint32 payload length | uint8 message type | payload
//
// with little-endian integers and float64 IQ samples. Clients may pipeline:
// requests carry IDs and responses are matched by ID, so one connection
// serves many concurrent subcarrier decodes — the paper's "parallelize
// different problems (e.g., different subcarriers' ML decoding)" (§5.5).
package fronthaul

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
)

// ProtocolVersion is the fronthaul framing generation. Version 2 added the
// per-request deadline and the responding-backend metadata for the pool
// scheduler; version 3 appended the target BER so APs can express per-decode
// QoS to the data center's anneal-budget planner (version-2 requests, which
// lack the field, are still accepted and read as "no target"). Version 4
// added the channel-coherence frames: an AP registers an estimated channel
// once per coherence window (register-channel) and then ships only received
// vectors against the returned handle (decode-by-channel), letting the data
// center compile the channel once and decode many symbols through it.
// Version-3 decode requests (self-contained H + y) are still accepted
// unchanged. Version 5 opened the downlink: precode-request frames carry a
// user-data symbol vector (self-contained with H, or against a registered
// channel handle) and the data center answers with the vector-perturbation
// solution of internal/precoding, reusing the decode-response framing
// (solution bits + energy = transmit power γ). Version-4 and older payloads
// all still decode. Version 6 adds soft-output decoding: soft-decode request
// frames (self-contained, or against a registered channel handle) carry the
// noise variance and LLR clamp alongside the usual QoS contract, and the
// data center answers with a soft-decode response whose per-bit LLRs ride as
// a quantized int8 payload (softout.Quantize: ±clamp ↔ ±127, one byte per
// bit instead of a float64). Version-5 and older payloads all still decode.
// Version 7 adds the telemetry plane: a stats-request frame polls the serving
// pool and the data center answers with a stats-response carrying the pool
// counter snapshot plus, when the server runs a telemetry recorder, the full
// recorder snapshot — per-stage latency histograms (sparse-encoded: only
// nonzero buckets ride the wire), deadline-slack histograms, compile-cache
// counters and per-class anneal-quality aggregates — behind `quamax -top` and
// `-watch`. Version-6 and older payloads all still decode.
// Version 8 makes the connection pipelined: because every request frame
// already carries a client-chosen ID that the response echoes, a client may
// keep many frames in flight on one connection and the server answers
// out of order as shards finish, holding a bounded in-flight window (reads
// stall once the window fills, which is the backpressure signal). The wire
// layout is unchanged — v2–v7 clients that wait for each response before
// sending the next frame observe exactly the old lockstep behaviour. The
// stats response grows an optional per-shard PoolStats breakdown behind a new
// flags bit for servers fronting a sharded router; v7 payloads (flag absent)
// still decode.
// Version 9 adds the solver-health plane to the stats response: behind a new
// flags bit, the frame carries per-backend health entries (drift-detector
// state and score, baseline EWMAs, canary-probe counts; name-sorted — the
// canonical order, enforced on decode) and per-shard SLO burn entries
// (deadline-miss and BER-risk burn rates over fast/slow windows, the
// multi-window alerting verdict, and the router's shed counters). Like the
// shards and economics bits, the flag rides only when the block carries
// data, so an empty health plane re-encodes byte-identically to a v8 frame
// and v2–v8 payloads all still decode.
// Peers speaking a newer version may emit frame types this
// implementation does not know; the client surfaces those as protocol errors
// rather than discarding them silently.
const ProtocolVersion = 9

// Message types.
const (
	msgDecodeRequest      uint8 = 1
	msgDecodeResponse     uint8 = 2
	msgRegisterChannel    uint8 = 3
	msgRegisterResponse   uint8 = 4
	msgDecodeByChannel    uint8 = 5
	msgPrecodeRequest     uint8 = 6
	msgPrecodeByChannel   uint8 = 7
	msgSoftDecodeRequest  uint8 = 8
	msgSoftDecodeByChan   uint8 = 9
	msgSoftDecodeResponse uint8 = 10
	msgStatsRequest       uint8 = 11
	msgStatsResponse      uint8 = 12
)

// MaxFrameBytes bounds a frame payload; a 64×64 64-QAM request is ~130 KiB,
// so 16 MiB leaves ample room while stopping corrupt length prefixes.
const MaxFrameBytes = 16 << 20

// MaxDeadlineMicros bounds a request deadline (≈11.6 days in µs) — far past
// any real processing budget, and small enough that the microseconds→
// time.Duration conversion cannot overflow.
const MaxDeadlineMicros = 1e12

// DecodeRequest is one uplink channel use shipped AP → data center.
type DecodeRequest struct {
	ID  uint64
	Mod modulation.Modulation
	H   *linalg.Mat
	Y   []complex128
	// DeadlineMicros is the AP's processing budget for this decode; the pool
	// scheduler routes the problem to a classical solver when the QPU queue
	// cannot meet it. 0 means no deadline (use the server default).
	DeadlineMicros float64
	// TargetBER is the AP's QoS target for this decode: the data center's
	// planner sizes the anneal budget (reads × anneal time) to just reach
	// it within the deadline. 0 means no target (use the server default).
	TargetBER float64
}

// DecodeResponse carries the decoded bits back to the AP.
type DecodeResponse struct {
	ID     uint64
	Err    string // empty on success
	Bits   []byte
	Energy float64 // ML metric of the returned decision
	// ComputeMicros is the modeled QPU compute time (Na·(Ta+Tp)/Pf) spent on
	// this decode, reported for TTB accounting at the AP.
	ComputeMicros float64
	// Backend names the pool solver that produced the decode (e.g. "qpu0",
	// "sa"); empty on error responses.
	Backend string
	// Batched is the number of requests that shared the solver run
	// (1 = solo; >1 means the decode rode a shared embedding-slot batch).
	Batched int
}

// RegisterChannelRequest registers one estimated channel for a coherence
// window (protocol v4): the data center compiles it once and returns a
// connection-scoped handle that subsequent DecodeByChannelRequest frames
// reference instead of resending H per symbol.
type RegisterChannelRequest struct {
	ID  uint64
	Mod modulation.Modulation
	H   *linalg.Mat
}

// RegisterChannelResponse answers a channel registration with the handle to
// decode against (or an error).
type RegisterChannelResponse struct {
	ID     uint64
	Err    string // empty on success
	Handle uint64
}

// DecodeByChannelRequest is the execute-phase frame of protocol v4: one
// received vector y against a previously registered channel handle. Shipping
// y alone shrinks the per-symbol fronthaul payload from O(Nr·Nt) to O(Nr) —
// the C-RAN bandwidth argument for coherence-aware fronthauls.
type DecodeByChannelRequest struct {
	ID     uint64
	Handle uint64
	Y      []complex128
	// DeadlineMicros and TargetBER carry the same per-decode QoS contract as
	// DecodeRequest.
	DeadlineMicros float64
	TargetBER      float64
}

// PrecodeRequest is one downlink vector-perturbation search shipped to the
// data center (protocol v5): find the perturbation minimizing the transmit
// power of user-data symbol vector S through the downlink channel H
// (Nu users × Nt antennas). The response reuses DecodeResponse framing: Bits
// are the Gray solution bits of the perturbation constellation
// (precoding.PerturbationFromGrayBits decodes them) and Energy is the
// minimized transmit power γ = ‖P(s+τv)‖².
type PrecodeRequest struct {
	ID  uint64
	Mod modulation.Modulation
	// PerturbBits is the perturbation alphabet depth per dimension
	// (0 = server default).
	PerturbBits int
	H           *linalg.Mat
	S           []complex128
	// DeadlineMicros and TargetBER carry the same per-request QoS contract
	// as DecodeRequest.
	DeadlineMicros float64
	TargetBER      float64
}

// PrecodeByChannelRequest is the coherence-window form of PrecodeRequest:
// one user-data symbol vector against a previously registered channel
// handle, shrinking the per-vector fronthaul payload from O(Nu·Nt) to
// O(Nu) — the downlink mirror of DecodeByChannelRequest.
type PrecodeByChannelRequest struct {
	ID     uint64
	Handle uint64
	// PerturbBits is the perturbation alphabet depth (0 = server default).
	PerturbBits    int
	S              []complex128
	DeadlineMicros float64
	TargetBER      float64
}

// writeFrame emits one framed message.
func writeFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("fronthaul: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("fronthaul: frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("fronthaul: truncated frame: %w", err)
	}
	return hdr[4], payload, nil
}

// appendU16/U32/U64/F64 are little-endian append helpers.
func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.err = errShort
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

var errShort = errors.New("fronthaul: short payload")

// encodeRequest serializes a DecodeRequest payload.
func encodeRequest(req *DecodeRequest) ([]byte, error) {
	if req.H == nil || req.H.Rows != len(req.Y) {
		return nil, errors.New("fronthaul: request shape mismatch")
	}
	b := make([]byte, 0, 8+1+4+16*len(req.H.Data)+16*len(req.Y))
	b = appendU64(b, req.ID)
	b = append(b, byte(req.Mod))
	b = appendU16(b, uint16(req.H.Rows))
	b = appendU16(b, uint16(req.H.Cols))
	for _, v := range req.H.Data {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	for _, v := range req.Y {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodeRequest parses a DecodeRequest payload.
func decodeRequest(payload []byte) (*DecodeRequest, error) {
	r := &reader{b: payload}
	req := &DecodeRequest{ID: r.u64()}
	modByte := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	req.Mod = modulation.Modulation(modByte[0])
	if _, err := modulation.Parse(req.Mod.String()); err != nil {
		return nil, fmt.Errorf("fronthaul: bad modulation byte %d", modByte[0])
	}
	rows := int(r.u16())
	cols := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if rows < 1 || cols < 1 {
		return nil, errors.New("fronthaul: empty channel matrix")
	}
	// Bound the allocation by what the payload can actually hold (16 bytes
	// per complex entry) before trusting the header-declared shape.
	if rows*cols > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: %d×%d channel exceeds payload", rows, cols)
	}
	req.H = linalg.NewMat(rows, cols)
	for i := range req.H.Data {
		re, im := r.f64(), r.f64()
		req.H.Data[i] = complex(re, im)
	}
	req.Y = make([]complex128, rows)
	for i := range req.Y {
		re, im := r.f64(), r.f64()
		req.Y[i] = complex(re, im)
	}
	req.DeadlineMicros = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	// The target BER was appended in protocol version 3; a version-2 payload
	// ends here and reads as "no target" (zero, which validates).
	if r.off < len(payload) {
		req.TargetBER = r.f64()
		if r.err != nil {
			return nil, r.err
		}
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in request")
	}
	return req, nil
}

// encodeRegisterChannel serializes a RegisterChannelRequest payload.
func encodeRegisterChannel(req *RegisterChannelRequest) ([]byte, error) {
	if req.H == nil || req.H.Rows < 1 || req.H.Cols < 1 {
		return nil, errors.New("fronthaul: empty channel matrix")
	}
	b := make([]byte, 0, 8+1+4+16*len(req.H.Data))
	b = appendU64(b, req.ID)
	b = append(b, byte(req.Mod))
	b = appendU16(b, uint16(req.H.Rows))
	b = appendU16(b, uint16(req.H.Cols))
	for _, v := range req.H.Data {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	return b, nil
}

// decodeRegisterChannel parses a RegisterChannelRequest payload.
func decodeRegisterChannel(payload []byte) (*RegisterChannelRequest, error) {
	r := &reader{b: payload}
	req := &RegisterChannelRequest{ID: r.u64()}
	modByte := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	req.Mod = modulation.Modulation(modByte[0])
	if _, err := modulation.Parse(req.Mod.String()); err != nil {
		return nil, fmt.Errorf("fronthaul: bad modulation byte %d", modByte[0])
	}
	rows := int(r.u16())
	cols := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if rows < 1 || cols < 1 {
		return nil, errors.New("fronthaul: empty channel matrix")
	}
	// Bound the allocation by what the payload can actually hold (16 bytes
	// per complex entry) before trusting the header-declared shape.
	if rows*cols > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: %d×%d channel exceeds payload", rows, cols)
	}
	req.H = linalg.NewMat(rows, cols)
	for i := range req.H.Data {
		re, im := r.f64(), r.f64()
		req.H.Data[i] = complex(re, im)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in register-channel request")
	}
	return req, nil
}

// encodeRegisterResponse serializes a RegisterChannelResponse payload.
func encodeRegisterResponse(resp *RegisterChannelResponse) []byte {
	b := make([]byte, 0, 8+2+len(resp.Err)+8)
	b = appendU64(b, resp.ID)
	b = appendU16(b, uint16(len(resp.Err)))
	b = append(b, resp.Err...)
	b = appendU64(b, resp.Handle)
	return b
}

// decodeRegisterResponse parses a RegisterChannelResponse payload.
func decodeRegisterResponse(payload []byte) (*RegisterChannelResponse, error) {
	r := &reader{b: payload}
	resp := &RegisterChannelResponse{ID: r.u64()}
	errLen := int(r.u16())
	resp.Err = string(r.bytes(errLen))
	resp.Handle = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in register-channel response")
	}
	return resp, nil
}

// encodeDecodeByChannel serializes a DecodeByChannelRequest payload.
func encodeDecodeByChannel(req *DecodeByChannelRequest) ([]byte, error) {
	if len(req.Y) < 1 {
		return nil, errors.New("fronthaul: empty received vector")
	}
	b := make([]byte, 0, 8+8+4+16*len(req.Y)+16)
	b = appendU64(b, req.ID)
	b = appendU64(b, req.Handle)
	b = appendU32(b, uint32(len(req.Y)))
	for _, v := range req.Y {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodeDecodeByChannel parses a DecodeByChannelRequest payload.
func decodeDecodeByChannel(payload []byte) (*DecodeByChannelRequest, error) {
	r := &reader{b: payload}
	req := &DecodeByChannelRequest{ID: r.u64(), Handle: r.u64()}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 1 || n > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: bad received-vector length %d", n)
	}
	req.Y = make([]complex128, n)
	for i := range req.Y {
		re, im := r.f64(), r.f64()
		req.Y[i] = complex(re, im)
	}
	req.DeadlineMicros = r.f64()
	req.TargetBER = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in decode-by-channel request")
	}
	return req, nil
}

// encodePrecode serializes a PrecodeRequest payload.
func encodePrecode(req *PrecodeRequest) ([]byte, error) {
	if req.H == nil || req.H.Rows != len(req.S) {
		return nil, errors.New("fronthaul: precode request shape mismatch")
	}
	if req.PerturbBits < 0 || req.PerturbBits > precoding.MaxPerturbBits {
		return nil, fmt.Errorf("fronthaul: perturbation bits %d outside [0,%d]",
			req.PerturbBits, precoding.MaxPerturbBits)
	}
	b := make([]byte, 0, 8+2+4+16*len(req.H.Data)+16*len(req.S)+16)
	b = appendU64(b, req.ID)
	b = append(b, byte(req.Mod), byte(req.PerturbBits))
	b = appendU16(b, uint16(req.H.Rows))
	b = appendU16(b, uint16(req.H.Cols))
	for _, v := range req.H.Data {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	for _, v := range req.S {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodePrecode parses a PrecodeRequest payload.
func decodePrecode(payload []byte) (*PrecodeRequest, error) {
	r := &reader{b: payload}
	req := &PrecodeRequest{ID: r.u64()}
	hdr := r.bytes(2)
	if r.err != nil {
		return nil, r.err
	}
	req.Mod = modulation.Modulation(hdr[0])
	if _, err := modulation.Parse(req.Mod.String()); err != nil {
		return nil, fmt.Errorf("fronthaul: bad modulation byte %d", hdr[0])
	}
	req.PerturbBits = int(hdr[1])
	if req.PerturbBits > precoding.MaxPerturbBits {
		return nil, fmt.Errorf("fronthaul: perturbation bits %d outside [0,%d]",
			req.PerturbBits, precoding.MaxPerturbBits)
	}
	rows := int(r.u16())
	cols := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if rows < 1 || cols < 1 {
		return nil, errors.New("fronthaul: empty channel matrix")
	}
	// A users > antennas shape is a *request* error, not a framing error:
	// precoding.Compile rejects it and the server answers per-request, so
	// one bad argument does not tear down a shared pipelined connection.
	// Bound the allocation by what the payload can actually hold (16 bytes
	// per complex entry) before trusting the header-declared shape.
	if rows*cols > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: %d×%d channel exceeds payload", rows, cols)
	}
	req.H = linalg.NewMat(rows, cols)
	for i := range req.H.Data {
		re, im := r.f64(), r.f64()
		req.H.Data[i] = complex(re, im)
	}
	req.S = make([]complex128, rows)
	for i := range req.S {
		re, im := r.f64(), r.f64()
		req.S[i] = complex(re, im)
	}
	req.DeadlineMicros = r.f64()
	req.TargetBER = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in precode request")
	}
	return req, nil
}

// encodePrecodeByChannel serializes a PrecodeByChannelRequest payload.
func encodePrecodeByChannel(req *PrecodeByChannelRequest) ([]byte, error) {
	if len(req.S) < 1 {
		return nil, errors.New("fronthaul: empty symbol vector")
	}
	if req.PerturbBits < 0 || req.PerturbBits > precoding.MaxPerturbBits {
		return nil, fmt.Errorf("fronthaul: perturbation bits %d outside [0,%d]",
			req.PerturbBits, precoding.MaxPerturbBits)
	}
	b := make([]byte, 0, 8+8+1+4+16*len(req.S)+16)
	b = appendU64(b, req.ID)
	b = appendU64(b, req.Handle)
	b = append(b, byte(req.PerturbBits))
	b = appendU32(b, uint32(len(req.S)))
	for _, v := range req.S {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodePrecodeByChannel parses a PrecodeByChannelRequest payload.
func decodePrecodeByChannel(payload []byte) (*PrecodeByChannelRequest, error) {
	r := &reader{b: payload}
	req := &PrecodeByChannelRequest{ID: r.u64(), Handle: r.u64()}
	bits := r.bytes(1)
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	req.PerturbBits = int(bits[0])
	if req.PerturbBits > precoding.MaxPerturbBits {
		return nil, fmt.Errorf("fronthaul: perturbation bits %d outside [0,%d]",
			req.PerturbBits, precoding.MaxPerturbBits)
	}
	if n < 1 || n > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: bad symbol-vector length %d", n)
	}
	req.S = make([]complex128, n)
	for i := range req.S {
		re, im := r.f64(), r.f64()
		req.S[i] = complex(re, im)
	}
	req.DeadlineMicros = r.f64()
	req.TargetBER = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in precode-by-channel request")
	}
	return req, nil
}

// encodeResponse serializes a DecodeResponse payload.
func encodeResponse(resp *DecodeResponse) []byte {
	b := make([]byte, 0, 8+2+len(resp.Err)+4+len(resp.Bits)+16+2+len(resp.Backend)+2)
	b = appendU64(b, resp.ID)
	b = appendU16(b, uint16(len(resp.Err)))
	b = append(b, resp.Err...)
	b = appendU32(b, uint32(len(resp.Bits)))
	b = append(b, resp.Bits...)
	b = appendF64(b, resp.Energy)
	b = appendF64(b, resp.ComputeMicros)
	b = appendU16(b, uint16(len(resp.Backend)))
	b = append(b, resp.Backend...)
	b = appendU16(b, uint16(resp.Batched))
	return b
}

// decodeResponse parses a DecodeResponse payload.
func decodeResponse(payload []byte) (*DecodeResponse, error) {
	r := &reader{b: payload}
	resp := &DecodeResponse{ID: r.u64()}
	errLen := int(r.u16())
	resp.Err = string(r.bytes(errLen))
	bitLen := int(r.u32())
	resp.Bits = append([]byte(nil), r.bytes(bitLen)...)
	resp.Energy = r.f64()
	resp.ComputeMicros = r.f64()
	backendLen := int(r.u16())
	resp.Backend = string(r.bytes(backendLen))
	resp.Batched = int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in response")
	}
	return resp, nil
}
