package fronthaul

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"

	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/telemetry"
)

// fuzzStatsResponse builds a fully populated stats response: pool counters
// with two backends (both carrying spend/energy economics), a telemetry
// snapshot whose histograms span first, middle and last buckets and whose
// quality map holds two classes, a v8 per-shard breakdown, and a v9 health
// block covering every state and the burn/alert fields.
func fuzzStatsResponse() *StatsResponse {
	hist := func(idx ...int) telemetry.Hist {
		h := telemetry.Hist{Counts: make([]uint64, telemetry.NumBuckets), Min: 0.3, Max: 9000, Sum: 12345}
		for i, ix := range idx {
			h.Counts[ix] = uint64(i + 1)
			h.Count += uint64(i + 1)
		}
		return h
	}
	sn := &telemetry.Snapshot{
		UptimeMicros: 1e6, Finished: 41, Failed: 1, Traces: 42,
		CompileHits: 30, CompileMisses: 12,
		Wire:     hist(10, 40),
		SlackMet: hist(55), SlackMissed: hist(0, telemetry.NumBuckets-1),
		Quality: map[string]telemetry.QualityStats{
			"QPSK/4":   {Solves: 40, Reads: 4000, ChainBreaks: 7, LLRBits: 320, LLRSaturated: 3, BestEnergy: hist(20, 21, 22)},
			"16-QAM/8": {Solves: 2, Reads: 100, BestEnergy: hist(0)},
		},
	}
	for i := range sn.Stages {
		sn.Stages[i] = hist(i, i+8)
	}
	return &StatsResponse{
		ID: 14, UptimeMicros: 1e6,
		Pool: metrics.PoolStats{
			QueueDepth: 2, Submitted: 42, Completed: 41, Failed: 1,
			FallbackDispatches: 5, PlannerClassical: 3, DeadlineMisses: 2,
			BatchRuns: 4, BatchedProblems: 12, SoftSolved: 6, LLRSaturations: 1,
			SlotOccupancy: 0.75,
			ChannelCache:  metrics.ChannelCacheStats{Hits: 30, Misses: 12, Evictions: 2},
			Backends: []metrics.BackendStats{
				{Name: "qpu0", Solved: 20, Errors: 1, BusyMicros: 5000, Utilization: 0.5,
					SpendMicroUSD: 2777.5, EnergyMilliJ: 125000},
				{Name: "sa", Solved: 21, BusyMicros: 800, Utilization: 0.08,
					SpendMicroUSD: 0.25, EnergyMilliJ: 12},
			},
		},
		Telemetry: sn,
		Shards: []metrics.PoolStats{
			{
				Submitted: 30, Completed: 30, BatchRuns: 3, SlotOccupancy: 0.5,
				ChannelCache: metrics.ChannelCacheStats{Hits: 20, Misses: 8},
				Backends: []metrics.BackendStats{{Name: "s0/qpu0", Solved: 30, BusyMicros: 4000, Utilization: 0.4,
					SpendMicroUSD: 2222, EnergyMilliJ: 100000}},
			},
			{
				Submitted: 12, Completed: 11, Failed: 1, BatchRuns: 1, SlotOccupancy: 1,
				ChannelCache: metrics.ChannelCacheStats{Hits: 10, Misses: 4, Evictions: 2},
			},
		},
		Health: &metrics.HealthStats{
			Backends: []metrics.BackendHealth{
				{Name: "qpu0", State: metrics.HealthQuarantined, Score: 4.25, Observations: 900,
					ChainBreakEWMA: 0.31, EnergyEWMA: 12.5, FailureEWMA: 0.05, ReadsPerSolve: 48,
					CanaryPass: 2, CanaryFail: 7},
				{Name: "qpu1", State: metrics.HealthDegraded, Score: 1.5, Observations: 850,
					ChainBreakEWMA: 0.11, EnergyEWMA: 14.0, ReadsPerSolve: 50},
				{Name: "sa", State: metrics.HealthHealthy, Observations: 400, EnergyEWMA: 13.9},
			},
			Shards: []metrics.ShardBurn{
				{FastMissRate: 0.2, SlowMissRate: 0.08, FastBERRate: 0.12, SlowBERRate: 0.11,
					Samples: 640, Alerting: true, Sheds: 12, MissEWMA: 0.19},
				{SlowMissRate: 0.002, Samples: 500},
			},
		},
	}
}

// fuzzSeedFrames builds one valid payload per frame type of every protocol
// generation still accepted on the wire (v2–v9), so the fuzzer starts from
// the real grammar instead of random bytes: self-contained decode requests
// with (v3+) and without (v2) the target-BER field, the v4 coherence frames,
// the v5 precode frames, the v6 soft-decode frames (including truncated LLR
// payloads and zero-length LLR lists), the v7 stats frames (including a
// truncated histogram payload, an all-empty-histogram snapshot, a
// telemetry-less response, the flag-gated trailing economics block with its
// non-canonical all-zero form, and the v9 health block with its truncated
// and non-canonical empty forms), and every response shape, plus an
// unknown-version frame type a newer peer might emit.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	h := linalg.MatFromRows([][]complex128{
		{1 + 2i, -0.5},
		{0.25i, 3 - 1i},
		{-1, 0.125 + 0.5i},
	})
	y := []complex128{1 - 1i, 0.5, -2i}
	s := []complex128{1 + 1i, -1 - 1i}
	down := linalg.MatFromRows([][]complex128{
		{1 + 2i, -0.5, 0.25i},
		{1i, 3 - 1i, -1},
	})

	frame := func(msgType uint8, payload []byte, err error) []byte {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		return append([]byte{msgType}, payload...)
	}
	v3, err := encodeRequest(&DecodeRequest{ID: 1, Mod: modulation.QAM16, H: h, Y: y,
		DeadlineMicros: 1500, TargetBER: 1e-4})
	if err != nil {
		tb.Fatal(err)
	}
	precodePayload, err := encodePrecode(&PrecodeRequest{ID: 4, Mod: modulation.QPSK, PerturbBits: 2,
		H: down, S: s, DeadlineMicros: 2000, TargetBER: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	precodeByChan, err := encodePrecodeByChannel(&PrecodeByChannelRequest{ID: 5, Handle: 1,
		PerturbBits: 1, S: s})
	if err != nil {
		tb.Fatal(err)
	}
	byChan, err := encodeDecodeByChannel(&DecodeByChannelRequest{ID: 3, Handle: 9, Y: y,
		DeadlineMicros: 10, TargetBER: 1e-3})
	if err != nil {
		tb.Fatal(err)
	}
	register, err := encodeRegisterChannel(&RegisterChannelRequest{ID: 2, Mod: modulation.QPSK, H: h})
	if err != nil {
		tb.Fatal(err)
	}
	softReq, err := encodeSoftRequest(&SoftDecodeRequest{ID: 10, Mod: modulation.QAM16, H: h, Y: y,
		NoiseVar: 0.04, LLRClamp: 16, DeadlineMicros: 1500, TargetBER: 1e-4})
	if err != nil {
		tb.Fatal(err)
	}
	softByChan, err := encodeSoftByChannel(&SoftDecodeByChannelRequest{ID: 11, Handle: 3, Y: y,
		NoiseVar: 0.1, DeadlineMicros: 10, TargetBER: 1e-3})
	if err != nil {
		tb.Fatal(err)
	}
	softResp := encodeSoftResponse(&SoftDecodeResponse{ID: 12, Bits: []byte{1, 0, 1, 1},
		Clamp: 24, LLR8: []int8{127, -127, 5, -9}, Saturated: 2,
		Energy: 0.5, ComputeMicros: 80, Backend: "qpu0", Batched: 2})
	statsFull, err := encodeStatsResponse(fuzzStatsResponse())
	if err != nil {
		tb.Fatal(err)
	}
	statsBare, err := encodeStatsResponse(&StatsResponse{ID: 15, Pool: metrics.PoolStats{
		Submitted: 3, Completed: 3,
		Backends: []metrics.BackendStats{{Name: "qpu0", Solved: 3, BusyMicros: 900, Utilization: 0.4}},
	}})
	if err != nil {
		tb.Fatal(err)
	}
	statsEmptyHists, err := encodeStatsResponse(&StatsResponse{ID: 16,
		Telemetry: &telemetry.Snapshot{UptimeMicros: 5}})
	if err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{
		frame(msgDecodeRequest, v3, nil),
		// A v2 peer's request ends at the deadline field.
		append([]byte{msgDecodeRequest}, v3[:len(v3)-8]...),
		frame(msgRegisterChannel, register, nil),
		frame(msgDecodeByChannel, byChan, nil),
		frame(msgPrecodeRequest, precodePayload, nil),
		frame(msgPrecodeByChannel, precodeByChan, nil),
		frame(msgDecodeResponse, encodeResponse(&DecodeResponse{ID: 6, Bits: []byte{1, 0, 1, 1},
			Energy: 2.5, ComputeMicros: 12, Backend: "qpu0", Batched: 2}), nil),
		frame(msgDecodeResponse, encodeResponse(&DecodeResponse{ID: 7, Err: "boom"}), nil),
		frame(msgRegisterResponse, encodeRegisterResponse(&RegisterChannelResponse{ID: 8, Handle: 4}), nil),
		// The v6 soft-decode grammar.
		frame(msgSoftDecodeRequest, softReq, nil),
		frame(msgSoftDecodeByChan, softByChan, nil),
		frame(msgSoftDecodeResponse, softResp, nil),
		// A soft response whose LLR list is empty (error/hard-probe answers).
		frame(msgSoftDecodeResponse, encodeSoftResponse(&SoftDecodeResponse{ID: 13, Err: "denied"}), nil),
		// A soft response truncated inside its LLR payload.
		append([]byte{msgSoftDecodeResponse}, softResp[:len(softResp)-30]...),
		// The v7 stats grammar: the poll, a full telemetry snapshot, a pool-
		// only response, and a telemetry block whose histograms are all empty.
		frame(msgStatsRequest, encodeStatsRequest(&StatsRequest{ID: 14}), nil),
		frame(msgStatsResponse, statsFull, nil),
		frame(msgStatsResponse, statsBare, nil),
		frame(msgStatsResponse, statsEmptyHists, nil),
		// A stats response truncated inside a histogram's bucket list.
		append([]byte{msgStatsResponse}, statsFull[:len(statsFull)-60]...),
		// A stats response with a declared bucket entry but no bucket bytes.
		{msgStatsResponse, 0, 0, 0},
		// Malformed shapes the decoders must reject without panicking.
		{msgDecodeRequest},
		{msgPrecodeRequest, 0, 0, 0},
		{msgSoftDecodeRequest, 0, 0},
		frame(99, []byte{1, 2, 3}, nil), // unknown type
		// An unknown-version frame: the type right past this generation's
		// (a v8 peer's downgrade probe) must be ignored by the decoders and
		// surfaced — not crashed on — by the framing layer.
		frame(msgStatsResponse+1, statsFull, nil),
		append([]byte{msgDecodeRequest}, bytes.Repeat([]byte{0xff}, 40)...),
	}
	// A stats response whose shards flag is set but whose shard count is
	// zero — non-canonical (it would re-encode without the flag), rejected.
	// statsBare carries neither telemetry nor shards, so its final byte is
	// the flags byte.
	zeroShards := append([]byte(nil), statsBare...)
	zeroShards[len(zeroShards)-1] |= statsRespShards
	zeroShards = append(zeroShards, 0, 0)
	seeds = append(seeds, frame(msgStatsResponse, zeroShards, nil))
	// The economics twin: the flag is set but every spend/energy pair is
	// zero — non-canonical for the same reason (a re-encode would drop the
	// flag), rejected. statsBare lists one pool backend, so the trailing
	// block is one all-zero f64 pair.
	zeroEcon := append([]byte(nil), statsBare...)
	zeroEcon[len(zeroEcon)-1] |= statsRespEconomics
	zeroEcon = append(zeroEcon, make([]byte, 16)...)
	seeds = append(seeds, frame(msgStatsResponse, zeroEcon, nil))
	// A stats response truncated inside the trailing economics block.
	seeds = append(seeds, append([]byte{msgStatsResponse}, statsFull[:len(statsFull)-9]...))
	// The v9 health grammar's non-canonical form: the health flag set over an
	// empty block (zero backends, zero shards) — a re-encode would drop the
	// flag, so the decoder rejects it.
	zeroHealth := append([]byte(nil), statsBare...)
	zeroHealth[len(zeroHealth)-1] |= statsRespHealth
	zeroHealth = append(zeroHealth, 0, 0, 0, 0)
	seeds = append(seeds, frame(msgStatsResponse, zeroHealth, nil))
	// A stats response truncated inside the v9 health block (statsFull ends
	// with it: cutting 20 bytes lands mid-shard-burn entry).
	seeds = append(seeds, append([]byte{msgStatsResponse}, statsFull[:len(statsFull)-20]...))
	// The v8 pipelined streams: a connection's read loop sees many frames
	// back to back, responses returning out of order and interleaved across
	// request classes, and teardown can truncate the stream mid-frame. These
	// seeds exercise the whole-stream drain at the end of the fuzz body.
	wire := func(msgType uint8, payload []byte) []byte {
		var b []byte
		b = appendU32(b, uint32(len(payload)))
		b = append(b, msgType)
		return append(b, payload...)
	}
	respFrame := func(id uint64) []byte {
		return wire(msgDecodeResponse, encodeResponse(&DecodeResponse{ID: id, Bits: []byte{1, 0},
			Energy: 1, ComputeMicros: 5, Backend: "qpu0"}))
	}
	outOfOrder := append(append(respFrame(3), respFrame(1)...), respFrame(2)...)
	interleaved := append(append(append(respFrame(2),
		wire(msgSoftDecodeResponse, softResp)...),
		wire(msgRegisterResponse, encodeRegisterResponse(&RegisterChannelResponse{ID: 4, Handle: 7}))...),
		wire(msgStatsResponse, statsBare)...)
	truncatedMid := append(append(respFrame(1), respFrame(2)...), respFrame(3)[:7]...)
	forgedLen := append(respFrame(1), wire(msgDecodeResponse, nil)...)
	forgedLen[len(forgedLen)-2] = 0xff // second frame claims a ~4GB payload
	seeds = append(seeds, outOfOrder, interleaved, truncatedMid, forgedLen)
	return seeds
}

// FuzzDecodeFrame fuzzes the wire grammar: the first byte selects the frame
// type, the rest is the payload handed to that type's decoder (the exact
// situation of a server or client read loop after readFrame). No input may
// panic, and any payload a decoder accepts must survive a re-encode +
// re-decode round trip — the invariant that keeps v2–v6 compatibility
// honest.
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		msgType, payload := data[0], data[1:]
		switch msgType {
		case msgDecodeRequest:
			req, err := decodeRequest(payload)
			if err != nil {
				return
			}
			re, err := encodeRequest(req)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			if _, err := decodeRequest(re); err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
		case msgRegisterChannel:
			req, err := decodeRegisterChannel(payload)
			if err != nil {
				return
			}
			re, err := encodeRegisterChannel(req)
			if err != nil {
				t.Fatalf("accepted register-channel does not re-encode: %v", err)
			}
			if _, err := decodeRegisterChannel(re); err != nil {
				t.Fatalf("re-encoded register-channel does not decode: %v", err)
			}
		case msgDecodeByChannel:
			req, err := decodeDecodeByChannel(payload)
			if err != nil {
				return
			}
			re, err := encodeDecodeByChannel(req)
			if err != nil {
				t.Fatalf("accepted decode-by-channel does not re-encode: %v", err)
			}
			if _, err := decodeDecodeByChannel(re); err != nil {
				t.Fatalf("re-encoded decode-by-channel does not decode: %v", err)
			}
		case msgPrecodeRequest:
			req, err := decodePrecode(payload)
			if err != nil {
				return
			}
			re, err := encodePrecode(req)
			if err != nil {
				t.Fatalf("accepted precode request does not re-encode: %v", err)
			}
			if _, err := decodePrecode(re); err != nil {
				t.Fatalf("re-encoded precode request does not decode: %v", err)
			}
		case msgPrecodeByChannel:
			req, err := decodePrecodeByChannel(payload)
			if err != nil {
				return
			}
			re, err := encodePrecodeByChannel(req)
			if err != nil {
				t.Fatalf("accepted precode-by-channel does not re-encode: %v", err)
			}
			if _, err := decodePrecodeByChannel(re); err != nil {
				t.Fatalf("re-encoded precode-by-channel does not decode: %v", err)
			}
		case msgSoftDecodeRequest:
			req, err := decodeSoftRequest(payload)
			if err != nil {
				return
			}
			re, err := encodeSoftRequest(req)
			if err != nil {
				t.Fatalf("accepted soft request does not re-encode: %v", err)
			}
			if _, err := decodeSoftRequest(re); err != nil {
				t.Fatalf("re-encoded soft request does not decode: %v", err)
			}
		case msgSoftDecodeByChan:
			req, err := decodeSoftByChannel(payload)
			if err != nil {
				return
			}
			re, err := encodeSoftByChannel(req)
			if err != nil {
				t.Fatalf("accepted soft-by-channel does not re-encode: %v", err)
			}
			if _, err := decodeSoftByChannel(re); err != nil {
				t.Fatalf("re-encoded soft-by-channel does not decode: %v", err)
			}
		case msgSoftDecodeResponse:
			resp, err := decodeSoftResponse(payload)
			if err != nil {
				return
			}
			if _, err := decodeSoftResponse(encodeSoftResponse(resp)); err != nil {
				t.Fatalf("re-encoded soft response does not decode: %v", err)
			}
		case msgDecodeResponse:
			resp, err := decodeResponse(payload)
			if err != nil {
				return
			}
			if _, err := decodeResponse(encodeResponse(resp)); err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
		case msgRegisterResponse:
			resp, err := decodeRegisterResponse(payload)
			if err != nil {
				return
			}
			if _, err := decodeRegisterResponse(encodeRegisterResponse(resp)); err != nil {
				t.Fatalf("re-encoded register response does not decode: %v", err)
			}
		case msgStatsRequest:
			req, err := decodeStatsRequest(payload)
			if err != nil {
				return
			}
			if _, err := decodeStatsRequest(encodeStatsRequest(req)); err != nil {
				t.Fatalf("re-encoded stats request does not decode: %v", err)
			}
		case msgStatsResponse:
			resp, err := decodeStatsResponse(payload)
			if err != nil {
				return
			}
			re, err := encodeStatsResponse(resp)
			if err != nil {
				t.Fatalf("accepted stats response does not re-encode: %v", err)
			}
			if !bytes.Equal(re, payload) {
				// The sparse histogram grammar is canonical (strictly
				// increasing indexes, no zero counts), so decode∘encode must
				// be the identity on accepted payloads.
				t.Fatalf("stats response re-encode is not byte-identical")
			}
		}
		// Whatever the type, the framing layer itself must stay panic-free on
		// the raw bytes read as a pipelined stream: many frames back to back
		// (out-of-order responses, interleaved classes), truncated mid-frame,
		// or with forged lengths. Drain until the first framing error, the
		// exact loop a v8 connection's read side runs.
		r := bytes.NewReader(data)
		for {
			if _, _, err := readFrame(r); err != nil {
				break
			}
		}
	})
}

// FuzzClientDemux drives a live Client's per-connection demux with a
// fuzz-chosen response script: each script byte answers one request ID in
// [0,5), so responses arrive out of order, duplicated (an already-answered
// ID), or for requests never issued. The invariants: no delivery may panic
// or wedge, an unmatched ID must tear the connection down with the typed
// *ResponseIDError, and every in-flight call must return — a matched
// response, the ID error, or the teardown tag — once the peer goes away.
func FuzzClientDemux(f *testing.F) {
	f.Add([]byte{1, 2, 3}) // in order
	f.Add([]byte{3, 1, 2}) // out of order, all matched
	f.Add([]byte{2})       // partial delivery, then peer close
	f.Add([]byte{1, 1, 2}) // duplicate ID: second delivery collides
	f.Add([]byte{0})       // ID never allocated by this client
	f.Add([]byte{4, 1})    // ID above every issued request
	f.Add([]byte{})        // peer closes without answering
	f.Fuzz(func(t *testing.T, script []byte) {
		h := linalg.MatFromRows([][]complex128{{1, 0}, {0, 1}})
		y := []complex128{1, -1}
		cliConn, srvConn := net.Pipe()
		c := NewClient(cliConn)
		defer c.Close()
		// Peer harness: swallow the request frames so submits never block on
		// the synchronous pipe.
		go func() {
			for {
				if _, _, err := readFrame(srvConn); err != nil {
					return
				}
			}
		}()
		// Three in-flight pipelined decodes: IDs 1, 2, 3.
		var calls []*DecodeCall
		for i := 0; i < 3; i++ {
			dc, err := c.SubmitDecodeQoS(modulation.BPSK, h, y, 0, 0)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			calls = append(calls, dc)
		}
		for _, b := range script {
			id := uint64(b % 5)
			err := writeFrame(srvConn, msgDecodeResponse,
				encodeResponse(&DecodeResponse{ID: id, Bits: []byte{1, 0}}))
			if err != nil {
				// The demux tore the connection down mid-script (collision);
				// that is the expected path, not a failure.
				break
			}
		}
		srvConn.Close()
		for i, dc := range calls {
			resp, err := dc.Await()
			if err == nil {
				if resp == nil || len(resp.Bits) == 0 {
					t.Fatalf("call %d delivered an empty response", i)
				}
				continue
			}
			var ide *ResponseIDError
			if errors.As(err, &ide) {
				// The teardown error names the colliding ID, which must be
				// either never issued (0 or > 3) or an in-range ID the script
				// answered more than once.
				if ide.MsgType != msgDecodeResponse ||
					(ide.ID >= 1 && ide.ID <= 3 && !duplicated(script, ide.ID)) {
					t.Fatalf("call %d: ID error for %d which was neither unknown nor duplicated (script %v)", i, ide.ID, script)
				}
				continue
			}
			// Otherwise the peer closed or Close drained the call — both are
			// tagged teardown paths, never a hang.
			if !errors.Is(err, ErrClientClosed) && !strings.Contains(err.Error(), "connection lost") {
				t.Fatalf("call %d: untyped teardown error %v", i, err)
			}
		}
	})
}

// duplicated reports whether id is answered more than once by script.
func duplicated(script []byte, id uint64) bool {
	n := 0
	for _, b := range script {
		if uint64(b%5) == id {
			n++
		}
	}
	return n > 1
}
