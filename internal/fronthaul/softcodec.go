// Protocol v6 soft-decode framing: the wire half of the soft-output
// detection subsystem. An AP that runs a soft-decision FEC chain requests
// per-bit LLRs with a soft-decode frame (self-contained H+y, or y against a
// registered channel handle), supplying the noise variance its channel
// estimator already tracks; the data center answers with the hard decision
// plus the LLR vector quantized to int8 at the response's clamp
// (softout.Quantize), so the per-bit soft payload costs one byte on the
// fronthaul instead of a float64.

package fronthaul

import (
	"errors"
	"fmt"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
)

// SoftDecodeRequest is one uplink channel use requesting soft output
// (protocol v6): decode y through H and return per-bit LLRs alongside the
// hard decision.
type SoftDecodeRequest struct {
	ID  uint64
	Mod modulation.Modulation
	H   *linalg.Mat
	Y   []complex128
	// NoiseVar is the AP-estimated per-antenna complex noise variance σ²
	// scaling the LLRs (0 = unscaled energy differences).
	NoiseVar float64
	// LLRClamp bounds |LLR| and sets the int8 quantization full scale
	// (0 = the server's configured default).
	LLRClamp float64
	// DeadlineMicros and TargetBER carry the same per-decode QoS contract as
	// DecodeRequest.
	DeadlineMicros float64
	TargetBER      float64
}

// SoftDecodeByChannelRequest is the coherence-window form of
// SoftDecodeRequest: one received vector against a previously registered
// channel handle (protocol v4 registration), O(Nr) on the wire.
type SoftDecodeByChannelRequest struct {
	ID     uint64
	Handle uint64
	Y      []complex128
	// NoiseVar, LLRClamp, DeadlineMicros and TargetBER as in
	// SoftDecodeRequest.
	NoiseVar       float64
	LLRClamp       float64
	DeadlineMicros float64
	TargetBER      float64
}

// SoftDecodeResponse carries a soft decode back to the AP: the hard-decision
// bits plus the per-bit LLRs as int8 wire values at full scale ±Clamp.
type SoftDecodeResponse struct {
	ID  uint64
	Err string // empty on success
	// Bits are the hard-decision data bits (identical to what a hard decode
	// of the same problem would return).
	Bits []byte
	// Clamp is the LLR magnitude the quantization maps onto ±127 — the
	// scale LLRs() dequantizes with.
	Clamp float64
	// LLR8 are the quantized per-bit LLRs (softout convention: positive
	// favors bit 1), one entry per data bit.
	LLR8 []int8
	// Saturated counts the LLR entries that hit the clamp server-side.
	Saturated int
	// Energy, ComputeMicros, Backend and Batched carry the same solver
	// metadata as DecodeResponse.
	Energy        float64
	ComputeMicros float64
	Backend       string
	Batched       int
}

// validateSoftScaling rejects unrepresentable noise-variance / clamp pairs
// shared by both soft request forms.
func validateSoftScaling(noiseVar, clamp float64) error {
	if !(noiseVar >= 0) || math.IsInf(noiseVar, 0) {
		return fmt.Errorf("fronthaul: invalid noise variance %g", noiseVar)
	}
	if !(clamp >= 0) || math.IsInf(clamp, 0) {
		return fmt.Errorf("fronthaul: invalid LLR clamp %g", clamp)
	}
	return nil
}

// validateQoSWire rejects out-of-range deadline/target fields shared by
// every request form: NaN/negative deadlines, deadlines past
// MaxDeadlineMicros (so the µs→time.Duration conversion on the server
// cannot overflow int64 — float-to-int conversion of an out-of-range value
// is implementation-defined), and targets outside [0, 1).
func validateQoSWire(deadlineMicros, targetBER float64) error {
	if !(deadlineMicros >= 0) || deadlineMicros > MaxDeadlineMicros {
		return fmt.Errorf("fronthaul: invalid deadline %g µs", deadlineMicros)
	}
	if !(targetBER >= 0) || targetBER >= 1 {
		return fmt.Errorf("fronthaul: invalid target BER %g", targetBER)
	}
	return nil
}

// encodeSoftRequest serializes a SoftDecodeRequest payload.
func encodeSoftRequest(req *SoftDecodeRequest) ([]byte, error) {
	if req.H == nil || req.H.Rows != len(req.Y) {
		return nil, errors.New("fronthaul: request shape mismatch")
	}
	if err := validateSoftScaling(req.NoiseVar, req.LLRClamp); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 8+1+4+16*len(req.H.Data)+16*len(req.Y)+32)
	b = appendU64(b, req.ID)
	b = append(b, byte(req.Mod))
	b = appendU16(b, uint16(req.H.Rows))
	b = appendU16(b, uint16(req.H.Cols))
	for _, v := range req.H.Data {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	for _, v := range req.Y {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.NoiseVar)
	b = appendF64(b, req.LLRClamp)
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodeSoftRequest parses a SoftDecodeRequest payload.
func decodeSoftRequest(payload []byte) (*SoftDecodeRequest, error) {
	r := &reader{b: payload}
	req := &SoftDecodeRequest{ID: r.u64()}
	modByte := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	req.Mod = modulation.Modulation(modByte[0])
	if _, err := modulation.Parse(req.Mod.String()); err != nil {
		return nil, fmt.Errorf("fronthaul: bad modulation byte %d", modByte[0])
	}
	rows := int(r.u16())
	cols := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if rows < 1 || cols < 1 {
		return nil, errors.New("fronthaul: empty channel matrix")
	}
	// Bound the allocation by what the payload can actually hold (16 bytes
	// per complex entry) before trusting the header-declared shape.
	if rows*cols > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: %d×%d channel exceeds payload", rows, cols)
	}
	req.H = linalg.NewMat(rows, cols)
	for i := range req.H.Data {
		re, im := r.f64(), r.f64()
		req.H.Data[i] = complex(re, im)
	}
	req.Y = make([]complex128, rows)
	for i := range req.Y {
		re, im := r.f64(), r.f64()
		req.Y[i] = complex(re, im)
	}
	req.NoiseVar = r.f64()
	req.LLRClamp = r.f64()
	req.DeadlineMicros = r.f64()
	req.TargetBER = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if err := validateSoftScaling(req.NoiseVar, req.LLRClamp); err != nil {
		return nil, err
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in soft-decode request")
	}
	return req, nil
}

// encodeSoftByChannel serializes a SoftDecodeByChannelRequest payload.
func encodeSoftByChannel(req *SoftDecodeByChannelRequest) ([]byte, error) {
	if len(req.Y) < 1 {
		return nil, errors.New("fronthaul: empty received vector")
	}
	if err := validateSoftScaling(req.NoiseVar, req.LLRClamp); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 8+8+4+16*len(req.Y)+32)
	b = appendU64(b, req.ID)
	b = appendU64(b, req.Handle)
	b = appendU32(b, uint32(len(req.Y)))
	for _, v := range req.Y {
		b = appendF64(b, real(v))
		b = appendF64(b, imag(v))
	}
	b = appendF64(b, req.NoiseVar)
	b = appendF64(b, req.LLRClamp)
	b = appendF64(b, req.DeadlineMicros)
	b = appendF64(b, req.TargetBER)
	return b, nil
}

// decodeSoftByChannel parses a SoftDecodeByChannelRequest payload.
func decodeSoftByChannel(payload []byte) (*SoftDecodeByChannelRequest, error) {
	r := &reader{b: payload}
	req := &SoftDecodeByChannelRequest{ID: r.u64(), Handle: r.u64()}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 1 || n > len(payload)/16 {
		return nil, fmt.Errorf("fronthaul: bad received-vector length %d", n)
	}
	req.Y = make([]complex128, n)
	for i := range req.Y {
		re, im := r.f64(), r.f64()
		req.Y[i] = complex(re, im)
	}
	req.NoiseVar = r.f64()
	req.LLRClamp = r.f64()
	req.DeadlineMicros = r.f64()
	req.TargetBER = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if err := validateSoftScaling(req.NoiseVar, req.LLRClamp); err != nil {
		return nil, err
	}
	if err := validateQoSWire(req.DeadlineMicros, req.TargetBER); err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in soft-decode-by-channel request")
	}
	return req, nil
}

// encodeSoftResponse serializes a SoftDecodeResponse payload.
func encodeSoftResponse(resp *SoftDecodeResponse) []byte {
	b := make([]byte, 0, 8+2+len(resp.Err)+4+len(resp.Bits)+8+4+len(resp.LLR8)+4+16+2+len(resp.Backend)+2)
	b = appendU64(b, resp.ID)
	b = appendU16(b, uint16(len(resp.Err)))
	b = append(b, resp.Err...)
	b = appendU32(b, uint32(len(resp.Bits)))
	b = append(b, resp.Bits...)
	b = appendF64(b, resp.Clamp)
	b = appendU32(b, uint32(len(resp.LLR8)))
	for _, q := range resp.LLR8 {
		b = append(b, byte(q))
	}
	b = appendU32(b, uint32(resp.Saturated))
	b = appendF64(b, resp.Energy)
	b = appendF64(b, resp.ComputeMicros)
	b = appendU16(b, uint16(len(resp.Backend)))
	b = append(b, resp.Backend...)
	b = appendU16(b, uint16(resp.Batched))
	return b
}

// decodeSoftResponse parses a SoftDecodeResponse payload. A zero-length LLR
// list is valid (error responses, and hard-capable peers answering a soft
// probe); the clamp must stay finite and non-negative so dequantization is
// well defined.
func decodeSoftResponse(payload []byte) (*SoftDecodeResponse, error) {
	r := &reader{b: payload}
	resp := &SoftDecodeResponse{ID: r.u64()}
	errLen := int(r.u16())
	resp.Err = string(r.bytes(errLen))
	bitLen := int(r.u32())
	resp.Bits = append([]byte(nil), r.bytes(bitLen)...)
	resp.Clamp = r.f64()
	llrLen := int(r.u32())
	if r.err == nil && (llrLen < 0 || llrLen > len(payload)) {
		return nil, fmt.Errorf("fronthaul: bad LLR payload length %d", llrLen)
	}
	raw := r.bytes(llrLen)
	if r.err == nil {
		resp.LLR8 = make([]int8, llrLen)
		for i, v := range raw {
			resp.LLR8[i] = int8(v)
		}
	}
	resp.Saturated = int(r.u32())
	resp.Energy = r.f64()
	resp.ComputeMicros = r.f64()
	backendLen := int(r.u16())
	resp.Backend = string(r.bytes(backendLen))
	resp.Batched = int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if !(resp.Clamp >= 0) || math.IsInf(resp.Clamp, 0) {
		return nil, fmt.Errorf("fronthaul: invalid LLR clamp %g in response", resp.Clamp)
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in soft-decode response")
	}
	return resp, nil
}
