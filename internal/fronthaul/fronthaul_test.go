package fronthaul

import (
	"bytes"
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

func testDecoder(t *testing.T) *core.Decoder {
	t.Helper()
	d, err := core.New(core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testInstance(t *testing.T, seed int64, mod modulation.Modulation, nt int) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRequestCodecRoundTrip(t *testing.T) {
	src := rng.New(121)
	h := channel.Rayleigh{}.Generate(src, 3, 2)
	req := &DecodeRequest{ID: 42, Mod: modulation.QAM16, H: h, Y: []complex128{1 + 2i, 3, -1i}}
	payload, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 42 || back.Mod != modulation.QAM16 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if linalg.MaxAbsDiff(h, back.H) != 0 {
		t.Fatal("H mismatch")
	}
	for i := range req.Y {
		if back.Y[i] != req.Y[i] {
			t.Fatal("Y mismatch")
		}
	}
}

func TestRequestCodecRejectsCorruption(t *testing.T) {
	src := rng.New(122)
	h := channel.Rayleigh{}.Generate(src, 2, 2)
	payload, _ := encodeRequest(&DecodeRequest{ID: 1, Mod: modulation.BPSK, H: h, Y: []complex128{0, 0}})
	if _, err := decodeRequest(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := decodeRequest(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[8] = 200 // invalid modulation byte
	if _, err := decodeRequest(bad); err == nil {
		t.Fatal("bad modulation accepted")
	}
	if _, err := encodeRequest(&DecodeRequest{Mod: modulation.BPSK, H: h, Y: []complex128{0}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := &DecodeResponse{ID: 7, Bits: []byte{1, 0, 1}, Energy: 2.5, ComputeMicros: 12.25}
	back, err := decodeResponse(encodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Energy != 2.5 || back.ComputeMicros != 12.25 || len(back.Bits) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	errResp := &DecodeResponse{ID: 9, Err: "boom"}
	back, err = decodeResponse(encodeResponse(errResp))
	if err != nil || back.Err != "boom" {
		t.Fatalf("error round trip: %+v, %v", back, err)
	}
}

func TestFrameSizeGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgDecodeRequest, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A forged giant length prefix must be rejected on read.
	forged := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := readFrame(bytes.NewReader(forged)); err == nil {
		t.Fatal("forged length accepted")
	}
}

// Full loop over an in-memory pipe: AP decodes a noise-free instance through
// the data-center server and gets its bits back.
func TestClientServerOverPipe(t *testing.T) {
	server := NewServer(testDecoder(t), 1)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 123, modulation.QPSK, 4)
	resp, err := client.Decode(in.Mod, in.H, in.Y)
	if err != nil {
		t.Fatal(err)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatalf("remote decode got %d bit errors", in.BitErrors(resp.Bits))
	}
	if resp.Energy > 1e-9 {
		t.Fatalf("energy %g, want ≈0", resp.Energy)
	}
	if resp.ComputeMicros <= 0 {
		t.Fatal("compute time not reported")
	}
}

// Real TCP with concurrent pipelined requests from multiple goroutines.
func TestClientServerOverTCPConcurrent(t *testing.T) {
	server := NewServer(testDecoder(t), 2)
	defer server.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const parallel = 8
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := testInstance(t, int64(200+i), modulation.BPSK, 6)
			resp, err := client.Decode(in.Mod, in.H, in.Y)
			if err != nil {
				errs[i] = err
				return
			}
			if in.BitErrors(resp.Bits) != 0 {
				errs[i] = errShort // sentinel: wrong bits
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
}

// A decode error on the server (oversized problem) must surface at the
// client as an error, not a hang.
func TestServerReportsDecodeError(t *testing.T) {
	server := NewServer(testDecoder(t), 3)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 300, modulation.BPSK, 30) // needs M=8 > C6
	if _, err := client.Decode(in.Mod, in.H, in.Y); err == nil {
		t.Fatal("expected remote decode error")
	}
}

// An unknown frame type from the peer must surface as a protocol-version
// error on pending and subsequent calls, not be silently discarded.
func TestClientRejectsUnknownFrameType(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	defer client.Close()
	in := testInstance(t, 400, modulation.BPSK, 4)
	done := make(chan error, 1)
	go func() {
		_, err := client.Decode(in.Mod, in.H, in.Y)
		done <- err
	}()
	if _, _, err := readFrame(srvConn); err != nil { // swallow the request
		t.Fatal(err)
	}
	if err := writeFrame(srvConn, 99, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil {
		t.Fatal("unknown frame type silently discarded")
	}
	if !strings.Contains(err.Error(), "protocol error") || !strings.Contains(err.Error(), "99") {
		t.Fatalf("error %q does not identify the protocol problem", err)
	}
	// The connection is poisoned: later calls fail fast with the same cause.
	if _, err := client.Decode(in.Mod, in.H, in.Y); err == nil {
		t.Fatal("client kept accepting work after a protocol error")
	}
}

// A request the server cannot parse (e.g. a newer protocol generation with
// extra trailing fields) must be answered with an error response carrying
// the salvaged request ID, so the sender fails fast instead of hanging.
func TestServerAnswersMalformedRequest(t *testing.T) {
	server := NewServer(testDecoder(t), 4)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	defer cliConn.Close()

	in := testInstance(t, 401, modulation.BPSK, 4)
	payload, err := encodeRequest(&DecodeRequest{ID: 77, Mod: in.Mod, H: in.H, Y: in.Y})
	if err != nil {
		t.Fatal(err)
	}
	// Emulate a v3 peer: valid v2 request plus an unknown trailing field.
	payload = append(payload, 1, 2, 3, 4)
	if err := writeFrame(cliConn, msgDecodeRequest, payload); err != nil {
		t.Fatal(err)
	}
	msgType, respPayload, err := readFrame(cliConn)
	if err != nil {
		t.Fatalf("no response to malformed request: %v", err)
	}
	if msgType != msgDecodeResponse {
		t.Fatalf("response type %d", msgType)
	}
	resp, err := decodeResponse(respPayload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 {
		t.Fatalf("salvaged ID %d, want 77", resp.ID)
	}
	if !strings.Contains(resp.Err, "bad request") {
		t.Fatalf("error %q does not identify the bad request", resp.Err)
	}
}

// poolScheduler builds a 2-QPU + SA-fallback scheduler for round-trip tests.
func poolScheduler(t *testing.T, seed int64) *sched.Scheduler {
	t.Helper()
	opts := core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	}
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, qpu)
	}
	s, err := sched.New(sched.Config{
		Pool:     pool,
		Fallback: backend.NewClassicalSA("sa", 128, 60),
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// Fronthaul round trip through a pool of more than one backend: concurrent
// pipelined requests spread over two QPU workers, all decode correctly, and
// the pool stats see every request.
func TestPoolServerRoundTripMultiBackend(t *testing.T) {
	s := poolScheduler(t, 5)
	server := NewPoolServer(s)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const parallel = 12
	var wg sync.WaitGroup
	backends := make([]string, parallel)
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := testInstance(t, int64(500+i), modulation.QPSK, 3)
			resp, err := client.Decode(in.Mod, in.H, in.Y)
			if err != nil {
				errs[i] = err
				return
			}
			if in.BitErrors(resp.Bits) != 0 {
				errs[i] = errShort // sentinel: wrong bits
				return
			}
			backends[i] = resp.Backend
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	for i, b := range backends {
		if b == "" {
			t.Fatalf("request %d: no backend reported", i)
		}
	}
	st, ok := server.Stats()
	if !ok {
		t.Fatal("pool server does not export stats")
	}
	if st.Completed != parallel || st.QueueDepth != 0 {
		t.Fatalf("pool stats after round trip: %+v", st)
	}
}

// A wire-level deadline shorter than the annealer's run time must come back
// solved by the classical fallback.
func TestDeadlineOverWireRoutesToFallback(t *testing.T) {
	s := poolScheduler(t, 6)
	server := NewPoolServer(s)
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 700, modulation.QPSK, 4)
	// The pool's annealers need Na·(Ta+Tp) = 80 µs; 20 µs is unmeetable.
	resp, err := client.DecodeWithDeadline(in.Mod, in.H, in.Y, 20*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Backend != "sa" {
		t.Fatalf("deadline-constrained request served by %q, want the sa fallback", resp.Backend)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatal("fallback decode returned wrong bits")
	}
	if st := s.Stats(); st.FallbackDispatches != 1 {
		t.Fatalf("FallbackDispatches = %d, want 1", st.FallbackDispatches)
	}
}

// Closing the connection mid-request must fail pending calls.
func TestClientFailsPendingOnClose(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	in := testInstance(t, 301, modulation.BPSK, 4)
	done := make(chan error, 1)
	go func() {
		_, err := client.Decode(in.Mod, in.H, in.Y)
		done <- err
	}()
	// Swallow the request, then drop the connection.
	if _, _, err := readFrame(srvConn); err != nil {
		t.Fatal(err)
	}
	srvConn.Close()
	if err := <-done; err == nil {
		t.Fatal("pending decode should fail when the connection drops")
	}
	// Subsequent calls fail fast.
	if _, err := client.Decode(in.Mod, in.H, in.Y); err == nil {
		t.Fatal("closed client accepted new work")
	}
}

func TestRequestCodecCarriesTargetBER(t *testing.T) {
	src := rng.New(127)
	h := channel.Rayleigh{}.Generate(src, 2, 2)
	req := &DecodeRequest{
		ID: 9, Mod: modulation.QPSK, H: h, Y: []complex128{1, 2i},
		DeadlineMicros: 1500, TargetBER: 1e-4,
	}
	payload, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.TargetBER != 1e-4 || back.DeadlineMicros != 1500 {
		t.Fatalf("QoS fields drifted: %+v", back)
	}

	// A protocol-version-2 peer ends the payload at the deadline; the field
	// must read as "no target".
	v2 := payload[:len(payload)-8]
	back, err = decodeRequest(v2)
	if err != nil {
		t.Fatalf("v2 payload rejected: %v", err)
	}
	if back.TargetBER != 0 {
		t.Fatalf("v2 payload produced target %g, want 0", back.TargetBER)
	}

	// Out-of-range targets are rejected.
	for _, bad := range []float64{-0.5, 1, math.NaN()} {
		req.TargetBER = bad
		payload, err := encodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeRequest(payload); err == nil {
			t.Fatalf("target BER %g accepted", bad)
		}
	}
}

// The full QoS contract must survive the wire: a pool server with a planner
// receives the client's target BER and plans the request's budget.
func TestClientDecodeQoSThroughPlanner(t *testing.T) {
	qpu := backend.AnnealerFromDecoder("qpu0", testDecoder(t))
	pl, err := qos.NewPlanner(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sched.Config{Pool: []backend.Backend{qpu}, Planner: pl, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := NewPoolServer(s)
	defer srv.Close()

	client, server := net.Pipe()
	defer client.Close()
	go srv.handleConn(server)
	c := NewClient(client)

	in := testInstance(t, 640, modulation.QPSK, 2)
	resp, err := c.DecodeQoS(in.Mod, in.H, in.Y, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(resp.Bits); errs != 0 {
		t.Fatalf("planned decode: %d bit errors", errs)
	}
	st := pl.Stats()
	if st.Plans != 1 || st.Quantum != 1 {
		t.Fatalf("planner never saw the request: %+v", st)
	}
	// The planned budget is what the annealer billed: far below the static
	// Na = 100 device time of 200 µs.
	if resp.ComputeMicros <= 0 || resp.ComputeMicros >= 200 {
		t.Fatalf("ComputeMicros = %g, want a planner-sized budget below the static 200 µs", resp.ComputeMicros)
	}
}

// The v4 register-channel and decode-by-channel codecs must round-trip
// exactly and reject malformed payloads.
func TestV4CodecRoundTrip(t *testing.T) {
	src := rng.New(131)
	h := channel.Rayleigh{}.Generate(src, 3, 2)

	reg := &RegisterChannelRequest{ID: 5, Mod: modulation.QAM16, H: h}
	payload, err := encodeRegisterChannel(reg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRegisterChannel(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 5 || back.Mod != modulation.QAM16 || back.H.Rows != 3 || back.H.Cols != 2 {
		t.Fatalf("register round trip drifted: %+v", back)
	}
	for i := range h.Data {
		if back.H.Data[i] != h.Data[i] {
			t.Fatalf("H[%d] drifted", i)
		}
	}
	if _, err := decodeRegisterChannel(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated register payload accepted")
	}

	ack := &RegisterChannelResponse{ID: 5, Handle: 42}
	rback, err := decodeRegisterResponse(encodeRegisterResponse(ack))
	if err != nil {
		t.Fatal(err)
	}
	if rback.ID != 5 || rback.Handle != 42 || rback.Err != "" {
		t.Fatalf("register response drifted: %+v", rback)
	}

	dec := &DecodeByChannelRequest{
		ID: 6, Handle: 42, Y: []complex128{1 + 2i, -3i, 0.5},
		DeadlineMicros: 2500, TargetBER: 1e-3,
	}
	dpayload, err := encodeDecodeByChannel(dec)
	if err != nil {
		t.Fatal(err)
	}
	dback, err := decodeDecodeByChannel(dpayload)
	if err != nil {
		t.Fatal(err)
	}
	if dback.ID != 6 || dback.Handle != 42 || len(dback.Y) != 3 ||
		dback.DeadlineMicros != 2500 || dback.TargetBER != 1e-3 {
		t.Fatalf("decode-by-channel round trip drifted: %+v", dback)
	}
	for i := range dec.Y {
		if dback.Y[i] != dec.Y[i] {
			t.Fatalf("Y[%d] drifted", i)
		}
	}
	if _, err := decodeDecodeByChannel(dpayload[:len(dpayload)-1]); err == nil {
		t.Fatal("truncated decode-by-channel payload accepted")
	}
	dec.TargetBER = 1.5
	if bad, err := encodeDecodeByChannel(dec); err == nil {
		if _, err := decodeDecodeByChannel(bad); err == nil {
			t.Fatal("out-of-range target BER accepted")
		}
	}
}

// End to end over a pipe: register a channel once, decode a whole coherence
// window of symbols by handle, and verify each decode — plus the v3-compat
// path (self-contained Decode) on the same connection.
func TestRegisterChannelDecodeWindow(t *testing.T) {
	server := NewServer(testDecoder(t), 3)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	src := rng.New(333)
	in := testInstance(t, 321, modulation.QPSK, 4)
	rc, err := client.RegisterChannel(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Mod() != in.Mod {
		t.Fatalf("remote channel mod %v, want %v", rc.Mod(), in.Mod)
	}
	// One coherence window: several symbols through the registered channel.
	for sym := 0; sym < 4; sym++ {
		bits := src.Bits(4 * in.Mod.BitsPerSymbol())
		y := linalg.MulVec(in.H, in.Mod.MapGrayVector(bits))
		resp, err := client.DecodeWithChannel(rc, y, 0, 0)
		if err != nil {
			t.Fatalf("symbol %d: %v", sym, err)
		}
		for i := range bits {
			if resp.Bits[i] != bits[i] {
				t.Fatalf("symbol %d: bit %d decoded wrong", sym, i)
			}
		}
	}
	// v3-style self-contained request still works on the same connection.
	resp, err := client.Decode(in.Mod, in.H, in.Y)
	if err != nil {
		t.Fatal(err)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatal("v3-compat decode failed")
	}
	// Wrong-shape y and unknown handles fail cleanly without killing the
	// connection.
	if _, err := client.DecodeWithChannel(rc, in.Y[:2], 0, 0); err == nil {
		t.Fatal("short y accepted")
	}
	bogus := &RemoteChannel{c: client, handle: 9999, mod: in.Mod, rows: 4}
	if _, err := client.DecodeWithChannel(bogus, in.Y, 0, 0); err == nil {
		t.Fatal("unknown handle accepted")
	}
	if _, err := client.DecodeWithChannel(rc, in.Y, 0, 0); err != nil {
		t.Fatalf("connection unusable after handle errors: %v", err)
	}
}

// Channel-handle decodes must reach the dispatcher tagged with the channel
// fingerprint so the scheduler can group coherence windows.
func TestDecodeByChannelCarriesChannelKey(t *testing.T) {
	var mu sync.Mutex
	var got []*backend.Problem
	disp := dispatcherFunc(func(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
		return &backend.Result{Bits: make([]byte, p.LogicalSpins()), Backend: "fake", Batched: 1}, nil
	})
	server := NewPoolServer(disp)
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 322, modulation.QPSK, 2)
	rc, err := client.RegisterChannel(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.DecodeWithChannel(rc, in.Y, time.Millisecond, 1e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Decode(in.Mod, in.H, in.Y); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("dispatcher saw %d problems, want 2", len(got))
	}
	wantKey := core.FingerprintChannel(in.Mod, in.H)
	if got[0].ChannelKey != wantKey {
		t.Fatalf("handle decode carried key %d, want %d", got[0].ChannelKey, wantKey)
	}
	if got[0].TargetBER != 1e-3 {
		t.Fatalf("handle decode dropped target BER: %+v", got[0])
	}
	if got[1].ChannelKey != 0 {
		t.Fatalf("self-contained decode carried key %d, want 0", got[1].ChannelKey)
	}
}

// dispatcherFunc adapts a function to the Dispatcher interface.
type dispatcherFunc func(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error)

func (f dispatcherFunc) Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
	return f(ctx, p, deadline)
}

// Header-declared shapes beyond what the payload holds must be rejected
// BEFORE allocation — a 13-byte frame must not provoke a gigabyte matrix.
func TestChannelShapeBoundedByPayload(t *testing.T) {
	var b []byte
	b = appendU64(b, 1)
	b = append(b, byte(modulation.QPSK))
	b = appendU16(b, 65535)
	b = appendU16(b, 65535)
	if _, err := decodeRegisterChannel(b); err == nil {
		t.Fatal("oversized register-channel shape accepted")
	}
	if _, err := decodeRequest(b); err == nil {
		t.Fatal("oversized decode-request shape accepted")
	}
}

// A connection past MaxChannelsPerConn registrations must evict its oldest
// handle (stale coherence window) while the newest keep decoding.
func TestRegisterChannelEvictsOldest(t *testing.T) {
	server := NewPoolServer(dispatcherFunc(func(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
		return &backend.Result{Bits: make([]byte, p.LogicalSpins()), Backend: "fake", Batched: 1}, nil
	}))
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	src := rng.New(404)
	first, err := client.RegisterChannel(modulation.BPSK, channel.Rayleigh{}.Generate(src, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	var last *RemoteChannel
	for i := 0; i < MaxChannelsPerConn; i++ {
		last, err = client.RegisterChannel(modulation.BPSK, channel.Rayleigh{}.Generate(src, 2, 2))
		if err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	y := []complex128{1, -1}
	if _, err := client.DecodeWithChannel(first, y, 0, 0); err == nil {
		t.Fatal("oldest handle survived past the per-connection cap")
	}
	if _, err := client.DecodeWithChannel(last, y, 0, 0); err != nil {
		t.Fatalf("newest handle broken: %v", err)
	}
}

// --- Protocol v5: downlink precode frames ---------------------------------

func TestPrecodeCodecRoundTrip(t *testing.T) {
	src := rng.New(540)
	h := channel.Rayleigh{}.Generate(src, 2, 3)
	req := &PrecodeRequest{
		ID: 77, Mod: modulation.QPSK, PerturbBits: 2, H: h,
		S: []complex128{1 + 1i, -1 - 1i}, DeadlineMicros: 1500, TargetBER: 1e-3,
	}
	payload, err := encodePrecode(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodePrecode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 77 || back.Mod != modulation.QPSK || back.PerturbBits != 2 ||
		back.DeadlineMicros != 1500 || back.TargetBER != 1e-3 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if linalg.MaxAbsDiff(h, back.H) != 0 {
		t.Fatal("H mismatch")
	}
	for i := range req.S {
		if back.S[i] != req.S[i] {
			t.Fatal("S mismatch")
		}
	}

	// Corruption rejection.
	if _, err := decodePrecode(payload[:len(payload)-5]); err == nil {
		t.Fatal("truncated precode request accepted")
	}
	if _, err := decodePrecode(append(append([]byte(nil), payload...), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[9] = 99 // perturbation bits out of range
	if _, err := decodePrecode(bad); err == nil {
		t.Fatal("bad perturbation bits accepted")
	}
	if _, err := encodePrecode(&PrecodeRequest{Mod: modulation.QPSK, H: h, S: []complex128{1}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// More users than antennas is a request error (compile rejects it with a
	// per-request response), NOT a framing error — it must pass the codec so
	// it cannot tear down a shared connection.
	wide := channel.Rayleigh{}.Generate(src, 3, 2)
	widePayload, err := encodePrecode(&PrecodeRequest{
		ID: 1, Mod: modulation.QPSK, H: wide, S: []complex128{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePrecode(widePayload); err != nil {
		t.Fatalf("users > antennas must decode (and fail at compile): %v", err)
	}
}

func TestPrecodeByChannelCodecRoundTrip(t *testing.T) {
	req := &PrecodeByChannelRequest{
		ID: 9, Handle: 4, PerturbBits: 1,
		S: []complex128{3 - 1i, -3 + 3i}, DeadlineMicros: 10, TargetBER: 1e-2,
	}
	payload, err := encodePrecodeByChannel(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodePrecodeByChannel(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 9 || back.Handle != 4 || back.PerturbBits != 1 ||
		back.DeadlineMicros != 10 || back.TargetBER != 1e-2 || len(back.S) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := decodePrecodeByChannel(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := encodePrecodeByChannel(&PrecodeByChannelRequest{ID: 1}); err == nil {
		t.Fatal("empty symbol vector accepted")
	}
}

// precodeTestBench builds a pool server around one annealer decoder plus the
// downlink fixtures shared by the v5 end-to-end tests.
func precodeTestBench(t *testing.T, users, antennas int) (*Server, *Client, *linalg.Mat) {
	t.Helper()
	dec := testDecoder(t)
	server := NewServer(dec, 9)
	t.Cleanup(func() { server.Close() })
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	t.Cleanup(func() { client.Close() })
	h := channel.Rayleigh{}.Generate(rng.New(int64(users*100+antennas)), users, antennas)
	return server, client, h
}

// TestPrecodeOverWire runs the self-contained v5 flow end to end: the
// returned perturbation is in-alphabet and its transmit power matches the
// reported energy, and repeating the window hits the server's VP-program
// cache.
func TestPrecodeOverWire(t *testing.T) {
	const users = 3
	mod := modulation.QPSK
	server, client, h := precodeTestBench(t, users, users+1)

	src := rng.New(541)
	prog, err := precoding.Compile(mod, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for sym := 0; sym < 3; sym++ {
		s := mod.MapGrayVector(src.Bits(users * mod.BitsPerSymbol()))
		resp, err := client.Precode(mod, h, s, 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resp.PerturbMod != modulation.QPSK {
			t.Fatalf("alphabet %v, want QPSK", resp.PerturbMod)
		}
		if len(resp.V) != users {
			t.Fatalf("perturbation has %d entries", len(resp.V))
		}
		for _, v := range resp.V {
			if math.Abs(real(v)) > 1 || math.Abs(imag(v)) > 1 {
				t.Fatalf("perturbation %v outside 1-bit alphabet", v)
			}
		}
		if direct := prog.Gamma(s, resp.V); math.Abs(direct-resp.Energy) > 1e-9*(1+direct) {
			t.Fatalf("energy %g != transmit power %g", resp.Energy, direct)
		}
		if resp.Backend == "" || resp.ComputeMicros <= 0 {
			t.Fatalf("solver metadata missing: %+v", resp)
		}
	}
	st := server.PrecodeCacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("VP program cache stats %+v, want 1 miss + 2 hits", st)
	}
	// A users > antennas channel fails per-request (compile error) without
	// killing the shared connection.
	wide := channel.Rayleigh{}.Generate(src, 4, 2)
	if _, err := client.Precode(mod, wide, make([]complex128, 4), 1, 0, 0); err == nil {
		t.Fatal("wide channel accepted")
	}
	s := mod.MapGrayVector(src.Bits(users * mod.BitsPerSymbol()))
	if _, err := client.Precode(mod, h, s, 1, 0, 0); err != nil {
		t.Fatalf("connection unusable after wide-channel error: %v", err)
	}
}

// TestPrecodeWithChannelOverWire runs the registered-channel v5 flow and
// checks interleaving with uplink decodes on the same handle.
func TestPrecodeWithChannelOverWire(t *testing.T) {
	const users = 3
	mod := modulation.QPSK
	_, client, h := precodeTestBench(t, users, users)

	rc, err := client.RegisterChannel(mod, h)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(542)
	for sym := 0; sym < 2; sym++ {
		s := mod.MapGrayVector(src.Bits(users * mod.BitsPerSymbol()))
		resp, err := client.PrecodeWithChannel(rc, s, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Server default alphabet applies when the request leaves bits 0;
		// the client infers it from the solution bit count.
		if resp.PerturbMod != modulation.QPSK {
			t.Fatalf("alphabet %v, want server default QPSK", resp.PerturbMod)
		}
		if len(resp.V) != users {
			t.Fatalf("perturbation has %d entries", len(resp.V))
		}
	}
	// The same registered handle still serves uplink decodes.
	bits := src.Bits(users * mod.BitsPerSymbol())
	y := linalg.MulVec(h, mod.MapGrayVector(bits))
	dresp, err := client.DecodeWithChannel(rc, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if dresp.Bits[i] != bits[i] {
			t.Fatal("uplink decode wrong after precodes")
		}
	}
	// Shape and handle errors fail cleanly without killing the connection.
	if _, err := client.PrecodeWithChannel(rc, []complex128{1}, 0, 0, 0); err == nil {
		t.Fatal("short s accepted")
	}
	bogus := &RemoteChannel{c: client, handle: 777, mod: mod, rows: users}
	if _, err := client.PrecodeWithChannel(bogus, make([]complex128, users), 0, 0, 0); err == nil {
		t.Fatal("unknown handle accepted")
	}
	s := mod.MapGrayVector(src.Bits(users * mod.BitsPerSymbol()))
	if _, err := client.PrecodeWithChannel(rc, s, 0, 0, 0); err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
}

// Precode problems must reach the dispatcher tagged with the VP channel key
// (not the raw downlink channel's), so the pool batches same-window searches.
func TestPrecodeCarriesVPChannelKey(t *testing.T) {
	var mu sync.Mutex
	var got []*backend.Problem
	server := NewPoolServer(dispatcherFunc(func(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
		return &backend.Result{Bits: make([]byte, p.LogicalSpins()), Backend: "fake", Batched: 1}, nil
	}))
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	const users = 2
	mod := modulation.QPSK
	h := channel.Rayleigh{}.Generate(rng.New(99), users, users)
	prog, err := precoding.Compile(mod, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := make([]complex128, users)
	for i := range s {
		s[i] = 1 + 1i
	}
	if _, err := client.Precode(mod, h, s, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	rc, err := client.RegisterChannel(mod, h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.PrecodeWithChannel(rc, s, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("dispatcher saw %d problems", len(got))
	}
	for i, p := range got {
		if p.ChannelKey != prog.Key() {
			t.Fatalf("problem %d carries key %d, want VP key %d", i, p.ChannelKey, prog.Key())
		}
		if p.Mod != prog.PerturbMod() {
			t.Fatalf("problem %d carries mod %v, want %v", i, p.Mod, prog.PerturbMod())
		}
	}
}
