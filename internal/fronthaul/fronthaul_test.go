package fronthaul

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func testDecoder(t *testing.T) *core.Decoder {
	t.Helper()
	d, err := core.New(core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testInstance(t *testing.T, seed int64, mod modulation.Modulation, nt int) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRequestCodecRoundTrip(t *testing.T) {
	src := rng.New(121)
	h := channel.Rayleigh{}.Generate(src, 3, 2)
	req := &DecodeRequest{ID: 42, Mod: modulation.QAM16, H: h, Y: []complex128{1 + 2i, 3, -1i}}
	payload, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 42 || back.Mod != modulation.QAM16 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if linalg.MaxAbsDiff(h, back.H) != 0 {
		t.Fatal("H mismatch")
	}
	for i := range req.Y {
		if back.Y[i] != req.Y[i] {
			t.Fatal("Y mismatch")
		}
	}
}

func TestRequestCodecRejectsCorruption(t *testing.T) {
	src := rng.New(122)
	h := channel.Rayleigh{}.Generate(src, 2, 2)
	payload, _ := encodeRequest(&DecodeRequest{ID: 1, Mod: modulation.BPSK, H: h, Y: []complex128{0, 0}})
	if _, err := decodeRequest(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := decodeRequest(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[8] = 200 // invalid modulation byte
	if _, err := decodeRequest(bad); err == nil {
		t.Fatal("bad modulation accepted")
	}
	if _, err := encodeRequest(&DecodeRequest{Mod: modulation.BPSK, H: h, Y: []complex128{0}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := &DecodeResponse{ID: 7, Bits: []byte{1, 0, 1}, Energy: 2.5, ComputeMicros: 12.25}
	back, err := decodeResponse(encodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Energy != 2.5 || back.ComputeMicros != 12.25 || len(back.Bits) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	errResp := &DecodeResponse{ID: 9, Err: "boom"}
	back, err = decodeResponse(encodeResponse(errResp))
	if err != nil || back.Err != "boom" {
		t.Fatalf("error round trip: %+v, %v", back, err)
	}
}

func TestFrameSizeGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgDecodeRequest, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A forged giant length prefix must be rejected on read.
	forged := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := readFrame(bytes.NewReader(forged)); err == nil {
		t.Fatal("forged length accepted")
	}
}

// Full loop over an in-memory pipe: AP decodes a noise-free instance through
// the data-center server and gets its bits back.
func TestClientServerOverPipe(t *testing.T) {
	server := NewServer(testDecoder(t), 1)
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 123, modulation.QPSK, 4)
	resp, err := client.Decode(in.Mod, in.H, in.Y)
	if err != nil {
		t.Fatal(err)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatalf("remote decode got %d bit errors", in.BitErrors(resp.Bits))
	}
	if resp.Energy > 1e-9 {
		t.Fatalf("energy %g, want ≈0", resp.Energy)
	}
	if resp.ComputeMicros <= 0 {
		t.Fatal("compute time not reported")
	}
}

// Real TCP with concurrent pipelined requests from multiple goroutines.
func TestClientServerOverTCPConcurrent(t *testing.T) {
	server := NewServer(testDecoder(t), 2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const parallel = 8
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := testInstance(t, int64(200+i), modulation.BPSK, 6)
			resp, err := client.Decode(in.Mod, in.H, in.Y)
			if err != nil {
				errs[i] = err
				return
			}
			if in.BitErrors(resp.Bits) != 0 {
				errs[i] = errShort // sentinel: wrong bits
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
}

// A decode error on the server (oversized problem) must surface at the
// client as an error, not a hang.
func TestServerReportsDecodeError(t *testing.T) {
	server := NewServer(testDecoder(t), 3)
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 300, modulation.BPSK, 30) // needs M=8 > C6
	if _, err := client.Decode(in.Mod, in.H, in.Y); err == nil {
		t.Fatal("expected remote decode error")
	}
}

// Closing the connection mid-request must fail pending calls.
func TestClientFailsPendingOnClose(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	client := NewClient(cliConn)
	in := testInstance(t, 301, modulation.BPSK, 4)
	done := make(chan error, 1)
	go func() {
		_, err := client.Decode(in.Mod, in.H, in.Y)
		done <- err
	}()
	// Swallow the request, then drop the connection.
	if _, _, err := readFrame(srvConn); err != nil {
		t.Fatal(err)
	}
	srvConn.Close()
	if err := <-done; err == nil {
		t.Fatal("pending decode should fail when the connection drops")
	}
	// Subsequent calls fail fast.
	if _, err := client.Decode(in.Mod, in.H, in.Y); err == nil {
		t.Fatal("closed client accepted new work")
	}
}
