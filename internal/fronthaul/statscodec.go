package fronthaul

import (
	"errors"
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/telemetry"
)

// StatsRequest polls a live pool's counters and telemetry over the fronthaul
// (protocol v7) — the frame behind `quamax -top`.
type StatsRequest struct {
	ID uint64
}

// StatsResponse answers a StatsRequest with the pool counter snapshot and,
// when the server runs a telemetry recorder, the full telemetry snapshot
// (stage latency histograms, deadline slack, per-class anneal quality).
type StatsResponse struct {
	ID  uint64
	Err string // empty on success
	// UptimeMicros is the server scheduler's lifetime at snapshot time.
	UptimeMicros float64
	// Pool is the scheduler counter snapshot (zero value when the server's
	// dispatcher exports no stats).
	Pool metrics.PoolStats
	// Telemetry is the recorder snapshot; nil when the server runs without
	// a telemetry plane.
	Telemetry *telemetry.Snapshot
	// Shards is the per-shard PoolStats breakdown (protocol v8), shard index
	// order; nil when the server runs a single pool. Pool remains the merged
	// aggregate, so v7 consumers lose only the breakdown, not the totals.
	Shards []metrics.PoolStats
	// Health is the solver-health plane snapshot (protocol v9): per-backend
	// drift verdicts and per-shard SLO burn rates. Nil (or Empty) when the
	// server runs without a health plane; its flag bit rides the frame iff
	// the snapshot carries data, so v8 consumers lose only the health view.
	Health *metrics.HealthStats
}

// encodeStatsRequest serializes a StatsRequest payload.
func encodeStatsRequest(req *StatsRequest) []byte {
	return appendU64(nil, req.ID)
}

// decodeStatsRequest parses a StatsRequest payload.
func decodeStatsRequest(payload []byte) (*StatsRequest, error) {
	r := &reader{b: payload}
	req := &StatsRequest{ID: r.u64()}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in stats request")
	}
	return req, nil
}

// appendHist encodes a telemetry histogram sparsely: the number of nonzero
// buckets, then (bucket index, count) pairs in increasing index order,
// then the running sum and extrema. An empty histogram is one zero byte plus
// the three float64 fields.
func appendHist(b []byte, h telemetry.Hist) []byte {
	nonzero := 0
	for _, c := range h.Counts {
		if c != 0 {
			nonzero++
		}
	}
	b = append(b, byte(nonzero))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		b = append(b, byte(i))
		b = appendU64(b, c)
	}
	b = appendF64(b, h.Sum)
	b = appendF64(b, h.Min)
	b = appendF64(b, h.Max)
	return b
}

// readHist decodes an appendHist payload, validating the canonical form:
// strictly increasing bucket indexes below telemetry.NumBuckets and no
// zero-count entries (so decode∘encode is the identity on the wire).
func readHist(r *reader) (telemetry.Hist, error) {
	var h telemetry.Hist
	nb := r.bytes(1)
	if r.err != nil {
		return h, r.err
	}
	n := int(nb[0])
	if n > telemetry.NumBuckets {
		return h, fmt.Errorf("fronthaul: histogram with %d buckets exceeds %d", n, telemetry.NumBuckets)
	}
	if n > 0 {
		h.Counts = make([]uint64, telemetry.NumBuckets)
		prev := -1
		for i := 0; i < n; i++ {
			idxB := r.bytes(1)
			count := r.u64()
			if r.err != nil {
				return h, r.err
			}
			idx := int(idxB[0])
			if idx <= prev || idx >= telemetry.NumBuckets {
				return h, fmt.Errorf("fronthaul: histogram bucket index %d out of order", idx)
			}
			if count == 0 {
				return h, errors.New("fronthaul: zero-count histogram bucket")
			}
			prev = idx
			h.Counts[idx] = count
			h.Count += count
		}
	}
	h.Sum = r.f64()
	h.Min = r.f64()
	h.Max = r.f64()
	if r.err != nil {
		return telemetry.Hist{}, r.err
	}
	return h, nil
}

// statsRespTelemetry is the flags bit marking a telemetry block;
// statsRespShards the per-shard PoolStats breakdown block (protocol v8);
// statsRespEconomics the trailing spend/energy block (one f64 pair per
// backend entry, aggregate then shards — PR 9's fleet-economics counters);
// statsRespHealth the solver-health block (protocol v9: per-backend drift
// verdicts, per-shard SLO burn rates). Each flag rides only when its block
// carries data, so older decodes stay byte-compatible.
const (
	statsRespTelemetry = 1 << 0
	statsRespShards    = 1 << 1
	statsRespEconomics = 1 << 2
	statsRespHealth    = 1 << 3
)

// appendPoolStats encodes one PoolStats block (the aggregate and each
// per-shard entry share this layout).
func appendPoolStats(b []byte, p *metrics.PoolStats) ([]byte, error) {
	if p.QueueDepth < 0 || len(p.Backends) > 0xffff {
		return nil, errors.New("fronthaul: pool stats out of wire range")
	}
	b = appendU32(b, uint32(p.QueueDepth))
	for _, v := range []uint64{
		p.Submitted, p.Completed, p.Failed, p.FallbackDispatches,
		p.PlannerClassical, p.DeadlineMisses, p.BatchRuns, p.BatchedProblems,
		p.SoftSolved, p.LLRSaturations,
	} {
		b = appendU64(b, v)
	}
	b = appendF64(b, p.SlotOccupancy)
	b = appendU64(b, p.ChannelCache.Hits)
	b = appendU64(b, p.ChannelCache.Misses)
	b = appendU64(b, p.ChannelCache.Evictions)
	b = appendU16(b, uint16(len(p.Backends)))
	for _, be := range p.Backends {
		if len(be.Name) > 0xffff {
			return nil, errors.New("fronthaul: oversized backend name")
		}
		b = appendU16(b, uint16(len(be.Name)))
		b = append(b, be.Name...)
		b = appendU64(b, be.Solved)
		b = appendU64(b, be.Errors)
		b = appendF64(b, be.BusyMicros)
		b = appendF64(b, be.Utilization)
	}
	return b, nil
}

// readPoolStats decodes one appendPoolStats block.
func readPoolStats(r *reader, payload []byte, p *metrics.PoolStats) error {
	p.QueueDepth = int(r.u32())
	for _, dst := range []*uint64{
		&p.Submitted, &p.Completed, &p.Failed, &p.FallbackDispatches,
		&p.PlannerClassical, &p.DeadlineMisses, &p.BatchRuns, &p.BatchedProblems,
		&p.SoftSolved, &p.LLRSaturations,
	} {
		*dst = r.u64()
	}
	p.SlotOccupancy = r.f64()
	p.ChannelCache.Hits = r.u64()
	p.ChannelCache.Misses = r.u64()
	p.ChannelCache.Evictions = r.u64()
	nBackends := int(r.u16())
	if r.err != nil {
		return r.err
	}
	// Each backend entry is at least 34 bytes; bound the allocation by what
	// the payload can actually hold before trusting the declared count.
	if nBackends > (len(payload)-r.off)/34 {
		return errors.New("fronthaul: backend count exceeds payload")
	}
	for i := 0; i < nBackends; i++ {
		nameLen := int(r.u16())
		if r.err == nil && nameLen > len(payload)-r.off {
			return errShort
		}
		be := metrics.BackendStats{Name: string(r.bytes(nameLen))}
		be.Solved = r.u64()
		be.Errors = r.u64()
		be.BusyMicros = r.f64()
		be.Utilization = r.f64()
		if r.err != nil {
			return r.err
		}
		p.Backends = append(p.Backends, be)
	}
	return r.err
}

// encodeStatsResponse serializes a StatsResponse payload.
func encodeStatsResponse(resp *StatsResponse) ([]byte, error) {
	if len(resp.Err) > 0xffff {
		return nil, errors.New("fronthaul: oversized error string")
	}
	b := appendU64(nil, resp.ID)
	b = appendU16(b, uint16(len(resp.Err)))
	b = append(b, resp.Err...)
	b = appendF64(b, resp.UptimeMicros)

	var err error
	if b, err = appendPoolStats(b, &resp.Pool); err != nil {
		return nil, err
	}

	var flags byte
	if resp.Telemetry != nil {
		flags |= statsRespTelemetry
	}
	if len(resp.Shards) > 0 {
		flags |= statsRespShards
	}
	econ := economicsPresent(resp)
	if econ {
		flags |= statsRespEconomics
	}
	if !resp.Health.Empty() {
		flags |= statsRespHealth
	}
	b = append(b, flags)
	if sn := resp.Telemetry; sn != nil {
		b = appendF64(b, sn.UptimeMicros)
		b = appendU64(b, sn.Finished)
		b = appendU64(b, sn.Failed)
		b = appendU64(b, sn.CompileHits)
		b = appendU64(b, sn.CompileMisses)
		b = append(b, byte(telemetry.NumStages))
		for i := range sn.Stages {
			b = appendHist(b, sn.Stages[i])
		}
		b = appendHist(b, sn.Wire)
		b = appendHist(b, sn.SlackMet)
		b = appendHist(b, sn.SlackMissed)
		classes := telemetry.SortedClasses(sn)
		if len(classes) > 0xffff {
			return nil, errors.New("fronthaul: oversized quality class set")
		}
		b = appendU16(b, uint16(len(classes)))
		for _, c := range classes {
			if len(c) > 0xffff {
				return nil, errors.New("fronthaul: oversized quality class name")
			}
			q := sn.Quality[c]
			b = appendU16(b, uint16(len(c)))
			b = append(b, c...)
			b = appendU64(b, q.Solves)
			b = appendU64(b, q.Reads)
			b = appendU64(b, q.ChainBreaks)
			b = appendU64(b, q.LLRBits)
			b = appendU64(b, q.LLRSaturated)
			b = appendHist(b, q.BestEnergy)
		}
	}
	if len(resp.Shards) > 0 {
		if len(resp.Shards) > 0xffff {
			return nil, errors.New("fronthaul: oversized shard set")
		}
		b = appendU16(b, uint16(len(resp.Shards)))
		for i := range resp.Shards {
			if b, err = appendPoolStats(b, &resp.Shards[i]); err != nil {
				return nil, err
			}
		}
	}
	if econ {
		b = appendEconomics(b, &resp.Pool)
		for i := range resp.Shards {
			b = appendEconomics(b, &resp.Shards[i])
		}
	}
	if !resp.Health.Empty() {
		if b, err = appendHealth(b, resp.Health); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendHealth encodes the v9 solver-health block: per-backend drift entries
// in canonical (name-sorted) order, then per-shard burn entries in index
// order.
func appendHealth(b []byte, h *metrics.HealthStats) ([]byte, error) {
	if len(h.Backends) > 0xffff || len(h.Shards) > 0xffff {
		return nil, errors.New("fronthaul: health stats out of wire range")
	}
	backends := append([]metrics.BackendHealth(nil), h.Backends...)
	(&metrics.HealthStats{Backends: backends}).SortBackends()
	b = appendU16(b, uint16(len(backends)))
	for _, be := range backends {
		if len(be.Name) > 0xffff {
			return nil, errors.New("fronthaul: oversized backend name")
		}
		if be.State > metrics.HealthQuarantined {
			return nil, fmt.Errorf("fronthaul: unknown health state %d", be.State)
		}
		b = appendU16(b, uint16(len(be.Name)))
		b = append(b, be.Name...)
		b = append(b, byte(be.State))
		b = appendF64(b, be.Score)
		b = appendU64(b, be.Observations)
		b = appendF64(b, be.ChainBreakEWMA)
		b = appendF64(b, be.EnergyEWMA)
		b = appendF64(b, be.FailureEWMA)
		b = appendF64(b, be.ReadsPerSolve)
		b = appendU64(b, be.CanaryPass)
		b = appendU64(b, be.CanaryFail)
	}
	b = appendU16(b, uint16(len(h.Shards)))
	for _, s := range h.Shards {
		b = appendF64(b, s.FastMissRate)
		b = appendF64(b, s.SlowMissRate)
		b = appendF64(b, s.FastBERRate)
		b = appendF64(b, s.SlowBERRate)
		b = appendU64(b, s.Samples)
		alert := byte(0)
		if s.Alerting {
			alert = 1
		}
		b = append(b, alert)
		b = appendU64(b, s.Sheds)
		b = appendF64(b, s.MissEWMA)
	}
	return b, nil
}

// readHealth decodes the v9 solver-health block, enforcing the canonical
// form: strictly name-sorted backend entries, known state bytes, a boolean
// alerting byte, and at least one entry overall (a flagged-but-empty block
// would re-encode without the flag, breaking decode∘encode identity).
func readHealth(r *reader, payload []byte) (*metrics.HealthStats, error) {
	h := &metrics.HealthStats{}
	nBackends := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	// Each backend entry is at least 67 bytes (2 name len + 1 state + 8
	// score + 8 observations + 4·8 EWMAs + 2·8 canary counts).
	if nBackends > (len(payload)-r.off)/67 {
		return nil, errors.New("fronthaul: health backend count exceeds payload")
	}
	prevName := ""
	for i := 0; i < nBackends; i++ {
		nameLen := int(r.u16())
		if r.err == nil && nameLen > len(payload)-r.off {
			return nil, errShort
		}
		be := metrics.BackendHealth{Name: string(r.bytes(nameLen))}
		stateB := r.bytes(1)
		if r.err != nil {
			return nil, r.err
		}
		if stateB[0] > byte(metrics.HealthQuarantined) {
			return nil, fmt.Errorf("fronthaul: unknown health state %d", stateB[0])
		}
		be.State = metrics.HealthState(stateB[0])
		be.Score = r.f64()
		be.Observations = r.u64()
		be.ChainBreakEWMA = r.f64()
		be.EnergyEWMA = r.f64()
		be.FailureEWMA = r.f64()
		be.ReadsPerSolve = r.f64()
		be.CanaryPass = r.u64()
		be.CanaryFail = r.u64()
		if r.err != nil {
			return nil, r.err
		}
		if i > 0 && be.Name <= prevName {
			return nil, fmt.Errorf("fronthaul: health backend %q out of order", be.Name)
		}
		prevName = be.Name
		h.Backends = append(h.Backends, be)
	}
	nShards := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	// Each shard entry is exactly 57 bytes (4·8 rates + 8 samples + 1
	// alerting + 8 sheds + 8 miss EWMA).
	if nShards > (len(payload)-r.off)/57 {
		return nil, errors.New("fronthaul: health shard count exceeds payload")
	}
	for i := 0; i < nShards; i++ {
		var s metrics.ShardBurn
		s.FastMissRate = r.f64()
		s.SlowMissRate = r.f64()
		s.FastBERRate = r.f64()
		s.SlowBERRate = r.f64()
		s.Samples = r.u64()
		alertB := r.bytes(1)
		if r.err != nil {
			return nil, r.err
		}
		if alertB[0] > 1 {
			return nil, fmt.Errorf("fronthaul: non-boolean health alert byte %d", alertB[0])
		}
		s.Alerting = alertB[0] == 1
		s.Sheds = r.u64()
		s.MissEWMA = r.f64()
		if r.err != nil {
			return nil, r.err
		}
		h.Shards = append(h.Shards, s)
	}
	if h.Empty() {
		return nil, errors.New("fronthaul: health flag set with empty block")
	}
	return h, nil
}

// economicsPresent reports whether any backend entry carries nonzero spend
// or energy — the condition under which the economics block (and its flag
// bit) rides the frame. Tying the bit to the data keeps the wire form
// canonical: an all-zero response re-encodes without the block, byte-equal.
func economicsPresent(resp *StatsResponse) bool {
	pools := make([]*metrics.PoolStats, 0, len(resp.Shards)+1)
	pools = append(pools, &resp.Pool)
	for i := range resp.Shards {
		pools = append(pools, &resp.Shards[i])
	}
	for _, p := range pools {
		for _, be := range p.Backends {
			if be.SpendMicroUSD != 0 || be.EnergyMilliJ != 0 {
				return true
			}
		}
	}
	return false
}

// appendEconomics encodes one pool's per-backend (spend, energy) pairs. The
// pair count is implied by the pool block's own backend count, decoded
// earlier in the frame, so the block carries no redundant length.
func appendEconomics(b []byte, p *metrics.PoolStats) []byte {
	for _, be := range p.Backends {
		b = appendF64(b, be.SpendMicroUSD)
		b = appendF64(b, be.EnergyMilliJ)
	}
	return b
}

// decodeStatsResponse parses a StatsResponse payload.
func decodeStatsResponse(payload []byte) (*StatsResponse, error) {
	r := &reader{b: payload}
	resp := &StatsResponse{ID: r.u64()}
	errLen := int(r.u16())
	if r.err == nil && errLen > len(payload)-r.off {
		return nil, errShort
	}
	resp.Err = string(r.bytes(errLen))
	resp.UptimeMicros = r.f64()

	if err := readPoolStats(r, payload, &resp.Pool); err != nil {
		return nil, err
	}

	flagsB := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	flags := flagsB[0]
	if flags&^byte(statsRespTelemetry|statsRespShards|statsRespEconomics|statsRespHealth) != 0 {
		return nil, fmt.Errorf("fronthaul: unknown stats flags %#x", flags)
	}
	if flags&statsRespTelemetry != 0 {
		sn := &telemetry.Snapshot{}
		sn.UptimeMicros = r.f64()
		sn.Finished = r.u64()
		sn.Failed = r.u64()
		sn.CompileHits = r.u64()
		sn.CompileMisses = r.u64()
		nStages := r.bytes(1)
		if r.err != nil {
			return nil, r.err
		}
		if int(nStages[0]) != telemetry.NumStages {
			return nil, fmt.Errorf("fronthaul: stats frame with %d stages, want %d", nStages[0], telemetry.NumStages)
		}
		var err error
		for i := range sn.Stages {
			if sn.Stages[i], err = readHist(r); err != nil {
				return nil, err
			}
		}
		if sn.Wire, err = readHist(r); err != nil {
			return nil, err
		}
		if sn.SlackMet, err = readHist(r); err != nil {
			return nil, err
		}
		if sn.SlackMissed, err = readHist(r); err != nil {
			return nil, err
		}
		sn.Traces = sn.Finished + sn.Failed
		nClasses := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		// Each class entry is at least 67 bytes (2 + 5·8 + empty hist).
		if nClasses > (len(payload)-r.off)/67 {
			return nil, errors.New("fronthaul: quality class count exceeds payload")
		}
		if nClasses > 0 {
			sn.Quality = make(map[string]telemetry.QualityStats, nClasses)
		}
		prevName := ""
		for i := 0; i < nClasses; i++ {
			nameLen := int(r.u16())
			if r.err == nil && nameLen > len(payload)-r.off {
				return nil, errShort
			}
			name := string(r.bytes(nameLen))
			var q telemetry.QualityStats
			q.Solves = r.u64()
			q.Reads = r.u64()
			q.ChainBreaks = r.u64()
			q.LLRBits = r.u64()
			q.LLRSaturated = r.u64()
			if q.BestEnergy, err = readHist(r); err != nil {
				return nil, err
			}
			if r.err != nil {
				return nil, r.err
			}
			// Classes ride sorted (SortedClasses on encode); enforcing the
			// order here makes the wire form canonical, so decode∘encode is
			// the identity — the invariant the fuzzer holds the codec to.
			if i > 0 && name <= prevName {
				return nil, fmt.Errorf("fronthaul: quality class %q out of order", name)
			}
			prevName = name
			sn.Quality[name] = q
		}
		resp.Telemetry = sn
	}
	if flags&statsRespShards != 0 {
		nShards := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		// A set flag with zero shards would re-encode without the flag,
		// breaking the canonical decode∘encode identity — reject it. Each
		// shard block is at least 118 bytes (4 + 13·8 + empty backend set).
		if nShards == 0 {
			return nil, errors.New("fronthaul: shards flag set with zero shards")
		}
		if nShards > (len(payload)-r.off)/118 {
			return nil, errors.New("fronthaul: shard count exceeds payload")
		}
		resp.Shards = make([]metrics.PoolStats, nShards)
		for i := range resp.Shards {
			if err := readPoolStats(r, payload, &resp.Shards[i]); err != nil {
				return nil, err
			}
		}
	}
	if flags&statsRespEconomics != 0 {
		readEcon := func(p *metrics.PoolStats) {
			for i := range p.Backends {
				p.Backends[i].SpendMicroUSD = r.f64()
				p.Backends[i].EnergyMilliJ = r.f64()
			}
		}
		readEcon(&resp.Pool)
		for i := range resp.Shards {
			readEcon(&resp.Shards[i])
		}
		if r.err != nil {
			return nil, r.err
		}
		// A set flag over all-zero counters would re-encode without the
		// block, breaking the canonical decode∘encode identity — reject it
		// (the shards-flag rule, applied to economics).
		if !economicsPresent(resp) {
			return nil, errors.New("fronthaul: economics flag set with zero counters")
		}
	}
	if flags&statsRespHealth != 0 {
		h, err := readHealth(r, payload)
		if err != nil {
			return nil, err
		}
		resp.Health = h
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errors.New("fronthaul: trailing bytes in stats response")
	}
	return resp, nil
}
