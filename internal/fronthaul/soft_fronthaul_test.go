package fronthaul

import (
	"math"
	"net"
	"strings"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

func TestSoftRequestCodecRoundTrip(t *testing.T) {
	src := rng.New(621)
	h := channel.Rayleigh{}.Generate(src, 3, 2)
	req := &SoftDecodeRequest{
		ID: 99, Mod: modulation.QAM16, H: h, Y: []complex128{1 + 2i, -1, 0.5i},
		NoiseVar: 0.04, LLRClamp: 16, DeadlineMicros: 1500, TargetBER: 1e-4,
	}
	payload, err := encodeSoftRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSoftRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 99 || back.Mod != modulation.QAM16 || back.NoiseVar != 0.04 ||
		back.LLRClamp != 16 || back.DeadlineMicros != 1500 || back.TargetBER != 1e-4 {
		t.Fatalf("round trip: %+v", back)
	}
	// Corruption must be rejected: truncation, trailing bytes, bad fields.
	if _, err := decodeSoftRequest(payload[:len(payload)-5]); err == nil {
		t.Fatal("truncated soft request accepted")
	}
	if _, err := decodeSoftRequest(append(append([]byte(nil), payload...), 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := encodeSoftRequest(&SoftDecodeRequest{Mod: modulation.BPSK, H: h,
		Y: []complex128{0, 0, 0}, NoiseVar: math.Inf(1)}); err == nil {
		t.Fatal("infinite noise variance accepted")
	}
	if _, err := encodeSoftRequest(&SoftDecodeRequest{Mod: modulation.BPSK, H: h,
		Y: []complex128{0, 0, 0}, LLRClamp: -2}); err == nil {
		t.Fatal("negative clamp accepted")
	}
}

func TestSoftByChannelCodecRoundTrip(t *testing.T) {
	req := &SoftDecodeByChannelRequest{
		ID: 4, Handle: 17, Y: []complex128{1, -1i},
		NoiseVar: 0.1, LLRClamp: 8, DeadlineMicros: 10, TargetBER: 1e-3,
	}
	payload, err := encodeSoftByChannel(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSoftByChannel(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.Handle != 17 || len(back.Y) != 2 || back.NoiseVar != 0.1 || back.LLRClamp != 8 {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := decodeSoftByChannel(payload[:12]); err == nil {
		t.Fatal("truncated soft-by-channel accepted")
	}
}

func TestSoftResponseCodecRoundTrip(t *testing.T) {
	resp := &SoftDecodeResponse{
		ID: 6, Bits: []byte{1, 0, 1, 1}, Clamp: 24,
		LLR8: []int8{127, -127, 3, -90}, Saturated: 2,
		Energy: 1.25, ComputeMicros: 80, Backend: "qpu0", Batched: 2,
	}
	back, err := decodeSoftResponse(encodeSoftResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if back.Saturated != 2 || back.Clamp != 24 || len(back.LLR8) != 4 ||
		back.LLR8[1] != -127 || back.Backend != "qpu0" || back.Batched != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	llrs := back.LLRs()
	if math.Abs(llrs[0]-24) > 1e-12 || math.Abs(llrs[1]+24) > 1e-12 {
		t.Fatalf("dequantized full-scale LLRs: %v", llrs)
	}

	// Zero-length LLR list (error responses) is valid.
	errResp := &SoftDecodeResponse{ID: 8, Err: "boom"}
	back, err = decodeSoftResponse(encodeSoftResponse(errResp))
	if err != nil || back.Err != "boom" || len(back.LLR8) != 0 {
		t.Fatalf("error round trip: %+v, %v", back, err)
	}

	// Truncated LLR payload must be rejected, not mis-sliced.
	full := encodeSoftResponse(resp)
	if _, err := decodeSoftResponse(full[:len(full)-7]); err == nil {
		t.Fatal("truncated soft response accepted")
	}
}

// TestDecodeSoftOverPipe runs the full v6 loop: the client's soft decode
// must return the same hard bits as a hard decode and LLRs within one
// quantization step of the local soft decode.
func TestDecodeSoftOverPipe(t *testing.T) {
	dec := testDecoder(t)
	server := NewServer(dec, 1)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 623, modulation.QPSK, 4)
	resp, err := client.DecodeSoft(in.Mod, in.H, in.Y, SoftQoS{NoiseVar: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatalf("soft remote decode got %d bit errors", in.BitErrors(resp.Bits))
	}
	if len(resp.LLR8) != len(resp.Bits) {
		t.Fatalf("%d LLRs for %d bits", len(resp.LLR8), len(resp.Bits))
	}
	if resp.Clamp != softout.DefaultClamp {
		t.Fatalf("response clamp %g, want the package default %g", resp.Clamp, softout.DefaultClamp)
	}
	// A noise-free decode is ensemble-unanimous: every LLR saturates and the
	// signs reproduce the bits.
	if resp.Saturated == 0 {
		t.Fatal("noise-free soft decode reported no saturation")
	}
	got := softout.HardDecisions(resp.LLRs())
	if string(got) != string(resp.Bits) {
		t.Fatal("dequantized LLR signs do not reproduce the hard bits")
	}
}

// TestDecodeSoftWithChannelOverPipe drives the v6 by-channel path, including
// the request-clamp override.
func TestDecodeSoftWithChannelOverPipe(t *testing.T) {
	dec := testDecoder(t)
	server := NewServer(dec, 1)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 625, modulation.QPSK, 4)
	rc, err := client.RegisterChannel(in.Mod, in.H)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.DecodeSoftWithChannel(rc, in.Y, SoftQoS{NoiseVar: 0.01, LLRClamp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if in.BitErrors(resp.Bits) != 0 {
		t.Fatalf("soft by-channel decode got %d bit errors", in.BitErrors(resp.Bits))
	}
	if resp.Clamp != 8 {
		t.Fatalf("request clamp override lost: response clamp %g", resp.Clamp)
	}
	// Shape mismatch answers per-request.
	if _, err := client.DecodeSoftWithChannel(rc, in.Y[:2], SoftQoS{}); err == nil {
		t.Fatal("short received vector accepted locally")
	}
	// Unknown handle answers with a soft error response.
	bogus := &RemoteChannel{c: client, handle: 9999, mod: in.Mod, rows: len(in.Y)}
	if _, err := client.DecodeSoftWithChannel(bogus, in.Y, SoftQoS{}); err == nil ||
		!strings.Contains(err.Error(), "unknown channel handle") {
		t.Fatalf("unknown handle error = %v", err)
	}
}

// TestServerDisableSoft checks -soft=false servers answer cleanly.
func TestServerDisableSoft(t *testing.T) {
	server := NewServer(testDecoder(t), 1)
	server.DisableSoft = true
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	client := NewClient(cliConn)
	defer client.Close()

	in := testInstance(t, 627, modulation.QPSK, 4)
	_, err := client.DecodeSoft(in.Mod, in.H, in.Y, SoftQoS{})
	if err == nil || !strings.Contains(err.Error(), "soft decode disabled") {
		t.Fatalf("disabled soft decode error = %v", err)
	}
	// Hard decodes still serve.
	if _, err := client.Decode(in.Mod, in.H, in.Y); err != nil {
		t.Fatal(err)
	}
}

// TestServerAnswersMalformedSoftRequest: a corrupt soft frame with a
// salvageable ID must produce a soft-framed error so the soft caller
// unblocks (not a decode-framed one the soft pending table cannot match).
func TestServerAnswersMalformedSoftRequest(t *testing.T) {
	server := NewServer(testDecoder(t), 1)
	defer server.Close()
	cliConn, srvConn := net.Pipe()
	go server.handleConn(srvConn)
	defer cliConn.Close()

	payload := appendU64(nil, 31)         // valid ID...
	payload = append(payload, 0xde, 0xad) // ...followed by garbage
	done := make(chan error, 1)
	go func() {
		done <- writeFrame(cliConn, msgSoftDecodeRequest, payload)
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	msgType, resp, err := readFrame(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != msgSoftDecodeResponse {
		t.Fatalf("malformed soft request answered with frame type %d", msgType)
	}
	back, err := decodeSoftResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 31 || !strings.Contains(back.Err, "bad request") {
		t.Fatalf("soft error response: %+v", back)
	}
}
