package fronthaul

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
	"quamax/internal/sched"
	"quamax/internal/softout"
	"quamax/internal/telemetry"
)

// Dispatcher routes one decode problem to a solver. The QPU pool scheduler
// (internal/sched) is the production implementation; tests may substitute
// fakes. deadline ≤ 0 means "no deadline / use the dispatcher default".
type Dispatcher interface {
	Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error)
}

// Server is the data-center side: it accepts fronthaul connections and runs
// each decode or precode request through the QPU pool scheduler, which owns
// the backend workers (simulated QPUs and classical solvers) and the
// deadline-aware hybrid dispatch.
type Server struct {
	disp  Dispatcher
	owned *sched.Scheduler // set when the server built its own pool

	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...interface{})

	// PrecodeBits is the default perturbation alphabet depth for precode
	// requests that leave theirs zero (0 = precoding.DefaultPerturbBits).
	// Set before Serve.
	PrecodeBits int
	// PrecodeCache bounds the compiled-VP-program LRU shared by all
	// connections (0 = precoding.DefaultCache). Set before Serve.
	PrecodeCache int

	// DisableSoft rejects protocol-v6 soft-decode requests with a clean
	// error response (quamax-serve -soft=false) — for deployments whose
	// planner tables were fitted for hard chains only. Set before Serve.
	DisableSoft bool
	// LLRClamp is the default LLR magnitude bound / quantization full scale
	// for soft requests that carry none (0 = softout.DefaultClamp). Set
	// before Serve.
	LLRClamp float64

	// Telemetry, when non-nil, receives the server-side wall time of every
	// request (the wire histogram) and is snapshotted into v7 stats
	// responses. Set before Serve; share the same recorder with the
	// scheduler and planner so `quamax -top` sees one coherent plane.
	Telemetry *telemetry.Recorder

	// PipelineDepth bounds the in-flight window per connection: how many
	// requests may be in service (dispatched but unanswered) at once. When
	// the window is full the connection's read loop stops pulling frames, so
	// backpressure lands on the socket instead of growing an unbounded
	// goroutine set — a client pipelining faster than the pool drains simply
	// sees its writes stall. 0 = DefaultPipelineDepth. Set before Serve.
	PipelineDepth int

	// Health, when non-nil, supplies the solver-health plane snapshot for v9
	// stats responses (the serving binary assembles it from the health
	// tracker, burn tracker and router shed counters). The health block rides
	// the frame only when the snapshot carries data. Set before Serve.
	Health func() metrics.HealthStats

	precodeOnce     sync.Once
	precodePrograms *precoding.Cache
}

// precodeProgram resolves the compiled VP program for one precode request
// through the server-wide LRU, so every symbol vector of a coherence window
// pays the channel inversion and coupling compile once.
func (s *Server) precodeProgram(mod modulation.Modulation, h *linalg.Mat, bits int) (*precoding.Program, error) {
	s.precodeOnce.Do(func() {
		s.precodePrograms = precoding.NewCache(s.PrecodeCache)
	})
	if bits == 0 {
		bits = s.PrecodeBits
	}
	return s.precodePrograms.Get(mod, h, bits)
}

// PrecodeCacheStats snapshots the compiled-VP-program LRU counters (zero
// before the first precode request).
func (s *Server) PrecodeCacheStats() metrics.ChannelCacheStats {
	s.precodeOnce.Do(func() {
		s.precodePrograms = precoding.NewCache(s.PrecodeCache)
	})
	return s.precodePrograms.Stats()
}

// NewServer wraps a single QuAMax decoder as a one-QPU pool — the paper's
// original single-annealer deployment. seed drives all solver randomness.
// The server owns the pool's worker goroutine; call Close to drain it when
// the server is done serving.
func NewServer(dec *core.Decoder, seed int64) *Server {
	s, err := sched.New(sched.Config{
		Pool: []backend.Backend{backend.AnnealerFromDecoder("qpu0", dec)},
		Seed: seed,
	})
	if err != nil {
		// Unreachable: the pool is never empty here.
		panic(err)
	}
	return &Server{disp: s, owned: s}
}

// NewPoolServer serves decode requests through an externally owned
// dispatcher (typically a multi-backend sched.Scheduler). The caller keeps
// responsibility for draining it.
func NewPoolServer(d Dispatcher) *Server {
	return &Server{disp: d}
}

// Close drains a server-owned pool (no-op for NewPoolServer servers, whose
// scheduler lifetime belongs to the caller).
func (s *Server) Close() error {
	if s.owned != nil {
		return s.owned.Close()
	}
	return nil
}

// Stats reports pool statistics when the dispatcher exports them. For a
// sharded router dispatcher this is the PoolStats.Merge aggregate.
func (s *Server) Stats() (metrics.PoolStats, bool) {
	type statser interface{ Stats() metrics.PoolStats }
	if st, ok := s.disp.(statser); ok {
		return st.Stats(), true
	}
	return metrics.PoolStats{}, false
}

// ShardStats reports the per-shard breakdown when the dispatcher is a
// sharded front tier (internal/router). Single-pool dispatchers report none.
func (s *Server) ShardStats() ([]metrics.PoolStats, bool) {
	type shardStatser interface{ ShardStats() []metrics.PoolStats }
	if st, ok := s.disp.(shardStatser); ok {
		return st.ShardStats(), true
	}
	return nil, false
}

// DefaultPipelineDepth is the per-connection in-flight window when the
// server does not configure one: deep enough to keep a multi-worker shard
// busy from one AP, small enough that a misbehaving client cannot hold
// thousands of goroutines.
const DefaultPipelineDepth = 64

// pipelineDepth resolves the configured in-flight window.
func (s *Server) pipelineDepth() int {
	if s.PipelineDepth > 0 {
		return s.PipelineDepth
	}
	return DefaultPipelineDepth
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener is closed. Each connection
// gets a read loop; each request is decoded on its own goroutine so
// pipelined subcarriers overlap (the §5.5 parallelization opportunity).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// registeredChannel is one compiled coherence window on a connection: the
// estimated channel an AP registered with a v4 register-channel frame, plus
// the fingerprint the pool scheduler groups same-window symbols by.
type registeredChannel struct {
	mod modulation.Modulation
	h   *linalg.Mat
	key core.ChannelKey
}

// MaxChannelsPerConn bounds live channel registrations on one connection, so
// a client looping RegisterChannel cannot grow server memory without bound.
// Old windows are evicted FIFO — coherence windows are short-lived, so by
// the time an AP has registered this many newer channels the oldest handle
// is stale anyway (a decode against an evicted handle gets a clean error).
const MaxChannelsPerConn = 256

// outFrame is one response awaiting the connection's writer goroutine.
type outFrame struct {
	msgType uint8
	payload []byte
}

// handleConn processes one AP connection. The connection's lifetime bounds a
// context so that queued work from a disconnected AP is discarded instead of
// burning pool time. Registered channels are connection-scoped: handles die
// with the connection, exactly like a coherence window dies with its AP
// association.
//
// The connection is fully pipelined and multiplexed: the read loop pulls
// frames and hands dispatch-class requests to per-request goroutines, a
// bounded in-flight window (pipelineDepth) caps how many are in service at
// once — a full window stalls the read loop, pushing backpressure onto the
// socket — and one writer goroutine serializes the out-of-order responses
// back onto the wire.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	depth := s.pipelineDepth()

	// Writer: the single goroutine that touches the connection's write side.
	// Request goroutines finish by enqueueing; the channel closes only after
	// every producer is reaped, then the writer drains and exits.
	out := make(chan outFrame, depth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for f := range out {
			if err := writeFrame(conn, f.msgType, f.payload); err != nil {
				s.logf("fronthaul: write response: %v", err)
			}
		}
	}()
	defer func() { close(out); <-writerDone }()

	var wg sync.WaitGroup
	defer wg.Wait()
	// Deferred after wg.Wait so it runs first: a dropped connection cancels
	// queued dispatches, then the in-flight goroutines are reaped, and only
	// then does the writer shut down.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The in-flight window: spawn blocks while depth requests are already in
	// service, so the read loop stops consuming frames until a slot frees.
	sem := make(chan struct{}, depth)
	spawn := func(fn func()) {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fn()
		}()
	}

	var chanMu sync.Mutex
	channels := make(map[uint64]*registeredChannel)
	var nextHandle uint64

	write := func(msgType uint8, payload []byte) {
		out <- outFrame{msgType: msgType, payload: payload}
	}
	for {
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return // connection closed or corrupt framing
		}
		switch msgType {
		case msgDecodeRequest:
			req, err := decodeRequest(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			spawn(func() {
				resp := s.process(ctx, req.ID, &backend.Problem{
					Mod: req.Mod, H: req.H, Y: req.Y, TargetBER: req.TargetBER,
				}, req.DeadlineMicros)
				write(msgDecodeResponse, encodeResponse(resp))
			})

		case msgRegisterChannel:
			req, err := decodeRegisterChannel(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			// Registration is pure bookkeeping (the pool's compiled-channel
			// cache fills lazily on the first decode), so answer inline.
			// Handles are issued sequentially, so evicting the smallest live
			// handle at capacity is FIFO over registration order.
			chanMu.Lock()
			nextHandle++
			handle := nextHandle
			channels[handle] = &registeredChannel{
				mod: req.Mod, h: req.H, key: core.FingerprintChannel(req.Mod, req.H),
			}
			if len(channels) > MaxChannelsPerConn {
				oldest := handle
				for h := range channels {
					if h < oldest {
						oldest = h
					}
				}
				delete(channels, oldest)
			}
			chanMu.Unlock()
			write(msgRegisterResponse, encodeRegisterResponse(
				&RegisterChannelResponse{ID: req.ID, Handle: handle}))

		case msgPrecodeRequest:
			req, err := decodePrecode(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			// Program resolution (O(Nu³) channel inversion on an LRU miss)
			// runs in the request goroutine like every other heavy stage, so
			// it cannot head-of-line-block pipelined frames.
			spawn(func() {
				prog, err := s.precodeProgram(req.Mod, req.H, req.PerturbBits)
				if err != nil {
					write(msgDecodeResponse, encodeResponse(&DecodeResponse{ID: req.ID, Err: err.Error()}))
					return
				}
				p := prog.Problem(req.S)
				p.TargetBER = req.TargetBER
				resp := s.process(ctx, req.ID, p, req.DeadlineMicros)
				write(msgDecodeResponse, encodeResponse(resp))
			})

		case msgPrecodeByChannel:
			req, err := decodePrecodeByChannel(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			chanMu.Lock()
			rc := channels[req.Handle]
			chanMu.Unlock()
			if rc == nil {
				write(msgDecodeResponse, encodeResponse(&DecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("unknown channel handle %d", req.Handle)}))
				continue
			}
			if len(req.S) != rc.h.Rows {
				write(msgDecodeResponse, encodeResponse(&DecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("symbol vector has %d entries, channel serves %d users",
						len(req.S), rc.h.Rows)}))
				continue
			}
			spawn(func() {
				prog, err := s.precodeProgram(rc.mod, rc.h, req.PerturbBits)
				if err != nil {
					write(msgDecodeResponse, encodeResponse(&DecodeResponse{ID: req.ID, Err: err.Error()}))
					return
				}
				p := prog.Problem(req.S)
				p.TargetBER = req.TargetBER
				resp := s.process(ctx, req.ID, p, req.DeadlineMicros)
				write(msgDecodeResponse, encodeResponse(resp))
			})

		case msgSoftDecodeRequest:
			req, err := decodeSoftRequest(payload)
			if err != nil {
				s.badRequest(write, payload, err, msgSoftDecodeResponse)
				return
			}
			spawn(func() {
				resp := s.processSoft(ctx, req.ID, &backend.Problem{
					Mod: req.Mod, H: req.H, Y: req.Y, TargetBER: req.TargetBER,
					Soft: true, NoiseVar: req.NoiseVar, LLRClamp: s.softClamp(req.LLRClamp),
				}, req.DeadlineMicros)
				write(msgSoftDecodeResponse, encodeSoftResponse(resp))
			})

		case msgSoftDecodeByChan:
			req, err := decodeSoftByChannel(payload)
			if err != nil {
				s.badRequest(write, payload, err, msgSoftDecodeResponse)
				return
			}
			chanMu.Lock()
			rc := channels[req.Handle]
			chanMu.Unlock()
			if rc == nil {
				write(msgSoftDecodeResponse, encodeSoftResponse(&SoftDecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("unknown channel handle %d", req.Handle)}))
				continue
			}
			if len(req.Y) != rc.h.Rows {
				write(msgSoftDecodeResponse, encodeSoftResponse(&SoftDecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("received vector has %d entries, channel has %d rows",
						len(req.Y), rc.h.Rows)}))
				continue
			}
			spawn(func() {
				resp := s.processSoft(ctx, req.ID, &backend.Problem{
					Mod: rc.mod, H: rc.h, Y: req.Y, TargetBER: req.TargetBER,
					ChannelKey: rc.key,
					Soft:       true, NoiseVar: req.NoiseVar, LLRClamp: s.softClamp(req.LLRClamp),
				}, req.DeadlineMicros)
				write(msgSoftDecodeResponse, encodeSoftResponse(resp))
			})

		case msgDecodeByChannel:
			req, err := decodeDecodeByChannel(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			chanMu.Lock()
			rc := channels[req.Handle]
			chanMu.Unlock()
			if rc == nil {
				write(msgDecodeResponse, encodeResponse(&DecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("unknown channel handle %d", req.Handle)}))
				continue
			}
			if len(req.Y) != rc.h.Rows {
				write(msgDecodeResponse, encodeResponse(&DecodeResponse{
					ID: req.ID, Err: fmt.Sprintf("received vector has %d entries, channel has %d rows",
						len(req.Y), rc.h.Rows)}))
				continue
			}
			spawn(func() {
				resp := s.process(ctx, req.ID, &backend.Problem{
					Mod: rc.mod, H: rc.h, Y: req.Y, TargetBER: req.TargetBER,
					ChannelKey: rc.key,
				}, req.DeadlineMicros)
				write(msgDecodeResponse, encodeResponse(resp))
			})

		case msgStatsRequest:
			req, err := decodeStatsRequest(payload)
			if err != nil {
				s.badRequest(write, payload, err)
				return
			}
			// Stats are a pure snapshot (no pool dispatch), so answer inline
			// like channel registration.
			resp := &StatsResponse{ID: req.ID}
			if st, ok := s.Stats(); ok {
				resp.Pool = st
			}
			if per, ok := s.ShardStats(); ok {
				resp.Shards = per
			}
			if s.Telemetry != nil {
				resp.Telemetry = s.Telemetry.Snapshot()
				resp.UptimeMicros = resp.Telemetry.UptimeMicros
			}
			if s.Health != nil {
				if h := s.Health(); !h.Empty() {
					resp.Health = &h
				}
			}
			b, err := encodeStatsResponse(resp)
			if err != nil {
				b, _ = encodeStatsResponse(&StatsResponse{ID: req.ID, Err: err.Error()})
			}
			write(msgStatsResponse, b)

		default:
			s.logf("fronthaul: dropping unexpected message type %d (protocol version %d)",
				msgType, ProtocolVersion)
		}
	}
}

// badRequest logs a malformed payload and, when the request ID is
// salvageable (first 8 bytes), answers with an error so a protocol-
// mismatched client fails fast instead of blocking forever on a swallowed
// request. respType selects the response framing — soft requests must be
// answered with soft-decode responses or the client cannot match them —
// and defaults to the decode response.
func (s *Server) badRequest(write func(uint8, []byte), payload []byte, err error, respType ...uint8) {
	s.logf("fronthaul: bad request: %v", err)
	if len(payload) < 8 {
		return
	}
	id := binary.LittleEndian.Uint64(payload)
	msg := fmt.Sprintf("bad request (server speaks protocol version %d): %v", ProtocolVersion, err)
	frameType := msgDecodeResponse
	frame := encodeResponse(&DecodeResponse{ID: id, Err: msg})
	if len(respType) > 0 && respType[0] == msgSoftDecodeResponse {
		frameType = msgSoftDecodeResponse
		frame = encodeSoftResponse(&SoftDecodeResponse{ID: id, Err: msg})
	}
	write(frameType, frame)
}

// softClamp resolves the effective LLR clamp of one soft request: the
// request's own bound, else the server default, else the package default.
// The resolved value scales both the backend clamping and the response
// quantization, so the two always agree.
func (s *Server) softClamp(reqClamp float64) float64 {
	if reqClamp > 0 {
		return reqClamp
	}
	if s.LLRClamp > 0 {
		return s.LLRClamp
	}
	return softout.DefaultClamp
}

// processSoft routes one soft decode through the pool and quantizes the
// resulting LLRs onto the wire at the problem's clamp.
func (s *Server) processSoft(ctx context.Context, id uint64, p *backend.Problem, deadlineMicros float64) *SoftDecodeResponse {
	if s.DisableSoft {
		return &SoftDecodeResponse{ID: id, Err: "soft decode disabled by server configuration"}
	}
	deadline := time.Duration(deadlineMicros * float64(time.Microsecond))
	defer s.observeWire(time.Now())
	res, err := s.disp.Dispatch(ctx, p, deadline)
	if err != nil {
		return &SoftDecodeResponse{ID: id, Err: err.Error()}
	}
	return &SoftDecodeResponse{
		ID:            id,
		Bits:          res.Bits,
		Clamp:         p.LLRClamp,
		LLR8:          softout.Quantize(res.LLRs, p.LLRClamp),
		Saturated:     res.LLRSaturated,
		Energy:        res.Energy,
		ComputeMicros: res.ComputeMicros,
		Backend:       res.Backend,
		Batched:       res.Batched,
	}
}

// observeWire feeds the server-side wall time of one request into the
// telemetry wire histogram (the only feeder of that histogram). Call
// deferred with the dispatch start time.
func (s *Server) observeWire(start time.Time) {
	if s.Telemetry != nil {
		s.Telemetry.ObserveWire(float64(time.Since(start)) / float64(time.Microsecond))
	}
}

// process routes one decode through the pool.
func (s *Server) process(ctx context.Context, id uint64, p *backend.Problem, deadlineMicros float64) *DecodeResponse {
	deadline := time.Duration(deadlineMicros * float64(time.Microsecond))
	defer s.observeWire(time.Now())
	res, err := s.disp.Dispatch(ctx, p, deadline)
	if err != nil {
		return &DecodeResponse{ID: id, Err: err.Error()}
	}
	return &DecodeResponse{
		ID:            id,
		Bits:          res.Bits,
		Energy:        res.Energy,
		ComputeMicros: res.ComputeMicros,
		Backend:       res.Backend,
		Batched:       res.Batched,
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves. It logs
// the bound address via Logf and blocks until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fronthaul: listen: %w", err)
	}
	s.logf("fronthaul: listening on %s", l.Addr())
	return s.Serve(l)
}
