package fronthaul

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"quamax/internal/backend"
	"quamax/internal/core"
	"quamax/internal/metrics"
	"quamax/internal/sched"
)

// Dispatcher routes one decode problem to a solver. The QPU pool scheduler
// (internal/sched) is the production implementation; tests may substitute
// fakes. deadline ≤ 0 means "no deadline / use the dispatcher default".
type Dispatcher interface {
	Dispatch(ctx context.Context, p *backend.Problem, deadline time.Duration) (*backend.Result, error)
}

// Server is the data-center side: it accepts fronthaul connections and runs
// each decode request through the QPU pool scheduler, which owns the backend
// workers (simulated QPUs and classical solvers) and the deadline-aware
// hybrid dispatch.
type Server struct {
	disp  Dispatcher
	owned *sched.Scheduler // set when the server built its own pool

	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...interface{})
}

// NewServer wraps a single QuAMax decoder as a one-QPU pool — the paper's
// original single-annealer deployment. seed drives all solver randomness.
// The server owns the pool's worker goroutine; call Close to drain it when
// the server is done serving.
func NewServer(dec *core.Decoder, seed int64) *Server {
	s, err := sched.New(sched.Config{
		Pool: []backend.Backend{backend.AnnealerFromDecoder("qpu0", dec)},
		Seed: seed,
	})
	if err != nil {
		// Unreachable: the pool is never empty here.
		panic(err)
	}
	return &Server{disp: s, owned: s}
}

// NewPoolServer serves decode requests through an externally owned
// dispatcher (typically a multi-backend sched.Scheduler). The caller keeps
// responsibility for draining it.
func NewPoolServer(d Dispatcher) *Server {
	return &Server{disp: d}
}

// Close drains a server-owned pool (no-op for NewPoolServer servers, whose
// scheduler lifetime belongs to the caller).
func (s *Server) Close() error {
	if s.owned != nil {
		return s.owned.Close()
	}
	return nil
}

// Stats reports pool statistics when the dispatcher exports them.
func (s *Server) Stats() (metrics.PoolStats, bool) {
	type statser interface{ Stats() metrics.PoolStats }
	if st, ok := s.disp.(statser); ok {
		return st.Stats(), true
	}
	return metrics.PoolStats{}, false
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener is closed. Each connection
// gets a read loop; each request is decoded on its own goroutine so
// pipelined subcarriers overlap (the §5.5 parallelization opportunity).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// handleConn processes one AP connection. The connection's lifetime bounds a
// context so that queued work from a disconnected AP is discarded instead of
// burning pool time.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	var writeMu sync.Mutex // responses from concurrent decodes interleave
	var wg sync.WaitGroup
	defer wg.Wait()
	// Deferred after wg.Wait so it runs first: a dropped connection cancels
	// queued dispatches, then the in-flight goroutines are reaped.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return // connection closed or corrupt framing
		}
		if msgType != msgDecodeRequest {
			s.logf("fronthaul: dropping unexpected message type %d (protocol version %d)",
				msgType, ProtocolVersion)
			continue
		}
		req, err := decodeRequest(payload)
		if err != nil {
			s.logf("fronthaul: bad request: %v", err)
			// Salvage the request ID (first 8 bytes) when possible and
			// answer with an error, so a protocol-mismatched client fails
			// fast instead of blocking forever on a swallowed request.
			if len(payload) >= 8 {
				id := binary.LittleEndian.Uint64(payload)
				resp := &DecodeResponse{ID: id, Err: fmt.Sprintf(
					"bad request (server speaks protocol version %d): %v", ProtocolVersion, err)}
				writeMu.Lock()
				werr := writeFrame(conn, msgDecodeResponse, encodeResponse(resp))
				writeMu.Unlock()
				if werr != nil {
					s.logf("fronthaul: write error response: %v", werr)
				}
			}
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := s.process(ctx, req)
			writeMu.Lock()
			defer writeMu.Unlock()
			if err := writeFrame(conn, msgDecodeResponse, encodeResponse(resp)); err != nil {
				s.logf("fronthaul: write response: %v", err)
			}
		}()
	}
}

// process routes one decode through the pool.
func (s *Server) process(ctx context.Context, req *DecodeRequest) *DecodeResponse {
	deadline := time.Duration(req.DeadlineMicros * float64(time.Microsecond))
	res, err := s.disp.Dispatch(ctx,
		&backend.Problem{Mod: req.Mod, H: req.H, Y: req.Y, TargetBER: req.TargetBER}, deadline)
	if err != nil {
		return &DecodeResponse{ID: req.ID, Err: err.Error()}
	}
	return &DecodeResponse{
		ID:            req.ID,
		Bits:          res.Bits,
		Energy:        res.Energy,
		ComputeMicros: res.ComputeMicros,
		Backend:       res.Backend,
		Batched:       res.Batched,
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves. It logs
// the bound address via Logf and blocks until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fronthaul: listen: %w", err)
	}
	s.logf("fronthaul: listening on %s", l.Addr())
	return s.Serve(l)
}
