package fronthaul

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"quamax/internal/core"
	"quamax/internal/rng"
)

// Server is the data-center side: it accepts fronthaul connections and runs
// each decode request through a QuAMax decoder pool. One Server models one
// QPU with its supporting classical control plane.
type Server struct {
	dec *core.Decoder

	mu  sync.Mutex
	src *rng.Source
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...interface{})
}

// NewServer wraps a decoder. seed drives all annealer randomness.
func NewServer(dec *core.Decoder, seed int64) *Server {
	return &Server{dec: dec, src: rng.New(seed)}
}

// splitSource hands out an independent random stream per request.
func (s *Server) splitSource() *rng.Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Split()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener is closed. Each connection
// gets a read loop; each request is decoded on its own goroutine so
// pipelined subcarriers overlap (the §5.5 parallelization opportunity).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// handleConn processes one AP connection.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	var writeMu sync.Mutex // responses from concurrent decodes interleave
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return // connection closed or corrupt framing
		}
		if msgType != msgDecodeRequest {
			s.logf("fronthaul: dropping unexpected message type %d", msgType)
			continue
		}
		req, err := decodeRequest(payload)
		if err != nil {
			s.logf("fronthaul: bad request: %v", err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := s.process(req)
			writeMu.Lock()
			defer writeMu.Unlock()
			if err := writeFrame(conn, msgDecodeResponse, encodeResponse(resp)); err != nil {
				s.logf("fronthaul: write response: %v", err)
			}
		}()
	}
}

// process runs one decode.
func (s *Server) process(req *DecodeRequest) *DecodeResponse {
	out, err := s.dec.Decode(req.Mod, req.H, req.Y, s.splitSource())
	if err != nil {
		return &DecodeResponse{ID: req.ID, Err: err.Error()}
	}
	na := float64(s.dec.Options().Params.NumAnneals)
	return &DecodeResponse{
		ID:            req.ID,
		Bits:          out.Bits,
		Energy:        out.Energy,
		ComputeMicros: na * out.WallMicrosPerAnneal / out.Pf,
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves. It logs
// the bound address via Logf and blocks until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fronthaul: listen: %w", err)
	}
	s.logf("fronthaul: listening on %s", l.Addr())
	return s.Serve(l)
}
