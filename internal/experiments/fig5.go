package experiments

import (
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/modulation"
)

// Fig5Config drives the ferromagnetic-coupling microbenchmark (paper Fig. 5):
// TTS(0.99) as a function of |J_F| for several problem sizes, standard vs
// improved coupler dynamic range, Ta = 1 µs, no pause.
type Fig5Config struct {
	JFs       []float64
	BPSKUsers []int
	QPSKUsers []int
	Instances int
	Anneals   int
	Seed      int64
}

// Fig5Quick is the bench-scale preset (paper: J_F ∈ 1.0–10.0 step 0.5,
// 10 instances).
func Fig5Quick() Fig5Config {
	return Fig5Config{
		JFs:       []float64{1, 2, 4, 6, 8, 10},
		BPSKUsers: []int{12, 24, 36},
		QPSKUsers: []int{6, 12},
		Instances: 4,
		Anneals:   200,
		Seed:      5,
	}
}

// Fig5Full matches the paper's sweep.
func Fig5Full() Fig5Config {
	jfs := []float64{}
	for jf := 1.0; jf <= 10.0; jf += 0.5 {
		jfs = append(jfs, jf)
	}
	return Fig5Config{
		JFs:       jfs,
		BPSKUsers: []int{12, 24, 36},
		QPSKUsers: []int{6, 12, 18},
		Instances: 10,
		Anneals:   2000,
		Seed:      5,
	}
}

// Fig5 sweeps |J_F| and reports median/10th/90th-percentile TTS.
func Fig5(e *Env, cfg Fig5Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 5: TTS(0.99) vs |J_F| (Ta=1us, no pause)",
		Columns: []string{"mod", "users", "range", "JF", "TTS p50", "TTS p10", "TTS p90"},
		Notes: []string{
			fmt.Sprintf("%d instances, %d anneals each", cfg.Instances, cfg.Anneals),
			"expected shape: standard range has a size-dependent optimum |J_F|; improved range is flatter",
		},
	}
	type group struct {
		mod   modulation.Modulation
		users []int
	}
	for _, g := range []group{{modulation.BPSK, cfg.BPSKUsers}, {modulation.QPSK, cfg.QPSKUsers}} {
		for _, users := range g.users {
			ins, err := noiseFreeInstances(g.mod, users, cfg.Instances, cfg.Seed+int64(users))
			if err != nil {
				return nil, err
			}
			for _, improved := range []bool{false, true} {
				rangeName := "standard"
				if improved {
					rangeName = "improved"
				}
				for _, jf := range cfg.JFs {
					fp := FixParams{JF: jf, Improved: improved, Params: paramsTa(1, cfg.Anneals)}
					tts, err := e.ttsPerInstance(ins, fp, cfg.Seed+int64(jf*10))
					if err != nil {
						return nil, err
					}
					t.AddRow(
						g.mod.String(), fmt.Sprintf("%d", users), rangeName,
						fmt.Sprintf("%.1f", jf),
						fmtMicros(metrics.Median(tts)),
						fmtMicros(metrics.Percentile(tts, 10)),
						fmtMicros(metrics.Percentile(tts, 90)),
					)
				}
			}
		}
	}
	return t, nil
}
