package experiments

import (
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/modulation"
)

// Fig7Config drives the anneal-pause study (paper Fig. 7): TTS of 18-user
// QPSK versus pause position sp for pause times Tp ∈ {1, 10, 100} µs across
// |J_F| values, improved dynamic range, Ta = 1 µs. It also includes a no-ICE
// ablation so the pause benefit can be attributed.
type Fig7Config struct {
	PauseTimes     []float64
	PausePositions []float64
	JFs            []float64
	Users          int
	Instances      int
	Anneals        int
	Seed           int64
	IncludeNoICE   bool
}

// Fig7Quick is the bench-scale preset (paper: sp ∈ 0.15–0.55 step 0.02).
func Fig7Quick() Fig7Config {
	return Fig7Config{
		PauseTimes:     []float64{1, 10},
		PausePositions: []float64{0.15, 0.25, 0.35, 0.45, 0.55},
		JFs:            []float64{4, 8},
		Users:          12,
		Instances:      3,
		Anneals:        400,
		Seed:           7,
		IncludeNoICE:   true,
	}
}

// Fig7Full matches the paper's sweep density more closely.
func Fig7Full() Fig7Config {
	sps := []float64{}
	for sp := 0.15; sp <= 0.551; sp += 0.02 {
		sps = append(sps, sp)
	}
	return Fig7Config{
		PauseTimes:     []float64{1, 10, 100},
		PausePositions: sps,
		JFs:            []float64{2, 4, 6, 8, 10},
		Users:          18,
		Instances:      10,
		Anneals:        1000,
		Seed:           7,
		IncludeNoICE:   true,
	}
}

// Fig7 sweeps pause time and position.
func Fig7(e *Env, cfg Fig7Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: TTS vs anneal pause (QPSK %d users, improved range, Ta=1us)", cfg.Users),
		Columns: []string{"ICE", "Tp(us)", "sp", "JF", "TTS p50"},
		Notes: []string{
			"expected shape: Tp=1us beats longer pauses (pause time dominates wall clock); a mid-schedule sp is optimal",
		},
	}
	ins, err := noiseFreeInstances(modulation.QPSK, cfg.Users, cfg.Instances, cfg.Seed)
	if err != nil {
		return nil, err
	}
	iceModes := []bool{true}
	if cfg.IncludeNoICE {
		iceModes = append(iceModes, false)
	}
	baseICE := e.Machine.ICE
	defer func() { e.Machine.ICE = baseICE }()
	for _, ice := range iceModes {
		e.Machine.ICE.Enabled = ice
		iceName := "on"
		if !ice {
			iceName = "off"
		}
		for _, tp := range cfg.PauseTimes {
			for _, sp := range cfg.PausePositions {
				for _, jf := range cfg.JFs {
					fp := FixParams{JF: jf, Improved: true, Params: paramsPause(1, tp, sp, cfg.Anneals)}
					tts, err := e.ttsPerInstance(ins, fp, cfg.Seed+int64(sp*100)+int64(tp))
					if err != nil {
						return nil, err
					}
					t.AddRow(
						iceName,
						fmt.Sprintf("%g", tp),
						fmt.Sprintf("%.2f", sp),
						fmt.Sprintf("%.1f", jf),
						fmtMicros(metrics.Median(tts)),
					)
				}
			}
		}
	}
	e.Machine.ICE = baseICE
	return t, nil
}
