// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment has a Config with two presets: Quick
// (used by the root bench_test.go, minutes of compute) and Full (used by
// cmd/quamax, closer to the paper's statistics). The output is a Table —
// the same rows/series the paper plots — renderable as aligned text or CSV.
//
// The per-experiment index lives in cmd/quamax (quamax -exp all); measured-vs-paper
// comparisons live in the experiment doc comments and the bench harness.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"quamax/internal/anneal"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats (calibration, scale) into the rendered output.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("## " + t.Title + "\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are escaped by
// replacing embedded commas; experiment cells never need full quoting).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ",") + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// fmtMicros formats a microsecond quantity the way the paper's axes do.
func fmtMicros(us float64) string {
	switch {
	case math.IsInf(us, 1):
		return "inf"
	case us >= 1e4:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.2fus", us)
	}
}

// fmtBER formats a bit error rate.
func fmtBER(ber float64) string {
	switch {
	case math.IsNaN(ber):
		return "nan"
	case ber == 0:
		return "0"
	case ber < 1e-3:
		return fmt.Sprintf("%.1e", ber)
	default:
		return fmt.Sprintf("%.4f", ber)
	}
}

// Env bundles the shared experimental apparatus: the chip model and the
// calibrated machine. One Env is reused across experiments so embeddings and
// packings are computed once.
type Env struct {
	Graph   *chimera.Graph
	Machine *anneal.Machine

	decoders map[string]*core.Decoder
}

// NewEnv builds the default apparatus (DW2Q chip, calibrated machine).
func NewEnv() *Env {
	return &Env{
		Graph:    chimera.DW2Q(),
		Machine:  anneal.NewMachine(),
		decoders: make(map[string]*core.Decoder),
	}
}

// decoder returns a cached Decoder for a parameter combination.
func (e *Env) decoder(jf float64, improved bool, params anneal.Params, amortize bool) (*core.Decoder, error) {
	key := fmt.Sprintf("%g|%v|%v|%v", jf, improved, params, amortize)
	if d, ok := e.decoders[key]; ok {
		return d, nil
	}
	d, err := core.New(core.Options{
		Graph:            e.Graph,
		Machine:          e.Machine,
		JF:               jf,
		ImprovedRange:    improved,
		Params:           params,
		AmortizeParallel: amortize,
	})
	if err != nil {
		return nil, err
	}
	e.decoders[key] = d
	return d, nil
}

// FixParams is the paper's fixed operating point (§5.3.1–5.3.2): improved
// dynamic range, Ta = 1 µs with a 1 µs pause, |J_F| = 4.
type FixParams struct {
	JF       float64
	Improved bool
	Params   anneal.Params
}

// DefaultFix returns the Fix strategy settings for the BPSK/QPSK classes.
func DefaultFix(numAnneals int) FixParams {
	return FixParams{
		JF:       4,
		Improved: true,
		Params: anneal.Params{
			AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35,
			NumAnneals: numAnneals,
		},
	}
}

// ClassFix returns the per-problem-class fixed operating point. The paper's
// Fix strategy selects "the parameters which optimize medians across a
// sample of instances belonging to the same problem class" (§5.3.2) — in
// particular 16-QAM's 8× coefficient spread wants much stronger chains
// before the hardware rescale stops squeezing them (Fig. 5's size/class
// dependence; measured for this simulator in quamax_test.go's probe).
func ClassFix(mod modulation.Modulation, numAnneals int) FixParams {
	fp := DefaultFix(numAnneals)
	switch mod {
	case modulation.QAM16:
		fp.JF = 12
	case modulation.QAM64:
		fp.JF = 16
	}
	return fp
}

// decodeDist runs one instance under one parameter combination and returns
// its solution distribution plus the per-anneal wall time and Pf.
func (e *Env) decodeDist(in *mimo.Instance, fp FixParams, amortize bool, src *rng.Source) (*metrics.Distribution, float64, float64, error) {
	d, err := e.decoder(fp.JF, fp.Improved, fp.Params, amortize)
	if err != nil {
		return nil, 0, 0, err
	}
	out, err := d.DecodeInstance(in, src)
	if err != nil {
		return nil, 0, 0, err
	}
	return out.Distribution, out.WallMicrosPerAnneal, out.Pf, nil
}

// OptGrid is the per-instance oracle's parameter grid (§5.3.2's Opt bound):
// it re-runs the instance for every combination and keeps the best result
// under the experiment's figure of merit.
type OptGrid struct {
	JFs            []float64
	PausePositions []float64
}

// DefaultOptGrid returns the full-scale Opt oracle grid; it spans the chain
// strengths every modulation class needs (16-QAM optima sit near 12).
func DefaultOptGrid() OptGrid {
	return OptGrid{
		JFs:            []float64{2, 4, 6, 8, 12, 16},
		PausePositions: []float64{0.25, 0.35, 0.45},
	}
}

// QuickOptGrid is the bench-scale Opt oracle grid.
func QuickOptGrid() OptGrid {
	return OptGrid{JFs: []float64{2, 4, 8, 12}, PausePositions: []float64{0.35}}
}

// bestTTB evaluates the grid and returns the minimum TTB(target) across
// combinations (the Opt oracle), along with the distribution that achieved it.
func (e *Env) bestTTB(in *mimo.Instance, grid OptGrid, numAnneals int, target float64, amortize bool, src *rng.Source) (float64, *metrics.Distribution, error) {
	best := math.Inf(1)
	var bestDist *metrics.Distribution
	for _, jf := range grid.JFs {
		for _, sp := range grid.PausePositions {
			fp := FixParams{
				JF: jf, Improved: true,
				Params: anneal.Params{
					AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: sp,
					NumAnneals: numAnneals,
				},
			}
			dist, wall, pf, err := e.decodeDist(in, fp, amortize, src)
			if err != nil {
				return 0, nil, err
			}
			if ttb := dist.TTB(target, wall, pf); bestDist == nil || ttb < best {
				best = ttb
				bestDist = dist
			}
		}
	}
	return best, bestDist, nil
}
