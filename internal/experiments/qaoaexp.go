package experiments

import (
	"fmt"
	"math"

	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/qaoa"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// QAOAConfig drives the gate-model extension experiment (paper §6/§8): the
// same ML→Ising reduction is handed to a p=1 QAOA circuit on an exact
// state-vector simulator, decoding the small systems gate-model hardware of
// the paper's era could hold (§8: "currently cannot support algorithms that
// decode more than 4×4 BPSK").
type QAOAConfig struct {
	Instances      int
	Shots          int
	GridResolution int
	Seed           int64
}

// QAOAQuick is the bench-scale preset.
func QAOAQuick() QAOAConfig {
	return QAOAConfig{Instances: 4, Shots: 64, GridResolution: 16, Seed: 19}
}

// QAOAFull widens the statistics.
func QAOAFull() QAOAConfig {
	return QAOAConfig{Instances: 20, Shots: 256, GridResolution: 32, Seed: 19}
}

// QAOAExperiment decodes small MIMO systems with p=1 QAOA and reports the
// ground-state amplification over uniform sampling plus best-of-shots BER.
func QAOAExperiment(e *Env, cfg QAOAConfig) (*Table, error) {
	t := &Table{
		Title:   "Extension: gate-model QAOA (p=1, exact state vector) on the same ML reduction",
		Columns: []string{"config", "N", "P(ground) uniform", "P(ground) QAOA", "amplification", "best-of-shots BER"},
		Notes: []string{
			fmt.Sprintf("%d instances, %d shots, noise-free channels; 4x4 BPSK is the paper's stated gate-model capability limit", cfg.Instances, cfg.Shots),
			"the 48-user problems QuAMax targets are unreachable here by construction (2^48 amplitudes)",
		},
	}
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 2},
		{modulation.BPSK, 4},
		{modulation.QPSK, 2},
		{modulation.BPSK, 8}, // one step beyond the paper's stated limit
	}
	for _, c := range cases {
		src := rng.New(cfg.Seed + int64(c.nt)*31 + int64(c.mod))
		var gps, bers []float64
		n := reduction.NumVariables(c.mod, c.nt)
		uniform := 0.0
		for i := 0; i < cfg.Instances; i++ {
			in, err := genSquareInstance(src, c.mod, c.nt, math.Inf(1))
			if err != nil {
				return nil, err
			}
			logical := reduction.ReduceToIsing(c.mod, in.H, in.Y)
			circ, err := qaoa.NewCircuit(logical)
			if err != nil {
				return nil, err
			}
			params, err := circ.OptimizeGrid(cfg.GridResolution)
			if err != nil {
				return nil, err
			}
			gp, err := circ.GroundProbability(params)
			if err != nil {
				return nil, err
			}
			gps = append(gps, gp)
			uniform = 1 / float64(int(1)<<n)

			shots, err := circ.Sample(params, cfg.Shots, src)
			if err != nil {
				return nil, err
			}
			bestE := math.Inf(1)
			var best []byte
			for _, s := range shots {
				if en := logical.Energy(qubo.SpinsFromBits(s)); en < bestE {
					bestE = en
					best = s
				}
			}
			bers = append(bers, in.BER(c.mod.PostTranslate(best)))
		}
		gp := metrics.Median(gps)
		t.AddRow(
			fmt.Sprintf("%v %dx%d", c.mod, c.nt, c.nt),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", uniform),
			fmt.Sprintf("%.4f", gp),
			fmt.Sprintf("%.1fx", gp/uniform),
			fmtBER(metrics.Mean(bers)),
		)
	}
	return t, nil
}
