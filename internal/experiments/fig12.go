package experiments

import (
	"fmt"
	"math"

	"quamax/internal/channel"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Fig12Config drives the AWGN detail view (paper Fig. 12): one fixed
// 18-user QPSK channel and bit string, examined at six SNRs; per SNR the
// rank structure (gap between the two lowest energies, occurrence
// frequency, bit errors) is reported.
type Fig12Config struct {
	Users   int
	SNRs    []float64
	Anneals int
	Ranks   int
	Seed    int64
}

// Fig12Quick is the bench-scale preset.
func Fig12Quick() Fig12Config {
	return Fig12Config{
		Users:   12,
		SNRs:    []float64{10, 15, 20, 25, 30, 40},
		Anneals: 600,
		Ranks:   4,
		Seed:    12,
	}
}

// Fig12Full raises the anneal count.
func Fig12Full() Fig12Config {
	cfg := Fig12Quick()
	cfg.Anneals = 10000
	return cfg
}

// Fig12 reports the per-SNR rank detail.
func Fig12(e *Env, cfg Fig12Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 12: rank detail vs SNR (%d-user QPSK, fixed channel/bits)", cfg.Users),
		Columns: []string{"SNR(dB)", "rank", "dE% vs min", "freq", "bit errs", "P(best found)"},
		Notes: []string{
			"expected shape: as SNR increases the ground-state probability and the rank-1/rank-2 energy gap grow (at 10 dB the paper's gap narrows to ~3%)",
		},
	}
	// One fixed channel and bit string; noise differs per SNR (paper §5.4).
	setup := rng.New(cfg.Seed)
	h := channel.RandomPhase{}.Generate(setup, cfg.Users, cfg.Users)
	bits := setup.Bits(cfg.Users * modulation.QPSK.BitsPerSymbol())

	fix := DefaultFix(cfg.Anneals)
	for _, snr := range cfg.SNRs {
		src := rng.New(cfg.Seed + int64(snr*10))
		in, err := mimo.FromParts(src, mimo.Config{
			Mod: modulation.QPSK, Nt: cfg.Users, Nr: cfg.Users,
			Channel: channel.Fixed{H: h}, SNRdB: snr,
		}, h, bits)
		if err != nil {
			return nil, err
		}
		dist, _, _, err := e.decodeDist(in, fix, false, src)
		if err != nil {
			return nil, err
		}
		minE := dist.Solutions[0].Energy
		pBest := float64(dist.Solutions[0].Count) / float64(dist.Total)
		for r, s := range dist.Solutions {
			if r >= cfg.Ranks {
				break
			}
			gap := 0.0
			if math.Abs(minE) > 1e-12 {
				gap = (s.Energy - minE) / math.Abs(minE) * 100
			}
			t.AddRow(
				fmt.Sprintf("%g", snr),
				fmt.Sprintf("%d", r+1),
				fmt.Sprintf("%.2f", gap),
				fmt.Sprintf("%.4f", float64(s.Count)/float64(dist.Total)),
				fmt.Sprintf("%d", s.BitErrors),
				fmt.Sprintf("%.3f", pBest),
			)
		}
	}
	return t, nil
}
