package experiments

import (
	"math"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Helpers shared by the TTS microbenchmark figures (Figs. 5–7): all run
// noise-free random-phase instances (paper §5.3, "unit fixed channel gain
// ... random-phase channel") so the ground energy is exactly 0 and P0 is
// measured directly.

// groundTol is the energy tolerance for counting a sample as the ground
// state of a noise-free instance.
const groundTol = 1e-6

// noiseFreeInstances draws `count` instances of users×users mod at infinite
// SNR.
func noiseFreeInstances(mod modulation.Modulation, users, count int, seed int64) ([]*mimo.Instance, error) {
	src := rng.New(seed)
	out := make([]*mimo.Instance, 0, count)
	for i := 0; i < count; i++ {
		in, err := mimo.Generate(src, mimo.Config{
			Mod: mod, Nt: users, Nr: users, Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// ttsPerInstance measures TTS(0.99) for each instance under the given
// parameters. The per-anneal wall time includes the pause.
func (e *Env) ttsPerInstance(ins []*mimo.Instance, fp FixParams, seed int64) ([]float64, error) {
	src := rng.New(seed)
	out := make([]float64, 0, len(ins))
	for _, in := range ins {
		dist, wall, _, err := e.decodeDist(in, fp, false, src)
		if err != nil {
			return nil, err
		}
		p0 := dist.GroundProbability(0, groundTol)
		out = append(out, metrics.TTS(p0, wall, 0.99))
	}
	return out, nil
}

// paramsTa returns pause-free annealer params at the given anneal time.
func paramsTa(ta float64, na int) anneal.Params {
	return anneal.Params{AnnealTimeMicros: ta, NumAnneals: na}
}

// paramsPause returns paused annealer params.
func paramsPause(ta, tp, sp float64, na int) anneal.Params {
	return anneal.Params{AnnealTimeMicros: ta, PauseTimeMicros: tp, PausePosition: sp, NumAnneals: na}
}

// genSquareInstance draws one Nt=Nr random-phase instance at finite SNR.
func genSquareInstance(src *rng.Source, mod modulation.Modulation, users int, snrDB float64) (*mimo.Instance, error) {
	return mimo.Generate(src, mimo.Config{
		Mod: mod, Nt: users, Nr: users, Channel: channel.RandomPhase{}, SNRdB: snrDB,
	})
}
