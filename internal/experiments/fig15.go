package experiments

import (
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/trace"

	"quamax/internal/channel"
)

// Fig15Config drives the trace-driven evaluation (paper Fig. 15 / §5.5):
// 8×8 channel uses sampled from a 96-antenna many-antenna trace at
// 25–35 dB SNR, BPSK and QPSK, reporting TTB and TTF for Fix and Opt.
type Fig15Config struct {
	// TracePath loads a trace file; empty generates the synthetic Argos-like
	// dataset (see internal/trace).
	TracePath  string
	Uses       int
	PickAnt    int
	SNRLow     float64
	SNRHigh    float64
	Anneals    int
	Grid       OptGrid
	TargetBER  float64
	TargetFER  float64
	FrameBytes int
	Seed       int64
}

// Fig15Quick is the bench-scale preset.
func Fig15Quick() Fig15Config {
	return Fig15Config{
		Uses: 6, PickAnt: 8,
		SNRLow: 25, SNRHigh: 35,
		Anneals:   200,
		Grid:      QuickOptGrid(),
		TargetBER: 1e-6, TargetFER: 1e-4, FrameBytes: 1500,
		Seed: 15,
	}
}

// Fig15Full matches the paper's channel-use count more closely.
func Fig15Full() Fig15Config {
	cfg := Fig15Quick()
	cfg.Uses = 50
	cfg.Anneals = 2000
	cfg.Grid = DefaultOptGrid()
	return cfg
}

// Fig15 runs the trace-driven decode.
func Fig15(e *Env, cfg Fig15Config) (*Table, error) {
	src := rng.New(cfg.Seed)
	var ds *trace.Dataset
	var err error
	if cfg.TracePath != "" {
		ds, err = trace.Load(cfg.TracePath)
	} else {
		gen := trace.DefaultGeneratorConfig()
		gen.Uses = cfg.Uses
		ds, err = trace.Generate(src, gen)
	}
	if err != nil {
		return nil, err
	}
	ds.NormalizeAveragePower()

	t := &Table{
		Title:   "Figure 15: trace-driven 8x8 performance (25-35 dB)",
		Columns: []string{"mod", "metric", "median Opt", "mean Fix", "reached Fix"},
		Notes: []string{
			fmt.Sprintf("%d channel uses, %d of %d antennas sampled per use", cfg.Uses, cfg.PickAnt, ds.Antennas),
			"expected shape: 1e-6 BER / 1e-4 FER within ~10us for QPSK, amortized ~2us for BPSK (paper)",
		},
	}
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK} {
		var fixTTB, optTTB, fixTTF, optTTF []float64
		reachedB, reachedF := 0, 0
		for use := 0; use < cfg.Uses; use++ {
			h, err := ds.Sample(src, use, cfg.PickAnt)
			if err != nil {
				return nil, err
			}
			snr := cfg.SNRLow + src.Float64()*(cfg.SNRHigh-cfg.SNRLow)
			bits := src.Bits(ds.Users * mod.BitsPerSymbol())
			in, err := mimo.FromParts(src, mimo.Config{
				Mod: mod, Nt: ds.Users, Nr: cfg.PickAnt,
				Channel: channel.Fixed{H: h, Label: "argos-synth"}, SNRdB: snr,
			}, h, bits)
			if err != nil {
				return nil, err
			}
			fp := ClassFix(mod, cfg.Anneals)
			d, wall, pf, err := e.decodeDist(in, fp, true, src)
			if err != nil {
				return nil, err
			}
			ttb := d.TTB(cfg.TargetBER, wall, pf)
			ttf := d.TTF(cfg.TargetFER, cfg.FrameBytes*8, wall, pf)
			fixTTB = append(fixTTB, ttb)
			fixTTF = append(fixTTF, ttf)
			if !isInf(ttb) {
				reachedB++
			}
			if !isInf(ttf) {
				reachedF++
			}
			best, bd, err := e.bestTTB(in, cfg.Grid, cfg.Anneals, cfg.TargetBER, true, src)
			if err != nil {
				return nil, err
			}
			optTTB = append(optTTB, best)
			optTTF = append(optTTF, bd.TTF(cfg.TargetFER, cfg.FrameBytes*8, wall, pf))
		}
		t.AddRow(mod.String(), fmt.Sprintf("TTB %.0e", cfg.TargetBER),
			fmtMicros(metrics.Median(optTTB)), fmtMicros(metrics.Mean(fixTTB)),
			fmt.Sprintf("%d/%d", reachedB, cfg.Uses))
		t.AddRow(mod.String(), fmt.Sprintf("TTF %.0e (%dB)", cfg.TargetFER, cfg.FrameBytes),
			fmtMicros(metrics.Median(optTTF)), fmtMicros(metrics.Mean(fixTTF)),
			fmt.Sprintf("%d/%d", reachedF, cfg.Uses))
	}
	return t, nil
}
