package experiments

import (
	"fmt"
	"math"

	"quamax/internal/metrics"
	"quamax/internal/modulation"
)

// Fig6Config drives the anneal-time study (paper Fig. 6): TTS versus
// Ta ∈ {1, 10, 100} µs for QPSK problem sizes under both dynamic ranges,
// per-|J_F| scatter plus the best-|J_F| line.
type Fig6Config struct {
	AnnealTimes []float64
	JFs         []float64
	QPSKUsers   []int
	Instances   int
	Anneals     int
	Seed        int64
}

// Fig6Quick is the bench-scale preset.
func Fig6Quick() Fig6Config {
	return Fig6Config{
		AnnealTimes: []float64{1, 10, 100},
		JFs:         []float64{2, 4, 8},
		QPSKUsers:   []int{6, 12},
		Instances:   3,
		Anneals:     200,
		Seed:        6,
	}
}

// Fig6Full widens the statistics.
func Fig6Full() Fig6Config {
	cfg := Fig6Quick()
	cfg.JFs = []float64{1, 2, 3, 4, 6, 8, 10}
	cfg.Instances = 10
	cfg.Anneals = 1000
	return cfg
}

// Fig6 sweeps Ta × |J_F| × range for each user count and marks the best
// |J_F| per (users, range, Ta) — the paper's highlighted line.
func Fig6(e *Env, cfg Fig6Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 6: TTS vs anneal time (QPSK)",
		Columns: []string{"users", "range", "Ta(us)", "JF", "TTS p50", "best-JF line"},
		Notes: []string{
			"expected shape: improved range achieves its best TTS at Ta=1us regardless of size, with less |J_F| sensitivity",
		},
	}
	for _, users := range cfg.QPSKUsers {
		ins, err := noiseFreeInstances(modulation.QPSK, users, cfg.Instances, cfg.Seed+int64(users))
		if err != nil {
			return nil, err
		}
		for _, improved := range []bool{false, true} {
			rangeName := "standard"
			if improved {
				rangeName = "improved"
			}
			for _, ta := range cfg.AnnealTimes {
				medians := make([]float64, len(cfg.JFs))
				bestIdx, bestVal := 0, math.Inf(1)
				for i, jf := range cfg.JFs {
					fp := FixParams{JF: jf, Improved: improved, Params: paramsTa(ta, cfg.Anneals)}
					tts, err := e.ttsPerInstance(ins, fp, cfg.Seed+int64(jf*7)+int64(ta))
					if err != nil {
						return nil, err
					}
					medians[i] = metrics.Median(tts)
					if medians[i] < bestVal {
						bestVal = medians[i]
						bestIdx = i
					}
				}
				for i, jf := range cfg.JFs {
					mark := ""
					if i == bestIdx {
						mark = "*"
					}
					t.AddRow(
						fmt.Sprintf("%d", users), rangeName,
						fmt.Sprintf("%g", ta), fmt.Sprintf("%.1f", jf),
						fmtMicros(medians[i]), mark,
					)
				}
			}
		}
	}
	return t, nil
}
