package experiments

import (
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/rng"
)

// Fig10Config drives the TTB box plots (paper Fig. 10): the distribution of
// TTB at target BER 1e-6 across instances, per edge configuration, for
// QuAMax (Fix) with the Opt oracle for reference.
type Fig10Config struct {
	Quick     bool
	Instances int
	Anneals   int
	Grid      OptGrid
	TargetBER float64
	Seed      int64
}

// Fig10Quick is the bench-scale preset (paper: 20 instances).
func Fig10Quick() Fig10Config {
	return Fig10Config{
		Quick:     true,
		Instances: 4,
		Anneals:   200,
		Grid:      QuickOptGrid(),
		TargetBER: 1e-6,
		Seed:      10,
	}
}

// Fig10Full matches the paper's statistics.
func Fig10Full() Fig10Config {
	return Fig10Config{
		Instances: 20,
		Anneals:   2000,
		Grid:      DefaultOptGrid(),
		TargetBER: 1e-6,
		Seed:      10,
	}
}

// Fig10 reports the TTB five-number summaries.
func Fig10(e *Env, cfg Fig10Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 10: TTB to BER %.0e (boxes across instances)", cfg.TargetBER),
		Columns: []string{"config", "strategy", "p5", "q1", "median", "q3", "p95", "mean", "reached"},
		Notes: []string{
			"instances that cannot reach the target within the run appear in reached=k/n and inflate the mean (paper: mean TTB dominates median)",
		},
	}
	for _, ec := range edgeConfigs(cfg.Quick) {
		for _, users := range ec.users {
			ins, err := instancesForConfig(ec.mod, users, cfg.Instances, cfg.Seed)
			if err != nil {
				return nil, err
			}
			src := rng.New(cfg.Seed + int64(users))
			var fixTTB, optTTB []float64
			for _, in := range ins {
				fp := ClassFix(ec.mod, cfg.Anneals)
				d, wall, pf, err := e.decodeDist(in, fp, true, src)
				if err != nil {
					return nil, err
				}
				fixTTB = append(fixTTB, d.TTB(cfg.TargetBER, wall, pf))
				best, _, err := e.bestTTB(in, cfg.Grid, cfg.Anneals, cfg.TargetBER, true, src)
				if err != nil {
					return nil, err
				}
				optTTB = append(optTTB, best)
			}
			name := fmt.Sprintf("%v %dx%d", ec.mod, users, users)
			for _, strat := range []struct {
				label string
				ttbs  []float64
			}{{"Opt", optTTB}, {"Fix", fixTTB}} {
				b := metrics.Box(strat.ttbs)
				t.AddRow(
					name, strat.label,
					fmtMicros(b.P5), fmtMicros(b.Q1), fmtMicros(b.Median),
					fmtMicros(b.Q3), fmtMicros(b.P95), fmtMicros(b.Mean),
					fmt.Sprintf("%d/%d", b.Finite, b.Total),
				)
			}
		}
	}
	return t, nil
}
