package experiments

import (
	"fmt"
	"math"

	"quamax/internal/channel"
	"quamax/internal/detector"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Table1Config drives the sphere-decoder complexity study (paper Table 1:
// visited nodes over a 13 dB Rayleigh channel, 10,000 instances).
type Table1Config struct {
	Instances int
	SNRdB     float64
	Seed      int64
}

// Table1Quick is the bench-scale preset.
func Table1Quick() Table1Config { return Table1Config{Instances: 40, SNRdB: 13, Seed: 1} }

// Table1Full matches the paper's instance count.
func Table1Full() Table1Config { return Table1Config{Instances: 10000, SNRdB: 13, Seed: 1} }

// table1Row groups the configurations the paper places on one complexity row.
type table1Row struct {
	class      string
	paperNodes string
	bpsk       int
	qpsk       int
	qam        int
}

var table1Rows = []table1Row{
	{class: "feasible", paperNodes: "~40", bpsk: 12, qpsk: 7, qam: 4},
	{class: "borderline", paperNodes: "~270", bpsk: 21, qpsk: 11, qam: 6},
	{class: "unfeasible", paperNodes: "~1900", bpsk: 30, qpsk: 15, qam: 8},
}

// Table1 measures the mean sphere-decoder visited-node count for each of the
// paper's nine configurations.
func Table1(cfg Table1Config) (*Table, error) {
	src := rng.New(cfg.Seed)
	measure := func(mod modulation.Modulation, nt int) (float64, error) {
		var total float64
		n := 0
		for i := 0; i < cfg.Instances; i++ {
			in, err := mimo.Generate(src, mimo.Config{
				Mod: mod, Nt: nt, Nr: nt, Channel: channel.Rayleigh{}, SNRdB: cfg.SNRdB,
			})
			if err != nil {
				return 0, err
			}
			res, err := detector.SphereDecode(mod, in.H, in.Y, detector.SphereOptions{})
			if err != nil {
				continue // rare rank-deficient Rayleigh draw
			}
			total += float64(res.VisitedNodes)
			n++
		}
		if n == 0 {
			return math.NaN(), nil
		}
		return total / float64(n), nil
	}

	t := &Table{
		Title:   "Table 1: Sphere Decoder visited node count (13 dB Rayleigh)",
		Columns: []string{"class", "BPSK", "nodes", "QPSK", "nodes", "16-QAM", "nodes", "paper"},
		Notes: []string{
			fmt.Sprintf("%d instances per configuration; paper used 10,000 over 50 subcarriers", cfg.Instances),
		},
	}
	for _, row := range table1Rows {
		b, err := measure(modulation.BPSK, row.bpsk)
		if err != nil {
			return nil, err
		}
		q, err := measure(modulation.QPSK, row.qpsk)
		if err != nil {
			return nil, err
		}
		g, err := measure(modulation.QAM16, row.qam)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			row.class,
			fmt.Sprintf("%dx%d", row.bpsk, row.bpsk), fmt.Sprintf("%.0f", b),
			fmt.Sprintf("%dx%d", row.qpsk, row.qpsk), fmt.Sprintf("%.0f", q),
			fmt.Sprintf("%dx%d", row.qam, row.qam), fmt.Sprintf("%.0f", g),
			row.paperNodes,
		)
	}
	return t, nil
}
