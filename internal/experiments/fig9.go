package experiments

import (
	"fmt"
	"math"

	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// edgeConfigs are the "edge of QuAMax's performance capabilities" systems of
// Figs. 9–11: the largest sizes that embed on the DW2Q per modulation.
type edgeConfig struct {
	mod   modulation.Modulation
	users []int
}

func edgeConfigs(quick bool) []edgeConfig {
	if quick {
		return []edgeConfig{
			{modulation.BPSK, []int{36, 48, 60}},
			{modulation.QPSK, []int{12, 18}},
			{modulation.QAM16, []int{6, 9}},
		}
	}
	return []edgeConfig{
		{modulation.BPSK, []int{36, 48, 60}},
		{modulation.QPSK, []int{12, 15, 18}},
		{modulation.QAM16, []int{6, 8, 9}},
	}
}

// Fig9Config drives the TTB curves (paper Fig. 9): BER vs wall-clock time
// for the edge configurations, idealized Opt (upper panel) vs QuAMax Fix
// (lower panel).
type Fig9Config struct {
	Quick     bool
	Instances int
	Anneals   int
	NaGrid    []int
	Grid      OptGrid
	Seed      int64
}

// Fig9Quick is the bench-scale preset (paper: 20 instances).
func Fig9Quick() Fig9Config {
	return Fig9Config{
		Quick:     true,
		Instances: 3,
		Anneals:   200,
		NaGrid:    []int{1, 2, 5, 10, 20, 50, 100},
		Grid:      QuickOptGrid(),
		Seed:      9,
	}
}

// Fig9Full approaches the paper's statistics.
func Fig9Full() Fig9Config {
	return Fig9Config{
		Instances: 20,
		Anneals:   2000,
		NaGrid:    []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
		Grid:      DefaultOptGrid(),
		Seed:      9,
	}
}

// fig9Dists computes per-instance distributions for Fix and Opt (by TTB to
// BER 1e-6) with parallel amortization, returning also wall and Pf.
func fig9Dists(e *Env, mod modulation.Modulation, users int, cfg Fig9Config) (fix, opt []*metrics.Distribution, wall, pf float64, err error) {
	src := rng.New(cfg.Seed + int64(users) + int64(mod)*1000)
	ins, err := noiseFreeInstances(mod, users, cfg.Instances, cfg.Seed+int64(users)*3+int64(mod))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for _, in := range ins {
		fp := ClassFix(mod, cfg.Anneals)
		d, w, p, err := e.decodeDist(in, fp, true, src)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		wall, pf = w, p
		fix = append(fix, d)
		_, bd, err := e.bestTTB(in, cfg.Grid, cfg.Anneals, 1e-6, true, src)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		opt = append(opt, bd)
	}
	return fix, opt, wall, pf, nil
}

// Fig9 emits the BER-vs-time series for every edge configuration.
func Fig9(e *Env, cfg Fig9Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 9: Time-to-BER curves (noise-free, parallelization-amortized)",
		Columns: []string{"config", "strategy", "time", "BER p50", "BER mean", "BER p10", "BER p90"},
		Notes: []string{
			fmt.Sprintf("%d instances per configuration; Opt oracle over |J_F|×sp grid", cfg.Instances),
			"expected shape: larger users/higher modulation push curves right; mean lags median (outliers)",
		},
	}
	for _, ec := range edgeConfigs(cfg.Quick) {
		for _, users := range ec.users {
			fix, opt, wall, pf, err := fig9Dists(e, ec.mod, users, cfg)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%v %dx%d", ec.mod, users, users)
			for _, strat := range []struct {
				label string
				dists []*metrics.Distribution
			}{{"Opt", opt}, {"Fix", fix}} {
				for _, na := range cfg.NaGrid {
					bers := make([]float64, len(strat.dists))
					for i, d := range strat.dists {
						bers[i] = d.ExpectedBER(na)
					}
					t.AddRow(
						name, strat.label,
						fmtMicros(float64(na)*wall/math.Max(pf, 1)),
						fmtBER(metrics.Median(bers)),
						fmtBER(metrics.Mean(bers)),
						fmtBER(metrics.Percentile(bers, 10)),
						fmtBER(metrics.Percentile(bers, 90)),
					)
				}
			}
		}
	}
	return t, nil
}

// instancesForConfig is shared by Figs. 10/11.
func instancesForConfig(mod modulation.Modulation, users, count int, seed int64) ([]*mimo.Instance, error) {
	return noiseFreeInstances(mod, users, count, seed+int64(users)*3+int64(mod))
}
