package experiments

import (
	"fmt"

	"quamax/internal/channel"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Fig13Config drives the AWGN TTB study (paper Fig. 13): left panel sweeps
// the number of users at 20 dB SNR; right panel sweeps SNR at a fixed user
// count per modulation (48 BPSK, 14 QPSK, 4 16-QAM).
type Fig13Config struct {
	LeftSNR    float64
	LeftUsers  map[modulation.Modulation][]int
	RightUsers map[modulation.Modulation]int
	RightSNRs  []float64
	Instances  int
	Anneals    int
	Grid       OptGrid
	TargetBER  float64
	Seed       int64
}

// Fig13Quick is the bench-scale preset.
func Fig13Quick() Fig13Config {
	return Fig13Config{
		LeftSNR: 20,
		LeftUsers: map[modulation.Modulation][]int{
			modulation.BPSK:  {24, 48, 60},
			modulation.QPSK:  {6, 12, 18},
			modulation.QAM16: {3, 6, 9},
		},
		RightUsers: map[modulation.Modulation]int{
			modulation.BPSK: 48, modulation.QPSK: 14, modulation.QAM16: 4,
		},
		RightSNRs: []float64{10, 20, 30, 40},
		Instances: 3,
		Anneals:   200,
		Grid:      QuickOptGrid(),
		TargetBER: 1e-6,
		Seed:      13,
	}
}

// Fig13Full widens the sweeps.
func Fig13Full() Fig13Config {
	cfg := Fig13Quick()
	cfg.LeftUsers = map[modulation.Modulation][]int{
		modulation.BPSK:  {12, 24, 36, 48, 60},
		modulation.QPSK:  {6, 10, 14, 18},
		modulation.QAM16: {3, 6, 9},
	}
	cfg.RightSNRs = []float64{10, 15, 20, 25, 30, 40}
	cfg.Instances = 10
	cfg.Anneals = 2000
	cfg.Grid = DefaultOptGrid()
	return cfg
}

// fig13Measure returns mean-Fix and median-Opt TTB for one configuration.
func fig13Measure(e *Env, mod modulation.Modulation, users int, snr float64, cfg Fig13Config) (meanFix, medianOpt float64, err error) {
	src := rng.New(cfg.Seed + int64(users)*11 + int64(snr*3) + int64(mod)*101)
	var fixTTB, optTTB []float64
	for i := 0; i < cfg.Instances; i++ {
		in, err := mimo.Generate(src, mimo.Config{
			Mod: mod, Nt: users, Nr: users, Channel: channel.RandomPhase{}, SNRdB: snr,
		})
		if err != nil {
			return 0, 0, err
		}
		fp := ClassFix(mod, cfg.Anneals)
		d, wall, pf, err := e.decodeDist(in, fp, true, src)
		if err != nil {
			return 0, 0, err
		}
		fixTTB = append(fixTTB, d.TTB(cfg.TargetBER, wall, pf))
		best, _, err := e.bestTTB(in, cfg.Grid, cfg.Anneals, cfg.TargetBER, true, src)
		if err != nil {
			return 0, 0, err
		}
		optTTB = append(optTTB, best)
	}
	return metrics.Mean(fixTTB), metrics.Median(optTTB), nil
}

// Fig13 emits both panels.
func Fig13(e *Env, cfg Fig13Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 13: TTB to BER %.0e under AWGN", cfg.TargetBER),
		Columns: []string{"panel", "mod", "users", "SNR(dB)", "TTB mean Fix", "TTB median Opt"},
		Notes: []string{
			"expected shape: graceful TTB degradation with more users at fixed SNR; improvement with SNR at fixed users; Opt shows little SNR sensitivity",
		},
	}
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		for _, users := range cfg.LeftUsers[mod] {
			mf, mo, err := fig13Measure(e, mod, users, cfg.LeftSNR, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow("left", mod.String(), fmt.Sprintf("%d", users),
				fmt.Sprintf("%g", cfg.LeftSNR), fmtMicros(mf), fmtMicros(mo))
		}
	}
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		users := cfg.RightUsers[mod]
		for _, snr := range cfg.RightSNRs {
			mf, mo, err := fig13Measure(e, mod, users, snr, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow("right", mod.String(), fmt.Sprintf("%d", users),
				fmt.Sprintf("%g", snr), fmtMicros(mf), fmtMicros(mo))
		}
	}
	return t, nil
}
