package experiments

import (
	"fmt"

	"quamax/internal/metrics"
	"quamax/internal/rng"
)

// Fig11Config drives the Time-to-FER study (paper Fig. 11): the time to
// reach a target frame error rate for maximal internet frames down to
// TCP-ACK-sized frames.
type Fig11Config struct {
	Quick      bool
	Instances  int
	Anneals    int
	Grid       OptGrid
	FrameBytes []int
	TargetFER  float64
	Seed       int64
}

// Fig11Quick is the bench-scale preset.
func Fig11Quick() Fig11Config {
	return Fig11Config{
		Quick:      true,
		Instances:  4,
		Anneals:    200,
		Grid:       QuickOptGrid(),
		FrameBytes: []int{50, 1500},
		TargetFER:  1e-4,
		Seed:       11,
	}
}

// Fig11Full matches the paper's frame-size sweep.
func Fig11Full() Fig11Config {
	cfg := Fig11Quick()
	cfg.Quick = false
	cfg.Instances = 20
	cfg.Anneals = 2000
	cfg.Grid = DefaultOptGrid()
	cfg.FrameBytes = []int{50, 200, 1500}
	return cfg
}

// Fig11 reports median-Opt (idealized) and mean-Fix (QuAMax) Time-to-FER.
func Fig11(e *Env, cfg Fig11Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 11: Time-to-FER %.0e vs frame size", cfg.TargetFER),
		Columns: []string{"config", "frame(B)", "TTF median Opt", "TTF mean Fix", "reached Fix"},
		Notes: []string{
			"expected shape: low sensitivity to frame size (50 B vs 1500 B), tens of microseconds at the edge sizes",
		},
	}
	for _, ec := range edgeConfigs(cfg.Quick) {
		for _, users := range ec.users {
			ins, err := instancesForConfig(ec.mod, users, cfg.Instances, cfg.Seed)
			if err != nil {
				return nil, err
			}
			src := rng.New(cfg.Seed + int64(users)*7)
			// Distributions once per instance per strategy; TTF per frame size.
			type pair struct{ fix, opt *metrics.Distribution }
			dists := make([]pair, len(ins))
			var wall, pf float64
			for i, in := range ins {
				fp := ClassFix(ec.mod, cfg.Anneals)
				d, w, p, err := e.decodeDist(in, fp, true, src)
				if err != nil {
					return nil, err
				}
				wall, pf = w, p
				_, od, err := e.bestTTB(in, cfg.Grid, cfg.Anneals, 1e-6, true, src)
				if err != nil {
					return nil, err
				}
				dists[i] = pair{fix: d, opt: od}
			}
			name := fmt.Sprintf("%v %dx%d", ec.mod, users, users)
			for _, fb := range cfg.FrameBytes {
				frameBits := fb * 8
				var fixTTF, optTTF []float64
				reached := 0
				for _, d := range dists {
					f := d.fix.TTF(cfg.TargetFER, frameBits, wall, pf)
					fixTTF = append(fixTTF, f)
					if !isInf(f) {
						reached++
					}
					optTTF = append(optTTF, d.opt.TTF(cfg.TargetFER, frameBits, wall, pf))
				}
				t.AddRow(
					name, fmt.Sprintf("%d", fb),
					fmtMicros(metrics.Median(optTTF)),
					fmtMicros(metrics.Mean(fixTTF)),
					fmt.Sprintf("%d/%d", reached, len(fixTTF)),
				)
			}
		}
	}
	return t, nil
}

func isInf(f float64) bool { return f > 1e300 }
