package experiments

import (
	"fmt"

	"quamax/internal/channel"
	"quamax/internal/detector"
	"quamax/internal/embedding"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// TableFuture projects the paper's §8 outlook onto concrete numbers: clique
// footprints under the next-generation (Pegasus-degree) topology where
// chains shrink from ⌈N/4⌉+1 to N/12+1 qubits, with feasibility against a
// 5,640-qubit Advantage-class chip. It quantifies the paper's claims that
// the new architecture "will permit ML problems of size, e.g. 175×175 for
// QPSK" and dramatically raises the parallelization factor.
func TableFuture() (*Table, error) {
	const futureQubits = 5640 // Advantage-generation (Pegasus P16) inventory

	t := &Table{
		Title:   "Future-chip projection (paper §8): Chimera vs Pegasus-era clique footprints",
		Columns: []string{"config", "N", "Chimera chain", "Chimera phys", "Pegasus chain", "Pegasus phys", "fits 5640?"},
		Notes: []string{
			"Pegasus chain length N/12+1 per paper §8; feasibility vs a 5,640-qubit Advantage-class chip",
			"the paper's 175x175 QPSK projection (N=350) appears in the last row",
		},
	}
	type cfg struct {
		mod modulation.Modulation
		nt  int
	}
	for _, c := range []cfg{
		{modulation.BPSK, 60}, {modulation.BPSK, 175},
		{modulation.QPSK, 18}, {modulation.QPSK, 60}, {modulation.QPSK, 100},
		{modulation.QAM16, 9}, {modulation.QAM16, 40},
		{modulation.QPSK, 175},
	} {
		n := reduction.NumVariables(c.mod, c.nt)
		cPhys := embedding.PhysicalQubits(n)
		pPhys := embedding.PegasusPhysicalQubits(n)
		fits := "yes"
		if pPhys > futureQubits {
			fits = "NO"
		}
		t.AddRow(
			fmt.Sprintf("%v %dx%d", c.mod, c.nt, c.nt),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", embedding.ChainLength(n)),
			fmt.Sprintf("%d", cPhys),
			fmt.Sprintf("%d", embedding.PegasusChainLength(n)),
			fmt.Sprintf("%d", pPhys),
			fits,
		)
	}
	return t, nil
}

// ReverseConfig drives the reverse-annealing ablation (paper §8 future work
// [68]): forward Fix vs reverse-from-zero-forcing on square channels at
// moderate SNR, comparing TTB and final BER.
type ReverseConfig struct {
	BPSKUsers []int
	QPSKUsers []int
	SNRdB     float64
	Instances int
	Anneals   int
	TargetBER float64
	Seed      int64
}

// ReverseQuick is the bench-scale preset.
func ReverseQuick() ReverseConfig {
	return ReverseConfig{
		BPSKUsers: []int{24, 36},
		QPSKUsers: []int{12},
		SNRdB:     20,
		Instances: 4,
		Anneals:   200,
		TargetBER: 1e-6,
		Seed:      16,
	}
}

// ReverseFull widens the statistics.
func ReverseFull() ReverseConfig {
	cfg := ReverseQuick()
	cfg.BPSKUsers = []int{24, 36, 48, 60}
	cfg.QPSKUsers = []int{12, 14, 18}
	cfg.Instances = 20
	cfg.Anneals = 2000
	return cfg
}

// AblationReverse compares forward vs reverse annealing.
func AblationReverse(e *Env, cfg ReverseConfig) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: forward Fix vs reverse annealing from ZF (%g dB)", cfg.SNRdB),
		Columns: []string{"config", "fwd TTB p50", "rev TTB p50", "fwd BER@Na", "rev BER@Na", "ZF-seed BER"},
		Notes: []string{
			"reverse annealing refines the zero-forcing decision (§8 future work [68]); its candidate set includes the seed, so it lower-bounds ZF",
		},
	}
	type group struct {
		mod   modulation.Modulation
		users []int
	}
	for _, g := range []group{
		{modulation.BPSK, cfg.BPSKUsers},
		{modulation.QPSK, cfg.QPSKUsers},
	} {
		for _, users := range g.users {
			src := rng.New(cfg.Seed + int64(users)*17 + int64(g.mod))
			fp := ClassFix(g.mod, cfg.Anneals)
			fwdDec, err := e.decoder(fp.JF, fp.Improved, fp.Params, true)
			if err != nil {
				return nil, err
			}
			var fwdTTB, revTTB, fwdBER, revBER, seedBER []float64
			for i := 0; i < cfg.Instances; i++ {
				in, err := mimo.Generate(src, mimo.Config{
					Mod: g.mod, Nt: users, Nr: users, Channel: channel.RandomPhase{}, SNRdB: cfg.SNRdB,
				})
				if err != nil {
					return nil, err
				}
				fOut, err := fwdDec.DecodeInstance(in, src)
				if err != nil {
					return nil, err
				}
				fwdTTB = append(fwdTTB, fOut.Distribution.TTB(cfg.TargetBER, fOut.WallMicrosPerAnneal, fOut.Pf))
				fwdBER = append(fwdBER, fOut.Distribution.ExpectedBER(cfg.Anneals))

				rOut, err := fwdDec.DecodeInstanceReverse(in, src)
				if err != nil {
					return nil, err
				}
				revTTB = append(revTTB, rOut.Distribution.TTB(cfg.TargetBER, rOut.WallMicrosPerAnneal, rOut.Pf))
				revBER = append(revBER, rOut.Distribution.ExpectedBER(cfg.Anneals))
				seedBER = append(seedBER, zfBER(in))
			}
			t.AddRow(
				fmt.Sprintf("%v %dx%d", g.mod, users, users),
				fmtMicros(metrics.Median(fwdTTB)),
				fmtMicros(metrics.Median(revTTB)),
				fmtBER(metrics.Median(fwdBER)),
				fmtBER(metrics.Median(revBER)),
				fmtBER(metrics.Mean(seedBER)),
			)
		}
	}
	return t, nil
}

// zfBER measures the zero-forcing BER of one instance (1.0 when ZF fails).
func zfBER(in *mimo.Instance) float64 {
	spins, err := linearSeedBER(in)
	if err != nil {
		return 1
	}
	return spins
}

// linearSeedBER returns the ZF (or MMSE fallback) BER for an instance.
func linearSeedBER(in *mimo.Instance) (float64, error) {
	res, err := zfOrMMSE(in)
	if err != nil {
		return 0, err
	}
	return in.BER(res), nil
}

// zfOrMMSE returns the linear baseline's Gray bits.
func zfOrMMSE(in *mimo.Instance) ([]byte, error) {
	res, err := detector.ZeroForcing(in.Mod, in.H, in.Y)
	if err != nil {
		res, err = detector.MMSE(in.Mod, in.H, in.Y, in.NoiseVariance())
		if err != nil {
			return nil, err
		}
	}
	return res.Bits, nil
}
