package experiments

import (
	"fmt"
	"time"

	"quamax/internal/channel"
	"quamax/internal/coding"
	"quamax/internal/detector"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/modulation"
	"quamax/internal/ofdm"
	"quamax/internal/rng"
)

// CodedConfig drives the coded-frame extension experiment: instead of the
// paper's analytic FER = 1−(1−BER)^bits, frames are SIMULATED through the
// full receive chain (§5.3.3's assumption made concrete): convolutional
// code + interleaver + per-subcarrier detection with pilot-estimated CSI.
type CodedConfig struct {
	Users, Antennas int
	Subcarriers     int
	Symbols         int
	SNRs            []float64
	Frames          int
	Anneals         int
	Seed            int64
}

// CodedQuick is the bench-scale preset.
func CodedQuick() CodedConfig {
	return CodedConfig{
		Users: 4, Antennas: 4,
		Subcarriers: 6, Symbols: 2,
		SNRs:    []float64{10, 14, 18},
		Frames:  8,
		Anneals: 60,
		Seed:    17,
	}
}

// CodedFull widens the statistics.
func CodedFull() CodedConfig {
	cfg := CodedQuick()
	cfg.Subcarriers = 12
	cfg.Symbols = 4
	cfg.Frames = 50
	cfg.Anneals = 200
	return cfg
}

// Coded measures simulated coded FER for QuAMax, the sphere decoder, and
// zero-forcing front ends, plus the paper's analytic FER from the measured
// raw BER for comparison.
func Coded(e *Env, cfg CodedConfig) (*Table, error) {
	mod := modulation.QPSK
	t := &Table{
		Title:   fmt.Sprintf("Extension: simulated coded FER (QPSK %dx%d, K=7 r=1/2 + interleaver, estimated CSI)", cfg.Users, cfg.Antennas),
		Columns: []string{"SNR(dB)", "front end", "raw BER", "coded FER", "analytic FER(raw)", "post-FEC BER"},
		Notes: []string{
			fmt.Sprintf("%d frames of %d subcarriers x %d symbols; analytic column applies the paper's 1-(1-BER)^bits to the measured raw BER", cfg.Frames, cfg.Subcarriers, cfg.Symbols),
			"expected: coding turns ML-grade raw BER into clean frames while ZF's error floor defeats the code",
		},
	}

	fp := ClassFix(mod, cfg.Anneals)
	dec, err := e.decoder(fp.JF, fp.Improved, fp.Params, false)
	if err != nil {
		return nil, err
	}
	qsrc := rng.New(cfg.Seed + 999)
	quamaxDetector := func(h *linalg.Mat, y []complex128) ([]byte, error) {
		out, err := dec.Decode(mod, h, y, qsrc)
		if err != nil {
			return nil, err
		}
		return out.Bits, nil
	}
	sphereDetector := func(h *linalg.Mat, y []complex128) ([]byte, error) {
		res, err := detector.SphereDecode(mod, h, y, detector.SphereOptions{})
		if err != nil {
			return nil, err
		}
		return res.Bits, nil
	}
	zfDetector := func(h *linalg.Mat, y []complex128) ([]byte, error) {
		res, err := detector.ZeroForcing(mod, h, y)
		if err != nil {
			return nil, err
		}
		return res.Bits, nil
	}

	fronts := []struct {
		name string
		det  ofdm.Detector
	}{
		{"QuAMax", quamaxDetector},
		{"Sphere(ML)", sphereDetector},
		{"ZF", zfDetector},
	}
	for _, snr := range cfg.SNRs {
		for _, f := range fronts {
			frame := ofdm.FrameConfig{
				Mod: mod, Nt: cfg.Users, Nr: cfg.Antennas,
				Subcarriers: cfg.Subcarriers, SymbolsPerFrame: cfg.Symbols,
				SNRdB: snr,
				Delay: channel.TappedDelayLine{NumTaps: 3, Decay: 0.7},
				Code:  coding.NewWiFiCode(),
			}
			src := rng.New(cfg.Seed + int64(snr*7))
			fer, rawBER, codedBER, err := ofdm.MeasureFER(src, frame, f.det, cfg.Frames)
			if err != nil {
				return nil, err
			}
			frameBits := frame.DataBits()
			t.AddRow(
				fmt.Sprintf("%g", snr), f.name,
				fmtBER(rawBER),
				fmt.Sprintf("%.3f", fer),
				fmt.Sprintf("%.3f", metrics.FER(rawBER, frameBits)),
				fmtBER(codedBER),
			)
		}
	}
	return t, nil
}

// SAConfig drives the QA-vs-classical-SA comparison (§6: QA performance
// could match "the most highly optimized simulated annealing code").
type SAConfig struct {
	BPSKUsers []int
	SNRdB     float64
	Instances int
	Anneals   int // QPU anneals and SA restarts (matched effort)
	SASweeps  int
	Seed      int64
}

// SAQuick is the bench-scale preset.
func SAQuick() SAConfig {
	return SAConfig{
		BPSKUsers: []int{24, 36, 48},
		SNRdB:     20,
		Instances: 4,
		Anneals:   100,
		SASweeps:  128,
		Seed:      18,
	}
}

// SAFull widens the statistics.
func SAFull() SAConfig {
	cfg := SAQuick()
	cfg.BPSKUsers = []int{24, 36, 48, 60}
	cfg.Instances = 20
	cfg.Anneals = 1000
	return cfg
}

// SAComparison pits the simulated QPU against logical-space classical SA at
// matched batch sizes, reporting BER and the classical CPU wall time.
func SAComparison(e *Env, cfg SAConfig) (*Table, error) {
	mod := modulation.BPSK
	t := &Table{
		Title:   "Extension: QuAMax (QPU model) vs classical simulated annealing (logical problem, host CPU)",
		Columns: []string{"users", "QPU BER@Na", "QPU time model", "SA BER", "SA wall time"},
		Notes: []string{
			fmt.Sprintf("SA uses %d restarts x %d sweeps on the UNembedded problem; QPU runs %d anneals with the Fix parameters", cfg.Anneals, cfg.SASweeps, cfg.Anneals),
			"the QPU time model is Na*(Ta+Tp)/Pf (compute time only, per the paper's §5.2 convention); SA time is measured wall clock",
		},
	}
	for _, users := range cfg.BPSKUsers {
		src := rng.New(cfg.Seed + int64(users)*23)
		fp := ClassFix(mod, cfg.Anneals)
		var qpuBER, saBER []float64
		var qpuTime float64
		var saElapsed time.Duration
		sa := detector.NewClassicalSA(cfg.SASweeps, cfg.Anneals)
		for i := 0; i < cfg.Instances; i++ {
			in, err := genSquareInstance(src, mod, users, cfg.SNRdB)
			if err != nil {
				return nil, err
			}
			dist, wall, pf, err := e.decodeDist(in, fp, true, src)
			if err != nil {
				return nil, err
			}
			qpuBER = append(qpuBER, dist.ExpectedBER(cfg.Anneals))
			qpuTime = float64(cfg.Anneals) * wall / pf

			start := time.Now()
			res, err := sa.Decode(mod, in.H, in.Y, src)
			saElapsed += time.Since(start)
			if err != nil {
				return nil, err
			}
			saBER = append(saBER, in.BER(res.Bits))
		}
		t.AddRow(
			fmt.Sprintf("%d", users),
			fmtBER(metrics.Median(qpuBER)),
			fmtMicros(qpuTime),
			fmtBER(metrics.Median(saBER)),
			fmtMicros(float64(saElapsed.Microseconds())/float64(cfg.Instances)),
		)
	}
	return t, nil
}
