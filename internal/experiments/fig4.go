package experiments

import (
	"fmt"

	"quamax/internal/rng"

	"quamax/internal/modulation"
)

// Fig4Config drives the empirical-QA-results detail (paper Fig. 4): six
// 36-logical-qubit decoding problems — 36×36 BPSK, 18×18 QPSK, 9×9 16-QAM,
// two channel uses each — showing, per energy rank, the relative energy gap
// ΔE, the occurrence frequency, and the rank's bit errors.
type Fig4Config struct {
	Anneals  int
	TopRanks int // ranks to print per panel
	Seed     int64
}

// Fig4Quick is the bench-scale preset (the paper post-processes 50,000
// anneals per panel).
func Fig4Quick() Fig4Config { return Fig4Config{Anneals: 400, TopRanks: 5, Seed: 4} }

// Fig4Full approaches the paper's statistics.
func Fig4Full() Fig4Config { return Fig4Config{Anneals: 20000, TopRanks: 10, Seed: 4} }

// Fig4 runs the six panels.
func Fig4(e *Env, cfg Fig4Config) (*Table, error) {
	type panel struct {
		mod   modulation.Modulation
		users int
		use   int
	}
	var panels []panel
	for _, p := range []struct {
		mod   modulation.Modulation
		users int
	}{
		{modulation.BPSK, 36}, {modulation.QPSK, 18}, {modulation.QAM16, 9},
	} {
		for use := 0; use < 2; use++ {
			panels = append(panels, panel{p.mod, p.users, use})
		}
	}

	t := &Table{
		Title:   "Figure 4: Ising energy rank vs occurrence vs bit errors (36 logical qubits, noise-free)",
		Columns: []string{"panel", "P0", "rank", "dE%", "freq", "bit errs"},
		Notes: []string{
			fmt.Sprintf("%d anneals per panel at the Fix operating point", cfg.Anneals),
			"expected shape: P0 decreases left to right (BPSK 36 > QPSK 18 > 16-QAM 9)",
		},
	}
	fix := DefaultFix(cfg.Anneals)
	src := rng.New(cfg.Seed)
	for _, p := range panels {
		ins, err := noiseFreeInstances(p.mod, p.users, p.use+1, cfg.Seed+int64(p.use)*100+int64(p.mod))
		if err != nil {
			return nil, err
		}
		in := ins[p.use] // distinct channel uses per panel
		dist, _, _, err := e.decodeDist(in, fix, false, src)
		if err != nil {
			return nil, err
		}
		p0 := dist.GroundProbability(0, groundTol)
		name := fmt.Sprintf("%v %dx%d use%d", p.mod, p.users, p.users, p.use+1)
		minE := dist.Solutions[0].Energy
		for r, s := range dist.Solutions {
			if r >= cfg.TopRanks {
				break
			}
			dE := 0.0
			if minE > groundTol {
				dE = (s.Energy - minE) / minE * 100
			} else if r > 0 {
				dE = s.Energy // ground is 0: report absolute energy
			}
			t.AddRow(
				name,
				fmt.Sprintf("%.3f", p0),
				fmt.Sprintf("%d", r+1),
				fmt.Sprintf("%.2f", dE),
				fmt.Sprintf("%.4f", float64(s.Count)/float64(dist.Total)),
				fmt.Sprintf("%d", s.BitErrors),
			)
		}
	}
	return t, nil
}
