package experiments

import (
	"strings"
	"testing"

	"quamax/internal/modulation"
)

// Tiny presets so the whole suite smoke-tests in seconds; the scientific
// shape checks live in the bench harness.

func tinyEnv() *Env { return NewEnv() }

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bee"}, Notes: []string{"n"}}
	tab.AddRow("1", "2,3")
	s := tab.String()
	for _, want := range []string{"## T", "a", "bee", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,bee") || !strings.Contains(csv, "1,2;3") {
		t.Fatalf("CSV wrong:\n%s", csv)
	}
}

func TestTable1Smoke(t *testing.T) {
	cfg := Table1Quick()
	cfg.Instances = 3
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	// Spot-check paper entries: 10x10 BPSK = 10 (40); 60x60 64-QAM infeasible.
	if !strings.Contains(s, "10 (40)") {
		t.Fatalf("missing 10x10 BPSK footprint:\n%s", s)
	}
	if !strings.Contains(tab.Rows[3][4], "INFEASIBLE") {
		t.Fatalf("60x60 64-QAM should be infeasible: %v", tab.Rows[3])
	}
	// 60x60 BPSK (960 qubits) feasible — the paper's headline size.
	if strings.Contains(tab.Rows[3][1], "INFEASIBLE") {
		t.Fatalf("60x60 BPSK should be feasible: %v", tab.Rows[3])
	}
	// 20x20 16-QAM (80 logical, M=20) infeasible.
	if !strings.Contains(tab.Rows[1][3], "INFEASIBLE") {
		t.Fatalf("20x20 16-QAM should be infeasible: %v", tab.Rows[1])
	}
}

func TestFig4Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig4Quick()
	cfg.Anneals = 60
	cfg.TopRanks = 2
	tab, err := Fig4(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig5Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig5Quick()
	cfg.JFs = []float64{2, 8}
	cfg.BPSKUsers = []int{8}
	cfg.QPSKUsers = []int{4}
	cfg.Instances = 2
	cfg.Anneals = 50
	tab, err := Fig5(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 mods × 1 size × 2 ranges × 2 JFs.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig6Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig6Quick()
	cfg.AnnealTimes = []float64{1, 10}
	cfg.JFs = []float64{4}
	cfg.QPSKUsers = []int{4}
	cfg.Instances = 2
	cfg.Anneals = 40
	tab, err := Fig6(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 1 size × 2 ranges × 2 Ta × 1 JF
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig7Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig7Quick()
	cfg.PauseTimes = []float64{1}
	cfg.PausePositions = []float64{0.35}
	cfg.JFs = []float64{4}
	cfg.Users = 8
	cfg.Instances = 2
	cfg.Anneals = 40
	tab, err := Fig7(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // ICE on + off
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !e.Machine.ICE.Enabled {
		t.Fatal("Fig7 must restore the ICE setting")
	}
}

func TestFig8Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig8Quick()
	cfg.Users = 6
	cfg.Instances = 2
	cfg.Anneals = 50
	cfg.NaGrid = []int{1, 10}
	cfg.OptJFs = []float64{4}
	cfg.OptSps = []float64{0.35}
	tab, err := Fig8(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 4 strategies × 2 Na
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig12Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig12Quick()
	cfg.Users = 6
	cfg.SNRs = []float64{10, 30}
	cfg.Anneals = 60
	cfg.Ranks = 2
	tab, err := Fig12(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig14Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig14Quick()
	cfg.BPSKUsers = []int{12}
	cfg.QPSKUsers = []int{6}
	cfg.Instances = 2
	cfg.Anneals = 50
	tab, err := Fig14(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig15Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig15Quick()
	cfg.Uses = 2
	cfg.Anneals = 50
	cfg.Grid = OptGrid{JFs: []float64{4}, PausePositions: []float64{0.35}}
	tab, err := Fig15(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 mods × {TTB, TTF}
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestEdgeConfigsCoverPaperSizes(t *testing.T) {
	full := edgeConfigs(false)
	want := map[modulation.Modulation]int{
		modulation.BPSK: 60, modulation.QPSK: 18, modulation.QAM16: 9,
	}
	for _, ec := range full {
		max := 0
		for _, u := range ec.users {
			if u > max {
				max = u
			}
		}
		if max != want[ec.mod] {
			t.Errorf("%v: max users %d, want %d", ec.mod, max, want[ec.mod])
		}
	}
}

func TestFig9Fig10Fig11Smoke(t *testing.T) {
	e := tinyEnv()
	cfg9 := Fig9Quick()
	cfg9.Instances = 2
	cfg9.Anneals = 40
	cfg9.NaGrid = []int{1, 10}
	cfg9.Grid = OptGrid{JFs: []float64{4}, PausePositions: []float64{0.35}}
	tab, err := Fig9(e, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig9: no rows")
	}

	cfg10 := Fig10Quick()
	cfg10.Instances = 2
	cfg10.Anneals = 40
	cfg10.Grid = OptGrid{JFs: []float64{4}, PausePositions: []float64{0.35}}
	tab, err = Fig10(e, cfg10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig10: no rows")
	}

	cfg11 := Fig11Quick()
	cfg11.Instances = 2
	cfg11.Anneals = 40
	cfg11.Grid = OptGrid{JFs: []float64{4}, PausePositions: []float64{0.35}}
	cfg11.FrameBytes = []int{50}
	tab, err = Fig11(e, cfg11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig11: no rows")
	}
}

func TestFig13Smoke(t *testing.T) {
	e := tinyEnv()
	cfg := Fig13Quick()
	cfg.LeftUsers = map[modulation.Modulation][]int{
		modulation.BPSK:  {8},
		modulation.QPSK:  {4},
		modulation.QAM16: {2},
	}
	cfg.RightUsers = map[modulation.Modulation]int{
		modulation.BPSK: 8, modulation.QPSK: 4, modulation.QAM16: 2,
	}
	cfg.RightSNRs = []float64{20}
	cfg.Instances = 1
	cfg.Anneals = 40
	cfg.Grid = OptGrid{JFs: []float64{4}, PausePositions: []float64{0.35}}
	tab, err := Fig13(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 left + 3 right
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTableFutureProjection(t *testing.T) {
	tab, err := TableFuture()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The 60x60 BPSK footprint must shrink dramatically under Pegasus chains.
	if tab.Rows[0][3] != "960" || tab.Rows[0][5] != "360" {
		t.Fatalf("unexpected 60x60 BPSK projection row: %v", tab.Rows[0])
	}
}

func TestAblationReverseSmoke(t *testing.T) {
	e := tinyEnv()
	cfg := ReverseQuick()
	cfg.BPSKUsers = []int{8}
	cfg.QPSKUsers = []int{4}
	cfg.Instances = 2
	cfg.Anneals = 50
	tab, err := AblationReverse(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestCodedSmoke(t *testing.T) {
	e := tinyEnv()
	cfg := CodedQuick()
	cfg.Subcarriers = 4
	cfg.Symbols = 2
	cfg.SNRs = []float64{14}
	cfg.Frames = 2
	cfg.Anneals = 30
	tab, err := Coded(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // 1 SNR × 3 front ends
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSAComparisonSmoke(t *testing.T) {
	e := tinyEnv()
	cfg := SAQuick()
	cfg.BPSKUsers = []int{8}
	cfg.Instances = 2
	cfg.Anneals = 30
	cfg.SASweeps = 50
	tab, err := SAComparison(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestQAOAExperimentSmoke(t *testing.T) {
	e := tinyEnv()
	cfg := QAOAQuick()
	cfg.Instances = 2
	cfg.Shots = 16
	cfg.GridResolution = 8
	tab, err := QAOAExperiment(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
