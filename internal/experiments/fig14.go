package experiments

import (
	"fmt"
	"time"

	"quamax/internal/channel"
	"quamax/internal/detector"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Fig14Config drives the zero-forcing comparison (paper Fig. 14): at poor
// SNR and Nt = Nr, measure the zero-forcing decoder's BER and processing
// time, then the time QuAMax needs to reach the same (or better) BER.
//
// The paper infers ZF processing time from BigStation's single-core
// numbers; we measure our own zero-forcing implementation's wall time on
// the host CPU (same role: a concrete classical baseline) and report both
// the measurement and the BER floor.
type Fig14Config struct {
	BPSKUsers []int
	QPSKUsers []int
	SNRdB     float64
	Instances int
	Anneals   int
	Seed      int64
}

// Fig14Quick is the bench-scale preset.
func Fig14Quick() Fig14Config {
	return Fig14Config{
		BPSKUsers: []int{36, 48, 60},
		QPSKUsers: []int{12, 14, 16},
		SNRdB:     10,
		Instances: 6,
		Anneals:   200,
		Seed:      14,
	}
}

// Fig14Full widens the statistics.
func Fig14Full() Fig14Config {
	cfg := Fig14Quick()
	cfg.Instances = 50
	cfg.Anneals = 2000
	return cfg
}

// Fig14 compares QuAMax TTB against the zero-forcing baseline.
func Fig14(e *Env, cfg Fig14Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 14: QuAMax vs zero-forcing at %g dB SNR (Nt=Nr)", cfg.SNRdB),
		Columns: []string{"mod", "users", "ZF BER", "ZF time", "QuAMax TTB to ZF BER", "speedup"},
		Notes: []string{
			"ZF time is the measured wall time of this repository's zero-forcing (pseudo-inverse + slice) per channel use",
			"expected shape: ZF hits a BER floor at Nt=Nr; QuAMax reaches that BER 10-1000x faster (paper)",
		},
	}
	type group struct {
		mod   modulation.Modulation
		users []int
	}
	for _, g := range []group{
		{modulation.BPSK, cfg.BPSKUsers},
		{modulation.QPSK, cfg.QPSKUsers},
	} {
		for _, users := range g.users {
			src := rng.New(cfg.Seed + int64(users)*13 + int64(g.mod))
			var (
				zfErrs, zfBits int
				zfElapsed      time.Duration
				ttbs           []float64
			)
			for i := 0; i < cfg.Instances; i++ {
				in, err := mimo.Generate(src, mimo.Config{
					Mod: g.mod, Nt: users, Nr: users, Channel: channel.RandomPhase{}, SNRdB: cfg.SNRdB,
				})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				zf, err := detector.ZeroForcing(g.mod, in.H, in.Y)
				zfElapsed += time.Since(start)
				if err != nil {
					continue // singular draw: skip (rare for random phase)
				}
				zfErrs += in.BitErrors(zf.Bits)
				zfBits += len(in.TxBits)

				fp := DefaultFix(cfg.Anneals)
				d, wall, pf, err := e.decodeDist(in, fp, true, src)
				if err != nil {
					return nil, err
				}
				// Time for QuAMax to reach this instance's ZF BER (at least
				// one anneal).
				target := in.BER(zf.Bits)
				ttbs = append(ttbs, d.TTB(target, wall, pf))
			}
			if zfBits == 0 {
				continue
			}
			zfBER := float64(zfErrs) / float64(zfBits)
			zfMicros := float64(zfElapsed.Microseconds()) / float64(cfg.Instances)
			qm := metrics.Median(ttbs)
			speedup := zfMicros / qm
			t.AddRow(
				g.mod.String(), fmt.Sprintf("%d", users),
				fmtBER(zfBER), fmtMicros(zfMicros), fmtMicros(qm),
				fmt.Sprintf("%.0fx", speedup),
			)
		}
	}
	return t, nil
}
