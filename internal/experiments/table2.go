package experiments

import (
	"fmt"

	"quamax/internal/chimera"
	"quamax/internal/embedding"
	"quamax/internal/modulation"
	"quamax/internal/reduction"
)

// Table2 reproduces the qubit-footprint table (paper Table 2): logical and
// physical qubit counts for Nt×Nt systems across modulations, with
// feasibility against the 2,031-working-qubit, C16 DW2Q. A configuration is
// feasible when its clique fits the 16-cell grid (⌈N/4⌉ ≤ 16) and its
// footprint fits the working qubits — the paper's bold font marks the
// complement.
func Table2() (*Table, error) {
	configs := []int{10, 20, 40, 60}
	mods := []modulation.Modulation{modulation.BPSK, modulation.QPSK, modulation.QAM16, modulation.QAM64}

	t := &Table{
		Title:   "Table 2: logical (physical) qubits per configuration",
		Columns: []string{"config"},
		Notes: []string{
			"INFEASIBLE marks configurations exceeding the DW2Q (2,031 working qubits, C16 grid) — the paper's bold entries",
		},
	}
	for _, m := range mods {
		t.Columns = append(t.Columns, m.String())
	}
	for _, nt := range configs {
		row := []string{fmt.Sprintf("%dx%d", nt, nt)}
		for _, m := range mods {
			n := reduction.NumVariables(m, nt)
			phys := embedding.PhysicalQubits(n)
			feasible := (n+3)/4 <= chimera.DW2QGridSize && phys <= chimera.DW2QWorkingQubits
			cell := fmt.Sprintf("%d (%d)", n, phys)
			if !feasible {
				cell += " INFEASIBLE"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}
