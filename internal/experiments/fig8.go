package experiments

import (
	"fmt"
	"math"

	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Fig8Config drives the pause-vs-no-pause BER study (paper Fig. 8): median
// BER of 18×18 QPSK as a function of the number of anneals and of wall-clock
// time, for the four strategies {pause, no pause} × {Fix, Opt}.
type Fig8Config struct {
	Users     int
	Instances int
	Anneals   int
	NaGrid    []int
	OptJFs    []float64
	OptSps    []float64
	Seed      int64
}

// Fig8Quick is the bench-scale preset (paper: 20 instances).
func Fig8Quick() Fig8Config {
	return Fig8Config{
		Users:     18,
		Instances: 4,
		Anneals:   300,
		NaGrid:    []int{1, 2, 5, 10, 20, 50, 100},
		OptJFs:    []float64{2, 4, 8},
		OptSps:    []float64{0.25, 0.45},
		Seed:      8,
	}
}

// Fig8Full matches the paper's instance count.
func Fig8Full() Fig8Config {
	cfg := Fig8Quick()
	cfg.Instances = 20
	cfg.Anneals = 2000
	cfg.NaGrid = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	cfg.OptJFs = []float64{1, 2, 4, 6, 8, 10}
	cfg.OptSps = []float64{0.15, 0.25, 0.35, 0.45, 0.55}
	return cfg
}

// fig8Strategy is one plotted line.
type fig8Strategy struct {
	name  string
	pause bool
	opt   bool
}

// Fig8 reports median expected BER (Eq. 9) against Na and against time.
func Fig8(e *Env, cfg Fig8Config) (*Table, error) {
	strategies := []fig8Strategy{
		{"no-pause Fix", false, false},
		{"no-pause Opt", false, true},
		{"pause Fix", true, false},
		{"pause Opt", true, true},
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 8: BER vs anneals and time (%dx%d QPSK, median of %d instances)", cfg.Users, cfg.Users, cfg.Instances),
		Columns: []string{"strategy", "Na", "time", "BER p50", "BER p15", "BER p85"},
		Notes: []string{
			"expected shape: the pausing strategies dominate at equal TIME despite each anneal costing 2x (paper §5.3.2)",
		},
	}
	src := rng.New(cfg.Seed)
	ins := make([]*mimo.Instance, 0, cfg.Instances)
	list, err := noiseFreeInstances(modulation.QPSK, cfg.Users, cfg.Instances, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ins = append(ins, list...)

	for _, s := range strategies {
		// Per-instance distribution under this strategy.
		dists := make([]*metrics.Distribution, len(ins))
		wall := 1.0
		if s.pause {
			wall = 2.0
		}
		for i, in := range ins {
			if !s.opt {
				fp := DefaultFix(cfg.Anneals)
				if !s.pause {
					fp.Params = paramsTa(1, cfg.Anneals)
				}
				d, _, _, err := e.decodeDist(in, fp, false, src)
				if err != nil {
					return nil, err
				}
				dists[i] = d
				continue
			}
			// Opt oracle: best combination per instance by required anneals
			// to reach BER 1e-6.
			bestNa := math.Inf(1)
			for _, jf := range cfg.OptJFs {
				sps := cfg.OptSps
				if !s.pause {
					sps = []float64{0.35} // sp unused without pause
				}
				for _, sp := range sps {
					fp := FixParams{JF: jf, Improved: true}
					if s.pause {
						fp.Params = paramsPause(1, 1, sp, cfg.Anneals)
					} else {
						fp.Params = paramsTa(1, cfg.Anneals)
					}
					d, _, _, err := e.decodeDist(in, fp, false, src)
					if err != nil {
						return nil, err
					}
					na, ok := d.RequiredAnneals(1e-6)
					score := math.Inf(1)
					if ok {
						score = float64(na)
					}
					if dists[i] == nil || score < bestNa {
						bestNa = score
						dists[i] = d
					}
				}
			}
		}
		for _, na := range cfg.NaGrid {
			bers := make([]float64, len(dists))
			for i, d := range dists {
				bers[i] = d.ExpectedBER(na)
			}
			t.AddRow(
				s.name,
				fmt.Sprintf("%d", na),
				fmtMicros(float64(na)*wall),
				fmtBER(metrics.Median(bers)),
				fmtBER(metrics.Percentile(bers, 15)),
				fmtBER(metrics.Percentile(bers, 85)),
			)
		}
	}
	return t, nil
}
