package linalg

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"quamax/internal/rng"
)

func randMat(src *rng.Source, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = src.ComplexNorm()
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	src := rng.New(1)
	a := randMat(src, 4, 4)
	got := Mul(a, Identity(4))
	if MaxAbsDiff(a, got) > 1e-12 {
		t.Fatalf("A·I != A, diff %g", MaxAbsDiff(a, got))
	}
	got = Mul(Identity(4), a)
	if MaxAbsDiff(a, got) > 1e-12 {
		t.Fatalf("I·A != A, diff %g", MaxAbsDiff(a, got))
	}
}

func TestMulKnown(t *testing.T) {
	a := MatFromRows([][]complex128{{1, 2}, {3, 4}})
	b := MatFromRows([][]complex128{{5, 6}, {7, 8}})
	want := MatFromRows([][]complex128{{19, 22}, {43, 50}})
	if got := Mul(a, b); MaxAbsDiff(want, got) > 1e-12 {
		t.Fatalf("Mul known product wrong:\n%v", got)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	src := rng.New(2)
	a := randMat(src, 5, 3)
	x := make([]complex128, 3)
	for i := range x {
		x[i] = src.ComplexNorm()
	}
	xm := NewMat(3, 1)
	copy(xm.Data, x)
	want := Mul(a, xm)
	got := MulVec(a, x)
	for i := range got {
		if cmplx.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestGramIsHermitianAndMatchesNaive(t *testing.T) {
	src := rng.New(3)
	a := randMat(src, 6, 4)
	g := Gram(a)
	naive := Mul(ConjTranspose(a), a)
	if MaxAbsDiff(g, naive) > 1e-10 {
		t.Fatalf("Gram != AᴴA, diff %g", MaxAbsDiff(g, naive))
	}
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if cmplx.Abs(g.At(i, j)-cmplx.Conj(g.At(j, i))) > 1e-10 {
				t.Fatalf("Gram not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}

func TestConjMulVecMatchesNaive(t *testing.T) {
	src := rng.New(4)
	a := randMat(src, 5, 3)
	y := make([]complex128, 5)
	for i := range y {
		y[i] = src.ComplexNorm()
	}
	want := MulVec(ConjTranspose(a), y)
	got := ConjMulVec(a, y)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ConjMulVec mismatch at %d", i)
		}
	}
}

func TestSolveRoundTrip(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(8)
		a := randMat(src, n, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = src.ComplexNorm()
		}
		b := MulVec(a, x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("trial %d: solve error %g at %d", trial, cmplx.Abs(got[i]-x[i]), i)
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := MatFromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Solve(a, []complex128{1, 1}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	src := rng.New(6)
	a := randMat(src, 4, 4)
	aCopy := a.Clone()
	b := []complex128{1, 2, 3, 4}
	bCopy := append([]complex128(nil), b...)
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(a, aCopy) != 0 {
		t.Fatal("Solve mutated a")
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("Solve mutated b")
		}
	}
}

func TestInverse(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		n := 1 + src.Intn(6)
		a := randMat(src, n, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := MaxAbsDiff(Mul(a, inv), Identity(n)); d > 1e-8 {
			t.Fatalf("trial %d: A·A⁻¹ != I, diff %g", trial, d)
		}
	}
}

func TestPseudoInverseLeftInverse(t *testing.T) {
	src := rng.New(8)
	a := randMat(src, 8, 4)
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(pinv, a), Identity(4)); d > 1e-8 {
		t.Fatalf("pinv·A != I, diff %g", d)
	}
}

func TestRightPseudoInverseRightInverse(t *testing.T) {
	src := rng.New(81)
	a := randMat(src, 4, 8)
	pinv, err := RightPseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(a, pinv), Identity(4)); d > 1e-8 {
		t.Fatalf("A·pinv != I, diff %g", d)
	}
	if _, err := RightPseudoInverse(NewMat(2, 3)); err == nil {
		t.Fatal("rank-deficient matrix accepted")
	}
}

func TestQRProperties(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		rows := 2 + src.Intn(8)
		cols := 1 + src.Intn(rows)
		a := randMat(src, rows, cols)
		f := QRDecompose(a)
		// Reconstruction.
		if d := MaxAbsDiff(Mul(f.Q, f.R), a); d > 1e-9 {
			t.Fatalf("trial %d: QR != A, diff %g", trial, d)
		}
		// Orthonormal columns.
		if d := MaxAbsDiff(Gram(f.Q), Identity(cols)); d > 1e-9 {
			t.Fatalf("trial %d: QᴴQ != I, diff %g", trial, d)
		}
		// Upper-triangular with real non-negative diagonal.
		for i := 0; i < cols; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(f.R.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: R not upper triangular at (%d,%d)", trial, i, j)
				}
			}
			d := f.R.At(i, i)
			if math.Abs(imag(d)) > 1e-10 || real(d) < -1e-10 {
				t.Fatalf("trial %d: R diagonal not real non-negative: %v", trial, d)
			}
		}
	}
}

func TestQRRotatePreservesResidual(t *testing.T) {
	// ‖y − Hv‖² == ‖ȳ − Rv‖² + const for thin QR when y ∈ range(H)+noise:
	// the sphere decoder relies on argmin equality; check that for square H
	// the norms match exactly.
	src := rng.New(10)
	h := randMat(src, 4, 4)
	v := []complex128{1, -1, 1i, -1i}
	y := MulVec(h, v)
	for i := range y {
		y[i] += src.ComplexNorm() * 0.1
	}
	f := QRDecompose(h)
	ybar := f.RotateReceived(y)
	lhs := Norm2(VecSub(y, MulVec(h, v)))
	rhs := Norm2(VecSub(ybar, MulVec(f.R, v)))
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("residual mismatch: %g vs %g", lhs, rhs)
	}
}

func TestRealDecomposition(t *testing.T) {
	src := rng.New(11)
	h := randMat(src, 3, 2)
	v := []complex128{complex(1, -1), complex(-3, 2)}
	y := MulVec(h, v)

	hr := RealDecomposition(h)
	vr := []complex128{1, -3, -1, 2} // [Re v; Im v]
	yr := MulVec(hr, vr)
	want := StackReal(y)
	for i := range yr {
		if cmplx.Abs(yr[i]-want[i]) > 1e-10 {
			t.Fatalf("RVD mismatch at %d: %v vs %v", i, yr[i], want[i])
		}
	}

	hri := RealDecompositionI(h)
	vReal := []complex128{1, -3}
	yri := MulVec(hri, vReal)
	wantI := StackReal(MulVec(h, vReal))
	for i := range yri {
		if cmplx.Abs(yri[i]-wantI[i]) > 1e-10 {
			t.Fatalf("RVD-I mismatch at %d", i)
		}
	}
}

func TestCond2Estimate(t *testing.T) {
	// Diagonal matrix with known condition number.
	a := NewMat(3, 3)
	a.Set(0, 0, 10)
	a.Set(1, 1, 2)
	a.Set(2, 2, 1)
	got := Cond2Estimate(a, 100)
	if math.Abs(got-10) > 1e-6 {
		t.Fatalf("cond estimate = %g, want 10", got)
	}
	sing := MatFromRows([][]complex128{{1, 1}, {1, 1}})
	if !math.IsInf(Cond2Estimate(sing, 50), 1) {
		t.Fatal("expected +Inf condition for singular matrix")
	}
}

// Property: (A·B)ᴴ == Bᴴ·Aᴴ for random small matrices.
func TestConjTransposeProductProperty(t *testing.T) {
	src := rng.New(12)
	f := func(seed int64) bool {
		s := rng.New(seed)
		a := randMat(s, 3, 4)
		b := randMat(s, 4, 2)
		lhs := ConjTranspose(Mul(a, b))
		rhs := Mul(ConjTranspose(b), ConjTranspose(a))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormHelpers(t *testing.T) {
	x := []complex128{3, 4i}
	if Norm2(x) != 25 {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if Norm(x) != 5 {
		t.Fatalf("Norm = %g", Norm(x))
	}
}
