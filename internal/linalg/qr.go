package linalg

import (
	"math"
	"math/cmplx"
)

// QR holds the thin QR factorization a = Q·R with Q (rows×cols) having
// orthonormal columns and R (cols×cols) upper triangular with real,
// non-negative diagonal. It is the preprocessing step of the sphere decoder
// (paper §2.1: vˆ = argmin ‖ȳ − Rv‖², ȳ = Q*y).
type QR struct {
	Q *Mat
	R *Mat
}

// QRDecompose computes the thin QR factorization by Householder reflections.
// Requires rows ≥ cols.
func QRDecompose(a *Mat) *QR {
	rows, cols := a.Rows, a.Cols
	if rows < cols {
		panic("linalg: QRDecompose requires rows >= cols")
	}
	r := a.Clone()
	// Accumulate Q implicitly: start from identity (rows×rows), apply the
	// same reflections, then keep the first cols columns.
	qFull := Identity(rows)

	v := make([]complex128, rows)
	for k := 0; k < cols; k++ {
		// Build Householder vector for column k below the diagonal.
		var normx float64
		for i := k; i < rows; i++ {
			normx += absSq(r.At(i, k))
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			continue
		}
		akk := r.At(k, k)
		// alpha = -e^{i·arg(akk)}·‖x‖ makes the transformed diagonal
		// entry real and positive after negation.
		phase := complex(1, 0)
		if akk != 0 {
			phase = akk / complex(cmplx.Abs(akk), 0)
		}
		alpha := -phase * complex(normx, 0)

		var vnorm2 float64
		for i := k; i < rows; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= alpha
		for i := k; i < rows; i++ {
			vnorm2 += absSq(v[i])
		}
		if vnorm2 == 0 {
			continue
		}
		beta := complex(2/vnorm2, 0)

		// r = (I − β v vᴴ) r for columns k..cols-1.
		for j := k; j < cols; j++ {
			var dot complex128
			for i := k; i < rows; i++ {
				dot += cmplx.Conj(v[i]) * r.At(i, j)
			}
			dot *= beta
			for i := k; i < rows; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i])
			}
		}
		// qFull = qFull (I − β v vᴴ): apply reflection on the right.
		for i := 0; i < rows; i++ {
			var dot complex128
			for l := k; l < rows; l++ {
				dot += qFull.At(i, l) * v[l]
			}
			dot *= beta
			for l := k; l < rows; l++ {
				qFull.Set(i, l, qFull.At(i, l)-dot*cmplx.Conj(v[l]))
			}
		}
	}

	// Force R's diagonal real-positive (Householder above already arranges
	// sign; normalize residual phase defensively) and zero the subdiagonal.
	for k := 0; k < cols; k++ {
		d := r.At(k, k)
		if imag(d) != 0 || real(d) < 0 {
			if cmplx.Abs(d) == 0 {
				continue
			}
			ph := d / complex(cmplx.Abs(d), 0)
			// Scale row k of R by conj(phase) and column k of Q by phase.
			for j := k; j < cols; j++ {
				r.Set(k, j, r.At(k, j)*cmplx.Conj(ph))
			}
			for i := 0; i < rows; i++ {
				qFull.Set(i, k, qFull.At(i, k)*ph)
			}
		}
		for i := k + 1; i < rows; i++ {
			r.Set(i, k, 0)
		}
	}

	// Thin factors.
	q := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		copy(q.Data[i*cols:(i+1)*cols], qFull.Data[i*rows:i*rows+cols])
	}
	rThin := NewMat(cols, cols)
	for i := 0; i < cols; i++ {
		copy(rThin.Data[i*cols:(i+1)*cols], r.Data[i*cols:i*cols+cols])
	}
	return &QR{Q: q, R: rThin}
}

func absSq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// RotateReceived returns ȳ = Qᴴ·y, the rotated receive vector fed to the
// sphere decoder's triangular search.
func (f *QR) RotateReceived(y []complex128) []complex128 {
	return ConjMulVec(f.Q, y)
}

// Cond2Estimate estimates the 2-norm condition number of a via power
// iteration on aᴴa (largest singular value) and inverse iteration (smallest).
// iters controls the iteration count; 50 is plenty for the matrix sizes here.
// Returns +Inf for singular matrices.
func Cond2Estimate(a *Mat, iters int) float64 {
	g := Gram(a)
	n := g.Rows
	if n == 0 {
		return 0
	}
	// Largest eigenvalue of G by power iteration.
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1/math.Sqrt(float64(n)), 0)
	}
	var lamMax float64
	for it := 0; it < iters; it++ {
		y := MulVec(g, x)
		nrm := Norm(y)
		if nrm == 0 {
			return math.Inf(1)
		}
		for i := range y {
			y[i] /= complex(nrm, 0)
		}
		x = y
		lamMax = nrm
	}
	// Smallest eigenvalue by inverse power iteration.
	for i := range x {
		x[i] = complex(1/math.Sqrt(float64(n)), 0)
	}
	var lamMinInv float64
	for it := 0; it < iters; it++ {
		y, err := Solve(g, x)
		if err != nil {
			return math.Inf(1)
		}
		nrm := Norm(y)
		if nrm == 0 {
			return math.Inf(1)
		}
		for i := range y {
			y[i] /= complex(nrm, 0)
		}
		x = y
		lamMinInv = nrm
	}
	if lamMinInv == 0 {
		return math.Inf(1)
	}
	// cond2(a) = sqrt(lamMax/lamMin) of the Gram matrix.
	return math.Sqrt(lamMax * lamMinInv)
}

// RealDecomposition converts the complex system y = H v + n into the
// equivalent real-valued system used by the sphere decoder:
//
//	[Re y]   [Re H  −Im H] [Re v]
//	[Im y] = [Im H   Re H] [Im v]
//
// For modulations with no imaginary component (BPSK) use RealDecompositionI,
// which keeps only the Re v columns.
func RealDecomposition(h *Mat) *Mat {
	out := NewMat(2*h.Rows, 2*h.Cols)
	for i := 0; i < h.Rows; i++ {
		for j := 0; j < h.Cols; j++ {
			re := complex(real(h.At(i, j)), 0)
			im := complex(imag(h.At(i, j)), 0)
			out.Set(i, j, re)
			out.Set(i, j+h.Cols, -im)
			out.Set(i+h.Rows, j, im)
			out.Set(i+h.Rows, j+h.Cols, re)
		}
	}
	return out
}

// RealDecompositionI is RealDecomposition restricted to real-valued symbol
// vectors (BPSK): the stacked 2Nr×Nt real matrix [Re H; Im H].
func RealDecompositionI(h *Mat) *Mat {
	out := NewMat(2*h.Rows, h.Cols)
	for i := 0; i < h.Rows; i++ {
		for j := 0; j < h.Cols; j++ {
			out.Set(i, j, complex(real(h.At(i, j)), 0))
			out.Set(i+h.Rows, j, complex(imag(h.At(i, j)), 0))
		}
	}
	return out
}

// StackReal returns the real-stacked receive vector [Re y; Im y] as a complex
// slice with zero imaginary parts, matching RealDecomposition's layout.
func StackReal(y []complex128) []complex128 {
	out := make([]complex128, 2*len(y))
	for i, v := range y {
		out[i] = complex(real(v), 0)
		out[i+len(y)] = complex(imag(v), 0)
	}
	return out
}
