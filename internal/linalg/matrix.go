// Package linalg implements the dense complex linear algebra the QuAMax
// pipeline needs: Hermitian products for the Ising reduction, Householder QR
// for the sphere decoder, and Gaussian-elimination solvers for the
// zero-forcing and MMSE baselines.
//
// Everything is written against complex128 from scratch (stdlib only). The
// package favours clarity and numerical robustness (partial pivoting,
// column-norm ordering) over BLAS-level performance: MIMO matrices in this
// repository are at most a few hundred elements per side.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Mat is a dense row-major complex matrix.
type Mat struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// MatFromRows builds a matrix from row slices. All rows must have equal length.
func MatFromRows(rows [][]complex128) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []complex128 {
	col := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		col[i] = m.At(i, j)
	}
	return col
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) []complex128 {
	row := make([]complex128, m.Cols)
	copy(row, m.Data[i*m.Cols:(i+1)*m.Cols])
	return row
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%8.4f%+8.4fi ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns a·b. Panics on dimension mismatch.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a·x as a new vector.
func MulVec(a *Mat, x []complex128) []complex128 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]complex128, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s complex128
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ConjTranspose returns the Hermitian transpose aᴴ.
func ConjTranspose(a *Mat) *Mat {
	out := NewMat(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, cmplx.Conj(a.At(i, j)))
		}
	}
	return out
}

// Gram returns aᴴ·a, the (Hermitian) Gram matrix used throughout the Ising
// reduction.
func Gram(a *Mat) *Mat {
	out := NewMat(a.Cols, a.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := i; j < a.Cols; j++ {
			var s complex128
			for r := 0; r < a.Rows; r++ {
				s += cmplx.Conj(a.At(r, i)) * a.At(r, j)
			}
			out.Set(i, j, s)
			if i != j {
				out.Set(j, i, cmplx.Conj(s))
			}
		}
	}
	return out
}

// ConjMulVec returns aᴴ·y, the matched-filter output.
func ConjMulVec(a *Mat, y []complex128) []complex128 {
	if a.Rows != len(y) {
		panic("linalg: ConjMulVec dimension mismatch")
	}
	out := make([]complex128, a.Cols)
	for j := 0; j < a.Cols; j++ {
		var s complex128
		for i := 0; i < a.Rows; i++ {
			s += cmplx.Conj(a.At(i, j)) * y[i]
		}
		out[j] = s
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: Sub dimension mismatch")
	}
	out := NewMat(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// VecSub returns a−b.
func VecSub(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("linalg: VecSub length mismatch")
	}
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Norm2 returns ‖x‖², the squared Euclidean norm.
func Norm2(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// Norm returns ‖x‖.
func Norm(x []complex128) float64 { return math.Sqrt(Norm2(x)) }

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a *Mat) float64 { return Norm(a.Data) }

// MaxAbsDiff returns max |a_ij − b_ij|, a test helper for approximate equality.
func MaxAbsDiff(a, b *Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// ErrSingular is returned when a solve or inverse meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Solve solves a·x = b for square a via Gaussian elimination with partial
// pivoting. a and b are not modified.
func Solve(a *Mat, b []complex128) ([]complex128, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: Solve requires square a and matching b")
	}
	// Augmented working copies.
	m := a.Clone()
	x := make([]complex128, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column.
		p, best := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(m.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		pivot := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pivot
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Inverse returns a⁻¹ for square a.
func Inverse(a *Mat) (*Mat, error) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: Inverse requires a square matrix")
	}
	inv := NewMat(n, n)
	e := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// PseudoInverse returns (aᴴa)⁻¹aᴴ, the left pseudo-inverse used by the
// zero-forcing detector. Requires full column rank.
func PseudoInverse(a *Mat) (*Mat, error) {
	gramInv, err := Inverse(Gram(a))
	if err != nil {
		return nil, err
	}
	return Mul(gramInv, ConjTranspose(a)), nil
}

// RightPseudoInverse returns aᴴ(aaᴴ)⁻¹, the right pseudo-inverse (a·R = I)
// used by the downlink channel-inversion precoder. Requires full row rank.
func RightPseudoInverse(a *Mat) (*Mat, error) {
	gramInv, err := Inverse(Gram(ConjTranspose(a)))
	if err != nil {
		return nil, err
	}
	return Mul(ConjTranspose(a), gramInv), nil
}
