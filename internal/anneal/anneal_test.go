package anneal

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/embedding"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []Params{
		{AnnealTimeMicros: 0.5, NumAnneals: 1},                                       // Ta too small
		{AnnealTimeMicros: 301, NumAnneals: 1},                                       // Ta too large
		{AnnealTimeMicros: 1, PauseTimeMicros: -1, NumAnneals: 1},                    // negative pause
		{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0, NumAnneals: 1},   // sp out of range
		{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 1.2, NumAnneals: 1}, // sp out of range
		{AnnealTimeMicros: 1, NumAnneals: 0},                                         // no anneals
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAnnealWallMicros(t *testing.T) {
	p := Params{AnnealTimeMicros: 1, PauseTimeMicros: 1}
	if p.AnnealWallMicros() != 2 {
		t.Fatalf("wall = %g, want 2 (paper: pause doubles anneal wall time)", p.AnnealWallMicros())
	}
}

func TestRangeSpec(t *testing.T) {
	std := Range(false)
	if std.HMax != 2 || std.JPosMax != 1 || std.JNegMax != 1 {
		t.Fatalf("standard range = %+v", std)
	}
	imp := Range(true)
	if imp.JNegMax != 2 {
		t.Fatalf("improved range should double negative couplers, got %+v", imp)
	}
}

func TestAutoScale(t *testing.T) {
	m := NewMachine()
	in := qubo.NewSparse(2)
	in.H[0] = 1
	in.AddEdge(0, 1, -1)
	if s := m.Scale(in, false); s != 1 {
		t.Fatalf("in-range program scaled by %g", s)
	}
	// A −2 coupler fits only the improved range.
	strong := qubo.NewSparse(2)
	strong.AddEdge(0, 1, -2)
	if s := m.Scale(strong, false); math.Abs(s-2) > 1e-12 {
		t.Fatalf("standard range should scale −2 coupler by 2, got %g", s)
	}
	if s := m.Scale(strong, true); s != 1 {
		t.Fatalf("improved range should accept −2 coupler, got scale %g", s)
	}
	// Oversized field dominates.
	big := qubo.NewSparse(1)
	big.H[0] = 8
	if s := m.Scale(big, false); math.Abs(s-4) > 1e-12 {
		t.Fatalf("|h|=8 should scale by 4, got %g", s)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := NewMachine()
	prog := qubo.NewSparse(6)
	for i := 0; i < 5; i++ {
		prog.AddEdge(i, i+1, -0.5)
	}
	params := Params{AnnealTimeMicros: 1, NumAnneals: 20}
	a, err := m.Run(prog, params, false, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(prog, params, false, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for k := range a[i].Spins {
			if a[i].Spins[k] != b[i].Spins[k] {
				t.Fatal("same seed must reproduce identical samples")
			}
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	m := NewMachine()
	if _, err := m.Run(qubo.NewSparse(0), DefaultParams(), false, rng.New(1)); err == nil {
		t.Fatal("empty program must error")
	}
	prog := qubo.NewSparse(2)
	if _, err := m.Run(prog, Params{}, false, rng.New(1)); err == nil {
		t.Fatal("invalid params must error")
	}
}

// A plain ferromagnetic chain must be solved essentially always.
func TestSolvesFerromagnet(t *testing.T) {
	m := NewMachine()
	m.ICE.Enabled = false
	prog := qubo.NewSparse(16)
	for i := 0; i < 15; i++ {
		prog.AddEdge(i, i+1, -1)
	}
	prog.H[0] = -0.5 // break symmetry: prefer all +1
	samples, err := m.Run(prog, Params{AnnealTimeMicros: 1, NumAnneals: 50}, false, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range samples {
		ok := true
		for _, v := range s.Spins {
			if v != 1 {
				ok = false
			}
		}
		if ok {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("ferromagnet ground state found %d/50 times", hits)
	}
}

// End-to-end over the real pipeline: a 4-user BPSK ML problem embedded on
// Chimera must decode noise-free with high probability. This is also the
// calibration guard for the machine constants.
func TestSolvesEmbeddedMIMOProblem(t *testing.T) {
	src := rng.New(9)
	g := chimera.New(4)
	const nt = 4
	mod := modulation.BPSK

	h := channel.RandomPhase{}.Generate(src, nt, nt)
	bits := src.Bits(nt)
	v := mod.MapGrayVector(bits)
	y := linalg.MulVec(h, v)

	logical := reduction.ReduceToIsing(mod, h, y)
	emb, err := embedding.Embed(g, logical.N)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := emb.EmbedIsing(logical, 4.0, true)
	if err != nil {
		t.Fatal(err)
	}
	wantSpins, wantE := qubo.BruteForceIsing(logical)

	m := NewMachine()
	samples, err := m.Run(ep.Phys, Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 100}, true, src)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range samples {
		e, lg, _ := ep.UnembeddedEnergy(s.Spins, src)
		if math.Abs(e-wantE) < 1e-9 {
			hits++
			for i := range lg {
				if lg[i] != wantSpins[i] {
					t.Fatal("ground energy with different spins (unexpected degeneracy)")
				}
			}
		}
	}
	if hits < 30 {
		t.Fatalf("embedded 4-user BPSK ground state found %d/100 times; machine badly calibrated", hits)
	}
}

// The pause must help on a fully-connected spin glass (the paper's Fig. 8
// finding: pausing beats non-pausing even though each anneal costs 2×).
func TestPauseImprovesSuccess(t *testing.T) {
	src := rng.New(10)
	g := chimera.New(4)
	n := 12
	logical := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		logical.H[i] = src.Gauss(0, 0.3)
		for j := i + 1; j < n; j++ {
			logical.SetJ(i, j, src.Gauss(0, 1))
		}
	}
	emb, err := embedding.Embed(g, n)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := emb.EmbedIsing(logical, 3.0, true)
	if err != nil {
		t.Fatal(err)
	}
	_, wantE := qubo.BruteForceIsing(logical)

	m := NewMachine()
	count := func(params Params, seed int64) int {
		samples, err := m.Run(ep.Phys, params, true, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, s := range samples {
			e, _, _ := ep.UnembeddedEnergy(s.Spins, rng.New(1))
			if math.Abs(e-wantE) < 1e-9 {
				hits++
			}
		}
		return hits
	}
	noPause, withPause := 0, 0
	for seed := int64(11); seed < 14; seed++ {
		noPause += count(Params{AnnealTimeMicros: 1, NumAnneals: 300}, seed)
		withPause += count(Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 300}, seed)
	}
	if withPause <= noPause {
		t.Fatalf("pause should improve success: %d (pause) vs %d (no pause) over 900 anneals", withPause, noPause)
	}
}

func TestWorkerCountDoesNotChangeSampleCount(t *testing.T) {
	m := NewMachine()
	prog := qubo.NewSparse(4)
	prog.AddEdge(0, 1, -1)
	for _, workers := range []int{0, 1, 3, 16} {
		m.Workers = workers
		samples, err := m.Run(prog, Params{AnnealTimeMicros: 1, NumAnneals: 7}, false, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != 7 {
			t.Fatalf("workers=%d: %d samples", workers, len(samples))
		}
		for _, s := range samples {
			if len(s.Spins) != 4 {
				t.Fatal("bad sample shape")
			}
		}
	}
}
