// Package anneal simulates the D-Wave 2000Q quantum annealer that QuAMax
// runs on (paper §2.2, §4). It is the repository's substitute for the real
// QPU: problems arrive already embedded on the Chimera graph as sparse
// physical Ising programs (see internal/embedding), and every device
// mechanism the paper's evaluation manipulates is reproduced:
//
//   - Analog programming range. Fields are clipped to h ∈ [−2,2] and
//     couplers to J ∈ [−1,+1]; the "improved coupling dynamic range" option
//     (§4) extends valid negative couplers to −2. Out-of-range programs are
//     auto-scaled down, which is what squeezes problem information when
//     |J_F| is set too large.
//   - ICE (intrinsic control error). Every anneal perturbs the programmed
//     coefficients with Gaussian noise of the magnitude the paper measured:
//     ⟨δf⟩ ≈ 0.008 ± 0.02 and ⟨δg⟩ ≈ −0.015 ± 0.025 (§4).
//   - Annealing schedule. Each anneal performs Metropolis dynamics under an
//     inverse-temperature ramp β(s) that mirrors the A(t)/B(t) signal swap,
//     with the anneal time Ta setting the sweep budget and an optional
//     mid-anneal pause of duration Tp at schedule position sp (§4, [43]).
//   - Batching. A run executes Na anneals (one QA "job", §4) with fresh
//     ICE noise and fresh initial states, parallelized across goroutines
//     with independent deterministic random streams.
//
// The only non-reproduced aspect is the sampler's physics: Metropolis
// dynamics replace quantum dynamics, so absolute success probabilities are
// calibrated (sweeps-per-µs constant) rather than emergent. Every
// experimental shape — J_F washout vs. chain breakage, pause thermalization
// benefit, size scaling, SNR trends — comes out of the same code path the
// paper exercised.
package anneal

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// Params are the per-run user knobs of §4 ("Annealer Parameter Setting").
type Params struct {
	AnnealTimeMicros float64 // Ta ∈ [1, 300] µs on the DW2Q
	PauseTimeMicros  float64 // Tp; 0 disables the pause
	PausePosition    float64 // sp ∈ (0,1), schedule fraction where the pause sits
	NumAnneals       int     // Na, anneals per run (batch size)
}

// DefaultParams returns the paper's chosen operating point (§5.3.1/§5.3.2):
// Ta = 1 µs with a 1 µs pause; the pause position default corresponds to the
// red-circled optimum of Fig. 7.
func DefaultParams() Params {
	return Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 100}
}

// AnnealWallMicros returns the wall-clock compute time of ONE anneal,
// Ta + Tp — the quantity TTB multiplies by Na (§5.3.2: "each anneal in the
// former (Ta + Tp) takes twice as much time").
func (p Params) AnnealWallMicros() float64 { return p.AnnealTimeMicros + p.PauseTimeMicros }

// Validate checks the knobs against device limits.
func (p Params) Validate() error {
	if p.AnnealTimeMicros < 1 || p.AnnealTimeMicros > 300 {
		return fmt.Errorf("anneal: Ta = %g µs outside the DW2Q range [1,300]", p.AnnealTimeMicros)
	}
	if p.PauseTimeMicros < 0 {
		return errors.New("anneal: negative pause time")
	}
	if p.PauseTimeMicros > 0 && (p.PausePosition <= 0 || p.PausePosition >= 1) {
		return fmt.Errorf("anneal: pause position %g outside (0,1)", p.PausePosition)
	}
	if p.NumAnneals < 1 {
		return errors.New("anneal: need at least one anneal")
	}
	return nil
}

// ICEModel is the intrinsic-control-error noise of §4: per-anneal Gaussian
// perturbation of the programmed coefficients.
type ICEModel struct {
	Enabled bool
	HMean   float64 // ⟨δf⟩ mean
	HStd    float64 // ⟨δf⟩ std
	JMean   float64 // ⟨δg⟩ mean
	JStd    float64 // ⟨δg⟩ std
}

// DefaultICE returns the noise magnitudes measured on the DW2Q
// (§4 "Precision Issues"): δf ≈ 0.008 ± 0.02, δg ≈ −0.015 ± 0.025.
func DefaultICE() ICEModel {
	return ICEModel{Enabled: true, HMean: 0.008, HStd: 0.02, JMean: -0.015, JStd: 0.025}
}

// RangeSpec is the analog programming range of the device.
type RangeSpec struct {
	HMax    float64 // |h| limit (2 on the DW2Q)
	JPosMax float64 // positive coupler limit (+1)
	JNegMax float64 // negative coupler magnitude limit (1 standard, 2 improved)
}

// Range returns the device range for the given dynamic-range option.
func Range(improved bool) RangeSpec {
	r := RangeSpec{HMax: 2, JPosMax: 1, JNegMax: 1}
	if improved {
		r.JNegMax = 2
	}
	return r
}

// Machine is the simulated annealer. Fields are calibration constants; the
// zero value is unusable — construct with NewMachine.
type Machine struct {
	// SweepsPerMicrosecond converts Ta/Tp into Metropolis sweep budgets.
	// This is the single calibration constant of the simulator (see calibrate.go).
	SweepsPerMicrosecond float64
	// BetaInitial/BetaFinal bound the geometric inverse-temperature ramp,
	// the classical analog of the A(t)/B(t) signal swap.
	BetaInitial, BetaFinal float64
	// ICE is the control-error model applied to every anneal.
	ICE ICEModel
	// Workers bounds run concurrency (≤ 0 means 1).
	Workers int
}

// NewMachine returns a machine with the repository's calibrated constants
// (see calibrate.go for how they were chosen).
func NewMachine() *Machine {
	return &Machine{
		SweepsPerMicrosecond: CalibratedSweepsPerMicrosecond,
		BetaInitial:          CalibratedBetaInitial,
		BetaFinal:            CalibratedBetaFinal,
		ICE:                  DefaultICE(),
		Workers:              8,
	}
}

// Sample is one anneal outcome: the final physical spin configuration.
type Sample struct {
	Spins []int8
}

// Run executes one QA job: Na anneals of the given physical program under
// params, returning every sample. improvedRange selects the coupler range
// used for the rescale step. The run is deterministic given src.
func (m *Machine) Run(prog *qubo.Sparse, params Params, improvedRange bool, src *rng.Source) ([]Sample, error) {
	if prog.N == 0 {
		return nil, errors.New("anneal: empty program")
	}
	return m.RunPrepared(m.PrepareProgram(prog, improvedRange), prog.H, params, src)
}

// RunPrepared is the prepared-program entry point: it executes one QA job of
// a coupling program prepared once with PrepareProgram, under fresh linear
// fields h. Receivers decoding a coherence window reprogram only the per-spin
// biases between symbols — the device's couplers stay programmed — so the
// adjacency build and coupler range scan of PrepareProgram are not redone per
// symbol. Results are bit-identical to Run on the equivalent full program.
func (m *Machine) RunPrepared(pp *PreparedProgram, h []float64, params Params, src *rng.Source) ([]Sample, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(h) != pp.n {
		return nil, fmt.Errorf("anneal: %d fields for a %d-qubit prepared program", len(h), pp.n)
	}
	prepared := m.rescale(pp, h)

	workers := m.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > params.NumAnneals {
		workers = params.NumAnneals
	}
	sources := src.SplitN(workers)
	samples := make([]Sample, params.NumAnneals)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := newAnnealState(prepared, m)
			for a := w; a < params.NumAnneals; a += workers {
				samples[a] = Sample{Spins: st.anneal(params, sources[w])}
			}
		}(w)
	}
	wg.Wait()
	return samples, nil
}

// prepared is the rescaled program plus CSR adjacency.
type prepared struct {
	n      int
	h      []float64
	edges  []qubo.SparseEdge // rescaled weights
	adjIdx [][]int32         // per spin: indices into edges
	adjNbr [][]int32         // per spin: the other endpoint
	scale  float64           // the auto-scale divisor that was applied
}

// PreparedProgram is the field-independent half of a programmed machine: the
// coupler list, its CSR adjacency, and the coupler contribution to the
// analog-range auto-scale. Build it once per compiled channel with
// PrepareProgram; run it with fresh per-symbol fields via RunPrepared. A
// PreparedProgram is immutable and safe for concurrent RunPrepared calls.
type PreparedProgram struct {
	n         int
	improved  bool
	edges     []qubo.SparseEdge // raw (unscaled) weights
	adjIdx    [][]int32         // per spin: indices into edges
	adjNbr    [][]int32         // per spin: the other endpoint
	edgeScale float64           // max over edges of |W|/limit (≥ 0)
}

// N returns the physical qubit count the program was prepared for.
func (pp *PreparedProgram) N() int { return pp.n }

// PrepareProgram performs the field-independent half of programming the
// device: it scans the couplers against the analog range and builds the CSR
// adjacency. Only prog.N and prog.Edges are read; fields arrive per run.
func (m *Machine) PrepareProgram(prog *qubo.Sparse, improvedRange bool) *PreparedProgram {
	r := Range(improvedRange)
	pp := &PreparedProgram{
		n:        prog.N,
		improved: improvedRange,
		edges:    prog.Edges,
	}
	for _, e := range prog.Edges {
		var s float64
		if e.W >= 0 {
			s = e.W / r.JPosMax
		} else {
			s = -e.W / r.JNegMax
		}
		if s > pp.edgeScale {
			pp.edgeScale = s
		}
	}
	deg := make([]int, prog.N)
	for _, e := range prog.Edges {
		deg[e.I]++
		deg[e.J]++
	}
	pp.adjIdx = make([][]int32, prog.N)
	pp.adjNbr = make([][]int32, prog.N)
	for i := range pp.adjIdx {
		pp.adjIdx[i] = make([]int32, 0, deg[i])
		pp.adjNbr[i] = make([]int32, 0, deg[i])
	}
	for idx, e := range prog.Edges {
		pp.adjIdx[e.I] = append(pp.adjIdx[e.I], int32(idx))
		pp.adjNbr[e.I] = append(pp.adjNbr[e.I], int32(e.J))
		pp.adjIdx[e.J] = append(pp.adjIdx[e.J], int32(idx))
		pp.adjNbr[e.J] = append(pp.adjNbr[e.J], int32(e.I))
	}
	return pp
}

// rescale applies the hardware auto-scaling for one run (programs must fit
// the analog range; out-of-range programs are scaled down globally, which is
// the mechanism that erases problem information at large |J_F|). The coupler
// half of the scan was folded into pp.edgeScale at prepare time; only the
// fields are scanned here. The resulting divisor — max(1, fields, couplers)
// — is exactly what a one-shot prepare over the full program computes.
func (m *Machine) rescale(pp *PreparedProgram, h []float64) *prepared {
	r := Range(pp.improved)
	scale := 1.0
	for _, v := range h {
		if s := math.Abs(v) / r.HMax; s > scale {
			scale = s
		}
	}
	if pp.edgeScale > scale {
		scale = pp.edgeScale
	}
	p := &prepared{
		n:      pp.n,
		h:      make([]float64, pp.n),
		edges:  make([]qubo.SparseEdge, len(pp.edges)),
		adjIdx: pp.adjIdx,
		adjNbr: pp.adjNbr,
		scale:  scale,
	}
	for i, v := range h {
		p.h[i] = v / scale
	}
	for i, e := range pp.edges {
		p.edges[i] = qubo.SparseEdge{I: e.I, J: e.J, W: e.W / scale}
	}
	return p
}

// Scale exposes the auto-scale divisor a run would apply — used by tests
// and the J_F microbenchmarks.
func (m *Machine) Scale(prog *qubo.Sparse, improvedRange bool) float64 {
	return m.rescale(m.PrepareProgram(prog, improvedRange), prog.H).scale
}

// annealState holds per-worker scratch buffers.
type annealState struct {
	p       *prepared
	machine *Machine
	spins   []int8
	hPert   []float64 // ICE-perturbed fields for the current anneal
	jPert   []float64 // ICE-perturbed edge weights
}

func newAnnealState(p *prepared, m *Machine) *annealState {
	return &annealState{
		p:       p,
		machine: m,
		spins:   make([]int8, p.n),
		hPert:   make([]float64, p.n),
		jPert:   make([]float64, len(p.edges)),
	}
}

// anneal performs one full annealing cycle and returns a copy of the final
// spins.
func (st *annealState) anneal(params Params, src *rng.Source) []int8 {
	p := st.p
	m := st.machine

	// ICE: fresh perturbation of the programmed values each anneal (§4:
	// "noise fluctuating at a time scale of the order of the anneal time").
	if m.ICE.Enabled {
		for i := range p.h {
			st.hPert[i] = p.h[i] + src.Gauss(m.ICE.HMean, m.ICE.HStd)
		}
		for i := range p.edges {
			st.jPert[i] = p.edges[i].W + src.Gauss(m.ICE.JMean, m.ICE.JStd)
		}
	} else {
		copy(st.hPert, p.h)
		for i := range p.edges {
			st.jPert[i] = p.edges[i].W
		}
	}

	// Initial superposition analog: uniformly random state.
	for i := range st.spins {
		if src.Bool() {
			st.spins[i] = 1
		} else {
			st.spins[i] = -1
		}
	}

	rampSweeps := int(math.Round(m.SweepsPerMicrosecond * params.AnnealTimeMicros))
	if rampSweeps < 1 {
		rampSweeps = 1
	}
	pauseSweeps := 0
	if params.PauseTimeMicros > 0 {
		pauseSweeps = int(math.Round(m.SweepsPerMicrosecond * params.PauseTimeMicros))
	}
	pauseAt := int(params.PausePosition * float64(rampSweeps))

	logRatio := math.Log(m.BetaFinal / m.BetaInitial)
	beta := func(sweep int) float64 {
		s := float64(sweep) / float64(rampSweeps-1)
		if rampSweeps == 1 {
			s = 1
		}
		return m.BetaInitial * math.Exp(logRatio*s)
	}

	for sweep := 0; sweep < rampSweeps; sweep++ {
		st.sweep(beta(sweep), src)
		if pauseSweeps > 0 && sweep == pauseAt {
			// Anneal pause: hold the schedule (fixed temperature) to let the
			// system thermalize [43].
			bp := beta(sweep)
			for k := 0; k < pauseSweeps; k++ {
				st.sweep(bp, src)
			}
		}
	}
	out := make([]int8, p.n)
	copy(out, st.spins)
	return out
}

// sweep performs one Metropolis pass over all spins.
func (st *annealState) sweep(beta float64, src *rng.Source) {
	p := st.p
	for i := 0; i < p.n; i++ {
		local := st.hPert[i]
		nbrs := p.adjNbr[i]
		idxs := p.adjIdx[i]
		for k, nb := range nbrs {
			local += st.jPert[idxs[k]] * float64(st.spins[nb])
		}
		dE := -2 * float64(st.spins[i]) * local
		if dE <= 0 || src.Float64() < math.Exp(-beta*dE) {
			st.spins[i] = -st.spins[i]
		}
	}
}
