package anneal

// Calibration of the simulated annealer.
//
// The simulator has exactly three free constants, fixed once here and never
// tuned per experiment. They were chosen by a one-off sweep (run as a
// temporary test against three probe workloads) over
// SweepsPerMicrosecond ∈ {32, 64, 128}, BetaInitial ∈ {0.1 … 0.4},
// BetaFinal ∈ {6 … 10}:
//
//  1. a 16-spin ferromagnetic chain (domain-wall annealing sanity),
//  2. a 12-spin fully-connected Gaussian spin glass embedded on Chimera
//     (hard instance; also probes that the mid-anneal pause genuinely
//     raises success probability, the Fig. 7/8 mechanism),
//  3. a 12-user BPSK ML instance at 20 dB SNR embedded on Chimera
//     (representative easy workload; the DW2Q solves these near-always).
//
// Measured at the chosen point (64 sweeps/µs, β: 0.3 → 8):
// ferromagnet 36/50 ground states at Ta = 1 µs; spin glass P0 ≈ 2.3%
// without pause vs ≈ 4% with a 1 µs pause at sp = 0.35; MIMO instance
// 200/200. This puts 36-logical-qubit MIMO problems in the paper's Fig. 4
// success-probability regime while preserving the pause benefit and the
// hardness ordering (glass ≫ MIMO). Larger sweep budgets only raise
// absolute success rates; they do not change any reported shape.
const (
	// CalibratedSweepsPerMicrosecond converts the device's anneal/pause
	// durations into Metropolis sweep budgets (Ta = 1 µs ⇒ 64 sweeps).
	CalibratedSweepsPerMicrosecond = 64
	// CalibratedBetaInitial is the hot end of the geometric β ramp.
	CalibratedBetaInitial = 0.3
	// CalibratedBetaFinal is the cold end of the geometric β ramp.
	CalibratedBetaFinal = 8.0
)
