package anneal

// Bit-parallel multi-spin anneal engine (ROADMAP "raw-speed anneal engine").
//
// The scalar simulator above (annealState.sweep) recomputes every spin's
// local field from its adjacency on every visit — O(degree) float work per
// spin per sweep per replica, which is what makes BenchmarkAnneal48BPSK the
// hot path under every benchmark. This engine rebuilds that inner loop for
// machine speed:
//
//   - Multi-spin coding. Up to 64 independent replicas run in one block;
//     spin i of replica r is bit r of words[i], so a Metropolis flip is one
//     XOR against an accept mask and a replica's whole configuration costs
//     n bits instead of n bytes. All replicas share one coupling program
//     (one flat CSR walk serves 64 trajectories).
//   - Incremental local fields. lam[i·R+r] caches 2·(h_i + Σ_k J_ik·σ_k),
//     the doubled local field of spin i in replica r (doubled so the flip
//     energy dE = −2·σ_i·λ_i is a single sign transfer with no multiply).
//     A visit is then O(1); only an accepted flip pays the O(degree)
//     neighbor walk, scattering the precomputed per-edge deltas ±4·J_ik
//     (flipW) into the neighbors' cached doubled fields.
//   - Branchless accept pass. Downhill moves (dE sign bit set) are gathered
//     into a bitmask with pure ALU ops — no data-dependent branches — and
//     only the uphill minority walks the Metropolis draw path.
//   - Cheap draws. Each replica owns a splitmix64 stream (seeded from its
//     rng.Source child at construction) and the acceptance probability uses
//     expNegY, a deterministic interpolated 2^(−k/32) table, not math.Exp;
//     the accept bit is accumulated without a data-dependent branch.
//     Uphill proposals past the rejection cut (β·dE ≈ 36.74, acceptance
//     below the draw's resolution) are rejected without consuming a draw.
//   - Incremental energies. energy[r] accumulates the accepted dEs, so
//     per-replica energies are always available (the parallel-tempering
//     scheduler in pt.go reads them at every exchange attempt) without an
//     O(n + |E|) evaluation.
//
// The packed sweep is held by a scalar twin (MSScalar) with the identical
// arithmetic, operation order and stream discipline: one splitmix64 stream
// per replica, one rng.Source Bool per spin at init, one draw per uphill
// proposal below the rejection cut, all in spin order. The differential
// harness (equiv_test.go), the metamorphic tests and FuzzSweepEquivalence
// prove the two paths produce bit-identical per-replica trajectories, spins
// and energies; the CI bench gate (tools/benchjson) holds the ≥5× speedup
// over the scalar device simulator at equal-or-better success probability.

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// MaxReplicasPerBlock is the multi-spin word width: how many independent
// replicas one MSBlock packs (bit r of every word belongs to replica r).
const MaxReplicasPerBlock = 64

// The acceptance probability exp(−β·dE) is evaluated on a 1/32-octave grid:
// expTab[k] = 2^(−k/32), linearly interpolated (relative error < 6e-5, well
// under Metropolis sampling noise; the bench gate's gsrate holds the
// sampling quality). Proposals are scored directly in grid units
// y = β·dE·32·log₂e, with β pre-scaled once per sweep, so a draw costs one
// multiply, one truncation, two adjacent loads and a fused interpolation —
// no math.Exp on the hot path.
//
// rejectCutY is the grid position above which an uphill proposal is
// rejected without consuming a random draw: it corresponds to
// β·dE ≈ 36.74, where exp(−β·dE) < 2⁻⁵³ — below the resolution of a
// Float64 draw. Both the packed and the scalar sweep apply the same cut, so
// the two paths stay bit-identical.
const (
	expTabLast = 1696 // last interpolation interval start; 1696/(32·log₂e) ≈ 36.74
	rejectCutY = float64(expTabLast)
	yPerBeta   = 32 * math.Log2E // grid units per unit of β·dE
)

// splitmix64 constants (Vigna). Each replica's acceptance stream is the
// splitmix64 sequence from its seed: state += smixGamma, output = mix64.
const smixGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output permutation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextFloat advances replica stream s and returns a uniform draw in [0, 1)
// with 53 random bits — the engine's Metropolis draw on both sweep paths.
func nextFloat(s *uint64) float64 {
	*s += smixGamma
	return float64(mix64(*s)>>11) * 0x1p-53
}

// expTab[k] = 2^(−k/32); one spare entry past expTabLast so interpolation
// at the cut never reads out of bounds.
var (
	expTab    [expTabLast + 2]float64
	expTabOne sync.Once
)

func initExpTab() {
	for k := range expTab {
		expTab[k] = math.Exp2(-float64(k) / 32)
	}
}

// expNegY approximates exp(−β·dE) for a proposal already scored in grid
// units y = β·dE·yPerBeta ∈ [0, rejectCutY): table lookup plus linear
// interpolation. Deterministic by construction — both sweep paths call it
// with bit-identical arguments and get bit-identical probabilities.
func expNegY(y float64) float64 {
	n := int(y)
	a := expTab[n]
	return a + (expTab[n+1]-a)*(y-float64(n))
}

// MSKernel is a sparse Ising program compiled for the multi-spin engine:
// the flat-CSR adjacency both sweep paths walk, the per-edge doubled-field
// deltas (4·J, applied with the sign of the flipped spin), and the original
// edge list for from-scratch energy evaluation. A kernel is immutable and
// shared by any number of concurrent blocks.
type MSKernel struct {
	n      int
	offset float64
	h      []float64 // linear fields, len n
	start  []int32   // CSR row offsets, len n+1
	nbr    []int32   // neighbor spin per directed edge, len 2|E|
	w      []float64 // coupling J per directed edge, len 2|E|
	flipW  []float64 // precomputed doubled-field flip delta 4·J per directed edge

	ei, ej []int32   // undirected edge list (energy evaluation)
	ew     []float64 // undirected edge weights
}

// NewMSKernel compiles a sparse Ising program (coefficients taken verbatim —
// callers wanting the device's analog-range normalization divide by
// Machine.Scale first). Duplicate edges are merged by summation, mirroring
// qubo.Sparse.ToDense.
func NewMSKernel(prog *qubo.Sparse) (*MSKernel, error) {
	if prog.N == 0 {
		return nil, errors.New("anneal: empty program")
	}
	expTabOne.Do(initExpTab)
	type key struct{ i, j int32 }
	merged := make(map[key]float64, len(prog.Edges))
	order := make([]key, 0, len(prog.Edges))
	for _, e := range prog.Edges {
		i, j := int32(e.I), int32(e.J)
		if i > j {
			i, j = j, i
		}
		k := key{i, j}
		if _, seen := merged[k]; !seen {
			order = append(order, k)
		}
		merged[k] += e.W
	}
	k := &MSKernel{
		n:      prog.N,
		offset: prog.Offset,
		h:      append([]float64(nil), prog.H...),
	}
	deg := make([]int32, prog.N)
	for _, e := range order {
		deg[e.i]++
		deg[e.j]++
	}
	k.start = make([]int32, prog.N+1)
	for i := 0; i < prog.N; i++ {
		k.start[i+1] = k.start[i] + deg[i]
	}
	// Rows are filled in ascending-undirected-edge order below and then
	// sorted by neighbor index, so the flip scatter walks each spin's
	// neighbor rows in ascending address order (prefetch-friendly). Both
	// sweep paths share this kernel, so the row order — which fixes the
	// float summation order of localField2 — is identical for both.
	m := int(k.start[prog.N])
	k.nbr = make([]int32, m)
	k.w = make([]float64, m)
	k.flipW = make([]float64, m)
	fill := append([]int32(nil), k.start[:prog.N]...)
	k.ei = make([]int32, len(order))
	k.ej = make([]int32, len(order))
	k.ew = make([]float64, len(order))
	for idx, e := range order {
		wgt := merged[e]
		k.ei[idx], k.ej[idx], k.ew[idx] = e.i, e.j, wgt
		for _, pair := range [2][2]int32{{e.i, e.j}, {e.j, e.i}} {
			p := fill[pair[0]]
			k.nbr[p] = pair[1]
			k.w[p] = wgt
			k.flipW[p] = 4 * wgt
			fill[pair[0]]++
		}
	}
	for i := 0; i < prog.N; i++ {
		lo, hi := int(k.start[i]), int(k.start[i+1])
		sort.Sort(&rowSorter{k.nbr[lo:hi], k.w[lo:hi], k.flipW[lo:hi]})
	}
	return k, nil
}

// rowSorter orders one CSR row by neighbor index, keeping weights aligned.
type rowSorter struct {
	nbr   []int32
	w     []float64
	flipW []float64
}

func (s *rowSorter) Len() int           { return len(s.nbr) }
func (s *rowSorter) Less(i, j int) bool { return s.nbr[i] < s.nbr[j] }
func (s *rowSorter) Swap(i, j int) {
	s.nbr[i], s.nbr[j] = s.nbr[j], s.nbr[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
	s.flipW[i], s.flipW[j] = s.flipW[j], s.flipW[i]
}

// N returns the spin count the kernel was compiled for.
func (k *MSKernel) N() int { return k.n }

// Offset returns the program's constant energy offset.
func (k *MSKernel) Offset() float64 { return k.offset }

// localField2 computes spin i's DOUBLED local field 2·(h_i + Σ J_ik·σ_k)
// from scratch for one replica's spin reader (σ(j) ∈ {−1,+1}). Both sweep
// paths initialize their cached fields through this one walk so their float
// operation order is identical. (Doubling by 2 is exact in IEEE-754, so the
// doubled representation tracks the plain field bit-for-bit.)
func (k *MSKernel) localField2(i int, sigma func(int32) float64) float64 {
	f := k.h[i]
	for p := k.start[i]; p < k.start[i+1]; p++ {
		f += k.w[p] * sigma(k.nbr[p])
	}
	return 2 * f
}

// energyOf evaluates the program energy of one replica from scratch, in the
// fixed field-then-edge order both paths share.
func (k *MSKernel) energyOf(sigma func(int32) float64) float64 {
	e := k.offset
	for i := 0; i < k.n; i++ {
		e += k.h[i] * sigma(int32(i))
	}
	for idx := range k.ew {
		e += k.ew[idx] * sigma(k.ei[idx]) * sigma(k.ej[idx])
	}
	return e
}

// MSBlock is one bit-packed group of up to 64 replicas annealing one kernel.
// Bit r of words[i] holds spin i of replica r (set = +1); lam caches every
// replica's doubled local fields; energy tracks every replica's program
// energy incrementally; beta is each replica's current inverse temperature
// (a shared schedule for plain SA, one ladder rung each under parallel
// tempering). A block is not safe for concurrent use — concurrency comes
// from running independent blocks (RunMultiSpin, RunPT).
type MSBlock struct {
	k        *MSKernel
	replicas int
	mask     uint64    // low `replicas` bits set
	words    []uint64  // len n
	lam      []float64 // doubled fields, len n·replicas, row-major by spin
	energy   []float64 // len replicas
	beta     []float64 // len replicas
	bscaled  []float64 // beta·yPerBeta, the sweep's grid-unit multiplier
	state    []uint64  // splitmix64 stream per replica
	srcs     []*rng.Source

	rScratch []int32  // flipped-replica indices, per-spin scratch
	sScratch []uint64 // matching pre-flip sign bits (bit 63)
}

// NewBlock allocates a block of `replicas` trajectories. srcs supplies one
// child source per replica (the stream discipline the differential harness
// pins): construction consumes one Uint64 from each to seed the replica's
// splitmix64 acceptance stream, and Init later consumes one Bool per spin
// from each for the starting state.
func (k *MSKernel) NewBlock(replicas int, srcs []*rng.Source) (*MSBlock, error) {
	if replicas < 1 || replicas > MaxReplicasPerBlock {
		return nil, fmt.Errorf("anneal: block of %d replicas outside [1,%d]", replicas, MaxReplicasPerBlock)
	}
	if len(srcs) != replicas {
		return nil, fmt.Errorf("anneal: %d sources for %d replicas", len(srcs), replicas)
	}
	b := &MSBlock{
		k:        k,
		replicas: replicas,
		mask:     ^uint64(0) >> uint(64-replicas),
		words:    make([]uint64, k.n),
		lam:      make([]float64, k.n*replicas),
		energy:   make([]float64, replicas),
		beta:     make([]float64, replicas),
		bscaled:  make([]float64, replicas),
		state:    make([]uint64, replicas),
		srcs:     srcs,
		rScratch: make([]int32, replicas),
		sScratch: make([]uint64, replicas),
	}
	for r, src := range srcs {
		b.state[r] = src.Uint64()
	}
	return b, nil
}

// Replicas returns the number of packed trajectories.
func (b *MSBlock) Replicas() int { return b.replicas }

// SetBeta sets replica r's inverse temperature.
func (b *MSBlock) SetBeta(r int, beta float64) {
	b.beta[r] = beta
	b.bscaled[r] = beta * yPerBeta
}

// SetAllBeta sets every replica's inverse temperature (the SA schedule).
func (b *MSBlock) SetAllBeta(beta float64) {
	for r := range b.beta {
		b.beta[r] = beta
		b.bscaled[r] = beta * yPerBeta
	}
}

// Beta returns replica r's current inverse temperature.
func (b *MSBlock) Beta(r int) float64 { return b.beta[r] }

// Init draws every replica's initial state uniformly at random — one Bool
// per spin from the replica's own source, in spin order, exactly as the
// scalar twin draws — then rebuilds the cached fields and energies.
func (b *MSBlock) Init() {
	for i := range b.words {
		var w uint64
		for r := 0; r < b.replicas; r++ {
			if b.srcs[r].Bool() {
				w |= 1 << uint(r)
			}
		}
		b.words[i] = w
	}
	b.recompute()
}

// InitFrom installs explicit initial states (spins[r][i] ∈ {−1,+1}), the
// warm-start/metamorphic entry point: no randomness is consumed.
func (b *MSBlock) InitFrom(spins [][]int8) error {
	if len(spins) != b.replicas {
		return fmt.Errorf("anneal: %d initial states for %d replicas", len(spins), b.replicas)
	}
	for r, s := range spins {
		if len(s) != b.k.n {
			return fmt.Errorf("anneal: replica %d initial state has %d spins, want %d", r, len(s), b.k.n)
		}
		for i, v := range s {
			if v == 1 {
				b.words[i] |= 1 << uint(r)
			} else {
				b.words[i] &^= 1 << uint(r)
			}
		}
	}
	b.recompute()
	return nil
}

// recompute rebuilds lam and energy from the current spins via the kernel's
// shared from-scratch walks.
func (b *MSBlock) recompute() {
	R := b.replicas
	for r := 0; r < R; r++ {
		sigma := b.sigmaReader(r)
		for i := 0; i < b.k.n; i++ {
			b.lam[i*R+r] = b.k.localField2(i, sigma)
		}
		b.energy[r] = b.k.energyOf(sigma)
	}
}

// sigmaReader returns replica r's ±1 spin reader.
func (b *MSBlock) sigmaReader(r int) func(int32) float64 {
	mask := uint64(1) << uint(r)
	return func(i int32) float64 {
		if b.words[i]&mask != 0 {
			return 1
		}
		return -1
	}
}

// Sweep performs one Metropolis pass over all spins for every replica in
// the block. Per spin: a branchless pass gathers the downhill replicas
// (dE = −σ_i·λ_i has its sign bit set) into an accept mask; the uphill
// remainder walks the draw path (rejection cut, then one splitmix64 draw
// against expNeg); the flips land as one XOR; and only flipped replicas pay
// the neighbor walk that scatters the precomputed ±4J deltas.
func (b *MSBlock) Sweep() {
	k := b.k
	R := b.replicas
	lam := b.lam
	words := b.words
	bscaled := b.bscaled
	state := b.state
	energy := b.energy
	rS := b.rScratch
	sS := b.sScratch
	starts := k.start
	nbrs := k.nbr
	flipWs := k.flipW
	for i := 0; i < k.n; i++ {
		w := words[i]
		base := i * R
		row := lam[base : base+R : base+R]
		// Pass 1 (branchless): dE = −σ_i·λ_i as a sign transfer on the
		// doubled field; sign bit set ⇒ dE < 0 (or −0) ⇒ accept outright.
		var flips uint64
		for r := 0; r < R; r++ {
			deb := math.Float64bits(row[r]) ^ (((w >> uint(r)) & 1) << 63)
			flips |= (deb >> 63) << uint(r)
		}
		// Pass 2: the uphill remainder runs the Metropolis draw in grid
		// units (dE = |λ| here — the sign transfer came out non-negative).
		// The accept bit is a flag materialization, not a branch, so the
		// draw's inherent unpredictability never stalls the pipeline.
		for f := b.mask &^ flips; f != 0; f &= f - 1 {
			r := trailingZeros(f)
			y := bscaled[r] * math.Abs(row[r])
			if y >= rejectCutY {
				continue // acceptance below draw resolution: reject, no draw
			}
			var bit uint64
			if nextFloat(&state[r]) < expNegY(y) {
				bit = 1
			}
			flips |= bit << uint(r)
		}
		if flips == 0 {
			continue
		}
		words[i] = w ^ flips
		// Collect flipped replicas once (index + pre-flip sign bit), paying
		// the accepted dE into each energy; then scatter the flip deltas:
		// flipping σ_i moves every neighbor's doubled field by −4·σ_i·J.
		nf := 0
		for f := flips; f != 0; f &= f - 1 {
			r := trailingZeros(f)
			sgn := ((w >> uint(r)) & 1) << 63
			rS[nf] = int32(r)
			sS[nf] = sgn
			energy[r] += math.Float64frombits(math.Float64bits(row[r]) ^ sgn)
			nf++
		}
		for p := starts[i]; p < starts[i+1]; p++ {
			jb := int(nbrs[p]) * R
			d4 := math.Float64bits(flipWs[p])
			for c := 0; c < nf; c++ {
				lam[jb+int(rS[c])] += math.Float64frombits(d4 ^ sS[c])
			}
		}
	}
}

// Energy returns replica r's incrementally-maintained program energy.
func (b *MSBlock) Energy(r int) float64 { return b.energy[r] }

// Energies copies all replica energies.
func (b *MSBlock) Energies() []float64 { return append([]float64(nil), b.energy...) }

// Spins extracts replica r's configuration as ±1 spins.
func (b *MSBlock) Spins(r int) []int8 {
	out := make([]int8, b.k.n)
	mask := uint64(1) << uint(r)
	for i, w := range b.words {
		if w&mask != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// MSScalar is the engine's scalar twin: one replica, plain int8 spins, the
// same incremental doubled fields, the same arithmetic in the same order,
// and the same stream discipline as one bit-lane of MSBlock. It exists to
// hold the packed path honest — the differential and fuzz harnesses require
// bit-identical trajectories — and as the readable reference for the packed
// loop's semantics.
type MSScalar struct {
	k       *MSKernel
	spins   []int8
	lam     []float64 // doubled fields
	energy  float64
	beta    float64
	bscaled float64 // beta·yPerBeta
	state   uint64
	src     *rng.Source
}

// NewScalar allocates a scalar twin over the kernel, consuming one Uint64
// from src to seed the acceptance stream (as NewBlock does per replica).
func (k *MSKernel) NewScalar(src *rng.Source) *MSScalar {
	expTabOne.Do(initExpTab)
	return &MSScalar{
		k:     k,
		spins: make([]int8, k.n),
		lam:   make([]float64, k.n),
		state: src.Uint64(),
		src:   src,
	}
}

// SetBeta sets the inverse temperature.
func (s *MSScalar) SetBeta(beta float64) {
	s.beta = beta
	s.bscaled = beta * yPerBeta
}

// Init draws a uniform random state (one Bool per spin, in spin order) and
// rebuilds fields and energy.
func (s *MSScalar) Init() {
	for i := range s.spins {
		if s.src.Bool() {
			s.spins[i] = 1
		} else {
			s.spins[i] = -1
		}
	}
	s.recompute()
}

// InitFrom installs an explicit initial state; no randomness is consumed.
func (s *MSScalar) InitFrom(spins []int8) error {
	if len(spins) != s.k.n {
		return fmt.Errorf("anneal: initial state has %d spins, want %d", len(spins), s.k.n)
	}
	copy(s.spins, spins)
	s.recompute()
	return nil
}

func (s *MSScalar) recompute() {
	sigma := func(i int32) float64 { return float64(s.spins[i]) }
	for i := 0; i < s.k.n; i++ {
		s.lam[i] = s.k.localField2(i, sigma)
	}
	s.energy = s.k.energyOf(sigma)
}

// Sweep performs one Metropolis pass — the scalar mirror of MSBlock.Sweep,
// operation for operation.
func (s *MSScalar) Sweep() {
	k := s.k
	for i := 0; i < k.n; i++ {
		var spinBit uint64
		if s.spins[i] == 1 {
			spinBit = 1
		}
		deb := math.Float64bits(s.lam[i]) ^ (spinBit << 63)
		if deb>>63 == 0 { // uphill (dE ≥ 0): Metropolis draw
			y := s.bscaled * math.Abs(s.lam[i])
			if y >= rejectCutY {
				continue
			}
			if !(nextFloat(&s.state) < expNegY(y)) {
				continue
			}
		}
		for p := k.start[i]; p < k.start[i+1]; p++ {
			delta := math.Float64frombits(math.Float64bits(k.flipW[p]) ^ (spinBit << 63))
			s.lam[k.nbr[p]] += delta
		}
		s.spins[i] = -s.spins[i]
		s.energy += math.Float64frombits(deb)
	}
}

// Energy returns the incrementally-maintained program energy.
func (s *MSScalar) Energy() float64 { return s.energy }

// Spins returns a copy of the current configuration.
func (s *MSScalar) Spins() []int8 { return append([]int8(nil), s.spins...) }

// trailingZeros finds the lowest set bit's index (bits.TrailingZeros64 is a
// compiler intrinsic on amd64, so this is a single TZCNT in the hot loop).
func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

// MSSchedule is the simulated-annealing schedule of a multi-spin run: a
// geometric β ramp over Sweeps passes with an optional fixed-temperature
// pause, mirroring the device simulator's Ta/Tp semantics so a run is
// comparable sweep-for-sweep with Machine.Run.
type MSSchedule struct {
	// BetaInitial and BetaFinal bound the geometric ramp.
	BetaInitial, BetaFinal float64
	// Sweeps is the ramp length (≥ 1).
	Sweeps int
	// PauseSweeps holds the schedule for this many extra sweeps at the
	// PauseAt ramp position (0 disables).
	PauseSweeps int
	// PauseAt is the ramp index where the pause sits.
	PauseAt int
}

// ScheduleFromParams converts device-style run knobs into the engine's sweep
// schedule under the machine's calibration constants — the bridge that makes
// engine runs comparable to Machine runs at equal Ta/Tp.
func ScheduleFromParams(m *Machine, p Params) MSSchedule {
	ramp := int(math.Round(m.SweepsPerMicrosecond * p.AnnealTimeMicros))
	if ramp < 1 {
		ramp = 1
	}
	pause := 0
	if p.PauseTimeMicros > 0 {
		pause = int(math.Round(m.SweepsPerMicrosecond * p.PauseTimeMicros))
	}
	return MSSchedule{
		BetaInitial: m.BetaInitial,
		BetaFinal:   m.BetaFinal,
		Sweeps:      ramp,
		PauseSweeps: pause,
		PauseAt:     int(p.PausePosition * float64(ramp)),
	}
}

// beta evaluates the geometric ramp at sweep index s.
func (sc MSSchedule) beta(s int) float64 {
	f := float64(s) / float64(sc.Sweeps-1)
	if sc.Sweeps == 1 {
		f = 1
	}
	return sc.BetaInitial * math.Exp(math.Log(sc.BetaFinal/sc.BetaInitial)*f)
}

// validate checks the schedule knobs.
func (sc MSSchedule) validate() error {
	if sc.Sweeps < 1 {
		return errors.New("anneal: schedule needs at least one sweep")
	}
	if sc.BetaInitial <= 0 || sc.BetaFinal <= 0 {
		return errors.New("anneal: schedule betas must be positive")
	}
	if sc.PauseSweeps < 0 {
		return errors.New("anneal: negative pause sweeps")
	}
	return nil
}

// run drives one block (or one scalar twin via the setBeta/sweep closures)
// through the schedule: ramp sweeps with the pause inserted at PauseAt,
// exactly as annealState.anneal orders them.
func (sc MSSchedule) run(setBeta func(float64), sweep func()) {
	for s := 0; s < sc.Sweeps; s++ {
		setBeta(sc.beta(s))
		sweep()
		if sc.PauseSweeps > 0 && s == sc.PauseAt {
			bp := sc.beta(s)
			for k := 0; k < sc.PauseSweeps; k++ {
				setBeta(bp)
				sweep()
			}
		}
	}
}

// RunMultiSpin executes `replicas` independent simulated anneals of prog
// through the multi-spin engine and returns every final state with its
// energy. Replicas pack into 64-wide blocks; blocks run on up to `workers`
// goroutines (≤ 0 means one). The run is deterministic given src: replica r
// always owns the r-th child stream regardless of worker count.
func RunMultiSpin(prog *qubo.Sparse, sched MSSchedule, replicas, workers int, src *rng.Source) ([]Sample, []float64, error) {
	if err := sched.validate(); err != nil {
		return nil, nil, err
	}
	if replicas < 1 {
		return nil, nil, errors.New("anneal: need at least one replica")
	}
	k, err := NewMSKernel(prog)
	if err != nil {
		return nil, nil, err
	}
	srcs := src.SplitN(replicas)
	nBlocks := (replicas + MaxReplicasPerBlock - 1) / MaxReplicasPerBlock
	blocks := make([]*MSBlock, nBlocks)
	for b := range blocks {
		lo := b * MaxReplicasPerBlock
		hi := lo + MaxReplicasPerBlock
		if hi > replicas {
			hi = replicas
		}
		blk, err := k.NewBlock(hi-lo, srcs[lo:hi])
		if err != nil {
			return nil, nil, err
		}
		blocks[b] = blk
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	var wg sync.WaitGroup
	next := make(chan *MSBlock, nBlocks)
	for _, blk := range blocks {
		next <- blk
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := range next {
				blk.Init()
				sched.run(blk.SetAllBeta, blk.Sweep)
			}
		}()
	}
	wg.Wait()
	samples := make([]Sample, replicas)
	energies := make([]float64, replicas)
	for b, blk := range blocks {
		lo := b * MaxReplicasPerBlock
		for r := 0; r < blk.Replicas(); r++ {
			samples[lo+r] = Sample{Spins: blk.Spins(r)}
			energies[lo+r] = blk.Energy(r)
		}
	}
	return samples, energies, nil
}
