package anneal

// Differential harness: the packed multi-spin sweep must produce BIT-IDENTICAL
// per-replica trajectories, energies and spins to its scalar twin (MSScalar) —
// same arithmetic, same operation order, same rng stream discipline — across
// modulation-compiled programs (BPSK/QPSK/16-QAM reductions), a Chimera-
// embedded device program, and random CSR instances. Any divergence in the
// packed loop's bit tricks (sign-transfer accepts, grid-unit draws, XOR flip
// scatter) shows up here as a first-divergence sweep index.

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/embedding"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// gnpSparse builds a random CSR instance: n spins, each pair coupled with
// probability density, Gaussian fields and couplings.
func gnpSparse(src *rng.Source, n int, density float64) *qubo.Sparse {
	p := qubo.NewSparse(n)
	for i := 0; i < n; i++ {
		p.H[i] = src.Gauss(0, 1)
		for j := i + 1; j < n; j++ {
			if src.Float64() < density {
				p.AddEdge(i, j, src.Gauss(0, 1))
			}
		}
	}
	p.Offset = src.Gauss(0, 0.5)
	return p
}

// modulationProgram compiles the logical Ising program of one random MIMO
// detection instance — the reduction output the full-connectivity path runs.
func modulationProgram(t testing.TB, mod modulation.Modulation, nt int, seed int64) *qubo.Sparse {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return qubo.SparseFromIsing(reduction.ReduceToIsing(in.Mod, in.H, in.Y))
}

// embeddedProgram compiles a BPSK instance onto Chimera chains — the
// device-shaped CSR (chains, couplers, per-qubit fields) the machine sweeps.
func embeddedProgram(t testing.TB) *qubo.Sparse {
	t.Helper()
	emb, err := embedding.Embed(chimera.New(4), 12)
	if err != nil {
		t.Fatal(err)
	}
	in, err := mimo.Generate(rng.New(12), mimo.Config{
		Mod: modulation.BPSK, Nt: 12, Nr: 12, Channel: channel.RandomPhase{}, SNRdB: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := emb.EmbedIsing(reduction.ReduceToIsing(in.Mod, in.H, in.Y), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	return ep.Phys
}

// equivPrograms is the differential corpus: every program family the engine
// serves in production plus adversarial random graphs.
func equivPrograms(t testing.TB) map[string]*qubo.Sparse {
	return map[string]*qubo.Sparse{
		"bpsk":        modulationProgram(t, modulation.BPSK, 10, 101),
		"qpsk":        modulationProgram(t, modulation.QPSK, 7, 102),
		"qam16":       modulationProgram(t, modulation.QAM16, 4, 103),
		"chimera":     embeddedProgram(t),
		"rand-dense":  gnpSparse(rng.New(5), 40, 0.5),
		"rand-sparse": gnpSparse(rng.New(6), 60, 0.08),
		"fields-only": gnpSparse(rng.New(7), 16, 0),
	}
}

// runEquiv drives a packed block and its per-replica scalar twins through an
// identical β schedule from identically-split sources, asserting bit-equal
// energies after every sweep and bit-equal spins at the end.
func runEquiv(t *testing.T, prog *qubo.Sparse, replicas int, seed int64, sched MSSchedule) {
	t.Helper()
	k, err := NewMSKernel(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Two identically-seeded parents yield identical child streams: the block
	// and the twins consume the same randomness in the same order.
	blockSrcs := rng.New(seed).SplitN(replicas)
	twinSrcs := rng.New(seed).SplitN(replicas)
	block, err := k.NewBlock(replicas, blockSrcs)
	if err != nil {
		t.Fatal(err)
	}
	twins := make([]*MSScalar, replicas)
	for r := range twins {
		twins[r] = k.NewScalar(twinSrcs[r])
	}
	block.Init()
	for _, tw := range twins {
		tw.Init()
	}
	for r, tw := range twins {
		if math.Float64bits(block.Energy(r)) != math.Float64bits(tw.Energy()) {
			t.Fatalf("replica %d: initial energy mismatch: packed %v scalar %v",
				r, block.Energy(r), tw.Energy())
		}
	}
	for s := 0; s < sched.Sweeps; s++ {
		beta := sched.beta(s)
		block.SetAllBeta(beta)
		block.Sweep()
		for r, tw := range twins {
			tw.SetBeta(beta)
			tw.Sweep()
			if math.Float64bits(block.Energy(r)) != math.Float64bits(tw.Energy()) {
				t.Fatalf("replica %d diverged at sweep %d (β=%g): packed %v scalar %v",
					r, s, beta, block.Energy(r), tw.Energy())
			}
		}
	}
	for r, tw := range twins {
		ps, ss := block.Spins(r), tw.Spins()
		for i := range ps {
			if ps[i] != ss[i] {
				t.Fatalf("replica %d: spin %d differs after run: packed %d scalar %d",
					r, i, ps[i], ss[i])
			}
		}
		// The incrementally-maintained energy must agree with a from-scratch
		// evaluation of the final state (plain float tolerance — the sum
		// orders differ).
		e := prog.Energy(ps)
		if math.Abs(e-block.Energy(r)) > 1e-9*(1+math.Abs(e)) {
			t.Fatalf("replica %d: incremental energy %v drifted from evaluated %v",
				r, block.Energy(r), e)
		}
	}
}

// TestPackedMatchesScalarSweep is the differential harness over golden seeds.
func TestPackedMatchesScalarSweep(t *testing.T) {
	sched := MSSchedule{BetaInitial: 0.4, BetaFinal: 6, Sweeps: 15}
	for name, prog := range equivPrograms(t) {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 1337} {
				runEquiv(t, prog, 7, seed, sched)
			}
		})
	}
}

// TestPackedFullWidth pins the 64-replica word edge cases (the mask covers
// the whole word; replica 63's flip bit lands in the sign position).
func TestPackedFullWidth(t *testing.T) {
	prog := gnpSparse(rng.New(9), 24, 0.3)
	runEquiv(t, prog, MaxReplicasPerBlock, 4, MSSchedule{BetaInitial: 0.3, BetaFinal: 8, Sweeps: 10})
	runEquiv(t, prog, 1, 4, MSSchedule{BetaInitial: 0.3, BetaFinal: 8, Sweeps: 10})
}

// TestRunMultiSpinDeterministicAcrossWorkers pins the engine's contract that
// worker count never changes results: replica r always owns the r-th child
// stream.
func TestRunMultiSpinDeterministicAcrossWorkers(t *testing.T) {
	prog := gnpSparse(rng.New(14), 30, 0.25)
	sched := MSSchedule{BetaInitial: 0.3, BetaFinal: 8, Sweeps: 12}
	s1, e1, err := RunMultiSpin(prog, sched, 150, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s4, e4, err := RunMultiSpin(prog, sched, 150, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := range e1 {
		if math.Float64bits(e1[r]) != math.Float64bits(e4[r]) {
			t.Fatalf("replica %d: energy differs across worker counts", r)
		}
		for i := range s1[r].Spins {
			if s1[r].Spins[i] != s4[r].Spins[i] {
				t.Fatalf("replica %d: spin %d differs across worker counts", r, i)
			}
		}
	}
}
