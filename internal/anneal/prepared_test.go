package anneal

import (
	"reflect"
	"testing"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// randSparse builds a random physical program on a ring plus chords.
func randSparse(src *rng.Source, n int) *qubo.Sparse {
	s := qubo.NewSparse(n)
	for i := range s.H {
		s.H[i] = src.Gauss(0, 1.5)
	}
	for i := 0; i < n; i++ {
		s.AddEdge(i, (i+1)%n, src.Gauss(0, 1))
	}
	for k := 0; k < n/2; k++ {
		i := src.Intn(n - 2)
		s.AddEdge(i, i+2, src.Gauss(0, 2))
	}
	return s
}

// RunPrepared on a prepared coupling program with fresh fields must be
// bit-identical to Run on the equivalent full program — the contract that
// lets the compiled decode path skip per-symbol preparation.
func TestRunPreparedMatchesRun(t *testing.T) {
	src := rng.New(21)
	params := Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 12}
	for _, improved := range []bool{false, true} {
		prog := randSparse(src, 24)
		m := NewMachine()
		pp := m.PrepareProgram(prog, improved)
		if pp.N() != prog.N {
			t.Fatalf("prepared N = %d, want %d", pp.N(), prog.N)
		}
		// Several symbols: fresh fields per run over one prepared program.
		for sym := 0; sym < 3; sym++ {
			h := make([]float64, prog.N)
			for i := range h {
				h[i] = src.Gauss(0, 2+float64(sym)) // sym 2 exceeds HMax: scale kicks in
			}
			full := qubo.NewSparse(prog.N)
			copy(full.H, h)
			full.Edges = prog.Edges
			seed := int64(300 + sym)
			want, err := m.Run(full, params, improved, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.RunPrepared(pp, h, params, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("improved=%t sym=%d: RunPrepared samples diverge from Run", improved, sym)
			}
		}
	}
}

// The per-run rescale must reproduce the one-shot Scale exactly, whichever
// of fields or couplers dominates.
func TestRescaleMatchesScale(t *testing.T) {
	src := rng.New(22)
	m := NewMachine()
	for trial := 0; trial < 10; trial++ {
		prog := randSparse(src, 12)
		for _, improved := range []bool{false, true} {
			pp := m.PrepareProgram(prog, improved)
			if got, want := m.rescale(pp, prog.H).scale, m.Scale(prog, improved); got != want {
				t.Fatalf("trial %d improved=%t: rescale %g, Scale %g", trial, improved, got, want)
			}
		}
	}
}

// A field vector of the wrong length must be rejected.
func TestRunPreparedLengthMismatch(t *testing.T) {
	src := rng.New(23)
	m := NewMachine()
	prog := randSparse(src, 8)
	pp := m.PrepareProgram(prog, true)
	params := DefaultParams()
	if _, err := m.RunPrepared(pp, make([]float64, 7), params, rng.New(1)); err == nil {
		t.Fatal("short field vector accepted")
	}
}
