package anneal

// Metamorphic properties of the sweep engines, asserted bit-exactly on all
// three paths (scalar twin, packed multi-spin, parallel tempering):
//
//   - Gauge invariance. Flipping spin i while negating h_i and row J_i maps
//     every trajectory onto a mirrored trajectory with identical energies:
//     the doubled field λ_i negates, so dE = −σ·λ and every accept decision
//     is unchanged bit for bit, and no other spin notices (its λ picks up
//     (−J)(−σ_i) = Jσ_i). Sampled energies are therefore bitwise invariant
//     and final states differ exactly at spin i.
//   - Scaling covariance. Scaling (h, J, offset) by a power of two c while
//     scaling every β by 1/c leaves all products β·dE and exchange arguments
//     (β_a−β_b)(E_a−E_b) bit-identical (IEEE exponent arithmetic cancels
//     exactly), so trajectories and argmin states are invariant and energies
//     scale by exactly c.
//
// Power-of-two scale factors make the covariance exact rather than
// approximate — the strongest form of the "uniform scaling leaves the argmin
// invariant" property, which holds approximately for any positive scale.

import (
	"math"
	"testing"

	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// gaugeSparse returns prog with the gauge transform applied at spin i:
// h_i and every coupling touching i negated.
func gaugeSparse(prog *qubo.Sparse, i int) *qubo.Sparse {
	g := prog.Clone()
	g.H[i] = -g.H[i]
	for e := range g.Edges {
		if g.Edges[e].I == i || g.Edges[e].J == i {
			g.Edges[e].W = -g.Edges[e].W
		}
	}
	return g
}

// scaleSparse returns prog with (h, J, offset) scaled by c.
func scaleSparse(prog *qubo.Sparse, c float64) *qubo.Sparse {
	s := prog.Clone()
	for i := range s.H {
		s.H[i] *= c
	}
	for e := range s.Edges {
		s.Edges[e].W *= c
	}
	s.Offset *= c
	return s
}

// flipAt returns spins with index i negated.
func flipAt(spins []int8, i int) []int8 {
	out := append([]int8(nil), spins...)
	out[i] = -out[i]
	return out
}

// randomSpins draws a uniform ±1 configuration.
func randomSpins(src *rng.Source, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		if src.Bool() {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// metamorphicPrograms is the property-test corpus (kept smaller than the
// differential corpus — each program runs six engine configurations).
func metamorphicPrograms(t testing.TB) map[string]*qubo.Sparse {
	return map[string]*qubo.Sparse{
		"rand":  gnpSparse(rng.New(31), 30, 0.3),
		"qpsk":  modulationProgram(t, modulation.QPSK, 6, 104),
		"dense": gnpSparse(rng.New(33), 20, 1.0),
	}
}

// TestGaugeInvarianceScalarAndPacked runs base and gauge-transformed
// programs from mirrored initial states and asserts bitwise-identical
// energy trajectories on both sweep paths.
func TestGaugeInvarianceScalarAndPacked(t *testing.T) {
	const gauged = 4
	const R = 5
	sched := MSSchedule{BetaInitial: 0.4, BetaFinal: 6, Sweeps: 12}
	for name, prog := range metamorphicPrograms(t) {
		t.Run(name, func(t *testing.T) {
			gp := gaugeSparse(prog, gauged)
			k1, err := NewMSKernel(prog)
			if err != nil {
				t.Fatal(err)
			}
			k2, err := NewMSKernel(gp)
			if err != nil {
				t.Fatal(err)
			}
			inits := make([][]int8, R)
			flipped := make([][]int8, R)
			isrc := rng.New(71)
			for r := range inits {
				inits[r] = randomSpins(isrc, prog.N)
				flipped[r] = flipAt(inits[r], gauged)
			}
			b1, err := k1.NewBlock(R, rng.New(17).SplitN(R))
			if err != nil {
				t.Fatal(err)
			}
			b2, err := k2.NewBlock(R, rng.New(17).SplitN(R))
			if err != nil {
				t.Fatal(err)
			}
			if err := b1.InitFrom(inits); err != nil {
				t.Fatal(err)
			}
			if err := b2.InitFrom(flipped); err != nil {
				t.Fatal(err)
			}
			t1 := k1.NewScalar(rng.New(19).Split())
			t2 := k2.NewScalar(rng.New(19).Split())
			if err := t1.InitFrom(inits[0]); err != nil {
				t.Fatal(err)
			}
			if err := t2.InitFrom(flipped[0]); err != nil {
				t.Fatal(err)
			}
			for s := 0; s < sched.Sweeps; s++ {
				beta := sched.beta(s)
				b1.SetAllBeta(beta)
				b2.SetAllBeta(beta)
				b1.Sweep()
				b2.Sweep()
				for r := 0; r < R; r++ {
					if math.Float64bits(b1.Energy(r)) != math.Float64bits(b2.Energy(r)) {
						t.Fatalf("packed replica %d: gauge broke energy at sweep %d", r, s)
					}
				}
				t1.SetBeta(beta)
				t2.SetBeta(beta)
				t1.Sweep()
				t2.Sweep()
				if math.Float64bits(t1.Energy()) != math.Float64bits(t2.Energy()) {
					t.Fatalf("scalar: gauge broke energy at sweep %d", s)
				}
			}
			for r := 0; r < R; r++ {
				want := flipAt(b1.Spins(r), gauged)
				got := b2.Spins(r)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("packed replica %d: spin %d not mirrored", r, i)
					}
				}
			}
			want := flipAt(t1.Spins(), gauged)
			got := t2.Spins()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("scalar: spin %d not mirrored", i)
				}
			}
		})
	}
}

// TestGaugeInvariancePT asserts the same property through the full
// parallel-tempering scheduler: exchange decisions depend only on energies,
// which the gauge leaves bitwise intact, so swap counts, sampled energies
// and the best energy are invariant and all states mirror at the gauged spin.
func TestGaugeInvariancePT(t *testing.T) {
	const gauged = 7
	prog := gnpSparse(rng.New(35), 26, 0.35)
	gp := gaugeSparse(prog, gauged)
	init := randomSpins(rng.New(72), prog.N)
	params := PTParams{Rungs: 8, Ladders: 2, Sweeps: 30, SwapEvery: 3}
	p1, p2 := params, params
	p1.InitSpins = init
	p2.InitSpins = flipAt(init, gauged)
	r1, err := RunPT(prog, p1, 1, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPT(gp, p2, 1, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.BestEnergy) != math.Float64bits(r2.BestEnergy) {
		t.Fatalf("gauge broke PT best energy: %v vs %v", r1.BestEnergy, r2.BestEnergy)
	}
	if r1.Swaps != r2.Swaps || r1.SwapAttempts != r2.SwapAttempts {
		t.Fatalf("gauge changed PT exchange behavior: %d/%d vs %d/%d",
			r1.Swaps, r1.SwapAttempts, r2.Swaps, r2.SwapAttempts)
	}
	for l := range r1.Energies {
		if math.Float64bits(r1.Energies[l]) != math.Float64bits(r2.Energies[l]) {
			t.Fatalf("ladder %d: gauge broke cold-rung energy", l)
		}
	}
	want := flipAt(r1.BestSpins, gauged)
	for i := range want {
		if want[i] != r2.BestSpins[i] {
			t.Fatalf("PT best state not mirrored at spin %d", i)
		}
	}
}

// TestScalingCovarianceScalarAndPacked runs base and ×c programs (c a power
// of two) under β and β/c schedules from identical random initial states:
// trajectories must match bit for bit with energies scaled by exactly c.
func TestScalingCovarianceScalarAndPacked(t *testing.T) {
	const c = 4.0
	const R = 6
	base := MSSchedule{BetaInitial: 0.4, BetaFinal: 6, Sweeps: 12}
	scaled := MSSchedule{BetaInitial: base.BetaInitial / c, BetaFinal: base.BetaFinal / c, Sweeps: base.Sweeps}
	for name, prog := range metamorphicPrograms(t) {
		t.Run(name, func(t *testing.T) {
			sp := scaleSparse(prog, c)
			k1, err := NewMSKernel(prog)
			if err != nil {
				t.Fatal(err)
			}
			k2, err := NewMSKernel(sp)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := k1.NewBlock(R, rng.New(23).SplitN(R))
			if err != nil {
				t.Fatal(err)
			}
			b2, err := k2.NewBlock(R, rng.New(23).SplitN(R))
			if err != nil {
				t.Fatal(err)
			}
			b1.Init()
			b2.Init()
			t1 := k1.NewScalar(rng.New(29).Split())
			t2 := k2.NewScalar(rng.New(29).Split())
			t1.Init()
			t2.Init()
			for s := 0; s < base.Sweeps; s++ {
				b1.SetAllBeta(base.beta(s))
				b2.SetAllBeta(scaled.beta(s))
				b1.Sweep()
				b2.Sweep()
				for r := 0; r < R; r++ {
					if math.Float64bits(c*b1.Energy(r)) != math.Float64bits(b2.Energy(r)) {
						t.Fatalf("packed replica %d: scaling broke energy at sweep %d: %v vs %v",
							r, s, c*b1.Energy(r), b2.Energy(r))
					}
				}
				t1.SetBeta(base.beta(s))
				t2.SetBeta(scaled.beta(s))
				t1.Sweep()
				t2.Sweep()
				if math.Float64bits(c*t1.Energy()) != math.Float64bits(t2.Energy()) {
					t.Fatalf("scalar: scaling broke energy at sweep %d", s)
				}
			}
			// Argmin (indeed every sampled state) is scale-invariant.
			for r := 0; r < R; r++ {
				s1, s2 := b1.Spins(r), b2.Spins(r)
				for i := range s1 {
					if s1[i] != s2[i] {
						t.Fatalf("packed replica %d: spin %d differs under scaling", r, i)
					}
				}
			}
		})
	}
}

// TestScalingCovariancePT asserts scaling covariance through parallel
// tempering: with the β ladder scaled by 1/c the exchange arguments are
// bit-identical, so swap sequences and all states are invariant and every
// reported energy scales by exactly c.
func TestScalingCovariancePT(t *testing.T) {
	const c = 8.0
	prog := gnpSparse(rng.New(37), 24, 0.4)
	sp := scaleSparse(prog, c)
	base := PTParams{Rungs: 8, Ladders: 2, Sweeps: 24, SwapEvery: 2, BetaMin: 0.3, BetaMax: 6}
	scaled := base
	scaled.BetaMin, scaled.BetaMax = base.BetaMin/c, base.BetaMax/c
	r1, err := RunPT(prog, base, 1, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPT(sp, scaled, 1, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(c*r1.BestEnergy) != math.Float64bits(r2.BestEnergy) {
		t.Fatalf("scaling broke PT best energy: %v vs %v", c*r1.BestEnergy, r2.BestEnergy)
	}
	if r1.Swaps != r2.Swaps || r1.SwapAttempts != r2.SwapAttempts {
		t.Fatalf("scaling changed PT exchange behavior")
	}
	for l := range r1.Energies {
		if math.Float64bits(c*r1.Energies[l]) != math.Float64bits(r2.Energies[l]) {
			t.Fatalf("ladder %d: scaling broke cold-rung energy", l)
		}
	}
	for i := range r1.BestSpins {
		if r1.BestSpins[i] != r2.BestSpins[i] {
			t.Fatalf("PT argmin changed under scaling at spin %d", i)
		}
	}
}

// TestPTFindsGroundStateSmall checks PT against the exhaustive argmin on a
// brute-forceable instance — the end-to-end correctness anchor under the
// bitwise properties above.
func TestPTFindsGroundStateSmall(t *testing.T) {
	prog := gnpSparse(rng.New(41), 12, 0.6)
	best := math.Inf(1)
	spins := make([]int8, prog.N)
	for m := 0; m < 1<<prog.N; m++ {
		for i := range spins {
			if m&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if e := prog.Energy(spins); e < best {
			best = e
		}
	}
	res, err := RunPT(prog, PTParams{Rungs: 12, Ladders: 2, Sweeps: 200, SwapEvery: 2}, 1, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestEnergy-best) > 1e-9*(1+math.Abs(best)) {
		t.Fatalf("PT best energy %v, exhaustive ground state %v", res.BestEnergy, best)
	}
	if e := prog.Energy(res.BestSpins); math.Abs(e-res.BestEnergy) > 1e-9*(1+math.Abs(e)) {
		t.Fatalf("PT best spins evaluate to %v, reported %v", e, res.BestEnergy)
	}
}
