package anneal

// FuzzSweepEquivalence fuzzes the differential property that holds the
// packed engine honest: on a random small Ising instance, the bit-packed
// multi-spin sweep and its scalar twin must produce bit-identical
// per-replica energies after every sweep and identical final spins. The
// fuzzer owns the instance shape (size, density, coupling scale), the
// replica count and the schedule, so it explores corners the golden-seed
// harness does not (single-spin programs, field-free programs, extreme β,
// replica counts straddling the word width).

import (
	"math"
	"testing"

	"quamax/internal/rng"
)

func FuzzSweepEquivalence(f *testing.F) {
	// Seed corpus: typical, tiny, dense, field-free-ish, wide-replica and
	// extreme-β shapes.
	f.Add(int64(1), uint8(8), uint8(128), uint8(3), uint8(4), float64(1))
	f.Add(int64(42), uint8(20), uint8(40), uint8(6), uint8(1), float64(0.25))
	f.Add(int64(7), uint8(2), uint8(255), uint8(1), uint8(63), float64(8))
	f.Add(int64(-9), uint8(33), uint8(10), uint8(5), uint8(31), float64(100))
	f.Add(int64(123), uint8(1), uint8(0), uint8(2), uint8(64), float64(0.001))
	f.Fuzz(func(t *testing.T, seed int64, size, density, sweeps, replicas uint8, betaScale float64) {
		n := 1 + int(size)%48
		R := 1 + int(replicas)%MaxReplicasPerBlock
		nSweeps := 1 + int(sweeps)%8
		if !(betaScale > 0) || math.IsInf(betaScale, 0) {
			betaScale = 1
		}
		betaScale = math.Min(betaScale, 1e6)
		gen := rng.New(seed)
		prog := gnpSparse(gen, n, float64(density)/255)
		k, err := NewMSKernel(prog)
		if err != nil {
			t.Fatal(err)
		}
		blockSrcs := rng.New(seed + 1).SplitN(R)
		twinSrcs := rng.New(seed + 1).SplitN(R)
		block, err := k.NewBlock(R, blockSrcs)
		if err != nil {
			t.Fatal(err)
		}
		twins := make([]*MSScalar, R)
		for r := range twins {
			twins[r] = k.NewScalar(twinSrcs[r])
		}
		block.Init()
		for _, tw := range twins {
			tw.Init()
		}
		sched := MSSchedule{BetaInitial: 0.3 * betaScale, BetaFinal: 8 * betaScale, Sweeps: nSweeps}
		for s := 0; s < sched.Sweeps; s++ {
			beta := sched.beta(s)
			block.SetAllBeta(beta)
			block.Sweep()
			for r, tw := range twins {
				tw.SetBeta(beta)
				tw.Sweep()
				if math.Float64bits(block.Energy(r)) != math.Float64bits(tw.Energy()) {
					t.Fatalf("replica %d/%d diverged at sweep %d (n=%d β=%g): packed %v scalar %v",
						r, R, s, n, beta, block.Energy(r), tw.Energy())
				}
			}
		}
		for r, tw := range twins {
			ps, ss := block.Spins(r), tw.Spins()
			for i := range ps {
				if ps[i] != ss[i] {
					t.Fatalf("replica %d: final spin %d differs", r, i)
				}
			}
		}
	})
}

// ptConcurrencyCheck is shared by the -race exercise below: several ladders
// exchanging replicas on goroutine-parallel blocks must produce the same
// bits as a single-threaded run.
func ptConcurrencyCheck(t *testing.T, workers int) *PTResult {
	t.Helper()
	prog := gnpSparse(rng.New(61), 48, 0.2)
	res, err := RunPT(prog, PTParams{Rungs: 16, Ladders: 8, Sweeps: 40, SwapEvery: 2}, workers, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunPTConcurrentLadders drives concurrent replica exchange under
// multiple goroutine-parallel PT blocks (the CI race step runs this package
// with -race) and pins worker-count independence bit for bit.
func TestRunPTConcurrentLadders(t *testing.T) {
	serial := ptConcurrencyCheck(t, 1)
	for _, workers := range []int{2, 4, 8} {
		par := ptConcurrencyCheck(t, workers)
		if math.Float64bits(serial.BestEnergy) != math.Float64bits(par.BestEnergy) {
			t.Fatalf("workers=%d: best energy differs from serial run", workers)
		}
		if serial.Swaps != par.Swaps || serial.SwapAttempts != par.SwapAttempts {
			t.Fatalf("workers=%d: exchange counts differ from serial run", workers)
		}
		for l := range serial.Energies {
			if math.Float64bits(serial.Energies[l]) != math.Float64bits(par.Energies[l]) {
				t.Fatalf("workers=%d: ladder %d cold energy differs", workers, l)
			}
			for i := range serial.Samples[l].Spins {
				if serial.Samples[l].Spins[i] != par.Samples[l].Spins[i] {
					t.Fatalf("workers=%d: ladder %d spin %d differs", workers, l, i)
				}
			}
		}
	}
}

// TestPTParamValidation pins the PTParams guard rails.
func TestPTParamValidation(t *testing.T) {
	prog := gnpSparse(rng.New(63), 8, 0.5)
	bad := []PTParams{
		{Rungs: 1},
		{Rungs: MaxReplicasPerBlock + 1},
		{Ladders: -1},
		{Sweeps: -1},
		{SwapEvery: -1},
		{BetaMin: 2, BetaMax: 1},
		{InitSpins: make([]int8, prog.N+1)},
	}
	for i, p := range bad {
		if _, err := RunPT(prog, p, 1, rng.New(1)); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
	// The zero value takes full defaults and runs.
	if _, err := RunPT(prog, PTParams{}, 1, rng.New(1)); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
}
