package anneal

// Parallel tempering (replica exchange) over the multi-spin engine — the
// strongest classical stand-in for the QPU (ParaMax; Kim et al., MobiCom
// 2021). One temperature ladder packs its rungs into the bit-lanes of a
// single MSBlock: every lane holds one replica at a fixed inverse
// temperature, a sweep advances all rungs at once through the packed kernel,
// and every SwapEvery sweeps adjacent rungs attempt a replica exchange.
//
// The exchange acceptance rule is the standard detailed-balance swap: for
// rungs a and b, Δ = (β_a − β_b)·(E_a − E_b), accepted outright when Δ ≥ 0
// and with probability exp(Δ) otherwise. An accepted exchange swaps the two
// lanes' TEMPERATURES (SetBeta on each), not their configurations — the
// packed words never move, only the rung→lane assignment — so an exchange
// costs two β writes regardless of problem size. Exchange attempts alternate
// between even pairs (0,1)(2,3)… and odd pairs (1,2)(3,4)…, the usual
// non-interfering checkerboard.
//
// Ladders are independent: each gets its own source split, its own block,
// and its own exchange stream, and they run goroutine-parallel exactly like
// RunMultiSpin blocks. The run is deterministic given src regardless of
// worker count. Exchange draws use math.Exp — the exchange path runs once
// per SwapEvery·n spin visits, so it is nowhere near the sweep's hot loop.
import (
	"errors"
	"fmt"
	"math"
	"sync"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// PTParams configures a parallel-tempering run.
type PTParams struct {
	// Rungs is the number of temperature rungs per ladder (2..64); all rungs
	// of one ladder pack into the bit-lanes of one MSBlock. 0 means 16.
	Rungs int
	// Ladders is the number of independent ladders; each contributes one
	// cold-rung sample. 0 means 4.
	Ladders int
	// Sweeps is the number of Metropolis passes every rung performs.
	// 0 means 100.
	Sweeps int
	// SwapEvery is the sweep interval between exchange attempts. 0 means 2.
	SwapEvery int
	// BetaMin and BetaMax bound the geometric temperature ladder (hottest
	// and coldest rung). 0 means auto: 0.2/scale and 20/scale, where scale
	// is the program's largest |coefficient| — the same normalization the
	// device applies, so the defaults track the problem's energy scale.
	BetaMin, BetaMax float64
	// InitSpins optionally warm-starts every lane of every ladder from one
	// configuration (no randomness is consumed for initialization).
	InitSpins []int8
}

// withDefaults fills zero fields and validates.
func (p PTParams) withDefaults(prog *qubo.Sparse) (PTParams, error) {
	if p.Rungs == 0 {
		p.Rungs = 16
	}
	if p.Ladders == 0 {
		p.Ladders = 4
	}
	if p.Sweeps == 0 {
		p.Sweeps = 100
	}
	if p.SwapEvery == 0 {
		p.SwapEvery = 2
	}
	if p.BetaMin == 0 || p.BetaMax == 0 {
		scale := prog.MaxAbsCoefficient()
		if scale == 0 {
			scale = 1
		}
		if p.BetaMin == 0 {
			p.BetaMin = 0.2 / scale
		}
		if p.BetaMax == 0 {
			p.BetaMax = 20 / scale
		}
	}
	switch {
	case p.Rungs < 2 || p.Rungs > MaxReplicasPerBlock:
		return p, fmt.Errorf("anneal: %d PT rungs outside [2,%d]", p.Rungs, MaxReplicasPerBlock)
	case p.Ladders < 1:
		return p, errors.New("anneal: need at least one PT ladder")
	case p.Sweeps < 1:
		return p, errors.New("anneal: PT needs at least one sweep")
	case p.SwapEvery < 1:
		return p, errors.New("anneal: PT swap interval must be positive")
	case p.BetaMin <= 0 || p.BetaMax <= p.BetaMin:
		return p, errors.New("anneal: PT needs 0 < BetaMin < BetaMax")
	case p.InitSpins != nil && len(p.InitSpins) != prog.N:
		return p, fmt.Errorf("anneal: PT warm start has %d spins, want %d", len(p.InitSpins), prog.N)
	}
	return p, nil
}

// ladderBetas returns the geometric rung temperatures, hottest first.
func (p PTParams) ladderBetas() []float64 {
	betas := make([]float64, p.Rungs)
	lr := math.Log(p.BetaMax / p.BetaMin)
	for t := range betas {
		f := float64(t) / float64(p.Rungs-1)
		betas[t] = p.BetaMin * math.Exp(lr*f)
	}
	return betas
}

// PTResult is the outcome of one parallel-tempering run.
type PTResult struct {
	// BestSpins and BestEnergy are the lowest-energy configuration observed
	// at any exchange checkpoint on any rung of any ladder.
	BestSpins  []int8
	BestEnergy float64
	// Samples and Energies hold each ladder's final coldest-rung state.
	Samples  []Sample
	Energies []float64
	// SwapAttempts and Swaps count exchange proposals and acceptances across
	// all ladders (the acceptance ratio is the ladder-spacing health check).
	SwapAttempts, Swaps int
}

// ptLadder is one ladder's in-flight state.
type ptLadder struct {
	block *MSBlock
	exch  *rng.Source
	betas []float64 // rung temperatures, hottest first
	lane  []int     // rung → bit-lane holding that rung's replica
	// running best for this ladder
	bestEnergy float64
	bestSpins  []int8
	attempts   int
	swaps      int
}

// exchange attempts replica exchanges on adjacent rung pairs of the given
// parity (0: pairs (0,1)(2,3)…, 1: pairs (1,2)(3,4)…).
func (l *ptLadder) exchange(parity int) {
	for t := parity; t+1 < len(l.betas); t += 2 {
		a, b := l.lane[t], l.lane[t+1]
		delta := (l.betas[t] - l.betas[t+1]) * (l.block.Energy(a) - l.block.Energy(b))
		l.attempts++
		if delta < 0 && !(l.exch.Float64() < math.Exp(delta)) {
			continue
		}
		l.block.SetBeta(a, l.betas[t+1])
		l.block.SetBeta(b, l.betas[t])
		l.lane[t], l.lane[t+1] = b, a
		l.swaps++
	}
}

// checkpoint records the ladder's best configuration if any rung improved it.
func (l *ptLadder) checkpoint() {
	best := -1
	for r := 0; r < l.block.Replicas(); r++ {
		if e := l.block.Energy(r); e < l.bestEnergy {
			l.bestEnergy = e
			best = r
		}
	}
	if best >= 0 {
		l.bestSpins = l.block.Spins(best)
	}
}

// run drives one ladder to completion.
func (l *ptLadder) run(p PTParams) {
	for s := 1; s <= p.Sweeps; s++ {
		l.block.Sweep()
		if s%p.SwapEvery == 0 {
			l.exchange((s / p.SwapEvery) % 2)
			l.checkpoint()
		}
	}
	l.checkpoint()
}

// RunPT executes parallel tempering on prog and returns the best observed
// configuration plus each ladder's final cold-rung sample. Coefficients are
// taken verbatim (normalize via Machine.Scale first to mimic the device's
// analog range). Ladders run on up to `workers` goroutines (≤ 0 means one);
// the result is deterministic given src regardless of worker count.
func RunPT(prog *qubo.Sparse, params PTParams, workers int, src *rng.Source) (*PTResult, error) {
	p, err := params.withDefaults(prog)
	if err != nil {
		return nil, err
	}
	k, err := NewMSKernel(prog)
	if err != nil {
		return nil, err
	}
	betas := p.ladderBetas()
	ladders := make([]*ptLadder, p.Ladders)
	laneSrcs := src.SplitN(p.Ladders)
	for i := range ladders {
		chs := laneSrcs[i].SplitN(p.Rungs + 1)
		block, err := k.NewBlock(p.Rungs, chs[:p.Rungs])
		if err != nil {
			return nil, err
		}
		l := &ptLadder{
			block:      block,
			exch:       chs[p.Rungs],
			betas:      betas,
			lane:       make([]int, p.Rungs),
			bestEnergy: math.Inf(1),
		}
		for t := range l.lane {
			l.lane[t] = t
			block.SetBeta(t, betas[t])
		}
		if p.InitSpins != nil {
			warm := make([][]int8, p.Rungs)
			for r := range warm {
				warm[r] = p.InitSpins
			}
			if err := block.InitFrom(warm); err != nil {
				return nil, err
			}
		} else {
			block.Init()
		}
		ladders[i] = l
	}

	if workers <= 0 {
		workers = 1
	}
	if workers > len(ladders) {
		workers = len(ladders)
	}
	var wg sync.WaitGroup
	next := make(chan *ptLadder, len(ladders))
	for _, l := range ladders {
		next <- l
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range next {
				l.run(p)
			}
		}()
	}
	wg.Wait()

	res := &PTResult{
		BestEnergy: math.Inf(1),
		Samples:    make([]Sample, p.Ladders),
		Energies:   make([]float64, p.Ladders),
	}
	for i, l := range ladders {
		cold := l.lane[p.Rungs-1]
		res.Samples[i] = Sample{Spins: l.block.Spins(cold)}
		res.Energies[i] = l.block.Energy(cold)
		res.SwapAttempts += l.attempts
		res.Swaps += l.swaps
		if l.bestEnergy < res.BestEnergy {
			res.BestEnergy = l.bestEnergy
			res.BestSpins = l.bestSpins
		}
	}
	return res, nil
}
