package anneal

import (
	"errors"
	"math"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// RunReverse executes a batch of REVERSE anneals (paper §8 future work,
// Venturelli & Kondratyev [68]): instead of starting each cycle in the
// uniform superposition, the machine is initialized in a caller-supplied
// classical state (e.g. a linear detector's decision), the schedule is run
// backward from the cold end to the turning point sp, held there for the
// pause time, and then run forward to the cold end again. This performs a
// local quantum-assisted refinement around the initial state.
//
// In the simulator the analog is exact: each anneal starts from `initial`,
// heats from β_final to β(sp) over half the Ta sweep budget, holds at β(sp)
// for the Tp budget, and re-cools over the remaining half.
//
// params.PausePosition is the turning point (required, in (0,1));
// params.PauseTimeMicros may be zero for a pure down-up ramp.
func (m *Machine) RunReverse(prog *qubo.Sparse, params Params, improvedRange bool, initial []int8, src *rng.Source) ([]Sample, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.PausePosition <= 0 || params.PausePosition >= 1 {
		return nil, errors.New("anneal: reverse annealing requires a turning point in (0,1)")
	}
	if prog.N == 0 {
		return nil, errors.New("anneal: empty program")
	}
	if len(initial) != prog.N {
		return nil, errors.New("anneal: initial state length mismatch")
	}
	prepared := m.rescale(m.PrepareProgram(prog, improvedRange), prog.H)

	workers := m.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > params.NumAnneals {
		workers = params.NumAnneals
	}
	sources := src.SplitN(workers)
	samples := make([]Sample, params.NumAnneals)

	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			st := newAnnealState(prepared, m)
			for a := w; a < params.NumAnneals; a += workers {
				samples[a] = Sample{Spins: st.reverseAnneal(params, initial, sources[w])}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return samples, nil
}

// reverseAnneal performs one reverse annealing cycle.
func (st *annealState) reverseAnneal(params Params, initial []int8, src *rng.Source) []int8 {
	p := st.p
	m := st.machine

	if m.ICE.Enabled {
		for i := range p.h {
			st.hPert[i] = p.h[i] + src.Gauss(m.ICE.HMean, m.ICE.HStd)
		}
		for i := range p.edges {
			st.jPert[i] = p.edges[i].W + src.Gauss(m.ICE.JMean, m.ICE.JStd)
		}
	} else {
		copy(st.hPert, p.h)
		for i := range p.edges {
			st.jPert[i] = p.edges[i].W
		}
	}

	copy(st.spins, initial)

	rampSweeps := int(math.Round(m.SweepsPerMicrosecond * params.AnnealTimeMicros))
	if rampSweeps < 2 {
		rampSweeps = 2
	}
	half := rampSweeps / 2
	pauseSweeps := 0
	if params.PauseTimeMicros > 0 {
		pauseSweeps = int(math.Round(m.SweepsPerMicrosecond * params.PauseTimeMicros))
	}
	// β at the turning point: the same geometric schedule position as the
	// forward anneal's pause.
	logRatio := math.Log(m.BetaFinal / m.BetaInitial)
	betaAt := func(s float64) float64 { return m.BetaInitial * math.Exp(logRatio*s) }
	betaTurn := betaAt(params.PausePosition)

	// Heat: β_final → β_turn.
	for k := 0; k < half; k++ {
		f := float64(k) / float64(half)
		st.sweep(m.BetaFinal+f*(betaTurn-m.BetaFinal), src)
	}
	// Hold at the turning point.
	for k := 0; k < pauseSweeps; k++ {
		st.sweep(betaTurn, src)
	}
	// Re-cool: β_turn → β_final.
	for k := 0; k < rampSweeps-half; k++ {
		f := float64(k) / float64(rampSweeps-half)
		st.sweep(betaTurn+f*(m.BetaFinal-betaTurn), src)
	}
	out := make([]int8, p.n)
	copy(out, st.spins)
	return out
}
