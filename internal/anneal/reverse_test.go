package anneal

import (
	"math"
	"testing"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

func TestRunReverseValidation(t *testing.T) {
	m := NewMachine()
	prog := qubo.NewSparse(4)
	prog.AddEdge(0, 1, -1)
	good := Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 2}
	init := []int8{1, 1, 1, 1}
	if _, err := m.RunReverse(prog, good, false, init, rng.New(1)); err != nil {
		t.Fatalf("valid reverse run failed: %v", err)
	}
	noTurn := Params{AnnealTimeMicros: 1, NumAnneals: 2}
	if _, err := m.RunReverse(prog, noTurn, false, init, rng.New(1)); err == nil {
		t.Fatal("missing turning point accepted")
	}
	if _, err := m.RunReverse(prog, good, false, []int8{1}, rng.New(1)); err == nil {
		t.Fatal("wrong init length accepted")
	}
	if _, err := m.RunReverse(qubo.NewSparse(0), good, false, nil, rng.New(1)); err == nil {
		t.Fatal("empty program accepted")
	}
}

// Reverse annealing seeded AT the ground state of an easy problem must
// mostly stay there (local refinement, not a restart).
func TestRunReverseStaysNearGoodSeed(t *testing.T) {
	m := NewMachine()
	m.ICE.Enabled = false
	prog := qubo.NewSparse(12)
	for i := 0; i < 11; i++ {
		prog.AddEdge(i, i+1, -1)
	}
	prog.H[0] = -0.5 // ground state all +1
	init := make([]int8, 12)
	for i := range init {
		init[i] = 1
	}
	params := Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 60}
	samples, err := m.RunReverse(prog, params, false, init, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	stay := 0
	for _, s := range samples {
		ok := true
		for _, v := range s.Spins {
			if v != 1 {
				ok = false
			}
		}
		if ok {
			stay++
		}
	}
	if stay < 40 {
		t.Fatalf("reverse annealing kept the perfect seed only %d/60 times", stay)
	}
}

// Reverse annealing must be deterministic given the seed.
func TestRunReverseDeterministic(t *testing.T) {
	m := NewMachine()
	prog := qubo.NewSparse(6)
	for i := 0; i < 5; i++ {
		prog.AddEdge(i, i+1, -0.7)
	}
	init := []int8{1, -1, 1, -1, 1, -1}
	params := Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.3, NumAnneals: 10}
	a, err := m.RunReverse(prog, params, false, init, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RunReverse(prog, params, false, init, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for k := range a[i].Spins {
			if a[i].Spins[k] != b[i].Spins[k] {
				t.Fatal("reverse run not deterministic")
			}
		}
	}
}

// Rescaling a program by a constant must not change which configuration is
// the ground state the annealer prefers (the auto-scale invariance the
// hardware relies on).
func TestScaleInvarianceOfPreferredState(t *testing.T) {
	src := rng.New(4)
	base := qubo.NewSparse(10)
	for i := 0; i < 10; i++ {
		base.H[i] = src.Gauss(0, 0.3)
		for j := i + 1; j < 10 && j < i+3; j++ {
			base.AddEdge(i, j, src.Gauss(0, 0.3))
		}
	}
	scaled := base.Clone()
	for i := range scaled.H {
		scaled.H[i] *= 7
	}
	for i := range scaled.Edges {
		scaled.Edges[i].W *= 7
	}
	m := NewMachine()
	m.ICE.Enabled = false
	params := Params{AnnealTimeMicros: 2, NumAnneals: 200}

	count := func(p *qubo.Sparse) map[string]int {
		samples, err := m.Run(p, params, false, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		c := map[string]int{}
		for _, s := range samples {
			key := make([]byte, len(s.Spins))
			for i, v := range s.Spins {
				if v > 0 {
					key[i] = 1
				}
			}
			c[string(key)]++
		}
		return c
	}
	a := count(base)
	b := count(scaled)
	bestOf := func(c map[string]int) string {
		bk, bv := "", -1
		for k, v := range c {
			if v > bv {
				bk, bv = k, v
			}
		}
		return bk
	}
	// The modal configuration must agree: the auto-scale divides the scaled
	// program back into range, leaving identical dynamics.
	if bestOf(a) != bestOf(b) {
		t.Fatal("auto-scaling changed the preferred configuration")
	}
}

// ICE noise must measurably perturb outcomes relative to a noiseless run on
// a precision-sensitive program (the §4 precision-squeeze mechanism).
func TestICEPerturbsOutcomes(t *testing.T) {
	src := rng.New(6)
	prog := qubo.NewSparse(16)
	for i := 0; i < 16; i++ {
		// Coefficients ~10× the ICE magnitudes: solvable when clean, but
		// each anneal's perturbation visibly erodes the success rate.
		prog.H[i] = src.Gauss(0, 0.1)
		if i > 0 {
			prog.AddEdge(i-1, i, -0.2)
		}
	}
	params := Params{AnnealTimeMicros: 1, NumAnneals: 600}
	groundRate := func(ice bool, seed int64) float64 {
		m := NewMachine()
		m.ICE.Enabled = ice
		samples, err := m.Run(prog, params, false, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		dense := prog.ToDense()
		gs, ge := qubo.BruteForceIsing(dense)
		_ = gs
		hits := 0
		for _, s := range samples {
			if math.Abs(dense.Energy(s.Spins)-ge) < 1e-9 {
				hits++
			}
		}
		return float64(hits) / float64(len(samples))
	}
	clean := groundRate(false, 7)
	noisy := groundRate(true, 7)
	if noisy >= clean {
		t.Fatalf("ICE should reduce ground-state rate on a precision-limited program: %.3f (ICE) vs %.3f (clean)", noisy, clean)
	}
}
