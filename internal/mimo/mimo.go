// Package mimo assembles end-to-end multi-user MIMO uplink channel uses
// (paper §2.1): Nt single-antenna users Gray-map data bits onto constellation
// symbols v̄, which arrive at the Nr-antenna AP as y = Hv̄ + n. An Instance
// bundles the ground truth a decoder is evaluated against.
package mimo

import (
	"fmt"
	"math"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Config describes an instance family.
type Config struct {
	Mod     modulation.Modulation
	Nt, Nr  int           // users and AP antennas (paper evaluates Nt = Nr)
	Channel channel.Model // channel draw per instance
	// SNRdB is the receive SNR; math.Inf(1) disables channel noise (the §5.3
	// annealer-noise-only scenarios).
	SNRdB float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nt < 1 {
		return fmt.Errorf("mimo: need at least one user, got %d", c.Nt)
	}
	if c.Nr < c.Nt {
		return fmt.Errorf("mimo: Nr (%d) must be ≥ Nt (%d) for uplink detection", c.Nr, c.Nt)
	}
	if c.Channel == nil {
		return fmt.Errorf("mimo: nil channel model")
	}
	return nil
}

// Instance is one channel use with ground truth.
type Instance struct {
	Mod       modulation.Modulation
	Nt, Nr    int
	H         *linalg.Mat
	TxBits    []byte // Gray-coded data bits, Nt·BitsPerSymbol
	TxSymbols []complex128
	Y         []complex128 // received vector (noise applied)
	Sigma     float64      // per-antenna complex noise std actually applied
	SNRdB     float64      // requested SNR (+Inf = noise-free)
}

// Generate draws one instance: random bits, a fresh channel, AWGN at the
// configured SNR.
func Generate(src *rng.Source, cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := cfg.Channel.Generate(src, cfg.Nr, cfg.Nt)
	bits := src.Bits(cfg.Nt * cfg.Mod.BitsPerSymbol())
	return FromParts(src, cfg, h, bits)
}

// FromParts builds an instance from a fixed channel and fixed bits, drawing
// only the noise — the §5.4 methodology (fixed channel and bit string, many
// AWGN draws).
func FromParts(src *rng.Source, cfg Config, h *linalg.Mat, bits []byte) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(bits) != cfg.Nt*cfg.Mod.BitsPerSymbol() {
		return nil, fmt.Errorf("mimo: %d bits for %d users of %v", len(bits), cfg.Nt, cfg.Mod)
	}
	v := cfg.Mod.MapGrayVector(bits)
	y := linalg.MulVec(h, v)
	sigma := 0.0
	if !math.IsInf(cfg.SNRdB, 1) {
		sigma = channel.NoiseSigma(cfg.Mod, cfg.Nt, cfg.SNRdB)
		y = channel.AddAWGN(src, y, sigma)
	}
	return &Instance{
		Mod: cfg.Mod, Nt: cfg.Nt, Nr: cfg.Nr,
		H: h, TxBits: bits, TxSymbols: v, Y: y,
		Sigma: sigma, SNRdB: cfg.SNRdB,
	}, nil
}

// NoiseVariance returns σ², the per-antenna complex noise power.
func (in *Instance) NoiseVariance() float64 { return in.Sigma * in.Sigma }

// BitErrors counts mismatches between rxBits and the transmitted bits.
func (in *Instance) BitErrors(rxBits []byte) int {
	if len(rxBits) != len(in.TxBits) {
		panic("mimo: bit length mismatch")
	}
	n := 0
	for i := range rxBits {
		if rxBits[i] != in.TxBits[i] {
			n++
		}
	}
	return n
}

// BER returns BitErrors normalized by the bit count.
func (in *Instance) BER(rxBits []byte) float64 {
	return float64(in.BitErrors(rxBits)) / float64(len(in.TxBits))
}

// TxQUBOBits returns the QUBO variable assignment corresponding to the
// transmitted symbols under the QuAMax transform — the ground-truth solution
// of the reduced problem (footnote 7's omniscient reference).
func (in *Instance) TxQUBOBits() []byte {
	return in.Mod.GrayToQuAMaxBits(in.TxBits)
}

// NumVariables returns the reduced problem size N = Nt·log2|O|.
func (in *Instance) NumVariables() int { return in.Nt * in.Mod.BitsPerSymbol() }
