package mimo

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func cfg(mod modulation.Modulation, nt int, snr float64) Config {
	return Config{Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snr}
}

func TestGenerateShapes(t *testing.T) {
	src := rng.New(91)
	in, err := Generate(src, cfg(modulation.QPSK, 6, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.TxBits) != 12 || len(in.TxSymbols) != 6 || len(in.Y) != 6 {
		t.Fatalf("shapes: bits=%d syms=%d y=%d", len(in.TxBits), len(in.TxSymbols), len(in.Y))
	}
	if in.NumVariables() != 12 {
		t.Fatalf("NumVariables = %d", in.NumVariables())
	}
	if in.Sigma <= 0 {
		t.Fatal("noise should be applied at finite SNR")
	}
	if in.NoiseVariance() != in.Sigma*in.Sigma {
		t.Fatal("NoiseVariance inconsistent")
	}
}

func TestNoiseFree(t *testing.T) {
	src := rng.New(92)
	in, err := Generate(src, cfg(modulation.BPSK, 4, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if in.Sigma != 0 {
		t.Fatal("noise-free instance has noise")
	}
	want := linalg.MulVec(in.H, in.TxSymbols)
	for i := range want {
		if in.Y[i] != want[i] {
			t.Fatal("Y != H·v for noise-free instance")
		}
	}
}

func TestValidation(t *testing.T) {
	src := rng.New(93)
	if _, err := Generate(src, Config{Mod: modulation.BPSK, Nt: 0, Nr: 1, Channel: channel.Rayleigh{}}); err == nil {
		t.Fatal("Nt=0 accepted")
	}
	if _, err := Generate(src, Config{Mod: modulation.BPSK, Nt: 4, Nr: 2, Channel: channel.Rayleigh{}}); err == nil {
		t.Fatal("Nr<Nt accepted")
	}
	if _, err := Generate(src, Config{Mod: modulation.BPSK, Nt: 2, Nr: 2}); err == nil {
		t.Fatal("nil channel accepted")
	}
	if _, err := FromParts(src, cfg(modulation.QPSK, 2, 20), linalg.Identity(2), []byte{1}); err == nil {
		t.Fatal("wrong bit count accepted")
	}
}

func TestBitErrorAccounting(t *testing.T) {
	src := rng.New(94)
	in, _ := Generate(src, cfg(modulation.BPSK, 4, 20))
	if in.BitErrors(in.TxBits) != 0 || in.BER(in.TxBits) != 0 {
		t.Fatal("truth should have zero errors")
	}
	flipped := append([]byte(nil), in.TxBits...)
	flipped[0] ^= 1
	flipped[3] ^= 1
	if in.BitErrors(flipped) != 2 {
		t.Fatalf("BitErrors = %d, want 2", in.BitErrors(flipped))
	}
	if math.Abs(in.BER(flipped)-0.5) > 1e-12 {
		t.Fatalf("BER = %g, want 0.5", in.BER(flipped))
	}
}

func TestTxQUBOBitsMapToTxSymbols(t *testing.T) {
	src := rng.New(95)
	for _, mod := range modulation.All() {
		in, err := Generate(src, cfg(mod, 3, 20))
		if err != nil {
			t.Fatal(err)
		}
		qb := in.TxQUBOBits()
		q := mod.BitsPerSymbol()
		for u := 0; u < in.Nt; u++ {
			got := mod.QuAMaxTransform(qb[u*q : (u+1)*q])
			if got != in.TxSymbols[u] {
				t.Fatalf("%v user %d: QUBO bits map to %v, tx was %v", mod, u, got, in.TxSymbols[u])
			}
		}
	}
}

func TestFromPartsFixedChannelFixedBits(t *testing.T) {
	src := rng.New(96)
	h := channel.RandomPhase{}.Generate(src, 4, 4)
	bits := []byte{1, 0, 1, 1}
	a, err := FromParts(src, cfg(modulation.BPSK, 4, 15), h, bits)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromParts(src, cfg(modulation.BPSK, 4, 15), h, bits)
	if err != nil {
		t.Fatal(err)
	}
	// Same channel and bits, different noise draws.
	if linalg.MaxAbsDiff(a.H, b.H) != 0 {
		t.Fatal("channel should be identical")
	}
	same := true
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			same = false
		}
	}
	if same {
		t.Fatal("noise draws should differ between instances")
	}
}
