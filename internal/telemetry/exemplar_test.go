package telemetry

import (
	"testing"
	"time"
)

// finishWithSlack completes one deadline-bearing trace with the given slack.
func finishWithSlack(r *Recorder, class string, slack float64) {
	r.FinishTrace(Trace{
		Class:          class,
		DeadlineMicros: 1000,
		SlackMicros:    slack,
		Stages:         [NumStages]float64{StageE2E: 1000 - slack},
	})
}

// The recorder pins the worst-slack traces of each window, worst first, and
// caps the set at the configured count.
func TestExemplarsWorstN(t *testing.T) {
	r := New(Config{RingSize: 8, ExemplarCount: 3, ExemplarWindow: 100, Now: testClock(time.Unix(0, 0))})
	slacks := []float64{500, -30, 200, -900, 100, -5, 700, 42}
	for _, s := range slacks {
		finishWithSlack(r, "QPSK/4", s)
	}
	ex := r.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("pinned %d exemplars, want 3", len(ex))
	}
	want := []float64{-900, -30, -5}
	for i, s := range want {
		if ex[i].SlackMicros != s {
			t.Fatalf("exemplar %d has slack %g, want %g (got %+v)", i, ex[i].SlackMicros, s, ex)
		}
	}
}

// Deadline-free traces rank by end-to-end latency: the slowest requests are
// the exemplars.
func TestExemplarsLatencyFallback(t *testing.T) {
	r := New(Config{RingSize: 8, ExemplarCount: 2, Now: testClock(time.Unix(0, 0))})
	for _, e2e := range []float64{10, 5000, 40, 900, 120} {
		r.FinishTrace(Trace{Class: "QPSK/4", Stages: [NumStages]float64{StageE2E: e2e}})
	}
	ex := r.Exemplars()
	if len(ex) != 2 || ex[0].Stages[StageE2E] != 5000 || ex[1].Stages[StageE2E] != 900 {
		t.Fatalf("latency exemplars wrong: %+v", ex)
	}
}

// On the window boundary the current set is promoted to pinned and a fresh
// window starts; Exemplars reports both, so a regression spotted late in the
// previous window is still named while the new window fills.
func TestExemplarWindowRotation(t *testing.T) {
	r := New(Config{RingSize: 4, ExemplarCount: 2, ExemplarWindow: 4, Now: testClock(time.Unix(0, 0))})
	for _, s := range []float64{100, -777, 300, 200} { // window 1 (seq 1..4)
		finishWithSlack(r, "QPSK/4", s)
	}
	for _, s := range []float64{50, -42} { // window 2 in progress
		finishWithSlack(r, "QPSK/4", s)
	}
	ex := r.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("%d exemplars across windows, want 2 pinned + 2 current", len(ex))
	}
	if ex[0].SlackMicros != -777 || ex[1].SlackMicros != -42 {
		t.Fatalf("worst-first order lost across windows: %+v", ex)
	}
}

// The pinned set survives ring wrap-around — that is its purpose: the ring
// holds the most recent traces, the exemplars hold the worst ones.
func TestExemplarsSurviveRingWrap(t *testing.T) {
	r := New(Config{RingSize: 4, ExemplarCount: 1, ExemplarWindow: 1000, Now: testClock(time.Unix(0, 0))})
	finishWithSlack(r, "QPSK/4", -12345) // the regression
	for i := 0; i < 20; i++ {            // wraps the 4-slot ring many times over
		finishWithSlack(r, "QPSK/4", 100)
	}
	for _, tr := range r.Traces() {
		if tr.SlackMicros == -12345 {
			t.Fatal("setup: ring still holds the regression trace")
		}
	}
	ex := r.Exemplars()
	if len(ex) != 1 || ex[0].SlackMicros != -12345 {
		t.Fatalf("regression trace lost after ring wrap: %+v", ex)
	}
}

// A negative ExemplarCount disables pinning; zero takes the default; the
// nil recorder stays safe.
func TestExemplarConfig(t *testing.T) {
	off := New(Config{RingSize: 4, ExemplarCount: -1, Now: testClock(time.Unix(0, 0))})
	finishWithSlack(off, "QPSK/4", -999)
	if got := off.Exemplars(); len(got) != 0 {
		t.Fatalf("disabled recorder pinned %d exemplars", len(got))
	}
	def := New(Config{RingSize: 4, Now: testClock(time.Unix(0, 0))})
	if def.exCount != DefaultExemplarCount || def.exWindow != DefaultExemplarWindow {
		t.Fatalf("defaults not applied: count=%d window=%d", def.exCount, def.exWindow)
	}
	var nilRec *Recorder
	if nilRec.Exemplars() != nil {
		t.Fatal("nil recorder returned exemplars")
	}
}

// The shutdown dump carries the exemplars alongside the ring.
func TestDumpCarriesExemplars(t *testing.T) {
	r := New(Config{RingSize: 2, ExemplarCount: 1, ExemplarWindow: 100, Now: testClock(time.Unix(0, 0))})
	finishWithSlack(r, "QPSK/4", -77)
	finishWithSlack(r, "QPSK/4", 10)
	finishWithSlack(r, "QPSK/4", 20)
	d := BuildDump(r, nil)
	if len(d.Exemplars) != 1 || d.Exemplars[0].SlackMicros != -77 {
		t.Fatalf("dump exemplars: %+v", d.Exemplars)
	}
}
