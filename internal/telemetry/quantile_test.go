package telemetry

import (
	"math"
	"testing"
)

// Quantile edge cases the serving paths actually hit: empty histograms
// (freshly started shards), single-bucket mass (a constant-latency stage),
// the underflow and overflow buckets (sub-base and +Inf observations), and
// quantiles over merged snapshots (the multi-shard rollup).

func TestQuantileEmpty(t *testing.T) {
	var empty Hist
	for _, p := range []float64{0, 50, 99, 100} {
		if got := empty.Quantile(p); !math.IsNaN(got) {
			t.Fatalf("empty Quantile(%g) = %g, want NaN", p, got)
		}
	}
	if got := empty.Mean(); !math.IsNaN(got) {
		t.Fatalf("empty Mean = %g, want NaN", got)
	}
	// A wire-decoded snapshot can carry Count without bucket detail
	// (sparse encoding of an all-zero list); quantiles stay NaN rather
	// than inventing a shape.
	headerOnly := Hist{Count: 5, Sum: 10, Min: 1, Max: 3}
	if got := headerOnly.Quantile(50); !math.IsNaN(got) {
		t.Fatalf("bucket-less Quantile(50) = %g, want NaN", got)
	}
}

func TestQuantileSingleBucketMass(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	s := h.Snapshot()
	nonzero := 0
	for _, c := range s.Counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("constant stream filled %d buckets", nonzero)
	}
	// With all mass in one bucket the exact extrema pin every quantile to
	// the true value — interpolation cannot wander inside the bucket.
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := s.Quantile(p); got != 42 {
			t.Fatalf("Quantile(%g) = %g, want 42", p, got)
		}
	}
}

func TestQuantileUnderflowBucket(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0, -3, 0.01, HistBase} {
		h.Observe(v) // all at or below the base: bucket 0, negatives clamped
	}
	s := h.Snapshot()
	if s.Counts[0] != 4 || s.Count != 4 {
		t.Fatalf("underflow observations not in bucket 0: %+v", s)
	}
	if s.Min != 0 {
		t.Fatalf("Min = %g, want 0 (negative clamps to zero)", s.Min)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %g, want exact Min 0", got)
	}
	for _, p := range []float64{50, 99, 100} {
		got := s.Quantile(p)
		if got < 0 || got > HistBase {
			t.Fatalf("Quantile(%g) = %g outside bucket 0's range [0, %g]", p, got, HistBase)
		}
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(1))
	s := h.Snapshot()
	if s.Counts[NumBuckets-1] != 2 {
		t.Fatalf("+Inf observations not in the catch-all bucket: %+v", s.Counts)
	}
	// Quantiles inside the unbounded bucket report the clamped Max (the
	// largest finite bucket bound) — never +Inf or NaN.
	for _, p := range []float64{60, 99, 100} {
		got := s.Quantile(p)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(%g) = %g in the overflow bucket", p, got)
		}
		if got != s.Max {
			t.Fatalf("Quantile(%g) = %g, want clamped Max %g", p, got, s.Max)
		}
	}
	if got := s.Quantile(10); got != 1 {
		t.Fatalf("Quantile(10) = %g, want the finite observation 1", got)
	}
}

// Quantiles over a merged snapshot match quantiles over one histogram that
// saw both streams — the property the multi-shard stats rollup relies on.
func TestMergeThenQuantileEquivalence(t *testing.T) {
	var a, b, both Histogram
	va := []float64{0.05, 1, 2, 8, 30, 400, 1e4}
	vb := []float64{0.5, 3, 3, 90, 2e5, math.Inf(1)}
	for _, v := range va {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range vb {
		b.Observe(v)
		both.Observe(v)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	w := both.Snapshot()
	for _, p := range []float64{0, 10, 25, 50, 75, 95, 99, 100} {
		got, want := m.Quantile(p), w.Quantile(p)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("Quantile(%g): merged %g, combined %g", p, got, want)
		}
	}
	// Merging an empty snapshot changes nothing.
	for _, p := range []float64{25, 50, 95} {
		if got := m.Merge(Hist{}).Quantile(p); got != m.Quantile(p) {
			t.Fatalf("Quantile(%g) moved after merging empty: %g vs %g", p, got, m.Quantile(p))
		}
	}
}
