package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"quamax/internal/metrics"
)

// PoolStatsFunc supplies the pool counters for export; ok=false means no
// pool is attached (library-only recorders) and pool metrics are omitted.
type PoolStatsFunc func() (metrics.PoolStats, bool)

// HealthStatsFunc supplies the solver-health plane's view for export; an
// Empty() result means no health plane is attached and health metrics are
// omitted.
type HealthStatsFunc func() metrics.HealthStats

// Mux returns the telemetry HTTP handler quamax-serve mounts on
// -telemetry-addr: Prometheus text exposition at /metrics, the runtime
// profiler under /debug/pprof/, and the retained trace ring as JSON at
// /traces (?exemplars=1 returns the pinned worst-slack exemplars instead —
// the requests behind the p99, which survive ring wrap-around). pool and
// health may be nil.
func Mux(r *Recorder, pool PoolStatsFunc, health HealthStatsFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var ps *metrics.PoolStats
		if pool != nil {
			if s, ok := pool(); ok {
				ps = &s
			}
		}
		var hs *metrics.HealthStats
		if health != nil {
			if h := health(); !h.Empty() {
				hs = &h
			}
		}
		WritePrometheus(w, r.Snapshot(), ps, hs)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if req.URL.Query().Get("exemplars") == "1" {
			_ = enc.Encode(r.Exemplars())
			return
		}
		_ = enc.Encode(r.Traces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WritePrometheus renders a Snapshot (and optionally PoolStats and
// HealthStats) in the Prometheus text exposition format, version 0.0.4:
// HELP/TYPE headers, cumulative le-labeled histogram buckets ending at +Inf,
// and _sum/_count series. sn may be nil (nothing telemetry-side is written);
// pool and health may be nil. Every labeled family is emitted in sorted
// label order so successive scrapes diff cleanly.
func WritePrometheus(w io.Writer, sn *Snapshot, pool *metrics.PoolStats, health *metrics.HealthStats) {
	if sn != nil {
		writeGauge(w, "quamax_uptime_seconds", "Seconds since the telemetry recorder was created.", sn.UptimeMicros/1e6)
		writeCounter(w, "quamax_traces_finished_total", "Requests traced to completion, by outcome.",
			series{`outcome="ok"`, float64(sn.Finished)}, series{`outcome="failed"`, float64(sn.Failed)})
		writeCounter(w, "quamax_compile_cache_total", "Channel compilations by cache outcome.",
			series{`result="hit"`, float64(sn.CompileHits)}, series{`result="miss"`, float64(sn.CompileMisses)})
		for i := range sn.Stages {
			writeHist(w, "quamax_stage_latency_micros", "Per-stage request latency in microseconds.",
				fmt.Sprintf("stage=%q", Stage(i).String()), sn.Stages[i], i == 0)
		}
		writeHist(w, "quamax_fronthaul_wire_micros", "Server-side fronthaul request wall time in microseconds.", "", sn.Wire, true)
		writeHist(w, "quamax_deadline_slack_micros", "Deadline slack (met) or lateness (missed) in microseconds.",
			`outcome="met"`, sn.SlackMet, true)
		writeHist(w, "quamax_deadline_slack_micros", "", `outcome="missed"`, sn.SlackMissed, false)
		classes := make([]string, 0, len(sn.Quality))
		for c := range sn.Quality {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for i, c := range classes {
			q := sn.Quality[c]
			label := fmt.Sprintf("class=%q", c)
			first := i == 0
			writeCounterL(w, "quamax_quality_solves_total", "Anneal solves observed per class.", label, float64(q.Solves), first)
			writeCounterL(w, "quamax_quality_reads_total", "Anneal reads taken per class.", label, float64(q.Reads), first)
			writeCounterL(w, "quamax_quality_chain_breaks_total", "Broken embedding chains per class.", label, float64(q.ChainBreaks), first)
			writeCounterL(w, "quamax_quality_llr_bits_total", "Soft bits emitted per class.", label, float64(q.LLRBits), first)
			writeCounterL(w, "quamax_quality_llr_saturated_total", "Soft bits that hit the LLR clamp per class.", label, float64(q.LLRSaturated), first)
			writeHist(w, "quamax_quality_best_energy", "Distribution of |best Ising energy| per solve.", label, q.BestEnergy, first)
		}
	}
	if pool != nil {
		writeGauge(w, "quamax_pool_queue_depth", "Problems waiting for a pool worker.", float64(pool.QueueDepth))
		writeGauge(w, "quamax_pool_slot_occupancy", "Mean fraction of embedding slots filled per batched run.", pool.SlotOccupancy)
		writeCounterL(w, "quamax_pool_submitted_total", "Problems accepted by the scheduler.", "", float64(pool.Submitted), true)
		writeCounterL(w, "quamax_pool_completed_total", "Problems solved by pool or fallback.", "", float64(pool.Completed), true)
		writeCounterL(w, "quamax_pool_failed_total", "Problems that returned an error.", "", float64(pool.Failed), true)
		writeCounterL(w, "quamax_pool_fallback_total", "Problems routed to the classical fallback.", "", float64(pool.FallbackDispatches), true)
		writeCounterL(w, "quamax_pool_planner_classical_total", "Fallbacks the QoS planner denied outright.", "", float64(pool.PlannerClassical), true)
		writeCounterL(w, "quamax_pool_deadline_misses_total", "Results delivered after their deadline.", "", float64(pool.DeadlineMisses), true)
		writeCounterL(w, "quamax_pool_batch_runs_total", "Annealer runs carrying more than one problem.", "", float64(pool.BatchRuns), true)
		writeCounterL(w, "quamax_pool_batched_problems_total", "Problems carried by batched runs.", "", float64(pool.BatchedProblems), true)
		writeCounterL(w, "quamax_pool_soft_solved_total", "Completed soft-output decodes.", "", float64(pool.SoftSolved), true)
		writeCounterL(w, "quamax_pool_llr_saturations_total", "LLR entries that hit the clamp.", "", float64(pool.LLRSaturations), true)
		writeCounter(w, "quamax_channel_cache_total", "Compiled-channel cache traffic.",
			series{`event="hit"`, float64(pool.ChannelCache.Hits)},
			series{`event="miss"`, float64(pool.ChannelCache.Misses)},
			series{`event="eviction"`, float64(pool.ChannelCache.Evictions)})
		// Sort per-backend series by name: PoolStats carries them in pool
		// order, which varies across deployments; sorted emission keeps
		// successive scrapes (and scrapes of different shard layouts)
		// diffable.
		backends := append([]metrics.BackendStats(nil), pool.Backends...)
		sort.Slice(backends, func(i, j int) bool { return backends[i].Name < backends[j].Name })
		for i, be := range backends {
			label := fmt.Sprintf("backend=%q", be.Name)
			first := i == 0
			writeCounterL(w, "quamax_backend_solved_total", "Problems solved per backend.", label, float64(be.Solved), first)
			writeCounterL(w, "quamax_backend_errors_total", "Problems failed per backend.", label, float64(be.Errors), first)
			writeCounterL(w, "quamax_backend_busy_micros_total", "Cumulative Solve wall time per backend.", label, be.BusyMicros, first)
			writeCounterL(w, "quamax_backend_spend_microusd_total", "Cumulative solve spend per backend in micro-USD.", label, be.SpendMicroUSD, first)
			writeCounterL(w, "quamax_backend_energy_millij_total", "Cumulative solve energy per backend in millijoules.", label, be.EnergyMilliJ, first)
			if first {
				fmt.Fprintf(w, "# HELP quamax_backend_utilization Busy time over scheduler lifetime per backend.\n# TYPE quamax_backend_utilization gauge\n")
			}
			fmt.Fprintf(w, "quamax_backend_utilization{%s} %s\n", label, promFloat(be.Utilization))
		}
	}
	if health != nil {
		writeHealth(w, health)
	}
}

// writeHealth renders the solver-health plane: one state gauge and one
// drift-score gauge per backend (name-sorted), and the per-shard SLO burn
// rates with their alerting verdicts.
func writeHealth(w io.Writer, hs *metrics.HealthStats) {
	backends := append([]metrics.BackendHealth(nil), hs.Backends...)
	sort.Slice(backends, func(i, j int) bool { return backends[i].Name < backends[j].Name })
	for i, b := range backends {
		label := fmt.Sprintf("backend=%q", b.Name)
		if i == 0 {
			fmt.Fprintf(w, "# HELP quamax_backend_health Backend health state: 0 healthy, 1 degraded, 2 quarantined.\n# TYPE quamax_backend_health gauge\n")
		}
		fmt.Fprintf(w, "quamax_backend_health{%s} %d\n", label, b.State)
	}
	for i, b := range backends {
		label := fmt.Sprintf("backend=%q", b.Name)
		if i == 0 {
			fmt.Fprintf(w, "# HELP quamax_backend_health_score Page-Hinkley drift score per backend.\n# TYPE quamax_backend_health_score gauge\n")
		}
		fmt.Fprintf(w, "quamax_backend_health_score{%s} %s\n", label, promFloat(b.Score))
	}
	for i, b := range backends {
		label := fmt.Sprintf("backend=%q", b.Name)
		first := i == 0
		writeCounterL(w, "quamax_backend_canary_total", "Canary probe outcomes per backend.",
			label+`,result="pass"`, float64(b.CanaryPass), first)
		writeCounterL(w, "quamax_backend_canary_total", "", label+`,result="fail"`, float64(b.CanaryFail), false)
	}
	for i, s := range hs.Shards {
		shard := fmt.Sprintf("shard=%q", strconv.Itoa(i))
		if i == 0 {
			fmt.Fprintf(w, "# HELP quamax_slo_burn_rate Per-shard SLO burn rate (raw event rate) by budget and window.\n# TYPE quamax_slo_burn_rate gauge\n")
		}
		fmt.Fprintf(w, "quamax_slo_burn_rate{%s,slo=\"miss\",window=\"fast\"} %s\n", shard, promFloat(s.FastMissRate))
		fmt.Fprintf(w, "quamax_slo_burn_rate{%s,slo=\"miss\",window=\"slow\"} %s\n", shard, promFloat(s.SlowMissRate))
		fmt.Fprintf(w, "quamax_slo_burn_rate{%s,slo=\"ber\",window=\"fast\"} %s\n", shard, promFloat(s.FastBERRate))
		fmt.Fprintf(w, "quamax_slo_burn_rate{%s,slo=\"ber\",window=\"slow\"} %s\n", shard, promFloat(s.SlowBERRate))
	}
	for i, s := range hs.Shards {
		shard := fmt.Sprintf("shard=%q", strconv.Itoa(i))
		if i == 0 {
			fmt.Fprintf(w, "# HELP quamax_slo_alerting Multi-window burn-rate alert per shard (1 = shedding-eligible).\n# TYPE quamax_slo_alerting gauge\n")
		}
		alert := 0
		if s.Alerting {
			alert = 1
		}
		fmt.Fprintf(w, "quamax_slo_alerting{%s} %d\n", shard, alert)
	}
	for i, s := range hs.Shards {
		shard := fmt.Sprintf("shard=%q", strconv.Itoa(i))
		writeCounterL(w, "quamax_shard_sheds_total", "Dispatches refused under backpressure per shard.", shard, float64(s.Sheds), i == 0)
	}
}

type series struct {
	labels string
	value  float64
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

func writeCounter(w io.Writer, name, help string, ss ...series) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, s := range ss {
		fmt.Fprintf(w, "%s{%s} %s\n", name, s.labels, promFloat(s.value))
	}
}

// writeCounterL writes one labeled counter sample, emitting the HELP/TYPE
// header only when head is true (so repeated label values share one header).
func writeCounterL(w io.Writer, name, help string, labels string, v float64, head bool) {
	if head {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, promFloat(v))
}

// writeHist renders one Hist as a Prometheus histogram: cumulative buckets
// for every nonzero-delta bound plus the mandatory le="+Inf", then _sum and
// _count. Empty histograms still emit the +Inf bucket and zero _sum/_count so
// the series exists from first scrape.
func writeHist(w io.Writer, name, help, labels string, h Hist, head bool) {
	if head {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	join := func(extra string) string {
		switch {
		case labels == "":
			return extra
		case extra == "":
			return labels
		default:
			return labels + "," + extra
		}
	}
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		bound := "+Inf"
		if !math.IsInf(bucketBounds[i], 1) {
			bound = promFloat(bucketBounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, join(fmt.Sprintf("le=%q", bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, join(`le="+Inf"`), h.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
}

// promFloat formats a value per the exposition format (no exponent-less
// digit spam, +Inf/-Inf/NaN spellings).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
