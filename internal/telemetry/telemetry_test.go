package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"quamax/internal/metrics"
)

func TestBucketIndexMonotone(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", got)
	}
	prev := -1
	for v := 0.01; v < 1e13; v *= 1.07 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d < %d", v, i, prev)
		}
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, i)
		}
		if i < NumBuckets-1 && v > bucketBounds[i] {
			t.Fatalf("value %g above its bucket bound %g (bucket %d)", v, bucketBounds[i], i)
		}
		if i > 0 && v <= bucketBounds[i-1] {
			t.Fatalf("value %g at or below previous bound %g (bucket %d)", v, bucketBounds[i-1], i)
		}
		prev = i
	}
	if got := bucketIndex(math.Inf(1)); got != NumBuckets-1 {
		t.Fatalf("bucketIndex(+Inf) = %d, want %d", got, NumBuckets-1)
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Counts != nil {
		t.Fatalf("empty snapshot not empty: %+v", s)
	}
	vals := []float64{0.05, 1, 10, 10, 250, 9e3}
	for _, v := range vals {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	h.Observe(-5)         // clamps to 0
	s := h.Snapshot()
	if s.Count != uint64(len(vals)+1) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals)+1)
	}
	if s.Min != 0 {
		t.Fatalf("min = %g, want 0 (clamped negative)", s.Min)
	}
	if s.Max != 9e3 {
		t.Fatalf("max = %g, want 9000", s.Max)
	}
	wantSum := 0.05 + 1 + 10 + 10 + 250 + 9e3
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// Quantiles bounded by extrema and within log-bucket resolution.
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		q := s.Quantile(p)
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile(%g) = %g outside [%g, %g]", p, q, s.Min, s.Max)
		}
	}
	if q := s.Quantile(100); q != s.Max {
		t.Fatalf("quantile(100) = %g, want max %g", q, s.Max)
	}
}

func TestHistogramInfObservation(t *testing.T) {
	var h Histogram
	h.Observe(math.Inf(1))
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Counts[NumBuckets-1] != 1 {
		t.Fatalf("+Inf not in catch-all bucket")
	}
	if math.IsInf(s.Sum, 1) || math.IsNaN(s.Sum) {
		t.Fatalf("sum not finite after +Inf observation: %g", s.Sum)
	}
}

func TestHistMergeMatchesCombined(t *testing.T) {
	var a, b, both Histogram
	va := []float64{1, 5, 30, 2000}
	vb := []float64{0.2, 5, 7e5}
	for _, v := range va {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range vb {
		b.Observe(v)
		both.Observe(v)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	w := both.Snapshot()
	if m.Count != w.Count || m.Min != w.Min || m.Max != w.Max || math.Abs(m.Sum-w.Sum) > 1e-9 {
		t.Fatalf("merge mismatch: %+v vs %+v", m, w)
	}
	for i := range w.Counts {
		if m.Counts[i] != w.Counts[i] {
			t.Fatalf("bucket %d: merged %d, combined %d", i, m.Counts[i], w.Counts[i])
		}
	}
	// Merge with empty is identity in both directions.
	if got := w.Merge(Hist{}); got.Count != w.Count {
		t.Fatalf("merge with empty lost counts")
	}
	if got := (Hist{}).Merge(w); got.Count != w.Count {
		t.Fatalf("empty.Merge lost counts")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) / 10)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	wantSum := 0.0
	for i := 0; i < goroutines*per; i++ {
		wantSum += float64(i) / 10
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func testClock(start time.Time) func() time.Time {
	cur := start
	return func() time.Time {
		cur = cur.Add(time.Millisecond)
		return cur
	}
}

func TestRecorderFinishTraceReconciles(t *testing.T) {
	r := New(Config{RingSize: 8, Now: testClock(time.Unix(0, 0))})
	for i := 0; i < 5; i++ {
		tr := Trace{
			Class:          "qpsk/4",
			DeadlineMicros: 1000,
			SlackMicros:    float64(100 - 40*i), // two of five go negative
			Failed:         i == 4,
		}
		tr.Stages[StageQueue] = float64(10 * (i + 1))
		tr.Stages[StageE2E] = float64(100 * (i + 1))
		r.FinishTrace(tr)
	}
	sn := r.Snapshot()
	if sn.Finished != 4 || sn.Failed != 1 || sn.Traces != 5 {
		t.Fatalf("finished/failed/traces = %d/%d/%d", sn.Finished, sn.Failed, sn.Traces)
	}
	if r.TraceCount() != 5 {
		t.Fatalf("TraceCount = %d", r.TraceCount())
	}
	if sn.Stages[StageQueue].Count != 5 || sn.Stages[StageE2E].Count != 5 {
		t.Fatalf("stage counts queue=%d e2e=%d, want 5", sn.Stages[StageQueue].Count, sn.Stages[StageE2E].Count)
	}
	if sn.SlackMet.Count != 3 || sn.SlackMissed.Count != 2 {
		t.Fatalf("slack met/missed = %d/%d, want 3/2", sn.SlackMet.Count, sn.SlackMissed.Count)
	}
	if mr := sn.MissRate(); math.Abs(mr-0.4) > 1e-12 {
		t.Fatalf("miss rate = %g, want 0.4", mr)
	}
	// Plan and compile stages are owned by other components: FinishTrace
	// must not feed them even if the trace carries sched-side measurements.
	tr := Trace{}
	tr.Stages[StagePlan] = 42
	tr.Stages[StageCompile] = 42
	r.FinishTrace(tr)
	sn = r.Snapshot()
	if sn.Stages[StagePlan].Count != 0 || sn.Stages[StageCompile].Count != 0 {
		t.Fatalf("FinishTrace fed plan/compile histograms")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := New(Config{RingSize: 4, Now: testClock(time.Unix(0, 0))})
	for i := 0; i < 10; i++ {
		r.FinishTrace(Trace{Class: Class("bpsk", i)})
	}
	traces := r.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring length = %d, want 4", len(traces))
	}
	for i, tr := range traces {
		if want := uint64(7 + i); tr.Seq != want {
			t.Fatalf("trace %d seq = %d, want %d (oldest-first order)", i, tr.Seq, want)
		}
	}
	if r.TraceCount() != 10 {
		t.Fatalf("TraceCount = %d, want 10", r.TraceCount())
	}
}

func TestRecorderQualityAndCompile(t *testing.T) {
	r := New(Config{Now: testClock(time.Unix(0, 0))})
	r.ObserveQuality("16qam/12", QualityObservation{BestEnergy: -42.5, Reads: 100, ChainBreaks: 7, LLRBits: 48, LLRSaturated: 3})
	r.ObserveQuality("16qam/12", QualityObservation{BestEnergy: -40, Reads: 100, ChainBreaks: 1})
	r.ObserveQuality("qpsk/4", QualityObservation{BestEnergy: -8, Reads: 50})
	r.ObserveCompile(120, false)
	r.ObserveCompile(0.4, true)
	sn := r.Snapshot()
	q := sn.Quality["16qam/12"]
	if q.Solves != 2 || q.Reads != 200 || q.ChainBreaks != 8 || q.LLRBits != 48 || q.LLRSaturated != 3 {
		t.Fatalf("quality counters wrong: %+v", q)
	}
	if rate := q.ChainBreakRate(); math.Abs(rate-0.04) > 1e-12 {
		t.Fatalf("chain break rate = %g", rate)
	}
	if rate := q.LLRSaturationRate(); math.Abs(rate-3.0/48) > 1e-12 {
		t.Fatalf("llr saturation rate = %g", rate)
	}
	if q.BestEnergy.Count != 2 || q.BestEnergy.Max != 42.5 {
		t.Fatalf("best-energy hist wrong: %+v", q.BestEnergy)
	}
	if sn.CompileHits != 1 || sn.CompileMisses != 1 {
		t.Fatalf("compile hit/miss = %d/%d", sn.CompileHits, sn.CompileMisses)
	}
	if sn.Stages[StageCompile].Count != 2 {
		t.Fatalf("compile stage count = %d", sn.Stages[StageCompile].Count)
	}
	// Merge doubles everything.
	m := sn.Merge(r.Snapshot())
	if m.Quality["16qam/12"].Solves != 4 || m.Quality["qpsk/4"].Solves != 2 {
		t.Fatalf("merged quality wrong: %+v", m.Quality)
	}
	if m.CompileHits != 2 || m.CompileMisses != 2 {
		t.Fatalf("merged compile counters wrong")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.FinishTrace(Trace{})
	r.ObserveStage(StageQueue, 1)
	r.ObserveCompile(1, true)
	r.ObserveWire(1)
	r.ObserveQuality("x", QualityObservation{})
	if r.Traces() != nil || r.TraceCount() != 0 || r.Snapshot() != nil {
		t.Fatalf("nil recorder leaked state")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New(Config{Now: testClock(time.Unix(0, 0))})
	tr := Trace{Class: "qpsk/4", DeadlineMicros: 500, SlackMicros: 100}
	tr.Stages[StageQueue] = 12
	tr.Stages[StageSolve] = 300
	tr.Stages[StageE2E] = 330
	r.FinishTrace(tr)
	r.ObserveQuality("qpsk/4", QualityObservation{BestEnergy: -3, Reads: 10, ChainBreaks: 1})
	r.ObserveWire(410)
	pool := &metrics.PoolStats{
		Submitted: 1, Completed: 1,
		Backends: []metrics.BackendStats{{Name: "qpu0", Solved: 1, BusyMicros: 300, Utilization: 0.5}},
	}
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot(), pool, &metrics.HealthStats{
		Backends: []metrics.BackendHealth{{Name: "qpu0", State: metrics.HealthDegraded, Score: 1.5}},
		Shards:   []metrics.ShardBurn{{FastMissRate: 0.25, SlowMissRate: 0.1, Samples: 64, Alerting: true, Sheds: 3}},
	})
	out := b.String()
	for _, want := range []string{
		"# TYPE quamax_stage_latency_micros histogram",
		`quamax_stage_latency_micros_bucket{stage="queue",le="+Inf"} 1`,
		`quamax_stage_latency_micros_count{stage="queue"} 1`,
		`quamax_deadline_slack_micros_bucket{outcome="met",le="+Inf"} 1`,
		`quamax_traces_finished_total{outcome="ok"} 1`,
		`quamax_quality_chain_breaks_total{class="qpsk/4"} 1`,
		"quamax_fronthaul_wire_micros_count 1",
		"quamax_pool_submitted_total 1",
		`quamax_backend_solved_total{backend="qpu0"} 1`,
		`quamax_backend_health{backend="qpu0"} 1`,
		`quamax_backend_health_score{backend="qpu0"} 1.5`,
		`quamax_slo_burn_rate{shard="0",slo="miss",window="fast"} 0.25`,
		`quamax_slo_alerting{shard="0"} 1`,
		`quamax_shard_sheds_total{shard="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every histogram's cumulative buckets must be nondecreasing and end at
	// a le="+Inf" sample equal to _count.
	lines := strings.Split(out, "\n")
	for i, line := range lines {
		if !strings.Contains(line, `le="+Inf"`) {
			continue
		}
		name := line[:strings.Index(line, "_bucket{")]
		var infVal string
		if _, err := fmtSscanLast(line, &infVal); err != nil {
			t.Fatalf("line %d unparsable: %q", i, line)
		}
		found := false
		for _, l2 := range lines {
			if strings.HasPrefix(l2, name+"_count") && strings.HasSuffix(l2, " "+infVal) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no matching _count for %q", line)
		}
	}
}

// fmtSscanLast extracts the last whitespace-separated token of a line.
func fmtSscanLast(line string, out *string) (int, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, nil
	}
	*out = fields[len(fields)-1]
	return 1, nil
}

func TestDumpRoundTrip(t *testing.T) {
	r := New(Config{Now: testClock(time.Unix(0, 0))})
	tr := Trace{Class: "16qam/2", Backend: "qpu0", CacheHit: true, DeadlineMicros: 2000, SlackMicros: 1500}
	tr.Stages[StageSolve] = 420
	tr.Stages[StageE2E] = 500
	r.FinishTrace(tr)
	pool := &metrics.PoolStats{Submitted: 1, Completed: 1}
	d := BuildDump(r, pool)
	if d.Stages["solve"].Count != 1 || d.Stages["e2e"].Count != 1 {
		t.Fatalf("dump stage digests wrong: %+v", d.Stages)
	}
	if got := d.Snapshot.Traces; got != pool.Submitted || got != pool.Completed+pool.Failed {
		t.Fatalf("dump does not reconcile: traces=%d pool=%+v", got, pool)
	}
	path := t.TempDir() + "/dump.json"
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot.Traces != 1 || len(got.Traces) != 1 || got.Traces[0].Backend != "qpu0" {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	if got.Stages["solve"].P50Micros <= 0 {
		t.Fatalf("round-trip lost stage digest")
	}
}

func TestStageStringAndNames(t *testing.T) {
	names := StageNames()
	if len(names) != NumStages {
		t.Fatalf("StageNames length %d", len(names))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("stage %d name %q empty or duplicate", i, n)
		}
		seen[n] = true
	}
	if StageE2E.String() != "e2e" || StageAdmit.String() != "admit" {
		t.Fatalf("stage names wrong")
	}
}
