package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"quamax/internal/metrics"
)

// StageSummary is the per-stage latency digest a Dump carries: enough for
// tools/benchjson to add p50/p95/p99 columns to BENCH rows without shipping
// raw buckets.
type StageSummary struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"mean_micros"`
	P50Micros  float64 `json:"p50_micros"`
	P95Micros  float64 `json:"p95_micros"`
	P99Micros  float64 `json:"p99_micros"`
	MaxMicros  float64 `json:"max_micros"`
}

// Summarize digests a Hist into a StageSummary.
func Summarize(h Hist) StageSummary {
	if h.Count == 0 {
		return StageSummary{}
	}
	return StageSummary{
		Count:      h.Count,
		MeanMicros: h.Mean(),
		P50Micros:  h.Quantile(50),
		P95Micros:  h.Quantile(95),
		P99Micros:  h.Quantile(99),
		MaxMicros:  h.Max,
	}
}

// Dump is the structured JSON trace dump written by -trace-out: the full
// Snapshot, per-stage digests keyed by stage name, the pool counters they
// reconcile against, and the retained trace ring.
type Dump struct {
	// Snapshot is the recorder aggregate at dump time.
	Snapshot *Snapshot `json:"snapshot"`
	// Stages digests Snapshot.Stages by stage name; Wire, SlackMet and
	// SlackMissed digest their histograms.
	Stages      map[string]StageSummary `json:"stages"`
	Wire        StageSummary            `json:"wire"`
	SlackMet    StageSummary            `json:"slack_met"`
	SlackMissed StageSummary            `json:"slack_missed"`
	// Pool is the scheduler counter snapshot taken with the dump, when a
	// pool is attached; Dump readers check Submitted == Completed+Failed ==
	// Snapshot.Traces.
	Pool *metrics.PoolStats `json:"pool,omitempty"`
	// Traces is the retained ring, oldest first (capped at the ring size;
	// Snapshot.Traces counts all spans ever finished).
	Traces []Trace `json:"traces"`
	// Exemplars are the pinned worst-slack traces (see exemplar.go), worst
	// first — the named requests behind the tail, which survive even after
	// the ring has overwritten them.
	Exemplars []Trace `json:"exemplars,omitempty"`
}

// BuildDump assembles a Dump from a recorder and an optional pool snapshot.
// Safe on a nil receiver only insofar as it returns nil.
func BuildDump(r *Recorder, pool *metrics.PoolStats) *Dump {
	if r == nil {
		return nil
	}
	sn := r.Snapshot()
	d := &Dump{
		Snapshot:    sn,
		Stages:      make(map[string]StageSummary, NumStages),
		Wire:        Summarize(sn.Wire),
		SlackMet:    Summarize(sn.SlackMet),
		SlackMissed: Summarize(sn.SlackMissed),
		Pool:        pool,
		Traces:      r.Traces(),
		Exemplars:   r.Exemplars(),
	}
	for i := range sn.Stages {
		d.Stages[Stage(i).String()] = Summarize(sn.Stages[i])
	}
	return d
}

// WriteFile marshals the dump as indented JSON to path.
func (d *Dump) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal dump: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: write dump: %w", err)
	}
	return nil
}

// ReadDump parses a -trace-out JSON file (tools/benchjson's ingest path).
func ReadDump(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: read dump: %w", err)
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("telemetry: parse dump %s: %w", path, err)
	}
	return &d, nil
}

// StageNames returns the stage names in pipeline order (for stable tables).
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range out {
		out[i] = Stage(i).String()
	}
	return out
}

// SortedClasses returns the quality classes of a snapshot in sorted order.
func SortedClasses(sn *Snapshot) []string {
	if sn == nil {
		return nil
	}
	out := make([]string, 0, len(sn.Quality))
	for c := range sn.Quality {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
