package telemetry

import "sort"

// Exemplar trace sampling: aggregate histograms say *that* a p99 exists,
// exemplars say *which requests it was*. The recorder pins the N worst-slack
// traces of every fixed-size window of completed requests — a bounded set
// that survives ring wrap-around, so the requests behind a latency or
// deadline regression can be named long after the ring has overwritten them.
// Badness is deadline slack when the request carried a deadline (most
// negative slack first) and end-to-end latency otherwise (slowest first).

const (
	// DefaultExemplarCount is the number of worst traces pinned per window.
	DefaultExemplarCount = 8
	// DefaultExemplarWindow is the window length in completed traces.
	DefaultExemplarWindow = 1024
)

// exemplarScore orders traces by badness: lower is worse. Deadline-bearing
// traces score their slack (negative = missed, most negative = worst);
// deadline-free traces score −e2e so the slowest sort first. The two groups
// share one scale poorly, but within a workload requests are homogeneous and
// the deadline-bearing ones are the interesting tail anyway.
func exemplarScore(t *Trace) float64 {
	if t.DeadlineMicros > 0 {
		return t.SlackMicros
	}
	return -t.Stages[StageE2E]
}

// pinExemplarLocked folds one finished trace into the current window's
// worst-N set and rotates the window on its boundary. Caller holds ringMu
// and has assigned t.Seq.
func (r *Recorder) pinExemplarLocked(t Trace) {
	if r.exCount <= 0 {
		return
	}
	score := exemplarScore(&t)
	i := sort.Search(len(r.exCur), func(i int) bool { return exemplarScore(&r.exCur[i]) > score })
	if i < r.exCount {
		r.exCur = append(r.exCur, Trace{})
		copy(r.exCur[i+1:], r.exCur[i:])
		r.exCur[i] = t
		if len(r.exCur) > r.exCount {
			r.exCur = r.exCur[:r.exCount]
		}
	}
	if t.Seq%uint64(r.exWindow) == 0 {
		r.exPinned = append(r.exPinned[:0], r.exCur...)
		r.exCur = r.exCur[:0]
	}
}

// Exemplars returns the pinned worst-slack traces: the last completed
// window's set plus the in-progress window's current candidates, worst
// first. Safe on a nil receiver (returns nil).
func (r *Recorder) Exemplars() []Trace {
	if r == nil {
		return nil
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	out := make([]Trace, 0, len(r.exPinned)+len(r.exCur))
	out = append(out, r.exPinned...)
	out = append(out, r.exCur...)
	sort.SliceStable(out, func(i, j int) bool { return exemplarScore(&out[i]) < exemplarScore(&out[j]) })
	return out
}
