package telemetry

import (
	"math"
	"sync/atomic"
)

// The latency histograms use a fixed log-scale bucket layout: BucketsPerDecade
// buckets per factor of ten, starting at HistBase microseconds. With 96
// buckets that spans 12 decades — 0.1µs to ~28h — which covers everything from
// a channel-cache hit to a stuck queue, in bounded memory (one uint64 per
// bucket), so a recorder never grows with traffic and snapshots merge by
// entrywise addition exactly like metrics.PoolStats.Merge.
const (
	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = 96
	// BucketsPerDecade sets the log resolution: each bucket spans a factor
	// of 10^(1/8) ≈ 1.33, i.e. quantile estimates are within ~15% of truth.
	BucketsPerDecade = 8
	// HistBase is the upper bound of the growth law's bucket -1 in
	// microseconds; bucket 0 covers (0, HistBase·10^(1/8)].
	HistBase = 0.1
)

// bucketBounds[i] is the inclusive upper bound, in microseconds, of bucket i.
// The last bucket's bound is +Inf (catch-all).
var bucketBounds [NumBuckets]float64

func init() {
	for i := 0; i < NumBuckets-1; i++ {
		bucketBounds[i] = HistBase * math.Pow(10, float64(i+1)/BucketsPerDecade)
	}
	bucketBounds[NumBuckets-1] = math.Inf(1)
}

// BucketBound returns the inclusive upper bound of bucket i in microseconds
// (+Inf for the last bucket). It panics if i is out of range.
func BucketBound(i int) float64 { return bucketBounds[i] }

// bucketIndex maps a nonnegative value to its bucket.
func bucketIndex(v float64) int {
	if v <= HistBase {
		return 0
	}
	// Smallest i with v <= bounds[i], i.e. ceil(BPD·(log10 v − log10 base))−1.
	i := int(math.Ceil(BucketsPerDecade*(math.Log10(v)-math.Log10(HistBase)))) - 1
	if i < 0 {
		return 0
	}
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram is a live, concurrency-safe log-scale histogram. Observe is
// lock-free (one atomic add per bucket plus CAS loops for the running sum and
// extrema), so it can sit on the scheduler's hot path. Read it via Snapshot.
//
// The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits; initialized lazily via count==0 CAS path
	max    atomic.Uint64 // float64 bits
	init   atomic.Bool
}

// Observe records one value in microseconds. NaN observations are dropped;
// negative values clamp to zero; +Inf lands in the catch-all bucket and is
// clamped to the largest finite bound for the running sum so means stay
// finite.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if math.IsInf(v, 1) {
		v = bucketBounds[NumBuckets-2]
	}
	h.counts[i].Add(1)
	if h.init.CompareAndSwap(false, true) {
		// First observer seeds the extrema; racing observers fold in below.
		h.min.Store(math.Float64bits(v))
		h.max.Store(math.Float64bits(v))
	}
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
	h.count.Add(1)
}

func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. Concurrent Observes may tear a
// snapshot by at most the in-flight observations (counts and sum are read
// per-field); for reporting that skew is negligible and bounded.
func (h *Histogram) Snapshot() Hist {
	var s Hist
	if h.count.Load() == 0 {
		return s
	}
	s.Counts = make([]uint64, NumBuckets)
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Min = math.Float64frombits(h.min.Load())
	s.Max = math.Float64frombits(h.max.Load())
	return s
}

// Hist is an immutable histogram snapshot: per-bucket counts under the fixed
// log-scale layout plus the running sum and exact extrema. The zero value is
// an empty histogram. Snapshots merge by addition, wire-encode sparsely
// (fronthaul v7), and render to Prometheus exposition format.
type Hist struct {
	// Counts holds per-bucket observation counts; nil or length NumBuckets.
	Counts []uint64 `json:"counts,omitempty"`
	// Count is the total number of observations (== sum of Counts).
	Count uint64 `json:"count"`
	// Sum is the sum of observed values in microseconds (+Inf observations
	// contribute the largest finite bucket bound).
	Sum float64 `json:"sum"`
	// Min and Max are the exact observed extrema (0 when Count == 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Merge returns the entrywise aggregate of two snapshots, the multi-shard
// rollup operation (compare metrics.PoolStats.Merge).
func (h Hist) Merge(o Hist) Hist {
	if o.Count == 0 {
		return h
	}
	if h.Count == 0 {
		return o
	}
	out := Hist{
		Counts: make([]uint64, NumBuckets),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
		Min:    math.Min(h.Min, o.Min),
		Max:    math.Max(h.Max, o.Max),
	}
	for i := range out.Counts {
		if h.Counts != nil {
			out.Counts[i] += h.Counts[i]
		}
		if o.Counts != nil {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// Mean returns Sum/Count, or NaN when empty.
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the p-th percentile (p in [0,100]) by geometric
// interpolation within the covering bucket, clamped to the exact observed
// extrema. Returns NaN when empty.
func (h Hist) Quantile(p float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.Min
	}
	if p >= 100 {
		return h.Max
	}
	rank := p / 100 * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := h.Min
		if i > 0 {
			lo = math.Max(lo, bucketBounds[i-1])
		}
		hi := math.Min(h.Max, bucketBounds[i])
		if hi <= lo {
			return clamp(lo, h.Min, h.Max)
		}
		if math.IsInf(hi, 1) {
			return clamp(h.Max, h.Min, h.Max)
		}
		frac := (rank - prev) / float64(c)
		// Geometric interpolation matches the log-scale bucket widths.
		if lo <= 0 {
			return clamp(lo+(hi-lo)*frac, h.Min, h.Max)
		}
		return clamp(lo*math.Pow(hi/lo, frac), h.Min, h.Max)
	}
	return h.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
