// Package telemetry is the serving stack's observability plane: per-request
// trace spans through the scheduler pipeline (admit → plan → queue →
// gather/batch → compile-or-cache-hit → solve → respond), fixed-bucket
// log-scale latency histograms for every stage and for end-to-end deadline
// slack, and per-class anneal-quality telemetry (best-energy distribution,
// chain-break rate, LLR-saturation rate).
//
// The paper's case for QA-in-C-RAN rests on latency *distributions* (Fig. 10
// box plots, mean-vs-median TTB, §5.5 deadline behavior), not end-of-run
// counters; this package makes those distributions observable on a live pool.
// One Recorder instance is shared by sched.Scheduler, core.Decoder,
// qos.Planner, and fronthaul.Server; it exports three ways — Prometheus text
// + pprof over HTTP (Mux), a fronthaul v7 stats frame (Snapshot), and
// structured JSON trace dumps (BuildDump) that tools/benchjson ingests.
//
// Feeding discipline: every histogram has exactly one feeder so nothing is
// double-counted. The scheduler finishes each trace exactly once — at the
// same point it increments Completed/Failed — so the trace count reconciles
// exactly with PoolStats (Submitted == Completed+Failed == traces). StagePlan
// is fed by qos.Planner from inside Plan, and StageCompile by core.Decoder
// from inside Compile, so those two histograms also see work that never
// passes through a scheduler (direct library use, per-batch-item compiles);
// the per-request trace records the scheduler's own measurement of the same
// stages.
package telemetry

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one span of a request's life in the serving pipeline.
type Stage uint8

const (
	// StageAdmit is dispatch-entry bookkeeping up to the enqueue/fallback
	// decision, excluding planner time.
	StageAdmit Stage = iota
	// StagePlan is the QoS planner's admission/parameter decision.
	StagePlan
	// StageQueue is time spent waiting in the FIFO for a worker (or, for a
	// batch rider, until it was gathered into a run).
	StageQueue
	// StageGather is the batch-assembly span charged to the run's head job:
	// slot resolution plus coherent/compatible gathering.
	StageGather
	// StageCompile is channel compilation (or the cache-hit lookup) for
	// fingerprint-keyed requests.
	StageCompile
	// StageSolve is backend Solve/SolveBatch wall time.
	StageSolve
	// StageRespond is result delivery: solve completion to the requester
	// handoff.
	StageRespond
	// StageE2E is the whole request: dispatch entry to delivery.
	StageE2E
	// NumStages bounds the Stage enum.
	NumStages = int(StageE2E) + 1
)

var stageNames = [NumStages]string{
	"admit", "plan", "queue", "gather", "compile", "solve", "respond", "e2e",
}

// String returns the stage's lowercase wire/label name.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// Class renders the per-class telemetry key for a modulation name and user
// count, e.g. "16qam/12".
func Class(mod string, users int) string {
	return mod + "/" + strconv.Itoa(users)
}

// Trace is one completed request's span record. Stage durations are in
// microseconds; zero means the stage did not occur (e.g. no gather for a
// fallback dispatch). The scheduler's stages partition E2E: admit + plan +
// queue + gather + compile(head-measured portion) + solve + respond ≈ e2e.
type Trace struct {
	// Seq is the recorder-assigned sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Class is the problem class, Class(mod, users).
	Class string `json:"class"`
	// Backend names the backend that solved the request ("" if failed before
	// solving).
	Backend string `json:"backend,omitempty"`
	// Batched is the number of co-batched problems in the solving run (0 or
	// 1 for solo).
	Batched int `json:"batched,omitempty"`
	// CacheHit reports whether the compiled-channel cache served the request.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Soft reports a soft-output (LLR) request.
	Soft bool `json:"soft,omitempty"`
	// Failed reports the request returned an error.
	Failed bool `json:"failed,omitempty"`
	// Fallback reports classical-fallback dispatch; PlannerDenied marks the
	// subset the QoS planner denied outright.
	Fallback      bool `json:"fallback,omitempty"`
	PlannerDenied bool `json:"planner_denied,omitempty"`
	// Shard is the serving-pool index that handled the request when the
	// recorder is shared across a sharded router (0 for a single pool), so
	// queue and gather spans attribute per shard.
	Shard int `json:"shard,omitempty"`
	// StartMicros is the dispatch-entry time as microseconds since the
	// recorder was created.
	StartMicros float64 `json:"start_micros"`
	// Stages holds per-stage durations in microseconds, indexed by Stage.
	Stages [NumStages]float64 `json:"stages"`
	// DeadlineMicros is the request's relative deadline (0 = none);
	// SlackMicros = DeadlineMicros − e2e, negative on a miss.
	DeadlineMicros float64 `json:"deadline_micros,omitempty"`
	SlackMicros    float64 `json:"slack_micros,omitempty"`
}

// QualityObservation is one solve's anneal-quality sample.
type QualityObservation struct {
	// BestEnergy is the best (lowest) logical Ising energy observed. The
	// per-class histogram records its magnitude |E| (log buckets need a
	// nonnegative domain; QuAMax ground energies are negative).
	BestEnergy float64
	// Reads is the number of anneal reads taken; ChainBreaks the total
	// broken physical chains across those reads.
	Reads, ChainBreaks int
	// LLRBits is the number of soft bits emitted (0 for hard decodes);
	// LLRSaturated how many of them hit the clamp.
	LLRBits, LLRSaturated int
}

// QualityStats is the mergeable per-class anneal-quality aggregate.
type QualityStats struct {
	// Solves counts quality observations; Reads/ChainBreaks total the
	// per-solve samples, so ChainBreaks/Reads is the chain-break rate.
	Solves      uint64 `json:"solves"`
	Reads       uint64 `json:"reads"`
	ChainBreaks uint64 `json:"chain_breaks"`
	// LLRBits/LLRSaturated give the LLR-saturation rate for soft decodes.
	LLRBits      uint64 `json:"llr_bits"`
	LLRSaturated uint64 `json:"llr_saturated"`
	// BestEnergy is the distribution of |best energy| per solve.
	BestEnergy Hist `json:"best_energy"`
}

// ChainBreakRate returns ChainBreaks/Reads (NaN when no reads).
func (q QualityStats) ChainBreakRate() float64 {
	if q.Reads == 0 {
		return math.NaN()
	}
	return float64(q.ChainBreaks) / float64(q.Reads)
}

// LLRSaturationRate returns LLRSaturated/LLRBits (NaN when no soft bits).
func (q QualityStats) LLRSaturationRate() float64 {
	if q.LLRBits == 0 {
		return math.NaN()
	}
	return float64(q.LLRSaturated) / float64(q.LLRBits)
}

// Merge returns the aggregate of two per-class quality snapshots.
func (q QualityStats) Merge(o QualityStats) QualityStats {
	return QualityStats{
		Solves:       q.Solves + o.Solves,
		Reads:        q.Reads + o.Reads,
		ChainBreaks:  q.ChainBreaks + o.ChainBreaks,
		LLRBits:      q.LLRBits + o.LLRBits,
		LLRSaturated: q.LLRSaturated + o.LLRSaturated,
		BestEnergy:   q.BestEnergy.Merge(o.BestEnergy),
	}
}

type qualityCell struct {
	solves, reads, chainBreaks atomic.Uint64
	llrBits, llrSaturated      atomic.Uint64
	bestEnergy                 Histogram
}

// DefaultRingSize is the trace ring capacity when Config.RingSize is zero.
const DefaultRingSize = 4096

// Config parameterizes a Recorder.
type Config struct {
	// RingSize caps the retained trace ring (DefaultRingSize when 0; older
	// traces are overwritten, histograms and counters never drop).
	RingSize int
	// ExemplarCount is the number of worst-slack traces pinned per exemplar
	// window (0 = DefaultExemplarCount, negative disables pinning);
	// ExemplarWindow is the window length in completed traces
	// (0 = DefaultExemplarWindow). See exemplar.go.
	ExemplarCount  int
	ExemplarWindow int
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Recorder is the shared telemetry sink. All Observe* methods and
// FinishTrace are safe for concurrent use; histogram updates are lock-free
// and FinishTrace takes one short mutex for the trace ring.
type Recorder struct {
	now   func() time.Time
	start time.Time

	stages      [NumStages]Histogram
	wire        Histogram
	slackMet    Histogram
	slackMissed Histogram

	compileHits   atomic.Uint64
	compileMisses atomic.Uint64
	finished      atomic.Uint64
	failed        atomic.Uint64

	qmu     sync.Mutex
	quality map[string]*qualityCell

	ringMu   sync.Mutex
	ring     []Trace
	ringSeq  uint64 // total traces ever finished (next Seq)
	ringSize int

	// Exemplar pinning (guarded by ringMu; see exemplar.go).
	exCount  int
	exWindow int
	exCur    []Trace // current window's worst-N, score-ascending
	exPinned []Trace // last completed window's worst-N
}

// New returns a Recorder with the given configuration.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.ExemplarCount == 0 {
		cfg.ExemplarCount = DefaultExemplarCount
	}
	if cfg.ExemplarWindow <= 0 {
		cfg.ExemplarWindow = DefaultExemplarWindow
	}
	return &Recorder{
		now:      cfg.Now,
		start:    cfg.Now(),
		quality:  make(map[string]*qualityCell),
		ringSize: cfg.RingSize,
		exCount:  cfg.ExemplarCount,
		exWindow: cfg.ExemplarWindow,
	}
}

// Now returns the recorder's clock reading (the scheduler shares it so spans
// and uptime agree under test clocks).
func (r *Recorder) Now() time.Time { return r.now() }

// SinceStartMicros converts an absolute time to microseconds since the
// recorder was created.
func (r *Recorder) SinceStartMicros(t time.Time) float64 {
	return float64(t.Sub(r.start)) / float64(time.Microsecond)
}

// FinishTrace records one completed request: it assigns the sequence number,
// appends the trace to the ring, and feeds the stage histograms (all stages
// except plan and compile, which their owning components feed — see the
// package comment) plus the deadline-slack histograms. It must be called
// exactly once per terminal request so the span count reconciles with
// PoolStats counters. Safe on a nil receiver (no-op).
func (r *Recorder) FinishTrace(t Trace) {
	if r == nil {
		return
	}
	for s := 0; s < NumStages; s++ {
		switch Stage(s) {
		case StagePlan, StageCompile:
			continue // fed by qos.Planner / core.Decoder
		}
		if d := t.Stages[s]; d > 0 || (Stage(s) == StageE2E) {
			r.stages[s].Observe(d)
		}
	}
	if t.DeadlineMicros > 0 {
		if t.SlackMicros >= 0 {
			r.slackMet.Observe(t.SlackMicros)
		} else {
			r.slackMissed.Observe(-t.SlackMicros)
		}
	}
	if t.Failed {
		r.failed.Add(1)
	} else {
		r.finished.Add(1)
	}
	r.ringMu.Lock()
	r.ringSeq++
	t.Seq = r.ringSeq
	if len(r.ring) < r.ringSize {
		r.ring = append(r.ring, t)
	} else {
		r.ring[(t.Seq-1)%uint64(r.ringSize)] = t
	}
	r.pinExemplarLocked(t)
	r.ringMu.Unlock()
}

// ObserveStage feeds one stage histogram directly — used by the components
// that own StagePlan (qos.Planner) and StageCompile (core.Decoder), and
// available for ad-hoc spans. Safe on a nil receiver.
func (r *Recorder) ObserveStage(s Stage, micros float64) {
	if r == nil || int(s) >= NumStages {
		return
	}
	r.stages[s].Observe(micros)
}

// ObserveCompile records one channel compilation (or cache hit) by
// core.Decoder: the duration feeds StageCompile and the hit/miss counters.
// Safe on a nil receiver.
func (r *Recorder) ObserveCompile(micros float64, hit bool) {
	if r == nil {
		return
	}
	r.stages[StageCompile].Observe(micros)
	if hit {
		r.compileHits.Add(1)
	} else {
		r.compileMisses.Add(1)
	}
}

// ObserveWire records one fronthaul request's server-side wall time (frame
// decoded → response written). Safe on a nil receiver.
func (r *Recorder) ObserveWire(micros float64) {
	if r == nil {
		return
	}
	r.wire.Observe(micros)
}

// ObserveQuality records one solve's anneal-quality sample under its class.
// Safe on a nil receiver.
func (r *Recorder) ObserveQuality(class string, q QualityObservation) {
	if r == nil {
		return
	}
	r.qmu.Lock()
	cell, ok := r.quality[class]
	if !ok {
		cell = &qualityCell{}
		r.quality[class] = cell
	}
	r.qmu.Unlock()
	cell.solves.Add(1)
	cell.reads.Add(uint64(max(q.Reads, 0)))
	cell.chainBreaks.Add(uint64(max(q.ChainBreaks, 0)))
	cell.llrBits.Add(uint64(max(q.LLRBits, 0)))
	cell.llrSaturated.Add(uint64(max(q.LLRSaturated, 0)))
	cell.bestEnergy.Observe(math.Abs(q.BestEnergy))
}

// Traces returns a copy of the retained trace ring in completion order
// (oldest first). Safe on a nil receiver (returns nil).
func (r *Recorder) Traces() []Trace {
	if r == nil {
		return nil
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	out := make([]Trace, 0, len(r.ring))
	if r.ringSeq > uint64(len(r.ring)) {
		// Ring has wrapped: oldest entry sits just past the newest.
		head := int(r.ringSeq % uint64(r.ringSize))
		out = append(out, r.ring[head:]...)
		out = append(out, r.ring[:head]...)
		return out
	}
	return append(out, r.ring...)
}

// TraceCount returns the total number of traces ever finished (including
// ones the ring has since overwritten). Safe on a nil receiver.
func (r *Recorder) TraceCount() uint64 {
	if r == nil {
		return 0
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	return r.ringSeq
}

// Snapshot is the mergeable, wire-encodable aggregate view of a Recorder —
// what the fronthaul v7 stats frame carries and the exporters render.
type Snapshot struct {
	// UptimeMicros is time since the recorder was created.
	UptimeMicros float64 `json:"uptime_micros"`
	// Finished and Failed count finished traces by outcome; Traces is their
	// sum (total spans ever recorded).
	Finished uint64 `json:"finished"`
	Failed   uint64 `json:"failed"`
	Traces   uint64 `json:"traces"`
	// CompileHits/CompileMisses count ObserveCompile outcomes.
	CompileHits   uint64 `json:"compile_hits"`
	CompileMisses uint64 `json:"compile_misses"`
	// Stages holds one latency histogram per pipeline Stage (index = Stage).
	Stages [NumStages]Hist `json:"stages"`
	// Wire is the fronthaul server-side request wall time.
	Wire Hist `json:"wire"`
	// SlackMet holds deadline slack for on-time requests; SlackMissed holds
	// |slack| (lateness) for missed ones. Their counts give the miss rate
	// over deadline-bearing requests.
	SlackMet    Hist `json:"slack_met"`
	SlackMissed Hist `json:"slack_missed"`
	// Quality maps class → anneal-quality aggregate.
	Quality map[string]QualityStats `json:"quality,omitempty"`
}

// Snapshot captures the recorder's aggregate state. Safe on a nil receiver
// (returns nil).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		UptimeMicros:  r.SinceStartMicros(r.now()),
		Finished:      r.finished.Load(),
		Failed:        r.failed.Load(),
		CompileHits:   r.compileHits.Load(),
		CompileMisses: r.compileMisses.Load(),
		Wire:          r.wire.Snapshot(),
		SlackMet:      r.slackMet.Snapshot(),
		SlackMissed:   r.slackMissed.Snapshot(),
	}
	s.Traces = s.Finished + s.Failed
	for i := range s.Stages {
		s.Stages[i] = r.stages[i].Snapshot()
	}
	r.qmu.Lock()
	classes := make(map[string]*qualityCell, len(r.quality))
	for k, v := range r.quality {
		classes[k] = v
	}
	r.qmu.Unlock()
	if len(classes) > 0 {
		s.Quality = make(map[string]QualityStats, len(classes))
		for k, c := range classes {
			s.Quality[k] = QualityStats{
				Solves:       c.solves.Load(),
				Reads:        c.reads.Load(),
				ChainBreaks:  c.chainBreaks.Load(),
				LLRBits:      c.llrBits.Load(),
				LLRSaturated: c.llrSaturated.Load(),
				BestEnergy:   c.bestEnergy.Snapshot(),
			}
		}
	}
	return s
}

// Merge returns the aggregate of two snapshots (multi-pool rollup). Either
// argument may be nil.
func (s *Snapshot) Merge(o *Snapshot) *Snapshot {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	out := &Snapshot{
		UptimeMicros:  math.Max(s.UptimeMicros, o.UptimeMicros),
		Finished:      s.Finished + o.Finished,
		Failed:        s.Failed + o.Failed,
		Traces:        s.Traces + o.Traces,
		CompileHits:   s.CompileHits + o.CompileHits,
		CompileMisses: s.CompileMisses + o.CompileMisses,
		Wire:          s.Wire.Merge(o.Wire),
		SlackMet:      s.SlackMet.Merge(o.SlackMet),
		SlackMissed:   s.SlackMissed.Merge(o.SlackMissed),
	}
	for i := range out.Stages {
		out.Stages[i] = s.Stages[i].Merge(o.Stages[i])
	}
	if len(s.Quality)+len(o.Quality) > 0 {
		out.Quality = make(map[string]QualityStats)
		for k, v := range s.Quality {
			out.Quality[k] = v
		}
		for k, v := range o.Quality {
			out.Quality[k] = out.Quality[k].Merge(v)
		}
	}
	return out
}

// MissRate returns the deadline miss rate over deadline-bearing requests
// (NaN when none carried a deadline).
func (s *Snapshot) MissRate() float64 {
	total := s.SlackMet.Count + s.SlackMissed.Count
	if total == 0 {
		return math.NaN()
	}
	return float64(s.SlackMissed.Count) / float64(total)
}
