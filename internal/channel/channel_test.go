package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func TestRandomPhaseUnitMagnitude(t *testing.T) {
	src := rng.New(31)
	h := RandomPhase{}.Generate(src, 8, 8)
	for i, v := range h.Data {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("entry %d has magnitude %g", i, cmplx.Abs(v))
		}
	}
}

func TestRayleighUnitAveragePower(t *testing.T) {
	src := rng.New(32)
	var p float64
	n := 0
	for trial := 0; trial < 200; trial++ {
		h := Rayleigh{}.Generate(src, 4, 4)
		for _, v := range h.Data {
			p += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	p /= float64(n)
	if math.Abs(p-1) > 0.05 {
		t.Fatalf("average entry power %g, want ≈1", p)
	}
}

func TestFixedReplays(t *testing.T) {
	h := linalg.Identity(3)
	f := Fixed{H: h, Label: "trace-7"}
	got := f.Generate(nil, 3, 3)
	if linalg.MaxAbsDiff(h, got) != 0 {
		t.Fatal("Fixed did not replay the stored matrix")
	}
	if f.Name() != "trace-7" {
		t.Fatalf("Name = %q", f.Name())
	}
	got.Set(0, 0, 99)
	if h.At(0, 0) == 99 {
		t.Fatal("Fixed returned an aliased matrix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	f.Generate(nil, 2, 2)
}

func TestSNRConversions(t *testing.T) {
	if got := SNRdBToLinear(20); math.Abs(got-100) > 1e-9 {
		t.Fatalf("20 dB = %g", got)
	}
	if got := SNRLinearToDB(1000); math.Abs(got-30) > 1e-9 {
		t.Fatalf("1000x = %g dB", got)
	}
}

// Realized SNR of a large random system must be close to the requested SNR.
func TestNoiseSigmaRealizesTargetSNR(t *testing.T) {
	src := rng.New(33)
	const (
		nr, nt = 16, 16
		snrDB  = 20.0
	)
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		sigma := NoiseSigma(mod, nt, snrDB)
		var sig, noise float64
		for trial := 0; trial < 300; trial++ {
			h := RandomPhase{}.Generate(src, nr, nt)
			bits := src.Bits(nt * mod.BitsPerSymbol())
			v := mod.MapGrayVector(bits)
			y := linalg.MulVec(h, v)
			r := AddAWGN(src, y, sigma)
			sig += linalg.Norm2(y)
			noise += linalg.Norm2(linalg.VecSub(r, y))
		}
		got := SNRLinearToDB(sig / noise)
		if math.Abs(got-snrDB) > 0.5 {
			t.Errorf("%v: realized SNR %.2f dB, want %.2f", mod, got, snrDB)
		}
	}
}

func TestMeasureSNR(t *testing.T) {
	signal := []complex128{10, 10}
	received := []complex128{11, 10} // noise power 1, signal power 200
	got := MeasureSNR(signal, received)
	want := SNRLinearToDB(200)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeasureSNR = %g, want %g", got, want)
	}
	if !math.IsInf(MeasureSNR(signal, signal), 1) {
		t.Fatal("noise-free SNR should be +Inf")
	}
}

func TestTappedDelayLineFlatWhenOneTap(t *testing.T) {
	src := rng.New(34)
	tdl := TappedDelayLine{NumTaps: 1, Decay: 1}
	sc := tdl.GenerateOFDM(src, 2, 2, 8)
	for k := 1; k < len(sc); k++ {
		if linalg.MaxAbsDiff(sc[0], sc[k]) > 1e-12 {
			t.Fatalf("subcarrier %d differs under flat fading", k)
		}
	}
}

func TestTappedDelayLineUnitPower(t *testing.T) {
	src := rng.New(35)
	tdl := TappedDelayLine{NumTaps: 4, Decay: 0.5}
	var p float64
	n := 0
	for trial := 0; trial < 200; trial++ {
		sc := tdl.GenerateOFDM(src, 1, 1, 16)
		for _, m := range sc {
			v := m.At(0, 0)
			p += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	p /= float64(n)
	if math.Abs(p-1) > 0.07 {
		t.Fatalf("average subcarrier power %g, want ≈1", p)
	}
}

func TestSubcarrierCorrelationDecays(t *testing.T) {
	src := rng.New(36)
	tdl := TappedDelayLine{NumTaps: 8, Decay: 0.8}
	near := SubcarrierCorrelation(tdl, src, 1, 64, 300)
	far := SubcarrierCorrelation(tdl, src, 32, 64, 300)
	if near < far {
		t.Fatalf("adjacent subcarriers (%.3f) should correlate more than distant ones (%.3f)", near, far)
	}
	if near < 0.8 {
		t.Fatalf("adjacent correlation %.3f unexpectedly low", near)
	}
}

func TestNoiseSigmaPanicsOnBadNt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nt=0")
		}
	}()
	NoiseSigma(modulation.BPSK, 0, 10)
}
