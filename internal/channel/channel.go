// Package channel provides the wireless channel models used by the QuAMax
// evaluation: the unit-gain random-phase channel of paper §5.3, i.i.d.
// Rayleigh fading (Table 1), AWGN generation at a target SNR (§5.4), and an
// OFDM container with frequency-correlated subcarriers generated from a
// tapped delay line (§3.2: the ML-to-QA reduction runs per subcarrier).
package channel

import (
	"fmt"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Model generates channel matrices.
type Model interface {
	// Generate draws an Nr×Nt channel matrix.
	Generate(src *rng.Source, nr, nt int) *linalg.Mat
	// Name identifies the model in experiment output.
	Name() string
}

// RandomPhase is the paper §5.3 channel: every entry has unit magnitude and
// uniformly random phase, isolating annealer behaviour from fading depth.
type RandomPhase struct{}

// Generate draws H with H[i][j] = e^{jθ}, θ ~ U[0,2π).
func (RandomPhase) Generate(src *rng.Source, nr, nt int) *linalg.Mat {
	h := linalg.NewMat(nr, nt)
	for i := range h.Data {
		h.Data[i] = src.UnitPhase()
	}
	return h
}

// Name implements Model.
func (RandomPhase) Name() string { return "random-phase" }

// Rayleigh is i.i.d. Rayleigh fading: entries CN(0,1).
type Rayleigh struct{}

// Generate draws H with independent CN(0,1) entries.
func (Rayleigh) Generate(src *rng.Source, nr, nt int) *linalg.Mat {
	h := linalg.NewMat(nr, nt)
	for i := range h.Data {
		h.Data[i] = src.ComplexNorm()
	}
	return h
}

// Name implements Model.
func (Rayleigh) Name() string { return "rayleigh" }

// Fixed replays a pre-drawn matrix (trace playback, §5.4's fixed-channel
// noise study). Generate panics if the requested shape disagrees.
type Fixed struct {
	H     *linalg.Mat
	Label string
}

// Generate returns a copy of the stored matrix.
func (f Fixed) Generate(_ *rng.Source, nr, nt int) *linalg.Mat {
	if f.H.Rows != nr || f.H.Cols != nt {
		panic(fmt.Sprintf("channel: Fixed is %dx%d, requested %dx%d", f.H.Rows, f.H.Cols, nr, nt))
	}
	return f.H.Clone()
}

// Name implements Model.
func (f Fixed) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fixed"
}

// SNRdBToLinear converts decibels to a linear power ratio.
func SNRdBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// SNRLinearToDB converts a linear power ratio to decibels.
func SNRLinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// NoiseSigma returns the per-receive-antenna complex noise standard deviation
// σ such that n_i = σ·CN(0,1) yields the requested receive SNR
//
//	SNR = E‖Hv‖² / E‖n‖²
//
// under the unit-average-gain channel convention (E|h_ij|² = 1, both for the
// random-phase and Rayleigh models) and i.i.d. symbols with energy
// Es = mod.AvgSymbolEnergy(): E‖Hv‖² = Nr·Nt·Es and E‖n‖² = Nr·σ².
func NoiseSigma(mod modulation.Modulation, nt int, snrDB float64) float64 {
	if nt <= 0 {
		panic("channel: NoiseSigma requires nt > 0")
	}
	es := mod.AvgSymbolEnergy()
	return math.Sqrt(float64(nt) * es / SNRdBToLinear(snrDB))
}

// AddAWGN returns y + σ·CN(0,1) element-wise as a new slice.
func AddAWGN(src *rng.Source, y []complex128, sigma float64) []complex128 {
	out := make([]complex128, len(y))
	for i, v := range y {
		out[i] = v + complex(sigma, 0)*src.ComplexNorm()
	}
	return out
}

// MeasureSNR estimates the realized SNR (dB) of a received vector given the
// noiseless signal — a test/diagnostic helper.
func MeasureSNR(signal, received []complex128) float64 {
	sig := linalg.Norm2(signal)
	noise := linalg.Norm2(linalg.VecSub(received, signal))
	if noise == 0 {
		return math.Inf(1)
	}
	return SNRLinearToDB(sig / noise)
}

// TappedDelayLine models a frequency-selective channel as L taps with an
// exponential power-delay profile, producing correlated per-subcarrier
// responses via a DFT. With NumTaps = 1 all subcarriers are identical
// (flat fading); as NumTaps grows subcarriers decorrelate.
type TappedDelayLine struct {
	NumTaps int     // L ≥ 1
	Decay   float64 // per-tap power decay factor in (0,1]; 1 = uniform profile
}

// tapPowers returns the normalized exponential power-delay profile.
func (t TappedDelayLine) tapPowers() []float64 {
	l := t.NumTaps
	if l < 1 {
		l = 1
	}
	d := t.Decay
	if d <= 0 || d > 1 {
		d = 1
	}
	p := make([]float64, l)
	sum := 0.0
	for i := range p {
		p[i] = math.Pow(d, float64(i))
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// GenerateOFDM draws one channel use across numSC subcarriers: each antenna
// pair gets independent taps, and subcarrier k's response is the DFT of the
// tap vector at frequency k/numSC. Every returned matrix has unit average
// entry power.
func (t TappedDelayLine) GenerateOFDM(src *rng.Source, nr, nt, numSC int) []*linalg.Mat {
	p := t.tapPowers()
	out := make([]*linalg.Mat, numSC)
	for k := range out {
		out[k] = linalg.NewMat(nr, nt)
	}
	taps := make([]complex128, len(p))
	for i := 0; i < nr; i++ {
		for j := 0; j < nt; j++ {
			for l := range taps {
				taps[l] = complex(math.Sqrt(p[l]), 0) * src.ComplexNorm()
			}
			for k := 0; k < numSC; k++ {
				var h complex128
				for l := range taps {
					angle := -2 * math.Pi * float64(k*l) / float64(numSC)
					h += taps[l] * complex(math.Cos(angle), math.Sin(angle))
				}
				out[k].Set(i, j, h)
			}
		}
	}
	return out
}

// SubcarrierCorrelation estimates the magnitude correlation between
// subcarriers 0 and sep over many draws — used in tests to confirm the
// delay-line model produces the intended frequency selectivity.
func SubcarrierCorrelation(t TappedDelayLine, src *rng.Source, sep, numSC, draws int) float64 {
	var num, d0, d1 complex128
	for i := 0; i < draws; i++ {
		sc := t.GenerateOFDM(src, 1, 1, numSC)
		a := sc[0].At(0, 0)
		b := sc[sep].At(0, 0)
		num += a * conj(b)
		d0 += a * conj(a)
		d1 += b * conj(b)
	}
	den := math.Sqrt(real(d0) * real(d1))
	if den == 0 {
		return 0
	}
	return math.Sqrt(real(num)*real(num)+imag(num)*imag(num)) / den
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
