package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"quamax/internal/linalg"
	"quamax/internal/rng"
)

// MultiUserConfig controls the synthetic cellular request-trace generator:
// the offered load of a centralized data center absorbing many cells' uplink
// decodes (§2's C-RAN framing), rather than one link's channel evolution.
// Cell popularity is Zipf-distributed — a few hot cells dominate, a long tail
// stays cold — and every user carries its own coherence window, re-estimating
// its channel (new fingerprint, new compiled program) after a geometrically
// distributed number of decodes.
type MultiUserConfig struct {
	// Cells is the number of cells the data center serves.
	Cells int
	// Users is the total subscriber population, split evenly across cells.
	// Only users that actually appear in the trace materialize state, so
	// million-user populations cost memory proportional to the drawn set.
	Users int
	// Requests is the number of uplink decodes to draw.
	Requests int
	// ZipfS is the Zipf popularity exponent across cells: request rate of the
	// r-th most popular cell ∝ 1/(r+1)^s. 0 = uniform.
	ZipfS float64
	// Antennas is the AP antenna count per cell (rows of each channel);
	// CellUsers the spatially multiplexed streams per decode (columns).
	Antennas, CellUsers int
	// WindowUses is the mean coherence-window length in decodes: how many
	// requests a user's channel estimate serves before re-estimation. Window
	// lengths are geometric with this mean, so windows are per-user and
	// ragged, exactly like real mobility.
	WindowUses int
	// RiceanK, Doppler and ShadowStdDB carry the GeneratorConfig channel
	// model: LoS-to-scatter ratio, AR(1) innovation weight applied at each
	// window rollover, and per-user log-normal shadowing spread in dB.
	RiceanK, Doppler, ShadowStdDB float64
}

// DefaultMultiUserConfig is a data-center-scale load shape: many cells with
// skewed popularity, a million subscribers, pedestrian channel dynamics and
// Argos-like 8-stream decodes.
func DefaultMultiUserConfig() MultiUserConfig {
	return MultiUserConfig{
		Cells:       64,
		Users:       1_000_000,
		Requests:    10_000,
		ZipfS:       1.1,
		Antennas:    8,
		CellUsers:   8,
		WindowUses:  16,
		RiceanK:     3,
		Doppler:     0.05,
		ShadowStdDB: 2,
	}
}

// Request is one uplink decode in a multi-user trace.
type Request struct {
	// Cell is the serving cell; User the subscriber whose coherence stream
	// the decode rides (a global ID in [0, Users)).
	Cell, User int
	// Window is the user's coherence-window ordinal (0-based): requests with
	// equal (User, Window) share the same channel estimate — and therefore
	// the same fingerprint, compiled program and cache entry downstream.
	Window int
	// H is the window's channel estimate (Antennas × CellUsers). Requests of
	// one window share the same *linalg.Mat, so pointer identity is window
	// identity.
	H *linalg.Mat
}

// MultiUserTrace is a generated request sequence plus its shape metadata.
type MultiUserTrace struct {
	// Cells, Antennas and CellUsers echo the config.
	Cells, Antennas, CellUsers int
	// Windows is the total number of distinct coherence windows drawn.
	Windows int
	// Requests is the decode sequence in arrival order.
	Requests []Request
}

// muUserState is one drawn user's live channel state.
type muUserState struct {
	remaining int
	window    int
	h         *linalg.Mat
	scatter   *linalg.Mat
	losPhase  []float64 // per-column ULA phase increments
	gain      float64
}

// GenerateMultiUser synthesizes a cellular request trace. Deterministic
// given src.
func GenerateMultiUser(src *rng.Source, cfg MultiUserConfig) (*MultiUserTrace, error) {
	if cfg.Cells < 1 || cfg.Users < cfg.Cells || cfg.Requests < 1 {
		return nil, errors.New("trace: need ≥1 cell, ≥1 request and at least one user per cell")
	}
	if cfg.Antennas < 1 || cfg.CellUsers < 1 {
		return nil, errors.New("trace: antennas and cell users must be positive")
	}
	if cfg.WindowUses < 1 {
		return nil, errors.New("trace: mean window length must be ≥ 1 use")
	}
	if cfg.ZipfS < 0 || math.IsNaN(cfg.ZipfS) {
		return nil, fmt.Errorf("trace: Zipf exponent %g must be ≥ 0", cfg.ZipfS)
	}
	if cfg.Doppler < 0 || cfg.Doppler >= 1 {
		return nil, fmt.Errorf("trace: Doppler %g outside [0,1)", cfg.Doppler)
	}

	// Cell popularity CDF: cell c (already "ranked" by index) draws with
	// weight (c+1)^−s.
	cdf := make([]float64, cfg.Cells)
	sum := 0.0
	for c := range cdf {
		sum += math.Pow(float64(c+1), -cfg.ZipfS)
		cdf[c] = sum
	}
	for c := range cdf {
		cdf[c] /= sum
	}

	perCell := cfg.Users / cfg.Cells
	rho := 1 - cfg.Doppler
	innovW := math.Sqrt(1 - rho*rho)
	kLin := cfg.RiceanK
	losW := math.Sqrt(kLin / (kLin + 1))
	scatW := math.Sqrt(1 / (kLin + 1))

	tr := &MultiUserTrace{Cells: cfg.Cells, Antennas: cfg.Antennas, CellUsers: cfg.CellUsers}
	users := make(map[int]*muUserState)

	// geomLen draws a geometric window length with mean WindowUses (≥ 1).
	geomLen := func() int {
		if cfg.WindowUses == 1 {
			return 1
		}
		p := 1 / float64(cfg.WindowUses)
		u := src.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		n := 1 + int(math.Log(1-u)/math.Log(1-p))
		if n < 1 {
			n = 1
		}
		return n
	}
	rebuild := func(st *muUserState) {
		h := linalg.NewMat(cfg.Antennas, cfg.CellUsers)
		g := complex(st.gain, 0)
		for u := 0; u < cfg.CellUsers; u++ {
			phase := st.losPhase[u]
			for a := 0; a < cfg.Antennas; a++ {
				theta := phase * float64(a)
				v := complex(losW, 0)*complex(math.Cos(theta), math.Sin(theta)) +
					complex(scatW, 0)*st.scatter.At(a, u)
				h.Set(a, u, g*v)
			}
		}
		st.h = h
	}

	for i := 0; i < cfg.Requests; i++ {
		cell := sort.SearchFloat64s(cdf, src.Float64())
		if cell >= cfg.Cells {
			cell = cfg.Cells - 1
		}
		user := cell*perCell + src.Intn(perCell)
		st := users[user]
		if st == nil {
			st = &muUserState{
				gain:     math.Pow(10, src.Gauss(0, cfg.ShadowStdDB)/20),
				losPhase: make([]float64, cfg.CellUsers),
				scatter:  linalg.NewMat(cfg.Antennas, cfg.CellUsers),
			}
			for u := range st.losPhase {
				st.losPhase[u] = math.Pi * math.Sin(math.Pi*(src.Float64()-0.5))
			}
			for j := range st.scatter.Data {
				st.scatter.Data[j] = src.ComplexNorm()
			}
			st.remaining = geomLen()
			rebuild(st)
			tr.Windows++
			users[user] = st
		} else if st.remaining == 0 {
			// Window rollover: the scatter component evolves AR(1), the user
			// re-estimates, and downstream caches see a fresh fingerprint.
			for j := range st.scatter.Data {
				st.scatter.Data[j] = complex(rho, 0)*st.scatter.Data[j] +
					complex(innovW, 0)*src.ComplexNorm()
			}
			st.window++
			st.remaining = geomLen()
			rebuild(st)
			tr.Windows++
		}
		st.remaining--
		tr.Requests = append(tr.Requests, Request{Cell: cell, User: user, Window: st.window, H: st.h})
	}
	return tr, nil
}

// Dataset flattens the trace's distinct coherence-window channels into a
// Dataset (one snapshot per window, first-appearance order), so a generated
// multi-user trace can ride the QMTR file format unchanged.
func (tr *MultiUserTrace) Dataset() *Dataset {
	ds := &Dataset{Antennas: tr.Antennas, Users: tr.CellUsers}
	seen := make(map[*linalg.Mat]bool)
	for _, r := range tr.Requests {
		if !seen[r.H] {
			seen[r.H] = true
			ds.Snapshots = append(ds.Snapshots, r.H)
		}
	}
	return ds
}

// CellCounts tallies requests per cell — the observed popularity histogram.
func (tr *MultiUserTrace) CellCounts() []int {
	counts := make([]int, tr.Cells)
	for _, r := range tr.Requests {
		counts[r.Cell]++
	}
	return counts
}
