package trace

import (
	"bytes"
	"math"
	"math/cmplx"
	"path/filepath"
	"testing"

	"quamax/internal/linalg"
	"quamax/internal/rng"
)

func smallCfg() GeneratorConfig {
	cfg := DefaultGeneratorConfig()
	cfg.Antennas = 16
	cfg.Users = 4
	cfg.Uses = 10
	return cfg
}

func TestGenerateShapes(t *testing.T) {
	src := rng.New(111)
	ds, err := Generate(src, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Antennas != 16 || ds.Users != 4 || len(ds.Snapshots) != 10 {
		t.Fatalf("shape: %d×%d×%d", ds.Antennas, ds.Users, len(ds.Snapshots))
	}
	for _, s := range ds.Snapshots {
		if s.Rows != 16 || s.Cols != 4 {
			t.Fatal("snapshot shape wrong")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	src := rng.New(112)
	bad := smallCfg()
	bad.Uses = 0
	if _, err := Generate(src, bad); err == nil {
		t.Fatal("zero uses accepted")
	}
	bad = smallCfg()
	bad.Doppler = 1.0
	if _, err := Generate(src, bad); err == nil {
		t.Fatal("Doppler = 1 accepted")
	}
}

// Temporal correlation must decay with lag (AR(1) evolution).
func TestTemporalCorrelationDecays(t *testing.T) {
	src := rng.New(113)
	cfg := smallCfg()
	cfg.Uses = 120
	cfg.Doppler = 0.1
	cfg.RiceanK = 0 // pure scatter so correlation comes from AR(1) only
	ds, err := Generate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corr := func(lag int) float64 {
		var num complex128
		var den float64
		for t0 := 0; t0+lag < len(ds.Snapshots); t0++ {
			a, b := ds.Snapshots[t0], ds.Snapshots[t0+lag]
			for i := range a.Data {
				num += a.Data[i] * cmplx.Conj(b.Data[i])
				den += cmplx.Abs(a.Data[i]) * cmplx.Abs(b.Data[i])
			}
		}
		return cmplx.Abs(num) / den
	}
	if c1, c30 := corr(1), corr(30); c1 <= c30 {
		t.Fatalf("lag-1 correlation %.3f should exceed lag-30 %.3f", c1, c30)
	}
}

// Higher Ricean K must reduce fading depth (less magnitude variance).
func TestRiceanKReducesFading(t *testing.T) {
	variance := func(k float64, seed int64) float64 {
		cfg := smallCfg()
		cfg.Uses = 60
		cfg.RiceanK = k
		cfg.ShadowStdDB = 0
		cfg.Doppler = 0.5 // fast decorrelation for independent samples
		ds, err := Generate(rng.New(seed), cfg)
		if err != nil {
			panic(err)
		}
		var sum, sum2 float64
		n := 0
		for _, s := range ds.Snapshots {
			for _, v := range s.Data {
				m := cmplx.Abs(v)
				sum += m
				sum2 += m * m
				n++
			}
		}
		mean := sum / float64(n)
		return sum2/float64(n) - mean*mean
	}
	if vLow, vHigh := variance(0, 1), variance(20, 1); vHigh >= vLow {
		t.Fatalf("K=20 magnitude variance %.4f should be below K=0 %.4f", vHigh, vLow)
	}
}

func TestSamplePicksDistinctAntennas(t *testing.T) {
	src := rng.New(114)
	ds, _ := Generate(src, smallCfg())
	h, err := ds.Sample(src, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 4 || h.Cols != 4 {
		t.Fatalf("sample shape %dx%d", h.Rows, h.Cols)
	}
	// Each sampled row must appear in the snapshot.
	snap := ds.Snapshots[3]
	for i := 0; i < h.Rows; i++ {
		found := false
		for a := 0; a < snap.Rows; a++ {
			same := true
			for u := 0; u < snap.Cols; u++ {
				if snap.At(a, u) != h.At(i, u) {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled row %d not found in snapshot", i)
		}
	}
	if _, err := ds.Sample(src, 0, 17); err == nil {
		t.Fatal("oversample accepted")
	}
}

func TestNormalizeAveragePower(t *testing.T) {
	src := rng.New(115)
	ds, _ := Generate(src, smallCfg())
	ds.NormalizeAveragePower()
	var p float64
	n := 0
	for _, s := range ds.Snapshots {
		for _, v := range s.Data {
			p += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	if math.Abs(p/float64(n)-1) > 1e-9 {
		t.Fatalf("average power %.6f after normalization", p/float64(n))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := rng.New(116)
	ds, _ := Generate(src, smallCfg())
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Antennas != ds.Antennas || back.Users != ds.Users || len(back.Snapshots) != len(ds.Snapshots) {
		t.Fatal("header mismatch")
	}
	for t0 := range ds.Snapshots {
		if linalg.MaxAbsDiff(ds.Snapshots[t0], back.Snapshots[t0]) > 1e-6 {
			t.Fatalf("snapshot %d differs beyond float32 precision", t0)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated payload.
	src := rng.New(117)
	ds, _ := Generate(src, smallCfg())
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	src := rng.New(118)
	ds, _ := Generate(src, smallCfg())
	path := filepath.Join(t.TempDir(), "test.qmtr")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Snapshots) != len(ds.Snapshots) {
		t.Fatal("load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.qmtr")); err == nil {
		t.Fatal("missing file accepted")
	}
}
