package trace

import (
	"math"
	"testing"

	"quamax/internal/rng"
)

func muConfig() MultiUserConfig {
	cfg := DefaultMultiUserConfig()
	cfg.Cells = 16
	cfg.Users = 16000
	cfg.Requests = 3000
	return cfg
}

func TestMultiUserDeterministic(t *testing.T) {
	a, err := GenerateMultiUser(rng.New(42), muConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMultiUser(rng.New(42), muConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) || a.Windows != b.Windows {
		t.Fatalf("shape differs across identical seeds: %d/%d vs %d/%d",
			len(a.Requests), a.Windows, len(b.Requests), b.Windows)
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.Cell != rb.Cell || ra.User != rb.User || ra.Window != rb.Window {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.H.Data {
			if ra.H.Data[j] != rb.H.Data[j] {
				t.Fatalf("request %d channel differs at %d", i, j)
			}
		}
	}
}

// TestMultiUserZipfSkew checks the popularity law: with s > 1 the hottest
// cell must dominate a uniform share and the tail must stay cold.
func TestMultiUserZipfSkew(t *testing.T) {
	cfg := muConfig()
	cfg.ZipfS = 1.2
	tr, err := GenerateMultiUser(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.CellCounts()
	uniform := float64(cfg.Requests) / float64(cfg.Cells)
	if float64(counts[0]) < 2*uniform {
		t.Fatalf("hottest cell drew %d requests, want ≥ 2× the uniform share %.0f", counts[0], uniform)
	}
	if float64(counts[cfg.Cells-1]) > uniform {
		t.Fatalf("coldest cell drew %d requests, want < the uniform share %.0f", counts[cfg.Cells-1], uniform)
	}
	// s = 0 is uniform: every cell within 3σ of the mean share.
	cfg.ZipfS = 0
	flat, err := GenerateMultiUser(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(uniform)
	for c, n := range flat.CellCounts() {
		if math.Abs(float64(n)-uniform) > 6*sigma {
			t.Fatalf("uniform trace cell %d drew %d, want %.0f ± %.0f", c, n, uniform, 6*sigma)
		}
	}
}

// TestMultiUserCoherenceWindows checks the window contract: requests with
// equal (User, Window) share one channel matrix (pointer identity — the
// downstream fingerprint/cache key), windows advance monotonically per user,
// and rollovers change the channel.
func TestMultiUserCoherenceWindows(t *testing.T) {
	cfg := muConfig()
	cfg.WindowUses = 4
	tr, err := GenerateMultiUser(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastWindow := map[int]int{}
	windowH := map[[2]int]*Request{}
	rollovers := 0
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.H.Rows != cfg.Antennas || r.H.Cols != cfg.CellUsers {
			t.Fatalf("request %d channel is %dx%d, want %dx%d", i, r.H.Rows, r.H.Cols, cfg.Antennas, cfg.CellUsers)
		}
		if w, ok := lastWindow[r.User]; ok {
			if r.Window < w {
				t.Fatalf("user %d window went backward: %d after %d", r.User, r.Window, w)
			}
			if r.Window > w {
				rollovers++
				prev := windowH[[2]int{r.User, w}]
				if prev.H == r.H {
					t.Fatalf("user %d window %d reuses the previous window's channel", r.User, r.Window)
				}
			}
		}
		lastWindow[r.User] = r.Window
		key := [2]int{r.User, r.Window}
		if prev, ok := windowH[key]; ok {
			if prev.H != r.H {
				t.Fatalf("user %d window %d saw two different channels", r.User, r.Window)
			}
		} else {
			windowH[key] = r
		}
	}
	if rollovers == 0 {
		t.Fatal("no window ever rolled over (mean length 4 over 3000 requests)")
	}
	if tr.Windows != len(windowH) {
		t.Fatalf("trace reports %d windows, observed %d", tr.Windows, len(windowH))
	}
	// Users home to their own cell: one serving cell per user.
	cellOf := map[int]int{}
	for _, r := range tr.Requests {
		if c, ok := cellOf[r.User]; ok && c != r.Cell {
			t.Fatalf("user %d served by cells %d and %d", r.User, c, r.Cell)
		}
		cellOf[r.User] = r.Cell
	}
}

// TestMultiUserDataset checks the flattener: one snapshot per distinct
// window, in first-appearance order, with the trace's decode shape.
func TestMultiUserDataset(t *testing.T) {
	cfg := muConfig()
	cfg.Requests = 500
	tr, err := GenerateMultiUser(rng.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := tr.Dataset()
	if ds.Antennas != cfg.Antennas || ds.Users != cfg.CellUsers {
		t.Fatalf("dataset shape %dx%d, want %dx%d", ds.Antennas, ds.Users, cfg.Antennas, cfg.CellUsers)
	}
	if len(ds.Snapshots) != tr.Windows {
		t.Fatalf("dataset holds %d snapshots, trace drew %d windows", len(ds.Snapshots), tr.Windows)
	}
	if ds.Snapshots[0] != tr.Requests[0].H {
		t.Fatal("dataset snapshots are not in first-appearance order")
	}
}

func TestMultiUserRejectsBadConfig(t *testing.T) {
	base := muConfig()
	for name, mutate := range map[string]func(*MultiUserConfig){
		"no cells":         func(c *MultiUserConfig) { c.Cells = 0 },
		"fewer users":      func(c *MultiUserConfig) { c.Users = c.Cells - 1 },
		"no requests":      func(c *MultiUserConfig) { c.Requests = 0 },
		"no antennas":      func(c *MultiUserConfig) { c.Antennas = 0 },
		"no streams":       func(c *MultiUserConfig) { c.CellUsers = 0 },
		"zero window":      func(c *MultiUserConfig) { c.WindowUses = 0 },
		"negative zipf":    func(c *MultiUserConfig) { c.ZipfS = -1 },
		"doppler at 1":     func(c *MultiUserConfig) { c.Doppler = 1 },
		"negative doppler": func(c *MultiUserConfig) { c.Doppler = -0.5 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateMultiUser(rng.New(1), cfg); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}
}
