// Package trace provides the many-antenna channel measurements the paper's
// §5.5 trace-driven evaluation uses. The original study replays the Argos
// dataset of Shepard et al. [61] — 96 base-station antennas × 8 static users
// at 2.4 GHz, "the largest spatial multiplexing MIMO size publicly
// available". That dataset is not redistributable here, so this package
// contains:
//
//   - a synthetic generator producing measurements with the same structure
//     and the statistics the evaluation depends on (per-user large-scale
//     gains, Ricean line-of-sight + Rayleigh scatter mixing with a uniform
//     linear array, AR(1) temporal evolution at pedestrian Doppler), and
//   - a compact binary file format plus loader, so a real Argos trace
//     converted to this format can be swapped in without code changes.
//
// The §5.5 methodology is reproduced by Dataset.Sample: for each channel
// use, pick 8 of the 96 AP antennas at random and form the 8×8 system.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"quamax/internal/linalg"
	"quamax/internal/rng"
)

// Dataset is an in-memory channel trace: Uses channel-use snapshots of an
// Antennas×Users matrix.
type Dataset struct {
	Antennas int
	Users    int
	// Snapshots[t] is the Antennas×Users channel at use t.
	Snapshots []*linalg.Mat
}

// GeneratorConfig controls the synthetic trace model.
type GeneratorConfig struct {
	Antennas int     // base-station antennas (Argos: 96)
	Users    int     // static users (Argos: 8)
	Uses     int     // channel uses to generate
	RiceanK  float64 // LoS-to-scatter power ratio (linear); 0 = pure Rayleigh
	// Doppler is the AR(1) innovation weight per use in [0,1); 0 freezes the
	// channel, values near 1 decorrelate quickly. Pedestrian mobility at
	// 2.4 GHz with ~ms frame spacing corresponds to a small value (~0.02).
	Doppler float64
	// ShadowStdDB is the per-user log-normal shadowing spread in dB.
	ShadowStdDB float64
}

// DefaultGeneratorConfig mirrors the Argos capture shape: 96×8, pedestrian
// dynamics, moderate LoS.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Antennas:    96,
		Users:       8,
		Uses:        200,
		RiceanK:     3,
		Doppler:     0.02,
		ShadowStdDB: 2,
	}
}

// Generate synthesizes a dataset. Deterministic given src.
func Generate(src *rng.Source, cfg GeneratorConfig) (*Dataset, error) {
	if cfg.Antennas < 1 || cfg.Users < 1 || cfg.Uses < 1 {
		return nil, errors.New("trace: antennas, users and uses must be positive")
	}
	if cfg.Doppler < 0 || cfg.Doppler >= 1 {
		return nil, fmt.Errorf("trace: Doppler %g outside [0,1)", cfg.Doppler)
	}
	ds := &Dataset{Antennas: cfg.Antennas, Users: cfg.Users}

	// Per-user large-scale gain (log-normal shadowing, unit median) and
	// LoS angle for the uniform linear array.
	gain := make([]float64, cfg.Users)
	angle := make([]float64, cfg.Users)
	for u := range gain {
		gain[u] = math.Pow(10, src.Gauss(0, cfg.ShadowStdDB)/20)
		angle[u] = math.Pi * (src.Float64() - 0.5) // azimuth in (−π/2, π/2)
	}
	// LoS steering vectors for a λ/2-spaced ULA.
	los := linalg.NewMat(cfg.Antennas, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		phase := math.Pi * math.Sin(angle[u])
		for a := 0; a < cfg.Antennas; a++ {
			theta := phase*float64(a) + 2*math.Pi*src.Float64()*0 // common phase folded into scatter
			los.Set(a, u, complex(math.Cos(theta), math.Sin(theta)))
		}
	}
	kLin := cfg.RiceanK
	losW := math.Sqrt(kLin / (kLin + 1))
	scatW := math.Sqrt(1 / (kLin + 1))

	// AR(1) scatter evolution: s_t = ρ·s_{t−1} + √(1−ρ²)·innovation.
	rho := 1 - cfg.Doppler
	innovW := math.Sqrt(1 - rho*rho)
	scatter := linalg.NewMat(cfg.Antennas, cfg.Users)
	for i := range scatter.Data {
		scatter.Data[i] = src.ComplexNorm()
	}
	for t := 0; t < cfg.Uses; t++ {
		if t > 0 {
			for i := range scatter.Data {
				scatter.Data[i] = complex(rho, 0)*scatter.Data[i] + complex(innovW, 0)*src.ComplexNorm()
			}
		}
		snap := linalg.NewMat(cfg.Antennas, cfg.Users)
		for u := 0; u < cfg.Users; u++ {
			g := complex(gain[u], 0)
			for a := 0; a < cfg.Antennas; a++ {
				v := complex(losW, 0)*los.At(a, u) + complex(scatW, 0)*scatter.At(a, u)
				snap.Set(a, u, g*v)
			}
		}
		ds.Snapshots = append(ds.Snapshots, snap)
	}
	return ds, nil
}

// Sample implements the §5.5 methodology: for channel use t (mod len), pick
// `pick` distinct AP antennas at random and return the pick×Users submatrix.
func (d *Dataset) Sample(src *rng.Source, t, pick int) (*linalg.Mat, error) {
	if pick < 1 || pick > d.Antennas {
		return nil, fmt.Errorf("trace: cannot pick %d of %d antennas", pick, d.Antennas)
	}
	if len(d.Snapshots) == 0 {
		return nil, errors.New("trace: empty dataset")
	}
	snap := d.Snapshots[t%len(d.Snapshots)]
	perm := src.Perm(d.Antennas)[:pick]
	out := linalg.NewMat(pick, d.Users)
	for i, a := range perm {
		for u := 0; u < d.Users; u++ {
			out.Set(i, u, snap.At(a, u))
		}
	}
	return out, nil
}

// NormalizeAveragePower rescales the whole dataset so the mean per-entry
// power is 1, making channel.NoiseSigma's unit-gain SNR convention apply.
func (d *Dataset) NormalizeAveragePower() {
	var p float64
	n := 0
	for _, s := range d.Snapshots {
		for _, v := range s.Data {
			p += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	if n == 0 || p == 0 {
		return
	}
	scale := complex(1/math.Sqrt(p/float64(n)), 0)
	for _, s := range d.Snapshots {
		for i := range s.Data {
			s.Data[i] *= scale
		}
	}
}

// File format: magic "QMTR", version u16, antennas u16, users u16, uses u32,
// then uses×antennas×users (float32 real, float32 imag) row-major.
var fileMagic = [4]byte{'Q', 'M', 'T', 'R'}

const fileVersion = 1

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	hdr := []interface{}{
		uint16(fileVersion), uint16(d.Antennas), uint16(d.Users), uint32(len(d.Snapshots)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, s := range d.Snapshots {
		if s.Rows != d.Antennas || s.Cols != d.Users {
			return errors.New("trace: snapshot shape mismatch")
		}
		for _, v := range s.Data {
			binary.LittleEndian.PutUint32(buf[0:4], math.Float32bits(float32(real(v))))
			binary.LittleEndian.PutUint32(buf[4:8], math.Float32bits(float32(imag(v))))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: not a QMTR trace file")
	}
	var version, antennas, users uint16
	var uses uint32
	for _, p := range []interface{}{&version, &antennas, &users, &uses} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if antennas == 0 || users == 0 {
		return nil, errors.New("trace: empty dimensions")
	}
	ds := &Dataset{Antennas: int(antennas), Users: int(users)}
	buf := make([]byte, 8)
	for t := uint32(0); t < uses; t++ {
		snap := linalg.NewMat(int(antennas), int(users))
		for i := range snap.Data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("trace: truncated at use %d: %w", t, err)
			}
			re := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:4]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:8]))
			snap.Data[i] = complex(float64(re), float64(im))
		}
		ds.Snapshots = append(ds.Snapshots, snap)
	}
	return ds, nil
}

// Save writes the dataset to a file path.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file path.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
