package detector

import (
	"math"
	"testing"

	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func TestSICNoiseFree(t *testing.T) {
	src := rng.New(151)
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		h, y, bits, _ := instance(src, mod, 4, 6, math.Inf(1))
		res, err := SIC(mod, h, y, 0.01)
		if err != nil {
			t.Fatalf("%v: %v", mod, err)
		}
		if bitErrors(bits, res.Bits) != 0 {
			t.Fatalf("%v: SIC failed noise-free", mod)
		}
	}
}

// SIC must beat plain MMSE on square channels at moderate SNR (cancellation
// gain) while remaining below ML.
func TestSICBetweenMMSEAndML(t *testing.T) {
	src := rng.New(152)
	var sicErrs, mmseErrs, mlErrs, total int
	for trial := 0; trial < 60; trial++ {
		h, y, bits, nv := instance(src, modulation.BPSK, 8, 8, 12)
		sic, err := SIC(modulation.BPSK, h, y, nv)
		if err != nil {
			continue
		}
		mmse, err := MMSE(modulation.BPSK, h, y, nv)
		if err != nil {
			continue
		}
		ml, err := SphereDecode(modulation.BPSK, h, y, SphereOptions{})
		if err != nil {
			continue
		}
		sicErrs += bitErrors(bits, sic.Bits)
		mmseErrs += bitErrors(bits, mmse.Bits)
		mlErrs += bitErrors(bits, ml.Bits)
		total += len(bits)
	}
	if sicErrs >= mmseErrs {
		t.Fatalf("SIC (%d/%d) should beat MMSE (%d/%d)", sicErrs, total, mmseErrs, total)
	}
	if mlErrs > sicErrs {
		t.Logf("note: ML %d vs SIC %d (ML should win or tie)", mlErrs, sicErrs)
	}
}

func TestSICValidation(t *testing.T) {
	src := rng.New(153)
	h, y, _, _ := instance(src, modulation.BPSK, 2, 2, 10)
	if _, err := SIC(modulation.BPSK, h, y, -1); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestClassicalSADecodesNoiseFree(t *testing.T) {
	src := rng.New(154)
	sa := NewClassicalSA(200, 20)
	for _, mod := range []modulation.Modulation{modulation.BPSK, modulation.QPSK} {
		h, y, bits, _ := instance(src, mod, 8, 8, math.Inf(1))
		res, err := sa.Decode(mod, h, y, src)
		if err != nil {
			t.Fatalf("%v: %v", mod, err)
		}
		if bitErrors(bits, res.Bits) != 0 {
			t.Fatalf("%v: classical SA failed noise-free (metric %g)", mod, res.Metric)
		}
	}
}

// Classical SA on the logical problem must find the ML solution of moderate
// instances (cross-check against the sphere decoder).
func TestClassicalSAMatchesML(t *testing.T) {
	src := rng.New(155)
	sa := NewClassicalSA(300, 30)
	hits := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		h, y, _, _ := instance(src, modulation.BPSK, 12, 12, 15)
		res, err := sa.Decode(modulation.BPSK, h, y, src)
		if err != nil {
			t.Fatal(err)
		}
		ml, err := SphereDecode(modulation.BPSK, h, y, SphereOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Metric-ml.Metric) < 1e-6*(1+ml.Metric) {
			hits++
		}
	}
	if hits < trials-1 {
		t.Fatalf("classical SA matched ML on only %d/%d instances", hits, trials)
	}
}

func TestClassicalSAValidation(t *testing.T) {
	src := rng.New(156)
	h, y, _, _ := instance(src, modulation.BPSK, 2, 2, 10)
	bad := &ClassicalSA{Sweeps: 0, Restarts: 1, BetaInitial: 0.1, BetaFinal: 5}
	if _, err := bad.Decode(modulation.BPSK, h, y, src); err == nil {
		t.Fatal("zero sweeps accepted")
	}
}
