package detector

import (
	"errors"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// ClassicalSA solves the SAME logical Ising problem QuAMax builds, with
// plain simulated annealing on a conventional CPU — the "best classical
// competition to QPUs" the paper cites (§2.2, §6: QA performance "could
// match the most highly optimized simulated annealing code run on the
// latest Intel processors"). Unlike the annealer simulator it needs no
// embedding, chains, ICE or hardware ranges: it is the software baseline a
// data center could run today.
type ClassicalSA struct {
	// Sweeps per restart over the N logical spins.
	Sweeps int
	// Restarts of the annealing schedule; the best energy wins.
	Restarts int
	// BetaInitial/BetaFinal bound the geometric cooling schedule.
	BetaInitial, BetaFinal float64
}

// NewClassicalSA returns a configuration comparable to the QPU simulator's
// per-run effort (Restarts ≈ Na).
func NewClassicalSA(sweeps, restarts int) *ClassicalSA {
	return &ClassicalSA{Sweeps: sweeps, Restarts: restarts, BetaInitial: 0.05, BetaFinal: 5}
}

// Decode reduces (H, y) to Ising form and anneals it directly, returning
// the Gray bits of the best configuration found.
func (c *ClassicalSA) Decode(mod modulation.Modulation, h *linalg.Mat, y []complex128, src *rng.Source) (Result, error) {
	if c.Sweeps < 1 || c.Restarts < 1 {
		return Result{}, errors.New("detector: ClassicalSA needs positive sweeps and restarts")
	}
	p := reduction.ReduceToIsing(mod, h, y)
	// Scale β to the problem's coefficient magnitude so the schedule is
	// size-independent.
	scale := p.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	bi, bf := c.BetaInitial/scale*4, c.BetaFinal/scale*4
	logRatio := math.Log(bf / bi)

	spins := make([]int8, p.N)
	best := make([]int8, p.N)
	bestE := math.Inf(1)

	for r := 0; r < c.Restarts; r++ {
		for i := range spins {
			if src.Bool() {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		for sweep := 0; sweep < c.Sweeps; sweep++ {
			s := float64(sweep) / math.Max(1, float64(c.Sweeps-1))
			beta := bi * math.Exp(logRatio*s)
			for i := 0; i < p.N; i++ {
				f := p.H[i]
				for j := 0; j < p.N; j++ {
					if j != i {
						f += p.GetJ(i, j) * float64(spins[j])
					}
				}
				dE := -2 * float64(spins[i]) * f
				if dE <= 0 || src.Float64() < math.Exp(-beta*dE) {
					spins[i] = -spins[i]
				}
			}
		}
		if e := p.Energy(spins); e < bestE {
			bestE = e
			copy(best, spins)
		}
	}
	qbits := qubo.BitsFromSpins(best)
	symbols := reduction.BitsToSymbols(mod, qbits)
	res := finish(mod, h, y, symbols, 0)
	res.Bits = mod.PostTranslate(qbits)
	return res, nil
}
