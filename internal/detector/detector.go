// Package detector implements the classical MIMO detectors the paper
// compares against: the zero-forcing and MMSE linear filters that current
// large-MIMO designs use (§1, Fig. 14 baseline), exhaustive ML search, and a
// Schnorr–Euchner sphere decoder with visited-node accounting (§2.1,
// Table 1).
package detector

import (
	"errors"
	"fmt"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
)

// Result is a hard-decision detector output.
type Result struct {
	// Symbols are the detected constellation points, one per user.
	Symbols []complex128
	// Bits are the Gray-demapped data bits (BitsPerSymbol per user).
	Bits []byte
	// VisitedNodes counts sphere-decoder tree nodes whose partial metric was
	// evaluated (0 for other detectors) — the Table 1 complexity measure.
	VisitedNodes int
	// Metric is ‖y − H·Symbols‖² for the returned decision.
	Metric float64
}

func finish(mod modulation.Modulation, h *linalg.Mat, y, symbols []complex128, visited int) Result {
	return Result{
		Symbols:      symbols,
		Bits:         mod.DemapGrayVector(symbols),
		VisitedNodes: visited,
		Metric:       linalg.Norm2(linalg.VecSub(y, linalg.MulVec(h, symbols))),
	}
}

// ZeroForcing inverts the channel with the left pseudo-inverse and slices
// per user: x̂ = (HᴴH)⁻¹Hᴴy. Fails on rank-deficient channels.
func ZeroForcing(mod modulation.Modulation, h *linalg.Mat, y []complex128) (Result, error) {
	pinv, err := linalg.PseudoInverse(h)
	if err != nil {
		return Result{}, fmt.Errorf("detector: zero-forcing: %w", err)
	}
	x := linalg.MulVec(pinv, y)
	symbols := make([]complex128, len(x))
	for i, v := range x {
		symbols[i] = mod.Slice(v)
	}
	return finish(mod, h, y, symbols, 0), nil
}

// MMSE applies the minimum mean-squared-error filter
// x̂ = (HᴴH + (σ²/Es)·I)⁻¹Hᴴy, where noiseVar is the per-antenna complex
// noise variance σ² and Es the average symbol energy. Unlike zero-forcing
// it remains defined for singular channels (σ² > 0 regularizes).
func MMSE(mod modulation.Modulation, h *linalg.Mat, y []complex128, noiseVar float64) (Result, error) {
	if noiseVar < 0 {
		return Result{}, errors.New("detector: negative noise variance")
	}
	g := linalg.Gram(h)
	reg := noiseVar / mod.AvgSymbolEnergy()
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+complex(reg, 0))
	}
	gi, err := linalg.Inverse(g)
	if err != nil {
		return Result{}, fmt.Errorf("detector: MMSE: %w", err)
	}
	x := linalg.MulVec(linalg.Mul(gi, linalg.ConjTranspose(h)), y)
	symbols := make([]complex128, len(x))
	for i, v := range x {
		symbols[i] = mod.Slice(v)
	}
	return finish(mod, h, y, symbols, 0), nil
}

// MaxExhaustiveSearch bounds ExhaustiveML (|O|^Nt candidate vectors).
const MaxExhaustiveSearch = 1 << 22

// ExhaustiveML performs the full argmin of Eq. 1 by enumeration — the
// throughput-optimal reference for small problems.
func ExhaustiveML(mod modulation.Modulation, h *linalg.Mat, y []complex128) (Result, error) {
	nt := h.Cols
	points := mod.Constellation()
	total := 1.0
	for i := 0; i < nt; i++ {
		total *= float64(len(points))
		if total > MaxExhaustiveSearch {
			return Result{}, fmt.Errorf("detector: exhaustive search of |O|^%d candidates too large", nt)
		}
	}
	cur := make([]complex128, nt)
	best := make([]complex128, nt)
	bestMetric := math.Inf(1)
	var recurse func(level int)
	recurse = func(level int) {
		if level == nt {
			if m := linalg.Norm2(linalg.VecSub(y, linalg.MulVec(h, cur))); m < bestMetric {
				bestMetric = m
				copy(best, cur)
			}
			return
		}
		for _, p := range points {
			cur[level] = p
			recurse(level + 1)
		}
	}
	recurse(0)
	return finish(mod, h, y, best, 0), nil
}
