package detector

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func instance(src *rng.Source, mod modulation.Modulation, nt, nr int, snrDB float64) (*linalg.Mat, []complex128, []byte, float64) {
	h := channel.Rayleigh{}.Generate(src, nr, nt)
	bits := src.Bits(nt * mod.BitsPerSymbol())
	v := mod.MapGrayVector(bits)
	y := linalg.MulVec(h, v)
	sigma := 0.0
	if !math.IsInf(snrDB, 1) {
		sigma = channel.NoiseSigma(mod, nt, snrDB)
		y = channel.AddAWGN(src, y, sigma)
	}
	return h, y, bits, sigma * sigma
}

func bitErrors(a, b []byte) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestZeroForcingNoiseFree(t *testing.T) {
	src := rng.New(71)
	for _, mod := range modulation.All() {
		h, y, bits, _ := instance(src, mod, 4, 6, math.Inf(1))
		res, err := ZeroForcing(mod, h, y)
		if err != nil {
			t.Fatalf("%v: %v", mod, err)
		}
		if bitErrors(bits, res.Bits) != 0 {
			t.Fatalf("%v: ZF failed on noise-free channel", mod)
		}
		if res.Metric > 1e-9 {
			t.Fatalf("%v: metric %g, want ≈0", mod, res.Metric)
		}
	}
}

func TestZeroForcingSingularChannel(t *testing.T) {
	h := linalg.MatFromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := ZeroForcing(modulation.BPSK, h, []complex128{1, 1}); err == nil {
		t.Fatal("expected error on singular channel")
	}
}

func TestMMSENoiseFreeAndSingular(t *testing.T) {
	src := rng.New(72)
	h, y, bits, _ := instance(src, modulation.QPSK, 4, 6, math.Inf(1))
	res, err := MMSE(modulation.QPSK, h, y, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if bitErrors(bits, res.Bits) != 0 {
		t.Fatal("MMSE failed on noise-free channel")
	}
	// MMSE stays defined where ZF is singular.
	hs := linalg.MatFromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := MMSE(modulation.BPSK, hs, []complex128{2, 2}, 0.5); err != nil {
		t.Fatalf("MMSE should regularize singular channels: %v", err)
	}
	if _, err := MMSE(modulation.BPSK, hs, []complex128{2, 2}, -1); err == nil {
		t.Fatal("negative noise variance must error")
	}
}

func TestExhaustiveMLEqualsSphere(t *testing.T) {
	src := rng.New(73)
	cases := []struct {
		mod modulation.Modulation
		nt  int
	}{
		{modulation.BPSK, 6}, {modulation.QPSK, 4}, {modulation.QAM16, 2},
	}
	for _, c := range cases {
		for trial := 0; trial < 10; trial++ {
			h, y, _, _ := instance(src, c.mod, c.nt, c.nt, 10)
			ml, err := ExhaustiveML(c.mod, h, y)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := SphereDecode(c.mod, h, y, SphereOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ml.Metric-sp.Metric) > 1e-7*(1+ml.Metric) {
				t.Fatalf("%v nt=%d: sphere metric %g != ML metric %g", c.mod, c.nt, sp.Metric, ml.Metric)
			}
			if bitErrors(ml.Bits, sp.Bits) != 0 && math.Abs(ml.Metric-sp.Metric) > 1e-9 {
				t.Fatalf("%v: sphere bits differ from ML bits with different metric", c.mod)
			}
		}
	}
}

func TestExhaustiveMLTooLarge(t *testing.T) {
	src := rng.New(74)
	h, y, _, _ := instance(src, modulation.QAM64, 5, 5, 20)
	if _, err := ExhaustiveML(modulation.QAM64, h, y); err == nil {
		t.Fatal("expected size guard to trip")
	}
}

func TestSphereNoiseFreeZeroMetric(t *testing.T) {
	src := rng.New(75)
	for _, mod := range modulation.All() {
		h, y, bits, _ := instance(src, mod, 3, 3, math.Inf(1))
		res, err := SphereDecode(mod, h, y, SphereOptions{})
		if err != nil {
			t.Fatalf("%v: %v", mod, err)
		}
		if res.Metric > 1e-8 {
			t.Fatalf("%v: noise-free sphere metric %g", mod, res.Metric)
		}
		if bitErrors(bits, res.Bits) != 0 {
			t.Fatalf("%v: wrong bits", mod)
		}
	}
}

func TestSphereRadiusExcludesEverything(t *testing.T) {
	src := rng.New(76)
	h, y, _, _ := instance(src, modulation.BPSK, 4, 4, 10)
	_, err := SphereDecode(modulation.BPSK, h, y, SphereOptions{InitialRadius2: 1e-12})
	if err != ErrNoLeafFound {
		t.Fatalf("expected ErrNoLeafFound, got %v", err)
	}
}

func TestSphereNodeBudget(t *testing.T) {
	src := rng.New(77)
	h, y, _, _ := instance(src, modulation.QAM16, 6, 6, 5)
	res, err := SphereDecode(modulation.QAM16, h, y, SphereOptions{MaxVisitedNodes: 10})
	if err == nil && !res.Exhausted {
		t.Fatal("tiny budget should exhaust or fail")
	}
	if res.VisitedNodes > 11 {
		t.Fatalf("visited %d nodes with budget 10", res.VisitedNodes)
	}
}

// Visited-node counts must grow with system size (the Table 1 story).
func TestSphereComplexityGrowsWithSize(t *testing.T) {
	src := rng.New(78)
	avg := func(nt int) float64 {
		var total float64
		const trials = 30
		for i := 0; i < trials; i++ {
			h, y, _, _ := instance(src, modulation.BPSK, nt, nt, 13)
			res, err := SphereDecode(modulation.BPSK, h, y, SphereOptions{})
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.VisitedNodes)
		}
		return total / trials
	}
	small, large := avg(4), avg(12)
	if large <= small {
		t.Fatalf("visited nodes should grow: %g (4 users) vs %g (12 users)", small, large)
	}
}

// ZF must hit a BER floor at Nt=Nr while ML-grade detection does not —
// the Fig. 14 phenomenon.
func TestZFWorseThanMLOnSquareChannels(t *testing.T) {
	src := rng.New(79)
	var zfErrs, mlErrs, total int
	for trial := 0; trial < 60; trial++ {
		h, y, bits, _ := instance(src, modulation.BPSK, 8, 8, 11)
		zf, err := ZeroForcing(modulation.BPSK, h, y)
		if err != nil {
			continue // rare singular draw
		}
		ml, err := SphereDecode(modulation.BPSK, h, y, SphereOptions{})
		if err != nil {
			t.Fatal(err)
		}
		zfErrs += bitErrors(bits, zf.Bits)
		mlErrs += bitErrors(bits, ml.Bits)
		total += len(bits)
	}
	if zfErrs <= mlErrs {
		t.Fatalf("expected ZF (%d/%d errors) to underperform ML (%d/%d)", zfErrs, total, mlErrs, total)
	}
}
