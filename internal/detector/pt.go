package detector

import (
	"quamax/internal/anneal"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// ParallelTempering solves the SAME logical Ising problem QuAMax builds with
// replica-exchange Monte Carlo over the bit-parallel multi-spin engine
// (anneal.RunPT) — the strongest classical stand-in for the QPU (ParaMax;
// Kim et al., MobiCom 2021). Where ClassicalSA restarts independent cooling
// schedules, parallel tempering runs a fixed temperature ladder whose rungs
// exchange replicas, so hot rungs keep supplying the cold rungs with escapes
// from local minima; the multi-spin engine advances a whole ladder per
// packed sweep. Like ClassicalSA it needs no embedding, chains, ICE or
// hardware ranges.
type ParallelTempering struct {
	// Params forwards to anneal.RunPT; zero fields take the engine defaults
	// (β ladder auto-scaled to the problem's coefficient magnitude).
	Params anneal.PTParams
	// Workers bounds ladder-level goroutine parallelism (≤ 0 means one).
	Workers int
}

// NewParallelTempering returns a configuration with effort comparable to
// NewClassicalSA(sweeps, restarts): ladders play the role of restarts (each
// contributes an independent cold sample) at the same per-ladder sweep count.
func NewParallelTempering(rungs, ladders, sweeps int) *ParallelTempering {
	return &ParallelTempering{
		Params: anneal.PTParams{Rungs: rungs, Ladders: ladders, Sweeps: sweeps},
	}
}

// Decode reduces (H, y) to Ising form, runs parallel tempering on it, and
// returns the Gray bits of the best configuration observed on any rung.
func (c *ParallelTempering) Decode(mod modulation.Modulation, h *linalg.Mat, y []complex128, src *rng.Source) (Result, error) {
	p := reduction.ReduceToIsing(mod, h, y)
	out, err := anneal.RunPT(qubo.SparseFromIsing(p), c.Params, c.Workers, src)
	if err != nil {
		return Result{}, err
	}
	qbits := qubo.BitsFromSpins(out.BestSpins)
	symbols := reduction.BitsToSymbols(mod, qbits)
	res := finish(mod, h, y, symbols, 0)
	res.Bits = mod.PostTranslate(qbits)
	return res, nil
}
