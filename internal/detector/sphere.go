package detector

import (
	"errors"
	"math"
	"sort"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
)

// SphereOptions tune the sphere decoder.
type SphereOptions struct {
	// InitialRadius2 is the squared search radius C (Eq. 1 constraint
	// ‖y−Hv‖² ≤ C). Zero or negative means unbounded (∞): the first leaf
	// then sets the radius, which is the usual Schnorr–Euchner operation.
	InitialRadius2 float64
	// MaxVisitedNodes aborts runaway searches (0 = unlimited). When the
	// budget is exhausted the best leaf so far (if any) is returned with
	// Exhausted set.
	MaxVisitedNodes int
}

// ErrNoLeafFound is returned when the radius (or node budget) excluded every
// candidate.
var ErrNoLeafFound = errors.New("detector: sphere decoder found no candidate within the radius")

// SphereResult extends Result with search diagnostics.
type SphereResult struct {
	Result
	// Exhausted reports that MaxVisitedNodes stopped the search early.
	Exhausted bool
}

// SphereDecode runs a depth-first Schnorr–Euchner sphere decoder (§2.1) on
// the real-valued decomposition of the channel: QR-decompose, then walk the
// tree from the last dimension with children ordered by distance from the
// zigzag center, pruning branches whose partial metric exceeds the current
// radius, and shrinking the radius at each improving leaf.
//
// VisitedNodes counts every tree node whose partial metric was evaluated —
// the complexity measure of Table 1.
func SphereDecode(mod modulation.Modulation, h *linalg.Mat, y []complex128, opts SphereOptions) (SphereResult, error) {
	nt := h.Cols
	// Real-valued system: BPSK keeps Nt real dimensions, QAM uses 2Nt.
	var hr *linalg.Mat
	if mod.HasQuadrature() {
		hr = linalg.RealDecomposition(h)
	} else {
		hr = linalg.RealDecompositionI(h)
	}
	yr := linalg.StackReal(y)
	n := hr.Cols

	f := linalg.QRDecompose(hr)
	ybar := f.RotateReceived(yr)

	// Real triangular system.
	r := make([][]float64, n)
	for i := 0; i < n; i++ {
		r[i] = make([]float64, n)
		for j := i; j < n; j++ {
			r[i][j] = real(f.R.At(i, j))
		}
		if r[i][i] == 0 {
			return SphereResult{}, errors.New("detector: sphere decoder needs a full-rank channel")
		}
	}
	yb := make([]float64, n)
	for i := range yb {
		yb[i] = real(ybar[i])
	}
	// The rotated residual ‖yr‖²−‖ybar‖² is constant (Q thin); account for it
	// so returned metrics match ‖y−Hv‖² exactly.
	residual := linalg.Norm2(yr) - linalg.Norm2(ybar)
	if residual < 0 {
		residual = 0
	}

	levels := mod.Levels()
	radius2 := math.Inf(1)
	if opts.InitialRadius2 > 0 {
		radius2 = opts.InitialRadius2 - residual
	}

	best := make([]float64, n)
	bestMetric := math.Inf(1)
	found := false
	visited := 0
	exhausted := false
	x := make([]float64, n)

	// candidate ordering scratch.
	type cand struct {
		val  float64
		dist float64
	}
	cands := make([][]cand, n)
	for i := range cands {
		cands[i] = make([]cand, len(levels))
	}

	var dfs func(level int, partial float64)
	dfs = func(level int, partial float64) {
		if exhausted {
			return
		}
		// Schnorr–Euchner: order this level's alphabet by distance to the
		// unconstrained center.
		var proj float64
		for j := level + 1; j < n; j++ {
			proj += r[level][j] * x[j]
		}
		center := (yb[level] - proj) / r[level][level]
		cs := cands[level]
		for k, lvl := range levels {
			d := r[level][level] * (lvl - center)
			cs[k] = cand{val: lvl, dist: d * d}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].dist < cs[b].dist })

		for _, c := range cs {
			visited++
			if opts.MaxVisitedNodes > 0 && visited > opts.MaxVisitedNodes {
				exhausted = true
				return
			}
			m := partial + c.dist
			if m >= radius2 || m >= bestMetric {
				// Children are distance-ordered: all remaining are worse.
				break
			}
			x[level] = c.val
			if level == 0 {
				bestMetric = m
				radius2 = m
				copy(best, x)
				found = true
				continue
			}
			dfs(level-1, m)
			if exhausted {
				return
			}
		}
	}
	dfs(n-1, 0)

	if !found {
		return SphereResult{Result: Result{VisitedNodes: visited}, Exhausted: exhausted}, ErrNoLeafFound
	}
	// Reassemble complex symbols from the RVD solution.
	symbols := make([]complex128, nt)
	for i := 0; i < nt; i++ {
		if mod.HasQuadrature() {
			symbols[i] = complex(best[i], best[i+nt])
		} else {
			symbols[i] = complex(best[i], 0)
		}
	}
	res := finish(mod, h, y, symbols, visited)
	return SphereResult{Result: res, Exhausted: exhausted}, nil
}
