package detector

import (
	"fmt"
	"math"

	"quamax/internal/linalg"
	"quamax/internal/modulation"
)

// SIC performs ordered successive interference cancellation (V-BLAST style):
// repeatedly detect the strongest remaining user with an MMSE filter, slice,
// subtract its contribution, and continue. It sits between the linear
// filters and ML in both complexity and BER, and serves as an additional
// classical baseline for the Fig. 14-style comparisons.
//
// noiseVar is the per-antenna complex noise power σ² (0 degenerates to
// ordered zero-forcing cancellation).
func SIC(mod modulation.Modulation, h *linalg.Mat, y []complex128, noiseVar float64) (Result, error) {
	if noiseVar < 0 {
		return Result{}, fmt.Errorf("detector: negative noise variance")
	}
	nt := h.Cols
	remaining := make([]int, nt) // original column index per active position
	for i := range remaining {
		remaining[i] = i
	}
	cur := h.Clone()
	res := make([]complex128, len(y))
	copy(res, y)
	symbols := make([]complex128, nt)
	reg := noiseVar / mod.AvgSymbolEnergy()

	for len(remaining) > 0 {
		// MMSE pseudo-inverse of the remaining columns.
		g := linalg.Gram(cur)
		for i := 0; i < g.Rows; i++ {
			g.Set(i, i, g.At(i, i)+complex(reg, 0))
		}
		gi, err := linalg.Inverse(g)
		if err != nil {
			return Result{}, fmt.Errorf("detector: SIC: %w", err)
		}
		w := linalg.Mul(gi, linalg.ConjTranspose(cur))
		x := linalg.MulVec(w, res)

		// Order: pick the stream with the highest post-filter SINR proxy
		// (smallest diagonal of the regularized inverse Gram).
		best, bestVal := 0, math.Inf(1)
		for i := 0; i < gi.Rows; i++ {
			if v := real(gi.At(i, i)); v < bestVal {
				best, bestVal = i, v
			}
		}
		user := remaining[best]
		sym := mod.Slice(x[best])
		symbols[user] = sym

		// Cancel: res −= h_user · sym.
		for r := 0; r < h.Rows; r++ {
			res[r] -= cur.At(r, best) * sym
		}
		// Drop the detected column.
		next := linalg.NewMat(cur.Rows, cur.Cols-1)
		col := 0
		for c := 0; c < cur.Cols; c++ {
			if c == best {
				continue
			}
			for r := 0; r < cur.Rows; r++ {
				next.Set(r, col, cur.At(r, c))
			}
			col++
		}
		cur = next
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return finish(mod, h, y, symbols, 0), nil
}
