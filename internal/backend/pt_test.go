package backend

import (
	"context"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func TestParallelTemperingSolve(t *testing.T) {
	c := NewParallelTempering("pt", 0, 0, 0)
	in := testInstance(t, 91, modulation.QPSK, 4)
	p := problemOf(in)
	res, err := c.Solve(context.Background(), p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("PT backend: %d bit errors on a noise-free channel", errs)
	}
	if res.Backend != "pt" || res.Batched != 1 {
		t.Fatalf("result metadata: %+v", res)
	}
	if res.ComputeMicros <= 0 {
		t.Fatal("no compute time reported")
	}
}

func TestParallelTemperingEstimate(t *testing.T) {
	c := NewParallelTempering("pt", 8, 2, 50)
	c.MicrosPerSpinSweep = 1
	in := testInstance(t, 92, modulation.QPSK, 4) // 8 logical spins
	p := problemOf(in)
	// sweeps·rungs·ladders·n·µ·(1+n/64) = 50·8·2·8·1·1.125 = 7200.
	if est := c.Describe().PredictMicros(p); est != 7200 {
		t.Fatalf("PredictMicros = %g, want 7200", est)
	}
	// A planner override re-prices the run; zero knobs price at defaults.
	p.PT = &anneal.PTParams{Rungs: 4, Ladders: 1, Sweeps: 10}
	if est := c.Describe().PredictMicros(p); est != 10*4*1*8*1.125 {
		t.Fatalf("overridden PredictMicros = %g, want %g", est, 10*4*1*8*1.125)
	}
	p.PT = &anneal.PTParams{}
	if est := c.Describe().PredictMicros(p); est != 100*16*4*8*1.125 {
		t.Fatalf("default-priced PredictMicros = %g, want %g", est, 100*16*4*8*1.125)
	}
}

// A per-request PT budget must actually steer the solve: a starved budget and
// the backend default must both run (the noise-free instance keeps the answer
// checkable), and the override must not leak into later unbudgeted solves.
func TestParallelTemperingBudgetOverride(t *testing.T) {
	c := NewParallelTempering("pt", 0, 0, 0)
	in := testInstance(t, 93, modulation.QPSK, 4)
	budgeted := problemOf(in)
	budgeted.PT = &anneal.PTParams{Rungs: 4, Ladders: 1, Sweeps: 12}
	res, err := c.Solve(context.Background(), budgeted, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("budgeted PT solve: %d bit errors on a noise-free channel", errs)
	}
	plain, err := c.Solve(context.Background(), problemOf(in), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(plain.Bits); errs != 0 {
		t.Fatalf("default PT solve after override: %d bit errors", errs)
	}
	if d := c.PT.Params; d.Rungs != 0 || d.Ladders != 0 || d.Sweeps != 0 {
		t.Fatalf("request budget leaked into backend defaults: %+v", d)
	}
}

func TestParallelTemperingHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := testInstance(t, 94, modulation.BPSK, 4)
	if _, err := NewParallelTempering("pt", 0, 0, 0).Solve(ctx, problemOf(in), rng.New(1)); err == nil {
		t.Fatal("canceled context accepted")
	}
}
