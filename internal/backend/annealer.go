package backend

import (
	"context"
	"errors"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/core"
	"quamax/internal/metrics"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// Annealer adapts the simulated QPU (internal/core over internal/anneal) to
// the Backend interface. One Annealer models one annealer chip plus its
// classical control plane; a pool of them is the paper's §7 "QPU pool".
//
// It implements BatchBackend: batch-compatible problems are programmed into
// disjoint clique-embedding slots of the chip and share a single annealer run
// (core.DecodeSharedRun), which is the §4 parallelization applied across
// requests instead of within one.
type Annealer struct {
	name string
	dec  *core.Decoder
	caps *Capabilities
}

// NewAnnealer builds a simulated QPU backend with the given decoder options
// (zero Options select the paper's DW2Q operating point).
func NewAnnealer(name string, opts core.Options) (*Annealer, error) {
	dec, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return AnnealerFromDecoder(name, dec), nil
}

// AnnealerFromDecoder wraps an existing decoder (sharing its embedding
// caches) as a Backend.
func AnnealerFromDecoder(name string, dec *core.Decoder) *Annealer {
	a := &Annealer{name: name, dec: dec}
	slots, err := dec.BatchSlots(2)
	if err != nil || slots < 1 {
		slots = 1
	}
	a.caps = &Capabilities{
		Name:          name,
		Latency:       a.occupancyMicros,
		Cost:          DefaultQPUCostModel,
		Qubits:        dec.Options().Graph.NumWorkingQubits(),
		MaxBatchSlots: slots,
		Features:      FeatureBatch | FeatureReverse | FeatureSoft | FeatureQuantum,
	}
	return a
}

// Describe implements Backend. The annealer advertises quantum hardware with
// batch, reverse-anneal and soft-output support, priced at the leased-QPU
// cost model.
func (a *Annealer) Describe() *Capabilities { return a.caps }

// Decoder exposes the wrapped QuAMax decoder.
func (a *Annealer) Decoder() *core.Decoder { return a.dec }

// params resolves the effective run knobs for p: its planner-sized override
// when present, the decoder's configured Params otherwise.
func (a *Annealer) params(p *Problem) anneal.Params {
	if p.Anneal != nil {
		return *p.Anneal
	}
	return a.dec.Options().Params
}

// softSpec converts a problem's soft-output request into the decoder-level
// spec (nil for hard problems).
func softSpec(p *Problem) *softout.Spec {
	if !p.Soft {
		return nil
	}
	return &softout.Spec{NoiseVar: p.NoiseVar, Clamp: p.LLRClamp}
}

// occupancyMicros is the descriptor's latency hook: the modeled device
// occupancy of one run, Na·(Ta+Tp) under the problem's effective anneal
// parameters. The chip is busy for the full run regardless of slot
// amortization, so this — not the amortized per-problem time — is what queue
// waits accumulate.
func (a *Annealer) occupancyMicros(p *Problem) float64 {
	params := a.params(p)
	return float64(params.NumAnneals) * params.AnnealWallMicros()
}

// Solve runs the full QuAMax pipeline on one problem, honoring its Anneal,
// ChainJF and Reverse overrides. A reverse decode that cannot compute its
// linear seed (ill-conditioned channel, core.ErrNoSeed) falls back to a
// forward anneal; any other error is a real failure and surfaces.
//
// Problems tagged with a ChannelKey (coherence-window symbols) decode
// through the decoder's compiled-channel cache: the channel's couplings,
// embedding and prepared physical program are compiled on the first symbol
// and only the biases are rewritten for the rest of the window. The result
// is bit-identical to the recompiling path. Reverse decodes always take the
// recompiling path (their seeded physical init is per-symbol anyway).
//
// Soft problems (p.Soft) run the corresponding soft decode path and carry
// per-bit LLRs in the Result; the hard bits are unchanged. A soft problem
// requesting reverse annealing runs a forward soft anneal instead — the
// reverse ensemble clusters around the linear seed, so its LLRs would be
// biased toward the seed's decision rather than the posterior (the planner
// never plans reverse for soft requests for the same reason).
func (a *Annealer) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := a.params(p)
	soft := softSpec(p)
	var out *core.Outcome
	var err error
	var compileMicros float64
	var cacheHit bool
	switch {
	case p.Reverse && soft == nil:
		out, err = a.dec.DecodeReverseWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
		if errors.Is(err, core.ErrNoSeed) {
			out, err = a.dec.DecodeWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
		}
	case p.ChannelKey != 0:
		var cc *core.CompiledChannel
		compileStart := time.Now()
		cc, cacheHit, err = a.dec.CompileTracked(p.Mod, p.H)
		compileMicros = float64(time.Since(compileStart)) / float64(time.Microsecond)
		if err == nil {
			if soft != nil {
				out, err = a.dec.DecodeCompiledSoftWithParams(cc, p.Y, *soft, params, p.ChainJF, src)
			} else {
				out, err = a.dec.DecodeCompiledWithParams(cc, p.Y, params, p.ChainJF, src)
			}
		}
	case soft != nil:
		out, err = a.dec.DecodeSoftWithParams(p.Mod, p.H, p.Y, *soft, params, p.ChainJF, src)
	default:
		out, err = a.dec.DecodeWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
	}
	if err != nil {
		return nil, err
	}
	res := a.result(out, params, 1)
	res.CompileMicros = compileMicros
	res.CacheHit = cacheHit
	return res, nil
}

// BatchSlots implements BatchBackend via the chip's geometric slot packing.
func (a *Annealer) BatchSlots(p *Problem) int {
	slots, err := a.dec.BatchSlots(p.LogicalSpins())
	if err != nil || slots < 1 {
		return 1
	}
	return slots
}

// SolveBatch decodes all ps in one shared annealer run. The run's schedule
// comes from the batch's (Batchable-compatible) anneal overrides, with the
// read budget the max over the batch — extra reads only improve the
// co-scheduled problems. When any problem carries a ChannelKey, the batch
// runs through the compiled-channel shared path: each slot's couplers come
// from its channel's cached template and only the biases are programmed
// fresh — the common case when the scheduler's coherence-aware gather packs
// one window's symbols into one run. Unkeyed stragglers riding such a batch
// are compiled too (Compile needs no key) rather than dragging the whole
// run back to per-slot recompilation; an all-unkeyed batch stays on the
// recompiling path so one-shot channels don't churn the cache.
func (a *Annealer) SolveBatch(ctx context.Context, ps []*Problem, src *rng.Source) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := a.params(ps[0])
	compiled := false
	for _, p := range ps {
		if q := a.params(p); q.NumAnneals > params.NumAnneals {
			params.NumAnneals = q.NumAnneals
		}
		if p.ChannelKey != 0 {
			compiled = true
		}
	}

	var outs []*core.Outcome
	var err error
	compileMicros := make([]float64, len(ps))
	cacheHits := make([]bool, len(ps))
	if compiled {
		items := make([]core.CompiledBatchItem, len(ps))
		for i, p := range ps {
			compileStart := time.Now()
			cc, hit, cerr := a.dec.CompileTracked(p.Mod, p.H)
			if cerr != nil {
				return nil, cerr
			}
			compileMicros[i] = float64(time.Since(compileStart)) / float64(time.Microsecond)
			cacheHits[i] = hit
			items[i] = core.CompiledBatchItem{CC: cc, Y: p.Y, Soft: softSpec(p)}
		}
		outs, err = a.dec.DecodeCompiledSharedRunWithParams(items, params, ps[0].ChainJF, src)
	} else {
		items := make([]core.BatchItem, len(ps))
		for i, p := range ps {
			items[i] = core.BatchItem{Mod: p.Mod, H: p.H, Y: p.Y, Soft: softSpec(p)}
		}
		outs, err = a.dec.DecodeSharedRunWithParams(items, params, ps[0].ChainJF, src)
	}
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(outs))
	for i, out := range outs {
		results[i] = a.result(out, params, len(ps))
		results[i].CompileMicros = compileMicros[i]
		results[i].CacheHit = cacheHits[i]
	}
	return results, nil
}

// ChannelCacheStats exposes the wrapped decoder's compiled-channel cache
// counters for pool observability.
func (a *Annealer) ChannelCacheStats() metrics.ChannelCacheStats {
	return a.dec.ChannelCacheStats()
}

// result converts a decoder outcome, applying the Na·(Ta+Tp)/Pf compute-time
// model the fronthaul reports for TTB accounting.
func (a *Annealer) result(out *core.Outcome, params anneal.Params, batched int) *Result {
	na := float64(params.NumAnneals)
	pf := out.Pf
	if pf < 1 {
		pf = 1
	}
	return &Result{
		Bits:          out.Bits,
		Energy:        out.Energy,
		ComputeMicros: na * out.WallMicrosPerAnneal / pf,
		Backend:       a.name,
		Batched:       batched,
		LLRs:          out.LLRs,
		LLRSaturated:  out.LLRSaturated,
		Reads:         params.NumAnneals,
		BrokenChains:  out.BrokenChains,
	}
}
