package backend

import (
	"context"
	"errors"

	"quamax/internal/anneal"
	"quamax/internal/core"
	"quamax/internal/rng"
)

// Annealer adapts the simulated QPU (internal/core over internal/anneal) to
// the Backend interface. One Annealer models one annealer chip plus its
// classical control plane; a pool of them is the paper's §7 "QPU pool".
//
// It implements BatchBackend: batch-compatible problems are programmed into
// disjoint clique-embedding slots of the chip and share a single annealer run
// (core.DecodeSharedRun), which is the §4 parallelization applied across
// requests instead of within one.
type Annealer struct {
	name string
	dec  *core.Decoder
}

// NewAnnealer builds a simulated QPU backend with the given decoder options
// (zero Options select the paper's DW2Q operating point).
func NewAnnealer(name string, opts core.Options) (*Annealer, error) {
	dec, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return &Annealer{name: name, dec: dec}, nil
}

// AnnealerFromDecoder wraps an existing decoder (sharing its embedding
// caches) as a Backend.
func AnnealerFromDecoder(name string, dec *core.Decoder) *Annealer {
	return &Annealer{name: name, dec: dec}
}

// Name implements Backend.
func (a *Annealer) Name() string { return a.name }

// Decoder exposes the wrapped QuAMax decoder.
func (a *Annealer) Decoder() *core.Decoder { return a.dec }

// params resolves the effective run knobs for p: its planner-sized override
// when present, the decoder's configured Params otherwise.
func (a *Annealer) params(p *Problem) anneal.Params {
	if p.Anneal != nil {
		return *p.Anneal
	}
	return a.dec.Options().Params
}

// EstimateMicros returns the modeled device occupancy of one run,
// Na·(Ta+Tp) under the problem's effective anneal parameters. The chip is
// busy for the full run regardless of slot amortization, so this — not the
// amortized per-problem time — is what queue waits accumulate.
func (a *Annealer) EstimateMicros(p *Problem) float64 {
	params := a.params(p)
	return float64(params.NumAnneals) * params.AnnealWallMicros()
}

// Solve runs the full QuAMax pipeline on one problem, honoring its Anneal,
// ChainJF and Reverse overrides. A reverse decode that cannot compute its
// linear seed (ill-conditioned channel, core.ErrNoSeed) falls back to a
// forward anneal; any other error is a real failure and surfaces.
func (a *Annealer) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := a.params(p)
	var out *core.Outcome
	var err error
	if p.Reverse {
		out, err = a.dec.DecodeReverseWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
		if errors.Is(err, core.ErrNoSeed) {
			out, err = a.dec.DecodeWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
		}
	} else {
		out, err = a.dec.DecodeWithParams(p.Mod, p.H, p.Y, params, p.ChainJF, src)
	}
	if err != nil {
		return nil, err
	}
	return a.result(out, params, 1), nil
}

// BatchSlots implements BatchBackend via the chip's geometric slot packing.
func (a *Annealer) BatchSlots(p *Problem) int {
	slots, err := a.dec.BatchSlots(p.LogicalSpins())
	if err != nil || slots < 1 {
		return 1
	}
	return slots
}

// SolveBatch decodes all ps in one shared annealer run. The run's schedule
// comes from the batch's (Batchable-compatible) anneal overrides, with the
// read budget the max over the batch — extra reads only improve the
// co-scheduled problems.
func (a *Annealer) SolveBatch(ctx context.Context, ps []*Problem, src *rng.Source) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := a.params(ps[0])
	for _, p := range ps[1:] {
		if q := a.params(p); q.NumAnneals > params.NumAnneals {
			params.NumAnneals = q.NumAnneals
		}
	}
	items := make([]core.BatchItem, len(ps))
	for i, p := range ps {
		items[i] = core.BatchItem{Mod: p.Mod, H: p.H, Y: p.Y}
	}
	outs, err := a.dec.DecodeSharedRunWithParams(items, params, ps[0].ChainJF, src)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(outs))
	for i, out := range outs {
		results[i] = a.result(out, params, len(ps))
	}
	return results, nil
}

// result converts a decoder outcome, applying the Na·(Ta+Tp)/Pf compute-time
// model the fronthaul reports for TTB accounting.
func (a *Annealer) result(out *core.Outcome, params anneal.Params, batched int) *Result {
	na := float64(params.NumAnneals)
	pf := out.Pf
	if pf < 1 {
		pf = 1
	}
	return &Result{
		Bits:          out.Bits,
		Energy:        out.Energy,
		ComputeMicros: na * out.WallMicrosPerAnneal / pf,
		Backend:       a.name,
		Batched:       batched,
	}
}
