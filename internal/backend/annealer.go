package backend

import (
	"context"

	"quamax/internal/core"
	"quamax/internal/rng"
)

// Annealer adapts the simulated QPU (internal/core over internal/anneal) to
// the Backend interface. One Annealer models one annealer chip plus its
// classical control plane; a pool of them is the paper's §7 "QPU pool".
//
// It implements BatchBackend: batch-compatible problems are programmed into
// disjoint clique-embedding slots of the chip and share a single annealer run
// (core.DecodeSharedRun), which is the §4 parallelization applied across
// requests instead of within one.
type Annealer struct {
	name string
	dec  *core.Decoder
}

// NewAnnealer builds a simulated QPU backend with the given decoder options
// (zero Options select the paper's DW2Q operating point).
func NewAnnealer(name string, opts core.Options) (*Annealer, error) {
	dec, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return &Annealer{name: name, dec: dec}, nil
}

// AnnealerFromDecoder wraps an existing decoder (sharing its embedding
// caches) as a Backend.
func AnnealerFromDecoder(name string, dec *core.Decoder) *Annealer {
	return &Annealer{name: name, dec: dec}
}

// Name implements Backend.
func (a *Annealer) Name() string { return a.name }

// Decoder exposes the wrapped QuAMax decoder.
func (a *Annealer) Decoder() *core.Decoder { return a.dec }

// EstimateMicros returns the modeled device occupancy of one run,
// Na·(Ta+Tp). The chip is busy for the full run regardless of slot
// amortization, so this — not the amortized per-problem time — is what queue
// waits accumulate.
func (a *Annealer) EstimateMicros(p *Problem) float64 {
	params := a.dec.Options().Params
	return float64(params.NumAnneals) * params.AnnealWallMicros()
}

// Solve runs the full QuAMax pipeline on one problem.
func (a *Annealer) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := a.dec.Decode(p.Mod, p.H, p.Y, src)
	if err != nil {
		return nil, err
	}
	return a.result(out, 1), nil
}

// BatchSlots implements BatchBackend via the chip's geometric slot packing.
func (a *Annealer) BatchSlots(p *Problem) int {
	slots, err := a.dec.BatchSlots(p.LogicalSpins())
	if err != nil || slots < 1 {
		return 1
	}
	return slots
}

// SolveBatch decodes all ps in one shared annealer run.
func (a *Annealer) SolveBatch(ctx context.Context, ps []*Problem, src *rng.Source) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	items := make([]core.BatchItem, len(ps))
	for i, p := range ps {
		items[i] = core.BatchItem{Mod: p.Mod, H: p.H, Y: p.Y}
	}
	outs, err := a.dec.DecodeSharedRun(items, src)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(outs))
	for i, out := range outs {
		results[i] = a.result(out, len(ps))
	}
	return results, nil
}

// result converts a decoder outcome, applying the Na·(Ta+Tp)/Pf compute-time
// model the fronthaul reports for TTB accounting.
func (a *Annealer) result(out *core.Outcome, batched int) *Result {
	na := float64(a.dec.Options().Params.NumAnneals)
	pf := out.Pf
	if pf < 1 {
		pf = 1
	}
	return &Result{
		Bits:          out.Bits,
		Energy:        out.Energy,
		ComputeMicros: na * out.WallMicrosPerAnneal / pf,
		Backend:       a.name,
		Batched:       batched,
	}
}
