package backend

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"quamax/internal/rng"
)

// ErrInjectedFault is the error a Degrader returns for solves it fails on
// command (DegraderFaults.FailEvery).
var ErrInjectedFault = errors.New("backend: injected fault")

// DegraderFaults describes the quality degradation a Degrader injects while
// armed. Zero fields inject nothing of that kind.
type DegraderFaults struct {
	// ChainBreakRate adds this many broken chains per read to every result —
	// the signature of a device whose ferromagnetic chains lost margin
	// (miscalibrated |J_F|, rising ICE noise).
	ChainBreakRate float64
	// EnergyDrift lifts the reported best energy by drift·max(|E|, 1) — a
	// device that keeps landing in excited states a gap above ground. QuAMax
	// ground energies are ≤ 0, so the lift is a strictly worse ML metric,
	// and the floor of 1 keeps the lift visible on near-zero ground states
	// (noise-free instances reduce with the offset folded in), which is what
	// lets an armed Degrader fail the health plane's canary probes.
	EnergyDrift float64
	// FailEvery, when ≥ 1, fails every FailEvery-th solve with
	// ErrInjectedFault (1 = every solve fails).
	FailEvery int
	// ExtraLatency stalls every solve by this much wall time, so the
	// degradation also shows up as deadline pressure, not just quality.
	ExtraLatency time.Duration
}

// Degrader is the health plane's fault-injection harness: a Backend wrapper
// that degrades its delegate's anneal quality on command. Healthy (unarmed)
// it is a transparent pass-through; armed (SetDegraded(true)) it rewrites
// results per its DegraderFaults. It exists to prove the
// detection → quarantine → recovery loop end to end: internal/health's
// drift detector must flag the armed wrapper, the scheduler must quarantine
// and reroute, and after SetDegraded(false) canary probes must re-admit it.
//
// Describe follows the wrapper-composition rule: the descriptor copies the
// delegate's and keeps its latency model, so deadline projection and stats
// attribution see the true device.
type Degrader struct {
	inner  Backend
	faults DegraderFaults
	caps   *Capabilities

	degraded atomic.Bool
	solves   atomic.Uint64
}

// NewDegrader wraps inner with the given fault profile, initially unarmed.
func NewDegrader(inner Backend, faults DegraderFaults) *Degrader {
	caps := *inner.Describe() // copy-and-extend: identity and latency stay the delegate's
	return &Degrader{inner: inner, faults: faults, caps: &caps}
}

// SetDegraded arms (true) or heals (false) the injected faults.
func (d *Degrader) SetDegraded(v bool) { d.degraded.Store(v) }

// Degraded reports whether the faults are armed.
func (d *Degrader) Degraded() bool { return d.degraded.Load() }

// Describe implements Backend with the delegate's copied descriptor.
func (d *Degrader) Describe() *Capabilities { return d.caps }

// Solve implements Backend: delegate, then (when armed) degrade the result.
func (d *Degrader) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := d.stall(ctx); err != nil {
		return nil, err
	}
	res, err := d.inner.Solve(ctx, p, src)
	if err != nil {
		return nil, err
	}
	return d.degrade(res)
}

// BatchSlots implements BatchBackend when the delegate does (1 otherwise).
func (d *Degrader) BatchSlots(p *Problem) int {
	if bb, ok := d.inner.(BatchBackend); ok {
		return bb.BatchSlots(p)
	}
	return 1
}

// SolveBatch implements BatchBackend when the delegate does; a non-batching
// delegate solves the problems sequentially.
func (d *Degrader) SolveBatch(ctx context.Context, ps []*Problem, src *rng.Source) ([]*Result, error) {
	if err := d.stall(ctx); err != nil {
		return nil, err
	}
	var results []*Result
	if bb, ok := d.inner.(BatchBackend); ok {
		rs, err := bb.SolveBatch(ctx, ps, src)
		if err != nil {
			return nil, err
		}
		results = rs
	} else {
		results = make([]*Result, len(ps))
		for i, p := range ps {
			r, err := d.inner.Solve(ctx, p, src)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
	}
	for i, r := range results {
		dr, err := d.degrade(r)
		if err != nil {
			return nil, err
		}
		results[i] = dr
	}
	return results, nil
}

// stall applies the armed ExtraLatency, honoring ctx.
func (d *Degrader) stall(ctx context.Context) error {
	if !d.degraded.Load() || d.faults.ExtraLatency <= 0 {
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d.faults.ExtraLatency):
		return nil
	}
}

// degrade rewrites one result per the armed fault profile.
func (d *Degrader) degrade(res *Result) (*Result, error) {
	if !d.degraded.Load() {
		return res, nil
	}
	n := d.solves.Add(1)
	if fe := d.faults.FailEvery; fe >= 1 && n%uint64(fe) == 0 {
		return nil, ErrInjectedFault
	}
	out := *res
	if d.faults.ChainBreakRate > 0 {
		reads := out.Reads
		if reads < 1 {
			reads = 1
		}
		out.BrokenChains += int(d.faults.ChainBreakRate * float64(reads))
	}
	if drift := d.faults.EnergyDrift; drift > 0 {
		out.Energy += drift * math.Max(math.Abs(out.Energy), 1)
	}
	return &out, nil
}
