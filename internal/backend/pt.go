package backend

import (
	"context"
	"time"

	"quamax/internal/anneal"
	"quamax/internal/detector"
	"quamax/internal/rng"
)

// ParallelTempering adapts the replica-exchange solver (internal/detector
// over anneal.RunPT) to the Backend interface — the strongest classical
// stand-in for the QPU (ParaMax; Kim et al., MobiCom 2021), running the
// bit-parallel multi-spin engine underneath. Like ClassicalSA its latency is
// a deterministic function of the configured effort, so the QoS planner can
// size a per-request budget (Problem.PT) exactly as it sizes anneal reads.
type ParallelTempering struct {
	name string
	// PT holds the default effort knobs; mutate before first use only.
	PT *detector.ParallelTempering
	// MicrosPerSpinSweep calibrates the latency model: one packed Metropolis
	// update of one spin across one ladder lane costs about this much wall
	// time. It only steers admission, not correctness.
	MicrosPerSpinSweep float64

	caps *Capabilities
}

// DefaultPTMicrosPerSpinSweep is the measured per-spin-per-rung update cost
// of the multi-spin inner loop on a current x86 core. The bit-packed engine
// amortizes one CSR walk over a whole ladder, so this is far below the
// scalar SA constant (DefaultMicrosPerSpinSweep).
const DefaultPTMicrosPerSpinSweep = 0.0008

// NewParallelTempering builds the PT backend with the given per-ladder
// effort (zero knobs take the engine defaults: 16 rungs, 4 ladders, 100
// sweeps, auto β ladder).
func NewParallelTempering(name string, rungs, ladders, sweeps int) *ParallelTempering {
	c := &ParallelTempering{
		name:               name,
		PT:                 detector.NewParallelTempering(rungs, ladders, sweeps),
		MicrosPerSpinSweep: DefaultPTMicrosPerSpinSweep,
	}
	c.caps = &Capabilities{
		Name:          name,
		Latency:       c.estimate,
		Cost:          DefaultClassicalCostModel,
		MaxBatchSlots: 1,
		Features:      FeatureSoft | FeaturePT,
	}
	return c
}

// Describe implements Backend: the strongest classical stand-in for the QPU,
// priced at the classical core cost model, honoring per-request PT budgets
// and answering soft requests with saturated LLRs.
func (c *ParallelTempering) Describe() *Capabilities { return c.caps }

// params resolves the effective run knobs for one problem: the per-request
// planner override when present, the backend defaults otherwise.
func (c *ParallelTempering) params(p *Problem) anneal.PTParams {
	if p.PT != nil {
		return *p.PT
	}
	return c.PT.Params
}

// estimate is the descriptor's latency hook, modeling the deterministic PT
// cost: sweeps × rungs × ladders × N packed spin updates (zero knobs priced
// at the engine defaults). The super-linear local-field scatter cost in N is
// folded into the per-spin constant at the pool's typical sizes.
func (c *ParallelTempering) estimate(p *Problem) float64 {
	pt := c.params(p)
	rungs, ladders, sweeps := pt.Rungs, pt.Ladders, pt.Sweeps
	if rungs == 0 {
		rungs = 16
	}
	if ladders == 0 {
		ladders = 4
	}
	if sweeps == 0 {
		sweeps = 100
	}
	n := float64(p.LogicalSpins())
	return float64(sweeps) * float64(rungs) * float64(ladders) * n *
		c.MicrosPerSpinSweep * (1 + n/64)
}

// Solve runs replica exchange on the problem's logical Ising form.
func (c *ParallelTempering) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	solver := c.PT
	if p.PT != nil {
		solver = &detector.ParallelTempering{Params: *p.PT, Workers: c.PT.Workers}
	}
	res, err := solver.Decode(p.Mod, p.H, p.Y, src)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Bits:          res.Bits,
		Energy:        res.Metric,
		ComputeMicros: float64(time.Since(start)) / float64(time.Microsecond),
		Backend:       c.name,
		Batched:       1,
	}
	fillClassicalSoft(p, out)
	return out, nil
}
